// Experiment E8 (§1 motivation): dependence analysis over random update
// programs — pairwise detection throughput, the fraction of pairs proven
// independent, and the execution saving from read CSE.

#include "benchmark/benchmark.h"
#include "analysis/interpreter.h"
#include "analysis/optimizer.h"
#include "bench/bench_util.h"
#include "workload/program_generator.h"
#include "workload/tree_generator.h"

namespace xmlup {
namespace {

ProgramGenOptions MakeProgramOptions(double repeat_read_prob) {
  ProgramGenOptions options;
  options.num_variables = 2;
  options.repeat_read_prob = repeat_read_prob;
  options.pattern.size = 4;
  options.pattern.alphabet = {bench::Symbols()->Intern("a"),
                              bench::Symbols()->Intern("b"),
                              bench::Symbols()->Intern("c")};
  return options;
}

void BM_DependenceAnalysis(benchmark::State& state) {
  ProgramGenOptions options = MakeProgramOptions(0.3);
  options.num_statements = static_cast<size_t>(state.range(0));
  RandomProgramGenerator gen(bench::Symbols(), options);
  Rng rng(51);
  const Program program = gen.Generate(&rng);
  DependenceAnalyzer analyzer;
  double independent_fraction = 0;
  for (auto _ : state) {
    const DependenceAnalysisResult result = analyzer.Analyze(program);
    independent_fraction =
        static_cast<double>(result.pairs_independent) /
        static_cast<double>(result.pairs_total ? result.pairs_total : 1);
    benchmark::DoNotOptimize(result.dependences.size());
  }
  state.counters["independent_fraction"] = independent_fraction;
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DependenceAnalysis)
    ->RangeMultiplier(2)
    ->Range(4, 64)
    ->Complexity(benchmark::oNSquared);

void BM_CsePassAndSavings(benchmark::State& state) {
  ProgramGenOptions options = MakeProgramOptions(0.5);
  options.num_statements = static_cast<size_t>(state.range(0));
  RandomProgramGenerator gen(bench::Symbols(), options);
  Rng rng(53);
  const Program program = gen.Generate(&rng);
  Optimizer optimizer;
  size_t aliased = 0;
  for (auto _ : state) {
    const OptimizeResult result = optimizer.EliminateCommonReads(program);
    aliased = result.reads_aliased;
    benchmark::DoNotOptimize(aliased);
  }
  state.counters["reads_aliased"] = static_cast<double>(aliased);
}
BENCHMARK(BM_CsePassAndSavings)->RangeMultiplier(2)->Range(8, 64);

void RunProgram(benchmark::State& state, bool optimize) {
  ProgramGenOptions options = MakeProgramOptions(0.6);
  options.num_statements = 24;
  options.read_fraction = 0.7;  // read-heavy: CSE has something to save
  RandomProgramGenerator gen(bench::Symbols(), options);
  Rng rng(57);
  const Program base = gen.Generate(&rng);
  Optimizer optimizer;
  const Program program =
      optimize ? optimizer.EliminateCommonReads(base).program : base;

  TreeGenOptions tree_options;
  tree_options.target_size = 4000;
  tree_options.max_depth = 16;
  tree_options.alphabet = options.pattern.alphabet;
  RandomTreeGenerator trees(bench::Symbols(), tree_options);

  TreeStore prototype(bench::Symbols());
  for (const std::string& var : gen.VariableNames()) {
    Rng tree_rng(61);
    prototype.Put(var, trees.Generate(&tree_rng));
  }
  for (auto _ : state) {
    state.PauseTiming();
    TreeStore store = prototype.Clone();
    state.ResumeTiming();
    auto trace = Execute(program, &store);
    benchmark::DoNotOptimize(trace.ok());
  }
}

void BM_ExecuteBaseline(benchmark::State& state) {
  RunProgram(state, /*optimize=*/false);
}
BENCHMARK(BM_ExecuteBaseline)->Unit(benchmark::kMillisecond);

void BM_ExecuteWithCse(benchmark::State& state) {
  RunProgram(state, /*optimize=*/true);
}
BENCHMARK(BM_ExecuteWithCse)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xmlup
