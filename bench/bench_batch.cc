// Batch conflict-matrix engine benchmarks: N×M matrix throughput of the
// batch engine vs. the sequential per-pair detector loop, thread-pool
// scaling at 1/2/4/8 workers, and memoization hit rates. The workload
// mirrors generated programs (workload/program_generator): many pairs,
// few distinct patterns.

#include <chrono>
#include <vector>

#include "benchmark/benchmark.h"
#include "bench/bench_util.h"
#include "conflict/batch_detector.h"
#include "xml/xml_parser.h"

namespace xmlup {
namespace {

constexpr size_t kMatrix = 64;  // 64×64 = 4096 pairs

/// 64 reads drawn from a pool of 12 distinct patterns (10 linear + 2
/// branching), cycled — repetition is the point: it is what generated
/// programs look like and what the memo layer exploits.
std::vector<Pattern> MakeReads() {
  std::vector<Pattern> pool;
  for (size_t i = 0; i < 10; ++i) {
    pool.push_back(bench::RandomLinear(4, /*seed=*/100 + i));
  }
  pool.push_back(bench::Xp("a[b]/c"));
  pool.push_back(bench::Xp("a[.//b]//c"));
  std::vector<Pattern> reads;
  for (size_t i = 0; i < kMatrix; ++i) reads.push_back(pool[i % pool.size()]);
  return reads;
}

std::vector<UpdateOp> MakeUpdates() {
  std::vector<UpdateOp> pool;
  auto content = [](const char* xml) {
    return std::make_shared<const Tree>(
        ParseXml(xml, bench::Symbols()).value());
  };
  pool.push_back(UpdateOp::MakeInsert(bench::Xp("a/b"), content("<c/>")));
  pool.push_back(UpdateOp::MakeInsert(bench::Xp("a//c"), content("<b/>")));
  pool.push_back(UpdateOp::MakeInsert(bench::Xp("b"), content("<a><b/></a>")));
  pool.push_back(UpdateOp::MakeInsert(bench::Xp("*/c"), content("<c/>")));
  pool.push_back(UpdateOp::MakeDelete(bench::Xp("a/b")).value());
  pool.push_back(UpdateOp::MakeDelete(bench::Xp("a//c")).value());
  pool.push_back(UpdateOp::MakeDelete(bench::Xp("b/c")).value());
  pool.push_back(UpdateOp::MakeDelete(bench::Xp("*//b")).value());
  std::vector<UpdateOp> updates;
  for (size_t i = 0; i < kMatrix; ++i) {
    updates.push_back(pool[i % pool.size()]);
  }
  return updates;
}

DetectorOptions MakeDetectorOptions() {
  DetectorOptions options;
  options.search.max_nodes = 3;  // keep the NP path bounded for branching reads
  return options;
}

/// The baseline the batch engine replaces: one Detect() facade call per
/// pair, no sharing, no threads.
uint64_t SequentialPairLoop(const std::vector<Pattern>& reads,
                            const std::vector<UpdateOp>& updates,
                            const DetectorOptions& options) {
  uint64_t conflicts = 0;
  for (const Pattern& read : reads) {
    for (const UpdateOp& update : updates) {
      Result<ConflictReport> report = Detect(read, update, options);
      if (report.ok() && report->verdict == ConflictVerdict::kConflict) {
        ++conflicts;
      }
    }
  }
  return conflicts;
}

void BM_SequentialPairLoop(benchmark::State& state) {
  const std::vector<Pattern> reads = MakeReads();
  const std::vector<UpdateOp> updates = MakeUpdates();
  const DetectorOptions options = MakeDetectorOptions();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SequentialPairLoop(reads, updates, options));
  }
  state.counters["pairs"] = static_cast<double>(kMatrix * kMatrix);
}
BENCHMARK(BM_SequentialPairLoop)->Unit(benchmark::kMillisecond);

/// Full batch engine (cache + pool), cold engine per iteration so the
/// measurement includes cache misses, at 1/2/4/8 threads.
void BM_BatchMatrix(benchmark::State& state) {
  const std::vector<Pattern> reads = MakeReads();
  const std::vector<UpdateOp> updates = MakeUpdates();
  BatchDetectorOptions options;
  options.detector = MakeDetectorOptions();
  options.num_threads = static_cast<size_t>(state.range(0));
  double hit_rate = 0;
  for (auto _ : state) {
    BatchConflictDetector engine(options);
    auto matrix = engine.DetectMatrix(reads, updates);
    benchmark::DoNotOptimize(matrix.data());
    const BatchStats& stats = engine.stats();
    hit_rate = static_cast<double>(stats.cache_hits) /
               static_cast<double>(stats.pairs_total);
  }
  state.counters["pairs"] = static_cast<double>(kMatrix * kMatrix);
  state.counters["cache_hit_rate"] = hit_rate;
}
BENCHMARK(BM_BatchMatrix)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

/// Pool scaling in isolation: cache disabled, every pair solved.
void BM_BatchMatrixNoCache(benchmark::State& state) {
  const std::vector<Pattern> reads = MakeReads();
  const std::vector<UpdateOp> updates = MakeUpdates();
  BatchDetectorOptions options;
  options.detector = MakeDetectorOptions();
  options.num_threads = static_cast<size_t>(state.range(0));
  options.enable_cache = false;
  for (auto _ : state) {
    BatchConflictDetector engine(options);
    auto matrix = engine.DetectMatrix(reads, updates);
    benchmark::DoNotOptimize(matrix.data());
  }
  state.counters["pairs"] = static_cast<double>(kMatrix * kMatrix);
}
BENCHMARK(BM_BatchMatrixNoCache)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

/// Head-to-head: runs the sequential loop and the batch engine in the
/// same iteration and reports the ratio directly, so one JSON row carries
/// the acceptance number (speedup at the given thread count over the
/// sequential per-pair loop on the 64×64 workload).
void BM_BatchSpeedupVsSequential(benchmark::State& state) {
  const std::vector<Pattern> reads = MakeReads();
  const std::vector<UpdateOp> updates = MakeUpdates();
  BatchDetectorOptions options;
  options.detector = MakeDetectorOptions();
  options.num_threads = static_cast<size_t>(state.range(0));
  double speedup = 0;
  double hit_rate = 0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(
        SequentialPairLoop(reads, updates, options.detector));
    const auto t1 = std::chrono::steady_clock::now();
    BatchConflictDetector engine(options);
    auto matrix = engine.DetectMatrix(reads, updates);
    benchmark::DoNotOptimize(matrix.data());
    const auto t2 = std::chrono::steady_clock::now();
    speedup = std::chrono::duration<double>(t1 - t0).count() /
              std::chrono::duration<double>(t2 - t1).count();
    hit_rate = static_cast<double>(engine.stats().cache_hits) /
               static_cast<double>(engine.stats().pairs_total);
  }
  state.counters["speedup_vs_sequential"] = speedup;
  state.counters["cache_hit_rate"] = hit_rate;
}
BENCHMARK(BM_BatchSpeedupVsSequential)
    ->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xmlup

/// Custom main (instead of benchmark_main): honors XMLUP_OBS, then dumps
/// the run's metrics + trace to BENCH_batch.json / BENCH_batch_trace.json
/// for the CI bench-smoke job and for loading into chrome://tracing.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  const bool obs = xmlup::bench::EnableObsFromEnv();
  std::cerr << "obs " << (obs ? "enabled" : "disabled (XMLUP_OBS=0)") << "\n";
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  xmlup::bench::DumpObs("batch");
  return 0;
}
