// Experiment E5 (Theorems 3/5, Lemma 11): the exact bounded-witness search
// grows super-exponentially in the node budget, while the PTIME detectors
// answer the same linear-pattern instances orders of magnitude faster —
// the "who wins" comparison between the NP-side and PTIME-side of the
// paper. Series: tree-space size vs node budget; brute-force decision time
// vs PTIME decision time on identical instances.

#include "benchmark/benchmark.h"
#include "bench/bench_util.h"
#include "conflict/bounded_search.h"
#include "conflict/read_insert.h"
#include "conflict/reparent.h"

namespace xmlup {
namespace {

void BM_TreeEnumerationSpace(benchmark::State& state) {
  const size_t max_nodes = static_cast<size_t>(state.range(0));
  const std::vector<Label> alphabet = {bench::Symbols()->Intern("a"),
                                       bench::Symbols()->Intern("b")};
  uint64_t count = 0;
  for (auto _ : state) {
    TreeEnumerator enumerator(bench::Symbols(), alphabet, max_nodes);
    count = enumerator.count();
    benchmark::DoNotOptimize(count);
  }
  state.counters["trees"] = static_cast<double>(count);
}
BENCHMARK(BM_TreeEnumerationSpace)->DenseRange(1, 8);

void BM_BruteForceDecision(benchmark::State& state) {
  const size_t max_nodes = static_cast<size_t>(state.range(0));
  // A conflict-free instance: the search must exhaust the whole space.
  const Pattern read = bench::Xp("a/b/q");
  const Pattern ins = bench::Xp("a//c");
  Tree x(bench::Symbols());
  x.CreateRoot(bench::Symbols()->Intern("z"));
  BoundedSearchOptions options;
  options.max_nodes = max_nodes;
  uint64_t checked = 0;
  for (auto _ : state) {
    const BruteForceResult r = BruteForceReadInsertSearch(
        read, ins, x, ConflictSemantics::kNode, options);
    checked = r.trees_checked;
    benchmark::DoNotOptimize(checked);
  }
  state.counters["trees_checked"] = static_cast<double>(checked);
}
BENCHMARK(BM_BruteForceDecision)->DenseRange(1, 6)->Unit(benchmark::kMillisecond);

void BM_PtimeDecisionSameInstance(benchmark::State& state) {
  // The same instance decided by the Theorem 2 algorithm: node budget is
  // irrelevant, cost is polynomial in the (tiny) pattern sizes.
  const Pattern read = bench::Xp("a/b/q");
  const Pattern ins = bench::Xp("a//c");
  Tree x(bench::Symbols());
  x.CreateRoot(bench::Symbols()->Intern("z"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DetectLinearReadInsertConflict(read, ins, x,
                                       ConflictSemantics::kNode));
  }
}
BENCHMARK(BM_PtimeDecisionSameInstance);

void BM_WitnessShrinking(benchmark::State& state) {
  // Lemma 11 in action: shrink an artificially inflated conflict witness
  // back to polynomial size via marking + reparenting.
  const Pattern read = bench::Xp("x//C");
  const Pattern ins = bench::Xp("x/B");
  Tree x(bench::Symbols());
  x.CreateRoot(bench::Symbols()->Intern("C"));
  // Inflated witness: x root, long pad chain, then the B insertion point
  // deep below more padding.
  Tree witness(bench::Symbols());
  NodeId node = witness.CreateRoot(bench::Symbols()->Intern("x"));
  const Label pad = bench::Symbols()->Intern("pad");
  for (int64_t i = 0; i < state.range(0); ++i) {
    witness.AddChild(node, pad);  // side branches
    node = witness.AddChild(node, pad);
  }
  witness.AddChild(witness.root(), bench::Symbols()->Intern("B"));
  size_t shrunk_size = 0;
  for (auto _ : state) {
    Result<Tree> shrunk = ShrinkReadInsertWitness(read, ins, x, witness);
    if (shrunk.ok()) shrunk_size = shrunk->size();
    benchmark::DoNotOptimize(shrunk_size);
  }
  state.counters["inflated_nodes"] = static_cast<double>(witness.size());
  state.counters["shrunk_nodes"] = static_cast<double>(shrunk_size);
}
BENCHMARK(BM_WitnessShrinking)->RangeMultiplier(4)->Range(4, 1024);

void BM_PaperBoundGrowth(benchmark::State& state) {
  // The complete-decision budget |R|·|I|·(k+1) as pattern sizes grow —
  // the input to the exponential search above.
  const size_t size = static_cast<size_t>(state.range(0));
  const Pattern read = bench::RandomLinear(size, 43, /*wildcard=*/0.5);
  const Pattern ins = bench::RandomLinear(size, 47);
  size_t bound = 0;
  for (auto _ : state) {
    bound = PaperWitnessBound(read, ins);
    benchmark::DoNotOptimize(bound);
  }
  state.counters["witness_bound"] = static_cast<double>(bound);
}
BENCHMARK(BM_PaperBoundGrowth)->RangeMultiplier(2)->Range(2, 32);

}  // namespace
}  // namespace xmlup
