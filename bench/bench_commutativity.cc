// Experiment E9 (§6 complex updates): cost of update-update commutativity
// checking — the per-tree check is polynomial, and the bounded search for
// violations scales with the enumerated tree space.

#include "benchmark/benchmark.h"
#include "bench/bench_util.h"
#include "common/random.h"
#include "conflict/commutativity.h"
#include "workload/catalog_generator.h"

namespace xmlup {
namespace {

UpdateOp RestockInsert() {
  Tree restock(bench::Symbols());
  restock.CreateRoot(bench::Symbols()->Intern("restock"));
  return UpdateOp::MakeInsert(bench::Xp("catalog/book[.//low]"),
                              std::make_shared<const Tree>(std::move(restock)));
}

UpdateOp DiscontinueDelete() {
  return std::move(
      UpdateOp::MakeDelete(bench::Xp("catalog/book[.//high]")).value());
}

void BM_CommuteCheckOnCatalog(benchmark::State& state) {
  const Tree catalog =
      bench::Catalog(static_cast<size_t>(state.range(0)), /*seed=*/71);
  const UpdateOp ins = RestockInsert();
  const UpdateOp del = DiscontinueDelete();
  for (auto _ : state) {
    benchmark::DoNotOptimize(UpdatesCommuteOn(catalog, ins, del));
  }
  state.SetComplexityN(static_cast<int64_t>(catalog.size()));
}
BENCHMARK(BM_CommuteCheckOnCatalog)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Complexity(benchmark::oNLogN);

void BM_ViolationSearchInsertInsert(benchmark::State& state) {
  // i1 enables i2: a violation exists and is found quickly.
  Tree b(bench::Symbols());
  b.CreateRoot(bench::Symbols()->Intern("b"));
  Tree c(bench::Symbols());
  c.CreateRoot(bench::Symbols()->Intern("c"));
  const UpdateOp i1 = UpdateOp::MakeInsert(
      bench::Xp("a"), std::make_shared<const Tree>(std::move(b)));
  const UpdateOp i2 = UpdateOp::MakeInsert(
      bench::Xp("a/b"), std::make_shared<const Tree>(std::move(c)));
  BoundedSearchOptions options;
  options.max_nodes = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindCommutativityViolation(i1, i2, options));
  }
}
BENCHMARK(BM_ViolationSearchInsertInsert)->DenseRange(1, 4);

void BM_ViolationSearchExhaustive(benchmark::State& state) {
  // Commuting updates: the search must exhaust the whole space — the
  // exponential cost curve of the bounded check.
  Tree m(bench::Symbols());
  m.CreateRoot(bench::Symbols()->Intern("m"));
  const UpdateOp ins = UpdateOp::MakeInsert(
      bench::Xp("a/x"), std::make_shared<const Tree>(std::move(m)));
  const UpdateOp del =
      std::move(UpdateOp::MakeDelete(bench::Xp("a/y")).value());
  BoundedSearchOptions options;
  options.max_nodes = static_cast<size_t>(state.range(0));
  uint64_t checked = 0;
  for (auto _ : state) {
    const BruteForceResult r = FindCommutativityViolation(ins, del, options);
    checked = r.trees_checked;
    benchmark::DoNotOptimize(checked);
  }
  state.counters["trees_checked"] = static_cast<double>(checked);
}
BENCHMARK(BM_ViolationSearchExhaustive)
    ->DenseRange(1, 5)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xmlup
