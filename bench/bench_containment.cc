// Experiment E6 (Miklau-Suciu containment, the reduced-from problem of
// §5): the PTIME homomorphism test stays flat while the exact canonical-
// model decision doubles per added descendant edge. Series: cost vs number
// of // edges for both algorithms; canonical-model counts.

#include "benchmark/benchmark.h"
#include "bench/bench_util.h"
#include "conflict/containment.h"

namespace xmlup {
namespace {

/// p with `desc_edges` descendant edges: a//x1//x2...//xd/b, and a
/// containing q = a//b (always contained, so the exact algorithm must
/// check every model — the worst case).
Pattern ChainWithDescEdges(size_t desc_edges, bool wildcards) {
  Pattern p(bench::Symbols());
  PatternNodeId node = p.CreateRoot(bench::Symbols()->Intern("a"));
  for (size_t i = 0; i < desc_edges; ++i) {
    const Label label = wildcards
                            ? kWildcardLabel
                            : bench::Symbols()->Intern("x" + std::to_string(i));
    node = p.AddChild(node, label, Axis::kDescendant);
  }
  node = p.AddChild(node, bench::Symbols()->Intern("b"), Axis::kChild);
  p.SetOutput(node);
  return p;
}

void BM_HomomorphismTest(benchmark::State& state) {
  const Pattern p = ChainWithDescEdges(static_cast<size_t>(state.range(0)),
                                       /*wildcards=*/false);
  const Pattern q = bench::Xp("a//b");
  for (auto _ : state) {
    benchmark::DoNotOptimize(HasContainmentHomomorphism(p, q));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_HomomorphismTest)->DenseRange(1, 10)->Complexity();

void BM_ExactCanonicalModels(benchmark::State& state) {
  const Pattern p = ChainWithDescEdges(static_cast<size_t>(state.range(0)),
                                       /*wildcards=*/false);
  const Pattern q = bench::Xp("a//b");
  uint64_t models = 0;
  for (auto _ : state) {
    const ContainmentDecision d = DecideContainment(p, q);
    models = d.models_checked;
    benchmark::DoNotOptimize(d.contained);
  }
  state.counters["models"] = static_cast<double>(models);
}
BENCHMARK(BM_ExactCanonicalModels)
    ->DenseRange(1, 10)
    ->Unit(benchmark::kMicrosecond);

void BM_ExactWithWideStarChains(benchmark::State& state) {
  // Longer star chains in q enlarge w, multiplying the models per edge.
  const Pattern p = ChainWithDescEdges(4, /*wildcards=*/false);
  Pattern q(bench::Symbols());
  PatternNodeId node = q.CreateRoot(bench::Symbols()->Intern("a"));
  for (int64_t i = 0; i < state.range(0); ++i) {
    node = q.AddChild(node, kWildcardLabel, Axis::kChild);
  }
  node = q.AddChild(node, bench::Symbols()->Intern("b"), Axis::kDescendant);
  q.SetOutput(node);
  uint64_t models = 0;
  for (auto _ : state) {
    const ContainmentDecision d = DecideContainment(p, q);
    models = d.models_checked;
    benchmark::DoNotOptimize(d.contained);
  }
  state.counters["models"] = static_cast<double>(models);
}
BENCHMARK(BM_ExactWithWideStarChains)
    ->DenseRange(1, 5)
    ->Unit(benchmark::kMicrosecond);

void BM_NonContainmentEarlyExit(benchmark::State& state) {
  // Non-contained pairs can exit at the first failing model.
  const Pattern p = ChainWithDescEdges(static_cast<size_t>(state.range(0)),
                                       /*wildcards=*/false);
  const Pattern q = bench::Xp("a/b");  // p ⊄ q (depth mismatch)
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecideContainment(p, q).contained);
  }
}
BENCHMARK(BM_NonContainmentEarlyExit)->DenseRange(1, 10);

}  // namespace
}  // namespace xmlup
