// Hot-path detection ablation for the compiled-automata cache: the same
// read×update matrix solved three ways —
//   cold      value Detect: per-call regex build + Thompson construction
//             (the pre-cache hot path);
//   warm_nfa  ref Detect with the product cache disabled: compiled NFAs
//             come from PatternStore::compiled, products are recomputed;
//   warm      ref Detect, fully cached: compiled NFAs + memoized
//             intersection products.
// The harness times all three, checks the verdicts are identical, and
// writes "detect_hot" (pairs, per-pair microseconds, speedups,
// verdicts_identical) into BENCH_detect_hot.json next to the obs
// counters (store.nfa.*, detector.product_cache.*); CI asserts
// speedup >= 5 and the cache accounting invariants.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "automata/nfa_ops.h"
#include "bench/bench_util.h"
#include "benchmark/benchmark.h"
#include "conflict/detector.h"
#include "conflict/update_op.h"
#include "pattern/pattern_store.h"
#include "xml/xml_parser.h"

namespace xmlup {
namespace {

constexpr size_t kReads = 24;
constexpr size_t kUpdatesPerKind = 6;

/// Verdict-only options: witness construction mints fresh labels and
/// re-runs the Lemma 1 checker per conflicting pair, which would swamp
/// the automata cost this bench isolates. All three phases use the same
/// options, so the comparison stays apples-to-apples.
DetectorOptions HotOptions() {
  DetectorOptions options;
  options.build_witness = false;
  return options;
}

struct Workload {
  std::shared_ptr<PatternStore> store;
  std::vector<PatternRef> reads;
  std::vector<UpdateOp> updates;  // bound to `store`

  size_t pairs() const { return reads.size() * updates.size(); }
};

Workload MakeWorkload() {
  Workload w;
  w.store = std::make_shared<PatternStore>(bench::Symbols());
  for (size_t i = 0; i < kReads; ++i) {
    w.reads.push_back(
        w.store->Intern(bench::RandomLinear(5 + i % 3, /*seed=*/7100 + i)));
  }
  auto content = [](const char* xml) {
    return std::make_shared<const Tree>(
        ParseXml(xml, bench::Symbols()).value());
  };
  for (size_t i = 0; i < kUpdatesPerKind; ++i) {
    w.updates.push_back(UpdateOp::MakeInsert(
        w.store, w.store->Intern(bench::RandomLinear(3 + i % 2,
                                                     /*seed=*/7300 + i)),
        content(i % 2 ? "<b><c/></b>" : "<a/>")));
    // Random linear patterns can select the root; retry until the delete
    // factory accepts one (seeds chosen so this terminates quickly).
    for (uint64_t seed = 7500 + 17 * i;; ++seed) {
      Result<UpdateOp> del = UpdateOp::MakeDelete(
          w.store, w.store->Intern(bench::RandomLinear(3 + i % 2, seed)));
      if (del.ok()) {
        w.updates.push_back(std::move(del).value());
        break;
      }
    }
  }
  return w;
}

/// One full matrix pass through the value facade (per-call construction).
uint64_t PassCold(const Workload& w, const DetectorOptions& options,
                  std::vector<ConflictVerdict>* verdicts) {
  uint64_t solved = 0;
  for (const PatternRef read : w.reads) {
    const Pattern& read_pattern = w.store->pattern(read);
    for (const UpdateOp& update : w.updates) {
      Result<ConflictReport> r = Detect(read_pattern, update, options);
      if (r.ok()) {
        ++solved;
        if (verdicts) verdicts->push_back(r->verdict);
      }
    }
  }
  return solved;
}

/// One full matrix pass through the ref facade (compiled automata).
uint64_t PassCached(const Workload& w, const DetectorOptions& options,
                    std::vector<ConflictVerdict>* verdicts) {
  uint64_t solved = 0;
  for (const PatternRef read : w.reads) {
    for (const UpdateOp& update : w.updates) {
      Result<ConflictReport> r = Detect(*w.store, read, update, options);
      if (r.ok()) {
        ++solved;
        if (verdicts) verdicts->push_back(r->verdict);
      }
    }
  }
  return solved;
}

void BM_DetectColdValuePath(benchmark::State& state) {
  const Workload w = MakeWorkload();
  const DetectorOptions options = HotOptions();
  for (auto _ : state) {
    benchmark::DoNotOptimize(PassCold(w, options, nullptr));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(w.pairs()));
}
BENCHMARK(BM_DetectColdValuePath)->Unit(benchmark::kMicrosecond);

void BM_DetectWarmCachedPath(benchmark::State& state) {
  const Workload w = MakeWorkload();
  const DetectorOptions options = HotOptions();
  PassCached(w, options, nullptr);  // compile + fill the product cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(PassCached(w, options, nullptr));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(w.pairs()));
}
BENCHMARK(BM_DetectWarmCachedPath)->Unit(benchmark::kMicrosecond);

/// Harness-timed cold/warm-NFA/warm ablation — the acceptance numbers for
/// BENCH_detect_hot.json. Best-of-reps per phase to shrug off scheduler
/// noise; verdict vectors from the three paths are compared elementwise.
std::string MeasureDetectHot() {
  const Workload w = MakeWorkload();
  const DetectorOptions options = HotOptions();
  NfaProductCache& products = NfaProductCache::Default();

  // Verdict oracle: one pass per phase, orders identical by construction.
  std::vector<ConflictVerdict> cold_verdicts, warm_nfa_verdicts,
      warm_verdicts;
  PassCold(w, options, &cold_verdicts);
  products.set_enabled(false);
  PassCached(w, options, &warm_nfa_verdicts);
  products.set_enabled(true);
  PassCached(w, options, &warm_verdicts);
  const bool verdicts_identical = cold_verdicts == warm_nfa_verdicts &&
                                  cold_verdicts == warm_verdicts &&
                                  cold_verdicts.size() == w.pairs();

  constexpr int kReps = 7;
  constexpr int kInnerLoops = 3;
  auto time_best = [&](auto&& body) {
    double best = 1e300;
    for (int rep = 0; rep < kReps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      for (int loop = 0; loop < kInnerLoops; ++loop) body();
      const auto t1 = std::chrono::steady_clock::now();
      best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
    }
    return best / (kInnerLoops * static_cast<double>(w.pairs()));
  };

  uint64_t sink = 0;
  // Cold: the value facade rebuilds regexes and NFAs on every call.
  const double cold_s =
      time_best([&] { sink += PassCold(w, options, nullptr); });
  // Warm NFA only: compiled automata reused, products recomputed per call.
  products.set_enabled(false);
  const double warm_nfa_s =
      time_best([&] { sink += PassCached(w, options, nullptr); });
  // Fully warm: automata + memoized products (populated above).
  products.set_enabled(true);
  const double warm_s =
      time_best([&] { sink += PassCached(w, options, nullptr); });
  benchmark::DoNotOptimize(sink);

  const double speedup_nfa = cold_s / warm_nfa_s;
  const double speedup = cold_s / warm_s;
  char buffer[512];
  snprintf(buffer, sizeof(buffer),
           "\"detect_hot\":{\"pairs\":%zu,\"cold_us\":%.3f,"
           "\"warm_nfa_us\":%.3f,\"warm_us\":%.3f,\"speedup_nfa\":%.2f,"
           "\"speedup\":%.2f,\"verdicts_identical\":%s}",
           w.pairs(), cold_s * 1e6, warm_nfa_s * 1e6, warm_s * 1e6,
           speedup_nfa, speedup, verdicts_identical ? "true" : "false");
  std::cerr << "detect_hot speedup: " << speedup << "x warm (" << speedup_nfa
            << "x NFA-only); per pair cold " << cold_s * 1e6 << " us, warm "
            << warm_s * 1e6 << " us; verdicts "
            << (verdicts_identical ? "identical" : "DIVERGED") << "\n";
  return buffer;
}

}  // namespace
}  // namespace xmlup

/// Custom main (instead of benchmark_main): honors XMLUP_OBS, runs the
/// cold/warm ablation, and dumps metrics + the comparison to
/// BENCH_detect_hot.json for the CI bench-smoke job.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  const bool obs = xmlup::bench::EnableObsFromEnv();
  std::cerr << "obs " << (obs ? "enabled" : "disabled (XMLUP_OBS=0)") << "\n";
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const std::string detect_hot = xmlup::MeasureDetectHot();
  xmlup::bench::DumpObs("detect_hot", detect_hot);
  return 0;
}
