// Experiment E1 (§3, Figure 1): read/insert/delete evaluation cost is
// polynomial — linear in |t| for fixed patterns and linear in |p| for a
// fixed tree. Series: Evaluate over catalog documents of growing size with
// the Figure 1 patterns; pattern-size sweep on a fixed document; insert
// and delete operation throughput.

#include "benchmark/benchmark.h"
#include "bench/bench_util.h"
#include "eval/evaluator.h"
#include "eval/fast_evaluator.h"
#include "eval/incremental_read.h"
#include "ops/operations.h"
#include "xml/tree_algos.h"

namespace xmlup {
namespace {

void BM_EvaluateCatalogScaling(benchmark::State& state) {
  const size_t books = static_cast<size_t>(state.range(0));
  const Tree catalog = bench::Catalog(books, /*seed=*/1);
  const Pattern restock_condition = bench::Xp("catalog/book[.//low]");
  for (auto _ : state) {
    benchmark::DoNotOptimize(Evaluate(restock_condition, catalog));
  }
  state.SetComplexityN(static_cast<int64_t>(catalog.size()));
  state.counters["tree_nodes"] = static_cast<double>(catalog.size());
}
BENCHMARK(BM_EvaluateCatalogScaling)
    ->RangeMultiplier(4)
    ->Range(16, 16384)
    ->Complexity(benchmark::oN);

void BM_EvaluatePatternSizeScaling(benchmark::State& state) {
  const size_t pattern_size = static_cast<size_t>(state.range(0));
  const Tree catalog = bench::Catalog(500, /*seed=*/2);
  // Linear pattern of the requested size: catalog//*//*...//* .
  Pattern p(bench::Symbols());
  PatternNodeId node = p.CreateRoot(bench::Symbols()->Intern("catalog"));
  for (size_t i = 1; i < pattern_size; ++i) {
    node = p.AddChild(node, kWildcardLabel, Axis::kDescendant);
  }
  p.SetOutput(node);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Evaluate(p, catalog));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EvaluatePatternSizeScaling)
    ->DenseRange(2, 10, 2)
    ->Complexity(benchmark::oN);

void BM_InsertOperation(benchmark::State& state) {
  const size_t books = static_cast<size_t>(state.range(0));
  const Tree catalog = bench::Catalog(books, /*seed=*/3);
  Tree restock(bench::Symbols());
  restock.CreateRoot(bench::Symbols()->Intern("restock"));
  const InsertOp op(bench::Xp("catalog/book[.//low]"),
                    std::make_shared<const Tree>(std::move(restock)));
  for (auto _ : state) {
    state.PauseTiming();
    Tree work = CopyTree(catalog);
    state.ResumeTiming();
    benchmark::DoNotOptimize(op.ApplyInPlace(&work));
  }
  state.SetComplexityN(static_cast<int64_t>(catalog.size()));
}
BENCHMARK(BM_InsertOperation)
    ->RangeMultiplier(4)
    ->Range(16, 4096)
    ->Complexity(benchmark::oN);

void BM_DeleteOperation(benchmark::State& state) {
  const size_t books = static_cast<size_t>(state.range(0));
  const Tree catalog = bench::Catalog(books, /*seed=*/4);
  const DeleteOp op =
      std::move(DeleteOp::Make(bench::Xp("catalog/book[.//high]")).value());
  for (auto _ : state) {
    state.PauseTiming();
    Tree work = CopyTree(catalog);
    state.ResumeTiming();
    benchmark::DoNotOptimize(op.ApplyInPlace(&work));
  }
  state.SetComplexityN(static_cast<int64_t>(catalog.size()));
}
BENCHMARK(BM_DeleteOperation)
    ->RangeMultiplier(4)
    ->Range(16, 4096)
    ->Complexity(benchmark::oN);

// Ablation: baseline vs bit-parallel evaluator on the same workload.
void BM_EvaluateFastCatalogScaling(benchmark::State& state) {
  const size_t books = static_cast<size_t>(state.range(0));
  const Tree catalog = bench::Catalog(books, /*seed=*/1);
  const Pattern restock_condition = bench::Xp("catalog/book[.//low]");
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateFast(restock_condition, catalog));
  }
  state.SetComplexityN(static_cast<int64_t>(catalog.size()));
}
BENCHMARK(BM_EvaluateFastCatalogScaling)
    ->RangeMultiplier(4)
    ->Range(16, 16384)
    ->Complexity(benchmark::oN);

// Read maintenance under a stream of inserts: full re-evaluation after
// every update vs the incremental repair a conflict-aware compiler can
// use (§1 motivation). Workload: watch catalog//restock while restock
// nodes are inserted one batch at a time.
void RunMaintenance(benchmark::State& state, bool incremental) {
  const size_t books = static_cast<size_t>(state.range(0));
  const Pattern watched = bench::Xp("catalog//restock");
  Tree restock(bench::Symbols());
  restock.CreateRoot(bench::Symbols()->Intern("restock"));
  const InsertOp insert(bench::Xp("catalog/book[.//low]"),
                        std::make_shared<const Tree>(std::move(restock)));
  for (auto _ : state) {
    state.PauseTiming();
    Tree catalog = bench::Catalog(books, /*seed=*/5);
    auto read = IncrementalRead::Make(watched, &catalog);
    state.ResumeTiming();
    size_t total = read.ok() ? read->Results().size() : 0;
    for (int round = 0; round < 8; ++round) {
      const InsertOp::Applied applied = insert.ApplyInPlace(&catalog);
      if (incremental) {
        read->OnInsert(applied);
        total += read->Results().size();
      } else {
        total += Evaluate(watched, catalog).size();
      }
    }
    benchmark::DoNotOptimize(total);
  }
}

void BM_ReadMaintenanceReevaluate(benchmark::State& state) {
  RunMaintenance(state, /*incremental=*/false);
}
BENCHMARK(BM_ReadMaintenanceReevaluate)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Unit(benchmark::kMillisecond);

void BM_ReadMaintenanceIncremental(benchmark::State& state) {
  RunMaintenance(state, /*incremental=*/true);
}
BENCHMARK(BM_ReadMaintenanceIncremental)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xmlup
