// Incremental conflict-matrix maintenance benchmarks (E15): a compiler
// editing one statement of a 64×64 read/update program wants the refreshed
// verdict matrix. From-scratch recomputation rebuilds a cold engine per
// edit (discarding everything the batch engine and PatternStore already
// know); MaintainedConflictMatrix recomputes one row or column, mostly
// from the memo cache. Workload shape matches bench_batch (E12): many
// pairs, few distinct patterns.

#include <chrono>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "benchmark/benchmark.h"
#include "bench/bench_util.h"
#include "common/random.h"
#include "conflict/conflict_matrix.h"
#include "xml/xml_parser.h"

namespace xmlup {
namespace {

constexpr size_t kMatrix = 64;   // 64×64 = 4096 pairs
constexpr size_t kEdits = 32;    // length of the edit stream

std::vector<Pattern> MakeReads() {
  std::vector<Pattern> pool;
  for (size_t i = 0; i < 10; ++i) {
    pool.push_back(bench::RandomLinear(4, /*seed=*/100 + i));
  }
  pool.push_back(bench::Xp("a[b]/c"));
  pool.push_back(bench::Xp("a[.//b]//c"));
  std::vector<Pattern> reads;
  for (size_t i = 0; i < kMatrix; ++i) reads.push_back(pool[i % pool.size()]);
  return reads;
}

std::vector<UpdateOp> MakeUpdates() {
  std::vector<UpdateOp> pool;
  auto content = [](const char* xml) {
    return std::make_shared<const Tree>(
        ParseXml(xml, bench::Symbols()).value());
  };
  pool.push_back(UpdateOp::MakeInsert(bench::Xp("a/b"), content("<c/>")));
  pool.push_back(UpdateOp::MakeInsert(bench::Xp("a//c"), content("<b/>")));
  pool.push_back(UpdateOp::MakeInsert(bench::Xp("b"), content("<a><b/></a>")));
  pool.push_back(UpdateOp::MakeInsert(bench::Xp("*/c"), content("<c/>")));
  pool.push_back(UpdateOp::MakeDelete(bench::Xp("a/b")).value());
  pool.push_back(UpdateOp::MakeDelete(bench::Xp("a//c")).value());
  pool.push_back(UpdateOp::MakeDelete(bench::Xp("b/c")).value());
  pool.push_back(UpdateOp::MakeDelete(bench::Xp("*//b")).value());
  std::vector<UpdateOp> updates;
  for (size_t i = 0; i < kMatrix; ++i) {
    updates.push_back(pool[i % pool.size()]);
  }
  return updates;
}

BatchDetectorOptions MakeOptions() {
  BatchDetectorOptions options;
  options.detector.search.max_nodes = 3;
  return options;
}

/// One deterministic single-statement edit: replace a read or an update at
/// a pseudo-random position. Half the replacement patterns are fresh
/// (never seen before — the incremental layer must solve a real row for
/// them), half revisit the pool (pure memo hits).
struct Edit {
  bool is_read = false;
  size_t index = 0;
  std::optional<Pattern> pattern;  // reads
  std::optional<UpdateOp> update;  // updates
};

std::vector<Edit> MakeEditStream() {
  const std::vector<Pattern> reads = MakeReads();
  const std::vector<UpdateOp> updates = MakeUpdates();
  Rng rng(2026);
  std::vector<Edit> edits;
  for (size_t e = 0; e < kEdits; ++e) {
    Edit edit;
    edit.is_read = rng.NextBool(0.5);
    edit.index = rng.NextBounded(kMatrix);
    const bool fresh = rng.NextBool(0.5);
    if (edit.is_read) {
      edit.pattern = fresh ? bench::RandomLinear(4, /*seed=*/500 + e)
                           : reads[rng.NextBounded(reads.size())];
    } else if (fresh) {
      Result<UpdateOp> del =
          UpdateOp::MakeDelete(bench::RandomLinear(3, /*seed=*/700 + e));
      edit.update = del.ok() ? std::move(del).value() : updates[0];
    } else {
      edit.update = updates[rng.NextBounded(updates.size())];
    }
    edits.push_back(std::move(edit));
  }
  return edits;
}

/// From-scratch baseline: apply the edit to plain vectors, then rebuild a
/// cold engine (fresh PatternStore, empty cache) and solve all 4096 pairs.
double TimeScratchStream(const std::vector<Edit>& edits) {
  std::vector<Pattern> reads = MakeReads();
  std::vector<UpdateOp> updates = MakeUpdates();
  const auto t0 = std::chrono::steady_clock::now();
  for (const Edit& edit : edits) {
    if (edit.is_read) {
      reads[edit.index] = *edit.pattern;
    } else {
      updates[edit.index] = *edit.update;
    }
    BatchConflictDetector engine(MakeOptions());
    auto matrix = engine.DetectMatrix(reads, updates);
    benchmark::DoNotOptimize(matrix.data());
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Maintained path: one warm matrix, each edit recomputes one row/column.
/// Returns elapsed seconds; `matrix` is left at the post-stream state so
/// the caller can report engine stats.
double TimeMaintainedStream(const std::vector<Edit>& edits,
                            MaintainedConflictMatrix* matrix) {
  const auto t0 = std::chrono::steady_clock::now();
  for (const Edit& edit : edits) {
    if (edit.is_read) {
      matrix->ReplaceRead(edit.index, *edit.pattern);
    } else {
      matrix->ReplaceUpdate(edit.index, *edit.update);
    }
    benchmark::DoNotOptimize(matrix->cell(0, 0));
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

void BM_ScratchEditStream(benchmark::State& state) {
  const std::vector<Edit> edits = MakeEditStream();
  for (auto _ : state) {
    benchmark::DoNotOptimize(TimeScratchStream(edits));
  }
  state.counters["edits"] = static_cast<double>(kEdits);
}
BENCHMARK(BM_ScratchEditStream)->Unit(benchmark::kMillisecond);

void BM_MaintainedEditStream(benchmark::State& state) {
  const std::vector<Edit> edits = MakeEditStream();
  for (auto _ : state) {
    state.PauseTiming();
    MaintainedConflictMatrix matrix(MakeOptions());
    matrix.Assign(MakeReads(), MakeUpdates());
    state.ResumeTiming();
    benchmark::DoNotOptimize(TimeMaintainedStream(edits, &matrix));
  }
  state.counters["edits"] = static_cast<double>(kEdits);
}
BENCHMARK(BM_MaintainedEditStream)->Unit(benchmark::kMillisecond);

}  // namespace

/// Harness-timed edit-stream comparison, so the acceptance number lands in
/// BENCH_incremental.json. Best-of-`kReps` to shrug off scheduler noise;
/// the maintained matrix is rebuilt per rep (edits mutate it).
std::string MeasureEditStream() {
  const std::vector<Edit> edits = MakeEditStream();
  constexpr int kReps = 3;
  double scratch_s = 1e300;
  double maintained_s = 1e300;
  BatchStats stats;
  DeltaStats delta;
  for (int rep = 0; rep < kReps; ++rep) {
    scratch_s = std::min(scratch_s, TimeScratchStream(edits));
    MaintainedConflictMatrix matrix(MakeOptions());
    matrix.Assign(MakeReads(), MakeUpdates());
    matrix.engine().ResetStats();
    maintained_s = std::min(maintained_s, TimeMaintainedStream(edits, &matrix));
    stats = matrix.engine().stats();
    delta = matrix.delta_stats();
  }
  const double speedup = scratch_s / maintained_s;
  char buffer[512];
  snprintf(buffer, sizeof(buffer),
           "\"edit_stream\":{\"matrix\":%zu,\"edits\":%zu,"
           "\"scratch_ms\":%.2f,\"maintained_ms\":%.2f,\"speedup\":%.2f,"
           "\"pairs_requested\":%llu,\"pairs_solved\":%llu,"
           "\"cells_recomputed\":%llu}",
           kMatrix, kEdits, scratch_s * 1e3, maintained_s * 1e3, speedup,
           static_cast<unsigned long long>(stats.pairs_total),
           static_cast<unsigned long long>(stats.unique_pairs_solved),
           static_cast<unsigned long long>(delta.cells_recomputed));
  std::cerr << "edit stream (" << kEdits << " edits, " << kMatrix << "x"
            << kMatrix << "): scratch " << scratch_s * 1e3 << " ms, maintained "
            << maintained_s * 1e3 << " ms, speedup " << speedup << "x\n";
  return buffer;
}

}  // namespace xmlup

/// Custom main (instead of benchmark_main): honors XMLUP_OBS, measures the
/// scratch-vs-maintained edit stream, and dumps metrics + the comparison
/// to BENCH_incremental.json for the CI bench-smoke job.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  const bool obs = xmlup::bench::EnableObsFromEnv();
  std::cerr << "obs " << (obs ? "enabled" : "disabled (XMLUP_OBS=0)") << "\n";
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const std::string edit_stream = xmlup::MeasureEditStream();
  xmlup::bench::DumpObs("incremental", edit_stream);
  return 0;
}
