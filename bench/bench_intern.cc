// Pattern-interning benchmarks: PatternStore throughput on the miss path
// (canonicalize + minimize once) and the hit path (one code build + hash
// probe), plus the number this PR is about — repeated batch memo-key
// lookups with the interned integer BatchPairKey vs the string key the
// engine used before (canonical read code + kind + update code + content
// code concatenated per pair). The harness times the key comparison
// directly and writes it into BENCH_intern.json as "key_lookup" (with
// "speedup"); CI asserts speedup >= 5.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench/bench_util.h"
#include "benchmark/benchmark.h"
#include "conflict/batch_detector.h"
#include "pattern/pattern_ops.h"
#include "pattern/pattern_store.h"
#include "xml/isomorphism.h"
#include "xml/xml_parser.h"

namespace xmlup {
namespace {

/// The bench_batch workload shape: many pairs, few distinct patterns.
constexpr size_t kReads = 16;
constexpr size_t kUpdates = 8;
constexpr size_t kMatrix = 64;  // 64×64 index pairs over the pools

std::vector<Pattern> MakeReadPool() {
  std::vector<Pattern> pool;
  for (size_t i = 0; i < kReads - 2; ++i) {
    pool.push_back(bench::RandomLinear(5, /*seed=*/500 + i));
  }
  pool.push_back(bench::Xp("a[b]/c"));
  pool.push_back(bench::Xp("a[.//b]//c[a][b]"));
  return pool;
}

std::vector<UpdateOp> MakeUpdatePool() {
  auto content = [](const char* xml) {
    return std::make_shared<const Tree>(
        ParseXml(xml, bench::Symbols()).value());
  };
  std::vector<UpdateOp> pool;
  pool.push_back(UpdateOp::MakeInsert(bench::Xp("a/b"), content("<c/>")));
  pool.push_back(UpdateOp::MakeInsert(bench::Xp("a//c"), content("<b/>")));
  pool.push_back(UpdateOp::MakeInsert(bench::Xp("b"), content("<a><b/></a>")));
  pool.push_back(UpdateOp::MakeInsert(bench::Xp("*/c"), content("<c/>")));
  pool.push_back(UpdateOp::MakeDelete(bench::Xp("a/b")).value());
  pool.push_back(UpdateOp::MakeDelete(bench::Xp("a//c")).value());
  pool.push_back(UpdateOp::MakeDelete(bench::Xp("b/c")).value());
  pool.push_back(UpdateOp::MakeDelete(bench::Xp("*//b")).value());
  return pool;
}

/// Miss path: every intern is a distinct pattern — one canonical code,
/// one minimization, one entry each.
void BM_InternDistinct(benchmark::State& state) {
  std::vector<Pattern> patterns;
  for (size_t i = 0; i < 256; ++i) {
    patterns.push_back(bench::RandomLinear(6, /*seed=*/9000 + i));
  }
  for (auto _ : state) {
    PatternStore store(bench::Symbols());
    for (const Pattern& p : patterns) {
      benchmark::DoNotOptimize(store.Intern(p));
    }
    state.counters["distinct"] = static_cast<double>(store.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(patterns.size()));
}
BENCHMARK(BM_InternDistinct)->Unit(benchmark::kMicrosecond);

/// Hit path: the store is warm; each intern re-derives the input code and
/// probes the alias map, but never minimizes.
void BM_InternRepeated(benchmark::State& state) {
  const std::vector<Pattern> pool = MakeReadPool();
  PatternStore store(bench::Symbols());
  for (const Pattern& p : pool) store.Intern(p);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Intern(pool[i % pool.size()]));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InternRepeated);

/// The engine's public key entry point on a warm store (tests use it too):
/// intern hit for the read + ref reuse for the bound update + integer
/// assembly.
void BM_BatchCacheKey(benchmark::State& state) {
  BatchConflictDetector engine{BatchDetectorOptions{}};
  const std::vector<Pattern> reads = MakeReadPool();
  std::vector<UpdateOp> updates;
  for (const UpdateOp& op : MakeUpdatePool()) {
    updates.push_back(op.Bind(engine.pattern_store()));
  }
  size_t i = 0;
  for (auto _ : state) {
    BatchPairKey key = engine.CacheKey(reads[i % reads.size()],
                                       updates[i % updates.size()]);
    benchmark::DoNotOptimize(key);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BatchCacheKey);

/// --- Repeated-key lookup comparison (the acceptance number) ---
///
/// Both sides get the same warm state the engine would have after phase 1:
/// patterns interned, canonical codes computed. Per pair, the string side
/// assembles the old composite key (read code | kind | update code |
/// content code) and probes a string-keyed map; the interned side
/// assembles a BatchPairKey from the ids and probes the integer-keyed map.

struct KeyWorkload {
  // Interned side.
  std::vector<PatternRef> read_refs;
  std::vector<PatternRef> update_refs;
  std::vector<uint32_t> content_ids;
  std::vector<uint8_t> kinds;
  std::unordered_map<BatchPairKey, uint64_t, BatchPairKeyHash> int_map;
  // String side (codes precomputed, as the old engine's phase 1 did).
  std::vector<std::string> read_codes;
  std::vector<std::string> update_codes;
  std::vector<std::string> content_codes;
  std::unordered_map<std::string, uint64_t> string_map;
  std::vector<std::pair<size_t, size_t>> pairs;
};

std::string StringKey(const KeyWorkload& w, size_t i, size_t j) {
  std::string key;
  key.reserve(w.read_codes[i].size() + w.update_codes[j].size() +
              w.content_codes[j].size() + 4);
  key.append(w.read_codes[i]);
  key.push_back('\x1f');
  key.push_back(static_cast<char>('0' + w.kinds[j]));
  key.push_back('\x1f');
  key.append(w.update_codes[j]);
  key.push_back('\x1f');
  key.append(w.content_codes[j]);
  return key;
}

BatchPairKey IntKey(const KeyWorkload& w, size_t i, size_t j) {
  return BatchPairKey{w.read_refs[i].id(), w.update_refs[j].id(),
                      w.content_ids[j], w.kinds[j]};
}

KeyWorkload MakeKeyWorkload() {
  KeyWorkload w;
  PatternStore store(bench::Symbols());
  const std::vector<Pattern> reads = MakeReadPool();
  const std::vector<UpdateOp> updates = MakeUpdatePool();
  for (const Pattern& p : reads) {
    const PatternRef ref = store.Intern(p);
    w.read_refs.push_back(ref);
    w.read_codes.push_back(store.canonical_code(ref));
  }
  for (const UpdateOp& op : updates) {
    const PatternRef ref = store.Intern(op.pattern());
    w.update_refs.push_back(ref);
    w.update_codes.push_back(store.canonical_code(ref));
    w.kinds.push_back(static_cast<uint8_t>(op.kind()));
    if (op.kind() == UpdateOp::Kind::kInsert) {
      w.content_ids.push_back(store.InternContentCode(op.content()));
      w.content_codes.push_back(CanonicalCode(op.content()));
    } else {
      w.content_ids.push_back(0);
      w.content_codes.push_back("");
    }
  }
  for (size_t i = 0; i < kMatrix; ++i) {
    for (size_t j = 0; j < kMatrix; ++j) {
      w.pairs.emplace_back(i % w.read_refs.size(), j % w.update_refs.size());
    }
  }
  uint64_t next = 0;
  for (const auto& [i, j] : w.pairs) {
    w.string_map.emplace(StringKey(w, i, j), next);
    w.int_map.emplace(IntKey(w, i, j), next);
    ++next;
  }
  return w;
}

void BM_KeyLookupString(benchmark::State& state) {
  const KeyWorkload w = MakeKeyWorkload();
  for (auto _ : state) {
    uint64_t sum = 0;
    for (const auto& [i, j] : w.pairs) {
      sum += w.string_map.find(StringKey(w, i, j))->second;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(w.pairs.size()));
}
BENCHMARK(BM_KeyLookupString);

void BM_KeyLookupInterned(benchmark::State& state) {
  const KeyWorkload w = MakeKeyWorkload();
  for (auto _ : state) {
    uint64_t sum = 0;
    for (const auto& [i, j] : w.pairs) {
      sum += w.int_map.find(IntKey(w, i, j))->second;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(w.pairs.size()));
}
BENCHMARK(BM_KeyLookupInterned);

/// Harness-timed version of the two lookup loops above, so the acceptance
/// number lands in BENCH_intern.json (benchmark's own counters only reach
/// its console/JSON reporters). Best-of-`reps` to shrug off scheduler
/// noise.
std::string MeasureKeyLookup() {
  const KeyWorkload w = MakeKeyWorkload();
  constexpr int kReps = 7;
  constexpr int kInnerLoops = 50;
  auto time_best = [&](auto&& body) {
    double best = 1e300;
    for (int rep = 0; rep < kReps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      for (int loop = 0; loop < kInnerLoops; ++loop) body();
      const auto t1 = std::chrono::steady_clock::now();
      best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
    }
    return best / (kInnerLoops * static_cast<double>(w.pairs.size()));
  };
  uint64_t sink = 0;
  const double string_s = time_best([&] {
    for (const auto& [i, j] : w.pairs) {
      sink += w.string_map.find(StringKey(w, i, j))->second;
    }
  });
  const double interned_s = time_best([&] {
    for (const auto& [i, j] : w.pairs) {
      sink += w.int_map.find(IntKey(w, i, j))->second;
    }
  });
  benchmark::DoNotOptimize(sink);
  const double speedup = string_s / interned_s;
  char buffer[256];
  snprintf(buffer, sizeof(buffer),
           "\"key_lookup\":{\"pairs\":%zu,\"string_ns\":%.2f,"
           "\"interned_ns\":%.2f,\"speedup\":%.2f}",
           w.pairs.size(), string_s * 1e9, interned_s * 1e9, speedup);
  std::cerr << "key_lookup speedup: " << speedup << "x (string "
            << string_s * 1e9 << " ns, interned " << interned_s * 1e9
            << " ns per lookup)\n";
  return buffer;
}

}  // namespace
}  // namespace xmlup

/// Custom main (instead of benchmark_main): honors XMLUP_OBS, measures the
/// string-vs-interned key comparison, and dumps metrics + the comparison
/// to BENCH_intern.json for the CI bench-smoke job.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  const bool obs = xmlup::bench::EnableObsFromEnv();
  std::cerr << "obs " << (obs ? "enabled" : "disabled (XMLUP_OBS=0)") << "\n";
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const std::string key_lookup = xmlup::MeasureKeyLookup();
  xmlup::bench::DumpObs("intern", key_lookup);
  return 0;
}
