// Lint-engine benchmarks (E16): throughput of the full multi-pass
// analyzer over generated straight-line programs, plus how much the warm
// batch-engine memo cache buys when linting many programs that share
// patterns (the compiler-frontend workload: one Linter, many translation
// units). Branching patterns under a small search budget keep the
// truncated-verdict share non-zero, so the soundness path is part of what
// is measured.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "benchmark/benchmark.h"
#include "bench/bench_util.h"
#include "analysis/lint.h"
#include "common/random.h"
#include "workload/program_generator.h"

namespace xmlup {
namespace {

constexpr size_t kPrograms = 24;
constexpr size_t kStatementsPer = 16;

LintOptions MakeLintOptions() {
  LintOptions options;
  // Small budget: branching reads routinely truncate, exercising the
  // Unknown-as-dependence path the soundness guard relies on.
  options.batch.detector.search.max_nodes = 4;
  options.batch.num_threads = 4;
  return options;
}

std::vector<Program> MakePrograms() {
  ProgramGenOptions options;
  options.num_statements = kStatementsPer;
  options.num_variables = 2;
  options.repeat_read_prob = 0.4;  // CSE + dead-read opportunities
  options.pattern.size = 4;
  options.pattern.branch_prob = 0.5;  // branching reads → some Unknowns
  options.pattern.alphabet = {bench::Symbols()->Intern("a"),
                              bench::Symbols()->Intern("b"),
                              bench::Symbols()->Intern("c")};
  RandomProgramGenerator gen(bench::Symbols(), options);
  Rng rng(4242);
  std::vector<Program> programs;
  for (size_t i = 0; i < kPrograms; ++i) programs.push_back(gen.Generate(&rng));
  return programs;
}

void BM_LintProgramColdEngine(benchmark::State& state) {
  const std::vector<Program> programs = MakePrograms();
  for (auto _ : state) {
    const Linter linter(MakeLintOptions());
    const LintResult result = linter.Lint(programs[0]);
    benchmark::DoNotOptimize(result.diagnostics.data());
  }
  state.counters["statements"] = static_cast<double>(kStatementsPer);
}
BENCHMARK(BM_LintProgramColdEngine)->Unit(benchmark::kMillisecond);

void BM_LintCorpusWarmEngine(benchmark::State& state) {
  const std::vector<Program> programs = MakePrograms();
  const Linter linter(MakeLintOptions());
  for (auto _ : state) {
    size_t diagnostics = 0;
    for (const Program& program : programs) {
      diagnostics += linter.Lint(program).diagnostics.size();
    }
    benchmark::DoNotOptimize(diagnostics);
  }
  state.counters["programs"] = static_cast<double>(kPrograms);
}
BENCHMARK(BM_LintCorpusWarmEngine)->Unit(benchmark::kMillisecond);

void BM_RenderSarif(benchmark::State& state) {
  const std::vector<Program> programs = MakePrograms();
  const Linter linter(MakeLintOptions());
  const LintResult result = linter.Lint(programs[0]);
  for (auto _ : state) {
    const std::string sarif = RenderLintSarif(programs[0], result);
    benchmark::DoNotOptimize(sarif.data());
  }
}
BENCHMARK(BM_RenderSarif)->Unit(benchmark::kMicrosecond);

}  // namespace

/// Harness-timed corpus lint for BENCH_lint.json: one warm Linter over the
/// whole corpus, reporting throughput and the diagnostic/Unknown mix the
/// acceptance criteria track.
std::string MeasureLintCorpus() {
  const std::vector<Program> programs = MakePrograms();
  const Linter linter(MakeLintOptions());
  size_t statements = 0;
  size_t diagnostics = 0;
  size_t unknown = 0;
  size_t pairs = 0;
  size_t fixits = 0;
  // Warm-up pass fills the memo cache; the timed pass is the steady state.
  for (const Program& program : programs) linter.Lint(program);
  const auto t0 = std::chrono::steady_clock::now();
  for (const Program& program : programs) {
    const LintResult result = linter.Lint(program);
    statements += result.stats.statements;
    diagnostics += result.diagnostics.size();
    unknown += result.stats.unknown_verdicts;
    pairs += result.stats.pairs_checked;
    for (const Diagnostic& d : result.diagnostics) {
      fixits += d.fixit.has_value() ? 1 : 0;
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(t1 - t0).count();
  const double unknown_share = pairs == 0 ? 0.0 : 1.0 * unknown / pairs;
  char buffer[512];
  snprintf(buffer, sizeof(buffer),
           "\"lint\":{\"programs\":%zu,\"statements\":%zu,"
           "\"diagnostics\":%zu,\"fixits\":%zu,\"pairs_checked\":%zu,"
           "\"unknown_share\":%.4f,\"seconds\":%.4f,"
           "\"diagnostics_per_sec\":%.1f}",
           kPrograms, statements, diagnostics, fixits, pairs, unknown_share,
           seconds, seconds == 0 ? 0.0 : diagnostics / seconds);
  std::cerr << "lint corpus: " << kPrograms << " programs, " << diagnostics
            << " diagnostics in " << seconds * 1e3 << " ms (unknown share "
            << unknown_share << ")\n";
  return buffer;
}

}  // namespace xmlup

/// Custom main (instead of benchmark_main): honors XMLUP_OBS, measures the
/// warm-corpus lint, and dumps metrics to BENCH_lint.json for CI.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  const bool obs = xmlup::bench::EnableObsFromEnv();
  std::cerr << "obs " << (obs ? "enabled" : "disabled (XMLUP_OBS=0)") << "\n";
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const std::string corpus = xmlup::MeasureLintCorpus();
  xmlup::bench::DumpObs("lint", corpus);
  return 0;
}
