// Experiment E2 (§4.1 + REMARK): weak/strong matching of linear patterns
// is polynomial; ablation of the paper's NFA-intersection construction
// against the direct dynamic-programming matcher. Series: pattern length
// sweep and star-density sweep for both matchers.

#include "benchmark/benchmark.h"
#include "bench/bench_util.h"
#include "match/matching.h"

namespace xmlup {
namespace {

void RunMatch(benchmark::State& state, MatcherKind kind,
              double wildcard_prob, double descendant_prob) {
  const size_t size = static_cast<size_t>(state.range(0));
  const Pattern l1 =
      bench::RandomLinear(size, 11, wildcard_prob, descendant_prob);
  const Pattern l2 =
      bench::RandomLinear(size, 13, wildcard_prob, descendant_prob);
  size_t matches = 0;
  for (auto _ : state) {
    matches += MatchWeakly(l1, l2, kind).matches ? 1 : 0;
    benchmark::DoNotOptimize(matches);
  }
  state.SetComplexityN(state.range(0));
}

void BM_MatchNfa(benchmark::State& state) {
  RunMatch(state, MatcherKind::kNfa, 0.2, 0.4);
}
BENCHMARK(BM_MatchNfa)
    ->RangeMultiplier(2)
    ->Range(4, 256)
    ->Complexity(benchmark::oNSquared);

void BM_MatchDp(benchmark::State& state) {
  RunMatch(state, MatcherKind::kDp, 0.2, 0.4);
}
BENCHMARK(BM_MatchDp)
    ->RangeMultiplier(2)
    ->Range(4, 256)
    ->Complexity(benchmark::oNSquared);

// Star-density ablation: all-wildcard descendant-heavy patterns are the
// worst case for the product construction (maximum nondeterminism).
void BM_MatchNfaStarHeavy(benchmark::State& state) {
  RunMatch(state, MatcherKind::kNfa, 0.9, 0.8);
}
BENCHMARK(BM_MatchNfaStarHeavy)->RangeMultiplier(2)->Range(4, 128);

void BM_MatchDpStarHeavy(benchmark::State& state) {
  RunMatch(state, MatcherKind::kDp, 0.9, 0.8);
}
BENCHMARK(BM_MatchDpStarHeavy)->RangeMultiplier(2)->Range(4, 128);

void BM_StrongVsWeak(benchmark::State& state) {
  const size_t size = static_cast<size_t>(state.range(0));
  const Pattern l1 = bench::RandomLinear(size, 17);
  const Pattern l2 = bench::RandomLinear(size, 19);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatchStrongly(l1, l2).matches);
  }
}
BENCHMARK(BM_StrongVsWeak)->RangeMultiplier(2)->Range(4, 256);

}  // namespace
}  // namespace xmlup
