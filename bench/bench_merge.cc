// Concurrent edit-merge throughput: N per-session update streams merged
// into one document through MergeExecutor (certify cross pairs → wavefront
// levels → split-phase execution), swept over session count {2, 4, 8} and
// conflict rate. The two regimes model collaborative editing:
//   low   each session edits its own r/s<k> subtree — cross pairs certify,
//         levels stay wide, most ops are accepted;
//   high  every session edits the same r/s0 subtree — uncertified pairs
//         chain the sessions, levels stack, most ops serialize.
// Patterns are linear (anchored XPaths), so certification runs the PTIME
// detectors — the production-shaped path, not the bounded-search tail.
// Each config's merged trees are checked against the sequential reference
// (ApplySerialReference), and the harness writes "merge":{"configs":[...]}
// — ops_total, accepted/serialized/rejected, levels, per-merge
// microseconds, throughput, oracle_identical — into BENCH_merge.json; CI
// asserts throughput > 0, oracle agreement and the accounting identity
// per config.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "benchmark/benchmark.h"
#include "common/check.h"
#include "common/random.h"
#include "engine/engine.h"
#include "merge/merge_executor.h"
#include "xml/isomorphism.h"
#include "xml/tree_algos.h"
#include "xml/xml_parser.h"

namespace xmlup {
namespace {

constexpr size_t kUnitsPerConfig = 8;
constexpr size_t kOpsPerSession = 3;
constexpr size_t kMaxSessions = 8;

Engine& SharedEngine() {
  static Engine& engine = *new Engine(bench::Symbols());
  return engine;
}

/// One pre-generated merge workload: kUnitsPerConfig (seed tree, streams)
/// units, deterministic per (sessions, regime).
struct MergeWorkload {
  std::vector<Tree> seeds;
  std::vector<std::vector<std::vector<UpdateOp>>> units;
};

/// The shared seed document: one s<k> subtree per possible session, each
/// holding the same small a/b/c furniture the op templates edit.
Tree MakeSeed() {
  std::string xml = "<r>";
  for (size_t k = 0; k < kMaxSessions; ++k) {
    const std::string s = "s" + std::to_string(k);
    xml += "<" + s + "><a><b/></a><c/></" + s + ">";
  }
  xml += "</r>";
  return ParseXml(xml, bench::Symbols()).value();
}

/// Draws one op for the session anchored at `anchor` (e.g. "r/s3"). The
/// templates mix inserts and deletes over the subtree's a/b/c furniture;
/// two sessions sharing an anchor collide constantly (the insert-an-a /
/// read-under-a pair is the canonical uncertified pair), while distinct
/// anchors keep every cross pair certified.
UpdateOp DrawOp(const std::string& anchor, Rng* rng) {
  Engine& engine = SharedEngine();
  const std::shared_ptr<SymbolTable>& symbols = bench::Symbols();
  auto ins = [&](const std::string& xpath, const char* content) {
    return engine.Bind(UpdateOp::MakeInsert(
        MustParseXPath(xpath, symbols),
        std::make_shared<const Tree>(ParseXml(content, symbols).value())));
  };
  auto del = [&](const std::string& xpath) {
    return engine.Bind(
        UpdateOp::MakeDelete(MustParseXPath(xpath, symbols)).value());
  };
  switch (rng->NextBounded(5)) {
    case 0:
      return ins(anchor, "<a><b/></a>");
    case 1:
      return ins(anchor + "/a", "<b/>");
    case 2:
      return ins(anchor + "/c", "<d/>");
    case 3:
      return del(anchor + "/a/b");
    default:
      return del(anchor + "/c/d");
  }
}

MergeWorkload MakeWorkload(size_t sessions, bool disjoint, uint64_t seed) {
  Rng rng(seed);
  MergeWorkload w;
  for (size_t u = 0; u < kUnitsPerConfig; ++u) {
    w.seeds.push_back(MakeSeed());
    std::vector<std::vector<UpdateOp>> streams(sessions);
    for (size_t k = 0; k < sessions; ++k) {
      const std::string anchor =
          disjoint ? "r/s" + std::to_string(k) : "r/s0";
      for (size_t i = 0; i < kOpsPerSession; ++i) {
        streams[k].push_back(DrawOp(anchor, &rng));
      }
    }
    w.units.push_back(std::move(streams));
  }
  return w;
}

/// Merges every unit of `w` once; returns aggregate report counts and
/// leaves the merged trees in `merged` (cleared first) for oracle checks.
MergeReport MergeAll(const MergeWorkload& w, const MergeExecutor& executor,
                     std::vector<Tree>* merged) {
  MergeReport total;
  if (merged) merged->clear();
  for (size_t u = 0; u < w.seeds.size(); ++u) {
    Tree working = CopyTree(w.seeds[u]);
    const Result<MergeReport> report = executor.Merge(&working, w.units[u]);
    XMLUP_CHECK(report.ok());
    total.ops_total += report->ops_total;
    total.accepted += report->accepted;
    total.serialized += report->serialized;
    total.rejected += report->rejected;
    total.levels += report->levels;
    if (merged) merged->push_back(std::move(working));
  }
  return total;
}

void BM_Merge(benchmark::State& state) {
  const size_t sessions = static_cast<size_t>(state.range(0));
  const bool disjoint = state.range(1) == 0;
  const MergeWorkload w =
      MakeWorkload(sessions, disjoint, 40'000 + sessions);
  MergeOptions options;
  options.num_threads = 4;
  const MergeExecutor executor(&SharedEngine(), options);
  MergeAll(w, executor, nullptr);  // warm the compiled-automata caches
  for (auto _ : state) {
    const MergeReport total = MergeAll(w, executor, nullptr);
    benchmark::DoNotOptimize(total.ops_total);
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<int64_t>(kUnitsPerConfig * sessions * kOpsPerSession));
  state.SetLabel(disjoint ? "low" : "high");
}
BENCHMARK(BM_Merge)
    ->Unit(benchmark::kMicrosecond)
    ->ArgsProduct({{2, 4, 8}, {0, 1}});

/// Harness-timed sweep — the acceptance numbers for BENCH_merge.json.
/// Best-of-reps per config; every config's merged trees must match the
/// sequential reference canonical-code-for-canonical-code.
std::string MeasureMerge() {
  std::string configs;
  for (const bool disjoint : {true, false}) {
    const char* regime = disjoint ? "low" : "high";
    for (const size_t sessions : {size_t{2}, size_t{4}, size_t{8}}) {
      const MergeWorkload w =
          MakeWorkload(sessions, disjoint, 50'000 + sessions);
      MergeOptions options;
      options.num_threads = 4;
      const MergeExecutor executor(&SharedEngine(), options);

      // Oracle pass: merged vs serial reference, unit by unit.
      std::vector<Tree> merged;
      const MergeReport total = MergeAll(w, executor, &merged);
      bool oracle_identical = true;
      for (size_t u = 0; u < w.seeds.size(); ++u) {
        Tree check = CopyTree(w.seeds[u]);
        const Result<MergeReport> r = executor.Merge(&check, w.units[u]);
        XMLUP_CHECK(r.ok());
        Tree reference = CopyTree(w.seeds[u]);
        ApplySerialReference(&reference, w.units[u], *r);
        oracle_identical =
            oracle_identical &&
            CanonicalCode(merged[u]) == CanonicalCode(reference);
      }

      constexpr int kReps = 5;
      double best = 1e300;
      for (int rep = 0; rep < kReps; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        MergeAll(w, executor, nullptr);
        const auto t1 = std::chrono::steady_clock::now();
        best = std::min(best,
                        std::chrono::duration<double>(t1 - t0).count());
      }
      const double merge_us =
          best * 1e6 / static_cast<double>(kUnitsPerConfig);
      const double throughput =
          static_cast<double>(total.ops_total) / best;

      char buffer[512];
      snprintf(buffer, sizeof(buffer),
               "%s{\"sessions\":%zu,\"conflict\":\"%s\","
               "\"ops_total\":%zu,\"accepted\":%zu,\"serialized\":%zu,"
               "\"rejected\":%zu,\"levels\":%zu,\"merge_us\":%.1f,"
               "\"throughput_ops_per_s\":%.0f,\"oracle_identical\":%s}",
               configs.empty() ? "" : ",", sessions, regime,
               total.ops_total, total.accepted, total.serialized,
               total.rejected, total.levels, merge_us, throughput,
               oracle_identical ? "true" : "false");
      configs += buffer;
      std::cerr << "merge sessions=" << sessions << " conflict=" << regime
                << ": " << merge_us << " us/merge, " << throughput
                << " ops/s, accepted " << total.accepted << "/"
                << total.ops_total << ", oracle "
                << (oracle_identical ? "identical" : "DIVERGED") << "\n";
    }
  }
  return "\"merge\":{\"configs\":[" + configs + "]}";
}

}  // namespace
}  // namespace xmlup

/// Custom main (instead of benchmark_main): honors XMLUP_OBS, runs the
/// session/conflict sweep with its serial-oracle check, and dumps metrics
/// + the sweep to BENCH_merge.json for the CI bench-smoke job.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  const bool obs = xmlup::bench::EnableObsFromEnv();
  std::cerr << "obs " << (obs ? "enabled" : "disabled (XMLUP_OBS=0)") << "\n";
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const std::string merge = xmlup::MeasureMerge();
  xmlup::bench::DumpObs("merge", merge);
  return 0;
}
