// Experiment E10 (ablation; Amer-Yahia et al., the paper's reference [2]):
// pattern minimization as a preprocessing step — minimization cost vs
// pattern size, achieved shrinkage on redundant patterns, and the
// knock-on saving for containment checking (fewer // edges and branches
// mean fewer canonical models).

#include "benchmark/benchmark.h"
#include "bench/bench_util.h"
#include "common/random.h"
#include "conflict/containment.h"
#include "conflict/minimize.h"
#include "workload/pattern_generator.h"

namespace xmlup {
namespace {

/// A deliberately redundant pattern: a base branching pattern with each
/// predicate duplicated.
Pattern RedundantPattern(size_t base_size, uint64_t seed) {
  PatternGenOptions options;
  options.size = base_size;
  options.branch_prob = 0.6;
  options.alphabet = {bench::Symbols()->Intern("a"),
                      bench::Symbols()->Intern("b")};
  RandomPatternGenerator gen(bench::Symbols(), options);
  Rng rng(seed);
  Pattern p = gen.GenerateBranching(&rng);
  // Duplicate every leaf predicate.
  std::vector<std::pair<PatternNodeId, std::pair<Label, Axis>>> dups;
  for (PatternNodeId n : p.PreOrder()) {
    if (n != p.root() && n != p.output() &&
        p.first_child(n) == kNullPatternNode) {
      dups.push_back({p.parent(n), {p.label(n), p.axis(n)}});
    }
  }
  for (const auto& [parent, edge] : dups) {
    p.AddChild(parent, edge.first, edge.second);
  }
  return p;
}

void BM_MinimizeCost(benchmark::State& state) {
  const Pattern p =
      RedundantPattern(static_cast<size_t>(state.range(0)), 77);
  size_t minimized_size = 0;
  for (auto _ : state) {
    const Pattern m = MinimizePattern(p);
    minimized_size = m.size();
    benchmark::DoNotOptimize(minimized_size);
  }
  state.counters["original_nodes"] = static_cast<double>(p.size());
  state.counters["minimized_nodes"] = static_cast<double>(minimized_size);
}
BENCHMARK(BM_MinimizeCost)->RangeMultiplier(2)->Range(4, 64);

void BM_ContainmentRawVsMinimized(benchmark::State& state) {
  const bool minimize = state.range(1) != 0;
  Pattern p = RedundantPattern(static_cast<size_t>(state.range(0)), 79);
  Pattern q = RedundantPattern(static_cast<size_t>(state.range(0)), 83);
  if (minimize) {
    p = MinimizePattern(p);
    q = MinimizePattern(q);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecideContainment(p, q).contained);
  }
  state.counters["models"] = static_cast<double>(CanonicalModelCount(p, q));
}
BENCHMARK(BM_ContainmentRawVsMinimized)
    ->ArgsProduct({{4, 6, 8}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

void BM_HomomorphismCheck(benchmark::State& state) {
  const Pattern p = RedundantPattern(static_cast<size_t>(state.range(0)), 89);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HasOutputPreservingHomomorphism(p, p));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_HomomorphismCheck)
    ->RangeMultiplier(2)
    ->Range(4, 64)
    ->Complexity(benchmark::oNSquared);

}  // namespace
}  // namespace xmlup
