// Stage 0 ablation for the schema-type pruning filter: a typed 64×64
// read×update matrix solved two ways on the warm ref-Detect path —
//   warm    compiled automata + memoized products, no schema (the PR 6
//           hot path: every pair runs the full Stage 1 machinery);
//   pruned  the same pairs with DetectorOptions::dtd set: schema-disjoint
//           pairs resolve in Stage 0 (method kTypePruned) before any
//           automata work.
// The workload is sixteen sealed subsystems under a sealed root, 4 reads
// + 4 updates each, so the ~94% cross-subsystem pairs (plus some
// insert-insensitive same-subsystem ones) are schema-disjoint — and also
// conflict-free under the unrestricted semantics, so the two passes must
// agree verdict-for-verdict. The harness times both, checks that
// agreement, and writes "prune" (pairs, per-pair microseconds, speedup,
// pruned_fraction, verdicts_identical) into BENCH_prune.json next to the
// obs counters (store.types.*, detector.method.type_pruned,
// batch.type_pruned); CI asserts pruned_fraction > 0.5 and speedup >= 3.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "benchmark/benchmark.h"
#include "conflict/detector.h"
#include "conflict/update_op.h"
#include "dtd/dtd.h"
#include "obs/trace.h"
#include "pattern/pattern_store.h"
#include "pattern/xpath_parser.h"
#include "xml/xml_parser.h"

namespace xmlup {
namespace {

constexpr size_t kSubsystems = 16;
constexpr size_t kReadsPerSubsystem = 4;
constexpr size_t kUpdatesPerSubsystem = 4;

/// Verdict-only options (witness construction would swamp the per-pair
/// cost this bench isolates); `dtd` is added per phase.
DetectorOptions WarmOptions() {
  DetectorOptions options;
  options.build_witness = false;
  return options;
}

struct TypedWorkload {
  std::shared_ptr<SymbolTable> symbols;
  std::shared_ptr<PatternStore> store;
  std::unique_ptr<Dtd> dtd;
  std::vector<PatternRef> reads;
  std::vector<UpdateOp> updates;  // bound to `store`

  size_t pairs() const { return reads.size() * updates.size(); }
};

/// Sixteen closed label families under a sealed root: subsystem k owns
/// s<k>, x<k>, y<k> and nothing reaches across. Every pattern is anchored
/// r/s<k>, so cross-subsystem pairs are independent on *all* documents
/// (their depth-1 ancestors differ), which keeps the pruned and unpruned
/// verdict vectors identical — Stage 0 just proves it in O(1), while the
/// warm path pays one memoized product probe per read edge along chains
/// several x-steps deep.
TypedWorkload MakeTypedWorkload() {
  TypedWorkload w;
  w.symbols = std::make_shared<SymbolTable>();
  w.store = std::make_shared<PatternStore>(w.symbols);

  std::string schema = "root r\nallow r :";
  for (size_t k = 0; k < kSubsystems; ++k) schema += " s" + std::to_string(k);
  schema += "\n";
  for (size_t k = 0; k < kSubsystems; ++k) {
    const std::string s = std::to_string(k);
    schema += "allow s" + s + " : x" + s + "\n";
    schema += "allow x" + s + " : x" + s + " y" + s + "\n";
    schema += "seal y" + s + "\n";
  }
  w.dtd = std::make_unique<Dtd>(Dtd::Parse(schema, w.symbols).value());

  auto chain = [](size_t k, size_t xsteps, bool descendant, bool leaf) {
    const std::string s = std::to_string(k);
    std::string path = "r/s" + s + (descendant ? "//" : "/") + "x" + s;
    for (size_t t = 1; t < xsteps; ++t) path += "/x" + s;
    if (leaf) path += "/y" + s;
    return path;
  };
  auto intern = [&](const std::string& xpath) {
    return w.store->Intern(MustParseXPath(xpath, w.symbols));
  };

  for (size_t k = 0; k < kSubsystems; ++k) {
    // 4 reads: twelve x-steps deep × child/descendant × with/without leaf.
    // Depth is the point: the warm path pays one product probe per read
    // edge, Stage 0 one footprint intersection per pair regardless.
    for (int descendant = 0; descendant < 2; ++descendant) {
      for (int leaf = 0; leaf < 2; ++leaf) {
        w.reads.push_back(intern(chain(k, 12, descendant != 0, leaf != 0)));
      }
    }
    // 2 deletes (outputs stay inside the subsystem; never the root) ...
    for (size_t t = 6; t <= 12; t += 6) {
      w.updates.push_back(
          UpdateOp::MakeDelete(
              w.store, intern(chain(k, t, /*descendant=*/t > 6, true)))
              .value());
    }
    // ... and 2 inserts grafting subsystem-local content.
    const std::string s = std::to_string(k);
    const std::string leaf_xml = "<y" + s + "/>";
    const std::string deep_xml = "<x" + s + "><y" + s + "/></x" + s + ">";
    for (size_t t = 6; t <= 12; t += 6) {
      auto content = std::make_shared<const Tree>(
          ParseXml(t > 6 ? deep_xml : leaf_xml, w.symbols).value());
      w.updates.push_back(UpdateOp::MakeInsert(
          w.store, intern(chain(k, t, /*descendant=*/false, false)),
          std::move(content)));
    }
  }
  return w;
}

/// One full matrix pass through the ref facade. With `options.dtd` set,
/// Stage 0 answers schema-disjoint pairs; `pruned` (when non-null) counts
/// them via the report's method field.
uint64_t Pass(const TypedWorkload& w, const DetectorOptions& options,
              std::vector<ConflictVerdict>* verdicts, uint64_t* pruned) {
  uint64_t solved = 0;
  for (const PatternRef read : w.reads) {
    for (const UpdateOp& update : w.updates) {
      Result<ConflictReport> r = Detect(*w.store, read, update, options);
      if (r.ok()) {
        ++solved;
        if (verdicts) verdicts->push_back(r->verdict);
        if (pruned && r->method == DetectorMethod::kTypePruned) ++*pruned;
      }
    }
  }
  return solved;
}

void BM_DetectWarmUnpruned(benchmark::State& state) {
  const TypedWorkload w = MakeTypedWorkload();
  const DetectorOptions options = WarmOptions();
  Pass(w, options, nullptr, nullptr);  // compile + fill the product cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(Pass(w, options, nullptr, nullptr));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(w.pairs()));
}
BENCHMARK(BM_DetectWarmUnpruned)->Unit(benchmark::kMicrosecond);

void BM_DetectWarmPruned(benchmark::State& state) {
  const TypedWorkload w = MakeTypedWorkload();
  DetectorOptions options = WarmOptions();
  options.dtd = w.dtd.get();
  Pass(w, options, nullptr, nullptr);  // summaries + residual automata
  for (auto _ : state) {
    benchmark::DoNotOptimize(Pass(w, options, nullptr, nullptr));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(w.pairs()));
}
BENCHMARK(BM_DetectWarmPruned)->Unit(benchmark::kMicrosecond);

/// Harness-timed warm/pruned ablation — the acceptance numbers for
/// BENCH_prune.json. Best-of-reps per phase; the verdict vectors of the
/// two paths are compared elementwise (Stage 0 may change the *method* of
/// a pair, never its verdict).
std::string MeasurePrune() {
  const TypedWorkload w = MakeTypedWorkload();
  const DetectorOptions warm_options = WarmOptions();
  DetectorOptions pruned_options = warm_options;
  pruned_options.dtd = w.dtd.get();

  std::vector<ConflictVerdict> warm_verdicts, pruned_verdicts;
  uint64_t pruned_pairs = 0;
  Pass(w, warm_options, &warm_verdicts, nullptr);
  Pass(w, pruned_options, &pruned_verdicts, &pruned_pairs);
  const bool verdicts_identical =
      warm_verdicts == pruned_verdicts && warm_verdicts.size() == w.pairs();
  const double pruned_fraction =
      static_cast<double>(pruned_pairs) / static_cast<double>(w.pairs());

  constexpr int kReps = 7;
  constexpr int kInnerLoops = 3;
  auto time_best = [&](auto&& body) {
    double best = 1e300;
    for (int rep = 0; rep < kReps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      for (int loop = 0; loop < kInnerLoops; ++loop) body();
      const auto t1 = std::chrono::steady_clock::now();
      best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
    }
    return best / (kInnerLoops * static_cast<double>(w.pairs()));
  };

  // The span recorder is production-off (obs/trace.h): enabled, it appends
  // mutex-guarded spans per Detect call — a fixed observability cost,
  // identical in both arms, that swamps the pruned arm's sub-microsecond
  // floor. The ablation times the production configuration; the registered
  // BM_* benchmarks above still record spans for the trace artifact.
  obs::TraceRecorder& recorder = obs::TraceRecorder::Default();
  const bool spans_were_enabled = recorder.enabled();
  recorder.set_enabled(false);
  uint64_t sink = 0;
  // Warm: the PR 6 hot path — compiled automata + memoized products
  // (populated by the oracle passes above), every pair through Stage 1.
  const double warm_s =
      time_best([&] { sink += Pass(w, warm_options, nullptr, nullptr); });
  // Pruned: identical except Stage 0 short-circuits the disjoint pairs.
  const double pruned_s =
      time_best([&] { sink += Pass(w, pruned_options, nullptr, nullptr); });
  benchmark::DoNotOptimize(sink);
  recorder.set_enabled(spans_were_enabled);

  const double speedup = warm_s / pruned_s;
  char buffer[512];
  snprintf(buffer, sizeof(buffer),
           "\"prune\":{\"pairs\":%zu,\"warm_us\":%.3f,\"pruned_us\":%.3f,"
           "\"speedup\":%.2f,\"pruned_fraction\":%.4f,"
           "\"verdicts_identical\":%s}",
           w.pairs(), warm_s * 1e6, pruned_s * 1e6, speedup, pruned_fraction,
           verdicts_identical ? "true" : "false");
  std::cerr << "prune speedup: " << speedup << "x; per pair warm "
            << warm_s * 1e6 << " us, pruned " << pruned_s * 1e6 << " us; "
            << pruned_fraction * 100 << "% of pairs type-pruned; verdicts "
            << (verdicts_identical ? "identical" : "DIVERGED") << "\n";
  return buffer;
}

}  // namespace
}  // namespace xmlup

/// Custom main (instead of benchmark_main): honors XMLUP_OBS, runs the
/// warm/pruned ablation, and dumps metrics + the comparison to
/// BENCH_prune.json for the CI bench-smoke job.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  const bool obs = xmlup::bench::EnableObsFromEnv();
  std::cerr << "obs " << (obs ? "enabled" : "disabled (XMLUP_OBS=0)") << "\n";
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const std::string prune = xmlup::MeasurePrune();
  xmlup::bench::DumpObs("prune", prune);
  return 0;
}
