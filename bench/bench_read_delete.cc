// Experiment E3 (Theorem 1 / Corollary 1): read-delete conflict detection
// for linear reads is polynomial in |R| and |D|, and a branching delete
// costs the same as its mainline. Series: |R| sweep, |D| sweep, linear vs
// branching delete, NFA vs DP matcher.

#include "benchmark/benchmark.h"
#include "bench/bench_util.h"
#include "common/random.h"
#include "conflict/read_delete.h"
#include "workload/pattern_generator.h"

namespace xmlup {
namespace {

Pattern RandomDelete(size_t size, uint64_t seed, bool branching) {
  PatternGenOptions options;
  options.size = size;
  options.alphabet = {bench::Symbols()->Intern("a"),
                      bench::Symbols()->Intern("b"),
                      bench::Symbols()->Intern("c")};
  RandomPatternGenerator gen(bench::Symbols(), options);
  Rng rng(seed);
  for (;;) {
    Pattern p = branching ? gen.GenerateBranchingNonRootOutput(&rng)
                          : gen.GenerateLinear(&rng);
    if (p.output() != p.root()) return p;
  }
}

void RunDetection(benchmark::State& state, size_t read_size,
                  size_t delete_size, bool branching_delete,
                  MatcherKind matcher, bool build_witness = false) {
  const Pattern read = bench::RandomLinear(read_size, 23);
  const Pattern del = RandomDelete(delete_size, 29, branching_delete);
  size_t conflicts = 0;
  for (auto _ : state) {
    auto result = DetectLinearReadDeleteConflict(
        read, del, ConflictSemantics::kNode, matcher, build_witness);
    conflicts += (result.ok() && result->conflict()) ? 1 : 0;
    benchmark::DoNotOptimize(conflicts);
  }
}

void BM_ReadDelete_ReadSizeSweep(benchmark::State& state) {
  RunDetection(state, static_cast<size_t>(state.range(0)), 6, false,
               MatcherKind::kNfa);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ReadDelete_ReadSizeSweep)
    ->RangeMultiplier(2)
    ->Range(4, 128)
    ->Complexity();

void BM_ReadDelete_DeleteSizeSweep(benchmark::State& state) {
  RunDetection(state, 8, static_cast<size_t>(state.range(0)), false,
               MatcherKind::kNfa);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ReadDelete_DeleteSizeSweep)
    ->RangeMultiplier(2)
    ->Range(4, 128)
    ->Complexity();

void BM_ReadDelete_LinearDelete(benchmark::State& state) {
  RunDetection(state, 8, static_cast<size_t>(state.range(0)), false,
               MatcherKind::kNfa);
}
BENCHMARK(BM_ReadDelete_LinearDelete)->RangeMultiplier(2)->Range(8, 64);

void BM_ReadDelete_BranchingDelete(benchmark::State& state) {
  // Corollary 1: only the mainline matters, so branching deletes of the
  // same size should cost no more.
  RunDetection(state, 8, static_cast<size_t>(state.range(0)), true,
               MatcherKind::kNfa);
}
BENCHMARK(BM_ReadDelete_BranchingDelete)->RangeMultiplier(2)->Range(8, 64);

void BM_ReadDelete_WithWitnessSynthesis(benchmark::State& state) {
  // Detection plus witness construction + Lemma 1 re-verification — the
  // full constructive pipeline (costlier: verification evaluates patterns
  // on the synthesized tree).
  RunDetection(state, static_cast<size_t>(state.range(0)), 6, false,
               MatcherKind::kNfa, /*build_witness=*/true);
}
BENCHMARK(BM_ReadDelete_WithWitnessSynthesis)
    ->RangeMultiplier(2)
    ->Range(4, 128);

void BM_ReadDelete_DpMatcher(benchmark::State& state) {
  RunDetection(state, static_cast<size_t>(state.range(0)), 6, false,
               MatcherKind::kDp);
}
BENCHMARK(BM_ReadDelete_DpMatcher)->RangeMultiplier(2)->Range(4, 128);

}  // namespace
}  // namespace xmlup
