// Experiment E4 (Theorem 2 / Corollary 2): read-insert conflict detection
// for linear reads is polynomial in |R|, |I| and |X|. Series: |R| sweep,
// |I| sweep, |X| sweep, branching-insert ablation.

#include "benchmark/benchmark.h"
#include "bench/bench_util.h"
#include "common/random.h"
#include "conflict/read_insert.h"
#include "workload/pattern_generator.h"
#include "workload/tree_generator.h"

namespace xmlup {
namespace {

Pattern RandomInsertPattern(size_t size, uint64_t seed, bool branching) {
  PatternGenOptions options;
  options.size = size;
  options.alphabet = {bench::Symbols()->Intern("a"),
                      bench::Symbols()->Intern("b"),
                      bench::Symbols()->Intern("c")};
  RandomPatternGenerator gen(bench::Symbols(), options);
  Rng rng(seed);
  return branching ? gen.GenerateBranching(&rng) : gen.GenerateLinear(&rng);
}

Tree RandomContent(size_t size, uint64_t seed) {
  TreeGenOptions options;
  options.target_size = size;
  options.alphabet = {bench::Symbols()->Intern("a"),
                      bench::Symbols()->Intern("b"),
                      bench::Symbols()->Intern("c")};
  RandomTreeGenerator gen(bench::Symbols(), options);
  Rng rng(seed);
  return gen.Generate(&rng);
}

void RunDetection(benchmark::State& state, size_t read_size,
                  size_t insert_size, size_t content_size,
                  bool branching_insert, bool build_witness = false) {
  const Pattern read = bench::RandomLinear(read_size, 31);
  const Pattern ins = RandomInsertPattern(insert_size, 37, branching_insert);
  const Tree x = RandomContent(content_size, 41);
  size_t conflicts = 0;
  for (auto _ : state) {
    auto result = DetectLinearReadInsertConflict(
        read, ins, x, ConflictSemantics::kNode, MatcherKind::kNfa,
        build_witness);
    conflicts += (result.ok() && result->conflict()) ? 1 : 0;
    benchmark::DoNotOptimize(conflicts);
  }
}

void BM_ReadInsert_ReadSizeSweep(benchmark::State& state) {
  RunDetection(state, static_cast<size_t>(state.range(0)), 6, 8, false);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ReadInsert_ReadSizeSweep)
    ->RangeMultiplier(2)
    ->Range(4, 128)
    ->Complexity();

void BM_ReadInsert_InsertSizeSweep(benchmark::State& state) {
  RunDetection(state, 8, static_cast<size_t>(state.range(0)), 8, false);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ReadInsert_InsertSizeSweep)
    ->RangeMultiplier(2)
    ->Range(4, 128)
    ->Complexity();

void BM_ReadInsert_ContentSizeSweep(benchmark::State& state) {
  RunDetection(state, 8, 6, static_cast<size_t>(state.range(0)), false);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ReadInsert_ContentSizeSweep)
    ->RangeMultiplier(4)
    ->Range(4, 1024)
    ->Complexity();

void BM_ReadInsert_WithWitnessSynthesis(benchmark::State& state) {
  RunDetection(state, static_cast<size_t>(state.range(0)), 6, 8, false,
               /*build_witness=*/true);
}
BENCHMARK(BM_ReadInsert_WithWitnessSynthesis)
    ->RangeMultiplier(2)
    ->Range(4, 128);

void BM_ReadInsert_BranchingInsert(benchmark::State& state) {
  // Corollary 2 ablation: branching insert patterns cost like their
  // mainline.
  RunDetection(state, 8, static_cast<size_t>(state.range(0)), 8, true);
}
BENCHMARK(BM_ReadInsert_BranchingInsert)->RangeMultiplier(2)->Range(8, 64);

}  // namespace
}  // namespace xmlup
