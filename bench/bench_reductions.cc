// Experiment E7 (Theorems 4/6, Figures 7-8): end-to-end reduction pipeline
// — decide containment, build the conflict instance, synthesize and verify
// the Figure 7d/8c witness. Construction is linear; the decision cost is
// dominated by the containment oracle.

#include "benchmark/benchmark.h"
#include "bench/bench_util.h"
#include "conflict/containment.h"
#include "conflict/reductions.h"

namespace xmlup {
namespace {

/// A non-contained pair parameterized by size: p = m//x1//...//n (deep,
/// descendant) vs q = m/x1/.../n (rigid, child) — p ⊄ q.
std::pair<Pattern, Pattern> NonContainedPair(size_t size) {
  Pattern p(bench::Symbols());
  Pattern q(bench::Symbols());
  PatternNodeId pn = p.CreateRoot(bench::Symbols()->Intern("m"));
  PatternNodeId qn = q.CreateRoot(bench::Symbols()->Intern("m"));
  for (size_t i = 0; i < size; ++i) {
    const Label label = bench::Symbols()->Intern("x" + std::to_string(i));
    pn = p.AddChild(pn, label, Axis::kDescendant);
    qn = q.AddChild(qn, label, Axis::kChild);
  }
  p.SetOutput(pn);
  q.SetOutput(qn);
  return {std::move(p), std::move(q)};
}

void BM_ReductionConstruction(benchmark::State& state) {
  auto [p, q] = NonContainedPair(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ReduceNonContainmentToReadInsert(p, q));
    benchmark::DoNotOptimize(ReduceNonContainmentToReadDelete(p, q));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ReductionConstruction)
    ->RangeMultiplier(2)
    ->Range(2, 64)
    ->Complexity(benchmark::oN);

void BM_EndToEndInsertPipeline(benchmark::State& state) {
  auto [p, q] = NonContainedPair(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    const ContainmentDecision d = DecideContainment(p, q);
    const ReadInsertReduction r = ReduceNonContainmentToReadInsert(p, q);
    auto witness = BuildReadInsertReductionWitness(r, q, *d.counterexample);
    benchmark::DoNotOptimize(witness.ok());
  }
}
BENCHMARK(BM_EndToEndInsertPipeline)
    ->DenseRange(1, 6)
    ->Unit(benchmark::kMicrosecond);

void BM_EndToEndDeletePipeline(benchmark::State& state) {
  auto [p, q] = NonContainedPair(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    const ContainmentDecision d = DecideContainment(p, q);
    const ReadDeleteReduction r = ReduceNonContainmentToReadDelete(p, q);
    auto witness = BuildReadDeleteReductionWitness(r, q, *d.counterexample);
    benchmark::DoNotOptimize(witness.ok());
  }
}
BENCHMARK(BM_EndToEndDeletePipeline)
    ->DenseRange(1, 6)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace xmlup
