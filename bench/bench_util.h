#ifndef XMLUP_BENCH_BENCH_UTIL_H_
#define XMLUP_BENCH_BENCH_UTIL_H_

#include <memory>

#include "common/random.h"
#include "pattern/xpath_parser.h"
#include "workload/catalog_generator.h"
#include "workload/pattern_generator.h"
#include "workload/tree_generator.h"
#include "xml/symbol_table.h"

namespace xmlup {
namespace bench {

/// Benchmarks share one symbol table; all generators are seeded so every
/// run measures identical inputs.
inline const std::shared_ptr<SymbolTable>& Symbols() {
  static const auto& table =
      *new std::shared_ptr<SymbolTable>(std::make_shared<SymbolTable>());
  return table;
}

inline Pattern Xp(const char* xpath) {
  return MustParseXPath(xpath, Symbols());
}

/// A random linear pattern of exactly `size` nodes over a small alphabet.
inline Pattern RandomLinear(size_t size, uint64_t seed,
                            double wildcard_prob = 0.2,
                            double descendant_prob = 0.4) {
  PatternGenOptions options;
  options.size = size;
  options.wildcard_prob = wildcard_prob;
  options.descendant_prob = descendant_prob;
  options.alphabet = {Symbols()->Intern("a"), Symbols()->Intern("b"),
                      Symbols()->Intern("c")};
  RandomPatternGenerator gen(Symbols(), options);
  Rng rng(seed);
  return gen.GenerateLinear(&rng);
}

inline Tree Catalog(size_t num_books, uint64_t seed) {
  CatalogOptions options;
  options.num_books = num_books;
  Rng rng(seed);
  return GenerateCatalog(Symbols(), options, &rng);
}

}  // namespace bench
}  // namespace xmlup

#endif  // XMLUP_BENCH_BENCH_UTIL_H_
