#ifndef XMLUP_BENCH_BENCH_UTIL_H_
#define XMLUP_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "common/random.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pattern/xpath_parser.h"
#include "workload/catalog_generator.h"
#include "workload/pattern_generator.h"
#include "workload/tree_generator.h"
#include "xml/symbol_table.h"

namespace xmlup {
namespace bench {

/// Benchmarks share one symbol table; all generators are seeded so every
/// run measures identical inputs.
inline const std::shared_ptr<SymbolTable>& Symbols() {
  static const auto& table =
      *new std::shared_ptr<SymbolTable>(std::make_shared<SymbolTable>());
  return table;
}

inline Pattern Xp(const char* xpath) {
  return MustParseXPath(xpath, Symbols());
}

/// A random linear pattern of exactly `size` nodes over a small alphabet.
inline Pattern RandomLinear(size_t size, uint64_t seed,
                            double wildcard_prob = 0.2,
                            double descendant_prob = 0.4) {
  PatternGenOptions options;
  options.size = size;
  options.wildcard_prob = wildcard_prob;
  options.descendant_prob = descendant_prob;
  options.alphabet = {Symbols()->Intern("a"), Symbols()->Intern("b"),
                      Symbols()->Intern("c")};
  RandomPatternGenerator gen(Symbols(), options);
  Rng rng(seed);
  return gen.GenerateLinear(&rng);
}

inline Tree Catalog(size_t num_books, uint64_t seed) {
  CatalogOptions options;
  options.num_books = num_books;
  Rng rng(seed);
  return GenerateCatalog(Symbols(), options, &rng);
}

/// Observability toggle for bench harnesses: XMLUP_OBS=0 turns the trace
/// recorder off (metrics counters are always live unless compiled out with
/// -DXMLUP_OBS_DISABLED); anything else — including unset — turns it on.
/// Lets the same binary measure obs-on vs obs-off overhead.
inline bool ObsEnabledFromEnv() {
  const char* env = std::getenv("XMLUP_OBS");
  return env == nullptr || std::strcmp(env, "0") != 0;
}

/// Applies ObsEnabledFromEnv() to the default recorder and returns the
/// chosen state. Call once at the top of a bench main().
inline bool EnableObsFromEnv() {
  const bool enabled = ObsEnabledFromEnv();
  obs::TraceRecorder::Default().set_enabled(enabled);
  return enabled;
}

/// Dumps the obs state accumulated by a bench run:
///   BENCH_<name>.json        — counters/gauges/histograms + span stats
///   BENCH_<name>_trace.json  — Chrome trace_event JSON (chrome://tracing)
/// Files land in the working directory; CI uploads them as artifacts.
/// `extra_json`, when non-empty, must be one or more `"key":value` members
/// (no surrounding braces) and is spliced into the top-level object —
/// harness-computed results (e.g. bench_intern's key_lookup comparison)
/// ride along in the same artifact CI already validates.
inline void DumpObs(const char* name, const std::string& extra_json = "") {
  obs::TraceRecorder& recorder = obs::TraceRecorder::Default();
  const std::string stats_path = std::string("BENCH_") + name + ".json";
  std::ofstream stats(stats_path);
  stats << "{\"bench\":\"" << name << "\",\"obs_enabled\":"
        << (recorder.enabled() ? "true" : "false");
  if (!extra_json.empty()) stats << "," << extra_json;
  stats << ",\"metrics\":" << obs::MetricsRegistry::Default().Snapshot().ToJson()
        << ",\"trace\":" << recorder.ToStatsJson() << "}\n";
  stats.close();

  const std::string trace_path = std::string("BENCH_") + name + "_trace.json";
  std::ofstream trace(trace_path);
  trace << recorder.ToChromeTraceJson() << "\n";
  trace.close();
  std::cerr << "obs dump: " << stats_path << " + " << trace_path << " ("
            << recorder.Snapshot().size() << " spans)\n";
}

}  // namespace bench
}  // namespace xmlup

#endif  // XMLUP_BENCH_BENCH_UTIL_H_
