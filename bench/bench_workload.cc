// Workload-driver benchmarks (E18): the declarative driver under
// google-benchmark timing, plus a harness-run smoke workload whose
// per-phase throughput/latency report lands in BENCH_workload.json for the
// CI bench-smoke job (the same envelope examples/xmlup_bench emits for
// arbitrary spec files).
//
// BM_BuildPlan isolates plan generation (all Rng draws, pattern
// generation, interning, binding) — the untimed part of a driver run.
// BM_ClosedLoopPhase runs a complete single-phase closed-loop workload at
// 1/2/4/8 workers against a warm engine, which is the driver's sustained-
// throughput shape.

#include <string>

#include "benchmark/benchmark.h"
#include "bench/bench_util.h"
#include "common/check.h"
#include "common/json.h"
#include "driver/driver.h"
#include "driver/workload_spec.h"
#include "engine/engine.h"

namespace xmlup {
namespace {

/// The smoke shape: small generator, two sessions, a mixed closed phase.
/// Mirrors workloads/smoke.json but is embedded so the bench binary runs
/// from any working directory.
constexpr char kSmokeSpec[] = R"({
  "name": "bench-smoke",
  "seed": 7,
  "generator": {
    "alphabet_size": 3,
    "tree": {"target_size": 10, "max_depth": 6},
    "pattern": {"size": 4}
  },
  "sessions": {"count": 2, "initial_reads": 2, "initial_updates": 2},
  "phases": [
    {"name": "warmup", "mode": "closed", "workers": 1, "ops": 30},
    {"name": "steady", "mode": "open", "workers": 2, "ops": 60,
     "arrival_rate": 100,
     "mix": {"insert": 0.4, "delete": 0.4, "edit": 0.2}}
  ]
})";

driver::WorkloadSpec SmokeSpec() {
  return driver::WorkloadSpec::Parse(kSmokeSpec).value();
}

driver::WorkloadSpec ClosedPhaseSpec(size_t workers) {
  driver::WorkloadSpec spec = SmokeSpec();
  spec.phases.resize(1);
  spec.phases[0].name = "closed";
  spec.phases[0].workers = workers;
  spec.phases[0].ops = 200;
  spec.phases[0].mix.edit = 0.2;
  return spec;
}

void BM_BuildPlan(benchmark::State& state) {
  const driver::WorkloadSpec spec = SmokeSpec();
  for (auto _ : state) {
    Engine engine;
    Result<driver::WorkloadPlan> plan = driver::Driver::BuildPlan(spec, &engine);
    benchmark::DoNotOptimize(plan.ok());
  }
}
BENCHMARK(BM_BuildPlan)->Unit(benchmark::kMillisecond);

void BM_ClosedLoopPhase(benchmark::State& state) {
  const driver::WorkloadSpec spec =
      ClosedPhaseSpec(static_cast<size_t>(state.range(0)));
  // One engine across iterations: sustained throughput is measured against
  // a warm store/memo cache, which is the production steady state.
  Engine engine;
  size_t ops = 0;
  for (auto _ : state) {
    driver::Driver workload_driver(&engine, spec);
    Result<driver::DriverReport> report = workload_driver.Run();
    if (!report.ok()) {
      state.SkipWithError("driver run failed");
      return;
    }
    ops += report->phases[0].ops_completed;
  }
  state.counters["ops/s"] = benchmark::Counter(
      static_cast<double>(ops), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ClosedLoopPhase)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

/// Harness-run smoke workload: one full driver run whose report is spliced
/// into BENCH_workload.json as the "workload" member for
/// scripts/check_bench_json.py.
std::string RunSmokeWorkload() {
  const driver::WorkloadSpec spec = SmokeSpec();
  Engine engine;
  driver::Driver workload_driver(&engine, spec);
  Result<driver::DriverReport> report = workload_driver.Run();
  XMLUP_CHECK(report.ok());
  return "\"workload\":" + WriteJson(report->ToJson());
}

}  // namespace xmlup

/// Custom main (instead of benchmark_main): honors XMLUP_OBS, runs the
/// smoke workload, and dumps metrics + the driver report to
/// BENCH_workload.json for the CI bench-smoke job.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  const bool obs = xmlup::bench::EnableObsFromEnv();
  std::cerr << "obs " << (obs ? "enabled" : "disabled (XMLUP_OBS=0)") << "\n";
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const std::string workload = xmlup::RunSmokeWorkload();
  xmlup::bench::DumpObs("workload", workload);
  return 0;
}
