file(REMOVE_RECURSE
  "CMakeFiles/bench_bounded_search.dir/bench_bounded_search.cc.o"
  "CMakeFiles/bench_bounded_search.dir/bench_bounded_search.cc.o.d"
  "bench_bounded_search"
  "bench_bounded_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bounded_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
