file(REMOVE_RECURSE
  "CMakeFiles/bench_commutativity.dir/bench_commutativity.cc.o"
  "CMakeFiles/bench_commutativity.dir/bench_commutativity.cc.o.d"
  "bench_commutativity"
  "bench_commutativity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_commutativity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
