# Empty dependencies file for bench_minimize.
# This may be replaced when dependencies are built.
