file(REMOVE_RECURSE
  "CMakeFiles/bench_read_delete.dir/bench_read_delete.cc.o"
  "CMakeFiles/bench_read_delete.dir/bench_read_delete.cc.o.d"
  "bench_read_delete"
  "bench_read_delete.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_read_delete.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
