# Empty compiler generated dependencies file for bench_read_delete.
# This may be replaced when dependencies are built.
