file(REMOVE_RECURSE
  "CMakeFiles/bench_read_insert.dir/bench_read_insert.cc.o"
  "CMakeFiles/bench_read_insert.dir/bench_read_insert.cc.o.d"
  "bench_read_insert"
  "bench_read_insert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_read_insert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
