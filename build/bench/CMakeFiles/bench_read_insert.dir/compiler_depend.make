# Empty compiler generated dependencies file for bench_read_insert.
# This may be replaced when dependencies are built.
