file(REMOVE_RECURSE
  "CMakeFiles/conflict_matrix.dir/conflict_matrix.cpp.o"
  "CMakeFiles/conflict_matrix.dir/conflict_matrix.cpp.o.d"
  "conflict_matrix"
  "conflict_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conflict_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
