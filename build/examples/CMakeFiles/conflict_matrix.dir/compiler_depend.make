# Empty compiler generated dependencies file for conflict_matrix.
# This may be replaced when dependencies are built.
