file(REMOVE_RECURSE
  "CMakeFiles/inventory_restock.dir/inventory_restock.cpp.o"
  "CMakeFiles/inventory_restock.dir/inventory_restock.cpp.o.d"
  "inventory_restock"
  "inventory_restock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inventory_restock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
