# Empty compiler generated dependencies file for inventory_restock.
# This may be replaced when dependencies are built.
