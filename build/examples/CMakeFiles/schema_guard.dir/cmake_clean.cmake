file(REMOVE_RECURSE
  "CMakeFiles/schema_guard.dir/schema_guard.cpp.o"
  "CMakeFiles/schema_guard.dir/schema_guard.cpp.o.d"
  "schema_guard"
  "schema_guard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_guard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
