# Empty dependencies file for schema_guard.
# This may be replaced when dependencies are built.
