file(REMOVE_RECURSE
  "CMakeFiles/xmlup_cli.dir/xmlup_cli.cpp.o"
  "CMakeFiles/xmlup_cli.dir/xmlup_cli.cpp.o.d"
  "xmlup_cli"
  "xmlup_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlup_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
