# Empty compiler generated dependencies file for xmlup_cli.
# This may be replaced when dependencies are built.
