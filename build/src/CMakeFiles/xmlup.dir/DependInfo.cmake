
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/dependence.cc" "src/CMakeFiles/xmlup.dir/analysis/dependence.cc.o" "gcc" "src/CMakeFiles/xmlup.dir/analysis/dependence.cc.o.d"
  "/root/repo/src/analysis/interpreter.cc" "src/CMakeFiles/xmlup.dir/analysis/interpreter.cc.o" "gcc" "src/CMakeFiles/xmlup.dir/analysis/interpreter.cc.o.d"
  "/root/repo/src/analysis/optimizer.cc" "src/CMakeFiles/xmlup.dir/analysis/optimizer.cc.o" "gcc" "src/CMakeFiles/xmlup.dir/analysis/optimizer.cc.o.d"
  "/root/repo/src/analysis/program.cc" "src/CMakeFiles/xmlup.dir/analysis/program.cc.o" "gcc" "src/CMakeFiles/xmlup.dir/analysis/program.cc.o.d"
  "/root/repo/src/automata/nfa.cc" "src/CMakeFiles/xmlup.dir/automata/nfa.cc.o" "gcc" "src/CMakeFiles/xmlup.dir/automata/nfa.cc.o.d"
  "/root/repo/src/automata/nfa_ops.cc" "src/CMakeFiles/xmlup.dir/automata/nfa_ops.cc.o" "gcc" "src/CMakeFiles/xmlup.dir/automata/nfa_ops.cc.o.d"
  "/root/repo/src/automata/regex.cc" "src/CMakeFiles/xmlup.dir/automata/regex.cc.o" "gcc" "src/CMakeFiles/xmlup.dir/automata/regex.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/xmlup.dir/common/random.cc.o" "gcc" "src/CMakeFiles/xmlup.dir/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/xmlup.dir/common/status.cc.o" "gcc" "src/CMakeFiles/xmlup.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/xmlup.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/xmlup.dir/common/string_util.cc.o.d"
  "/root/repo/src/conflict/bounded_search.cc" "src/CMakeFiles/xmlup.dir/conflict/bounded_search.cc.o" "gcc" "src/CMakeFiles/xmlup.dir/conflict/bounded_search.cc.o.d"
  "/root/repo/src/conflict/commutativity.cc" "src/CMakeFiles/xmlup.dir/conflict/commutativity.cc.o" "gcc" "src/CMakeFiles/xmlup.dir/conflict/commutativity.cc.o.d"
  "/root/repo/src/conflict/containment.cc" "src/CMakeFiles/xmlup.dir/conflict/containment.cc.o" "gcc" "src/CMakeFiles/xmlup.dir/conflict/containment.cc.o.d"
  "/root/repo/src/conflict/detector.cc" "src/CMakeFiles/xmlup.dir/conflict/detector.cc.o" "gcc" "src/CMakeFiles/xmlup.dir/conflict/detector.cc.o.d"
  "/root/repo/src/conflict/minimize.cc" "src/CMakeFiles/xmlup.dir/conflict/minimize.cc.o" "gcc" "src/CMakeFiles/xmlup.dir/conflict/minimize.cc.o.d"
  "/root/repo/src/conflict/read_delete.cc" "src/CMakeFiles/xmlup.dir/conflict/read_delete.cc.o" "gcc" "src/CMakeFiles/xmlup.dir/conflict/read_delete.cc.o.d"
  "/root/repo/src/conflict/read_insert.cc" "src/CMakeFiles/xmlup.dir/conflict/read_insert.cc.o" "gcc" "src/CMakeFiles/xmlup.dir/conflict/read_insert.cc.o.d"
  "/root/repo/src/conflict/reductions.cc" "src/CMakeFiles/xmlup.dir/conflict/reductions.cc.o" "gcc" "src/CMakeFiles/xmlup.dir/conflict/reductions.cc.o.d"
  "/root/repo/src/conflict/reparent.cc" "src/CMakeFiles/xmlup.dir/conflict/reparent.cc.o" "gcc" "src/CMakeFiles/xmlup.dir/conflict/reparent.cc.o.d"
  "/root/repo/src/conflict/transactions.cc" "src/CMakeFiles/xmlup.dir/conflict/transactions.cc.o" "gcc" "src/CMakeFiles/xmlup.dir/conflict/transactions.cc.o.d"
  "/root/repo/src/conflict/update_independence.cc" "src/CMakeFiles/xmlup.dir/conflict/update_independence.cc.o" "gcc" "src/CMakeFiles/xmlup.dir/conflict/update_independence.cc.o.d"
  "/root/repo/src/conflict/witness_build.cc" "src/CMakeFiles/xmlup.dir/conflict/witness_build.cc.o" "gcc" "src/CMakeFiles/xmlup.dir/conflict/witness_build.cc.o.d"
  "/root/repo/src/conflict/witness_check.cc" "src/CMakeFiles/xmlup.dir/conflict/witness_check.cc.o" "gcc" "src/CMakeFiles/xmlup.dir/conflict/witness_check.cc.o.d"
  "/root/repo/src/dtd/dtd.cc" "src/CMakeFiles/xmlup.dir/dtd/dtd.cc.o" "gcc" "src/CMakeFiles/xmlup.dir/dtd/dtd.cc.o.d"
  "/root/repo/src/dtd/dtd_conflict.cc" "src/CMakeFiles/xmlup.dir/dtd/dtd_conflict.cc.o" "gcc" "src/CMakeFiles/xmlup.dir/dtd/dtd_conflict.cc.o.d"
  "/root/repo/src/eval/embedding_enumerator.cc" "src/CMakeFiles/xmlup.dir/eval/embedding_enumerator.cc.o" "gcc" "src/CMakeFiles/xmlup.dir/eval/embedding_enumerator.cc.o.d"
  "/root/repo/src/eval/evaluator.cc" "src/CMakeFiles/xmlup.dir/eval/evaluator.cc.o" "gcc" "src/CMakeFiles/xmlup.dir/eval/evaluator.cc.o.d"
  "/root/repo/src/eval/fast_evaluator.cc" "src/CMakeFiles/xmlup.dir/eval/fast_evaluator.cc.o" "gcc" "src/CMakeFiles/xmlup.dir/eval/fast_evaluator.cc.o.d"
  "/root/repo/src/eval/incremental_read.cc" "src/CMakeFiles/xmlup.dir/eval/incremental_read.cc.o" "gcc" "src/CMakeFiles/xmlup.dir/eval/incremental_read.cc.o.d"
  "/root/repo/src/match/dp_matcher.cc" "src/CMakeFiles/xmlup.dir/match/dp_matcher.cc.o" "gcc" "src/CMakeFiles/xmlup.dir/match/dp_matcher.cc.o.d"
  "/root/repo/src/match/matching.cc" "src/CMakeFiles/xmlup.dir/match/matching.cc.o" "gcc" "src/CMakeFiles/xmlup.dir/match/matching.cc.o.d"
  "/root/repo/src/ops/operations.cc" "src/CMakeFiles/xmlup.dir/ops/operations.cc.o" "gcc" "src/CMakeFiles/xmlup.dir/ops/operations.cc.o.d"
  "/root/repo/src/pattern/pattern.cc" "src/CMakeFiles/xmlup.dir/pattern/pattern.cc.o" "gcc" "src/CMakeFiles/xmlup.dir/pattern/pattern.cc.o.d"
  "/root/repo/src/pattern/pattern_ops.cc" "src/CMakeFiles/xmlup.dir/pattern/pattern_ops.cc.o" "gcc" "src/CMakeFiles/xmlup.dir/pattern/pattern_ops.cc.o.d"
  "/root/repo/src/pattern/pattern_writer.cc" "src/CMakeFiles/xmlup.dir/pattern/pattern_writer.cc.o" "gcc" "src/CMakeFiles/xmlup.dir/pattern/pattern_writer.cc.o.d"
  "/root/repo/src/pattern/xpath_parser.cc" "src/CMakeFiles/xmlup.dir/pattern/xpath_parser.cc.o" "gcc" "src/CMakeFiles/xmlup.dir/pattern/xpath_parser.cc.o.d"
  "/root/repo/src/workload/catalog_generator.cc" "src/CMakeFiles/xmlup.dir/workload/catalog_generator.cc.o" "gcc" "src/CMakeFiles/xmlup.dir/workload/catalog_generator.cc.o.d"
  "/root/repo/src/workload/pattern_generator.cc" "src/CMakeFiles/xmlup.dir/workload/pattern_generator.cc.o" "gcc" "src/CMakeFiles/xmlup.dir/workload/pattern_generator.cc.o.d"
  "/root/repo/src/workload/program_generator.cc" "src/CMakeFiles/xmlup.dir/workload/program_generator.cc.o" "gcc" "src/CMakeFiles/xmlup.dir/workload/program_generator.cc.o.d"
  "/root/repo/src/workload/tree_generator.cc" "src/CMakeFiles/xmlup.dir/workload/tree_generator.cc.o" "gcc" "src/CMakeFiles/xmlup.dir/workload/tree_generator.cc.o.d"
  "/root/repo/src/xml/isomorphism.cc" "src/CMakeFiles/xmlup.dir/xml/isomorphism.cc.o" "gcc" "src/CMakeFiles/xmlup.dir/xml/isomorphism.cc.o.d"
  "/root/repo/src/xml/symbol_table.cc" "src/CMakeFiles/xmlup.dir/xml/symbol_table.cc.o" "gcc" "src/CMakeFiles/xmlup.dir/xml/symbol_table.cc.o.d"
  "/root/repo/src/xml/tree.cc" "src/CMakeFiles/xmlup.dir/xml/tree.cc.o" "gcc" "src/CMakeFiles/xmlup.dir/xml/tree.cc.o.d"
  "/root/repo/src/xml/tree_algos.cc" "src/CMakeFiles/xmlup.dir/xml/tree_algos.cc.o" "gcc" "src/CMakeFiles/xmlup.dir/xml/tree_algos.cc.o.d"
  "/root/repo/src/xml/tree_builder.cc" "src/CMakeFiles/xmlup.dir/xml/tree_builder.cc.o" "gcc" "src/CMakeFiles/xmlup.dir/xml/tree_builder.cc.o.d"
  "/root/repo/src/xml/xml_parser.cc" "src/CMakeFiles/xmlup.dir/xml/xml_parser.cc.o" "gcc" "src/CMakeFiles/xmlup.dir/xml/xml_parser.cc.o.d"
  "/root/repo/src/xml/xml_writer.cc" "src/CMakeFiles/xmlup.dir/xml/xml_writer.cc.o" "gcc" "src/CMakeFiles/xmlup.dir/xml/xml_writer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
