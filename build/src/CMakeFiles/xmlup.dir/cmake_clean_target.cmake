file(REMOVE_RECURSE
  "libxmlup.a"
)
