# Empty compiler generated dependencies file for xmlup.
# This may be replaced when dependencies are built.
