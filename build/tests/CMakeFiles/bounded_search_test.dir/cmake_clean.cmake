file(REMOVE_RECURSE
  "CMakeFiles/bounded_search_test.dir/bounded_search_test.cc.o"
  "CMakeFiles/bounded_search_test.dir/bounded_search_test.cc.o.d"
  "bounded_search_test"
  "bounded_search_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bounded_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
