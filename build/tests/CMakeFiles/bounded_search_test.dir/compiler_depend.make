# Empty compiler generated dependencies file for bounded_search_test.
# This may be replaced when dependencies are built.
