file(REMOVE_RECURSE
  "CMakeFiles/commutativity_test.dir/commutativity_test.cc.o"
  "CMakeFiles/commutativity_test.dir/commutativity_test.cc.o.d"
  "commutativity_test"
  "commutativity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/commutativity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
