file(REMOVE_RECURSE
  "CMakeFiles/incremental_read_test.dir/incremental_read_test.cc.o"
  "CMakeFiles/incremental_read_test.dir/incremental_read_test.cc.o.d"
  "incremental_read_test"
  "incremental_read_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_read_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
