# Empty dependencies file for incremental_read_test.
# This may be replaced when dependencies are built.
