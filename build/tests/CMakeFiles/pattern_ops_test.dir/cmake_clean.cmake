file(REMOVE_RECURSE
  "CMakeFiles/pattern_ops_test.dir/pattern_ops_test.cc.o"
  "CMakeFiles/pattern_ops_test.dir/pattern_ops_test.cc.o.d"
  "pattern_ops_test"
  "pattern_ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
