# Empty dependencies file for pattern_ops_test.
# This may be replaced when dependencies are built.
