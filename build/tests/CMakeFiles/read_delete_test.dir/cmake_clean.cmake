file(REMOVE_RECURSE
  "CMakeFiles/read_delete_test.dir/read_delete_test.cc.o"
  "CMakeFiles/read_delete_test.dir/read_delete_test.cc.o.d"
  "read_delete_test"
  "read_delete_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/read_delete_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
