# Empty dependencies file for read_delete_test.
# This may be replaced when dependencies are built.
