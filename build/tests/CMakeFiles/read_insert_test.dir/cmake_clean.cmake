file(REMOVE_RECURSE
  "CMakeFiles/read_insert_test.dir/read_insert_test.cc.o"
  "CMakeFiles/read_insert_test.dir/read_insert_test.cc.o.d"
  "read_insert_test"
  "read_insert_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/read_insert_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
