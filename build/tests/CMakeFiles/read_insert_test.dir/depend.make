# Empty dependencies file for read_insert_test.
# This may be replaced when dependencies are built.
