file(REMOVE_RECURSE
  "CMakeFiles/reparent_test.dir/reparent_test.cc.o"
  "CMakeFiles/reparent_test.dir/reparent_test.cc.o.d"
  "reparent_test"
  "reparent_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reparent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
