# Empty dependencies file for reparent_test.
# This may be replaced when dependencies are built.
