file(REMOVE_RECURSE
  "CMakeFiles/update_independence_test.dir/update_independence_test.cc.o"
  "CMakeFiles/update_independence_test.dir/update_independence_test.cc.o.d"
  "update_independence_test"
  "update_independence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/update_independence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
