# Empty compiler generated dependencies file for update_independence_test.
# This may be replaced when dependencies are built.
