file(REMOVE_RECURSE
  "CMakeFiles/witness_build_test.dir/witness_build_test.cc.o"
  "CMakeFiles/witness_build_test.dir/witness_build_test.cc.o.d"
  "witness_build_test"
  "witness_build_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/witness_build_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
