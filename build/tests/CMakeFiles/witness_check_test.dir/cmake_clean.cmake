file(REMOVE_RECURSE
  "CMakeFiles/witness_check_test.dir/witness_check_test.cc.o"
  "CMakeFiles/witness_check_test.dir/witness_check_test.cc.o.d"
  "witness_check_test"
  "witness_check_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/witness_check_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
