// Conflict matrix: given a workload of reads and updates over the catalog
// schema, print the full read-vs-update conflict matrix (node semantics)
// and the update-vs-update commutativity certificates — the artifact a
// query compiler or concurrency layer would consume.
//
// Build & run:  ./build/examples/conflict_matrix

#include <iomanip>
#include <iostream>
#include <vector>

#include "engine/engine.h"
#include "pattern/xpath_parser.h"
#include "xml/xml_parser.h"

using namespace xmlup;

namespace {

struct NamedUpdate {
  const char* name;
  UpdateOp op;
};

char VerdictChar(ConflictVerdict verdict) {
  switch (verdict) {
    case ConflictVerdict::kConflict:
      return 'X';
    case ConflictVerdict::kNoConflict:
      return '.';
    case ConflictVerdict::kUnknown:
      return '?';
  }
  return '?';
}

}  // namespace

int main() {
  Engine engine;
  const std::shared_ptr<SymbolTable>& symbols = engine.symbols();
  auto xp = [&](const char* s) { return MustParseXPath(s, symbols); };
  auto xml = [&](const char* s) {
    return std::make_shared<const Tree>(std::move(ParseXml(s, symbols)).value());
  };

  const std::vector<std::pair<const char*, Pattern>> reads = {
      {"titles", xp("catalog//title")},
      {"books", xp("catalog/book")},
      {"restocks", xp("catalog//restock")},
      {"low-marks", xp("catalog//low")},
      {"quantities", xp("catalog/book/stock/quantity")},
  };

  std::vector<NamedUpdate> updates;
  updates.push_back(
      {"restock-low", UpdateOp::MakeInsert(xp("catalog/book[.//low]"),
                                           xml("<restock/>"))});
  updates.push_back(
      {"tag-all-books", UpdateOp::MakeInsert(xp("catalog/book"),
                                             xml("<audited/>"))});
  updates.push_back(
      {"drop-restocks",
       std::move(UpdateOp::MakeDelete(xp("catalog//restock")).value())});
  updates.push_back(
      {"drop-high-books",
       std::move(UpdateOp::MakeDelete(xp("catalog/book[.//high]")).value())});

  // The engine's batch path solves the whole N×M matrix in one call
  // (deduplicated, memoized, parallel) instead of N*M singleton Detects.
  std::vector<Pattern> read_patterns;
  std::vector<UpdateOp> update_ops;
  for (const auto& entry : reads) read_patterns.push_back(entry.second);
  for (const NamedUpdate& u : updates) update_ops.push_back(u.op);
  const std::vector<SharedConflictResult> matrix =
      engine.DetectMatrix(read_patterns, update_ops);

  std::cout << "read-vs-update conflict matrix (node semantics)\n";
  std::cout << "  X = conflict, . = provably independent, ? = unknown\n\n";
  std::cout << std::left << std::setw(14) << "";
  for (const NamedUpdate& u : updates) {
    std::cout << std::setw(16) << u.name;
  }
  std::cout << "\n";
  for (size_t i = 0; i < reads.size(); ++i) {
    std::cout << std::setw(14) << reads[i].first;
    for (size_t j = 0; j < updates.size(); ++j) {
      const SharedConflictResult& cell = matrix[i * updates.size() + j];
      std::cout << std::setw(16)
                << (cell->ok() ? VerdictChar((*cell)->verdict) : '!');
    }
    std::cout << "\n";
  }

  std::cout << "\nupdate-vs-update commutativity certificates (§6)\n";
  std::cout << "  C = certified commuting, ? = uncertified (keep ordered)\n\n";
  std::cout << std::setw(16) << "";
  for (const NamedUpdate& u : updates) std::cout << std::setw(16) << u.name;
  std::cout << "\n";
  for (const NamedUpdate& a : updates) {
    std::cout << std::setw(16) << a.name;
    for (const NamedUpdate& b : updates) {
      Result<IndependenceReport> cert = engine.CertifyCommute(a.op, b.op);
      const bool certified =
          cert.ok() &&
          cert->certificate == CommutativityCertificate::kCertified;
      std::cout << std::setw(16) << (certified ? 'C' : '?');
    }
    std::cout << "\n";
  }
  return 0;
}
