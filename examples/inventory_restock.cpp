// Figure-1 scenario at scale: generate a synthetic book catalog, run the
// restock insertion, and show how the three conflict semantics (node /
// tree / value) classify reads against that update.
//
// Build & run:  ./build/examples/inventory_restock [num_books]

#include <cstdlib>
#include <iostream>
#include <memory>
#include <vector>

#include "common/random.h"
#include "engine/engine.h"
#include "eval/evaluator.h"
#include "ops/operations.h"
#include "pattern/xpath_parser.h"
#include "workload/catalog_generator.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

using namespace xmlup;

int main(int argc, char** argv) {
  const size_t num_books = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 200;
  auto symbols = std::make_shared<SymbolTable>();

  CatalogOptions options;
  options.num_books = num_books;
  options.low_fraction = 0.3;
  Rng rng(2026);
  Tree catalog = GenerateCatalog(symbols, options, &rng);
  std::cout << "catalog: " << catalog.size() << " nodes, " << num_books
            << " books\n";

  const Pattern condition = MustParseXPath("catalog/book[.//low]", symbols);
  Result<Tree> restock_xml = ParseXml("<restock/>", symbols);
  auto restock = std::make_shared<const Tree>(std::move(restock_xml).value());

  const size_t low = Evaluate(condition, catalog).size();
  InsertOp insert(condition, restock);
  insert.ApplyInPlace(&catalog);
  std::cout << "restocked " << low << " books\n\n";

  // Classify typical reads against the restock update under all three
  // semantics of the paper (§3). One Engine per semantics — an engine's
  // detector configuration is fixed at construction (every cache below
  // assumes it) — all three sharing the one SymbolTable the catalog was
  // generated against.
  std::vector<std::unique_ptr<Engine>> engines;
  for (ConflictSemantics semantics :
       {ConflictSemantics::kNode, ConflictSemantics::kTree,
        ConflictSemantics::kValue}) {
    EngineOptions options;
    options.batch.detector.semantics = semantics;
    engines.push_back(std::make_unique<Engine>(symbols, options));
  }
  const UpdateOp restock_insert = UpdateOp::MakeInsert(condition, restock);

  const char* reads[] = {
      "catalog//restock",          // sees the inserted nodes
      "catalog//title",            // untouched
      "catalog/book",              // same nodes, modified subtrees
      "catalog/book[.//low]",      // the insert's own selector
      "catalog/book/stock",        // ancestors of nothing inserted
  };
  std::cout << "read pattern                  node   tree   value\n";
  for (const char* xpath : reads) {
    const Pattern read = MustParseXPath(xpath, symbols);
    std::string row = xpath;
    row.resize(30, ' ');
    std::cout << row;
    for (const std::unique_ptr<Engine>& engine : engines) {
      Result<ConflictReport> r = engine->Detect(read, restock_insert);
      if (!r.ok()) {
        std::cout << " err  ";
        continue;
      }
      std::cout << (r->conflict() ? " YES  " : "  no  ");
    }
    std::cout << "\n";
  }
  std::cout << "\n(YES = a document exists on which this read changes; the "
               "linear-pattern\n algorithms of §4 decide this in polynomial "
               "time and produce a witness.)\n";
  return 0;
}
