// The paper's §1 compiler scenario: a straight-line program in the pidgin
// update language is analyzed for data dependences; independent reads are
// hoisted and repeated reads eliminated (CSE), then both versions are
// executed to show they observe the same results.
//
// Build & run:  ./build/examples/query_optimizer

#include <iostream>

#include "analysis/interpreter.h"
#include "analysis/optimizer.h"
#include "engine/engine.h"
#include "pattern/xpath_parser.h"
#include "xml/xml_parser.h"

using namespace xmlup;

int main() {
  // Tree semantics: a read depends on an update if any node in its result
  // *subtrees* changes — the right notion for whole-result CSE.
  EngineOptions engine_options;
  engine_options.batch.detector.semantics = ConflictSemantics::kTree;
  Engine engine(engine_options);
  const std::shared_ptr<SymbolTable>& symbols = engine.symbols();

  // The §1 program:
  //   y = read $x//A
  //   insert $x/B, <C/>
  //   z = read $x//C       (conflicts with the insert)
  //   w = read $x//D       (independent — can be hoisted)
  //   u = read $x//A       (same as y, no conflicting update since — CSE)
  Result<Tree> c_tree = ParseXml("<C/>", symbols);
  Program program;
  program.AddRead("y", "x", MustParseXPath("x//A", symbols));
  program.AddInsert("x", MustParseXPath("x/B", symbols),
                    std::make_shared<const Tree>(std::move(c_tree).value()));
  program.AddRead("z", "x", MustParseXPath("x//C", symbols));
  program.AddRead("w", "x", MustParseXPath("x//D", symbols));
  program.AddRead("u", "x", MustParseXPath("x//A", symbols));

  std::cout << "original program:\n" << program.ToString() << "\n";

  const DependenceAnalysisResult deps = engine.AnalyzeDependences(program);
  std::cout << "dependences (must stay ordered):\n";
  for (const Dependence& d : deps.dependences) {
    std::cout << "  stmt " << d.from << " -> stmt " << d.to << "  (on $"
              << d.reason << ")\n";
  }
  std::cout << deps.pairs_independent << "/" << deps.pairs_total
            << " pairs proven independent\n\n";

  Optimizer optimizer(engine.detector_options());
  const OptimizeResult cse = optimizer.EliminateCommonReads(program);
  std::cout << "after read CSE (" << cse.reads_aliased << " read(s) aliased):\n"
            << cse.program.ToString() << "\n";

  const std::vector<size_t> schedule = optimizer.HoistReadsSchedule(program);
  std::cout << "hoisted schedule:";
  for (size_t i : schedule) std::cout << " " << i;
  std::cout << "\n\n";

  // Execute original and optimized; the observable reads agree.
  Result<Tree> x1 = ParseXml("<x><A/><B/><D/></x>", symbols);
  Result<Tree> x2 = ParseXml("<x><A/><B/><D/></x>", symbols);
  TreeStore store1(symbols);
  store1.Put("x", std::move(x1).value());
  TreeStore store2(symbols);
  store2.Put("x", std::move(x2).value());

  Result<ExecutionTrace> t1 = Execute(program, &store1);
  Result<ExecutionTrace> t2 = Execute(cse.program, &store2);
  if (!t1.ok() || !t2.ok()) {
    std::cerr << "execution failed\n";
    return 1;
  }
  std::cout << "read results (original == optimized):\n";
  for (size_t i = 0; i < t1->reads.size(); ++i) {
    std::cout << "  " << t1->reads[i].result_var << ": "
              << t1->reads[i].nodes.size() << " node(s)"
              << (t1->reads[i].nodes == t2->reads[i].nodes ? "  ✓ identical"
                                                           : "  ✗ DIFFER")
              << "\n";
  }
  return 0;
}
