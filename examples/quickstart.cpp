// Quickstart: parse XML, evaluate XPath patterns, apply updates, and ask
// the library whether a read conflicts with an update — the core xmlup
// workflow in ~60 lines.
//
// Build & run:  ./build/examples/quickstart

#include <iostream>

#include "engine/engine.h"
#include "eval/evaluator.h"
#include "ops/operations.h"
#include "pattern/xpath_parser.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

using namespace xmlup;  // examples only; library code never does this

int main() {
  // One Engine = the whole stack wired: symbol table, pattern store
  // (interning + compiled automata), conflict detector.
  Engine engine;
  const std::shared_ptr<SymbolTable>& symbols = engine.symbols();

  // 1. Parse a document (the paper's running example, Figure 1).
  Result<Tree> doc = ParseXml(
      "<catalog>"
      "  <book><title/><quantity><low/></quantity></book>"
      "  <book><title/><quantity><high/></quantity></book>"
      "</catalog>",
      symbols);
  if (!doc.ok()) {
    std::cerr << "parse error: " << doc.status() << "\n";
    return 1;
  }
  Tree catalog = std::move(doc).value();

  // 2. Evaluate an XPath pattern: books that need restocking.
  Pattern low_books = MustParseXPath("catalog/book[.//low]", symbols);
  std::cout << "low-stock books: " << Evaluate(low_books, catalog).size()
            << "\n";

  // 3. Apply the paper's update:  insert catalog/book[.//low], <restock/>.
  Result<Tree> restock = ParseXml("<restock/>", symbols);
  InsertOp insert(low_books,
                  std::make_shared<const Tree>(std::move(restock).value()));
  insert.ApplyInPlace(&catalog);
  std::cout << "after insert:\n" << WriteXml(catalog, {.indent = 2});

  // 4. Conflict detection: does this insert affect other reads?  Intern
  //    patterns once into the engine's store and detect via PatternRefs —
  //    minimization and canonical codes are computed per distinct pattern,
  //    not per Detect call.
  UpdateOp restock_insert =
      engine.Bind(UpdateOp::MakeInsert(low_books, insert.shared_content()));
  for (const char* read_xpath :
       {"catalog//restock", "catalog//title", "catalog/book"}) {
    Result<PatternRef> read_ref = engine.InternXPath(read_xpath);
    if (!read_ref.ok()) {
      std::cerr << "bad read pattern: " << read_ref.status() << "\n";
      return 1;
    }
    PatternRef read = *read_ref;
    Result<ConflictReport> report = engine.Detect(read, restock_insert);
    if (!report.ok()) {
      std::cerr << "detection failed: " << report.status() << "\n";
      return 1;
    }
    std::cout << "read " << read_xpath << " vs restock-insert: "
              << ConflictVerdictName(report->verdict) << "  ["
              << DetectorMethodName(report->method) << "]\n";
    if (report->witness.has_value()) {
      std::cout << "  witness document: " << WriteXml(*report->witness)
                << "\n";
    }
  }
  return 0;
}
