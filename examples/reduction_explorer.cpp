// §5 explorer: takes two XPath patterns p and p', decides containment with
// the exact Miklau-Suciu canonical-model algorithm, builds the Theorem 4
// and Theorem 6 reduction instances, and — when p ⊄ p' — synthesizes and
// verifies the Figure 7d / 8c conflict witnesses.
//
// Build & run:  ./build/examples/reduction_explorer [p] [p']
// Default:      p = m//n,  p' = m/n   (not contained)

#include <iostream>

#include "conflict/containment.h"
#include "conflict/reductions.h"
#include "engine/engine.h"
#include "pattern/pattern_writer.h"
#include "pattern/xpath_parser.h"
#include "xml/tree_algos.h"
#include "xml/xml_writer.h"

using namespace xmlup;

int main(int argc, char** argv) {
  Engine engine;
  const std::shared_ptr<SymbolTable>& symbols = engine.symbols();
  const char* p_xpath = argc > 1 ? argv[1] : "m//n";
  const char* q_xpath = argc > 2 ? argv[2] : "m/n";

  Result<Pattern> p = ParseXPath(p_xpath, symbols);
  Result<Pattern> q = ParseXPath(q_xpath, symbols);
  if (!p.ok() || !q.ok()) {
    std::cerr << "bad XPath: " << (!p.ok() ? p.status() : q.status()) << "\n";
    return 1;
  }

  std::cout << "p  = " << ToXPathString(*p) << "\n";
  std::cout << "p' = " << ToXPathString(*q) << "\n\n";

  const ContainmentDecision decision = DecideContainment(*p, *q);
  std::cout << "canonical models checked: " << decision.models_checked
            << " (bound " << CanonicalModelCount(*p, *q) << ")\n";
  std::cout << "p ⊆ p' : " << (decision.contained ? "YES" : "NO") << "\n";
  std::cout << "PTIME homomorphism test says contained: "
            << (HasContainmentHomomorphism(*p, *q) ? "YES (sound)"
                                                   : "no (inconclusive)")
            << "\n\n";

  const ReadInsertReduction ri = ReduceNonContainmentToReadInsert(*p, *q);
  std::cout << "Theorem 4 instance:\n";
  std::cout << "  R  = read   " << ToXPathString(ri.read) << "\n";
  std::cout << "  I  = insert " << ToXPathString(ri.insert_pattern) << ", "
            << WriteXml(ri.inserted) << "\n";
  const ReadDeleteReduction rd = ReduceNonContainmentToReadDelete(*p, *q);
  std::cout << "Theorem 6 instance:\n";
  std::cout << "  R  = read   " << ToXPathString(rd.read) << "\n";
  std::cout << "  D  = delete " << ToXPathString(rd.delete_pattern) << "\n\n";

  // The general-purpose detector is sound but budget-bounded: on these
  // branching reduced instances it answers `conflict` only with a verified
  // witness in budget, and `unknown` otherwise — never `no-conflict` when
  // p ⊄ p' (Theorems 4 and 6 would make that answer wrong). The reduction
  // machinery below decides the instance exactly by synthesizing the
  // witness from the containment counterexample instead of searching.
  Result<ConflictReport> ri_verdict = engine.Detect(
      ri.read, UpdateOp::MakeInsert(ri.insert_pattern,
                                    std::make_shared<const Tree>(
                                        CopyTree(ri.inserted))));
  if (ri_verdict.ok()) {
    std::cout << "budgeted detector on Theorem 4 instance: "
              << ConflictVerdictName(ri_verdict->verdict) << "\n";
  }
  Result<UpdateOp> rd_delete = UpdateOp::MakeDelete(rd.delete_pattern);
  if (rd_delete.ok()) {
    Result<ConflictReport> rd_verdict = engine.Detect(rd.read, *rd_delete);
    if (rd_verdict.ok()) {
      std::cout << "budgeted detector on Theorem 6 instance: "
                << ConflictVerdictName(rd_verdict->verdict) << "\n\n";
    }
  }

  if (decision.contained) {
    std::cout << "p ⊆ p': by Theorems 4 and 6 neither reduced instance has "
                 "a conflict.\n";
    return 0;
  }

  std::cout << "non-containment counterexample t_p: "
            << WriteXml(*decision.counterexample) << "\n\n";

  Result<Tree> wi =
      BuildReadInsertReductionWitness(ri, *q, *decision.counterexample);
  if (wi.ok()) {
    std::cout << "verified read-insert conflict witness (Figure 7d):\n  "
              << WriteXml(*wi) << "\n";
  } else {
    std::cout << "witness synthesis failed: " << wi.status() << "\n";
  }
  Result<Tree> wd =
      BuildReadDeleteReductionWitness(rd, *q, *decision.counterexample);
  if (wd.ok()) {
    std::cout << "verified read-delete conflict witness (Figure 8c):\n  "
              << WriteXml(*wd) << "\n";
  } else {
    std::cout << "witness synthesis failed: " << wd.status() << "\n";
  }
  return wi.ok() && wd.ok() ? 0 : 1;
}
