// §6 "Schema Information" in action: two operations that conflict over
// arbitrary documents can be conflict-free over documents conforming to a
// schema — the schema forbids every witness shape. This example builds a
// catalog DTD and contrasts unrestricted vs schema-restricted detection.
//
// Build & run:  ./build/examples/schema_guard

#include <iostream>
#include <memory>

#include "dtd/dtd_conflict.h"
#include "engine/engine.h"
#include "xml/tree_algos.h"
#include "pattern/xpath_parser.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

using namespace xmlup;

int main() {
  Engine engine;
  const std::shared_ptr<SymbolTable>& symbols = engine.symbols();

  // The catalog schema: books hold title/author/stock; stock holds
  // quantity; restock markers live directly under book.
  Result<Dtd> dtd = Dtd::Parse(
      "root catalog\n"
      "allow catalog : book\n"
      "allow book : title author stock restock\n"
      "allow stock : quantity\n"
      "allow quantity : low high\n"
      "seal title\n"
      "seal restock\n"
      "require book : stock\n",
      symbols);
  if (!dtd.ok()) {
    std::cerr << "schema error: " << dtd.status() << "\n";
    return 1;
  }

  // The update inserts <audit/> under every quantity; the read looks for
  // audit nodes under titles. Over arbitrary documents these conflict (a
  // quantity could sit below a title); the schema seals <title/>, so no
  // conforming document admits the witness.
  const Pattern read = MustParseXPath("catalog//title//audit", symbols);
  const Pattern insert = MustParseXPath("catalog//quantity", symbols);
  Result<Tree> content = ParseXml("<audit/>", symbols);
  Tree x = std::move(content).value();

  Result<ConflictReport> unrestricted = engine.Detect(
      read, UpdateOp::MakeInsert(insert,
                                 std::make_shared<const Tree>(CopyTree(x))));
  if (!unrestricted.ok()) {
    std::cerr << "detection error: " << unrestricted.status() << "\n";
    return 1;
  }
  std::cout << "without schema : "
            << ConflictVerdictName(unrestricted->verdict) << "\n";
  if (unrestricted->witness.has_value()) {
    std::cout << "  witness (non-conforming document): "
              << WriteXml(*unrestricted->witness) << "\n";
    std::string why;
    dtd->Conforms(*unrestricted->witness, &why);
    std::cout << "  schema rejects it: " << why << "\n";
  }

  BoundedSearchOptions search;
  search.max_nodes = 5;
  const BruteForceResult guarded = FindReadInsertConflictUnderDtd(
      read, insert, x, *dtd, ConflictSemantics::kNode, search);
  std::cout << "with schema    : ";
  switch (guarded.outcome) {
    case SearchOutcome::kWitnessFound:
      std::cout << "conflict — conforming witness: "
                << WriteXml(*guarded.witness) << "\n";
      break;
    case SearchOutcome::kExhaustedNoWitness:
      std::cout << "no conforming witness up to " << search.max_nodes
                << " nodes (" << guarded.trees_checked
                << " trees examined)\n";
      break;
    case SearchOutcome::kBudgetExceeded:
      std::cout << "inconclusive (budget exhausted after "
                << guarded.trees_checked << " trees)\n";
      break;
  }
  std::cout << "\nThe paper leaves the complexity of schema-aware conflict\n"
               "detection open (§6); the library ships this bounded\n"
               "semi-decision procedure over conforming documents.\n";
  return 0;
}
