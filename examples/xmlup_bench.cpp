// xmlup_bench: run a declarative workload spec against the engine and
// report per-phase sustained throughput and p50/p95/p99/max latency.
//
// Usage:
//   xmlup_bench --spec workloads/reference.json
//   xmlup_bench --spec workloads/smoke.json --workers 8 --seed 7
//
// The spec is a JSON file (see workloads/ and src/driver/workload_spec.h
// for the schema): named phases with worker counts, closed/open-loop
// arrival, an insert/delete/edit operation mix, plus generator shape and
// session-churn configuration. The run is deterministic for a fixed seed:
// the whole operation plan is drawn up front, single-threaded, and the
// worker count only changes timing, never verdicts.
//
// Besides the human-readable summary on stdout, the run dumps
// BENCH_workload.json (and a Chrome trace next to it) in the same envelope
// the other bench harnesses emit, so `scripts/check_bench_json.py workload`
// validates it in CI. Set XMLUP_OBS=0 to disable the trace recorder.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/json.h"
#include "driver/driver.h"
#include "driver/workload_spec.h"
#include "engine/engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"

using namespace xmlup;  // examples only; library code never does this

namespace {

int Usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " --spec <workload.json> [options]\n"
      << "  --spec FILE     workload spec to run (required)\n"
      << "  --out FILE      stats dump path (default BENCH_workload.json)\n"
      << "  --seed N        override the spec's seed\n"
      << "  --workers N     override every phase's worker count\n"
      << "  --print-spec    echo the parsed spec (after overrides) and exit\n";
  return 2;
}

void PrintPhase(const driver::PhaseReport& phase) {
  const std::string mode(driver::PhaseModeName(phase.mode));
  std::printf(
      "  %-10s %-6s %zu worker%s  %5zu/%zu ops%s  %8.0f ops/s\n"
      "             latency us: p50 %.0f  p95 %.0f  p99 %.0f  max %llu\n"
      "             verdicts: %llu conflict, %llu no-conflict, %llu unknown, "
      "%llu errors\n",
      phase.name.c_str(), mode.c_str(), phase.workers,
      phase.workers == 1 ? " " : "s", phase.ops_completed, phase.ops_planned,
      phase.truncated ? " (truncated)" : "", phase.throughput_ops_per_s,
      phase.latency.p50_us, phase.latency.p95_us, phase.latency.p99_us,
      static_cast<unsigned long long>(phase.latency.max_us),
      static_cast<unsigned long long>(phase.verdicts.conflict),
      static_cast<unsigned long long>(phase.verdicts.no_conflict),
      static_cast<unsigned long long>(phase.verdicts.unknown),
      static_cast<unsigned long long>(phase.verdicts.errors));
  if (phase.merge.merges > 0 || phase.merge.errors > 0) {
    std::printf(
        "             merges: %llu (%llu ops: %llu accepted, %llu "
        "serialized, %llu rejected; %llu errors)\n",
        static_cast<unsigned long long>(phase.merge.merges),
        static_cast<unsigned long long>(phase.merge.ops_total),
        static_cast<unsigned long long>(phase.merge.accepted),
        static_cast<unsigned long long>(phase.merge.serialized),
        static_cast<unsigned long long>(phase.merge.rejected),
        static_cast<unsigned long long>(phase.merge.errors));
  }
}

/// Same envelope as bench/bench_util.h DumpObs, with the driver report
/// spliced in as the "workload" member.
void DumpStats(const std::string& out_path, const driver::DriverReport& report) {
  obs::TraceRecorder& recorder = obs::TraceRecorder::Default();
  std::ofstream stats(out_path);
  stats << "{\"bench\":\"workload\",\"obs_enabled\":"
        << (recorder.enabled() ? "true" : "false")
        << ",\"workload\":" << WriteJson(report.ToJson()) << ",\"metrics\":"
        << obs::MetricsRegistry::Default().Snapshot().ToJson()
        << ",\"trace\":" << recorder.ToStatsJson() << "}\n";
  stats.close();

  std::string trace_path = out_path;
  const size_t dot = trace_path.rfind(".json");
  trace_path.insert(dot == std::string::npos ? trace_path.size() : dot,
                    "_trace");
  std::ofstream trace(trace_path);
  trace << recorder.ToChromeTraceJson() << "\n";
  trace.close();
  std::cerr << "obs dump: " << out_path << " + " << trace_path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_path;
  std::string out_path = "BENCH_workload.json";
  bool print_spec = false;
  long long seed_override = -1;
  long long workers_override = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--spec") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      spec_path = v;
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      out_path = v;
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      seed_override = std::atoll(v);
    } else if (arg == "--workers") {
      const char* v = next();
      if (v == nullptr || std::atoll(v) < 1) return Usage(argv[0]);
      workers_override = std::atoll(v);
    } else if (arg == "--print-spec") {
      print_spec = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (spec_path.empty()) return Usage(argv[0]);

  std::ifstream file(spec_path);
  if (!file) {
    std::cerr << "cannot open spec file: " << spec_path << "\n";
    return 1;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();

  Result<driver::WorkloadSpec> parsed = driver::WorkloadSpec::Parse(buffer.str());
  if (!parsed.ok()) {
    std::cerr << spec_path << ": " << parsed.status() << "\n";
    return 1;
  }
  driver::WorkloadSpec spec = *std::move(parsed);
  if (seed_override >= 0) spec.seed = static_cast<uint64_t>(seed_override);
  if (workers_override >= 1) {
    for (driver::PhaseSpec& phase : spec.phases) {
      phase.workers = static_cast<size_t>(workers_override);
    }
  }
  if (print_spec) {
    std::cout << WriteJsonPretty(spec.ToJson());
    return 0;
  }

  // Mirror the bench harnesses' XMLUP_OBS toggle (default: on).
  const char* obs_env = std::getenv("XMLUP_OBS");
  const bool obs_enabled = obs_env == nullptr || std::strcmp(obs_env, "0") != 0;
  obs::TraceRecorder::Default().set_enabled(obs_enabled);

  // A spec with a "dtd" block builds a schema-aware engine: its Stage 0
  // type filter prunes schema-disjoint pairs before any automata work
  // (unless the block sets "pruning": false — the ablation switch).
  auto symbols = std::make_shared<SymbolTable>();
  Result<EngineOptions> options = driver::EngineOptionsForSpec(spec, symbols);
  if (!options.ok()) {
    std::cerr << spec_path << ": " << options.status() << "\n";
    return 1;
  }
  Engine engine(symbols, *std::move(options));
  driver::Driver workload_driver(&engine, spec);
  Result<driver::DriverReport> report = workload_driver.Run();
  if (!report.ok()) {
    std::cerr << "driver failed: " << report.status() << "\n";
    return 1;
  }

  std::printf("workload %s (seed %llu):\n", report->workload.c_str(),
              static_cast<unsigned long long>(report->seed));
  for (const driver::PhaseReport& phase : report->phases) PrintPhase(phase);
  std::printf(
      "  total verdicts: %llu conflict, %llu no-conflict, %llu unknown, "
      "%llu errors\n",
      static_cast<unsigned long long>(report->total_verdicts.conflict),
      static_cast<unsigned long long>(report->total_verdicts.no_conflict),
      static_cast<unsigned long long>(report->total_verdicts.unknown),
      static_cast<unsigned long long>(report->total_verdicts.errors));

  DumpStats(out_path, *report);
  return 0;
}
