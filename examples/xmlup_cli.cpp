// xmlup_cli — command-line front end over the library, the way a
// downstream user would script it:
//
//   xmlup_cli eval <file.xml> <xpath>             evaluate a pattern
//   xmlup_cli count <file.xml> <xpath>            count embeddings
//   xmlup_cli insert <file.xml> <xpath> <content-xml>   apply an insert
//   xmlup_cli delete <file.xml> <xpath>           apply a delete
//   xmlup_cli detect-insert <read> <insert> <content-xml>
//   xmlup_cli detect-delete <read> <delete>
//   xmlup_cli contain <p> <q>                     decide p ⊆ q
//   xmlup_cli minimize <xpath>                    minimize a pattern
//
// Patterns use the paper's XPath fragment; "-" reads the document from
// stdin.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "conflict/containment.h"
#include "conflict/minimize.h"
#include "engine/engine.h"
#include "eval/evaluator.h"
#include "ops/operations.h"
#include "pattern/pattern_writer.h"
#include "pattern/xpath_parser.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

using namespace xmlup;

namespace {

int Usage() {
  std::cerr
      << "usage:\n"
      << "  xmlup_cli eval <file.xml|-> <xpath>\n"
      << "  xmlup_cli count <file.xml|-> <xpath>\n"
      << "  xmlup_cli insert <file.xml|-> <xpath> <content-xml>\n"
      << "  xmlup_cli delete <file.xml|-> <xpath>\n"
      << "  xmlup_cli detect-insert <read-xpath> <insert-xpath> <content-xml>\n"
      << "  xmlup_cli detect-delete <read-xpath> <delete-xpath>\n"
      << "  xmlup_cli contain <p-xpath> <q-xpath>\n"
      << "  xmlup_cli minimize <xpath>\n";
  return 2;
}

Result<Tree> LoadDocument(const std::string& path,
                          const std::shared_ptr<SymbolTable>& symbols) {
  std::string content;
  if (path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    content = buffer.str();
  } else {
    std::ifstream file(path);
    if (!file) return Status::NotFound("cannot open " + path);
    std::ostringstream buffer;
    buffer << file.rdbuf();
    content = buffer.str();
  }
  return ParseXml(content, symbols);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string command = argv[1];
  Engine engine;
  const std::shared_ptr<SymbolTable>& symbols = engine.symbols();

  auto parse_pattern = [&](const char* s) -> Result<Pattern> {
    return ParseXPath(s, symbols);
  };
  auto fail = [](const Status& status) {
    std::cerr << "error: " << status << "\n";
    return 1;
  };

  if (command == "eval" || command == "count") {
    if (argc != 4) return Usage();
    Result<Tree> doc = LoadDocument(argv[2], symbols);
    if (!doc.ok()) return fail(doc.status());
    Result<Pattern> pattern = parse_pattern(argv[3]);
    if (!pattern.ok()) return fail(pattern.status());
    if (command == "count") {
      std::cout << CountEmbeddings(*pattern, *doc) << "\n";
      return 0;
    }
    const std::vector<NodeId> result = Evaluate(*pattern, *doc);
    std::cout << result.size() << " node(s)\n";
    for (NodeId n : result) {
      std::cout << WriteXml(*doc, n) << "\n";
    }
    return 0;
  }

  if (command == "insert") {
    if (argc != 5) return Usage();
    Result<Tree> doc = LoadDocument(argv[2], symbols);
    if (!doc.ok()) return fail(doc.status());
    Result<Pattern> pattern = parse_pattern(argv[3]);
    if (!pattern.ok()) return fail(pattern.status());
    Result<Tree> content = ParseXml(argv[4], symbols);
    if (!content.ok()) return fail(content.status());
    InsertOp op(*pattern,
                std::make_shared<const Tree>(std::move(content).value()));
    Tree work = std::move(doc).value();
    const InsertOp::Applied applied = op.ApplyInPlace(&work);
    std::cerr << "inserted at " << applied.insertion_points.size()
              << " point(s)\n";
    std::cout << WriteXml(work, {.indent = 2});
    return 0;
  }

  if (command == "delete") {
    if (argc != 4) return Usage();
    Result<Tree> doc = LoadDocument(argv[2], symbols);
    if (!doc.ok()) return fail(doc.status());
    Result<Pattern> pattern = parse_pattern(argv[3]);
    if (!pattern.ok()) return fail(pattern.status());
    Result<DeleteOp> op = DeleteOp::Make(std::move(pattern).value());
    if (!op.ok()) return fail(op.status());
    Tree work = std::move(doc).value();
    const DeleteOp::Applied applied = op->ApplyInPlace(&work);
    std::cerr << "deleted " << applied.deletion_points.size()
              << " subtree(s)\n";
    std::cout << WriteXml(work, {.indent = 2});
    return 0;
  }

  if (command == "detect-insert" || command == "detect-delete") {
    Result<Pattern> read = parse_pattern(argv[2]);
    if (!read.ok()) return fail(read.status());
    Result<Pattern> update = parse_pattern(argv[3]);
    if (!update.ok()) return fail(update.status());
    Result<ConflictReport> report = Status::Internal("unreachable");
    if (command == "detect-insert") {
      if (argc != 5) return Usage();
      Result<Tree> content = ParseXml(argv[4], symbols);
      if (!content.ok()) return fail(content.status());
      report = engine.Detect(*read,
                             UpdateOp::MakeInsert(
                                 *update, std::make_shared<const Tree>(
                                              std::move(content).value())));
    } else {
      if (argc != 4) return Usage();
      Result<UpdateOp> del = UpdateOp::MakeDelete(*update);
      if (!del.ok()) return fail(del.status());
      report = engine.Detect(*read, *del);
    }
    if (!report.ok()) return fail(report.status());
    std::cout << ConflictVerdictName(report->verdict) << "  ("
              << DetectorMethodName(report->method) << ")\n";
    if (report->witness.has_value()) {
      std::cout << "witness: " << WriteXml(*report->witness) << "\n";
    }
    return report->verdict == ConflictVerdict::kConflict ? 3 : 0;
  }

  if (command == "contain") {
    if (argc != 4) return Usage();
    Result<Pattern> p = parse_pattern(argv[2]);
    if (!p.ok()) return fail(p.status());
    Result<Pattern> q = parse_pattern(argv[3]);
    if (!q.ok()) return fail(q.status());
    const ContainmentDecision decision = DecideContainment(*p, *q);
    std::cout << (decision.contained ? "contained" : "not-contained")
              << "  (" << decision.models_checked << " canonical models)\n";
    if (decision.counterexample.has_value()) {
      std::cout << "separating tree: " << WriteXml(*decision.counterexample)
                << "\n";
    }
    return decision.contained ? 0 : 3;
  }

  if (command == "minimize") {
    if (argc != 3) return Usage();
    Result<Pattern> p = parse_pattern(argv[2]);
    if (!p.ok()) return fail(p.status());
    const Pattern minimized = MinimizePattern(*p);
    std::cout << ToXPathString(minimized) << "\n";
    std::cerr << p->size() << " -> " << minimized.size() << " node(s)\n";
    return 0;
  }

  return Usage();
}
