// xmlup_lint — static analyzer front end: lints a pidgin update program
// and renders the diagnostics.
//
//   xmlup_lint prog.xup                        compiler-style text
//   xmlup_lint prog.xup --format=json          single JSON object
//   xmlup_lint prog.xup --format=sarif         SARIF 2.1.0
//   xmlup_lint - --format=text                 program from stdin
//
// Options:
//   --dtd=schema.dtd   enable the dtd-violation pass
//   --max-nodes=N      bounded-search node budget (smaller = more
//                      truncated-verdict notices; soundness unaffected)
//   --threads=N        engine worker threads (0 = hardware default)
//   --no-partition     skip the parallel-safety partitioner
//
// Exit status: 0 clean (warnings/info allowed), 1 errors, 2 usage/parse.
//
// Program syntax (one statement per line, # comments):
//
//   y = read $x//book[.//quantity]
//   insert $x/catalog, <book><title/></book>
//   delete $x//book

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "analysis/lint.h"
#include "analysis/program_parser.h"
#include "common/string_util.h"
#include "dtd/dtd.h"
#include "engine/engine.h"

using namespace xmlup;

namespace {

int Usage() {
  std::cerr << "usage: xmlup_lint <prog.xup|-> [--format=text|json|sarif]\n"
            << "                  [--dtd=schema.dtd] [--max-nodes=N]\n"
            << "                  [--threads=N] [--no-partition]\n";
  return 2;
}

Result<std::string> Slurp(const std::string& path) {
  std::ostringstream buffer;
  if (path == "-") {
    buffer << std::cin.rdbuf();
  } else {
    std::ifstream file(path);
    if (!file) return Status::NotFound("cannot open " + path);
    buffer << file.rdbuf();
  }
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string input_path;
  std::string format = "text";
  std::string dtd_path;
  EngineOptions options;
  Engine::LintRunOptions run_options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (StartsWith(arg, "--format=")) {
      format = arg.substr(9);
    } else if (StartsWith(arg, "--dtd=")) {
      dtd_path = arg.substr(6);
    } else if (StartsWith(arg, "--max-nodes=")) {
      options.batch.detector.search.max_nodes =
          static_cast<size_t>(std::stoul(arg.substr(12)));
    } else if (StartsWith(arg, "--threads=")) {
      options.batch.num_threads =
          static_cast<size_t>(std::stoul(arg.substr(10)));
    } else if (arg == "--no-partition") {
      run_options.partition = false;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      return Usage();
    } else if (input_path.empty()) {
      input_path = arg;
    } else {
      return Usage();
    }
  }
  if (input_path.empty()) return Usage();
  if (format != "text" && format != "json" && format != "sarif") {
    return Usage();
  }

  Result<std::string> source = Slurp(input_path);
  if (!source.ok()) {
    std::cerr << "error: " << source.status() << "\n";
    return 2;
  }
  Engine engine(options);
  const std::shared_ptr<SymbolTable>& symbols = engine.symbols();
  Result<ParsedProgram> parsed = ParseProgram(*source, symbols);
  if (!parsed.ok()) {
    std::cerr << "error: " << parsed.status() << "\n";
    return 2;
  }

  std::optional<Dtd> dtd;
  if (!dtd_path.empty()) {
    Result<std::string> dtd_text = Slurp(dtd_path);
    if (!dtd_text.ok()) {
      std::cerr << "error: " << dtd_text.status() << "\n";
      return 2;
    }
    Result<Dtd> dtd_parsed = Dtd::Parse(*dtd_text, symbols);
    if (!dtd_parsed.ok()) {
      std::cerr << "error: " << dtd_parsed.status() << "\n";
      return 2;
    }
    dtd.emplace(std::move(dtd_parsed).value());
    run_options.dtd = &*dtd;
  }

  const LintResult result = engine.Lint(parsed->program, run_options);

  LintRenderOptions render;
  render.artifact_uri = input_path == "-" ? "<stdin>" : input_path;
  render.lines = &parsed->lines;
  if (format == "json") {
    std::cout << RenderLintJson(parsed->program, result, render) << "\n";
  } else if (format == "sarif") {
    std::cout << RenderLintSarif(parsed->program, result, render) << "\n";
  } else {
    std::cout << RenderLintText(parsed->program, result, render);
  }
  return result.HasErrors() ? 1 : 0;
}
