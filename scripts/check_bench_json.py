#!/usr/bin/env python3
"""Validates the BENCH_<name>.json stats dumps for the CI bench-smoke job.

Usage: check_bench_json.py <bench name, see CHECKS below> [--min-speedup X]

Two failure classes with distinct exit codes, so the workflow can retry
the right one:
  exit 2 — structural: required keys missing, obs disabled, instrumentation
           dead, or an invariant violated. Never retried: reruns cannot fix
           a missing key.
  exit 3 — performance: a measured speedup landed below --min-speedup.
           Retryable: shared CI runners are noisy, so the workflow reruns
           the bench once and revalidates against a relaxed floor.
"""

import argparse
import json
import sys


def structural(msg):
    print(f"FAIL (structural): {msg}", file=sys.stderr)
    sys.exit(2)


def performance(msg):
    print(f"FAIL (performance): {msg}", file=sys.stderr)
    sys.exit(3)


def load(name):
    path = f"BENCH_{name}.json"
    try:
        with open(path) as f:
            stats = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        structural(f"{path}: {e}")
    if not stats.get("obs_enabled"):
        structural(f"{path}: obs was not enabled during the bench run")
    return stats


def require(stats, name, keys, sub=None):
    scope = stats if sub is None else stats.get(sub, {})
    label = f"BENCH_{name}.json" + (f" [{sub}]" if sub else "")
    missing = [k for k in keys if k not in scope]
    if missing:
        structural(f"{label} missing required keys: {missing}")
    return scope


def check_batch(stats, args):
    require(stats, "batch", ["bench", "obs_enabled", "metrics", "trace"])
    counters = require(
        stats["metrics"], "batch",
        ["batch.pairs_total", "batch.cache_hits", "batch.cache_misses",
         "detector.calls"],
        sub="counters")
    if "spans" not in stats["trace"]:
        structural("BENCH_batch.json missing trace.spans")
    if counters["batch.pairs_total"] == 0:
        structural("no pairs recorded: instrumentation is dead")
    try:
        with open("BENCH_batch_trace.json") as f:
            trace = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        structural(f"BENCH_batch_trace.json: {e}")
    if not trace.get("traceEvents"):
        structural("Chrome trace has no events")
    print(f"ok: {counters['batch.pairs_total']} pairs, "
          f"{len(trace['traceEvents'])} trace events")


def check_intern(stats, args):
    require(stats, "intern",
            ["bench", "obs_enabled", "key_lookup", "metrics", "trace"])
    key_lookup = require(stats, "intern",
                         ["pairs", "string_ns", "interned_ns", "speedup"],
                         sub="key_lookup")
    counters = require(
        stats["metrics"], "intern",
        ["pattern_store.hits", "pattern_store.misses", "pattern_store.bytes"],
        sub="counters")
    # Misses count distinct patterns; the repeated-intern benchmarks drive
    # hits far above misses, proving canonicalization is not paid per lookup.
    if counters["pattern_store.misses"] == 0:
        structural("no interns recorded: instrumentation is dead")
    if counters["pattern_store.hits"] <= counters["pattern_store.misses"]:
        structural("expected repeated interning to be hit-dominated: "
                   f"{counters}")
    if key_lookup["speedup"] < args.min_speedup:
        performance(f"key_lookup speedup {key_lookup['speedup']} "
                    f"< {args.min_speedup}x")
    print(f"ok: key_lookup speedup {key_lookup['speedup']}x, "
          f"{counters['pattern_store.misses']} distinct patterns, "
          f"{counters['pattern_store.hits']} hits")


def check_incremental(stats, args):
    require(stats, "incremental",
            ["bench", "obs_enabled", "edit_stream", "metrics", "trace"])
    edit_stream = require(
        stats, "incremental",
        ["matrix", "edits", "scratch_ms", "maintained_ms", "speedup",
         "pairs_requested", "pairs_solved", "cells_recomputed"],
        sub="edit_stream")
    counters = require(
        stats["metrics"], "incremental",
        ["matrix.edits", "matrix.cells_recomputed", "matrix.cells_reused",
         "batch.pairs_total"],
        sub="counters")
    if counters["matrix.edits"] == 0:
        structural("no matrix edits recorded: instrumentation is dead")
    # The tentpole invariant: a single-statement edit of an N×M matrix asks
    # the engine for at most max(N, M) pairs, so the whole stream stays
    # within edits * matrix requests.
    bound = edit_stream["edits"] * edit_stream["matrix"]
    if edit_stream["pairs_requested"] > bound:
        structural(f"edit stream requested {edit_stream['pairs_requested']} "
                   f"pairs > row/column bound {bound}")
    if edit_stream["speedup"] < args.min_speedup:
        performance(f"edit_stream speedup {edit_stream['speedup']} "
                    f"< {args.min_speedup}x")
    print(f"ok: edit_stream speedup {edit_stream['speedup']}x "
          f"({edit_stream['edits']} edits, "
          f"{edit_stream['pairs_requested']} pairs requested, "
          f"{edit_stream['pairs_solved']} solved)")


def check_lint(stats, args):
    require(stats, "lint", ["bench", "obs_enabled", "lint", "metrics",
                            "trace"])
    lint = require(
        stats, "lint",
        ["programs", "statements", "diagnostics", "fixits", "pairs_checked",
         "unknown_share", "seconds", "diagnostics_per_sec"],
        sub="lint")
    counters = require(
        stats["metrics"], "lint",
        ["lint.programs", "lint.statements", "lint.diagnostics",
         "batch.pairs_total"],
        sub="counters")
    if counters["lint.programs"] == 0:
        structural("no lint runs recorded: instrumentation is dead")
    if lint["diagnostics"] == 0:
        structural("lint corpus produced zero diagnostics: passes are dead")
    if lint["pairs_checked"] == 0:
        structural("lint corpus checked zero pairs: engine wiring is dead")
    if not 0.0 <= lint["unknown_share"] <= 1.0:
        structural(f"unknown_share {lint['unknown_share']} not in [0, 1]")
    print(f"ok: {lint['programs']} programs, {lint['diagnostics']} "
          f"diagnostics ({lint['fixits']} fix-its), "
          f"{lint['pairs_checked']} pairs checked, "
          f"{lint['diagnostics_per_sec']} diagnostics/s")


def check_detect_hot(stats, args):
    require(stats, "detect_hot",
            ["bench", "obs_enabled", "detect_hot", "metrics", "trace"])
    ablation = require(
        stats, "detect_hot",
        ["pairs", "cold_us", "warm_nfa_us", "warm_us", "speedup_nfa",
         "speedup", "verdicts_identical"],
        sub="detect_hot")
    counters = require(
        stats["metrics"], "detect_hot",
        ["store.nfa.hits", "store.nfa.misses", "store.nfa.bytes",
         "detector.product_cache.lookups", "detector.product_cache.hits",
         "detector.product_cache.misses", "detector.calls",
         "detector.errors"],
        sub="counters")
    if ablation["pairs"] == 0:
        structural("no pairs measured: workload is dead")
    # Caching must never change answers — the equivalence oracle ran inside
    # the bench itself, over all three phases.
    if not ablation["verdicts_identical"]:
        structural("cached verdicts diverged from the cold value path")
    if counters["store.nfa.misses"] == 0 or counters["store.nfa.bytes"] == 0:
        structural("no compiled automata recorded: store cache is dead")
    if counters["store.nfa.hits"] <= counters["store.nfa.misses"]:
        structural("expected warm passes to be hit-dominated: "
                   f"{counters}")
    # The sharded product cache's accounting invariant: every lookup is
    # exactly one hit or one miss (racing builders both count misses).
    lookups = counters["detector.product_cache.lookups"]
    hits = counters["detector.product_cache.hits"]
    misses = counters["detector.product_cache.misses"]
    if lookups != hits + misses:
        structural(f"product cache accounting broken: {lookups} lookups != "
                   f"{hits} hits + {misses} misses")
    if misses == 0:
        structural("product cache recorded no misses: cache is dead")
    if counters["detector.errors"] != 0:
        structural(f"{counters['detector.errors']} detector errors during "
                   "the bench: the workload should be error-free")
    if ablation["speedup"] < args.min_speedup:
        performance(f"warm detect speedup {ablation['speedup']} "
                    f"< {args.min_speedup}x")
    print(f"ok: detect_hot speedup {ablation['speedup']}x warm "
          f"({ablation['speedup_nfa']}x NFA-only) over {ablation['pairs']} "
          f"pairs; product cache {hits}/{lookups} hits")


def check_prune(stats, args):
    require(stats, "prune",
            ["bench", "obs_enabled", "prune", "metrics", "trace"])
    ablation = require(
        stats, "prune",
        ["pairs", "warm_us", "pruned_us", "speedup", "pruned_fraction",
         "verdicts_identical"],
        sub="prune")
    counters = require(
        stats["metrics"], "prune",
        ["store.types.hits", "store.types.misses", "store.types.bytes",
         "detector.method.type_pruned", "detector.calls", "detector.errors"],
        sub="counters")
    if ablation["pairs"] == 0:
        structural("no pairs measured: workload is dead")
    # Soundness gate: Stage 0 may change a pair's method, never its verdict.
    if not ablation["verdicts_identical"]:
        structural("pruned verdicts diverged from the unpruned warm path")
    if counters["store.types.misses"] == 0 or counters["store.types.bytes"] == 0:
        structural("no type summaries recorded: store summary cache is dead")
    if counters["store.types.hits"] <= counters["store.types.misses"]:
        structural("expected per-pair probes to be hit-dominated: "
                   f"{counters}")
    if counters["detector.method.type_pruned"] == 0:
        structural("no pair resolved via kTypePruned: Stage 0 is dead")
    if counters["detector.errors"] != 0:
        structural(f"{counters['detector.errors']} detector errors during "
                   "the bench: the workload should be error-free")
    # The typed workload is built so most pairs are schema-disjoint; a low
    # fraction means the footprint computation lost precision.
    if ablation["pruned_fraction"] <= 0.5:
        structural(f"pruned_fraction {ablation['pruned_fraction']} <= 0.5: "
                   "Stage 0 pruned too few pairs")
    if ablation["speedup"] < args.min_speedup:
        performance(f"prune speedup {ablation['speedup']} "
                    f"< {args.min_speedup}x")
    print(f"ok: prune speedup {ablation['speedup']}x over "
          f"{ablation['pairs']} pairs, "
          f"{ablation['pruned_fraction']:.1%} type-pruned; "
          f"summaries {counters['store.types.hits']} hits / "
          f"{counters['store.types.misses']} misses")


def check_workload(stats, args):
    require(stats, "workload",
            ["bench", "obs_enabled", "workload", "metrics", "trace"])
    report = require(stats, "workload",
                     ["workload", "seed", "phases", "total_verdicts"],
                     sub="workload")
    counters = require(stats["metrics"], "workload", ["detector.calls"],
                       sub="counters")
    if counters["detector.calls"] == 0:
        structural("no detector calls recorded: the driver never ran")
    phases = report["phases"]
    if not phases:
        structural("workload report has no phases")
    for phase in phases:
        label = phase.get("name", "?")
        missing = [k for k in
                   ["name", "mode", "workers", "ops_planned", "ops_completed",
                    "truncated", "wall_seconds", "throughput_ops_per_s",
                    "latency", "verdicts", "engine_counters"]
                   if k not in phase]
        if missing:
            structural(f"phase {label} missing keys: {missing}")
        latency = phase["latency"]
        missing = [k for k in
                   ["count", "p50_us", "p95_us", "p99_us", "mean_us", "max_us"]
                   if k not in latency]
        if missing:
            structural(f"phase {label} latency missing keys: {missing}")
        if phase["ops_completed"] == 0:
            structural(f"phase {label} completed zero ops")
        if phase["throughput_ops_per_s"] <= 0:
            structural(f"phase {label} throughput "
                       f"{phase['throughput_ops_per_s']} not > 0")
        if latency["count"] != phase["ops_completed"]:
            structural(f"phase {label} recorded {latency['count']} latencies "
                       f"for {phase['ops_completed']} ops")
        # The quantile invariant the interpolated extraction must preserve.
        if not (0 <= latency["p50_us"] <= latency["p95_us"]
                <= latency["p99_us"] <= latency["max_us"]):
            structural(f"phase {label} latency not monotone: "
                       f"p50 {latency['p50_us']} p95 {latency['p95_us']} "
                       f"p99 {latency['p99_us']} max {latency['max_us']}")
    totals = report["total_verdicts"]
    tallied = sum(totals.get(k, 0) for k in
                  ["no_conflict", "conflict", "unknown", "errors"])
    if tallied == 0:
        structural("workload tallied zero verdicts: work units are dead")
    if totals.get("errors", 0) == tallied:
        structural("every verdict was an error: the workload is degenerate")
    print(f"ok: {len(phases)} phases, {tallied} verdicts "
          f"({totals.get('errors', 0)} errors); throughput " +
          ", ".join(f"{p['name']} {p['throughput_ops_per_s']:.0f} ops/s"
                    for p in phases))


def check_merge(stats, args):
    require(stats, "merge", ["bench", "obs_enabled", "merge", "metrics",
                             "trace"])
    sweep = require(stats, "merge", ["configs"], sub="merge")
    counters = require(
        stats["metrics"], "merge",
        ["merge.merges", "merge.ops", "merge.pairs_checked"],
        sub="counters")
    if counters["merge.merges"] == 0:
        structural("no merges recorded: instrumentation is dead")
    configs = sweep["configs"]
    if not configs:
        structural("merge sweep measured no configs")
    for config in configs:
        label = (f"sessions={config.get('sessions', '?')} "
                 f"conflict={config.get('conflict', '?')}")
        missing = [k for k in
                   ["sessions", "conflict", "ops_total", "accepted",
                    "serialized", "rejected", "levels", "merge_us",
                    "throughput_ops_per_s", "oracle_identical"]
                   if k not in config]
        if missing:
            structural(f"config {label} missing keys: {missing}")
        # Correctness gate: the merged document must equal the sequential
        # reference on every unit of every config.
        if not config["oracle_identical"]:
            structural(f"config {label} diverged from the serial oracle")
        # Per-op accounting: every op is accepted, serialized or rejected.
        accounted = (config["accepted"] + config["serialized"]
                     + config["rejected"])
        if accounted != config["ops_total"]:
            structural(f"config {label} accounts for {accounted} of "
                       f"{config['ops_total']} ops")
        if config["ops_total"] == 0:
            structural(f"config {label} merged zero ops")
        if config["throughput_ops_per_s"] <= 0:
            structural(f"config {label} throughput "
                       f"{config['throughput_ops_per_s']} not > 0")
    print(f"ok: {len(configs)} configs; " +
          ", ".join(f"s{c['sessions']}/{c['conflict']} "
                    f"{c['throughput_ops_per_s']:.0f} ops/s "
                    f"({c['accepted']}/{c['ops_total']} accepted)"
                    for c in configs))


CHECKS = {
    "batch": check_batch,
    "intern": check_intern,
    "incremental": check_incremental,
    "lint": check_lint,
    "detect_hot": check_detect_hot,
    "prune": check_prune,
    "workload": check_workload,
    "merge": check_merge,
}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench", choices=sorted(CHECKS))
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="performance floor for the bench's speedup "
                             "number (ignored by 'batch')")
    args = parser.parse_args()
    CHECKS[args.bench](load(args.bench), args)


if __name__ == "__main__":
    main()
