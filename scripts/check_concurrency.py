#!/usr/bin/env python3
"""Lock-discipline lint for src/ — the static layer of the concurrency
model that regexes can enforce (DESIGN "Concurrency model" describes the
full stack: these rules + Clang -Wthread-safety + TSan).

Rules (each violation prints `path:line: [rule] message`; exit 1 if any):

  bare-primitive   std::mutex / std::shared_mutex / std::lock_guard /
                   std::scoped_lock / std::unique_lock /
                   std::condition_variable(_any) may be *named* only in
                   src/common/mutex.h. Everything else uses xmlup::Mutex /
                   MutexLock / CondVar so the Clang thread-safety
                   annotations see every acquisition. Suppress a deliberate
                   exception with `// concurrency-ok: <reason>` on the line.

  detach           std::thread::detach() is banned outright: a detached
                   thread outlives every join-based happens-before edge the
                   relaxed-counter audit relies on. No suppression.

  static-mutable   A namespace-scope `static` object of a mutable type
                   (vector/map/string/...) that is not const, not atomic,
                   and not a function must either be XMLUP_GUARDED_BY(...)
                   or carry `// concurrency-ok: <reason>`. Heuristic by
                   design — it exists to catch casually added global caches
                   before TSan has a workload that reaches them.

  relaxed-comment  Every memory_order_relaxed use must justify itself: an
                   `// ordering:` comment on the same line or within the
                   preceding few lines (8 — enough for a block-sized
                   rationale above a multi-line statement). The comment is
                   the audit trail — see the EntryTable publish-path proof
                   in pattern_store.cc for the standard it documents.

`--self-test` seeds one violation of each rule into a temp tree and checks
the lint reports all of them (and that a clean file stays clean), so CI
notices if a regex rots. Run from the repo root.
"""

import argparse
import pathlib
import re
import sys
import tempfile

ALLOWED_PRIMITIVE_FILES = {"src/common/mutex.h"}
SUPPRESS = "concurrency-ok"

BARE_PRIMITIVE = re.compile(
    r"std::(?:mutex|shared_mutex|recursive_mutex|timed_mutex|lock_guard|"
    r"scoped_lock|unique_lock|shared_lock|condition_variable(?:_any)?)\b"
)
DETACH = re.compile(r"\.detach\(\)")
RELAXED = re.compile(r"memory_order_relaxed")
ORDERING_COMMENT = re.compile(r"//.*ordering:")
# Namespace-scope mutable statics: `static <Type> name...;` where Type is a
# known-mutable container/cache shape. Indented lines are skipped (class
# members are GUARDED_BY-checked by Clang; function-local statics with
# constructors are magic-static-safe and often deliberately leaked).
STATIC_MUTABLE = re.compile(
    r"^static\s+(?!const\b|constexpr\b|std::atomic\b)"
    r"((?:std::)?(?:vector|map|unordered_map|set|unordered_set|deque|"
    r"list|string)\b[^;(]*;)"
)
GUARDED = re.compile(r"XMLUP_GUARDED_BY")


def strip_strings(line):
    """Blanks out string literals so 'std::mutex' in a message or a lint
    rule's own pattern does not trip the lint."""
    return re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)


def code_part(line):
    """The portion of the line before any // comment, strings blanked —
    what the code rules match against, so that doc comments may *discuss*
    std::mutex or memory_order_relaxed freely."""
    return strip_strings(line).split("//", 1)[0]


def lint_file(path, rel, violations):
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except (OSError, UnicodeDecodeError) as e:
        violations.append((rel, 0, "io", str(e)))
        return
    for i, raw in enumerate(lines, start=1):
        line = code_part(raw)
        suppressed = SUPPRESS in strip_strings(raw)

        if rel not in ALLOWED_PRIMITIVE_FILES and not suppressed:
            m = BARE_PRIMITIVE.search(line)
            if m:
                violations.append(
                    (rel, i, "bare-primitive",
                     f"{m.group(0)} outside common/mutex.h — use "
                     "xmlup::Mutex / MutexLock / CondVar (or annotate the "
                     f"exception with // {SUPPRESS}: <reason>)"))

        if DETACH.search(line):
            violations.append(
                (rel, i, "detach",
                 "std::thread::detach() is banned (no suppression): "
                 "detached threads escape every join-based "
                 "happens-before edge"))

        if STATIC_MUTABLE.search(line) and not suppressed \
                and not GUARDED.search(line):
            violations.append(
                (rel, i, "static-mutable",
                 "namespace-scope mutable static without "
                 "XMLUP_GUARDED_BY(...) — guard it or annotate with "
                 f"// {SUPPRESS}: <reason>"))

        if RELAXED.search(line):
            window = lines[max(0, i - 9):i]
            if not any(ORDERING_COMMENT.search(w) for w in window):
                violations.append(
                    (rel, i, "relaxed-comment",
                     "memory_order_relaxed without an `// ordering:` "
                     "rationale on the line or within the few lines above"))


def run(root):
    root = pathlib.Path(root)
    violations = []
    for path in sorted((root / "src").rglob("*")):
        if path.suffix not in {".h", ".cc", ".cpp", ".hpp"}:
            continue
        rel = path.relative_to(root).as_posix()
        lint_file(path, rel, violations)
    return violations


def self_test():
    """Seeds one violation per rule; the lint must find exactly those."""
    bad = """\
#include <mutex>
static std::mutex g_bad_mutex;
void f() {
  std::thread t(f);
  t.detach();
}
static std::vector<int> g_bad_cache;
std::atomic<int> g_count{0};
void g() { g_count.fetch_add(1, std::memory_order_relaxed); }
"""
    clean = """\
#include "common/mutex.h"
static std::vector<int> g_ok_cache;  // concurrency-ok: written before main
std::atomic<int> g_ok{0};
void h() {
  // ordering: relaxed — test counter, read after join.
  g_ok.fetch_add(1, std::memory_order_relaxed);
}
const char* s() { return "std::mutex in a string is fine"; }
"""
    with tempfile.TemporaryDirectory() as tmp:
        srcdir = pathlib.Path(tmp) / "src"
        srcdir.mkdir()
        (srcdir / "bad.cc").write_text(bad)
        (srcdir / "clean.cc").write_text(clean)
        violations = run(tmp)
    got = {(v[0], v[2]) for v in violations}
    want = {
        ("src/bad.cc", "bare-primitive"),
        ("src/bad.cc", "detach"),
        ("src/bad.cc", "static-mutable"),
        ("src/bad.cc", "relaxed-comment"),
    }
    missing = want - got
    extra = {g for g in got if g[0] != "src/bad.cc"}
    if missing:
        print(f"self-test FAIL: rules not triggered: {sorted(missing)}",
              file=sys.stderr)
        return 1
    if extra:
        print(f"self-test FAIL: clean file flagged: {sorted(extra)}",
              file=sys.stderr)
        return 1
    print(f"self-test OK: {len(violations)} seeded violations caught, "
          "clean file clean")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".",
                        help="repo root (default: cwd)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the lint catches seeded violations")
    args = parser.parse_args()

    if args.self_test:
        sys.exit(self_test())

    violations = run(args.root)
    for rel, line, rule, msg in violations:
        print(f"{rel}:{line}: [{rule}] {msg}", file=sys.stderr)
    if violations:
        print(f"\n{len(violations)} concurrency-lint violation(s).",
              file=sys.stderr)
        sys.exit(1)
    print("concurrency lint: OK")


if __name__ == "__main__":
    main()
