#!/usr/bin/env bash
# Runs clang-tidy with the repo's .clang-tidy profile over every
# translation unit in src/, examples/ and bench/ (tests are covered by
# header-filter through their includes). Needs a build tree configured
# with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON.
#
# Usage: scripts/run_clang_tidy.sh [build-dir]
#
# Exit status: clang-tidy's own — nonzero when a WarningsAsErrors check
# (concurrency-*) fires or a file fails to parse. Other findings are
# printed but do not fail the run.
set -euo pipefail

build_dir="${1:-build}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"

if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  echo "error: $build_dir/compile_commands.json not found;" >&2
  echo "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 2
fi

tidy="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$tidy" >/dev/null; then
  echo "error: $tidy not found on PATH" >&2
  exit 2
fi

mapfile -t sources < <(
  find "$repo_root/src" "$repo_root/examples" "$repo_root/bench" \
    -name '*.cc' -o -name '*.cpp' | sort)

echo "clang-tidy (${#sources[@]} files, profile $repo_root/.clang-tidy)"
"$tidy" -p "$build_dir" --quiet "${sources[@]}"
