#include "analysis/dependence.h"

#include <optional>

#include "conflict/update_independence.h"

namespace xmlup {
namespace {

bool IsUpdate(const Statement& s) {
  return s.kind == Statement::Kind::kInsert ||
         s.kind == Statement::Kind::kDelete;
}

std::optional<UpdateOp> ToUpdateOp(const Statement& s) {
  if (s.kind == Statement::Kind::kInsert) {
    return UpdateOp::MakeInsert(s.pattern, s.content);
  }
  Result<UpdateOp> del = UpdateOp::MakeDelete(s.pattern);
  if (!del.ok()) return std::nullopt;
  return std::move(del).value();
}

}  // namespace

DependenceAnalyzer::DependenceAnalyzer(DetectorOptions options)
    : options_(options) {}

bool DependenceAnalyzer::MustOrder(const Statement& a,
                                   const Statement& b) const {
  if (a.target_var != b.target_var) return false;
  if (a.kind == Statement::Kind::kRead && b.kind == Statement::Kind::kRead) {
    return false;
  }
  if (IsUpdate(a) && IsUpdate(b)) {
    // §6: update-update conflicts are NP-hard in general, but the sound
    // commutativity certificate of update_independence.h proves many pairs
    // reorderable; anything uncertified stays ordered.
    std::optional<UpdateOp> op_a = ToUpdateOp(a);
    std::optional<UpdateOp> op_b = ToUpdateOp(b);
    if (!op_a.has_value() || !op_b.has_value()) return true;
    Result<IndependenceReport> cert =
        CertifyUpdatesCommute(*op_a, *op_b, options_);
    return !cert.ok() ||
           cert->certificate != CommutativityCertificate::kCertified;
  }

  const Statement& read = a.kind == Statement::Kind::kRead ? a : b;
  const Statement& update = a.kind == Statement::Kind::kRead ? b : a;

  Result<ConflictReport> report =
      update.kind == Statement::Kind::kInsert
          ? DetectReadInsert(read.pattern, update.pattern, *update.content,
                             options_)
          : DetectReadDelete(read.pattern, update.pattern, options_);
  if (!report.ok()) return true;  // malformed update: stay conservative
  return report->verdict != ConflictVerdict::kNoConflict;
}

DependenceAnalysisResult DependenceAnalyzer::Analyze(
    const Program& program) const {
  DependenceAnalysisResult result;
  const auto& statements = program.statements();
  for (size_t i = 0; i < statements.size(); ++i) {
    for (size_t j = i + 1; j < statements.size(); ++j) {
      ++result.pairs_total;
      if (MustOrder(statements[i], statements[j])) {
        std::string reason = statements[i].target_var;
        result.dependences.push_back({i, j, std::move(reason)});
      } else {
        ++result.pairs_independent;
      }
    }
  }
  return result;
}

}  // namespace xmlup
