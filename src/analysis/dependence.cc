#include "analysis/dependence.h"

#include <optional>
#include <unordered_map>

#include "conflict/update_independence.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pattern/pattern_store.h"

namespace xmlup {
namespace {

/// Analyzer observability: how many statement pairs were examined and how
/// many candidate ordering edges the conflict verdicts pruned away (the
/// payoff metric — pruned edges are the parallelism §6 is after).
struct DependenceMetrics {
  obs::Counter& pairs_analyzed;
  obs::Counter& edges_pruned;

  static const DependenceMetrics& Get() {
    static const DependenceMetrics* const metrics = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
      return new DependenceMetrics{
          reg.GetCounter("dependence.pairs_analyzed"),
          reg.GetCounter("dependence.edges_pruned"),
      };
    }();
    return *metrics;
  }
};

bool IsUpdate(const Statement& s) {
  return s.kind == Statement::Kind::kInsert ||
         s.kind == Statement::Kind::kDelete;
}

std::optional<UpdateOp> ToUpdateOp(const Statement& s) {
  if (s.kind == Statement::Kind::kInsert) {
    return UpdateOp::MakeInsert(s.pattern, s.content);
  }
  Result<UpdateOp> del = UpdateOp::MakeDelete(s.pattern);
  if (!del.ok()) return std::nullopt;
  return std::move(del).value();
}

}  // namespace

DependenceAnalyzer::DependenceAnalyzer(DetectorOptions options)
    : DependenceAnalyzer(BatchDetectorOptions{options, 0, true, true}) {}

DependenceAnalyzer::DependenceAnalyzer(BatchDetectorOptions options)
    : options_(options), batch_(options) {}

bool DependenceAnalyzer::MustOrder(const Statement& a,
                                   const Statement& b) const {
  if (a.target_var != b.target_var) return false;
  if (a.kind == Statement::Kind::kRead && b.kind == Statement::Kind::kRead) {
    return false;
  }
  if (IsUpdate(a) && IsUpdate(b)) {
    // §6: update-update conflicts are NP-hard in general, but the sound
    // commutativity certificate of update_independence.h proves many pairs
    // reorderable; anything uncertified stays ordered.
    std::optional<UpdateOp> op_a = ToUpdateOp(a);
    std::optional<UpdateOp> op_b = ToUpdateOp(b);
    if (!op_a.has_value() || !op_b.has_value()) return true;
    Result<IndependenceReport> cert =
        CertifyUpdatesCommute(*op_a, *op_b, options_.detector);
    return !cert.ok() ||
           cert->certificate != CommutativityCertificate::kCertified;
  }

  const Statement& read = a.kind == Statement::Kind::kRead ? a : b;
  const Statement& update = a.kind == Statement::Kind::kRead ? b : a;

  std::optional<UpdateOp> op = ToUpdateOp(update);
  if (!op.has_value()) return true;  // malformed update: stay conservative
  Result<ConflictReport> report = Detect(read.pattern, *op, options_.detector);
  if (!report.ok()) return true;
  return report->verdict != ConflictVerdict::kNoConflict;
}

DependenceAnalysisResult DependenceAnalyzer::Analyze(
    const Program& program) const {
  obs::TraceSpan span("DependenceAnalyze");
  DependenceAnalysisResult result;
  const auto& statements = program.statements();

  // Pass 1: collect every read/update pair on a shared variable for the
  // batch engine; each statement enters the read/update pools once, and
  // its pattern is interned into the engine's store here — the batch call
  // below then runs entirely on refs, with no per-pair canonicalization.
  const std::shared_ptr<PatternStore>& store = batch_.pattern_store();
  std::vector<PatternRef> reads;
  std::vector<UpdateOp> updates;
  std::unordered_map<size_t, size_t> read_slot;    // statement → reads idx
  std::unordered_map<size_t, size_t> update_slot;  // statement → updates idx
  std::vector<ReadUpdatePair> pairs;
  auto read_index_of = [&](size_t s) {
    auto [it, inserted] = read_slot.emplace(s, reads.size());
    if (inserted) reads.push_back(store->Intern(statements[s].pattern));
    return it->second;
  };
  auto update_index_of = [&](size_t s) -> std::optional<size_t> {
    auto it = update_slot.find(s);
    if (it != update_slot.end()) return it->second;
    std::optional<UpdateOp> op = ToUpdateOp(statements[s]);
    if (!op.has_value()) return std::nullopt;  // malformed: resolved inline
    update_slot.emplace(s, updates.size());
    updates.push_back(op->Bind(store));
    return updates.size() - 1;
  };
  for (size_t i = 0; i < statements.size(); ++i) {
    for (size_t j = i + 1; j < statements.size(); ++j) {
      const Statement& a = statements[i];
      const Statement& b = statements[j];
      if (a.target_var != b.target_var) continue;
      if (IsUpdate(a) == IsUpdate(b)) continue;  // read/read, update/update
      const size_t read_stmt = IsUpdate(a) ? j : i;
      const size_t update_stmt = IsUpdate(a) ? i : j;
      std::optional<size_t> u = update_index_of(update_stmt);
      if (!u.has_value()) continue;
      pairs.push_back({read_index_of(read_stmt), *u});
    }
  }
  const std::vector<SharedConflictResult> verdicts =
      batch_.DetectPairs(reads, updates, pairs);

  // Pass 2: classify every pair in order, consuming batch verdicts in the
  // order pass 1 enqueued them.
  size_t next_verdict = 0;
  for (size_t i = 0; i < statements.size(); ++i) {
    for (size_t j = i + 1; j < statements.size(); ++j) {
      ++result.pairs_total;
      const Statement& a = statements[i];
      const Statement& b = statements[j];
      bool ordered;
      if (a.target_var != b.target_var || (!IsUpdate(a) && !IsUpdate(b))) {
        ordered = false;
      } else if (IsUpdate(a) && IsUpdate(b)) {
        ordered = MustOrder(a, b);
      } else if (update_slot.count(IsUpdate(a) ? i : j) != 0) {
        const Result<ConflictReport>& report = *verdicts[next_verdict++];
        ordered = !report.ok() ||
                  report->verdict != ConflictVerdict::kNoConflict;
      } else {
        ordered = true;  // malformed update: stay conservative
      }
      if (ordered) {
        std::string reason = statements[i].target_var;
        result.dependences.push_back({i, j, std::move(reason)});
      } else {
        ++result.pairs_independent;
      }
    }
  }
  const DependenceMetrics& metrics = DependenceMetrics::Get();
  metrics.pairs_analyzed.Increment(result.pairs_total);
  metrics.edges_pruned.Increment(result.pairs_independent);
  result.batch_stats = batch_.stats();
  return result;
}

}  // namespace xmlup
