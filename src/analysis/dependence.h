#ifndef XMLUP_ANALYSIS_DEPENDENCE_H_
#define XMLUP_ANALYSIS_DEPENDENCE_H_

#include <string>
#include <vector>

#include "analysis/program.h"
#include "conflict/batch_detector.h"
#include "conflict/detector.h"

namespace xmlup {

/// Data-dependence analysis over a straight-line update program — the
/// compiler use case that motivates the paper (§1): knowing that a read
/// does not conflict with an update enables code motion and common
/// subexpression elimination.
///
/// Pairwise classification:
///  - statements on different tree variables are independent;
///  - read/read pairs are independent;
///  - read/update pairs use the unified conflict detector (complete for
///    linear reads, Theorems 1-2); an Unknown verdict is treated as a
///    dependence (conservative);
///  - update/update pairs on the same variable are conservatively
///    dependent (see §6 on the subtleties of update-update semantics;
///    commutativity checking is available separately).
///
/// Analyze() routes all read/update pairs through the batch
/// conflict-matrix engine (conflict/batch_detector.h): the full pair set
/// is solved on a thread pool with memoization on canonical pattern
/// pairs, so programs with repeated patterns — the common case for
/// generated programs — pay for each distinct pair once. The memo cache
/// persists across Analyze() calls on the same analyzer.
struct Dependence {
  size_t from;  // earlier statement index
  size_t to;    // later statement index
  std::string reason;
};

struct DependenceAnalysisResult {
  std::vector<Dependence> dependences;
  /// Pairs examined and pairs proven independent (benchmark E8 reports the
  /// independent fraction).
  size_t pairs_total = 0;
  size_t pairs_independent = 0;
  /// Snapshot of the batch engine's cumulative cache/solve counters after
  /// this analysis.
  BatchStats batch_stats;
};

class DependenceAnalyzer {
 public:
  explicit DependenceAnalyzer(DetectorOptions options = {});
  /// Full control over threading and memoization of the batch engine.
  explicit DependenceAnalyzer(BatchDetectorOptions options);

  /// True if statements a (earlier) and b (later) must stay ordered.
  /// Single-pair entry point; Analyze() is the batched equivalent.
  bool MustOrder(const Statement& a, const Statement& b) const;

  DependenceAnalysisResult Analyze(const Program& program) const;

 private:
  BatchDetectorOptions options_;
  /// Mutable: the memoization cache warms across Analyze() calls; the
  /// analysis result itself is deterministic either way.
  mutable BatchConflictDetector batch_;
};

}  // namespace xmlup

#endif  // XMLUP_ANALYSIS_DEPENDENCE_H_
