#ifndef XMLUP_ANALYSIS_DEPENDENCE_H_
#define XMLUP_ANALYSIS_DEPENDENCE_H_

#include <string>
#include <vector>

#include "analysis/program.h"
#include "conflict/detector.h"

namespace xmlup {

/// Data-dependence analysis over a straight-line update program — the
/// compiler use case that motivates the paper (§1): knowing that a read
/// does not conflict with an update enables code motion and common
/// subexpression elimination.
///
/// Pairwise classification:
///  - statements on different tree variables are independent;
///  - read/read pairs are independent;
///  - read/update pairs use the unified conflict detector (complete for
///    linear reads, Theorems 1-2); an Unknown verdict is treated as a
///    dependence (conservative);
///  - update/update pairs on the same variable are conservatively
///    dependent (see §6 on the subtleties of update-update semantics;
///    commutativity checking is available separately).
struct Dependence {
  size_t from;  // earlier statement index
  size_t to;    // later statement index
  std::string reason;
};

struct DependenceAnalysisResult {
  std::vector<Dependence> dependences;
  /// Pairs examined and pairs proven independent (benchmark E8 reports the
  /// independent fraction).
  size_t pairs_total = 0;
  size_t pairs_independent = 0;
};

class DependenceAnalyzer {
 public:
  explicit DependenceAnalyzer(DetectorOptions options = {});

  /// True if statements a (earlier) and b (later) must stay ordered.
  bool MustOrder(const Statement& a, const Statement& b) const;

  DependenceAnalysisResult Analyze(const Program& program) const;

 private:
  DetectorOptions options_;
};

}  // namespace xmlup

#endif  // XMLUP_ANALYSIS_DEPENDENCE_H_
