#include "analysis/incremental_dependence.h"

#include <utility>

#include "common/check.h"
#include "conflict/update_independence.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace xmlup {
namespace {

bool IsUpdate(const Statement& s) {
  return s.kind == Statement::Kind::kInsert ||
         s.kind == Statement::Kind::kDelete;
}

std::optional<UpdateOp> ToUpdateOp(const Statement& s) {
  if (s.kind == Statement::Kind::kInsert) {
    return UpdateOp::MakeInsert(s.pattern, s.content);
  }
  Result<UpdateOp> del = UpdateOp::MakeDelete(s.pattern);
  if (!del.ok()) return std::nullopt;
  return std::move(del).value();
}

}  // namespace

size_t IncrementalDependenceAnalyzer::UpdatePairKeyHash::operator()(
    const UpdatePairKey& k) const {
  uint64_t h = (static_cast<uint64_t>(k.ref_a) << 32) ^ k.ref_b;
  h ^= (static_cast<uint64_t>(k.content_a) << 32) ^ k.content_b ^
       (static_cast<uint64_t>(k.kind_a) << 17) ^
       (static_cast<uint64_t>(k.kind_b) << 9);
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return static_cast<size_t>(h);
}

IncrementalDependenceAnalyzer::IncrementalDependenceAnalyzer(
    DetectorOptions options)
    : IncrementalDependenceAnalyzer(
          BatchDetectorOptions{options, 0, true, true}) {}

IncrementalDependenceAnalyzer::IncrementalDependenceAnalyzer(
    BatchDetectorOptions options)
    : options_(std::move(options)), matrix_(options_) {}

const Statement& IncrementalDependenceAnalyzer::statement(size_t index) const {
  XMLUP_CHECK(index < stmts_.size());
  return stmts_[index].stmt;
}

void IncrementalDependenceAnalyzer::SetProgram(const Program& program) {
  obs::TraceSpan span("IncrementalDependence.set_program");
  stmts_.clear();
  std::vector<Pattern> reads;
  std::vector<UpdateOp> updates;
  for (const Statement& s : program.statements()) {
    StmtInfo info{s, std::nullopt, std::nullopt};
    if (s.kind == Statement::Kind::kRead) {
      info.read_slot = reads.size();
      reads.push_back(s.pattern);
    } else if (std::optional<UpdateOp> op = ToUpdateOp(s)) {
      info.update_slot = updates.size();
      updates.push_back(std::move(*op));
    }
    stmts_.push_back(std::move(info));
  }
  // uu_memo_ survives: its facts are keyed on canonical op pairs, which a
  // new program may well repeat.
  matrix_.Assign(reads, updates);
}

void IncrementalDependenceAnalyzer::AttachSlots(size_t index) {
  StmtInfo& info = stmts_[index];
  if (info.stmt.kind == Statement::Kind::kRead) {
    info.read_slot = matrix_.AddRead(info.stmt.pattern);
  } else if (std::optional<UpdateOp> op = ToUpdateOp(info.stmt)) {
    info.update_slot = matrix_.AddUpdate(*op);
  }
}

void IncrementalDependenceAnalyzer::DetachSlots(size_t index) {
  StmtInfo& info = stmts_[index];
  if (info.read_slot.has_value()) {
    const size_t row = *info.read_slot;
    matrix_.RemoveRead(row);
    info.read_slot.reset();
    for (StmtInfo& other : stmts_) {
      if (other.read_slot.has_value() && *other.read_slot > row) {
        --*other.read_slot;
      }
    }
  }
  if (info.update_slot.has_value()) {
    const size_t column = *info.update_slot;
    matrix_.RemoveUpdate(column);
    info.update_slot.reset();
    for (StmtInfo& other : stmts_) {
      if (other.update_slot.has_value() && *other.update_slot > column) {
        --*other.update_slot;
      }
    }
  }
}

void IncrementalDependenceAnalyzer::InsertStatement(size_t index,
                                                    const Statement& statement) {
  obs::TraceSpan span("IncrementalDependence.insert");
  XMLUP_CHECK(index <= stmts_.size());
  stmts_.insert(stmts_.begin() + static_cast<ptrdiff_t>(index),
                StmtInfo{statement, std::nullopt, std::nullopt});
  AttachSlots(index);
}

void IncrementalDependenceAnalyzer::RemoveStatement(size_t index) {
  obs::TraceSpan span("IncrementalDependence.remove");
  XMLUP_CHECK(index < stmts_.size());
  DetachSlots(index);
  stmts_.erase(stmts_.begin() + static_cast<ptrdiff_t>(index));
}

void IncrementalDependenceAnalyzer::ReplaceStatement(
    size_t index, const Statement& statement) {
  obs::TraceSpan span("IncrementalDependence.replace");
  XMLUP_CHECK(index < stmts_.size());
  StmtInfo& info = stmts_[index];
  const bool old_read = info.stmt.kind == Statement::Kind::kRead;
  const bool new_read = statement.kind == Statement::Kind::kRead;
  if (old_read && new_read) {
    matrix_.ReplaceRead(*info.read_slot, statement.pattern);
    info.stmt = statement;
    return;
  }
  if (!old_read && !new_read && info.update_slot.has_value()) {
    if (std::optional<UpdateOp> op = ToUpdateOp(statement)) {
      matrix_.ReplaceUpdate(*info.update_slot, *op);
      info.stmt = statement;
      return;
    }
  }
  // Kind change (or a malformed update on either side): fall back to
  // detach + attach, still one row/column of work.
  DetachSlots(index);
  info.stmt = statement;
  info.read_slot.reset();
  info.update_slot.reset();
  AttachSlots(index);
}

bool IncrementalDependenceAnalyzer::MustOrderUpdates(
    const Statement& earlier, const Statement& later) const {
  // §6: update-update conflicts are NP-hard in general; the sound
  // commutativity certificate proves many pairs reorderable, and its
  // verdict for a canonical op pair never changes — memoize it.
  std::optional<UpdateOp> op_a = ToUpdateOp(earlier);
  std::optional<UpdateOp> op_b = ToUpdateOp(later);
  if (!op_a.has_value() || !op_b.has_value()) return true;
  auto leg = [&](const UpdateOp& op, uint32_t* ref, uint32_t* content,
                 uint8_t* kind) {
    *ref = uu_store_.Intern(op.pattern()).id();
    *kind = static_cast<uint8_t>(op.kind());
    *content = op.kind() == UpdateOp::Kind::kInsert
                   ? uu_store_.InternContentCode(op.content())
                   : 0;
  };
  UpdatePairKey key;
  leg(*op_a, &key.ref_a, &key.content_a, &key.kind_a);
  leg(*op_b, &key.ref_b, &key.content_b, &key.kind_b);
  auto it = uu_memo_.find(key);
  if (it != uu_memo_.end()) return it->second;
  Result<IndependenceReport> cert =
      CertifyUpdatesCommute(*op_a, *op_b, options_.detector);
  const bool ordered =
      !cert.ok() || cert->certificate != CommutativityCertificate::kCertified;
  uu_memo_.emplace(key, ordered);
  return ordered;
}

DependenceAnalysisResult IncrementalDependenceAnalyzer::Analyze() const {
  obs::TraceSpan span("IncrementalDependenceAnalyze");
  DependenceAnalysisResult result;
  for (size_t i = 0; i < stmts_.size(); ++i) {
    for (size_t j = i + 1; j < stmts_.size(); ++j) {
      ++result.pairs_total;
      const Statement& a = stmts_[i].stmt;
      const Statement& b = stmts_[j].stmt;
      bool ordered;
      if (a.target_var != b.target_var || (!IsUpdate(a) && !IsUpdate(b))) {
        ordered = false;
      } else if (IsUpdate(a) && IsUpdate(b)) {
        ordered = MustOrderUpdates(a, b);
      } else {
        const StmtInfo& read_info = IsUpdate(a) ? stmts_[j] : stmts_[i];
        const StmtInfo& update_info = IsUpdate(a) ? stmts_[i] : stmts_[j];
        if (!update_info.update_slot.has_value()) {
          ordered = true;  // malformed update: stay conservative
        } else {
          const SharedConflictResult& cell =
              matrix_.cell(*read_info.read_slot, *update_info.update_slot);
          ordered = !cell->ok() ||
                    (*cell)->verdict != ConflictVerdict::kNoConflict;
        }
      }
      if (ordered) {
        result.dependences.push_back({i, j, a.target_var});
      } else {
        ++result.pairs_independent;
      }
    }
  }
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  reg.GetCounter("dependence.pairs_analyzed").Increment(result.pairs_total);
  reg.GetCounter("dependence.edges_pruned").Increment(result.pairs_independent);
  result.batch_stats = matrix_.engine().stats();
  return result;
}

std::vector<std::pair<size_t, size_t>>
IncrementalDependenceAnalyzer::IndependentPairs() const {
  const DependenceAnalysisResult result = Analyze();
  std::vector<bool> dependent(stmts_.size() * stmts_.size(), false);
  for (const Dependence& d : result.dependences) {
    dependent[d.from * stmts_.size() + d.to] = true;
  }
  std::vector<std::pair<size_t, size_t>> independent;
  independent.reserve(result.pairs_independent);
  for (size_t i = 0; i < stmts_.size(); ++i) {
    for (size_t j = i + 1; j < stmts_.size(); ++j) {
      if (!dependent[i * stmts_.size() + j]) independent.emplace_back(i, j);
    }
  }
  return independent;
}

}  // namespace xmlup
