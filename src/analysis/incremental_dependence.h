#ifndef XMLUP_ANALYSIS_INCREMENTAL_DEPENDENCE_H_
#define XMLUP_ANALYSIS_INCREMENTAL_DEPENDENCE_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/dependence.h"
#include "analysis/program.h"
#include "conflict/conflict_matrix.h"

namespace xmlup {

/// Dependence analysis for *evolving* programs — the incremental face of
/// DependenceAnalyzer. The compiler edits a statement (inserts one,
/// deletes one, rewrites a pattern) and wants the refreshed dependence /
/// independent-pair information without re-solving the whole read×update
/// conflict matrix.
///
/// The analyzer keeps every read statement as a row and every well-formed
/// update statement as a column of a MaintainedConflictMatrix, so a
/// single-statement edit triggers at most one row or column recompute
/// (≤ max(#reads, #updates) batch-engine requests, mostly memo hits), plus
/// — for update statements — commutativity certificates against the other
/// updates, which are memoized on canonical (ref, content, kind) pairs so
/// each distinct update pair is certified once per analyzer lifetime.
///
/// Analyze() then classifies statement pairs from the maintained cells
/// exactly as DependenceAnalyzer::Analyze would from a fresh matrix; the
/// two agree dependence-for-dependence on the equivalent Program (the
/// oracle property the tests enforce). Statement indices follow program
/// order; Remove/Insert shift later statements like a text edit would.
///
/// Cross-variable note: the matrix holds a cell for *every* read/update
/// statement pair, including pairs on different tree variables whose
/// verdict the classification never consults (they are independent by
/// definition). That keeps edit cost a clean row/column and lets one
/// matrix serve any variable mix; single-variable programs — the common
/// compiler shape — waste nothing.
class IncrementalDependenceAnalyzer {
 public:
  explicit IncrementalDependenceAnalyzer(DetectorOptions options = {});
  explicit IncrementalDependenceAnalyzer(BatchDetectorOptions options);

  /// Replaces the current statement list with `program` (bulk edit: one
  /// full matrix assign).
  void SetProgram(const Program& program);

  size_t size() const { return stmts_.size(); }
  const Statement& statement(size_t index) const;

  /// Program-edit API; `index` is a current statement position. Insert
  /// places the statement *before* index (index == size() appends).
  void InsertStatement(size_t index, const Statement& statement);
  void RemoveStatement(size_t index);
  void ReplaceStatement(size_t index, const Statement& statement);

  /// Analysis of the current statement list from the maintained state.
  /// Same result contract as DependenceAnalyzer::Analyze on the
  /// equivalent Program.
  DependenceAnalysisResult Analyze() const;

  /// The (i, j) statement pairs (i < j) proven independent — the §1
  /// reordering freedom, refreshed after each edit.
  std::vector<std::pair<size_t, size_t>> IndependentPairs() const;

  const MaintainedConflictMatrix& matrix() const { return matrix_; }
  const DeltaStats& delta_stats() const { return matrix_.delta_stats(); }

 private:
  struct StmtInfo {
    Statement stmt;
    /// Row in matrix_ for reads; column for well-formed updates. A
    /// malformed update (root-selecting delete) gets neither and is
    /// treated as conservatively dependent on everything sharing its
    /// variable, matching DependenceAnalyzer.
    std::optional<size_t> read_slot;
    std::optional<size_t> update_slot;
  };

  /// Memo key for an *ordered* update-statement pair: canonical store ids
  /// of both ops in (earlier, later) call order, so memoized answers
  /// reproduce DependenceAnalyzer::MustOrder call-for-call.
  struct UpdatePairKey {
    uint32_t ref_a = 0, ref_b = 0;
    uint32_t content_a = 0, content_b = 0;
    uint8_t kind_a = 0, kind_b = 0;

    friend bool operator==(const UpdatePairKey& x, const UpdatePairKey& y) {
      return x.ref_a == y.ref_a && x.ref_b == y.ref_b &&
             x.content_a == y.content_a && x.content_b == y.content_b &&
             x.kind_a == y.kind_a && x.kind_b == y.kind_b;
    }
  };
  struct UpdatePairKeyHash {
    size_t operator()(const UpdatePairKey& k) const;
  };

  /// Detaches matrix slots held by stmts_[index] (decrementing later
  /// slots), used by Remove/Replace.
  void DetachSlots(size_t index);
  /// Attaches stmts_[index] to the matrix (AddRead / AddUpdate).
  void AttachSlots(size_t index);

  /// DependenceAnalyzer::MustOrder's update-update branch, memoized.
  bool MustOrderUpdates(const Statement& earlier, const Statement& later) const;

  BatchDetectorOptions options_;
  MaintainedConflictMatrix matrix_;
  std::vector<StmtInfo> stmts_;
  /// Exact-canonical (non-minimizing) interner for uu_memo_ keys: certify
  /// runs on the raw statement ops (exactly what DependenceAnalyzer
  /// does), so the memo must not conflate patterns that only minimization
  /// would merge.
  mutable PatternStore uu_store_{nullptr, PatternStoreOptions{false}};
  mutable std::unordered_map<UpdatePairKey, bool, UpdatePairKeyHash> uu_memo_;
};

}  // namespace xmlup

#endif  // XMLUP_ANALYSIS_INCREMENTAL_DEPENDENCE_H_
