#include "analysis/interpreter.h"

#include <algorithm>

#include "eval/evaluator.h"
#include "xml/isomorphism.h"
#include "xml/tree_algos.h"

namespace xmlup {

void TreeStore::Put(const std::string& name, Tree tree) {
  trees_.erase(name);
  trees_.emplace(name, std::move(tree));
}

const Tree& TreeStore::Get(const std::string& name) const {
  auto it = trees_.find(name);
  XMLUP_CHECK_STREAM(it != trees_.end()) << "unknown tree variable " << name;
  return it->second;
}

Tree* TreeStore::GetMutable(const std::string& name) {
  auto it = trees_.find(name);
  XMLUP_CHECK_STREAM(it != trees_.end()) << "unknown tree variable " << name;
  return &it->second;
}

TreeStore TreeStore::Clone() const {
  TreeStore copy(symbols_);
  for (const auto& [name, tree] : trees_) {
    copy.Put(name, CopyTree(tree));
  }
  return copy;
}

Result<ExecutionTrace> Execute(const Program& program, TreeStore* store) {
  ExecutionTrace trace;
  // statement index -> index into trace.reads, for CSE aliases.
  std::vector<size_t> read_index(program.size(), SIZE_MAX);

  for (size_t i = 0; i < program.size(); ++i) {
    const Statement& s = program.statements()[i];
    if (!store->Has(s.target_var) && !s.alias_of.has_value()) {
      return Status::NotFound("tree variable '" + s.target_var +
                              "' not in store");
    }
    switch (s.kind) {
      case Statement::Kind::kRead: {
        ExecutionTrace::ReadRecord record;
        record.result_var = s.result_var;
        if (s.alias_of.has_value()) {
          const size_t source = read_index[*s.alias_of];
          if (source == SIZE_MAX) {
            return Status::InvalidArgument(
                "CSE alias refers to a non-read or later statement");
          }
          record.nodes = trace.reads[source].nodes;
          record.codes = trace.reads[source].codes;
        } else {
          const Tree& tree = store->Get(s.target_var);
          record.nodes = Evaluate(s.pattern, tree);
          for (NodeId n : record.nodes) {
            record.codes.push_back(CanonicalCode(tree, n));
          }
          std::sort(record.codes.begin(), record.codes.end());
        }
        read_index[i] = trace.reads.size();
        trace.reads.push_back(std::move(record));
        break;
      }
      case Statement::Kind::kInsert: {
        Tree* tree = store->GetMutable(s.target_var);
        const std::vector<NodeId> points = Evaluate(s.pattern, *tree);
        for (NodeId p : points) {
          tree->GraftCopy(p, *s.content, s.content->root());
        }
        break;
      }
      case Statement::Kind::kDelete: {
        if (s.pattern.output() == s.pattern.root()) {
          return Status::InvalidArgument(
              "delete statement selects the root of its tree");
        }
        Tree* tree = store->GetMutable(s.target_var);
        for (NodeId p : Evaluate(s.pattern, *tree)) {
          if (tree->alive(p)) tree->DeleteSubtree(p);
        }
        break;
      }
    }
  }
  return trace;
}

}  // namespace xmlup
