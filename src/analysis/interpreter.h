#ifndef XMLUP_ANALYSIS_INTERPRETER_H_
#define XMLUP_ANALYSIS_INTERPRETER_H_

#include <map>
#include <string>
#include <vector>

#include "analysis/program.h"
#include "common/result.h"
#include "xml/tree.h"

namespace xmlup {

/// A store of named trees the program operates on.
class TreeStore {
 public:
  explicit TreeStore(std::shared_ptr<SymbolTable> symbols)
      : symbols_(std::move(symbols)) {}

  /// Installs (or replaces) a variable. Trees are move-only; the store
  /// takes ownership.
  void Put(const std::string& name, Tree tree);

  bool Has(const std::string& name) const { return trees_.count(name) > 0; }
  const Tree& Get(const std::string& name) const;
  Tree* GetMutable(const std::string& name);

  const std::shared_ptr<SymbolTable>& symbols() const { return symbols_; }

  /// Deep copy of the entire store (for before/after comparisons).
  TreeStore Clone() const;

 private:
  std::shared_ptr<SymbolTable> symbols_;
  std::map<std::string, Tree> trees_;
};

/// The observable outcome of one program run. Read results are recorded
/// both by node id (reference semantics) and by canonical code (value
/// semantics); the optimizer's correctness tests compare the value view,
/// since reordering legitimately renumbers freshly inserted nodes.
struct ExecutionTrace {
  struct ReadRecord {
    std::string result_var;
    std::vector<NodeId> nodes;
    std::vector<std::string> codes;  // sorted canonical codes
  };
  std::vector<ReadRecord> reads;  // one per executed read, in program order
};

/// Executes `program` against `store` with mutating semantics. CSE-aliased
/// reads replay the aliased statement's recorded result.
Result<ExecutionTrace> Execute(const Program& program, TreeStore* store);

}  // namespace xmlup

#endif  // XMLUP_ANALYSIS_INTERPRETER_H_
