#include "analysis/lint.h"

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "analysis/optimizer.h"
#include "common/string_util.h"
#include "conflict/minimize.h"
#include "conflict/update_independence.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pattern/pattern_ops.h"

namespace xmlup {
namespace {

/// Lint observability: programs/statements seen, diagnostics emitted
/// (total and per rule), and the Unknown-verdict share the truncated-
/// verdict pass surfaces (EXPERIMENTS E16 reports it).
struct LintMetrics {
  obs::Counter& programs;
  obs::Counter& statements;
  obs::Counter& diagnostics;
  obs::Counter& unknown_verdicts;
  std::vector<obs::Counter*> per_rule;  // indexed like AllLintRules()

  static const LintMetrics& Get() {
    static const LintMetrics* const metrics = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
      auto* m = new LintMetrics{
          reg.GetCounter("lint.programs"),
          reg.GetCounter("lint.statements"),
          reg.GetCounter("lint.diagnostics"),
          reg.GetCounter("lint.unknown_verdicts"),
          {},
      };
      for (LintRule rule : AllLintRules()) {
        std::string name = "lint.rule.";
        for (char c : GetLintRuleInfo(rule).id) {
          name += c == '-' ? '_' : c;
        }
        m->per_rule.push_back(&reg.GetCounter(name));
      }
      return m;
    }();
    return *metrics;
  }
};

bool IsUpdate(const Statement& s) {
  return s.kind == Statement::Kind::kInsert ||
         s.kind == Statement::Kind::kDelete;
}

std::optional<UpdateOp> ToUpdateOp(const Statement& s) {
  if (s.kind == Statement::Kind::kInsert) {
    if (s.content == nullptr) return std::nullopt;
    return UpdateOp::MakeInsert(s.pattern, s.content);
  }
  Result<UpdateOp> del = UpdateOp::MakeDelete(s.pattern);
  if (!del.ok()) return std::nullopt;
  return std::move(del).value();
}

/// Why two statements must stay ordered (the partitioner's edge labels).
enum class EdgeReason {
  kConflict,    // detector proved a read/update conflict
  kUnknown,     // truncated verdict — conservatively ordered
  kError,       // detector error — conservatively ordered
  kUpdatePair,  // update/update without a commutativity certificate
  kResultVar,   // write-after-write on one result variable
  kAlias,       // CSE alias must follow its source
  kMalformed,   // statement the detectors cannot model
};

struct DependenceEdge {
  size_t from;
  size_t to;
  EdgeReason reason;
};

uint64_t PairKey(size_t a, size_t b, size_t n) { return a * n + b; }

std::string StatementSummary(const Program& program, size_t index) {
  const Statement& s = program.statements()[index];
  switch (s.kind) {
    case Statement::Kind::kRead:
      return "read into '" + s.result_var + "'";
    case Statement::Kind::kInsert:
      return "insert on $" + s.target_var;
    case Statement::Kind::kDelete:
      return "delete on $" + s.target_var;
  }
  return "statement";
}

}  // namespace

std::string_view LintSeverityName(LintSeverity severity) {
  switch (severity) {
    case LintSeverity::kError:
      return "error";
    case LintSeverity::kWarning:
      return "warning";
    case LintSeverity::kInfo:
      return "info";
  }
  return "unknown";
}

const LintRuleInfo& GetLintRuleInfo(LintRule rule) {
  static const std::unordered_map<LintRule, LintRuleInfo>* const table = [] {
    auto* t = new std::unordered_map<LintRule, LintRuleInfo>{
        {LintRule::kMalformedUpdate,
         {"malformed-update",
          "Statement the detector stack cannot model (e.g. a delete "
          "selecting the root); conservatively dependent on everything.",
          LintSeverity::kError}},
        {LintRule::kDeadRead,
         {"dead-read",
          "Read whose result variable is overwritten before any use; "
          "reads are effect-free, so removal is sound.",
          LintSeverity::kWarning}},
        {LintRule::kRedundantRead,
         {"redundant-read",
          "Read identical to an earlier read with no conflicting update "
          "in between; can be aliased to the earlier result (CSE).",
          LintSeverity::kWarning}},
        {LintRule::kShadowedUpdate,
         {"shadowed-update",
          "Insert whose content is unconditionally deleted by a later "
          "delete with no intervening observer.",
          LintSeverity::kWarning}},
        {LintRule::kUpdateRace,
         {"non-commuting-update-race",
          "Update/update pair on one variable with no commutativity "
          "certificate: unsafe to reorder or parallelize.",
          LintSeverity::kWarning}},
        {LintRule::kDtdViolation,
         {"dtd-violation",
          "Insert that violates the supplied DTD every time it applies.",
          LintSeverity::kError}},
        {LintRule::kTruncatedVerdict,
         {"truncated-verdict",
          "Bounded search exhausted its budget; the pair is treated as "
          "conflicting (possibly conflicting, never silently dropped).",
          LintSeverity::kInfo}},
        {LintRule::kParallelPartition,
         {"parallel-partition",
          "Parallel-safety partitioner report: maximal independent "
          "batches and the achievable parallel width.",
          LintSeverity::kInfo}},
    };
    return t;
  }();
  auto it = table->find(rule);
  XMLUP_CHECK(it != table->end());
  return it->second;
}

const std::vector<LintRule>& AllLintRules() {
  static const std::vector<LintRule>* const rules = new std::vector<LintRule>{
      LintRule::kMalformedUpdate,   LintRule::kDeadRead,
      LintRule::kRedundantRead,     LintRule::kShadowedUpdate,
      LintRule::kUpdateRace,        LintRule::kDtdViolation,
      LintRule::kTruncatedVerdict,  LintRule::kParallelPartition,
  };
  return *rules;
}

Result<Program> ApplyLintFixIt(const Program& program,
                               const LintFixIt& fixit) {
  const auto& statements = program.statements();
  const size_t n = statements.size();
  switch (fixit.kind) {
    case LintFixIt::Kind::kRemoveStatement: {
      if (fixit.statement >= n) {
        return Status::InvalidArgument("fix-it statement out of range");
      }
      for (size_t j = 0; j < n; ++j) {
        if (statements[j].alias_of == fixit.statement) {
          return Status::InvalidArgument(
              "cannot remove a statement another read aliases");
        }
      }
      Program out;
      for (size_t j = 0; j < n; ++j) {
        if (j == fixit.statement) continue;
        const Statement& s = statements[j];
        size_t index = 0;
        switch (s.kind) {
          case Statement::Kind::kRead:
            index = out.AddRead(s.result_var, s.target_var, s.pattern);
            break;
          case Statement::Kind::kInsert:
            index = out.AddInsert(s.target_var, s.pattern, s.content);
            break;
          case Statement::Kind::kDelete:
            index = out.AddDelete(s.target_var, s.pattern);
            break;
        }
        if (s.alias_of.has_value()) {
          // Indices past the removed statement shift down by one.
          const size_t source = *s.alias_of;
          out.mutable_statements()[index].alias_of =
              source > fixit.statement ? source - 1 : source;
        }
      }
      return out;
    }
    case LintFixIt::Kind::kAliasRead: {
      if (fixit.statement >= n || fixit.alias_of >= fixit.statement) {
        return Status::InvalidArgument("fix-it alias indices invalid");
      }
      if (statements[fixit.statement].kind != Statement::Kind::kRead ||
          statements[fixit.alias_of].kind != Statement::Kind::kRead) {
        return Status::InvalidArgument("alias fix-it must join two reads");
      }
      Program out = program;
      out.mutable_statements()[fixit.statement].alias_of = fixit.alias_of;
      return out;
    }
    case LintFixIt::Kind::kReorder: {
      if (fixit.schedule.size() != n) {
        return Status::InvalidArgument("fix-it schedule size mismatch");
      }
      std::vector<bool> seen(n, false);
      for (size_t index : fixit.schedule) {
        if (index >= n || seen[index]) {
          return Status::InvalidArgument("fix-it schedule not a permutation");
        }
        seen[index] = true;
      }
      for (const Statement& s : statements) {
        if (s.alias_of.has_value()) {
          return Status::InvalidArgument(
              "cannot reorder a program with CSE annotations");
        }
      }
      return Optimizer::Reorder(program, fixit.schedule);
    }
  }
  return Status::InvalidArgument("unknown fix-it kind");
}

Linter::Linter(LintOptions options)
    : options_([&options] {
        // Value-level safety of the lint fix-its (the execution oracle
        // compares canonical subtree codes) requires tree-conflict
        // semantics: a node-semantics NoConflict still allows the update
        // to rewrite content *below* a read's result nodes. Forced here,
        // whatever the caller put in options.batch.detector.semantics.
        options.batch.detector.semantics = ConflictSemantics::kTree;
        // A linter given a schema treats documents as conformant to it:
        // the same Dtd that drives the dtd-violation pass also feeds the
        // detector's Stage 0 type filter, so schema-disjoint statement
        // pairs prune before any automata work (callers that pre-set
        // detector.dtd — the Engine facade — keep their wiring).
        if (options.dtd != nullptr && options.batch.detector.dtd == nullptr) {
          options.batch.detector.dtd = options.dtd;
        }
        return options;
      }()),
      batch_(options_.batch) {}

LintResult Linter::Lint(const Program& program) const {
  obs::TraceSpan lint_span("Lint");
  const LintMetrics& metrics = LintMetrics::Get();
  metrics.programs.Increment();

  LintResult result;
  const auto& statements = program.statements();
  const size_t n = statements.size();
  result.stats.statements = n;
  metrics.statements.Increment(n);

  // --- Statement models -------------------------------------------------
  // Bound UpdateOps for every well-formed update; `malformed` marks the
  // rest (they stay conservatively dependent on everything on their
  // variable and are reported by the malformed-update pass).
  const std::shared_ptr<PatternStore>& store = batch_.pattern_store();
  std::vector<std::optional<UpdateOp>> ops(n);
  std::vector<bool> malformed(n, false);
  for (size_t i = 0; i < n; ++i) {
    if (!IsUpdate(statements[i])) continue;
    std::optional<UpdateOp> op = ToUpdateOp(statements[i]);
    if (!op.has_value()) {
      malformed[i] = true;
    } else {
      ops[i] = op->Bind(store);
    }
  }

  // --- Read/update pair matrix via the batch engine ---------------------
  // Mirrors DependenceAnalyzer::Analyze: every same-variable read/update
  // pair enters the engine once, on interned refs.
  std::unordered_map<uint64_t, SharedConflictResult> report_of;
  {
    obs::TraceSpan matrix_span("Lint.matrix");
    std::vector<PatternRef> reads;
    std::vector<UpdateOp> updates;
    std::unordered_map<size_t, size_t> read_slot;
    std::unordered_map<size_t, size_t> update_slot;
    std::vector<ReadUpdatePair> pairs;
    std::vector<uint64_t> pair_keys;  // (read stmt, update stmt) per pair
    auto read_index_of = [&](size_t s) {
      auto [it, inserted] = read_slot.emplace(s, reads.size());
      if (inserted) reads.push_back(store->Intern(statements[s].pattern));
      return it->second;
    };
    auto update_index_of = [&](size_t s) {
      auto [it, inserted] = update_slot.emplace(s, updates.size());
      if (inserted) updates.push_back(*ops[s]);
      return it->second;
    };
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        const Statement& a = statements[i];
        const Statement& b = statements[j];
        if (a.target_var != b.target_var) continue;
        if (IsUpdate(a) == IsUpdate(b)) continue;
        const size_t read_stmt = IsUpdate(a) ? j : i;
        const size_t update_stmt = IsUpdate(a) ? i : j;
        if (malformed[update_stmt]) continue;
        pairs.push_back({read_index_of(read_stmt),
                         update_index_of(update_stmt)});
        pair_keys.push_back(PairKey(read_stmt, update_stmt, n));
      }
    }
    const std::vector<SharedConflictResult> verdicts =
        batch_.DetectPairs(reads, updates, pairs);
    for (size_t k = 0; k < pairs.size(); ++k) {
      report_of.emplace(pair_keys[k], verdicts[k]);
    }
    result.stats.pairs_checked = pairs.size();
  }
  /// Verdict lookup; Unknown for anything the engine was not asked about.
  auto verdict_of = [&](size_t read_stmt,
                        size_t update_stmt) -> ConflictVerdict {
    auto it = report_of.find(PairKey(read_stmt, update_stmt, n));
    if (it == report_of.end() || !it->second->ok()) {
      return ConflictVerdict::kUnknown;
    }
    return (*it->second)->verdict;
  };

  // --- Update/update commutativity certificates --------------------------
  struct CertResult {
    bool certified = false;
    std::string detail;
  };
  std::unordered_map<uint64_t, CertResult> cert_of;
  {
    obs::TraceSpan cert_span("Lint.certificates");
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        if (!IsUpdate(statements[i]) || !IsUpdate(statements[j])) continue;
        if (statements[i].target_var != statements[j].target_var) continue;
        if (malformed[i] || malformed[j]) continue;
        ++result.stats.update_pairs_checked;
        Result<IndependenceReport> cert = CertifyUpdatesCommute(
            *ops[i], *ops[j], options_.batch.detector);
        CertResult entry;
        if (cert.ok()) {
          entry.certified =
              cert->certificate == CommutativityCertificate::kCertified;
          entry.detail = cert->detail;
        } else {
          entry.detail = cert.status().ToString();
        }
        cert_of.emplace(PairKey(i, j, n), std::move(entry));
      }
    }
  }

  // --- Conservative dependence edges -------------------------------------
  // The partitioner's ground truth. Includes everything the dependence
  // analyzer orders *plus* write-after-write edges on result variables
  // (two reads into one variable must not swap — the dependence analyzer
  // ignores result variables because it only tracks tree state).
  std::vector<DependenceEdge> edges;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const Statement& a = statements[i];
      const Statement& b = statements[j];
      if (b.alias_of.has_value() && *b.alias_of == i) {
        edges.push_back({i, j, EdgeReason::kAlias});
        continue;
      }
      if (a.kind == Statement::Kind::kRead &&
          b.kind == Statement::Kind::kRead &&
          !a.result_var.empty() && a.result_var == b.result_var) {
        edges.push_back({i, j, EdgeReason::kResultVar});
        continue;
      }
      if (a.target_var != b.target_var) continue;
      if (!IsUpdate(a) && !IsUpdate(b)) continue;  // read/read
      if (malformed[i] || malformed[j]) {
        edges.push_back({i, j, EdgeReason::kMalformed});
        continue;
      }
      if (IsUpdate(a) && IsUpdate(b)) {
        const auto it = cert_of.find(PairKey(i, j, n));
        if (it == cert_of.end() || !it->second.certified) {
          edges.push_back({i, j, EdgeReason::kUpdatePair});
        }
        continue;
      }
      const size_t read_stmt = IsUpdate(a) ? j : i;
      const size_t update_stmt = IsUpdate(a) ? i : j;
      const auto it = report_of.find(PairKey(read_stmt, update_stmt, n));
      if (it == report_of.end() || !it->second->ok()) {
        edges.push_back({i, j, EdgeReason::kError});
        continue;
      }
      switch ((*it->second)->verdict) {
        case ConflictVerdict::kConflict:
          edges.push_back({i, j, EdgeReason::kConflict});
          break;
        case ConflictVerdict::kUnknown:
          // The soundness invariant: truncation is a dependence.
          edges.push_back({i, j, EdgeReason::kUnknown});
          break;
        case ConflictVerdict::kNoConflict:
          break;
      }
    }
  }
  result.stats.dependence_edges = edges.size();

  auto emit = [&](LintRule rule, std::vector<size_t> stmts,
                  std::string message, std::optional<LintFixIt> fixit) {
    Diagnostic d;
    d.rule = rule;
    d.severity = GetLintRuleInfo(rule).severity;
    d.statements = std::move(stmts);
    d.message = std::move(message);
    d.fixit = std::move(fixit);
    metrics.diagnostics.Increment();
    for (size_t r = 0; r < AllLintRules().size(); ++r) {
      if (AllLintRules()[r] == rule) {
        metrics.per_rule[r]->Increment();
        break;
      }
    }
    result.diagnostics.push_back(std::move(d));
  };

  // --- Pass: malformed-update -------------------------------------------
  {
    obs::TraceSpan span("Lint.malformed_update");
    for (size_t i = 0; i < n; ++i) {
      if (!malformed[i]) continue;
      const char* why = statements[i].kind == Statement::Kind::kInsert &&
                                statements[i].content == nullptr
                            ? "insert has no content tree"
                            : "delete pattern selects the root of its tree";
      emit(LintRule::kMalformedUpdate, {i},
           std::string(why) + "; the statement cannot execute", std::nullopt);
    }
  }

  // --- Pass: dead-read ---------------------------------------------------
  // A read is dead when a later read overwrites its result variable:
  // straight-line programs have no other use of a result variable, reads
  // never mutate tree state, and nothing may alias the statement. Needs no
  // conflict verdicts at all, so truncation cannot make it unsound.
  {
    obs::TraceSpan span("Lint.dead_read");
    std::unordered_set<size_t> alias_targets;
    for (const Statement& s : statements) {
      if (s.alias_of.has_value()) alias_targets.insert(*s.alias_of);
    }
    for (size_t i = 0; i < n; ++i) {
      if (statements[i].kind != Statement::Kind::kRead) continue;
      if (statements[i].result_var.empty()) continue;
      if (alias_targets.count(i) != 0) continue;
      for (size_t j = i + 1; j < n; ++j) {
        if (statements[j].kind != Statement::Kind::kRead) continue;
        if (statements[j].result_var != statements[i].result_var) continue;
        LintFixIt fixit;
        fixit.kind = LintFixIt::Kind::kRemoveStatement;
        fixit.statement = i;
        fixit.description = "remove statement " + std::to_string(i);
        emit(LintRule::kDeadRead, {i, j},
             "result '" + statements[i].result_var +
                 "' is overwritten by statement " + std::to_string(j) +
                 " before any use",
             std::move(fixit));
        break;
      }
    }
  }

  // --- Pass: redundant-read (CSE via the Optimizer) ----------------------
  // The Optimizer shares this linter's PatternStore and detector options,
  // so its dependence edges agree verdict-for-verdict with ours; a read it
  // aliases is exactly a read with no conflicting (or Unknown) update in
  // between.
  {
    obs::TraceSpan span("Lint.redundant_read");
    BatchDetectorOptions optimizer_options = options_.batch;
    optimizer_options.store = store;
    const Optimizer optimizer(optimizer_options);
    const OptimizeResult optimized = optimizer.EliminateCommonReads(program);
    for (size_t j = 0; j < n; ++j) {
      if (statements[j].alias_of.has_value()) continue;  // already aliased
      const std::optional<size_t>& alias =
          optimized.program.statements()[j].alias_of;
      if (!alias.has_value()) continue;
      LintFixIt fixit;
      fixit.kind = LintFixIt::Kind::kAliasRead;
      fixit.statement = j;
      fixit.alias_of = *alias;
      fixit.description = "alias statement " + std::to_string(j) +
                          " to the result of statement " +
                          std::to_string(*alias);
      emit(LintRule::kRedundantRead, {j, *alias},
           "read repeats statement " + std::to_string(*alias) +
               " with no conflicting update in between (CSE candidate)",
           std::move(fixit));
    }
  }

  // --- Pass: shadowed-update ---------------------------------------------
  // insert(p, X) at i is shadowed by delete(q) at j > i when:
  //  (1) q output-covers p extended with a child labeled like X's root
  //      (output-preserving homomorphism q → p'): every inserted subtree
  //      root is selected by q on every tree, hence deleted whole;
  //  (2) no non-output node of q is a wildcard or carries a label of X:
  //      the insert cannot enable new q-matches on pre-existing nodes, so
  //      q deletes exactly the same pre-existing nodes either way;
  //  (3) no update on the variable lies between i and j, and every read
  //      between them is provably (tree-semantics) unaffected by the
  //      insert — an Unknown verdict blocks the diagnostic.
  {
    obs::TraceSpan span("Lint.shadowed_update");
    for (size_t i = 0; i < n; ++i) {
      if (statements[i].kind != Statement::Kind::kInsert || malformed[i]) {
        continue;
      }
      const Tree& content = *statements[i].content;
      std::unordered_set<Label> content_labels;
      for (NodeId node : content.PreOrder()) {
        content_labels.insert(content.label(node));
      }
      // p' = p with a fresh output child for the grafted content root.
      Pattern extended = statements[i].pattern;
      const PatternNodeId grafted = extended.AddChild(
          extended.output(), content.label(content.root()), Axis::kChild);
      extended.SetOutput(grafted);
      bool blocked = false;
      for (size_t j = i + 1; j < n && !blocked; ++j) {
        if (statements[j].target_var != statements[i].target_var) continue;
        if (statements[j].kind == Statement::Kind::kRead) {
          // Condition (3): the read must be provably unaffected; any
          // conflicting, Unknown, or unresolved verdict blocks every later
          // delete as well.
          if (verdict_of(j, i) != ConflictVerdict::kNoConflict) {
            blocked = true;
          }
          continue;
        }
        if (statements[j].kind != Statement::Kind::kDelete || malformed[j]) {
          blocked = true;  // another update intervenes before any shadow
          continue;
        }
        const Pattern& q = statements[j].pattern;
        bool labels_ok = true;
        for (PatternNodeId qn : q.PreOrder()) {
          if (qn == q.output()) continue;
          if (q.is_wildcard(qn) || content_labels.count(q.label(qn)) != 0) {
            labels_ok = false;
            break;
          }
        }
        // Condition (1): hom q → p' implies [[p']](t) ⊆ [[q]](t) for all
        // t (minimize.h convention), so every grafted content root sits
        // at a q-selected node and is deleted whole.
        if (labels_ok && HasOutputPreservingHomomorphism(q, extended)) {
          LintFixIt fixit;
          fixit.kind = LintFixIt::Kind::kRemoveStatement;
          fixit.statement = i;
          fixit.description = "remove statement " + std::to_string(i);
          emit(LintRule::kShadowedUpdate, {i, j},
               "inserted content is unconditionally deleted by statement " +
                   std::to_string(j) + " with no intervening observer",
               std::move(fixit));
        }
        // Whether or not it shadowed, this delete mutates the variable:
        // anything after it is a different story.
        blocked = true;
      }
    }
  }

  // --- Pass: non-commuting-update-race -----------------------------------
  {
    obs::TraceSpan span("Lint.update_race");
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        const auto it = cert_of.find(PairKey(i, j, n));
        if (it == cert_of.end() || it->second.certified) continue;
        std::string message =
            "updates may not commute; unsafe to reorder or parallelize";
        if (!it->second.detail.empty()) {
          message += " (" + it->second.detail + ")";
        }
        emit(LintRule::kUpdateRace, {i, j}, std::move(message), std::nullopt);
      }
    }
  }

  // --- Pass: dtd-violation -----------------------------------------------
  // An insert always violates the schema when (a) its content contains a
  // forbidden parent/child edge, (b) a content node misses a required
  // child (grafted copies get exactly X's children), or (c) the attach
  // label is concrete and may not have X's root as a child.
  if (options_.dtd != nullptr) {
    obs::TraceSpan span("Lint.dtd_violation");
    const Dtd& dtd = *options_.dtd;
    for (size_t i = 0; i < n; ++i) {
      if (statements[i].kind != Statement::Kind::kInsert || malformed[i]) {
        continue;
      }
      const Tree& content = *statements[i].content;
      std::string why;
      for (NodeId node : content.PreOrder()) {
        for (NodeId child = content.first_child(node);
             child != kNullNode && why.empty();
             child = content.next_sibling(child)) {
          if (!dtd.ChildAllowed(content.label(node), content.label(child))) {
            why = "content edge " + content.LabelName(node) + " -> " +
                  content.LabelName(child) + " is not allowed by the DTD";
          }
        }
        if (!why.empty()) break;
        for (Label required : dtd.RequiredChildren(content.label(node))) {
          bool found = false;
          for (NodeId child = content.first_child(node); child != kNullNode;
               child = content.next_sibling(child)) {
            if (content.label(child) == required) {
              found = true;
              break;
            }
          }
          if (!found) {
            why = "content node " + content.LabelName(node) +
                  " lacks the required child " +
                  dtd.symbols()->Name(required);
            break;
          }
        }
        if (!why.empty()) break;
      }
      const Pattern& p = statements[i].pattern;
      if (why.empty() && !p.is_wildcard(p.output()) &&
          !dtd.ChildAllowed(p.label(p.output()),
                            content.label(content.root()))) {
        why = "label " + content.LabelName(content.root()) +
              " is not allowed under attach label " + p.LabelName(p.output());
      }
      if (!why.empty()) {
        emit(LintRule::kDtdViolation, {i},
             "every application violates the DTD: " + why, std::nullopt);
      }
    }
  }

  // --- Pass: truncated-verdict -------------------------------------------
  // Surfaces every Unknown pair verdict: the searches above treated it as
  // a dependence (no removal/reorder was derived from it), and the author
  // learns which budget to raise.
  {
    obs::TraceSpan span("Lint.truncated_verdict");
    for (const DependenceEdge& edge : edges) {
      if (edge.reason != EdgeReason::kUnknown) continue;
      ++result.stats.unknown_verdicts;
      metrics.unknown_verdicts.Increment();
      emit(LintRule::kTruncatedVerdict, {edge.from, edge.to},
           "bounded search exhausted its budget for the pair (" +
               StatementSummary(program, edge.from) + ", " +
               StatementSummary(program, edge.to) +
               "); treated as possibly conflicting",
           std::nullopt);
    }
  }

  // --- Pass: parallel-safety partitioner ---------------------------------
  // Wavefront levels of the conservative DAG: batch k holds statements
  // whose predecessors all sit in earlier batches. Every edge (conflicts,
  // Unknowns, WAW, aliases) spans levels, so statements sharing a batch
  // are pairwise independent.
  if (options_.partition && n > 0) {
    obs::TraceSpan span("Lint.partition");
    std::vector<size_t> level(n, 0);
    for (const DependenceEdge& edge : edges) {
      // Edges go from lower to higher index, so one forward sweep settles
      // all longest paths.
      level[edge.to] = std::max(level[edge.to], level[edge.from] + 1);
    }
    const size_t num_levels = 1 + *std::max_element(level.begin(), level.end());
    result.partition.batches.assign(num_levels, {});
    for (size_t i = 0; i < n; ++i) {
      result.partition.batches[level[i]].push_back(i);
    }
    for (const auto& batch : result.partition.batches) {
      result.partition.width = std::max(result.partition.width, batch.size());
    }
    std::vector<size_t> schedule;
    for (const auto& batch : result.partition.batches) {
      schedule.insert(schedule.end(), batch.begin(), batch.end());
    }
    bool has_alias = false;
    for (const Statement& s : statements) {
      has_alias = has_alias || s.alias_of.has_value();
    }
    const bool identity = [&] {
      for (size_t i = 0; i < n; ++i) {
        if (schedule[i] != i) return false;
      }
      return true;
    }();
    std::optional<LintFixIt> fixit;
    if (!identity && !has_alias) {
      LintFixIt reorder;
      reorder.kind = LintFixIt::Kind::kReorder;
      reorder.schedule = schedule;
      reorder.description = "execute statements in batch order";
      fixit = std::move(reorder);
    }
    emit(LintRule::kParallelPartition, {},
         std::to_string(n) + " statements partition into " +
             std::to_string(num_levels) + " independent batches (parallel "
             "width " + std::to_string(result.partition.width) + ")",
         std::move(fixit));
  }

  // Deterministic presentation order: by primary statement, then emission
  // order (passes run in a fixed sequence).
  std::stable_sort(result.diagnostics.begin(), result.diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     const size_t pa = a.statements.empty() ? SIZE_MAX
                                                            : a.statements[0];
                     const size_t pb = b.statements.empty() ? SIZE_MAX
                                                            : b.statements[0];
                     return pa < pb;
                   });
  result.stats.batch = batch_.stats();
  return result;
}

// --- Renderers ------------------------------------------------------------

namespace {

int LineOf(size_t statement, const LintRenderOptions& options) {
  if (options.lines != nullptr && statement < options.lines->size()) {
    return (*options.lines)[statement];
  }
  return static_cast<int>(statement) + 1;
}

std::string FixItKindName(LintFixIt::Kind kind) {
  switch (kind) {
    case LintFixIt::Kind::kRemoveStatement:
      return "remove-statement";
    case LintFixIt::Kind::kAliasRead:
      return "alias-read";
    case LintFixIt::Kind::kReorder:
      return "reorder";
  }
  return "unknown";
}

std::string JsonIndexArray(const std::vector<size_t>& values) {
  std::string out = "[";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(values[i]);
  }
  return out + "]";
}

std::string JsonFixIt(const LintFixIt& fixit) {
  std::string out = "{\"kind\":\"" + FixItKindName(fixit.kind) + "\"";
  switch (fixit.kind) {
    case LintFixIt::Kind::kRemoveStatement:
      out += ",\"statement\":" + std::to_string(fixit.statement);
      break;
    case LintFixIt::Kind::kAliasRead:
      out += ",\"statement\":" + std::to_string(fixit.statement) +
             ",\"alias_of\":" + std::to_string(fixit.alias_of);
      break;
    case LintFixIt::Kind::kReorder:
      out += ",\"schedule\":" + JsonIndexArray(fixit.schedule);
      break;
  }
  out += ",\"description\":\"" + JsonEscape(fixit.description) + "\"}";
  return out;
}

}  // namespace

std::string RenderLintText(const Program& program, const LintResult& result,
                           const LintRenderOptions& options) {
  std::string out;
  size_t errors = 0;
  size_t warnings = 0;
  size_t infos = 0;
  for (const Diagnostic& d : result.diagnostics) {
    switch (d.severity) {
      case LintSeverity::kError:
        ++errors;
        break;
      case LintSeverity::kWarning:
        ++warnings;
        break;
      case LintSeverity::kInfo:
        ++infos;
        break;
    }
    const int line =
        d.statements.empty() ? 1 : LineOf(d.statements[0], options);
    out += options.artifact_uri + ":" + std::to_string(line) + ": " +
           std::string(LintSeverityName(d.severity)) + "[" +
           std::string(GetLintRuleInfo(d.rule).id) + "]: " + d.message + "\n";
    if (d.fixit.has_value()) {
      out += "    fix-it: " + d.fixit->description + "\n";
    }
  }
  out += "summary: " + std::to_string(program.size()) + " statements, " +
         std::to_string(result.diagnostics.size()) + " diagnostics (" +
         std::to_string(errors) + " errors, " + std::to_string(warnings) +
         " warnings, " + std::to_string(infos) + " info), parallel width " +
         std::to_string(result.partition.width) + " across " +
         std::to_string(result.partition.batches.size()) + " batches\n";
  return out;
}

std::string RenderLintJson(const Program& program, const LintResult& result,
                           const LintRenderOptions& options) {
  std::string out = "{\"artifact\":\"" + JsonEscape(options.artifact_uri) +
                    "\",\"statements\":" + std::to_string(program.size()) +
                    ",\"diagnostics\":[";
  for (size_t i = 0; i < result.diagnostics.size(); ++i) {
    const Diagnostic& d = result.diagnostics[i];
    if (i > 0) out += ",";
    out += "{\"rule\":\"" + std::string(GetLintRuleInfo(d.rule).id) +
           "\",\"severity\":\"" + std::string(LintSeverityName(d.severity)) +
           "\",\"statements\":" + JsonIndexArray(d.statements);
    if (!d.statements.empty()) {
      out += ",\"line\":" + std::to_string(LineOf(d.statements[0], options));
    }
    out += ",\"message\":\"" + JsonEscape(d.message) + "\"";
    if (d.fixit.has_value()) out += ",\"fixit\":" + JsonFixIt(*d.fixit);
    out += "}";
  }
  out += "],\"partition\":{\"width\":" +
         std::to_string(result.partition.width) + ",\"batches\":[";
  for (size_t i = 0; i < result.partition.batches.size(); ++i) {
    if (i > 0) out += ",";
    out += JsonIndexArray(result.partition.batches[i]);
  }
  out += "]},\"stats\":{\"pairs_checked\":" +
         std::to_string(result.stats.pairs_checked) +
         ",\"unknown_verdicts\":" +
         std::to_string(result.stats.unknown_verdicts) +
         ",\"update_pairs_checked\":" +
         std::to_string(result.stats.update_pairs_checked) +
         ",\"dependence_edges\":" +
         std::to_string(result.stats.dependence_edges) + "}}";
  return out;
}

std::string RenderLintSarif(const Program& program, const LintResult& result,
                            const LintRenderOptions& options) {
  (void)program;
  std::string out =
      "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\","
      "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{"
      "\"name\":\"xmlup_lint\",\"informationUri\":"
      "\"https://github.com/xmlup/xmlup\",\"rules\":[";
  const std::vector<LintRule>& rules = AllLintRules();
  for (size_t i = 0; i < rules.size(); ++i) {
    const LintRuleInfo& info = GetLintRuleInfo(rules[i]);
    if (i > 0) out += ",";
    out += "{\"id\":\"" + std::string(info.id) +
           "\",\"shortDescription\":{\"text\":\"" +
           JsonEscape(info.description) + "\"}}";
  }
  out += "]}},\"results\":[";
  for (size_t i = 0; i < result.diagnostics.size(); ++i) {
    const Diagnostic& d = result.diagnostics[i];
    size_t rule_index = 0;
    for (size_t r = 0; r < rules.size(); ++r) {
      if (rules[r] == d.rule) rule_index = r;
    }
    const char* level = d.severity == LintSeverity::kError     ? "error"
                        : d.severity == LintSeverity::kWarning ? "warning"
                                                               : "note";
    if (i > 0) out += ",";
    out += "{\"ruleId\":\"" + std::string(GetLintRuleInfo(d.rule).id) +
           "\",\"ruleIndex\":" + std::to_string(rule_index) +
           ",\"level\":\"" + level + "\",\"message\":{\"text\":\"" +
           JsonEscape(d.message) + "\"},\"locations\":[";
    const size_t primary = d.statements.empty() ? 0 : d.statements[0];
    out += "{\"physicalLocation\":{\"artifactLocation\":{\"uri\":\"" +
           JsonEscape(options.artifact_uri) +
           "\"},\"region\":{\"startLine\":" +
           std::to_string(d.statements.empty() ? 1 : LineOf(primary, options)) +
           "}}}]";
    if (d.statements.size() > 1) {
      out += ",\"relatedLocations\":[";
      for (size_t s = 1; s < d.statements.size(); ++s) {
        if (s > 1) out += ",";
        out += "{\"physicalLocation\":{\"artifactLocation\":{\"uri\":\"" +
               JsonEscape(options.artifact_uri) +
               "\"},\"region\":{\"startLine\":" +
               std::to_string(LineOf(d.statements[s], options)) + "}}}";
      }
      out += "]";
    }
    if (d.fixit.has_value()) {
      out += ",\"properties\":{\"fixit\":" + JsonFixIt(*d.fixit) + "}";
    }
    out += "}";
  }
  out += "]}]}";
  return out;
}

}  // namespace xmlup
