#ifndef XMLUP_ANALYSIS_LINT_H_
#define XMLUP_ANALYSIS_LINT_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/program.h"
#include "common/result.h"
#include "conflict/batch_detector.h"
#include "dtd/dtd.h"

namespace xmlup {

/// Static lint engine over straight-line update programs — the paper's §1
/// application made actionable: instead of a boolean conflict oracle, a
/// multi-pass analyzer that turns the detector stack's verdicts (batch
/// engine, dependence edges, commutativity certificates, containment, DTD
/// checks) into structured diagnostics a program author (or a compiler
/// frontend) can act on, each with an optional machine-applicable fix-it.
///
/// Soundness policy, enforced by every pass: an `Unknown` (bounded-search
/// truncation) or error verdict is always treated as a dependence/conflict.
/// No removal or reorder fix-it is ever derived from an Unknown verdict;
/// instead the pair is surfaced by the `truncated-verdict` rule so budget
/// exhaustion is visible, never silently dropped.

enum class LintSeverity {
  kError,    // the program is wrong whenever the statement executes
  kWarning,  // sound transformation opportunity or parallelism hazard
  kInfo,     // advisory: truncation notices, partition report
};

std::string_view LintSeverityName(LintSeverity severity);

/// Stable rule identifiers (also the SARIF rule ids).
enum class LintRule {
  /// A statement the detector stack cannot model (e.g. a delete selecting
  /// the root, an insert without content). Error; blocks no other pass but
  /// is conservatively dependent on everything on its variable.
  kMalformedUpdate,
  /// A read whose result variable is overwritten by a later read before
  /// any use; reads are effect-free, so removal is unconditionally sound.
  kDeadRead,
  /// A read identical to an earlier read with no conflicting update in
  /// between (the Optimizer's CSE condition); fix-it aliases it.
  kRedundantRead,
  /// An insert whose content is unconditionally deleted by a later delete
  /// with no intervening observer (containment-based); fix-it removes it.
  kShadowedUpdate,
  /// An update/update pair on one variable with no commutativity
  /// certificate: unsafe to reorder or parallelize.
  kUpdateRace,
  /// An insert that violates the supplied DTD every time it applies.
  kDtdViolation,
  /// A pair whose verdict is Unknown because the bounded search ran out of
  /// budget: treated as conflicting everywhere, surfaced here.
  kTruncatedVerdict,
  /// The parallel-safety partitioner's report: maximal independent batches
  /// and the achievable width; fix-it is the batched reorder.
  kParallelPartition,
};

struct LintRuleInfo {
  std::string_view id;           // kebab-case stable id
  std::string_view description;  // one-line SARIF shortDescription
  LintSeverity severity;
};

const LintRuleInfo& GetLintRuleInfo(LintRule rule);

/// All rules in a fixed order (the SARIF `rules` array; `ruleIndex` fields
/// index into this).
const std::vector<LintRule>& AllLintRules();

/// A machine-applicable program transformation attached to a diagnostic.
/// Every fix-it emitted by the linter preserves observable semantics
/// (final tree values plus final result-variable values) — validated by
/// the randomized execution oracle in tests/lint_oracle_test.cc.
struct LintFixIt {
  enum class Kind {
    kRemoveStatement,  // delete `statement` from the program
    kAliasRead,        // set statement `statement`'s alias_of = `alias_of`
    kReorder,          // execute in `schedule` order (a permutation)
  };

  Kind kind = Kind::kRemoveStatement;
  size_t statement = 0;
  size_t alias_of = 0;           // kAliasRead only
  std::vector<size_t> schedule;  // kReorder only
  std::string description;
};

/// Applies a fix-it to `program`, returning the transformed program.
/// Fails (never aborts) when the fix-it does not match the program — e.g.
/// removing a statement another statement aliases, or reordering a program
/// that already carries CSE annotations.
Result<Program> ApplyLintFixIt(const Program& program, const LintFixIt& fixit);

struct Diagnostic {
  LintRule rule = LintRule::kMalformedUpdate;
  LintSeverity severity = LintSeverity::kWarning;
  /// Statement indices; the first is the primary location.
  std::vector<size_t> statements;
  std::string message;
  std::optional<LintFixIt> fixit;
};

/// Output of the parallel-safety partitioner: statements grouped into
/// batches such that (a) batch order is a topological order of the
/// conservative dependence DAG and (b) statements within one batch are
/// pairwise independent (no edge — Unknown verdicts count as edges), so
/// each batch may run with one thread per statement.
struct ParallelPartition {
  std::vector<std::vector<size_t>> batches;
  /// max batch size — the achievable parallel width.
  size_t width = 0;
};

struct LintStats {
  size_t statements = 0;
  /// Read/update pairs routed through the batch conflict-matrix engine.
  size_t pairs_checked = 0;
  /// Pairs among them whose verdict was Unknown (truncated search).
  size_t unknown_verdicts = 0;
  /// Update/update pairs submitted to the commutativity certifier.
  size_t update_pairs_checked = 0;
  /// Conservative dependence edges (conflicts, Unknowns, result-variable
  /// write-after-write, alias ordering).
  size_t dependence_edges = 0;
  /// Snapshot of the engine's cumulative cache counters after this run.
  BatchStats batch;
};

struct LintResult {
  std::vector<Diagnostic> diagnostics;
  ParallelPartition partition;
  LintStats stats;

  bool HasErrors() const {
    for (const Diagnostic& d : diagnostics) {
      if (d.severity == LintSeverity::kError) return true;
    }
    return false;
  }
};

struct LintOptions {
  /// Engine configuration: detector options (semantics, search budget),
  /// thread count, memoization, shared PatternStore.
  BatchDetectorOptions batch;
  /// When non-null, enables the dtd-violation pass. Not owned; must
  /// outlive the Linter and share the program's SymbolTable.
  const Dtd* dtd = nullptr;
  /// Run the parallel-safety partitioner (and emit its report).
  bool partition = true;
};

/// The analyzer. Reusable: the underlying batch engine's memo cache and
/// pattern store warm across Lint() calls, so linting many programs with
/// shared patterns pays for each distinct pair once. Diagnostics are
/// deterministic across runs and thread counts (the engine guarantees
/// verdict determinism; passes iterate in statement order).
class Linter {
 public:
  explicit Linter(LintOptions options = {});

  LintResult Lint(const Program& program) const;

 private:
  LintOptions options_;
  mutable BatchConflictDetector batch_;
};

/// --- Renderers ---

struct LintRenderOptions {
  /// Artifact URI reported in SARIF/text locations.
  std::string artifact_uri = "program.xup";
  /// Statement index → 1-based source line (from ParseProgram). When null,
  /// statement i is reported at line i+1 (its line in the listing).
  const std::vector<int>* lines = nullptr;
};

/// Compiler-style text: one `uri:line: severity[rule]: message` per
/// diagnostic plus a summary trailer.
std::string RenderLintText(const Program& program, const LintResult& result,
                           const LintRenderOptions& options = {});

/// Single JSON object with diagnostics, partition and stats.
std::string RenderLintJson(const Program& program, const LintResult& result,
                           const LintRenderOptions& options = {});

/// SARIF 2.1.0 (loads in standard viewers: VS Code SARIF viewer, GitHub
/// code scanning). Severity maps kError→error, kWarning→warning,
/// kInfo→note; fix-its ride in each result's property bag.
std::string RenderLintSarif(const Program& program, const LintResult& result,
                            const LintRenderOptions& options = {});

}  // namespace xmlup

#endif  // XMLUP_ANALYSIS_LINT_H_
