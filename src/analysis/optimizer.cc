#include "analysis/optimizer.h"

#include <algorithm>

#include "pattern/pattern_ops.h"

namespace xmlup {

Optimizer::Optimizer(DetectorOptions options) : analyzer_(options) {}

Optimizer::Optimizer(BatchDetectorOptions options) : analyzer_(options) {}

OptimizeResult Optimizer::EliminateCommonReads(const Program& program) const {
  OptimizeResult result;
  result.program = program;
  result.analysis = analyzer_.Analyze(program);

  // dependents[j] = set of earlier statements j depends on, as a flat list.
  auto depends = [&](size_t from, size_t to) {
    for (const Dependence& d : result.analysis.dependences) {
      if (d.from == from && d.to == to) return true;
    }
    return false;
  };

  auto& statements = result.program.mutable_statements();
  for (size_t j = 0; j < statements.size(); ++j) {
    Statement& later = statements[j];
    if (later.kind != Statement::Kind::kRead || later.alias_of.has_value()) {
      continue;
    }
    for (size_t i = 0; i < j; ++i) {
      const Statement& earlier = statements[i];
      if (earlier.kind != Statement::Kind::kRead) continue;
      if (earlier.alias_of.has_value()) continue;
      if (earlier.target_var != later.target_var) continue;
      if (!PatternsIdentical(earlier.pattern, later.pattern)) continue;
      // Safe iff no update between i and j conflicts with this read; the
      // dependence edges (i..j, j) capture exactly that.
      bool blocked = false;
      for (size_t k = i + 1; k < j && !blocked; ++k) {
        if (statements[k].kind == Statement::Kind::kRead) continue;
        blocked = depends(k, j);
      }
      if (blocked) continue;
      later.alias_of = i;
      ++result.reads_aliased;
      break;
    }
  }
  return result;
}

std::vector<size_t> Optimizer::HoistReadsSchedule(
    const Program& program) const {
  const DependenceAnalysisResult analysis = analyzer_.Analyze(program);
  const size_t n = program.size();
  std::vector<std::vector<size_t>> successors(n);
  std::vector<size_t> in_degree(n, 0);
  for (const Dependence& d : analysis.dependences) {
    successors[d.from].push_back(d.to);
    ++in_degree[d.to];
  }
  // Kahn's algorithm with a priority: ready reads first (hoisting), then
  // original order as a tiebreak for determinism.
  std::vector<size_t> schedule;
  std::vector<bool> done(n, false);
  while (schedule.size() < n) {
    size_t pick = SIZE_MAX;
    bool pick_is_read = false;
    for (size_t i = 0; i < n; ++i) {
      if (done[i] || in_degree[i] != 0) continue;
      const bool is_read =
          program.statements()[i].kind == Statement::Kind::kRead;
      if (pick == SIZE_MAX || (is_read && !pick_is_read)) {
        pick = i;
        pick_is_read = is_read;
      }
    }
    XMLUP_CHECK(pick != SIZE_MAX);
    done[pick] = true;
    schedule.push_back(pick);
    for (size_t succ : successors[pick]) --in_degree[succ];
  }
  return schedule;
}

Program Optimizer::Reorder(const Program& program,
                           const std::vector<size_t>& schedule) {
  XMLUP_CHECK(schedule.size() == program.size());
  Program reordered;
  for (size_t index : schedule) {
    const Statement& s = program.statements()[index];
    XMLUP_CHECK_STREAM(!s.alias_of.has_value())
        << "reorder CSE-annotated programs before aliasing, not after";
    switch (s.kind) {
      case Statement::Kind::kRead:
        reordered.AddRead(s.result_var, s.target_var, s.pattern);
        break;
      case Statement::Kind::kInsert:
        reordered.AddInsert(s.target_var, s.pattern, s.content);
        break;
      case Statement::Kind::kDelete:
        reordered.AddDelete(s.target_var, s.pattern);
        break;
    }
  }
  return reordered;
}

}  // namespace xmlup
