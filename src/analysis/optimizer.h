#ifndef XMLUP_ANALYSIS_OPTIMIZER_H_
#define XMLUP_ANALYSIS_OPTIMIZER_H_

#include <vector>

#include "analysis/dependence.h"
#include "analysis/program.h"

namespace xmlup {

/// Program optimizations enabled by conflict detection (§1):
///
///  - **Read CSE**: a read identical (same variable, same pattern) to an
///    earlier read, with no conflicting update on that variable in
///    between, is replaced by an alias to the earlier result — the paper's
///    `let u = y` example.
///  - **Scheduling**: the dependence DAG admits reorderings; we expose a
///    hoisted schedule (reads as early as their dependences allow), the
///    enabling transformation for batching tree traversals.
struct OptimizeResult {
  Program program;
  size_t reads_aliased = 0;
  DependenceAnalysisResult analysis;
};

class Optimizer {
 public:
  explicit Optimizer(DetectorOptions options = {});
  /// Full control over the underlying batch engine (thread count, memo
  /// cache, shared PatternStore) — used by the lint pass so optimizer and
  /// linter intern into one store.
  explicit Optimizer(BatchDetectorOptions options);

  /// Applies read CSE; the returned program is observably equivalent under
  /// value semantics (validated by the test suite by executing both).
  OptimizeResult EliminateCommonReads(const Program& program) const;

  /// A dependence-respecting schedule with reads hoisted as early as
  /// possible. Returns statement indices in new execution order.
  std::vector<size_t> HoistReadsSchedule(const Program& program) const;

  /// Reorders `program` according to `schedule` (a permutation).
  static Program Reorder(const Program& program,
                         const std::vector<size_t>& schedule);

 private:
  DependenceAnalyzer analyzer_;
};

}  // namespace xmlup

#endif  // XMLUP_ANALYSIS_OPTIMIZER_H_
