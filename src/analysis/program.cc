#include "analysis/program.h"

#include "pattern/pattern_writer.h"
#include "xml/xml_writer.h"

namespace xmlup {

size_t Program::AddRead(std::string result_var, std::string target_var,
                        Pattern pattern) {
  statements_.emplace_back(Statement::Kind::kRead, std::move(target_var),
                           std::move(result_var), std::move(pattern), nullptr);
  return statements_.size() - 1;
}

size_t Program::AddInsert(std::string target_var, Pattern pattern,
                          std::shared_ptr<const Tree> content) {
  statements_.emplace_back(Statement::Kind::kInsert, std::move(target_var),
                           "", std::move(pattern), std::move(content));
  return statements_.size() - 1;
}

size_t Program::AddDelete(std::string target_var, Pattern pattern) {
  statements_.emplace_back(Statement::Kind::kDelete, std::move(target_var),
                           "", std::move(pattern), nullptr);
  return statements_.size() - 1;
}

std::string Program::ToString() const {
  std::string out;
  for (size_t i = 0; i < statements_.size(); ++i) {
    const Statement& s = statements_[i];
    out += std::to_string(i) + ": ";
    switch (s.kind) {
      case Statement::Kind::kRead:
        if (s.alias_of.has_value()) {
          out += s.result_var + " = " +
                 statements_[*s.alias_of].result_var + "  (CSE)";
        } else {
          out += s.result_var + " = read $" + s.target_var + "/" +
                 ToXPathString(s.pattern);
        }
        break;
      case Statement::Kind::kInsert:
        out += "insert $" + s.target_var + "/" + ToXPathString(s.pattern) +
               ", " + WriteXml(*s.content);
        break;
      case Statement::Kind::kDelete:
        out += "delete $" + s.target_var + "/" + ToXPathString(s.pattern);
        break;
    }
    out += "\n";
  }
  return out;
}

}  // namespace xmlup
