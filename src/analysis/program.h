#ifndef XMLUP_ANALYSIS_PROGRAM_H_
#define XMLUP_ANALYSIS_PROGRAM_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "pattern/pattern.h"
#include "xml/tree.h"

namespace xmlup {

/// One statement of the paper's pidgin update language (§1):
///
///   y = read $x//A
///   insert $x/B, <C/>
///   delete $x//D
///
/// `target_var` names the tree variable the XPath is evaluated on;
/// `result_var` (reads only) names the variable receiving the node set.
struct Statement {
  enum class Kind { kRead, kInsert, kDelete };

  Statement(Kind kind_in, std::string target_var_in, std::string result_var_in,
            Pattern pattern_in, std::shared_ptr<const Tree> content_in)
      : kind(kind_in),
        target_var(std::move(target_var_in)),
        result_var(std::move(result_var_in)),
        pattern(std::move(pattern_in)),
        content(std::move(content_in)) {}

  Kind kind;
  std::string target_var;
  std::string result_var;  // reads only
  Pattern pattern;
  std::shared_ptr<const Tree> content;  // inserts only
  /// Filled by the optimizer's CSE pass: this read is replaced by a copy of
  /// the result of the statement at the given index.
  std::optional<size_t> alias_of;
};

/// A straight-line program over tree variables with mutating update
/// semantics — the setting of the paper's data-dependence motivation.
class Program {
 public:
  Program() = default;

  size_t AddRead(std::string result_var, std::string target_var,
                 Pattern pattern);
  size_t AddInsert(std::string target_var, Pattern pattern,
                   std::shared_ptr<const Tree> content);
  size_t AddDelete(std::string target_var, Pattern pattern);

  const std::vector<Statement>& statements() const { return statements_; }
  std::vector<Statement>& mutable_statements() { return statements_; }
  size_t size() const { return statements_.size(); }

  /// Human-readable listing in the paper's pidgin syntax.
  std::string ToString() const;

 private:
  std::vector<Statement> statements_;
};

}  // namespace xmlup

#endif  // XMLUP_ANALYSIS_PROGRAM_H_
