#include "analysis/program_parser.h"

#include <utility>

#include "common/string_util.h"
#include "conflict/update_op.h"
#include "pattern/xpath_parser.h"
#include "xml/xml_parser.h"

namespace xmlup {
namespace {

bool IsIdentChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

Status LineError(int line, const std::string& message) {
  return Status::InvalidArgument("line " + std::to_string(line) + ": " +
                                 message);
}

/// Parses `$var/xpath` (or `$var//xpath`); the slash belongs to the XPath.
struct Target {
  std::string var;
  Pattern pattern;
};

Result<Target> ParseTarget(std::string_view text, int line,
                           const std::shared_ptr<SymbolTable>& symbols) {
  text = StripWhitespace(text);
  if (text.empty() || text[0] != '$') {
    return LineError(line, "expected '$variable/xpath', got '" +
                               std::string(text) + "'");
  }
  size_t pos = 1;
  while (pos < text.size() && IsIdentChar(text[pos])) ++pos;
  if (pos == 1) {
    return LineError(line, "missing variable name after '$'");
  }
  std::string var(text.substr(1, pos - 1));
  std::string_view xpath = text.substr(pos);
  if (xpath.empty() || xpath[0] != '/') {
    return LineError(line, "expected '/' after variable '$" + var + "'");
  }
  Result<Pattern> pattern = ParseXPath(xpath, symbols);
  if (!pattern.ok()) {
    return LineError(line, "bad xpath '" + std::string(xpath) +
                               "': " + pattern.status().ToString());
  }
  return Target{std::move(var), std::move(pattern).value()};
}

}  // namespace

Result<ParsedProgram> ParseProgram(std::string_view input,
                                   std::shared_ptr<SymbolTable> symbols) {
  ParsedProgram parsed;
  int line_number = 0;
  for (std::string_view raw_line : Split(input, '\n')) {
    ++line_number;
    std::string_view line = StripWhitespace(raw_line);
    if (line.empty() || line[0] == '#') continue;

    // Optional `index:` prefix (what Program::ToString emits).
    {
      size_t pos = 0;
      while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') ++pos;
      if (pos > 0 && pos < line.size() && line[pos] == ':') {
        line = StripWhitespace(line.substr(pos + 1));
      }
    }
    if (line.empty()) continue;

    if (StartsWith(line, "insert")) {
      std::string_view rest = StripWhitespace(line.substr(6));
      // The content starts at the first ',' followed by (optional space
      // and) '<' — commas never occur in the XPath fragment, but scanning
      // for the '<' keeps the rule robust to future predicate syntax.
      size_t split = std::string_view::npos;
      for (size_t i = 0; i < rest.size(); ++i) {
        if (rest[i] != ',') continue;
        const std::string_view after = StripWhitespace(rest.substr(i + 1));
        if (!after.empty() && after[0] == '<') {
          split = i;
          break;
        }
      }
      if (split == std::string_view::npos) {
        return LineError(line_number,
                         "insert needs ', <content>' after the target");
      }
      Result<Target> target =
          ParseTarget(rest.substr(0, split), line_number, symbols);
      if (!target.ok()) return target.status();
      Result<Tree> content =
          ParseXml(StripWhitespace(rest.substr(split + 1)), symbols);
      if (!content.ok()) {
        return LineError(line_number, "bad insert content: " +
                                          content.status().ToString());
      }
      parsed.program.AddInsert(
          std::move(target->var), std::move(target->pattern),
          std::make_shared<const Tree>(std::move(content).value()));
      parsed.lines.push_back(line_number);
      continue;
    }

    if (StartsWith(line, "delete")) {
      Result<Target> target =
          ParseTarget(line.substr(6), line_number, symbols);
      if (!target.ok()) return target.status();
      // Reject what could never execute: UpdateOp::MakeDelete refuses
      // root-selecting patterns, so catching it here means a parsed
      // program has no malformed statements.
      Result<UpdateOp> check = UpdateOp::MakeDelete(target->pattern);
      if (!check.ok()) {
        return LineError(line_number, check.status().ToString());
      }
      parsed.program.AddDelete(std::move(target->var),
                               std::move(target->pattern));
      parsed.lines.push_back(line_number);
      continue;
    }

    // result = read $var/xpath
    const size_t eq = line.find('=');
    if (eq != std::string_view::npos) {
      const std::string_view result_var = StripWhitespace(line.substr(0, eq));
      std::string_view rest = StripWhitespace(line.substr(eq + 1));
      if (result_var.empty()) {
        return LineError(line_number, "missing result variable before '='");
      }
      for (char c : result_var) {
        if (!IsIdentChar(c)) {
          return LineError(line_number, "bad result variable '" +
                                            std::string(result_var) + "'");
        }
      }
      if (!StartsWith(rest, "read")) {
        return LineError(line_number, "expected 'read' after '='");
      }
      Result<Target> target =
          ParseTarget(rest.substr(4), line_number, symbols);
      if (!target.ok()) return target.status();
      parsed.program.AddRead(std::string(result_var), std::move(target->var),
                             std::move(target->pattern));
      parsed.lines.push_back(line_number);
      continue;
    }

    return LineError(line_number,
                     "expected 'r = read ...', 'insert ...' or 'delete ...'");
  }
  return parsed;
}

}  // namespace xmlup
