#ifndef XMLUP_ANALYSIS_PROGRAM_PARSER_H_
#define XMLUP_ANALYSIS_PROGRAM_PARSER_H_

#include <memory>
#include <string_view>
#include <vector>

#include "analysis/program.h"
#include "common/result.h"
#include "xml/symbol_table.h"

namespace xmlup {

/// A parsed program plus the source mapping the renderers need: lines[i]
/// is the 1-based source line of statement i.
struct ParsedProgram {
  Program program;
  std::vector<int> lines;
};

/// Parses the pidgin update-program syntax of the paper's §1 examples —
/// the same syntax Program::ToString emits (minus the index prefix, which
/// is also accepted and ignored):
///
///   y = read $x//book[.//quantity]
///   insert $x/order, <item><qty/></item>
///   delete $x//order/item
///
/// Grammar per line (blank lines and `#`-comments skipped):
///
///   line   := [index ':'] stmt
///   stmt   := ident '=' 'read' target
///           | 'insert' target ',' xml
///           | 'delete' target
///   target := '$' ident '/' xpath
///
/// XPath fragments use pattern/xpath_parser.h; XML content uses
/// xml/xml_parser.h. A delete whose pattern selects the root is rejected
/// here (it could never execute — UpdateOp::MakeDelete refuses it), so a
/// parsed program contains no malformed statements.
Result<ParsedProgram> ParseProgram(std::string_view input,
                                   std::shared_ptr<SymbolTable> symbols);

}  // namespace xmlup

#endif  // XMLUP_ANALYSIS_PROGRAM_PARSER_H_
