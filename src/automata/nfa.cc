#include "automata/nfa.h"

#include <algorithm>

#include "common/check.h"

namespace xmlup {
namespace {

/// Recursive Thompson construction. Returns (entry, exit) states for the
/// given subexpression, allocating states/transitions into the output
/// vectors.
struct Builder {
  size_t num_states = 0;
  std::vector<Nfa::Transition> transitions;
  std::vector<Nfa::EpsilonTransition> epsilons;

  StateId NewState() { return static_cast<StateId>(num_states++); }

  std::pair<StateId, StateId> Build(const Regex& r) {
    switch (r.kind()) {
      case Regex::Kind::kEpsilon: {
        const StateId in = NewState();
        const StateId out = NewState();
        epsilons.push_back({in, out});
        return {in, out};
      }
      case Regex::Kind::kSymbol: {
        const StateId in = NewState();
        const StateId out = NewState();
        transitions.push_back({in, LabelClass::Of(r.label()), out});
        return {in, out};
      }
      case Regex::Kind::kDot: {
        const StateId in = NewState();
        const StateId out = NewState();
        transitions.push_back({in, LabelClass::Any(), out});
        return {in, out};
      }
      case Regex::Kind::kConcat: {
        auto [lin, lout] = Build(r.left());
        auto [rin, rout] = Build(r.right());
        epsilons.push_back({lout, rin});
        return {lin, rout};
      }
      case Regex::Kind::kStar: {
        auto [iin, iout] = Build(r.inner());
        const StateId in = NewState();
        const StateId out = NewState();
        epsilons.push_back({in, iin});
        epsilons.push_back({iout, out});
        epsilons.push_back({in, out});
        epsilons.push_back({iout, iin});
        return {in, out};
      }
    }
    XMLUP_CHECK(false);
    return {0, 0};
  }
};

}  // namespace

Nfa Nfa::FromRegex(const Regex& regex) {
  Builder builder;
  auto [start, accept] = builder.Build(regex);
  Nfa nfa;
  nfa.num_states_ = builder.num_states;
  nfa.start_ = start;
  nfa.accept_ = accept;
  nfa.transitions_ = std::move(builder.transitions);
  nfa.epsilon_transitions_ = std::move(builder.epsilons);
  nfa.BuildIndex();
  return nfa;
}

void Nfa::BuildIndex() {
  by_state_.assign(num_states_, {});
  epsilon_by_state_.assign(num_states_, {});
  for (uint32_t i = 0; i < transitions_.size(); ++i) {
    by_state_[transitions_[i].from].push_back(i);
  }
  for (const EpsilonTransition& e : epsilon_transitions_) {
    epsilon_by_state_[e.from].push_back(e.to);
  }
  closure_by_state_.resize(num_states_);
  for (StateId s = 0; s < num_states_; ++s) {
    closure_by_state_[s] = EpsilonClosure({s});
  }
}

std::vector<StateId> Nfa::EpsilonClosure(std::vector<StateId> states) const {
  std::vector<bool> seen(num_states_, false);
  std::vector<StateId> stack = states;
  for (StateId s : states) seen[s] = true;
  while (!stack.empty()) {
    const StateId s = stack.back();
    stack.pop_back();
    for (StateId t : epsilon_by_state_[s]) {
      if (!seen[t]) {
        seen[t] = true;
        states.push_back(t);
        stack.push_back(t);
      }
    }
  }
  std::sort(states.begin(), states.end());
  return states;
}

}  // namespace xmlup
