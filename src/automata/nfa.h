#ifndef XMLUP_AUTOMATA_NFA_H_
#define XMLUP_AUTOMATA_NFA_H_

#include <cstdint>
#include <vector>

#include "automata/regex.h"

namespace xmlup {

using StateId = uint32_t;

/// A nondeterministic finite automaton with symbolic transition classes
/// (concrete label or any-label) and epsilon moves. Built by the Thompson
/// construction from the Regex IR; single start state, single accept state.
class Nfa {
 public:
  struct Transition {
    StateId from;
    LabelClass on;
    StateId to;
  };
  struct EpsilonTransition {
    StateId from;
    StateId to;
  };

  /// Thompson construction.
  static Nfa FromRegex(const Regex& regex);

  size_t num_states() const { return num_states_; }
  StateId start() const { return start_; }
  StateId accept() const { return accept_; }

  const std::vector<Transition>& transitions() const { return transitions_; }
  const std::vector<EpsilonTransition>& epsilon_transitions() const {
    return epsilon_transitions_;
  }

  /// Symbol transitions leaving `s` (indexed adjacency).
  const std::vector<uint32_t>& TransitionsFrom(StateId s) const {
    return by_state_[s];
  }
  /// Epsilon targets from `s`.
  const std::vector<StateId>& EpsilonFrom(StateId s) const {
    return epsilon_by_state_[s];
  }

  /// Epsilon closure of a state set (sorted, deduplicated).
  std::vector<StateId> EpsilonClosure(std::vector<StateId> states) const;

  /// Precomputed epsilon closure of the single state `s` (sorted,
  /// deduplicated, includes `s`). Same contents as EpsilonClosure({s}),
  /// built once at construction — the product search calls this per
  /// enqueued pair, so it must not allocate.
  const std::vector<StateId>& ClosureFrom(StateId s) const {
    return closure_by_state_[s];
  }

 private:
  Nfa() = default;

  void BuildIndex();

  size_t num_states_ = 0;
  StateId start_ = 0;
  StateId accept_ = 0;
  std::vector<Transition> transitions_;
  std::vector<EpsilonTransition> epsilon_transitions_;
  std::vector<std::vector<uint32_t>> by_state_;
  std::vector<std::vector<StateId>> epsilon_by_state_;
  std::vector<std::vector<StateId>> closure_by_state_;
};

}  // namespace xmlup

#endif  // XMLUP_AUTOMATA_NFA_H_
