#include "automata/nfa_ops.h"

#include <algorithm>
#include <queue>

namespace xmlup {
namespace {

/// BFS over product states (sa, sb), taking epsilon moves into account by
/// closing each side independently. Records parents for witness
/// reconstruction when `want_witness` is set.
std::optional<ClassWord> ProductSearch(const Nfa& a, const Nfa& b,
                                       bool want_witness) {
  const size_t nb = b.num_states();
  auto encode = [nb](StateId sa, StateId sb) -> size_t {
    return static_cast<size_t>(sa) * nb + sb;
  };

  std::vector<bool> visited(a.num_states() * b.num_states(), false);
  // parent[state] = (previous state, class taken); only kept for witnesses.
  struct Parent {
    size_t prev = SIZE_MAX;
    LabelClass on;
  };
  std::vector<Parent> parents;
  if (want_witness) parents.assign(visited.size(), Parent{});

  std::queue<std::pair<StateId, StateId>> queue;

  auto enqueue_closed = [&](StateId sa, StateId sb, size_t from,
                            const LabelClass& on) {
    // Close both sides under epsilon and enqueue every pair in the closure.
    const std::vector<StateId> ca = a.EpsilonClosure({sa});
    const std::vector<StateId> cb = b.EpsilonClosure({sb});
    for (StateId xa : ca) {
      for (StateId xb : cb) {
        const size_t id = encode(xa, xb);
        if (visited[id]) continue;
        visited[id] = true;
        if (want_witness) parents[id] = {from, on};
        queue.emplace(xa, xb);
      }
    }
  };

  enqueue_closed(a.start(), b.start(), SIZE_MAX, LabelClass::Any());

  while (!queue.empty()) {
    auto [sa, sb] = queue.front();
    queue.pop();
    const size_t id = encode(sa, sb);
    if (sa == a.accept() && sb == b.accept()) {
      if (!want_witness) return ClassWord{};
      // Reconstruct the word by following parents.
      ClassWord word;
      size_t cur = id;
      while (parents[cur].prev != SIZE_MAX) {
        word.push_back(parents[cur].on);
        cur = parents[cur].prev;
      }
      std::reverse(word.begin(), word.end());
      return word;
    }
    for (uint32_t ti : a.TransitionsFrom(sa)) {
      const Nfa::Transition& ta = a.transitions()[ti];
      for (uint32_t tj : b.TransitionsFrom(sb)) {
        const Nfa::Transition& tb = b.transitions()[tj];
        LabelClass common;
        if (!IntersectClasses(ta.on, tb.on, &common)) continue;
        enqueue_closed(ta.to, tb.to, id, common);
      }
    }
  }
  return std::nullopt;
}

}  // namespace

bool IntersectionNonEmpty(const Nfa& a, const Nfa& b) {
  return ProductSearch(a, b, /*want_witness=*/false).has_value();
}

std::optional<ClassWord> IntersectionWitness(const Nfa& a, const Nfa& b) {
  return ProductSearch(a, b, /*want_witness=*/true);
}

}  // namespace xmlup
