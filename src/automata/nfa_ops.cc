#include "automata/nfa_ops.h"

#include <algorithm>

#include "obs/metrics.h"

namespace xmlup {
namespace {

struct ProductCacheMetrics {
  obs::Counter& lookups;
  obs::Counter& hits;
  obs::Counter& misses;

  static ProductCacheMetrics& Get() {
    static ProductCacheMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
      return ProductCacheMetrics{
          reg.GetCounter("detector.product_cache.lookups"),
          reg.GetCounter("detector.product_cache.hits"),
          reg.GetCounter("detector.product_cache.misses"),
      };
    }();
    return m;
  }
};

/// Per-thread scratch for ProductSearch. The product BFS is the innermost
/// loop of every match/detect call; reusing these buffers keeps the
/// steady-state search allocation-free (capacity is retained across
/// calls, assign() only memsets).
struct SearchScratch {
  /// parent[state] = (previous state, class taken); only kept for
  /// witnesses.
  struct Parent {
    size_t prev = SIZE_MAX;
    LabelClass on;
  };

  std::vector<char> visited;
  std::vector<Parent> parents;
  /// FIFO queue as a vector with a head cursor — same visit order as
  /// std::queue, but the backing storage survives between calls.
  std::vector<std::pair<StateId, StateId>> queue;

  static SearchScratch& Get() {
    thread_local SearchScratch scratch;
    return scratch;
  }
};

/// BFS over product states (sa, sb), taking epsilon moves into account by
/// closing each side independently. Records parents for witness
/// reconstruction when `want_witness` is set.
std::optional<ClassWord> ProductSearch(const Nfa& a, const Nfa& b,
                                       bool want_witness) {
  const size_t nb = b.num_states();
  auto encode = [nb](StateId sa, StateId sb) -> size_t {
    return static_cast<size_t>(sa) * nb + sb;
  };

  SearchScratch& scratch = SearchScratch::Get();
  std::vector<char>& visited = scratch.visited;
  visited.assign(a.num_states() * b.num_states(), 0);
  std::vector<SearchScratch::Parent>& parents = scratch.parents;
  if (want_witness) parents.assign(visited.size(), SearchScratch::Parent{});

  std::vector<std::pair<StateId, StateId>>& queue = scratch.queue;
  queue.clear();
  size_t queue_head = 0;

  auto enqueue_closed = [&](StateId sa, StateId sb, size_t from,
                            const LabelClass& on) {
    // Close both sides under epsilon and enqueue every pair in the closure.
    for (StateId xa : a.ClosureFrom(sa)) {
      for (StateId xb : b.ClosureFrom(sb)) {
        const size_t id = encode(xa, xb);
        if (visited[id]) continue;
        visited[id] = 1;
        if (want_witness) parents[id] = {from, on};
        queue.emplace_back(xa, xb);
      }
    }
  };

  enqueue_closed(a.start(), b.start(), SIZE_MAX, LabelClass::Any());

  while (queue_head < queue.size()) {
    auto [sa, sb] = queue[queue_head++];
    const size_t id = encode(sa, sb);
    if (sa == a.accept() && sb == b.accept()) {
      if (!want_witness) return ClassWord{};
      // Reconstruct the word by following parents.
      ClassWord word;
      size_t cur = id;
      while (parents[cur].prev != SIZE_MAX) {
        word.push_back(parents[cur].on);
        cur = parents[cur].prev;
      }
      std::reverse(word.begin(), word.end());
      return word;
    }
    for (uint32_t ti : a.TransitionsFrom(sa)) {
      const Nfa::Transition& ta = a.transitions()[ti];
      for (uint32_t tj : b.TransitionsFrom(sb)) {
        const Nfa::Transition& tb = b.transitions()[tj];
        LabelClass common;
        if (!IntersectClasses(ta.on, tb.on, &common)) continue;
        enqueue_closed(ta.to, tb.to, id, common);
      }
    }
  }
  return std::nullopt;
}

}  // namespace

bool IntersectionNonEmpty(const Nfa& a, const Nfa& b) {
  return ProductSearch(a, b, /*want_witness=*/false).has_value();
}

std::optional<ClassWord> IntersectionWitness(const Nfa& a, const Nfa& b) {
  return ProductSearch(a, b, /*want_witness=*/true);
}

std::optional<ClassWord> NfaProductCache::Intersect(const Nfa& a,
                                                    uint64_t a_uid,
                                                    const Nfa& b,
                                                    uint64_t b_uid) {
  if (!enabled()) return IntersectionWitness(a, b);

  ProductCacheMetrics& metrics = ProductCacheMetrics::Get();
  metrics.lookups.Increment();

  const PairKey key{a_uid, b_uid};
  Shard& s = shard(key);
  {
    MutexLock lock(s.mu);
    auto it = s.map.find(key);
    if (it != s.map.end()) {
      metrics.hits.Increment();
      return it->second;
    }
  }
  // Compute outside the shard lock: products can be expensive and other
  // pairs hashing to this shard should not wait on ours.
  metrics.misses.Increment();
  std::optional<ClassWord> result = IntersectionWitness(a, b);
  {
    MutexLock lock(s.mu);
    s.map.emplace(key, result);
  }
  return result;
}

size_t NfaProductCache::size() const {
  size_t total = 0;
  for (const Shard& s : shards_) {
    MutexLock lock(s.mu);
    total += s.map.size();
  }
  return total;
}

void NfaProductCache::Clear() {
  for (Shard& s : shards_) {
    MutexLock lock(s.mu);
    s.map.clear();
  }
}

NfaProductCache& NfaProductCache::Default() {
  static NfaProductCache* cache = new NfaProductCache();
  return *cache;
}

}  // namespace xmlup
