#ifndef XMLUP_AUTOMATA_NFA_OPS_H_
#define XMLUP_AUTOMATA_NFA_OPS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "automata/nfa.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace xmlup {

/// A word over symbol classes; each element is either a concrete label or
/// "any" (resolved to a caller-chosen filler when materialized).
using ClassWord = std::vector<LabelClass>;

/// Decides emptiness of L(a) ∩ L(b) by BFS over the product automaton with
/// symbolic class intersection (§4.1: "construct non-deterministic finite
/// state automata ... verify in time polynomial ... whether the
/// intersection is non-empty").
bool IntersectionNonEmpty(const Nfa& a, const Nfa& b);

/// Like IntersectionNonEmpty, but returns a shortest witness word of the
/// intersection (nullopt if empty). The word's Any classes may be resolved
/// to any label; the matching module resolves them to a filler symbol when
/// building witness trees.
std::optional<ClassWord> IntersectionWitness(const Nfa& a, const Nfa& b);

/// Memoizes product-automaton results for *compiled* (immutable, uniquely
/// identified) NFAs, so repeated (read prefix, update mainline) pairs skip
/// product construction entirely — the detector hot path asks the same
/// ref-pair questions over and over across a conflict matrix.
///
/// Keys are pairs of compiled-NFA uids (see pattern/compiled_pattern.h):
/// a uid is minted exactly once per compiled automaton and never reused,
/// so a cache entry is a pure fact about the two automata. The cached
/// value is the full IntersectionWitness answer; IntersectionNonEmpty
/// follows from has_value(), so both detector entry points share entries.
///
/// Thread safety: sharded by key hash; each shard is a mutex + map. Two
/// threads racing on the same cold pair both compute the (identical,
/// deterministic) result and the first insert wins — verdicts never depend
/// on scheduling.
///
/// Observability (process-wide, into obs::MetricsRegistry::Default()):
///   detector.product_cache.lookups — enabled lookups
///   detector.product_cache.hits    — served from the cache
///   detector.product_cache.misses  — computed (and stored)
/// Invariant: lookups == hits + misses.
class NfaProductCache {
 public:
  NfaProductCache() = default;
  NfaProductCache(const NfaProductCache&) = delete;
  NfaProductCache& operator=(const NfaProductCache&) = delete;

  /// IntersectionWitness(a, b), memoized under (a_uid, b_uid). Both uids
  /// must be nonzero and uniquely identify the automata for the process
  /// lifetime. When the cache is disabled (ablation / benchmarks) the
  /// product is computed directly and nothing is counted or stored.
  std::optional<ClassWord> Intersect(const Nfa& a, uint64_t a_uid,
                                     const Nfa& b, uint64_t b_uid);

  /// Ablation toggle for bench_detect_hot's warm-NFA-only leg. Disabling
  /// does not drop existing entries; re-enabling resumes hitting them.
  void set_enabled(bool enabled) {
    // ordering: relaxed — an independent on/off flag; a lookup racing the
    // toggle may take either path, both of which compute the same verdict
    // (the cache is a pure memo).
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const {
    // ordering: relaxed — see set_enabled.
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Memoized pairs currently retained (across all shards).
  size_t size() const;

  /// Drops every entry (counters are not reset).
  void Clear();

  /// Process-wide cache used by the compiled matching/detection hot path.
  /// Never destroyed.
  static NfaProductCache& Default();

 private:
  struct PairKey {
    uint64_t a = 0;
    uint64_t b = 0;
    friend bool operator==(const PairKey& x, const PairKey& y) {
      return x.a == y.a && x.b == y.b;
    }
  };
  struct PairKeyHash {
    size_t operator()(const PairKey& k) const {
      uint64_t packed = k.a * 0x9E3779B97F4A7C15ull ^ k.b;
      packed ^= packed >> 33;
      packed *= 0xff51afd7ed558ccdull;
      packed ^= packed >> 33;
      return static_cast<size_t>(packed);
    }
  };
  /// One of 16 independent (shard mutexes are leaf locks, never nested
  /// with each other or anything else) hash-partitioned memo maps.
  struct Shard {
    mutable Mutex mu;
    std::unordered_map<PairKey, std::optional<ClassWord>, PairKeyHash> map
        XMLUP_GUARDED_BY(mu);
  };

  static constexpr size_t kNumShards = 16;

  Shard& shard(const PairKey& key) {
    return shards_[PairKeyHash()(key) % kNumShards];
  }

  std::array<Shard, kNumShards> shards_;
  std::atomic<bool> enabled_{true};
};

}  // namespace xmlup

#endif  // XMLUP_AUTOMATA_NFA_OPS_H_
