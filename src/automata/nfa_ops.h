#ifndef XMLUP_AUTOMATA_NFA_OPS_H_
#define XMLUP_AUTOMATA_NFA_OPS_H_

#include <optional>
#include <vector>

#include "automata/nfa.h"

namespace xmlup {

/// A word over symbol classes; each element is either a concrete label or
/// "any" (resolved to a caller-chosen filler when materialized).
using ClassWord = std::vector<LabelClass>;

/// Decides emptiness of L(a) ∩ L(b) by BFS over the product automaton with
/// symbolic class intersection (§4.1: "construct non-deterministic finite
/// state automata ... verify in time polynomial ... whether the
/// intersection is non-empty").
bool IntersectionNonEmpty(const Nfa& a, const Nfa& b);

/// Like IntersectionNonEmpty, but returns a shortest witness word of the
/// intersection (nullopt if empty). The word's Any classes may be resolved
/// to any label; the matching module resolves them to a filler symbol when
/// building witness trees.
std::optional<ClassWord> IntersectionWitness(const Nfa& a, const Nfa& b);

}  // namespace xmlup

#endif  // XMLUP_AUTOMATA_NFA_OPS_H_
