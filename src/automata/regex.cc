#include "automata/regex.h"

namespace xmlup {

bool IntersectClasses(const LabelClass& a, const LabelClass& b,
                      LabelClass* out) {
  if (a.any) {
    *out = b;
    return true;
  }
  if (b.any) {
    *out = a;
    return true;
  }
  if (a.label != b.label) return false;
  *out = a;
  return true;
}

Regex Regex::Epsilon() {
  Regex r;
  r.kind_ = Kind::kEpsilon;
  return r;
}

Regex Regex::Symbol(Label label) {
  Regex r;
  r.kind_ = Kind::kSymbol;
  r.label_ = label;
  return r;
}

Regex Regex::Dot() {
  Regex r;
  r.kind_ = Kind::kDot;
  return r;
}

Regex Regex::Concat(Regex left, Regex right) {
  Regex r;
  r.kind_ = Kind::kConcat;
  r.children_.push_back(std::make_shared<const Regex>(std::move(left)));
  r.children_.push_back(std::make_shared<const Regex>(std::move(right)));
  return r;
}

Regex Regex::Star(Regex inner) {
  Regex r;
  r.kind_ = Kind::kStar;
  r.children_.push_back(std::make_shared<const Regex>(std::move(inner)));
  return r;
}

std::string Regex::ToString(const SymbolTable& symbols) const {
  switch (kind_) {
    case Kind::kEpsilon:
      return "ε";
    case Kind::kSymbol:
      return symbols.Name(label_);
    case Kind::kDot:
      return "(.)";
    case Kind::kConcat:
      return left().ToString(symbols) + "." + right().ToString(symbols);
    case Kind::kStar: {
      return "(" + inner().ToString(symbols) + ")*";
    }
  }
  return "?";
}

}  // namespace xmlup
