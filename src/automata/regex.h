#ifndef XMLUP_AUTOMATA_REGEX_H_
#define XMLUP_AUTOMATA_REGEX_H_

#include <memory>
#include <string>
#include <vector>

#include "xml/symbol_table.h"

namespace xmlup {

/// A symbol class on an automaton transition or in a witness word: either
/// one concrete label or "any label" (the paper's (.), which stands for any
/// symbol of the restricted alphabet Σ_{l,l'}; treating it as "any label at
/// all" is equivalent for intersection-emptiness because class intersection
/// is computed symbolically).
struct LabelClass {
  bool any = false;
  Label label = kInvalidLabel;

  static LabelClass Any() { return {true, kInvalidLabel}; }
  static LabelClass Of(Label l) { return {false, l}; }

  bool operator==(const LabelClass& other) const {
    return any == other.any && (any || label == other.label);
  }
};

/// Symbolic intersection of two classes; returns false if empty, else
/// writes the (most specific) intersection into `out`.
bool IntersectClasses(const LabelClass& a, const LabelClass& b,
                      LabelClass* out);

/// Minimal regular-expression IR: exactly what the paper's construction
/// R(n) needs (§4.1) — symbols, the any-symbol dot, concatenation and
/// Kleene star (plus epsilon as a unit).
class Regex {
 public:
  enum class Kind { kEpsilon, kSymbol, kDot, kConcat, kStar };

  static Regex Epsilon();
  static Regex Symbol(Label label);
  static Regex Dot();
  static Regex Concat(Regex left, Regex right);
  static Regex Star(Regex inner);

  Kind kind() const { return kind_; }
  Label label() const { return label_; }
  const Regex& left() const { return *children_[0]; }
  const Regex& right() const { return *children_[1]; }
  const Regex& inner() const { return *children_[0]; }

  /// Debug rendering, e.g. "a.(.)*.b" (concatenation rendered with '.').
  std::string ToString(const SymbolTable& symbols) const;

 private:
  Regex() = default;

  Kind kind_ = Kind::kEpsilon;
  Label label_ = kInvalidLabel;
  std::vector<std::shared_ptr<const Regex>> children_;
};

}  // namespace xmlup

#endif  // XMLUP_AUTOMATA_REGEX_H_
