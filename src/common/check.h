#ifndef XMLUP_COMMON_CHECK_H_
#define XMLUP_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace xmlup {
namespace internal {

/// Accumulates a failure message and aborts the process when destroyed.
/// Used only via the XMLUP_CHECK / XMLUP_DCHECK macros for conditions that
/// indicate a bug in the library itself (user-facing errors use Status).
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* expr) {
    stream_ << file << ":" << line << " check failed: " << expr << " ";
  }

  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Swallows streamed operands when a check passes.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace xmlup

#define XMLUP_CHECK(cond)            \
  (cond) ? (void)0                   \
         : (void)(::xmlup::internal::CheckFailure(__FILE__, __LINE__, #cond))

#define XMLUP_CHECK_STREAM(cond)                                      \
  if (cond)                                                           \
    ::xmlup::internal::NullStream();                                  \
  else                                                                \
    ::xmlup::internal::CheckFailure(__FILE__, __LINE__, #cond)

#ifdef NDEBUG
#define XMLUP_DCHECK(cond) ::xmlup::internal::NullStream()
#else
#define XMLUP_DCHECK(cond) XMLUP_CHECK_STREAM(cond)
#endif

#endif  // XMLUP_COMMON_CHECK_H_
