#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "common/check.h"
#include "common/string_util.h"

namespace xmlup {
namespace {

class Parser {
 public:
  Parser(std::string_view text, const JsonParseOptions& options)
      : text_(text), options_(options) {}

  Result<JsonValue> Parse() {
    SkipWhitespace();
    Result<JsonValue> value = ParseValue(0);
    if (!value.ok()) return value;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    size_t line = 1;
    size_t column = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    return Status::InvalidArgument("JSON parse error at " +
                                   std::to_string(line) + ":" +
                                   std::to_string(column) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Result<JsonValue> ParseValue(size_t depth) {
    if (depth > options_.max_depth) {
      return Error("nesting deeper than " + std::to_string(options_.max_depth));
    }
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        Result<std::string> s = ParseString();
        if (!s.ok()) return s.status();
        return JsonValue(std::move(s).value());
      }
      case 't':
        if (ConsumeLiteral("true")) return JsonValue(true);
        return Error("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) return JsonValue(false);
        return Error("invalid literal");
      case 'n':
        if (ConsumeLiteral("null")) return JsonValue(nullptr);
        return Error("invalid literal");
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
        return Error(std::string("unexpected character '") + c + "'");
    }
  }

  Result<JsonValue> ParseObject(size_t depth) {
    XMLUP_CHECK(Consume('{'));
    JsonValue::Object members;
    SkipWhitespace();
    if (Consume('}')) return JsonValue(std::move(members));
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      Result<std::string> key = ParseString();
      if (!key.ok()) return key.status();
      for (const auto& [existing, unused] : members) {
        if (existing == *key) return Error("duplicate key \"" + *key + "\"");
      }
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      SkipWhitespace();
      Result<JsonValue> value = ParseValue(depth + 1);
      if (!value.ok()) return value;
      members.emplace_back(std::move(key).value(), std::move(value).value());
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return JsonValue(std::move(members));
      return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray(size_t depth) {
    XMLUP_CHECK(Consume('['));
    JsonValue::Array elements;
    SkipWhitespace();
    if (Consume(']')) return JsonValue(std::move(elements));
    while (true) {
      SkipWhitespace();
      Result<JsonValue> value = ParseValue(depth + 1);
      if (!value.ok()) return value;
      elements.push_back(std::move(value).value());
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return JsonValue(std::move(elements));
      return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    XMLUP_CHECK(Consume('"'));
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          Result<uint32_t> unit = ParseHex4();
          if (!unit.ok()) return unit.status();
          uint32_t code = *unit;
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: a low surrogate escape must follow.
            if (!ConsumeLiteral("\\u")) {
              return Error("unpaired high surrogate");
            }
            Result<uint32_t> low = ParseHex4();
            if (!low.ok()) return low.status();
            if (*low < 0xDC00 || *low > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (*low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return Error("unpaired low surrogate");
          }
          AppendUtf8(&out, code);
          break;
        }
        default:
          return Error(std::string("invalid escape '\\") + esc + "'");
      }
    }
  }

  Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
    }
    return value;
  }

  static void AppendUtf8(std::string* out, uint32_t code) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
      // sign consumed; digits must follow.
    }
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return Error("invalid number");
    }
    if (text_[pos_] == '0') {
      ++pos_;
      if (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        return Error("leading zero in number");
      }
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("digits required after decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("digits required in exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      return Error("number out of range");
    }
    return JsonValue(value);
  }

  std::string_view text_;
  const JsonParseOptions& options_;
  size_t pos_ = 0;
};

void AppendNumber(std::string* out, double value) {
  XMLUP_CHECK(std::isfinite(value));  // JSON cannot represent NaN/Inf
  // Integral values within double's exact range print as integers so
  // counts and seeds round-trip textually.
  if (value == std::floor(value) && std::abs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(value));  // NOLINT(runtime/int)
    *out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  // Trim to the shortest representation that round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[32];
    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, value);
    if (std::strtod(shorter, nullptr) == value) {
      *out += shorter;
      return;
    }
  }
  *out += buf;
}

void Append(std::string* out, const JsonValue& value, int indent, int depth) {
  const bool pretty = indent > 0;
  const auto newline = [&](int d) {
    if (!pretty) return;
    out->push_back('\n');
    out->append(static_cast<size_t>(indent) * d, ' ');
  };
  switch (value.kind()) {
    case JsonValue::Kind::kNull:
      *out += "null";
      return;
    case JsonValue::Kind::kBool:
      *out += value.AsBool() ? "true" : "false";
      return;
    case JsonValue::Kind::kNumber:
      AppendNumber(out, value.AsDouble());
      return;
    case JsonValue::Kind::kString:
      out->push_back('"');
      *out += JsonEscape(value.AsString());
      out->push_back('"');
      return;
    case JsonValue::Kind::kArray: {
      const JsonValue::Array& elements = value.AsArray();
      if (elements.empty()) {
        *out += "[]";
        return;
      }
      out->push_back('[');
      bool first = true;
      for (const JsonValue& element : elements) {
        if (!first) out->push_back(',');
        first = false;
        newline(depth + 1);
        Append(out, element, indent, depth + 1);
      }
      newline(depth);
      out->push_back(']');
      return;
    }
    case JsonValue::Kind::kObject: {
      const JsonValue::Object& members = value.AsObject();
      if (members.empty()) {
        *out += "{}";
        return;
      }
      out->push_back('{');
      bool first = true;
      for (const auto& [key, member] : members) {
        if (!first) out->push_back(',');
        first = false;
        newline(depth + 1);
        out->push_back('"');
        *out += JsonEscape(key);
        *out += pretty ? "\": " : "\":";
        Append(out, member, indent, depth + 1);
      }
      newline(depth);
      out->push_back('}');
      return;
    }
  }
}

}  // namespace

bool JsonValue::AsBool() const {
  XMLUP_CHECK(is_bool());
  return std::get<bool>(value_);
}

double JsonValue::AsDouble() const {
  XMLUP_CHECK(is_number());
  return std::get<double>(value_);
}

const std::string& JsonValue::AsString() const {
  XMLUP_CHECK(is_string());
  return std::get<std::string>(value_);
}

const JsonValue::Array& JsonValue::AsArray() const {
  XMLUP_CHECK(is_array());
  return std::get<Array>(value_);
}

JsonValue::Array& JsonValue::AsArray() {
  XMLUP_CHECK(is_array());
  return std::get<Array>(value_);
}

const JsonValue::Object& JsonValue::AsObject() const {
  XMLUP_CHECK(is_object());
  return std::get<Object>(value_);
}

JsonValue::Object& JsonValue::AsObject() {
  XMLUP_CHECK(is_object());
  return std::get<Object>(value_);
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [name, value] : std::get<Object>(value_)) {
    if (name == key) return &value;
  }
  return nullptr;
}

void JsonValue::Set(std::string_view key, JsonValue value) {
  XMLUP_CHECK(is_object());
  for (auto& [name, existing] : std::get<Object>(value_)) {
    if (name == key) {
      existing = std::move(value);
      return;
    }
  }
  std::get<Object>(value_).emplace_back(std::string(key), std::move(value));
}

void JsonValue::Append(JsonValue value) {
  XMLUP_CHECK(is_array());
  std::get<Array>(value_).push_back(std::move(value));
}

bool operator==(const JsonValue& a, const JsonValue& b) {
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case JsonValue::Kind::kNull:
      return true;
    case JsonValue::Kind::kBool:
      return a.AsBool() == b.AsBool();
    case JsonValue::Kind::kNumber:
      return a.AsDouble() == b.AsDouble();
    case JsonValue::Kind::kString:
      return a.AsString() == b.AsString();
    case JsonValue::Kind::kArray: {
      const JsonValue::Array& lhs = a.AsArray();
      const JsonValue::Array& rhs = b.AsArray();
      if (lhs.size() != rhs.size()) return false;
      for (size_t i = 0; i < lhs.size(); ++i) {
        if (lhs[i] != rhs[i]) return false;
      }
      return true;
    }
    case JsonValue::Kind::kObject: {
      const JsonValue::Object& lhs = a.AsObject();
      const JsonValue::Object& rhs = b.AsObject();
      if (lhs.size() != rhs.size()) return false;
      for (const auto& [key, value] : lhs) {
        const JsonValue* other = b.Find(key);
        if (other == nullptr || value != *other) return false;
      }
      return true;
    }
  }
  return false;
}

JsonObjectReader::JsonObjectReader(const JsonValue& value, std::string context)
    : value_(value), context_(std::move(context)) {
  if (!value_.is_object()) {
    RecordError("expected a JSON object");
  }
}

void JsonObjectReader::RecordError(const std::string& message) {
  if (!first_error_.ok()) return;
  first_error_ = Status::InvalidArgument(
      context_.empty() ? message : context_ + ": " + message);
}

const JsonValue* JsonObjectReader::Consume(std::string_view key) {
  if (!value_.is_object()) return nullptr;
  consumed_.emplace_back(key);
  return value_.Find(key);
}

void JsonObjectReader::Bool(std::string_view key, bool* out) {
  const JsonValue* v = Consume(key);
  if (v == nullptr) return;
  if (!v->is_bool()) {
    RecordError(std::string(key) + " must be a boolean");
    return;
  }
  *out = v->AsBool();
}

void JsonObjectReader::Number(std::string_view key, double min, double max,
                              double* out) {
  const JsonValue* v = Consume(key);
  if (v == nullptr) return;
  if (!v->is_number()) {
    RecordError(std::string(key) + " must be a number");
    return;
  }
  const double d = v->AsDouble();
  if (d < min || d > max) {
    RecordError(std::string(key) + " = " + WriteJson(*v) + " out of range [" +
                std::to_string(min) + ", " + std::to_string(max) + "]");
    return;
  }
  *out = d;
}

void JsonObjectReader::Double(std::string_view key, double* out) {
  Number(key, -std::numeric_limits<double>::max(),
         std::numeric_limits<double>::max(), out);
}

void JsonObjectReader::Fraction(std::string_view key, double* out) {
  Number(key, 0.0, 1.0, out);
}

void JsonObjectReader::NonNegative(std::string_view key, double* out) {
  Number(key, 0.0, std::numeric_limits<double>::max(), out);
}

void JsonObjectReader::Size(std::string_view key, size_t* out) {
  double d = -1.0;
  Number(key, 0.0, 9.007199254740992e15, &d);
  if (d < 0.0) return;  // absent or already errored
  if (d != std::floor(d)) {
    RecordError(std::string(key) + " must be an integer");
    return;
  }
  *out = static_cast<size_t>(d);
}

void JsonObjectReader::U64(std::string_view key, uint64_t* out) {
  size_t value = static_cast<size_t>(*out);
  Size(key, &value);
  *out = value;
}

void JsonObjectReader::String(std::string_view key, std::string* out) {
  const JsonValue* v = Consume(key);
  if (v == nullptr) return;
  if (!v->is_string()) {
    RecordError(std::string(key) + " must be a string");
    return;
  }
  *out = v->AsString();
}

const JsonValue* JsonObjectReader::Child(std::string_view key) {
  return Consume(key);
}

Status JsonObjectReader::Finish() {
  if (!first_error_.ok()) return first_error_;
  if (!value_.is_object()) return first_error_;
  for (const auto& [key, unused] : value_.AsObject()) {
    bool known = false;
    for (const std::string& c : consumed_) {
      if (c == key) {
        known = true;
        break;
      }
    }
    if (!known) {
      RecordError("unknown key \"" + key + "\"");
      break;
    }
  }
  return first_error_;
}

Result<JsonValue> ParseJson(std::string_view text,
                            const JsonParseOptions& options) {
  return Parser(text, options).Parse();
}

std::string WriteJson(const JsonValue& value) {
  std::string out;
  Append(&out, value, /*indent=*/0, /*depth=*/0);
  return out;
}

std::string WriteJsonPretty(const JsonValue& value, int indent) {
  std::string out;
  Append(&out, value, indent, /*depth=*/0);
  out.push_back('\n');
  return out;
}

}  // namespace xmlup
