#ifndef XMLUP_COMMON_JSON_H_
#define XMLUP_COMMON_JSON_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "common/result.h"

namespace xmlup {

/// A small dependency-free JSON document model for the declarative
/// configuration surfaces (workload specs, generator specs) and their
/// round-trip serialization. Deliberately minimal: one value type, one
/// recursive-descent parser, one compact writer — not a streaming API.
///
/// Objects preserve insertion order (a vector of members, not a map), so
/// Parse → Write round trips are stable and diffs against checked-in spec
/// files stay readable. Duplicate keys are a parse error: every consumer
/// here is a config schema, where a duplicate key is a typo, not a merge.
///
/// Numbers are stored as double. Integers are exact up to 2^53, which
/// covers every count, dimension and seed the specs carry; the writer
/// prints integral values without a decimal point so integer fields
/// round-trip textually too.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  /// Insertion-ordered object members.
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}  // NOLINT(runtime/explicit)
  JsonValue(bool b) : value_(b) {}                // NOLINT(runtime/explicit)
  JsonValue(double d) : value_(d) {}              // NOLINT(runtime/explicit)
  JsonValue(int i)                                // NOLINT(runtime/explicit)
      : value_(static_cast<double>(i)) {}
  JsonValue(int64_t i)                            // NOLINT(runtime/explicit)
      : value_(static_cast<double>(i)) {}
  /// Covers size_t on LP64 targets.
  JsonValue(uint64_t u)                           // NOLINT(runtime/explicit)
      : value_(static_cast<double>(u)) {}
  JsonValue(std::string s) : value_(std::move(s)) {}  // NOLINT
  JsonValue(std::string_view s)                   // NOLINT(runtime/explicit)
      : value_(std::string(s)) {}
  JsonValue(const char* s)                        // NOLINT(runtime/explicit)
      : value_(std::string(s)) {}
  JsonValue(Array a) : value_(std::move(a)) {}    // NOLINT(runtime/explicit)
  JsonValue(Object o) : value_(std::move(o)) {}   // NOLINT(runtime/explicit)

  static JsonValue MakeArray() { return JsonValue(Array{}); }
  static JsonValue MakeObject() { return JsonValue(Object{}); }

  Kind kind() const { return static_cast<Kind>(value_.index()); }
  bool is_null() const { return kind() == Kind::kNull; }
  bool is_bool() const { return kind() == Kind::kBool; }
  bool is_number() const { return kind() == Kind::kNumber; }
  bool is_string() const { return kind() == Kind::kString; }
  bool is_array() const { return kind() == Kind::kArray; }
  bool is_object() const { return kind() == Kind::kObject; }

  /// Checked accessors (XMLUP_CHECK on kind mismatch).
  bool AsBool() const;
  double AsDouble() const;
  const std::string& AsString() const;
  const Array& AsArray() const;
  Array& AsArray();
  const Object& AsObject() const;
  Object& AsObject();

  /// Object member lookup; null when absent or when this is not an object.
  const JsonValue* Find(std::string_view key) const;

  /// Appends/overwrites an object member (this must be an object).
  void Set(std::string_view key, JsonValue value);
  /// Appends an array element (this must be an array).
  void Append(JsonValue value);

  /// Deep structural equality (object member *order* is ignored; numbers
  /// compare exactly as doubles).
  friend bool operator==(const JsonValue& a, const JsonValue& b);
  friend bool operator!=(const JsonValue& a, const JsonValue& b) {
    return !(a == b);
  }

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      value_;
};

struct JsonParseOptions {
  /// Maximum array/object nesting; guards the recursive parser against
  /// stack overflow on adversarial input (same discipline as the XPath
  /// parser's depth cap).
  size_t max_depth = 64;
};

/// Parses one JSON document. The whole input must be consumed (trailing
/// non-whitespace is an error); errors carry a line:column position.
Result<JsonValue> ParseJson(std::string_view text,
                            const JsonParseOptions& options = {});

/// Compact serialization (no insignificant whitespace). Integral numbers
/// print without a decimal point; non-finite numbers CHECK (JSON cannot
/// represent them, and no spec field should produce one).
std::string WriteJson(const JsonValue& value);

/// Indented serialization for files meant to be read and edited by humans
/// (the checked-in workload specs).
std::string WriteJsonPretty(const JsonValue& value, int indent = 2);

/// Declarative field extraction for config-object parsing with strict
/// schemas: every getter marks its key consumed, records the first type or
/// range violation, and Finish() rejects keys nobody consumed — so a typo
/// in a spec file is an error, never a silently-ignored knob. Getters are
/// all "optional with default": they leave *out untouched when the key is
/// absent, which lets the option structs carry the defaults.
///
///   JsonObjectReader reader(json, "phases[0]");
///   reader.Size("workers", &spec.workers);
///   reader.Fraction("wildcard_prob", &options.wildcard_prob);
///   if (Status s = reader.Finish(); !s.ok()) return s;
class JsonObjectReader {
 public:
  /// `value` must outlive the reader. `context` prefixes error messages
  /// ("generator.pattern: ..."); empty for top-level objects. A non-object
  /// value is itself recorded as an error.
  JsonObjectReader(const JsonValue& value, std::string context);

  void Bool(std::string_view key, bool* out);
  /// Any finite number.
  void Double(std::string_view key, double* out);
  /// Number in [0, 1].
  void Fraction(std::string_view key, double* out);
  /// Non-negative number (rates, durations).
  void NonNegative(std::string_view key, double* out);
  /// Non-negative integer (counts, sizes, ids).
  void Size(std::string_view key, size_t* out);
  void U64(std::string_view key, uint64_t* out);
  void String(std::string_view key, std::string* out);

  /// Marks `key` consumed and returns its value, or null when absent (or
  /// when the reader is not over an object). For nested objects/arrays
  /// whose parsing the caller owns.
  const JsonValue* Child(std::string_view key);

  /// Records a custom validation error against this reader's context.
  void RecordError(const std::string& message);

  /// The accumulated verdict: the first recorded error, or an
  /// unknown-key error if any member was never consumed, else OK.
  Status Finish();

 private:
  const JsonValue* Consume(std::string_view key);
  void Number(std::string_view key, double min, double max, double* out);

  const JsonValue& value_;
  std::string context_;
  std::vector<std::string> consumed_;
  Status first_error_;
};

}  // namespace xmlup

#endif  // XMLUP_COMMON_JSON_H_
