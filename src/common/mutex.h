#ifndef XMLUP_COMMON_MUTEX_H_
#define XMLUP_COMMON_MUTEX_H_

// The one place in src/ allowed to name the std synchronization
// primitives directly (scripts/check_concurrency.py enforces this):
// everything else locks through the annotated wrappers below so the Clang
// thread-safety analysis — and the CI leg that runs it with -Werror — can
// prove the lock discipline instead of trusting it.
#include <condition_variable>  // concurrency-ok: wrapped by CondVar below
#include <mutex>               // concurrency-ok: wrapped by Mutex below

#include "common/thread_annotations.h"

namespace xmlup {

/// An annotated std::mutex. Fields it protects carry
/// XMLUP_GUARDED_BY(mu_), functions that run under it carry
/// XMLUP_REQUIRES(mu_); a Clang `-Wthread-safety` build then rejects any
/// unlocked access at compile time. Same semantics and cost as std::mutex
/// (the wrapper is two inline calls).
class XMLUP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() XMLUP_ACQUIRE() { mu_.lock(); }
  void Unlock() XMLUP_RELEASE() { mu_.unlock(); }
  bool TryLock() XMLUP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock over a Mutex — the annotated std::lock_guard. Scoped
/// acquisition is the only idiom the codebase uses (no manual
/// Lock/Unlock pairs outside this header).
class XMLUP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) XMLUP_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() XMLUP_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with Mutex. Wait atomically releases the
/// mutex and reacquires it before returning; the XMLUP_REQUIRES
/// annotation models the caller-visible contract (held on entry, held on
/// return) — the release/reacquire inside the wait is invisible to the
/// analysis, exactly as with std::condition_variable and unique_lock.
///
/// Waits take no predicate: spurious wakeups make the `while (!ready)
/// Wait(mu);` loop mandatory at the call site, and keeping the condition
/// in caller code lets the analysis check the guarded reads in the loop
/// condition (a predicate lambda would be analyzed as an unlocked
/// context).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (or spuriously woken). `mu` must be held.
  void Wait(Mutex& mu) XMLUP_REQUIRES(mu) {
    // Adopt the already-held mutex for the wait protocol, then release
    // the unique_lock's ownership claim so the scope exit does not
    // double-unlock: the mutex is held again when wait returns, and the
    // caller's MutexLock still owns it.
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace xmlup

#endif  // XMLUP_COMMON_MUTEX_H_
