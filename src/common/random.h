#ifndef XMLUP_COMMON_RANDOM_H_
#define XMLUP_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace xmlup {

/// A small, fast, deterministic PRNG (xoshiro256**). Workload generators and
/// property tests seed this explicitly so every run is reproducible; the
/// library never draws entropy from the environment.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be positive.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool NextBool(double p);

  /// Selects an index in [0, weights.size()) with probability proportional
  /// to its weight. Requires at least one positive weight.
  size_t NextWeighted(const std::vector<double>& weights);

 private:
  uint64_t state_[4];
};

}  // namespace xmlup

#endif  // XMLUP_COMMON_RANDOM_H_
