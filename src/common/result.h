#ifndef XMLUP_COMMON_RESULT_H_
#define XMLUP_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "common/check.h"
#include "common/status.h"

namespace xmlup {

/// A value-or-Status holder, modeled after arrow::Result. A Result is either
/// a value of type T or a non-OK Status; constructing a Result from an OK
/// Status is a programming error.
template <typename T>
class Result {
 public:
  /// Constructs a Result holding a value.
  Result(T value) : state_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a Result holding an error. `status` must not be OK.
  Result(Status status)  // NOLINT(runtime/explicit)
      : state_(std::move(status)) {
    XMLUP_DCHECK(!std::get<Status>(state_).ok())
        << "Result constructed from OK status";
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(state_); }

  /// Returns the error status (OK if the Result holds a value).
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(state_);
  }

  /// Accessors require ok(); checked in debug builds.
  const T& value() const& {
    XMLUP_DCHECK(ok()) << "Result::value() on error: " << status();
    return std::get<T>(state_);
  }
  T& value() & {
    XMLUP_DCHECK(ok()) << "Result::value() on error: " << status();
    return std::get<T>(state_);
  }
  T&& value() && {
    XMLUP_DCHECK(ok()) << "Result::value() on error: " << status();
    return std::get<T>(std::move(state_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> state_;
};

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error Status to the caller.
#define XMLUP_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#define XMLUP_ASSIGN_OR_RETURN(lhs, expr) \
  XMLUP_ASSIGN_OR_RETURN_IMPL(            \
      XMLUP_CONCAT_(_xmlup_result_, __LINE__), lhs, expr)

#define XMLUP_CONCAT_INNER_(a, b) a##b
#define XMLUP_CONCAT_(a, b) XMLUP_CONCAT_INNER_(a, b)

}  // namespace xmlup

#endif  // XMLUP_COMMON_RESULT_H_
