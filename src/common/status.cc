#include "common/status.h"

namespace xmlup {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result(StatusCodeToString(code_));
  result += ": ";
  result += message_;
  return result;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace xmlup
