#ifndef XMLUP_COMMON_STATUS_H_
#define XMLUP_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace xmlup {

/// Error categories used across the library. Kept deliberately small: the
/// library is exception-free (Google style), so every fallible operation
/// returns a Status or a Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kParseError = 2,
  kNotFound = 3,
  kOutOfRange = 4,
  kResourceExhausted = 5,
  kInternal = 6,
  kUnimplemented = 7,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value, modeled after the Status types used
/// by Arrow and RocksDB. Ok statuses carry no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status ParseError(std::string message) {
    return Status(StatusCode::kParseError, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status Unimplemented(std::string message) {
    return Status(StatusCode::kUnimplemented, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates a non-OK Status from an expression to the caller.
#define XMLUP_RETURN_NOT_OK(expr)                \
  do {                                           \
    ::xmlup::Status _st = (expr);                \
    if (!_st.ok()) return _st;                   \
  } while (false)

}  // namespace xmlup

#endif  // XMLUP_COMMON_STATUS_H_
