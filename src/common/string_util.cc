#include "common/string_util.h"

namespace xmlup {

std::vector<std::string_view> Split(std::string_view input, char sep) {
  std::vector<std::string_view> pieces;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == sep) {
      pieces.push_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return pieces;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string result;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) result.append(sep);
    result.append(pieces[i]);
  }
  return result;
}

std::string_view StripWhitespace(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  };
  while (begin < end && is_space(input[begin])) ++begin;
  while (end > begin && is_space(input[end - 1])) --end;
  return input.substr(begin, end - begin);
}

bool StartsWith(std::string_view input, std::string_view prefix) {
  return input.size() >= prefix.size() &&
         input.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view input, std::string_view suffix) {
  return input.size() >= suffix.size() &&
         input.substr(input.size() - suffix.size()) == suffix;
}

std::string XmlEscape(std::string_view input) {
  std::string out;
  out.reserve(input.size());
  for (char c : input) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string JsonEscape(std::string_view input) {
  static const char* const kHex = "0123456789abcdef";
  std::string out;
  out.reserve(input.size());
  for (char c : input) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += "\\u00";
          out += kHex[(c >> 4) & 0xF];
          out += kHex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace xmlup
