#ifndef XMLUP_COMMON_STRING_UTIL_H_
#define XMLUP_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace xmlup {

/// Splits `input` on `sep`, keeping empty pieces.
std::vector<std::string_view> Split(std::string_view input, char sep);

/// Joins pieces with `sep`.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view input);

/// True if `input` starts with / ends with the given prefix or suffix.
bool StartsWith(std::string_view input, std::string_view prefix);
bool EndsWith(std::string_view input, std::string_view suffix);

/// Escapes the five XML special characters (& < > " ') for text content.
std::string XmlEscape(std::string_view input);

/// Escapes a string for embedding in a JSON string literal: backslash,
/// double quote, and control characters (as \uXXXX or the short forms).
std::string JsonEscape(std::string_view input);

}  // namespace xmlup

#endif  // XMLUP_COMMON_STRING_UTIL_H_
