#ifndef XMLUP_COMMON_THREAD_ANNOTATIONS_H_
#define XMLUP_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis attributes, so the compiler proves lock
/// discipline instead of reviewers re-deriving it: which mutex guards which
/// field (XMLUP_GUARDED_BY), which functions must / must not hold a lock
/// (XMLUP_REQUIRES / XMLUP_EXCLUDES), and which functions acquire or
/// release one (XMLUP_ACQUIRE / XMLUP_RELEASE). The annotated capability
/// types live in common/mutex.h; a build with `-Wthread-safety` (the CI
/// thread-safety leg runs it with -Werror) then rejects any access to a
/// guarded field outside its lock.
///
/// On compilers without the attributes (GCC, MSVC) every macro expands to
/// nothing, so annotated headers stay portable. Analysis macro reference:
/// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#if defined(__clang__) && defined(__has_attribute)
#define XMLUP_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define XMLUP_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

/// Declares a type to be a capability (lockable). The string names the
/// capability kind in diagnostics ("mutex").
#define XMLUP_CAPABILITY(x) XMLUP_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII type whose constructor acquires and destructor
/// releases a capability (MutexLock).
#define XMLUP_SCOPED_CAPABILITY XMLUP_THREAD_ANNOTATION_(scoped_lockable)

/// Data members: readable/writable only while holding `x`.
#define XMLUP_GUARDED_BY(x) XMLUP_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer members: the pointed-to data (not the pointer itself) is only
/// accessible while holding `x`.
#define XMLUP_PT_GUARDED_BY(x) XMLUP_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Functions: caller must hold the capability (exclusively) on entry, and
/// the function neither acquires nor releases it.
#define XMLUP_REQUIRES(...) \
  XMLUP_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Functions: caller must NOT hold the capability — the function acquires
/// it itself (deadlock-by-re-entry is a compile error at annotated sites).
#define XMLUP_EXCLUDES(...) \
  XMLUP_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Functions that acquire / release a capability and hold it across the
/// call boundary (Mutex::Lock / Mutex::Unlock, MutexLock's ctor/dtor).
#define XMLUP_ACQUIRE(...) \
  XMLUP_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define XMLUP_RELEASE(...) \
  XMLUP_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Functions that acquire the capability iff they return `b`.
#define XMLUP_TRY_ACQUIRE(b, ...) \
  XMLUP_THREAD_ANNOTATION_(try_acquire_capability(b, __VA_ARGS__))

/// Documents lock-ordering constraints between mutexes (deadlock checking
/// with -Wthread-safety-beta; inert under plain -Wthread-safety).
#define XMLUP_ACQUIRED_BEFORE(...) \
  XMLUP_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define XMLUP_ACQUIRED_AFTER(...) \
  XMLUP_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Functions returning a reference to a capability-guarded field.
#define XMLUP_RETURN_CAPABILITY(x) \
  XMLUP_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch for functions whose locking is correct but inexpressible
/// (e.g. locks handed across threads). Every use needs a comment saying
/// why the analysis cannot see the invariant.
#define XMLUP_NO_THREAD_SAFETY_ANALYSIS \
  XMLUP_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // XMLUP_COMMON_THREAD_ANNOTATIONS_H_
