#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"

#if defined(__linux__)
#include <sched.h>
#endif

namespace xmlup {
namespace {

/// Pool observability: tasks executed, current queue depth, and per-task
/// wall time. The queue_depth gauge is process-global while pools are not,
/// so it is maintained with deltas (+1 on enqueue, -1 on dequeue, under
/// each pool's own mutex): the aggregate is the true total queued across
/// all live pools, where a per-pool Set() would let concurrent pools
/// overwrite each other. The histogram is per *task*, which for
/// ParallelFor means per worker-sized stealing loop, not per iteration.
struct PoolMetrics {
  obs::Counter& tasks;
  obs::Gauge& queue_depth;
  obs::Histogram& task_us;

  static const PoolMetrics& Get() {
    static const PoolMetrics* const metrics = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
      return new PoolMetrics{
          reg.GetCounter("thread_pool.tasks"),
          reg.GetGauge("thread_pool.queue_depth"),
          reg.GetHistogram("thread_pool.task_us"),
      };
    }();
    return *metrics;
  }
};

void RunTimed(const std::function<void()>& task) {
  const PoolMetrics& metrics = PoolMetrics::Get();
  metrics.tasks.Increment();
  obs::ScopedTimer timer(&metrics.task_us);
  task();
}

/// True on threads executing a pool's WorkerLoop. Guards against nested
/// blocking constructs: a ParallelFor issued from inside a worker would
/// Wait() on the very pool that is running it — with all workers doing the
/// same, nobody drains the queue and the pool deadlocks.
thread_local bool t_in_pool_worker = false;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads <= 1) return;  // inline mode
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutting_down_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    RunTimed(task);
    return;
  }
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
    PoolMetrics::Get().queue_depth.Add(1);
  }
  work_available_.NotifyOne();
}

void ThreadPool::Wait() {
  if (workers_.empty()) return;
  MutexLock lock(mu_);
  while (in_flight_ != 0) all_done_.Wait(mu_);
}

void ThreadPool::WorkerLoop() {
  t_in_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutting_down_ && queue_.empty()) work_available_.Wait(mu_);
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      PoolMetrics::Get().queue_depth.Add(-1);
    }
    RunTimed(task);
    {
      MutexLock lock(mu_);
      if (--in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

bool ThreadPool::OnWorkerThread() { return t_in_pool_worker; }

size_t ThreadPool::DefaultThreadCount() {
#if defined(__linux__)
  // hardware_concurrency() reports host cores even inside cpuset-limited
  // containers (CI cgroups), which oversubscribes the pool; the affinity
  // mask is what the scheduler will actually grant us. (CFS quota limits
  // are invisible to both — the mask is still the better of the two.)
  cpu_set_t mask;
  if (sched_getaffinity(0, sizeof(mask), &mask) == 0) {
    const int allowed = CPU_COUNT(&mask);
    if (allowed > 0) {
      const unsigned hw = std::thread::hardware_concurrency();
      return hw == 0 ? static_cast<size_t>(allowed)
                     : std::min(static_cast<size_t>(allowed),
                                static_cast<size_t>(hw));
    }
  }
#endif
  return std::max(1u, std::thread::hardware_concurrency());
}

void ParallelFor(ThreadPool* pool, size_t count,
                 const std::function<void(size_t)>& body) {
  if (count == 0) return;
  if (pool == nullptr || pool->num_workers() == 0) {
    for (size_t i = 0; i < count; ++i) body(i);
    return;
  }
  // Nested ParallelFor from inside a pool worker is unsupported: Wait()
  // below would block a worker on work only workers can drain (deadlock
  // once every worker does it). Run the inner loop inline (null pool) or
  // restructure instead.
  XMLUP_DCHECK(!ThreadPool::OnWorkerThread())
      << "ParallelFor called from inside a ThreadPool worker";
  // Dynamic work stealing off a shared counter: tasks are cheap to skip,
  // so one submission per worker suffices and load-balances uneven items.
  auto next = std::make_shared<std::atomic<size_t>>(0);
  const size_t fan_out = std::min(pool->num_workers(), count);
  for (size_t w = 0; w < fan_out; ++w) {
    pool->Submit([next, count, &body] {
      // ordering: relaxed — fetch_add is only claiming a unique index;
      // the iteration's data is handed to the caller through pool Wait()
      // (the pool mutex), not through this counter.
      for (size_t i = next->fetch_add(1, std::memory_order_relaxed);
           i < count; i = next->fetch_add(1, std::memory_order_relaxed)) {
        body(i);
      }
    });
  }
  pool->Wait();
}

}  // namespace xmlup
