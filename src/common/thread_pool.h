#ifndef XMLUP_COMMON_THREAD_POOL_H_
#define XMLUP_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace xmlup {

/// A fixed-size pool of worker threads draining a FIFO task queue. Built
/// for the batch conflict engine: tasks are independent closures that
/// write their results into pre-assigned slots, so callers get
/// deterministic output regardless of scheduling.
///
/// `num_threads == 0` or `1` selects *inline* mode: no threads are
/// spawned and Submit runs the task on the calling thread. This makes a
/// 1-thread pool bit-for-bit reproducible and keeps the pool usable in
/// contexts where spawning is undesirable.
///
/// Tasks must not throw; an escaping exception terminates the process
/// (the codebase reports failures through Status/Result, never
/// exceptions).
///
/// Lock inventory: `mu_` guards the queue, the in-flight count and the
/// shutdown flag; both condition variables wait under it. Workers never
/// hold `mu_` while running a task, so tasks may take any other lock in
/// the system — `mu_` is a leaf in the lock order.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 in inline mode).
  size_t num_workers() const { return workers_.size(); }

  /// Enqueues `task`; in inline mode runs it immediately.
  void Submit(std::function<void()> task) XMLUP_EXCLUDES(mu_);

  /// Blocks until every task submitted so far has finished.
  void Wait() XMLUP_EXCLUDES(mu_);

  /// True on threads currently executing some ThreadPool's WorkerLoop.
  /// Blocking entry points that a pool task could reach re-entrantly
  /// (ParallelFor, the Engine's serialized calls) check this to fail fast
  /// instead of deadlocking on the pool they are running on.
  static bool OnWorkerThread();

  /// Threads this process can actually run in parallel, with a floor of
  /// 1: the scheduler affinity mask on Linux (correct inside
  /// cpuset-limited containers, where hardware_concurrency() reports host
  /// cores), capped by / falling back to hardware_concurrency elsewhere.
  static size_t DefaultThreadCount();

 private:
  void WorkerLoop();

  Mutex mu_;
  CondVar work_available_;
  CondVar all_done_;
  std::deque<std::function<void()>> queue_ XMLUP_GUARDED_BY(mu_);
  /// Queued + currently executing.
  size_t in_flight_ XMLUP_GUARDED_BY(mu_) = 0;
  bool shutting_down_ XMLUP_GUARDED_BY(mu_) = false;
  /// Written only by the constructor, before any worker (or any other
  /// thread) can observe the pool; const thereafter, so reads (join,
  /// num_workers) need no lock.
  std::vector<std::thread> workers_;
};

/// Runs `body(i)` for every i in [0, count), distributing iterations over
/// `pool` (or inline when `pool` is null or has no workers), and blocks
/// until all iterations complete. Iterations must be independent.
/// `count == 0` returns immediately without touching the pool. Calling
/// ParallelFor on a pool from inside that (or any) pool's worker is
/// unsupported — Wait() would deadlock — and DCHECK-fails in debug
/// builds; pass a null pool to run nested loops inline instead.
void ParallelFor(ThreadPool* pool, size_t count,
                 const std::function<void(size_t)>& body);

}  // namespace xmlup

#endif  // XMLUP_COMMON_THREAD_POOL_H_
