#include "conflict/batch_detector.h"

#include <utility>

#include "conflict/minimize.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "obs/trace.h"
#include "pattern/pattern_ops.h"
#include "xml/isomorphism.h"

namespace xmlup {
namespace {

/// Batch-engine observability: cache traffic, job counts, and per-job
/// solve timings (the per-worker task histogram the pool itself cannot
/// attribute to the batch workload).
struct BatchMetrics {
  obs::Counter& pairs_total;
  obs::Counter& cache_hits;
  obs::Counter& cache_misses;
  obs::Histogram& solve_pair_us;

  static const BatchMetrics& Get() {
    static const BatchMetrics* const metrics = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
      return new BatchMetrics{
          reg.GetCounter("batch.pairs_total"),
          reg.GetCounter("batch.cache_hits"),
          reg.GetCounter("batch.cache_misses"),
          reg.GetHistogram("batch.solve_pair_us"),
      };
    }();
    return *metrics;
  }
};

/// Options that can change a verdict (Unknowns depend on the search
/// budget) are folded into the cache key, so one engine reconfigured via
/// a new instance never aliases another's entries.
std::string OptionsSuffix(const DetectorOptions& options) {
  std::string s = "#";
  s += std::to_string(static_cast<int>(options.semantics));
  s += ',';
  s += std::to_string(static_cast<int>(options.matcher));
  s += ',';
  s += std::to_string(options.search.max_nodes);
  s += ',';
  s += std::to_string(options.search.extra_labels);
  s += ',';
  s += std::to_string(options.search.max_trees);
  return s;
}

std::string PairKey(const std::string& read_code,
                    const UpdateOp::Kind kind,
                    const std::string& update_code,
                    const std::string& content_code,
                    const std::string& options_suffix) {
  std::string key = kind == UpdateOp::Kind::kInsert ? "I" : "D";
  key += read_code;
  key += '|';
  key += update_code;
  key += '|';
  key += content_code;
  key += options_suffix;
  return key;
}

/// One job = one unified-facade call on the canonicalized pair.
Result<ConflictReport> SolvePair(const Pattern& read, const UpdateOp& update,
                                 const Pattern& update_pattern,
                                 const DetectorOptions& options) {
  if (update.kind() == UpdateOp::Kind::kInsert) {
    return Detect(read,
                  UpdateOp::MakeInsert(update_pattern,
                                       update.shared_content()),
                  options);
  }
  XMLUP_ASSIGN_OR_RETURN(UpdateOp canonical,
                         UpdateOp::MakeDelete(update_pattern));
  return Detect(read, canonical, options);
}

}  // namespace

BatchConflictDetector::BatchConflictDetector(BatchDetectorOptions options)
    : options_(options) {
  const size_t threads = options_.num_threads == 0
                             ? ThreadPool::DefaultThreadCount()
                             : options_.num_threads;
  pool_ = std::make_unique<ThreadPool>(threads);
}

void BatchConflictDetector::ClearCache() { cache_.clear(); }

std::string BatchConflictDetector::CacheKey(const Pattern& read,
                                            const UpdateOp& update) const {
  const Pattern read_canonical =
      options_.minimize_patterns ? MinimizePattern(read) : read;
  const Pattern update_canonical =
      options_.minimize_patterns ? MinimizePattern(update.pattern())
                                 : update.pattern();
  return PairKey(CanonicalPatternCode(read_canonical), update.kind(),
                 CanonicalPatternCode(update_canonical),
                 update.kind() == UpdateOp::Kind::kInsert
                     ? CanonicalCode(update.content())
                     : std::string(),
                 OptionsSuffix(options_.detector));
}

std::vector<SharedConflictResult> BatchConflictDetector::DetectMatrix(
    const std::vector<Pattern>& reads, const std::vector<UpdateOp>& updates) {
  std::vector<ReadUpdatePair> pairs;
  pairs.reserve(reads.size() * updates.size());
  for (size_t i = 0; i < reads.size(); ++i) {
    for (size_t j = 0; j < updates.size(); ++j) {
      pairs.push_back({i, j});
    }
  }
  return DetectPairs(reads, updates, pairs);
}

std::vector<SharedConflictResult> BatchConflictDetector::DetectPairs(
    const std::vector<Pattern>& reads, const std::vector<UpdateOp>& updates,
    const std::vector<ReadUpdatePair>& pairs) {
  const BatchMetrics& metrics = BatchMetrics::Get();
  obs::TraceRecorder& recorder = obs::TraceRecorder::Default();
  obs::TraceSpan batch_span(recorder, "BatchDetectPairs");
  stats_.pairs_total += pairs.size();
  metrics.pairs_total.Increment(pairs.size());

  // Phase 1 — canonicalize every input once, in parallel. Minimization
  // (a quadratic homomorphism fixpoint) is the expensive part; a pattern
  // repeated across many pairs is minimized exactly once.
  const size_t n_reads = reads.size();
  const size_t n_updates = updates.size();
  std::vector<Pattern> canonical_reads;
  std::vector<Pattern> canonical_update_patterns;
  canonical_reads.reserve(n_reads);
  canonical_update_patterns.reserve(n_updates);
  for (const Pattern& read : reads) canonical_reads.push_back(read);
  for (const UpdateOp& update : updates) {
    canonical_update_patterns.push_back(update.pattern());
  }
  std::vector<std::string> read_codes(n_reads);
  std::vector<std::string> update_codes(n_updates);
  std::vector<std::string> content_codes(n_updates);
  {
    obs::TraceSpan phase_span(recorder, "batch.canonicalize");
    ParallelFor(pool_.get(), n_reads + n_updates, [&](size_t index) {
      if (index < n_reads) {
        if (options_.minimize_patterns) {
          canonical_reads[index] = MinimizePattern(canonical_reads[index]);
        }
        read_codes[index] = CanonicalPatternCode(canonical_reads[index]);
        return;
      }
      const size_t j = index - n_reads;
      if (options_.minimize_patterns) {
        canonical_update_patterns[j] =
            MinimizePattern(canonical_update_patterns[j]);
      }
      update_codes[j] = CanonicalPatternCode(canonical_update_patterns[j]);
      if (updates[j].kind() == UpdateOp::Kind::kInsert) {
        content_codes[j] = CanonicalCode(updates[j].content());
      }
    });
  }

  // Phase 2 — resolve each pair against the cache (sequential, in pair
  // order, so job creation order is deterministic). With the cache
  // disabled every pair becomes its own job: no dedup, honest baseline.
  struct Job {
    std::string key;
    size_t read_index;
    size_t update_index;
    SharedConflictResult result;
  };
  const std::string options_suffix = OptionsSuffix(options_.detector);
  std::vector<Job> jobs;
  std::unordered_map<std::string, size_t> job_by_key;
  std::vector<SharedConflictResult> out(pairs.size());
  // pending[k] is the job that will fill out[k] (kNone if already filled).
  constexpr size_t kNone = static_cast<size_t>(-1);
  std::vector<size_t> pending(pairs.size(), kNone);
  uint64_t hits_this_call = 0;
  for (size_t k = 0; k < pairs.size(); ++k) {
    const size_t i = pairs[k].read_index;
    const size_t j = pairs[k].update_index;
    XMLUP_CHECK(i < n_reads && j < n_updates);
    std::string key = PairKey(read_codes[i], updates[j].kind(),
                              update_codes[j], content_codes[j],
                              options_suffix);
    if (options_.enable_cache) {
      auto cached = cache_.find(key);
      if (cached != cache_.end()) {
        out[k] = cached->second;
        ++hits_this_call;
        continue;
      }
      auto [it, inserted] = job_by_key.emplace(std::move(key), jobs.size());
      if (!inserted) {
        pending[k] = it->second;
        ++hits_this_call;
        continue;
      }
      jobs.push_back({it->first, i, j, nullptr});
    } else {
      jobs.push_back({std::move(key), i, j, nullptr});
    }
    pending[k] = jobs.size() - 1;
  }
  stats_.cache_hits += hits_this_call;
  stats_.cache_misses += jobs.size();
  stats_.unique_pairs_solved += jobs.size();
  metrics.cache_hits.Increment(hits_this_call);
  metrics.cache_misses.Increment(jobs.size());
  // Accounting invariant: every requested pair was either served by the
  // cache (or deduped onto an in-flight job) or became a job of its own.
  XMLUP_CHECK(hits_this_call + jobs.size() == pairs.size());
  XMLUP_CHECK(stats_.cache_hits + stats_.cache_misses == stats_.pairs_total);

  // Phase 3 — solve every job on the pool. Each job writes only its own
  // slot, so the result layout is independent of scheduling. Trace spans
  // are buffered per job and merged once after the pool drains — except in
  // inline mode (num_threads <= 1, no workers), where everything already
  // runs on the calling thread in order, so per-worker span merging is
  // skipped and events are recorded directly.
  const bool inline_mode = pool_->num_workers() == 0;
  const bool tracing = recorder.enabled();
  std::vector<obs::TraceEvent> job_events(
      tracing && !inline_mode ? jobs.size() : 0);
  {
    obs::TraceSpan phase_span(recorder, "batch.solve");
    ParallelFor(pool_.get(), jobs.size(), [&](size_t index) {
      Job& job = jobs[index];
      const uint64_t start_us = tracing ? recorder.NowMicros() : 0;
      obs::ScopedTimer job_timer(&metrics.solve_pair_us);
      job.result = std::make_shared<const Result<ConflictReport>>(
          SolvePair(canonical_reads[job.read_index], updates[job.update_index],
                    canonical_update_patterns[job.update_index],
                    options_.detector));
      if (!tracing) return;
      obs::TraceEvent event;
      event.name = "batch.solve_pair";
      event.start_us = start_us;
      event.dur_us = recorder.NowMicros() - start_us;
      event.tid = obs::CurrentThreadId();
      if (inline_mode) {
        recorder.Record(event);
      } else {
        job_events[index] = event;
      }
    });
  }
  if (tracing && !inline_mode) {
    recorder.MergeThreadEvents(std::move(job_events));
  }

  // Phase 4 — publish to the cache (deterministic job order) and scatter
  // shared results to every requesting pair.
  if (options_.enable_cache) {
    for (const Job& job : jobs) cache_.emplace(job.key, job.result);
  }
  for (size_t k = 0; k < pairs.size(); ++k) {
    if (pending[k] != kNone) out[k] = jobs[pending[k]].result;
  }
  return out;
}

}  // namespace xmlup
