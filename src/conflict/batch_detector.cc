#include "conflict/batch_detector.h"

#include <utility>

#include "conflict/minimize.h"
#include "pattern/pattern_ops.h"
#include "xml/isomorphism.h"

namespace xmlup {
namespace {

/// Options that can change a verdict (Unknowns depend on the search
/// budget) are folded into the cache key, so one engine reconfigured via
/// a new instance never aliases another's entries.
std::string OptionsSuffix(const DetectorOptions& options) {
  std::string s = "#";
  s += std::to_string(static_cast<int>(options.semantics));
  s += ',';
  s += std::to_string(static_cast<int>(options.matcher));
  s += ',';
  s += std::to_string(options.search.max_nodes);
  s += ',';
  s += std::to_string(options.search.extra_labels);
  s += ',';
  s += std::to_string(options.search.max_trees);
  return s;
}

std::string PairKey(const std::string& read_code,
                    const UpdateOp::Kind kind,
                    const std::string& update_code,
                    const std::string& content_code,
                    const std::string& options_suffix) {
  std::string key = kind == UpdateOp::Kind::kInsert ? "I" : "D";
  key += read_code;
  key += '|';
  key += update_code;
  key += '|';
  key += content_code;
  key += options_suffix;
  return key;
}

Result<ConflictReport> SolvePair(const Pattern& read, const UpdateOp& update,
                                 const Pattern& update_pattern,
                                 const DetectorOptions& options) {
  if (update.kind() == UpdateOp::Kind::kInsert) {
    return DetectReadInsert(read, update_pattern, update.content(), options);
  }
  return DetectReadDelete(read, update_pattern, options);
}

}  // namespace

BatchConflictDetector::BatchConflictDetector(BatchDetectorOptions options)
    : options_(options) {
  const size_t threads = options_.num_threads == 0
                             ? ThreadPool::DefaultThreadCount()
                             : options_.num_threads;
  pool_ = std::make_unique<ThreadPool>(threads);
}

void BatchConflictDetector::ClearCache() { cache_.clear(); }

std::string BatchConflictDetector::CacheKey(const Pattern& read,
                                            const UpdateOp& update) const {
  const Pattern read_canonical =
      options_.minimize_patterns ? MinimizePattern(read) : read;
  const Pattern update_canonical =
      options_.minimize_patterns ? MinimizePattern(update.pattern())
                                 : update.pattern();
  return PairKey(CanonicalPatternCode(read_canonical), update.kind(),
                 CanonicalPatternCode(update_canonical),
                 update.kind() == UpdateOp::Kind::kInsert
                     ? CanonicalCode(update.content())
                     : std::string(),
                 OptionsSuffix(options_.detector));
}

std::vector<SharedConflictResult> BatchConflictDetector::DetectMatrix(
    const std::vector<Pattern>& reads, const std::vector<UpdateOp>& updates) {
  std::vector<ReadUpdatePair> pairs;
  pairs.reserve(reads.size() * updates.size());
  for (size_t i = 0; i < reads.size(); ++i) {
    for (size_t j = 0; j < updates.size(); ++j) {
      pairs.push_back({i, j});
    }
  }
  return DetectPairs(reads, updates, pairs);
}

std::vector<SharedConflictResult> BatchConflictDetector::DetectPairs(
    const std::vector<Pattern>& reads, const std::vector<UpdateOp>& updates,
    const std::vector<ReadUpdatePair>& pairs) {
  stats_.pairs_total += pairs.size();

  // Phase 1 — canonicalize every input once, in parallel. Minimization
  // (a quadratic homomorphism fixpoint) is the expensive part; a pattern
  // repeated across many pairs is minimized exactly once.
  const size_t n_reads = reads.size();
  const size_t n_updates = updates.size();
  std::vector<Pattern> canonical_reads;
  std::vector<Pattern> canonical_update_patterns;
  canonical_reads.reserve(n_reads);
  canonical_update_patterns.reserve(n_updates);
  for (const Pattern& read : reads) canonical_reads.push_back(read);
  for (const UpdateOp& update : updates) {
    canonical_update_patterns.push_back(update.pattern());
  }
  std::vector<std::string> read_codes(n_reads);
  std::vector<std::string> update_codes(n_updates);
  std::vector<std::string> content_codes(n_updates);
  ParallelFor(pool_.get(), n_reads + n_updates, [&](size_t index) {
    if (index < n_reads) {
      if (options_.minimize_patterns) {
        canonical_reads[index] = MinimizePattern(canonical_reads[index]);
      }
      read_codes[index] = CanonicalPatternCode(canonical_reads[index]);
      return;
    }
    const size_t j = index - n_reads;
    if (options_.minimize_patterns) {
      canonical_update_patterns[j] =
          MinimizePattern(canonical_update_patterns[j]);
    }
    update_codes[j] = CanonicalPatternCode(canonical_update_patterns[j]);
    if (updates[j].kind() == UpdateOp::Kind::kInsert) {
      content_codes[j] = CanonicalCode(updates[j].content());
    }
  });

  // Phase 2 — resolve each pair against the cache (sequential, in pair
  // order, so job creation order is deterministic). With the cache
  // disabled every pair becomes its own job: no dedup, honest baseline.
  struct Job {
    std::string key;
    size_t read_index;
    size_t update_index;
    SharedConflictResult result;
  };
  const std::string options_suffix = OptionsSuffix(options_.detector);
  std::vector<Job> jobs;
  std::unordered_map<std::string, size_t> job_by_key;
  std::vector<SharedConflictResult> out(pairs.size());
  // pending[k] is the job that will fill out[k] (kNone if already filled).
  constexpr size_t kNone = static_cast<size_t>(-1);
  std::vector<size_t> pending(pairs.size(), kNone);
  for (size_t k = 0; k < pairs.size(); ++k) {
    const size_t i = pairs[k].read_index;
    const size_t j = pairs[k].update_index;
    XMLUP_CHECK(i < n_reads && j < n_updates);
    std::string key = PairKey(read_codes[i], updates[j].kind(),
                              update_codes[j], content_codes[j],
                              options_suffix);
    if (options_.enable_cache) {
      auto cached = cache_.find(key);
      if (cached != cache_.end()) {
        out[k] = cached->second;
        ++stats_.cache_hits;
        continue;
      }
      auto [it, inserted] = job_by_key.emplace(std::move(key), jobs.size());
      if (!inserted) {
        pending[k] = it->second;
        ++stats_.cache_hits;
        continue;
      }
      jobs.push_back({it->first, i, j, nullptr});
    } else {
      jobs.push_back({std::move(key), i, j, nullptr});
    }
    pending[k] = jobs.size() - 1;
  }
  stats_.unique_pairs_solved += jobs.size();

  // Phase 3 — solve every job on the pool. Each job writes only its own
  // slot, so the result layout is independent of scheduling.
  ParallelFor(pool_.get(), jobs.size(), [&](size_t index) {
    Job& job = jobs[index];
    job.result = std::make_shared<const Result<ConflictReport>>(
        SolvePair(canonical_reads[job.read_index], updates[job.update_index],
                  canonical_update_patterns[job.update_index],
                  options_.detector));
  });

  // Phase 4 — publish to the cache (deterministic job order) and scatter
  // shared results to every requesting pair.
  if (options_.enable_cache) {
    for (const Job& job : jobs) cache_.emplace(job.key, job.result);
  }
  for (size_t k = 0; k < pairs.size(); ++k) {
    if (pending[k] != kNone) out[k] = jobs[pending[k]].result;
  }
  return out;
}

}  // namespace xmlup
