#include "conflict/batch_detector.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "obs/trace.h"

namespace xmlup {
namespace {

/// Batch-engine observability: cache traffic, job counts, and per-job
/// solve timings (the per-worker task histogram the pool itself cannot
/// attribute to the batch workload).
struct BatchMetrics {
  obs::Counter& pairs_total;
  obs::Counter& cache_hits;
  obs::Counter& cache_misses;
  obs::Counter& cache_evictions;
  obs::Counter& type_pruned;
  obs::Histogram& solve_pair_us;

  static const BatchMetrics& Get() {
    static const BatchMetrics* const metrics = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
      return new BatchMetrics{
          reg.GetCounter("batch.pairs_total"),
          reg.GetCounter("batch.cache_hits"),
          reg.GetCounter("batch.cache_misses"),
          reg.GetCounter("batch.cache_evictions"),
          reg.GetCounter("batch.type_pruned"),
          reg.GetHistogram("batch.solve_pair_us"),
      };
    }();
    return *metrics;
  }
};

/// Total order on keys for deterministic LRU tie-breaking within one
/// generation (key ids are intern-order-dense, so this order is stable
/// across runs of the same workload).
bool KeyLess(const BatchPairKey& a, const BatchPairKey& b) {
  if (a.read_id != b.read_id) return a.read_id < b.read_id;
  if (a.update_id != b.update_id) return a.update_id < b.update_id;
  if (a.content_id != b.content_id) return a.content_id < b.content_id;
  return a.kind < b.kind;
}

/// One job = one ref-facade call on the canonicalized pair. The op is
/// re-bound to the engine's store so Detect takes the cached path —
/// compiled automata by ref, memoized products — and the matrix pays zero
/// per-pair compilation. The root-delete guard is re-checked by the
/// factory and by the facade (centralized in ValidateDeletePattern), so a
/// root-selecting delete cannot reach the detectors through this engine.
Result<ConflictReport> SolvePair(
    const std::shared_ptr<const PatternStore>& store, PatternRef read,
    const UpdateOp& update, PatternRef update_ref,
    const DetectorOptions& options) {
  if (update.kind() == UpdateOp::Kind::kInsert) {
    return Detect(*store, read,
                  UpdateOp::MakeInsert(store, update_ref,
                                       update.shared_content()),
                  options);
  }
  XMLUP_ASSIGN_OR_RETURN(UpdateOp canonical,
                         UpdateOp::MakeDelete(store, update_ref));
  return Detect(*store, read, canonical, options);
}

}  // namespace

BatchConflictDetector::BatchConflictDetector(BatchDetectorOptions options)
    : options_(std::move(options)) {
  store_ = options_.store != nullptr
               ? options_.store
               : std::make_shared<PatternStore>(
                     nullptr,
                     PatternStoreOptions{options_.minimize_patterns});
  const size_t threads = options_.num_threads == 0
                             ? ThreadPool::DefaultThreadCount()
                             : options_.num_threads;
  pool_ = std::make_unique<ThreadPool>(threads);
}

void BatchConflictDetector::ClearCache() { cache_.clear(); }

PatternRef BatchConflictDetector::UpdateRef(const UpdateOp& update) {
  if (update.pattern_store() == store_.get() && update.pattern_ref().valid()) {
    return update.pattern_ref();
  }
  return store_->Intern(update.pattern());
}

BatchPairKey BatchConflictDetector::CacheKey(const Pattern& read,
                                             const UpdateOp& update) {
  BatchPairKey key;
  key.read_id = store_->Intern(read).id();
  key.update_id = UpdateRef(update).id();
  key.kind = static_cast<uint8_t>(update.kind());
  if (update.kind() == UpdateOp::Kind::kInsert) {
    key.content_id = store_->InternContentCode(update.content());
  }
  return key;
}

std::vector<SharedConflictResult> BatchConflictDetector::DetectMatrix(
    const std::vector<Pattern>& reads, const std::vector<UpdateOp>& updates) {
  std::vector<ReadUpdatePair> pairs;
  pairs.reserve(reads.size() * updates.size());
  for (size_t i = 0; i < reads.size(); ++i) {
    for (size_t j = 0; j < updates.size(); ++j) {
      pairs.push_back({i, j});
    }
  }
  return DetectPairs(reads, updates, pairs);
}

std::vector<SharedConflictResult> BatchConflictDetector::DetectMatrix(
    const std::vector<PatternRef>& reads,
    const std::vector<UpdateOp>& updates) {
  std::vector<ReadUpdatePair> pairs;
  pairs.reserve(reads.size() * updates.size());
  for (size_t i = 0; i < reads.size(); ++i) {
    for (size_t j = 0; j < updates.size(); ++j) {
      pairs.push_back({i, j});
    }
  }
  return DetectPairs(reads, updates, pairs);
}

std::vector<SharedConflictResult> BatchConflictDetector::DetectPairs(
    const std::vector<Pattern>& reads, const std::vector<UpdateOp>& updates,
    const std::vector<ReadUpdatePair>& pairs) {
  // Intern-on-entry compatibility path. Interning is the only
  // canonicalization cost left, paid once per distinct pattern over the
  // *store's* lifetime — a pattern seen in an earlier call costs one code
  // build and a hash probe here, never a re-minimization.
  obs::TraceSpan span("batch.intern_reads");
  std::vector<PatternRef> read_refs(reads.size());
  ParallelFor(pool_.get(), reads.size(), [&](size_t i) {
    read_refs[i] = store_->Intern(reads[i]);
  });
  return DetectPairs(read_refs, updates, pairs);
}

std::vector<SharedConflictResult> BatchConflictDetector::DetectPairs(
    const std::vector<PatternRef>& reads, const std::vector<UpdateOp>& updates,
    const std::vector<ReadUpdatePair>& pairs) {
  // Single-caller tripwire (see active_calls_ in the header). RAII so the
  // count unwinds on every exit path.
  struct CallScope {
    explicit CallScope(std::atomic<int>& count) : count_(count) {
      // ordering: relaxed — a diagnostic counter, not synchronization; the
      // DCHECK turns a silent cross-thread overlap into a crash with a
      // message, and a racy interleaving it happens to miss was still a
      // contract violation TSan reports on cache_ itself.
      XMLUP_DCHECK(count_.fetch_add(1, std::memory_order_relaxed) == 0)
          << "BatchConflictDetector is single-caller: two threads are "
             "inside DetectPairs/DetectMatrix at once. Route concurrent "
             "batch work through Engine (which serializes on batch_mu_) "
             "or give each thread its own engine.";
    }
    // ordering: relaxed — see above.
    ~CallScope() { count_.fetch_sub(1, std::memory_order_relaxed); }
    std::atomic<int>& count_;
  } call_scope(active_calls_);
  const BatchMetrics& metrics = BatchMetrics::Get();
  obs::TraceRecorder& recorder = obs::TraceRecorder::Default();
  obs::TraceSpan batch_span(recorder, "BatchDetectPairs");
  ++generation_;
  stats_.pairs_total += pairs.size();
  metrics.pairs_total.Increment(pairs.size());

  // Phase 1 — intern every update once, in parallel (reads arrive as refs;
  // ops bound to this engine's store skip interning entirely). The store
  // memoizes minimization and canonical codes across calls, so this phase
  // does real work only for patterns the engine has never seen.
  const size_t n_reads = reads.size();
  const size_t n_updates = updates.size();
  std::vector<PatternRef> update_refs(n_updates);
  std::vector<uint32_t> content_ids(n_updates, 0);
  {
    obs::TraceSpan phase_span(recorder, "batch.canonicalize");
    ParallelFor(pool_.get(), n_updates, [&](size_t j) {
      update_refs[j] = UpdateRef(updates[j]);
      if (updates[j].kind() == UpdateOp::Kind::kInsert) {
        content_ids[j] = store_->InternContentCode(updates[j].content());
      }
    });
  }

  // Phase 2 — resolve each pair against the cache (sequential, in pair
  // order, so job creation order is deterministic). Keys are integer
  // tuples of store ids: building one is four register writes, probing the
  // map one integer hash. With the cache disabled every pair becomes its
  // own job: no dedup, honest baseline.
  struct Job {
    BatchPairKey key;
    size_t read_index;
    size_t update_index;
    SharedConflictResult result;
  };
  std::vector<Job> jobs;
  std::unordered_map<BatchPairKey, size_t, BatchPairKeyHash> job_by_key;
  std::vector<SharedConflictResult> out(pairs.size());
  // pending[k] is the job that will fill out[k] (kNone if already filled).
  constexpr size_t kNone = static_cast<size_t>(-1);
  std::vector<size_t> pending(pairs.size(), kNone);
  uint64_t hits_this_call = 0;
  uint64_t pruned_this_call = 0;
  // Stage 0 (type pruning) sits in front of the cache: a pruned pair never
  // becomes a job, so it can never have been published to the cache either
  // — probing first would always miss. All pruned pairs of a call share
  // one lazily-minted report object (the report's fields are fixed).
  const bool type_pruning = options_.detector.dtd != nullptr &&
                            options_.detector.enable_type_pruning;
  SharedConflictResult pruned_shared;
  for (size_t k = 0; k < pairs.size(); ++k) {
    const size_t i = pairs[k].read_index;
    const size_t j = pairs[k].update_index;
    XMLUP_CHECK(i < n_reads && j < n_updates);
    if (type_pruning) {
      const UpdateOp& update = updates[j];
      const Tree* content = update.kind() == UpdateOp::Kind::kInsert
                                ? &update.content()
                                : nullptr;
      if (std::optional<ConflictReport> pruned =
              TypePruneStage(*store_, reads[i], update.kind(), update_refs[j],
                             content, options_.detector)) {
        if (pruned_shared == nullptr) {
          pruned_shared = std::make_shared<const Result<ConflictReport>>(
              std::move(*pruned));
        }
        out[k] = pruned_shared;
        ++pruned_this_call;
        continue;
      }
    }
    const BatchPairKey key{reads[i].id(), update_refs[j].id(), content_ids[j],
                           static_cast<uint8_t>(updates[j].kind())};
    if (options_.enable_cache) {
      auto cached = cache_.find(key);
      if (cached != cache_.end()) {
        cached->second.generation = generation_;  // LRU recency stamp
        out[k] = cached->second.result;
        ++hits_this_call;
        continue;
      }
      auto [it, inserted] = job_by_key.emplace(key, jobs.size());
      if (!inserted) {
        pending[k] = it->second;
        ++hits_this_call;
        continue;
      }
      jobs.push_back({key, i, j, nullptr});
    } else {
      jobs.push_back({key, i, j, nullptr});
    }
    pending[k] = jobs.size() - 1;
  }
  stats_.cache_hits += hits_this_call;
  stats_.cache_misses += jobs.size();
  stats_.unique_pairs_solved += jobs.size();
  stats_.type_pruned += pruned_this_call;
  metrics.cache_hits.Increment(hits_this_call);
  metrics.cache_misses.Increment(jobs.size());
  metrics.type_pruned.Increment(pruned_this_call);
  // Accounting invariant: every requested pair was answered by Stage 0,
  // served by the cache (or deduped onto an in-flight job), or became a
  // job of its own.
  XMLUP_CHECK(hits_this_call + pruned_this_call + jobs.size() ==
              pairs.size());
  XMLUP_CHECK(stats_.cache_hits + stats_.cache_misses + stats_.type_pruned ==
              stats_.pairs_total);

  // Phase 3 — solve every job on the pool against the store's
  // pre-minimized forms. Each job writes only its own slot, so the result
  // layout is independent of scheduling. Trace spans are buffered per job
  // and merged once after the pool drains — except in inline mode
  // (num_threads <= 1, no workers), where everything already runs on the
  // calling thread in order, so per-worker span merging is skipped and
  // events are recorded directly.
  const bool inline_mode = pool_->num_workers() == 0;
  const bool tracing = recorder.enabled();
  std::vector<obs::TraceEvent> job_events(
      tracing && !inline_mode ? jobs.size() : 0);
  {
    obs::TraceSpan phase_span(recorder, "batch.solve");
    ParallelFor(pool_.get(), jobs.size(), [&](size_t index) {
      Job& job = jobs[index];
      const uint64_t start_us = tracing ? recorder.NowMicros() : 0;
      obs::ScopedTimer job_timer(&metrics.solve_pair_us);
      job.result = std::make_shared<const Result<ConflictReport>>(
          SolvePair(store_, reads[job.read_index], updates[job.update_index],
                    update_refs[job.update_index], options_.detector));
      if (!tracing) return;
      obs::TraceEvent event;
      event.name = "batch.solve_pair";
      event.start_us = start_us;
      event.dur_us = recorder.NowMicros() - start_us;
      event.tid = obs::CurrentThreadId();
      if (inline_mode) {
        recorder.Record(event);
      } else {
        job_events[index] = event;
      }
    });
  }
  if (tracing && !inline_mode) {
    recorder.MergeThreadEvents(std::move(job_events));
  }

  // Phase 4 — publish to the cache (deterministic job order), scatter
  // shared results to every requesting pair, then enforce the size bound.
  if (options_.enable_cache) {
    for (const Job& job : jobs) {
      cache_.emplace(job.key, CacheEntry{job.result, generation_});
    }
    EvictIfOverBound();
  }
  for (size_t k = 0; k < pairs.size(); ++k) {
    if (pending[k] != kNone) out[k] = jobs[pending[k]].result;
  }
  return out;
}

void BatchConflictDetector::EvictIfOverBound() {
  const size_t bound = options_.max_cache_entries;
  if (bound == 0 || cache_.size() <= bound) return;
  // Deterministic LRU: order every entry by (generation, key) and drop the
  // front of that order. Runs only on calls that grew the cache past the
  // bound, so the sort amortizes over the solves that caused it.
  std::vector<std::pair<uint64_t, BatchPairKey>> order;
  order.reserve(cache_.size());
  for (const auto& [key, entry] : cache_) {
    order.emplace_back(entry.generation, key);
  }
  std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first < b.first;
    return KeyLess(a.second, b.second);
  });
  const size_t to_drop = cache_.size() - bound;
  for (size_t i = 0; i < to_drop; ++i) cache_.erase(order[i].second);
  stats_.cache_evictions += to_drop;
  BatchMetrics::Get().cache_evictions.Increment(to_drop);
}

}  // namespace xmlup
