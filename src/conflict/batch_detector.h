#ifndef XMLUP_CONFLICT_BATCH_DETECTOR_H_
#define XMLUP_CONFLICT_BATCH_DETECTOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "conflict/detector.h"
#include "conflict/update_op.h"
#include "pattern/pattern.h"
#include "pattern/pattern_store.h"

namespace xmlup {

/// Batch conflict-matrix engine (§6 motivation: compiler data-dependence
/// analysis needs a verdict for *every* read/update pair of a program, not
/// one pair at a time). Given N reads and M updates it computes the full
/// N×M ConflictReport matrix — or any sparse subset of it — on a
/// fixed-size thread pool, with a memoization cache keyed on interned
/// canonical pattern pairs.
///
/// Determinism guarantee: results are keyed by pair index, and every
/// distinct canonical pair is solved by exactly one detector invocation
/// whose verdict does not depend on scheduling. The verdict, method and
/// trees_checked fields of the returned matrix are therefore identical
/// across runs and thread counts. (Witness trees are deterministic up to
/// the renaming of fresh "alpha$n" labels, whose table ids depend on
/// interning order.)
///
/// Memoization: each input pattern is interned once into a PatternStore
/// (which minimizes and canonicalizes exactly once per distinct pattern,
/// see pattern/pattern_store.h); the cache key is the all-integer
/// BatchPairKey (read ref, update kind, update ref, content id). Two pairs
/// share a key iff their canonicalized problems coincide, so the repeated
/// patterns emitted by workload/program_generator hit the cache instead of
/// re-running the PTIME algorithms or the bounded search. Both the store
/// and the cache persist across Detect* calls (ClearCache() drops only the
/// result cache; interned patterns are kept — they are immutable facts).
struct BatchDetectorOptions {
  /// Per-pair detector configuration. When `detector.dtd` is set (and
  /// `detector.enable_type_pruning` left on), the engine runs the Stage 0
  /// schema-type filter itself, *before* the memo cache: pruned pairs are
  /// answered from one shared kTypePruned report and never consume a cache
  /// entry or a detector call — see BatchStats::type_pruned.
  DetectorOptions detector;
  /// Worker threads; 0 means ThreadPool::DefaultThreadCount(). 1 runs
  /// inline on the calling thread (no spawning).
  size_t num_threads = 0;
  /// Memoize results keyed on canonical pattern pairs.
  bool enable_cache = true;
  /// Canonicalize patterns through MinimizePattern at intern time. Sound
  /// (minimization is equivalence-preserving) and makes equivalent
  /// patterns share refs (hence cache entries); costs one minimization per
  /// distinct input pattern over the engine's lifetime. Ignored when
  /// `store` is injected (the store's own setting governs).
  bool minimize_patterns = true;
  /// Pattern interner shared with the caller (and possibly other engines
  /// over the same SymbolTable). Null: the engine creates a private store.
  std::shared_ptr<PatternStore> store;
  /// Upper bound on memoized results kept across Detect* calls; 0 means
  /// unbounded. When a call leaves the cache over this bound, the
  /// least-recently-used entries are evicted (LRU on generations: every
  /// Detect* call stamps the entries it touched with the call's
  /// generation; the oldest stamps go first, ties broken by key id order,
  /// so eviction is deterministic). Eviction never changes verdicts —
  /// every solve is independent of cache state — it only turns future
  /// hits into recomputed misses, counted in BatchStats::cache_evictions.
  size_t max_cache_entries = 0;
};

struct BatchStats {
  /// Pair verdicts requested across all Detect* calls.
  uint64_t pairs_total = 0;
  /// Pairs answered from the memoization cache (including pairs that
  /// duplicate another pair of the same call).
  uint64_t cache_hits = 0;
  /// Pairs not served by the cache — each one became a detector job.
  /// Invariant (checked by the engine):
  ///   hits + misses + type_pruned == pairs_total.
  uint64_t cache_misses = 0;
  /// Pairs answered by the Stage 0 schema-type filter (detector.dtd set).
  /// Pruned pairs cost no cache entries and no detector calls — all of
  /// them in one call share a single kTypePruned report object.
  uint64_t type_pruned = 0;
  /// Detector invocations (distinct canonical pairs actually solved).
  /// Equal to cache_misses: every miss is solved exactly once.
  uint64_t unique_pairs_solved = 0;
  /// Entries dropped by the max_cache_entries LRU policy. Evictions do not
  /// disturb the hits + misses == pairs_total invariant: they only make a
  /// later identical pair miss (and re-solve) instead of hit.
  uint64_t cache_evictions = 0;
};

/// Reports are shared: identical pairs point at the same object
/// (ConflictReport owns a Tree witness and is move-only, and sharing is
/// exactly what the cache does anyway). Entries are never null.
using SharedConflictResult = std::shared_ptr<const Result<ConflictReport>>;

/// One (read index, update index) cell of the matrix.
struct ReadUpdatePair {
  size_t read_index;
  size_t update_index;
};

/// The engine's memo key: all integers, so hashing is a few multiplies and
/// equality one comparison — no string building on the per-pair path. Safe
/// without a detector-options leg because the cache is per-engine and an
/// engine's options are immutable after construction.
struct BatchPairKey {
  uint32_t read_id = 0;
  uint32_t update_id = 0;
  /// Content-code id for inserts; 0 for deletes (disambiguated by kind).
  uint32_t content_id = 0;
  uint8_t kind = 0;

  friend bool operator==(const BatchPairKey& a, const BatchPairKey& b) {
    return a.read_id == b.read_id && a.update_id == b.update_id &&
           a.content_id == b.content_id && a.kind == b.kind;
  }
  friend bool operator!=(const BatchPairKey& a, const BatchPairKey& b) {
    return !(a == b);
  }
};

struct BatchPairKeyHash {
  size_t operator()(const BatchPairKey& k) const {
    // Pack into one 64-bit word (ids are store-dense, far below 2^21 in
    // practice) and mix; collisions beyond the packing fall back to
    // operator== in the map.
    uint64_t packed = (static_cast<uint64_t>(k.read_id) << 32) ^
                      (static_cast<uint64_t>(k.content_id) << 9) ^
                      (static_cast<uint64_t>(k.update_id) << 1) ^ k.kind;
    packed ^= packed >> 33;
    packed *= 0xff51afd7ed558ccdULL;
    packed ^= packed >> 33;
    return static_cast<size_t>(packed);
  }
};

class BatchConflictDetector {
 public:
  explicit BatchConflictDetector(BatchDetectorOptions options = {});

  /// Full N×M matrix in row-major order: result[i * updates.size() + j]
  /// is the verdict for (reads[i], updates[j]). The Pattern overloads
  /// intern on entry; the PatternRef overloads skip straight to the
  /// integer-keyed path (refs must come from this engine's store).
  std::vector<SharedConflictResult> DetectMatrix(
      const std::vector<Pattern>& reads, const std::vector<UpdateOp>& updates);
  std::vector<SharedConflictResult> DetectMatrix(
      const std::vector<PatternRef>& reads,
      const std::vector<UpdateOp>& updates);

  /// Sparse subset of the matrix; result[k] corresponds to pairs[k].
  /// Indices must be in range.
  std::vector<SharedConflictResult> DetectPairs(
      const std::vector<Pattern>& reads, const std::vector<UpdateOp>& updates,
      const std::vector<ReadUpdatePair>& pairs);
  std::vector<SharedConflictResult> DetectPairs(
      const std::vector<PatternRef>& reads,
      const std::vector<UpdateOp>& updates,
      const std::vector<ReadUpdatePair>& pairs);

  const BatchStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BatchStats(); }

  /// The options this engine was built with (the Engine facade reads them
  /// to mint per-session engines with matching detector configuration).
  /// When a store was injected, `options().store` is that store.
  const BatchDetectorOptions& options() const { return options_; }

  /// Drops all memoized results (stats and interned patterns are kept).
  void ClearCache();

  /// Memoized results currently retained (≤ max_cache_entries when the
  /// bound is set).
  size_t cache_size() const { return cache_.size(); }

  /// The engine's pattern interner. Callers that build their inputs
  /// against it (Intern + ref overloads / UpdateOp::Bind) skip per-call
  /// canonicalization entirely.
  const std::shared_ptr<PatternStore>& pattern_store() const { return store_; }

  /// Cache key for a (read, update) pair under this engine's store.
  /// Interns both patterns (and the content code). Exposed for tests.
  BatchPairKey CacheKey(const Pattern& read, const UpdateOp& update);

 private:
  struct CacheEntry {
    SharedConflictResult result;
    /// Generation (Detect* call counter) that created or last hit this
    /// entry — the LRU recency stamp.
    uint64_t generation = 0;
  };

  /// The update ref within store_, reusing the op's own ref when it was
  /// bound to the same store.
  PatternRef UpdateRef(const UpdateOp& update);

  /// Applies the max_cache_entries LRU policy after a call published its
  /// results.
  void EvictIfOverBound();

  BatchDetectorOptions options_;
  std::shared_ptr<PatternStore> store_;
  std::unique_ptr<ThreadPool> pool_;
  std::unordered_map<BatchPairKey, CacheEntry, BatchPairKeyHash> cache_;
  /// Bumped at the start of every (ref-overload) DetectPairs call.
  uint64_t generation_ = 0;
  BatchStats stats_;
  /// Debug tripwire for the class's single-caller contract (cache_,
  /// generation_ and stats_ are unsynchronized on purpose — the Engine
  /// facade serializes on batch_mu_ above this layer). Every public entry
  /// point funnels into the ref-overload DetectPairs exactly once, which
  /// holds this count up while it runs; a nonzero count on entry means two
  /// callers are inside the engine at once and is DCHECK-failed rather
  /// than left to corrupt the memo cache silently.
  std::atomic<int> active_calls_{0};
};

}  // namespace xmlup

#endif  // XMLUP_CONFLICT_BATCH_DETECTOR_H_
