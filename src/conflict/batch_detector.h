#ifndef XMLUP_CONFLICT_BATCH_DETECTOR_H_
#define XMLUP_CONFLICT_BATCH_DETECTOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "conflict/detector.h"
#include "conflict/update_op.h"
#include "pattern/pattern.h"

namespace xmlup {

/// Batch conflict-matrix engine (§6 motivation: compiler data-dependence
/// analysis needs a verdict for *every* read/update pair of a program, not
/// one pair at a time). Given N reads and M updates it computes the full
/// N×M ConflictReport matrix — or any sparse subset of it — on a
/// fixed-size thread pool, with a memoization cache keyed on canonical
/// pattern pairs.
///
/// Determinism guarantee: results are keyed by pair index, and every
/// distinct canonical pair is solved by exactly one detector invocation
/// whose verdict does not depend on scheduling. The verdict, method and
/// trees_checked fields of the returned matrix are therefore identical
/// across runs and thread counts. (Witness trees are deterministic up to
/// the renaming of fresh "alpha$n" labels, whose table ids depend on
/// interning order.)
///
/// Memoization key: kind byte + CanonicalPatternCode of the (optionally
/// minimized) read and update patterns + CanonicalCode of the inserted
/// content + the semantics/matcher/search-budget options. Minimization
/// (conflict/minimize.h) folds equivalent-but-not-identical patterns onto
/// one key, so the repeated patterns emitted by workload/program_generator
/// hit the cache instead of re-running the PTIME algorithms or the
/// bounded search. The cache persists across Detect* calls until
/// ClearCache().
struct BatchDetectorOptions {
  DetectorOptions detector;
  /// Worker threads; 0 means ThreadPool::DefaultThreadCount(). 1 runs
  /// inline on the calling thread (no spawning).
  size_t num_threads = 0;
  /// Memoize results keyed on canonical pattern pairs.
  bool enable_cache = true;
  /// Canonicalize patterns through MinimizePattern before keying and
  /// solving. Sound (minimization is equivalence-preserving) and makes
  /// equivalent patterns share cache entries; costs one minimization per
  /// distinct input pattern.
  bool minimize_patterns = true;
};

struct BatchStats {
  /// Pair verdicts requested across all Detect* calls.
  uint64_t pairs_total = 0;
  /// Pairs answered from the memoization cache (including pairs that
  /// duplicate another pair of the same call).
  uint64_t cache_hits = 0;
  /// Pairs not served by the cache — each one became a detector job.
  /// Invariant (checked by the engine): hits + misses == pairs_total.
  uint64_t cache_misses = 0;
  /// Detector invocations (distinct canonical pairs actually solved).
  /// Equal to cache_misses: every miss is solved exactly once.
  uint64_t unique_pairs_solved = 0;
};

/// Reports are shared: identical pairs point at the same object
/// (ConflictReport owns a Tree witness and is move-only, and sharing is
/// exactly what the cache does anyway). Entries are never null.
using SharedConflictResult = std::shared_ptr<const Result<ConflictReport>>;

/// One (read index, update index) cell of the matrix.
struct ReadUpdatePair {
  size_t read_index;
  size_t update_index;
};

class BatchConflictDetector {
 public:
  explicit BatchConflictDetector(BatchDetectorOptions options = {});

  /// Full N×M matrix in row-major order: result[i * updates.size() + j]
  /// is the verdict for (reads[i], updates[j]).
  std::vector<SharedConflictResult> DetectMatrix(
      const std::vector<Pattern>& reads, const std::vector<UpdateOp>& updates);

  /// Sparse subset of the matrix; result[k] corresponds to pairs[k].
  /// Indices must be in range.
  std::vector<SharedConflictResult> DetectPairs(
      const std::vector<Pattern>& reads, const std::vector<UpdateOp>& updates,
      const std::vector<ReadUpdatePair>& pairs);

  const BatchStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BatchStats(); }

  /// Drops all memoized results (stats are kept).
  void ClearCache();

  /// Cache key for a (read, update) pair under this engine's options.
  /// Exposed for tests.
  std::string CacheKey(const Pattern& read, const UpdateOp& update) const;

 private:
  BatchDetectorOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  std::unordered_map<std::string, SharedConflictResult> cache_;
  BatchStats stats_;
};

}  // namespace xmlup

#endif  // XMLUP_CONFLICT_BATCH_DETECTOR_H_
