#include "conflict/bounded_search.h"

#include <algorithm>
#include <set>

#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "obs/trace.h"
#include "pattern/pattern_ops.h"
#include "xml/tree_algos.h"

namespace xmlup {

TreeEnumerator::TreeEnumerator(std::shared_ptr<SymbolTable> symbols,
                               std::vector<Label> alphabet, size_t max_nodes,
                               uint64_t max_shapes)
    : symbols_(std::move(symbols)),
      alphabet_(std::move(alphabet)),
      max_shapes_(max_shapes) {
  XMLUP_CHECK(!alphabet_.empty());
  Build(max_nodes);
}

void TreeEnumerator::Build(size_t max_nodes) {
  for (uint32_t size = 1; size <= max_nodes && !truncated_; ++size) {
    // Only shapes strictly smaller than `size` exist at this point; all of
    // them are candidates for children.
    const uint32_t max_id = static_cast<uint32_t>(shapes_.size());
    for (Label label : alphabet_) {
      if (truncated_) break;
      std::vector<uint32_t> children;
      EmitWithChildren(label, size - 1, max_id, &children, size);
    }
  }
}

/// Emits every shape with the given root label and a canonical multiset of
/// children whose sizes sum to `size_budget`, drawn from shape ids
/// < max_id, in non-increasing id order.
void TreeEnumerator::EmitWithChildren(Label label, uint32_t size_budget,
                                      uint32_t max_id,
                                      std::vector<uint32_t>* children,
                                      uint32_t total_size) {
  if (truncated_) return;
  if (size_budget == 0) {
    if (shapes_.size() >= max_shapes_) {
      truncated_ = true;
      return;
    }
    shapes_.push_back({label, *children, total_size});
    return;
  }
  const uint32_t start =
      children->empty() ? max_id : children->back() + 1;  // ids < start
  for (uint32_t id = start; id-- > 0;) {
    if (shapes_[id].size > size_budget) continue;
    children->push_back(id);
    EmitWithChildren(label, size_budget - shapes_[id].size, max_id, children,
                     total_size);
    children->pop_back();
    if (truncated_) return;
  }
}

void TreeEnumerator::Materialize(uint32_t shape_id, Tree* tree,
                                 NodeId parent) const {
  const Shape& shape = shapes_[shape_id];
  const NodeId node = parent == kNullNode ? tree->CreateRoot(shape.label)
                                          : tree->AddChild(parent, shape.label);
  for (uint32_t child : shape.children) Materialize(child, tree, node);
}

bool TreeEnumerator::Enumerate(
    const std::function<bool(const Tree&)>& visit) const {
  for (uint32_t id = 0; id < shapes_.size(); ++id) {
    Tree tree(symbols_);
    Materialize(id, &tree, kNullNode);
    if (!visit(tree)) return false;
  }
  return true;
}

namespace {

std::vector<Label> SearchAlphabet(const Pattern& read, const Pattern& update,
                                  size_t extra_labels) {
  std::set<Label> labels;
  for (Label l : read.DistinctLabels()) labels.insert(l);
  for (Label l : update.DistinctLabels()) labels.insert(l);
  std::vector<Label> alphabet(labels.begin(), labels.end());
  for (size_t i = 0; i < extra_labels; ++i) {
    alphabet.push_back(read.symbols()->Fresh("alpha"));
  }
  if (alphabet.empty()) alphabet.push_back(read.symbols()->Fresh("alpha"));
  return alphabet;
}

/// NP-path accounting: how many searches ran, how many trees they
/// enumerated, and how often the budget (shape cap / max_nodes) stopped
/// them before the space was covered. Counters are bumped once per search
/// (bulk adds), never inside the per-tree loop.
struct SearchMetrics {
  obs::Counter& searches;
  obs::Counter& trees_checked;
  obs::Counter& witnesses_found;
  obs::Counter& truncations;
  obs::Counter& budget_exhausted;
  obs::Histogram& latency_us;

  static const SearchMetrics& Get() {
    static const SearchMetrics* const metrics = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
      return new SearchMetrics{
          reg.GetCounter("bounded_search.searches"),
          reg.GetCounter("bounded_search.trees_checked"),
          reg.GetCounter("bounded_search.witnesses_found"),
          reg.GetCounter("bounded_search.truncations"),
          reg.GetCounter("bounded_search.budget_exhausted"),
          reg.GetHistogram("bounded_search.latency_us"),
      };
    }();
    return *metrics;
  }
};

BruteForceResult RunSearch(const Pattern& read, const Pattern& update,
                           const BoundedSearchOptions& options,
                           const std::function<bool(const Tree&)>& is_witness) {
  const SearchMetrics& metrics = SearchMetrics::Get();
  metrics.searches.Increment();
  obs::ScopedTimer timer(&metrics.latency_us);
  obs::TraceSpan span("BruteForceSearch");
  BruteForceResult result;
  TreeEnumerator enumerator(read.symbols(),
                            SearchAlphabet(read, update, options.extra_labels),
                            options.max_nodes, options.max_trees);
  bool completed = enumerator.Enumerate([&](const Tree& candidate) {
    ++result.trees_checked;
    if (is_witness(candidate)) {
      result.outcome = SearchOutcome::kWitnessFound;
      result.witness = CopyTree(candidate);
      return false;
    }
    return true;
  });
  result.truncated = enumerator.truncated();
  metrics.trees_checked.Increment(result.trees_checked);
  if (result.truncated) metrics.truncations.Increment();
  if (result.outcome == SearchOutcome::kWitnessFound) {
    metrics.witnesses_found.Increment();
    return result;
  }
  result.outcome = (completed && !enumerator.truncated())
                       ? SearchOutcome::kExhaustedNoWitness
                       : SearchOutcome::kBudgetExceeded;
  if (result.outcome == SearchOutcome::kBudgetExceeded) {
    metrics.budget_exhausted.Increment();
  }
  return result;
}

}  // namespace

BruteForceResult BruteForceReadInsertSearch(
    const Pattern& read, const Pattern& insert_pattern, const Tree& inserted,
    ConflictSemantics semantics, const BoundedSearchOptions& options) {
  return RunSearch(read, insert_pattern, options, [&](const Tree& candidate) {
    return IsReadInsertWitness(read, insert_pattern, inserted, candidate,
                               semantics);
  });
}

BruteForceResult BruteForceReadDeleteSearch(
    const Pattern& read, const Pattern& delete_pattern,
    ConflictSemantics semantics, const BoundedSearchOptions& options) {
  return RunSearch(read, delete_pattern, options, [&](const Tree& candidate) {
    return IsReadDeleteWitness(read, delete_pattern, candidate, semantics);
  });
}

size_t PaperWitnessBound(const Pattern& read, const Pattern& update) {
  return read.size() * update.size() * (StarLength(read) + 1);
}

}  // namespace xmlup
