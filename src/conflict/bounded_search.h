#ifndef XMLUP_CONFLICT_BOUNDED_SEARCH_H_
#define XMLUP_CONFLICT_BOUNDED_SEARCH_H_

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "conflict/witness_check.h"
#include "pattern/pattern.h"
#include "xml/tree.h"

namespace xmlup {

/// Enumerates all *canonical* unordered labeled trees with 1..max_nodes
/// nodes over a fixed finite alphabet: every isomorphism class is produced
/// exactly once (children are kept in a canonical non-increasing order).
/// This realizes the "guess a tree of size polynomial in the inputs"
/// step of the paper's NP-membership proofs (Theorems 3 and 5) as an
/// exhaustive search, and doubles as the ground-truth oracle for the
/// property tests of the polynomial detectors.
class TreeEnumerator {
 public:
  /// `max_shapes` caps the internal table; generation stops (truncated())
  /// when exceeded.
  TreeEnumerator(std::shared_ptr<SymbolTable> symbols,
                 std::vector<Label> alphabet, size_t max_nodes,
                 uint64_t max_shapes = 4'000'000);

  /// Number of distinct trees generated (≤ cap).
  uint64_t count() const { return shapes_.size(); }

  /// True if the cap stopped generation before all trees were produced.
  bool truncated() const { return truncated_; }

  /// Visits every generated tree; `visit` returns false to stop early.
  /// Returns true iff the visit ran over all generated trees.
  bool Enumerate(const std::function<bool(const Tree&)>& visit) const;

 private:
  struct Shape {
    Label label;
    std::vector<uint32_t> children;  // shape ids, non-increasing
    uint32_t size;
  };

  void Build(size_t max_nodes);
  void EmitWithChildren(Label label, uint32_t size_budget, uint32_t max_id,
                        std::vector<uint32_t>* children, uint32_t total_size);
  void Materialize(uint32_t shape_id, Tree* tree, NodeId parent) const;

  std::shared_ptr<SymbolTable> symbols_;
  std::vector<Label> alphabet_;
  std::vector<Shape> shapes_;
  uint64_t max_shapes_;
  bool truncated_ = false;
};

/// Options for exhaustive conflict search.
struct BoundedSearchOptions {
  /// Maximum witness size to try (paper bound: |R|·|I|·(k+1); default small
  /// because the space grows super-exponentially).
  size_t max_nodes = 5;
  /// Extra labels beyond those appearing in the patterns; the paper's
  /// proofs need one fresh symbol α.
  size_t extra_labels = 1;
  /// Generation cap (isomorphism classes).
  uint64_t max_trees = 2'000'000;
};

enum class SearchOutcome {
  /// A witness was found; `witness` is set.
  kWitnessFound,
  /// The whole space up to max_nodes was enumerated without a witness.
  kExhaustedNoWitness,
  /// The cap stopped the enumeration first; absence is inconclusive.
  kBudgetExceeded,
};

struct BruteForceResult {
  SearchOutcome outcome = SearchOutcome::kBudgetExceeded;
  std::optional<Tree> witness;
  uint64_t trees_checked = 0;
  /// True when the enumerator's shape cap stopped generation before the
  /// space up to max_nodes was covered. Soundness invariant, relied on by
  /// the detector's verdict mapping: a truncated search that found no
  /// witness must never be reported as kExhaustedNoWitness — absence of a
  /// witness in a partial enumeration proves nothing.
  bool truncated = false;
};

/// Exhaustively searches for a read-insert conflict witness of size
/// ≤ options.max_nodes, with labels drawn from Σ_read ∪ Σ_insert plus
/// `extra_labels` fresh symbols.
BruteForceResult BruteForceReadInsertSearch(const Pattern& read,
                                            const Pattern& insert_pattern,
                                            const Tree& inserted,
                                            ConflictSemantics semantics,
                                            const BoundedSearchOptions& options);

/// Read-delete analogue.
BruteForceResult BruteForceReadDeleteSearch(const Pattern& read,
                                            const Pattern& delete_pattern,
                                            ConflictSemantics semantics,
                                            const BoundedSearchOptions& options);

/// The paper's witness-size bound |R|·|I|·(k+1), k = STAR-LENGTH(read)
/// (Lemma 11). Searching up to this bound is a complete decision
/// procedure — usually astronomically expensive, which is the point of
/// benchmark E5.
size_t PaperWitnessBound(const Pattern& read, const Pattern& update);

}  // namespace xmlup

#endif  // XMLUP_CONFLICT_BOUNDED_SEARCH_H_
