#include "conflict/commutativity.h"

#include <set>

#include "eval/evaluator.h"
#include "xml/isomorphism.h"
#include "xml/tree_algos.h"

namespace xmlup {

bool UpdatesCommuteOn(const Tree& t, const UpdateOp& o1, const UpdateOp& o2) {
  Tree order12 = CopyTree(t);
  o2.ApplyInPlace(&order12);
  o1.ApplyInPlace(&order12);
  Tree order21 = CopyTree(t);
  o1.ApplyInPlace(&order21);
  o2.ApplyInPlace(&order21);
  return CanonicalCode(order12) == CanonicalCode(order21);
}

BruteForceResult FindCommutativityViolation(
    const UpdateOp& o1, const UpdateOp& o2,
    const BoundedSearchOptions& options) {
  // Alphabet: labels of both patterns, the inserted trees, plus fresh ones.
  const auto& symbols = o1.pattern().symbols();
  std::set<Label> labels;
  for (Label l : o1.pattern().DistinctLabels()) labels.insert(l);
  for (Label l : o2.pattern().DistinctLabels()) labels.insert(l);
  for (const UpdateOp* op : {&o1, &o2}) {
    if (op->kind() == UpdateOp::Kind::kInsert) {
      for (NodeId n : op->content().PreOrder()) {
        labels.insert(op->content().label(n));
      }
    }
  }
  std::vector<Label> alphabet(labels.begin(), labels.end());
  for (size_t i = 0; i < options.extra_labels; ++i) {
    alphabet.push_back(symbols->Fresh("alpha"));
  }
  if (alphabet.empty()) alphabet.push_back(symbols->Fresh("alpha"));

  BruteForceResult result;
  TreeEnumerator enumerator(symbols, alphabet, options.max_nodes,
                            options.max_trees);
  const bool completed = enumerator.Enumerate([&](const Tree& candidate) {
    ++result.trees_checked;
    if (!UpdatesCommuteOn(candidate, o1, o2)) {
      result.outcome = SearchOutcome::kWitnessFound;
      result.witness = CopyTree(candidate);
      return false;
    }
    return true;
  });
  result.truncated = enumerator.truncated();
  if (result.outcome == SearchOutcome::kWitnessFound) return result;
  result.outcome = (completed && !enumerator.truncated())
                       ? SearchOutcome::kExhaustedNoWitness
                       : SearchOutcome::kBudgetExceeded;
  return result;
}

}  // namespace xmlup
