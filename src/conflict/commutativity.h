#ifndef XMLUP_CONFLICT_COMMUTATIVITY_H_
#define XMLUP_CONFLICT_COMMUTATIVITY_H_

#include "common/result.h"
#include "conflict/bounded_search.h"
#include "conflict/update_op.h"
#include "pattern/pattern.h"
#include "xml/tree.h"

namespace xmlup {

/// §6 "Complex Updates": update-update (insert-insert, delete-delete,
/// insert-delete) conflicts. Two updates o1, o2 conflict when o1(o2(t))
/// differs from o2(o1(t)) for some tree t. As the paper notes, node
/// identity of inserted clones is ill-defined across orderings, so the
/// natural comparison is value-based (tree isomorphism); that is what we
/// implement. The UpdateOp value type lives in conflict/update_op.h,
/// shared with the detector facade and the batch engine.

/// True iff o1(o2(t)) ≅ o2(o1(t)) (whole-tree isomorphism). Polynomial —
/// the Lemma 1 analogue for update-update conflicts.
bool UpdatesCommuteOn(const Tree& t, const UpdateOp& o1, const UpdateOp& o2);

/// Exhaustively searches trees up to options.max_nodes for one on which the
/// two updates do not commute. The witness (if found) is the tree t itself.
BruteForceResult FindCommutativityViolation(const UpdateOp& o1,
                                            const UpdateOp& o2,
                                            const BoundedSearchOptions& options);

}  // namespace xmlup

#endif  // XMLUP_CONFLICT_COMMUTATIVITY_H_
