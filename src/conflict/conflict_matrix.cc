#include "conflict/conflict_matrix.h"

#include <utility>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace xmlup {
namespace {

/// Maintained-matrix observability: edit counts and the reuse/recompute/
/// drop cell deltas (the payoff metric — reused cells are work the
/// incremental layer saved relative to a from-scratch rebuild).
struct MatrixMetrics {
  obs::Counter& edits;
  obs::Counter& cells_reused;
  obs::Counter& cells_recomputed;
  obs::Counter& cells_dropped;

  static const MatrixMetrics& Get() {
    static const MatrixMetrics* const metrics = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
      return new MatrixMetrics{
          reg.GetCounter("matrix.edits"),
          reg.GetCounter("matrix.cells_reused"),
          reg.GetCounter("matrix.cells_recomputed"),
          reg.GetCounter("matrix.cells_dropped"),
      };
    }();
    return *metrics;
  }
};

}  // namespace

MaintainedConflictMatrix::MaintainedConflictMatrix(
    BatchDetectorOptions options)
    : engine_(std::make_shared<BatchConflictDetector>(std::move(options))) {}

MaintainedConflictMatrix::MaintainedConflictMatrix(
    std::shared_ptr<BatchConflictDetector> engine)
    : engine_(std::move(engine)) {
  XMLUP_CHECK(engine_ != nullptr);
}

void MaintainedConflictMatrix::RecordEdit(uint64_t reused, uint64_t recomputed,
                                          uint64_t dropped) {
  ++delta_.edits;
  delta_.cells_reused += reused;
  delta_.cells_recomputed += recomputed;
  delta_.cells_dropped += dropped;
  const MatrixMetrics& metrics = MatrixMetrics::Get();
  metrics.edits.Increment();
  metrics.cells_reused.Increment(reused);
  metrics.cells_recomputed.Increment(recomputed);
  metrics.cells_dropped.Increment(dropped);
}

std::vector<SharedConflictResult> MaintainedConflictMatrix::SolveRow(
    PatternRef read) const {
  std::vector<ReadUpdatePair> pairs;
  pairs.reserve(updates_.size());
  for (size_t j = 0; j < updates_.size(); ++j) pairs.push_back({0, j});
  return engine_->DetectPairs(std::vector<PatternRef>{read}, updates_, pairs);
}

std::vector<SharedConflictResult> MaintainedConflictMatrix::SolveColumn(
    const UpdateOp& update) const {
  std::vector<ReadUpdatePair> pairs;
  pairs.reserve(reads_.size());
  for (size_t i = 0; i < reads_.size(); ++i) pairs.push_back({i, 0});
  return engine_->DetectPairs(reads_, std::vector<UpdateOp>{update}, pairs);
}

void MaintainedConflictMatrix::Assign(const std::vector<Pattern>& reads,
                                      const std::vector<UpdateOp>& updates) {
  obs::TraceSpan span("matrix.assign");
  const uint64_t dropped = static_cast<uint64_t>(reads_.size()) *
                           static_cast<uint64_t>(updates_.size());
  const std::shared_ptr<PatternStore>& store = engine_->pattern_store();
  reads_.clear();
  reads_.reserve(reads.size());
  for (const Pattern& read : reads) reads_.push_back(store->Intern(read));
  updates_.clear();
  updates_.reserve(updates.size());
  for (const UpdateOp& update : updates) updates_.push_back(update.Bind(store));

  std::vector<ReadUpdatePair> pairs;
  pairs.reserve(reads_.size() * updates_.size());
  for (size_t i = 0; i < reads_.size(); ++i) {
    for (size_t j = 0; j < updates_.size(); ++j) pairs.push_back({i, j});
  }
  std::vector<SharedConflictResult> flat =
      engine_->DetectPairs(reads_, updates_, pairs);
  cells_.assign(reads_.size(), {});
  for (size_t i = 0; i < reads_.size(); ++i) {
    cells_[i].assign(flat.begin() + static_cast<ptrdiff_t>(i * updates_.size()),
                     flat.begin() +
                         static_cast<ptrdiff_t>((i + 1) * updates_.size()));
  }
  RecordEdit(/*reused=*/0, /*recomputed=*/pairs.size(), dropped);
}

size_t MaintainedConflictMatrix::AddRead(const Pattern& read) {
  obs::TraceSpan span("matrix.add_read");
  const PatternRef ref = engine_->pattern_store()->Intern(read);
  reads_.push_back(ref);
  cells_.push_back(SolveRow(ref));
  RecordEdit((reads_.size() - 1) * updates_.size(), updates_.size(), 0);
  return reads_.size() - 1;
}

size_t MaintainedConflictMatrix::AddUpdate(const UpdateOp& update) {
  obs::TraceSpan span("matrix.add_update");
  UpdateOp bound = update.Bind(engine_->pattern_store());
  std::vector<SharedConflictResult> column = SolveColumn(bound);
  for (size_t i = 0; i < reads_.size(); ++i) {
    cells_[i].push_back(std::move(column[i]));
  }
  updates_.push_back(std::move(bound));
  RecordEdit(reads_.size() * (updates_.size() - 1), reads_.size(), 0);
  return updates_.size() - 1;
}

void MaintainedConflictMatrix::RemoveRead(size_t read_index) {
  obs::TraceSpan span("matrix.remove_read");
  XMLUP_CHECK(read_index < reads_.size());
  reads_.erase(reads_.begin() + static_cast<ptrdiff_t>(read_index));
  cells_.erase(cells_.begin() + static_cast<ptrdiff_t>(read_index));
  RecordEdit(reads_.size() * updates_.size(), 0, updates_.size());
}

void MaintainedConflictMatrix::RemoveUpdate(size_t update_index) {
  obs::TraceSpan span("matrix.remove_update");
  XMLUP_CHECK(update_index < updates_.size());
  updates_.erase(updates_.begin() + static_cast<ptrdiff_t>(update_index));
  for (std::vector<SharedConflictResult>& row : cells_) {
    row.erase(row.begin() + static_cast<ptrdiff_t>(update_index));
  }
  RecordEdit(reads_.size() * updates_.size(), 0, reads_.size());
}

void MaintainedConflictMatrix::ReplaceRead(size_t read_index,
                                           const Pattern& read) {
  obs::TraceSpan span("matrix.replace_read");
  XMLUP_CHECK(read_index < reads_.size());
  const PatternRef ref = engine_->pattern_store()->Intern(read);
  reads_[read_index] = ref;
  cells_[read_index] = SolveRow(ref);
  RecordEdit((reads_.size() - 1) * updates_.size(), updates_.size(),
             updates_.size());
}

void MaintainedConflictMatrix::ReplaceUpdate(size_t update_index,
                                             const UpdateOp& update) {
  obs::TraceSpan span("matrix.replace_update");
  XMLUP_CHECK(update_index < updates_.size());
  UpdateOp bound = update.Bind(engine_->pattern_store());
  std::vector<SharedConflictResult> column = SolveColumn(bound);
  for (size_t i = 0; i < reads_.size(); ++i) {
    cells_[i][update_index] = std::move(column[i]);
  }
  updates_[update_index] = std::move(bound);
  RecordEdit(reads_.size() * (updates_.size() - 1), reads_.size(),
             reads_.size());
}

const SharedConflictResult& MaintainedConflictMatrix::cell(
    size_t read_index, size_t update_index) const {
  XMLUP_CHECK(read_index < reads_.size() && update_index < updates_.size());
  return cells_[read_index][update_index];
}

std::vector<SharedConflictResult> MaintainedConflictMatrix::RowMajor() const {
  std::vector<SharedConflictResult> out;
  out.reserve(reads_.size() * updates_.size());
  for (const std::vector<SharedConflictResult>& row : cells_) {
    out.insert(out.end(), row.begin(), row.end());
  }
  return out;
}

std::vector<SharedConflictResult> MaintainedConflictMatrix::row(
    size_t read_index) const {
  XMLUP_CHECK(read_index < reads_.size());
  return cells_[read_index];
}

std::vector<SharedConflictResult> MaintainedConflictMatrix::column(
    size_t update_index) const {
  XMLUP_CHECK(update_index < updates_.size());
  std::vector<SharedConflictResult> out;
  out.reserve(reads_.size());
  for (const std::vector<SharedConflictResult>& row : cells_) {
    out.push_back(row[update_index]);
  }
  return out;
}

PatternRef MaintainedConflictMatrix::read_ref(size_t read_index) const {
  XMLUP_CHECK(read_index < reads_.size());
  return reads_[read_index];
}

const UpdateOp& MaintainedConflictMatrix::update(size_t update_index) const {
  XMLUP_CHECK(update_index < updates_.size());
  return updates_[update_index];
}

}  // namespace xmlup
