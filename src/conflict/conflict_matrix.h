#ifndef XMLUP_CONFLICT_CONFLICT_MATRIX_H_
#define XMLUP_CONFLICT_CONFLICT_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "conflict/batch_detector.h"

namespace xmlup {

/// Cumulative delta accounting for a maintained matrix: what each edit
/// cost relative to the from-scratch alternative. "Recomputed" counts
/// cells *requested from the batch engine* — the engine's own memo cache
/// usually answers most of them, so the detector-job cost of an edit is
/// bounded by the recomputed count and typically far below it (see
/// BatchStats for the solve-level truth).
struct DeltaStats {
  /// Edit operations applied (Assign counts as one).
  uint64_t edits = 0;
  /// Cells present before and after an edit, untouched by it.
  uint64_t cells_reused = 0;
  /// Cells (re)computed via the batch engine.
  uint64_t cells_recomputed = 0;
  /// Cells discarded (removed rows/columns and replaced cells).
  uint64_t cells_dropped = 0;
};

/// A maintained N×M read/update conflict matrix — the paper's §1 compiler
/// use case made *incremental*. Where BatchConflictDetector answers one
/// matrix request, MaintainedConflictMatrix holds the current reads and
/// updates plus their verdict cells and offers edit operations that
/// recompute only the affected row or column:
///
///   AddRead / ReplaceRead       → M engine requests (one row)
///   AddUpdate / ReplaceUpdate   → N engine requests (one column)
///   RemoveRead / RemoveUpdate   → 0 engine requests
///
/// so a single edit costs at most max(N, M) detector jobs — and usually
/// far fewer, because requests flow through the engine's BatchPairKey memo
/// cache and edits that reintroduce known patterns are pure hits. When the
/// engine's detector carries a Dtd, its Stage 0 type filter answers
/// schema-disjoint cells (method kTypePruned) before the cache — such
/// cells cost neither memo entries nor detector jobs (BatchStats::
/// type_pruned), and the maintained matrix inherits that for free.
///
/// Determinism: cells carry the batch engine's guarantee (verdict, method,
/// trees_checked independent of thread count and scheduling), and the
/// maintained matrix is always cell-for-cell equal to a from-scratch
/// DetectMatrix over the current reads/updates — eviction in the engine
/// cache can change *when* a pair is re-solved, never what the solve
/// returns.
///
/// Indices are stable under Add (append) and Replace; Remove shifts later
/// rows/columns down by one, mirroring statement deletion in a program.
/// Not thread-safe: one writer at a time (the engine underneath still
/// parallelizes each recompute internally).
///
/// Observability: edits ride MetricsRegistry::Default() as the matrix.*
/// counters (edits, cells_reused, cells_recomputed, cells_dropped) and
/// emit one trace span per edit (matrix.add_read, matrix.replace_update,
/// ...).
class MaintainedConflictMatrix {
 public:
  /// Builds an empty matrix over a private engine with these options.
  explicit MaintainedConflictMatrix(BatchDetectorOptions options = {});
  /// Builds an empty matrix over a shared engine (its store and memo cache
  /// are reused; `engine` must be non-null).
  explicit MaintainedConflictMatrix(
      std::shared_ptr<BatchConflictDetector> engine);

  /// Replaces the whole matrix (one edit: every previous cell drops, every
  /// new cell is requested — warm engines answer repeats from cache).
  void Assign(const std::vector<Pattern>& reads,
              const std::vector<UpdateOp>& updates);

  /// Appends a read row / update column; returns its index.
  size_t AddRead(const Pattern& read);
  size_t AddUpdate(const UpdateOp& update);

  /// Removes a row / column; later indices shift down by one.
  void RemoveRead(size_t read_index);
  void RemoveUpdate(size_t update_index);

  /// Swaps in a new pattern/op at an existing index and recomputes exactly
  /// that row / column.
  void ReplaceRead(size_t read_index, const Pattern& read);
  void ReplaceUpdate(size_t update_index, const UpdateOp& update);

  size_t num_reads() const { return reads_.size(); }
  size_t num_updates() const { return updates_.size(); }

  /// The current verdict cell; never null. References are invalidated by
  /// the next edit.
  const SharedConflictResult& cell(size_t read_index,
                                   size_t update_index) const;

  /// Row-major snapshot, same layout as BatchConflictDetector::
  /// DetectMatrix(reads, updates) over the current contents.
  std::vector<SharedConflictResult> RowMajor() const;

  /// One row (all cells of a read) / one column (all cells of an update)
  /// — what an edit-stream consumer tallies after ReplaceRead/
  /// ReplaceUpdate recomputed exactly that slice. References are
  /// invalidated by the next edit.
  std::vector<SharedConflictResult> row(size_t read_index) const;
  std::vector<SharedConflictResult> column(size_t update_index) const;

  /// The interned ref / bound op backing a row / column (refs belong to
  /// engine().pattern_store()).
  PatternRef read_ref(size_t read_index) const;
  const UpdateOp& update(size_t update_index) const;

  const DeltaStats& delta_stats() const { return delta_; }
  BatchConflictDetector& engine() const { return *engine_; }
  const std::shared_ptr<BatchConflictDetector>& shared_engine() const {
    return engine_;
  }

 private:
  /// One row (the given read against every current update) / one column
  /// (every current read against the given update) via the engine.
  std::vector<SharedConflictResult> SolveRow(PatternRef read) const;
  std::vector<SharedConflictResult> SolveColumn(const UpdateOp& update) const;

  void RecordEdit(uint64_t reused, uint64_t recomputed, uint64_t dropped);

  std::shared_ptr<BatchConflictDetector> engine_;
  std::vector<PatternRef> reads_;
  /// Bound to the engine's store (Bind amortizes canonicalization).
  std::vector<UpdateOp> updates_;
  /// cells_[i][j] is the verdict for (reads_[i], updates_[j]).
  std::vector<std::vector<SharedConflictResult>> cells_;
  DeltaStats delta_;
};

}  // namespace xmlup

#endif  // XMLUP_CONFLICT_CONFLICT_MATRIX_H_
