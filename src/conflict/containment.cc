#include "conflict/containment.h"

#include <vector>

#include "eval/evaluator.h"
#include "pattern/pattern_ops.h"

namespace xmlup {
namespace {

/// DP table for pattern homomorphisms q → p.
class HomTable {
 public:
  HomTable(size_t q_size, size_t p_size)
      : stride_(p_size), bits_(q_size * p_size, false) {}
  bool get(PatternNodeId x, PatternNodeId y) const {
    return bits_[x * stride_ + y];
  }
  void set(PatternNodeId x, PatternNodeId y, bool v) {
    bits_[x * stride_ + y] = v;
  }

 private:
  size_t stride_;
  std::vector<bool> bits_;
};

/// Label compatibility for homomorphisms: a wildcard in q maps anywhere; a
/// concrete label in q must land on the same concrete label in p (a
/// wildcard in p stands for an *arbitrary* label, so it cannot support a
/// concrete requirement).
bool HomLabelOk(const Pattern& q, PatternNodeId x, const Pattern& p,
                PatternNodeId y) {
  if (q.is_wildcard(x)) return true;
  if (p.is_wildcard(y)) return false;
  return q.LabelName(x) == p.LabelName(y);
}

}  // namespace

bool HasContainmentHomomorphism(const Pattern& p, const Pattern& q) {
  // hsat[x][y]: the subpattern of q rooted at x maps into p with x ↦ y.
  // dsat[x][y]: hsat[x][y'] for some proper descendant y' of y in p.
  HomTable hsat(q.size(), p.size());
  HomTable dsat(q.size(), p.size());
  const std::vector<PatternNodeId> p_post = p.PostOrder();
  const std::vector<PatternNodeId> q_post = q.PostOrder();
  for (PatternNodeId y : p_post) {
    for (PatternNodeId x : q_post) {
      bool ok = HomLabelOk(q, x, p, y);
      for (PatternNodeId xc = q.first_child(x); ok && xc != kNullPatternNode;
           xc = q.next_sibling(xc)) {
        bool edge_ok = false;
        if (q.axis(xc) == Axis::kChild) {
          // Child edges must map to child edges of p.
          for (PatternNodeId yc = p.first_child(y); yc != kNullPatternNode;
               yc = p.next_sibling(yc)) {
            if (p.axis(yc) == Axis::kChild && hsat.get(xc, yc)) {
              edge_ok = true;
              break;
            }
          }
        } else {
          // Descendant edges map to any strictly-lower node of p.
          for (PatternNodeId yc = p.first_child(y); yc != kNullPatternNode;
               yc = p.next_sibling(yc)) {
            if (hsat.get(xc, yc) || dsat.get(xc, yc)) {
              edge_ok = true;
              break;
            }
          }
        }
        ok = edge_ok;
      }
      hsat.set(x, y, ok);
      bool below = false;
      for (PatternNodeId yc = p.first_child(y); !below &&
           yc != kNullPatternNode;
           yc = p.next_sibling(yc)) {
        below = hsat.get(x, yc) || dsat.get(x, yc);
      }
      dsat.set(x, y, below);
    }
  }
  return hsat.get(q.root(), p.root());
}

namespace {

/// Builds the canonical model of `p` for one assignment of chain lengths
/// to its descendant edges (indexed in preorder order of the lower node).
Tree BuildCanonicalModel(const Pattern& p,
                         const std::vector<PatternNodeId>& desc_nodes,
                         const std::vector<size_t>& chain_lengths, Label z) {
  Tree tree(p.symbols());
  auto fill = [&](PatternNodeId n) {
    return p.is_wildcard(n) ? z : p.label(n);
  };
  std::vector<NodeId> image(p.size(), kNullNode);
  image[p.root()] = tree.CreateRoot(fill(p.root()));
  for (PatternNodeId n : p.PreOrder()) {
    if (n == p.root()) continue;
    NodeId attach = image[p.parent(n)];
    if (p.axis(n) == Axis::kDescendant) {
      // Insert the chain of z nodes chosen for this edge.
      size_t index = 0;
      while (desc_nodes[index] != n) ++index;
      for (size_t i = 0; i < chain_lengths[index]; ++i) {
        attach = tree.AddChild(attach, z);
      }
    }
    image[n] = tree.AddChild(attach, fill(n));
  }
  return tree;
}

uint64_t SaturatingPow(uint64_t base, uint64_t exp) {
  uint64_t result = 1;
  for (uint64_t i = 0; i < exp; ++i) {
    if (result > UINT64_MAX / base) return UINT64_MAX;
    result *= base;
  }
  return result;
}

}  // namespace

ContainmentDecision DecideContainment(const Pattern& p, const Pattern& q) {
  ContainmentDecision decision;
  const Label z = p.symbols()->Fresh("z");
  const size_t w = StarLength(q) + 1;

  std::vector<PatternNodeId> desc_nodes;
  for (PatternNodeId n : p.PreOrder()) {
    if (n != p.root() && p.axis(n) == Axis::kDescendant) {
      desc_nodes.push_back(n);
    }
  }

  // Odometer over chain lengths in {0..w} per descendant edge.
  std::vector<size_t> lengths(desc_nodes.size(), 0);
  for (;;) {
    Tree model = BuildCanonicalModel(p, desc_nodes, lengths, z);
    ++decision.models_checked;
    if (!HasEmbedding(q, model)) {
      decision.contained = false;
      decision.counterexample = std::move(model);
      return decision;
    }
    // Advance the odometer.
    size_t i = 0;
    while (i < lengths.size() && lengths[i] == w) {
      lengths[i] = 0;
      ++i;
    }
    if (i == lengths.size()) break;
    ++lengths[i];
  }
  decision.contained = true;
  return decision;
}

bool HasContainmentHomomorphism(const PatternStore& store, PatternRef p,
                                PatternRef q) {
  return HasContainmentHomomorphism(store.pattern(p), store.pattern(q));
}

ContainmentDecision DecideContainment(const PatternStore& store, PatternRef p,
                                      PatternRef q) {
  return DecideContainment(store.pattern(p), store.pattern(q));
}

uint64_t CanonicalModelCount(const Pattern& p, const Pattern& q) {
  size_t desc_edges = 0;
  for (PatternNodeId n : p.PreOrder()) {
    if (n != p.root() && p.axis(n) == Axis::kDescendant) ++desc_edges;
  }
  return SaturatingPow(StarLength(q) + 2, desc_edges);
}

}  // namespace xmlup
