#ifndef XMLUP_CONFLICT_CONTAINMENT_H_
#define XMLUP_CONFLICT_CONTAINMENT_H_

#include <cstdint>
#include <optional>

#include "pattern/pattern.h"
#include "pattern/pattern_store.h"
#include "xml/tree.h"

namespace xmlup {

/// XPath tree-pattern containment (Definition 11): p ⊆ q iff every tree
/// with an embedding of p also has an embedding of q. The paper's
/// NP-hardness reductions (Theorems 4 and 6) are from *non*-containment,
/// following Miklau & Suciu [12], who showed containment for P^{//,[],*}
/// is coNP-complete.

/// Sound but incomplete polynomial test: a pattern homomorphism q → p
/// (root to root; labels compatible; child edges to child edges;
/// descendant edges to downward paths) implies p ⊆ q. Absence implies
/// nothing.
bool HasContainmentHomomorphism(const Pattern& p, const Pattern& q);

/// Ref-based variant over patterns interned in `store`. Containment is a
/// semantic property, so deciding it on the store's minimized forms agrees
/// with the original patterns; only the *counterexample* of
/// DecideContainment may differ syntactically (it is a model of the
/// minimized p, which is still a model of the original p).
bool HasContainmentHomomorphism(const PatternStore& store, PatternRef p,
                                PatternRef q);

/// For the output-preserving strengthening (additionally maps O(q) to
/// O(p), giving *selected-node* containment — what the lint
/// shadowed-update pass needs), see HasOutputPreservingHomomorphism in
/// conflict/minimize.h.

/// Exact decision via canonical models: p ⊆ q iff q embeds into every
/// canonical model of p, where canonical models replace each wildcard with
/// a fresh symbol z and each descendant edge with a chain of 0..w z-nodes,
/// w = STAR-LENGTH(q) + 1. Exponential in the number of descendant edges
/// of p ((w+1)^d models); exact for the paper's fragment.
struct ContainmentDecision {
  bool contained = false;
  /// When not contained: a canonical model of p with no embedding of q
  /// (the t_p of the reduction witnesses, Figures 7d and 8c).
  std::optional<Tree> counterexample;
  /// Number of canonical models checked before deciding.
  uint64_t models_checked = 0;
};

ContainmentDecision DecideContainment(const Pattern& p, const Pattern& q);
ContainmentDecision DecideContainment(const PatternStore& store, PatternRef p,
                                      PatternRef q);

/// Number of canonical models the exact decision would enumerate —
/// (w+1)^d; used by benchmark E6.
uint64_t CanonicalModelCount(const Pattern& p, const Pattern& q);

}  // namespace xmlup

#endif  // XMLUP_CONFLICT_CONTAINMENT_H_
