#include "conflict/detector.h"

#include "common/check.h"
#include "conflict/read_delete.h"
#include "conflict/read_insert.h"
#include "conflict/witness_build.h"
#include "dtd/type_summary.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "obs/trace.h"
#include "pattern/pattern_ops.h"
#include "xml/tree_algos.h"

namespace xmlup {
namespace {

/// Detector-level observability: per-verdict and per-method counters, the
/// linear-vs-bounded dispatch split, and an end-to-end latency histogram.
/// References are resolved once; the steady-state cost per Detect() call
/// is a handful of relaxed atomic adds.
struct DetectorMetrics {
  obs::Counter& calls;
  obs::Counter& errors;
  obs::Counter& dispatch_linear;
  obs::Counter& dispatch_branching;
  obs::Counter& verdict_conflict;
  obs::Counter& verdict_no_conflict;
  obs::Counter& verdict_unknown;
  obs::Counter& method_linear;
  obs::Counter& method_mainline;
  obs::Counter& method_bounded;
  obs::Counter& method_type_pruned;
  obs::Histogram& latency_us;

  static const DetectorMetrics& Get() {
    static const DetectorMetrics* const metrics = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
      return new DetectorMetrics{
          reg.GetCounter("detector.calls"),
          reg.GetCounter("detector.errors"),
          reg.GetCounter("detector.dispatch.linear"),
          reg.GetCounter("detector.dispatch.branching"),
          reg.GetCounter("detector.verdict.conflict"),
          reg.GetCounter("detector.verdict.no_conflict"),
          reg.GetCounter("detector.verdict.unknown"),
          reg.GetCounter("detector.method.linear_ptime"),
          reg.GetCounter("detector.method.mainline_heuristic"),
          reg.GetCounter("detector.method.bounded_search"),
          reg.GetCounter("detector.method.type_pruned"),
          reg.GetHistogram("detector.latency_us"),
      };
    }();
    return *metrics;
  }
};

/// Every Detect() call lands in exactly one of the four outcome counters:
/// calls == conflict + no_conflict + unknown + errors. Tested by the
/// accounting-invariant test in detect_hot_cache_test.cc.
void CountOutcome(const DetectorMetrics& metrics,
                  const Result<ConflictReport>& result);

void CountReport(const DetectorMetrics& metrics, const ConflictReport& report) {
  switch (report.verdict) {
    case ConflictVerdict::kConflict:
      metrics.verdict_conflict.Increment();
      break;
    case ConflictVerdict::kNoConflict:
      metrics.verdict_no_conflict.Increment();
      break;
    case ConflictVerdict::kUnknown:
      metrics.verdict_unknown.Increment();
      break;
  }
  switch (report.method) {
    case DetectorMethod::kLinearPtime:
      metrics.method_linear.Increment();
      break;
    case DetectorMethod::kMainlineHeuristic:
      metrics.method_mainline.Increment();
      break;
    case DetectorMethod::kBoundedSearch:
      metrics.method_bounded.Increment();
      break;
    case DetectorMethod::kTypePruned:
      metrics.method_type_pruned.Increment();
      break;
  }
}

void CountOutcome(const DetectorMetrics& metrics,
                  const Result<ConflictReport>& result) {
  if (result.ok()) {
    CountReport(metrics, *result);
  } else {
    metrics.errors.Increment();
  }
}

/// Stage 0 for the value path: type summaries computed directly from the
/// patterns (no store to cache them in). Returns the pruned report, or
/// nullopt when Stage 0 is disabled or cannot prove independence.
std::optional<ConflictReport> TypePruneValue(const Pattern& read,
                                             const Pattern& update_pattern,
                                             const Tree* insert_content,
                                             const DetectorOptions& options) {
  if (options.dtd == nullptr || !options.enable_type_pruning) {
    return std::nullopt;
  }
  const TypeSummary read_summary = ComputeTypeSummary(read, *options.dtd);
  const TypeSummary update_summary =
      ComputeTypeSummary(update_pattern, *options.dtd);
  const bool pruned =
      insert_content != nullptr
          ? TypePrunesReadInsert(read_summary, update_summary, *insert_content,
                                 options.semantics)
          : TypePrunesReadDelete(read_summary, update_summary,
                                 options.semantics);
  if (!pruned) return std::nullopt;
  return TypePrunedReport();
}

/// Heuristic fast path for branching reads: run the complete linear
/// algorithm on the read's mainline; if that conflicts, extend its witness
/// with models of the read's branch subtrees (so the predicates hold) and
/// check the result against the definitional checker. Sound — anything
/// accepted is a verified witness — but incomplete; failures fall through
/// to the bounded search.
template <typename VerifyFn>
std::optional<Tree> TryMainlineWitness(const Pattern& read,
                                       const ConflictReport& linear,
                                       const VerifyFn& is_witness) {
  if (!linear.conflict() || !linear.witness.has_value()) return std::nullopt;
  Tree candidate = CopyTree(*linear.witness);
  GraftBranchModelsEverywhere(&candidate, read);
  if (is_witness(candidate)) return candidate;
  return std::nullopt;
}

ConflictReport MainlineHeuristicReport(Tree witness) {
  ConflictReport report;
  report.verdict = ConflictVerdict::kConflict;
  report.witness = std::move(witness);
  report.method = DetectorMethod::kMainlineHeuristic;
  report.detail = "mainline witness extended with branch models";
  return report;
}

ConflictReport FromSearch(BruteForceResult search, size_t paper_bound,
                          size_t searched_bound) {
  ConflictReport report;
  report.method = DetectorMethod::kBoundedSearch;
  report.trees_checked = search.trees_checked;
  switch (search.outcome) {
    case SearchOutcome::kWitnessFound:
      report.verdict = ConflictVerdict::kConflict;
      report.witness = std::move(search.witness);
      break;
    case SearchOutcome::kExhaustedNoWitness:
      // Complete only if the searched size covers the paper's witness
      // bound (Lemma 11 / Theorem 5) AND the enumeration really covered
      // the whole space — a truncated search must stay kUnknown no matter
      // what its outcome field claims (defense in depth; RunSearch already
      // downgrades truncated searches to kBudgetExceeded).
      report.verdict = (searched_bound >= paper_bound && !search.truncated)
                           ? ConflictVerdict::kNoConflict
                           : ConflictVerdict::kUnknown;
      break;
    case SearchOutcome::kBudgetExceeded:
      report.verdict = ConflictVerdict::kUnknown;
      break;
  }
  return report;
}

Result<ConflictReport> DetectInsertImpl(const Pattern& read,
                                        const Pattern& insert_pattern,
                                        const Tree& inserted,
                                        const DetectorOptions& options) {
  if (std::optional<ConflictReport> pruned =
          TypePruneValue(read, insert_pattern, &inserted, options)) {
    return std::move(*pruned);
  }
  const DetectorMetrics& metrics = DetectorMetrics::Get();
  if (read.IsLinear()) {
    metrics.dispatch_linear.Increment();
    return DetectLinearReadInsertConflict(read, insert_pattern, inserted,
                                          options.semantics, options.matcher,
                                          options.build_witness);
  }
  metrics.dispatch_branching.Increment();
  // Heuristic: conflict of the read's mainline often extends to the full
  // branching read once its predicates are satisfiable everywhere. The
  // mainline call always builds its witness — TryMainlineWitness extends
  // that verified tree.
  Result<ConflictReport> mainline_report =
      DetectLinearReadInsertConflict(Mainline(read), insert_pattern, inserted,
                                     options.semantics, options.matcher,
                                     /*build_witness=*/true);
  // The mainline run uses the complete linear algorithm on valid inputs
  // (the mainline of any read is linear); a failure is a real
  // InvalidArgument/Internal error, not a heuristic miss — propagate it
  // instead of masking it behind the bounded search.
  if (!mainline_report.ok()) return mainline_report;
  std::optional<Tree> candidate = TryMainlineWitness(
      read, *mainline_report, [&](const Tree& t) {
        return IsReadInsertWitness(read, insert_pattern, inserted, t,
                                   options.semantics);
      });
  if (candidate.has_value()) {
    return MainlineHeuristicReport(std::move(*candidate));
  }
  BruteForceResult search = BruteForceReadInsertSearch(
      read, insert_pattern, inserted, options.semantics, options.search);
  return FromSearch(std::move(search),
                    PaperWitnessBound(read, insert_pattern),
                    options.search.max_nodes);
}

Result<ConflictReport> DetectDeleteImpl(const Pattern& read,
                                        const Pattern& delete_pattern,
                                        const DetectorOptions& options) {
  XMLUP_RETURN_NOT_OK(ValidateDeletePattern(delete_pattern));
  if (std::optional<ConflictReport> pruned = TypePruneValue(
          read, delete_pattern, /*insert_content=*/nullptr, options)) {
    return std::move(*pruned);
  }
  const DetectorMetrics& metrics = DetectorMetrics::Get();
  if (read.IsLinear()) {
    metrics.dispatch_linear.Increment();
    return DetectLinearReadDeleteConflict(read, delete_pattern,
                                          options.semantics, options.matcher,
                                          options.build_witness);
  }
  metrics.dispatch_branching.Increment();
  Result<ConflictReport> mainline_report =
      DetectLinearReadDeleteConflict(Mainline(read), delete_pattern,
                                     options.semantics, options.matcher,
                                     /*build_witness=*/true);
  // See DetectInsertImpl: a mainline failure is a real error, not a
  // heuristic miss.
  if (!mainline_report.ok()) return mainline_report;
  std::optional<Tree> candidate = TryMainlineWitness(
      read, *mainline_report, [&](const Tree& t) {
        return IsReadDeleteWitness(read, delete_pattern, t,
                                   options.semantics);
      });
  if (candidate.has_value()) {
    return MainlineHeuristicReport(std::move(*candidate));
  }
  BruteForceResult search = BruteForceReadDeleteSearch(
      read, delete_pattern, options.semantics, options.search);
  return FromSearch(std::move(search),
                    PaperWitnessBound(read, delete_pattern),
                    options.search.max_nodes);
}

/// Cached mirror of DetectInsertImpl: the linear path and the branching
/// heuristic's mainline probe run on the store's compiled automata (the
/// compiled read *is* its mainline chain, so one compiled core serves
/// both); only the heuristic extension and the bounded search still touch
/// the stored pattern. Dispatch counters and reports match the value impl
/// exactly.
Result<ConflictReport> DetectInsertCachedImpl(const PatternStore& store,
                                              PatternRef read,
                                              const Pattern& insert_pattern,
                                              PatternRef insert_ref,
                                              const Tree& inserted,
                                              const DetectorOptions& options) {
  if (std::optional<ConflictReport> pruned =
          TypePruneStage(store, read, UpdateOp::Kind::kInsert, insert_ref,
                         &inserted, options)) {
    return std::move(*pruned);
  }
  const DetectorMetrics& metrics = DetectorMetrics::Get();
  const CompiledPattern& read_compiled = store.compiled(read);
  const CompiledPattern& insert_compiled = store.compiled(insert_ref);
  if (store.linear(read)) {
    metrics.dispatch_linear.Increment();
    return DetectReadInsertConflictCompiled(
        read_compiled, insert_compiled, insert_pattern, inserted,
        options.semantics, options.matcher, options.build_witness);
  }
  metrics.dispatch_branching.Increment();
  Result<ConflictReport> mainline_report = DetectReadInsertConflictCompiled(
      read_compiled, insert_compiled, insert_pattern, inserted,
      options.semantics, options.matcher, /*build_witness=*/true);
  if (!mainline_report.ok()) return mainline_report;
  const Pattern& full_read = store.pattern(read);
  std::optional<Tree> candidate = TryMainlineWitness(
      full_read, *mainline_report, [&](const Tree& t) {
        return IsReadInsertWitness(full_read, insert_pattern, inserted, t,
                                   options.semantics);
      });
  if (candidate.has_value()) {
    return MainlineHeuristicReport(std::move(*candidate));
  }
  BruteForceResult search = BruteForceReadInsertSearch(
      full_read, insert_pattern, inserted, options.semantics, options.search);
  return FromSearch(std::move(search),
                    PaperWitnessBound(full_read, insert_pattern),
                    options.search.max_nodes);
}

/// Cached mirror of DetectDeleteImpl; see DetectInsertCachedImpl.
Result<ConflictReport> DetectDeleteCachedImpl(const PatternStore& store,
                                              PatternRef read,
                                              const Pattern& delete_pattern,
                                              PatternRef delete_ref,
                                              const DetectorOptions& options) {
  XMLUP_RETURN_NOT_OK(ValidateDeletePattern(delete_pattern));
  if (std::optional<ConflictReport> pruned =
          TypePruneStage(store, read, UpdateOp::Kind::kDelete, delete_ref,
                         /*insert_content=*/nullptr, options)) {
    return std::move(*pruned);
  }
  const DetectorMetrics& metrics = DetectorMetrics::Get();
  const CompiledPattern& read_compiled = store.compiled(read);
  const CompiledPattern& delete_compiled = store.compiled(delete_ref);
  if (store.linear(read)) {
    metrics.dispatch_linear.Increment();
    return DetectReadDeleteConflictCompiled(
        read_compiled, delete_compiled, delete_pattern, options.semantics,
        options.matcher, options.build_witness);
  }
  metrics.dispatch_branching.Increment();
  Result<ConflictReport> mainline_report = DetectReadDeleteConflictCompiled(
      read_compiled, delete_compiled, delete_pattern, options.semantics,
      options.matcher, /*build_witness=*/true);
  if (!mainline_report.ok()) return mainline_report;
  const Pattern& full_read = store.pattern(read);
  std::optional<Tree> candidate = TryMainlineWitness(
      full_read, *mainline_report, [&](const Tree& t) {
        return IsReadDeleteWitness(full_read, delete_pattern, t,
                                   options.semantics);
      });
  if (candidate.has_value()) {
    return MainlineHeuristicReport(std::move(*candidate));
  }
  BruteForceResult search = BruteForceReadDeleteSearch(
      full_read, delete_pattern, options.semantics, options.search);
  return FromSearch(std::move(search),
                    PaperWitnessBound(full_read, delete_pattern),
                    options.search.max_nodes);
}

}  // namespace

std::optional<ConflictReport> TypePruneStage(const PatternStore& store,
                                             PatternRef read,
                                             UpdateOp::Kind kind,
                                             PatternRef update_pattern,
                                             const Tree* insert_content,
                                             const DetectorOptions& options) {
  if (options.dtd == nullptr || !options.enable_type_pruning) {
    return std::nullopt;
  }
  const Dtd& dtd = *options.dtd;
  const TypeSummary& read_summary = store.type_summary(read, dtd);
  const TypeSummary& update_summary = store.type_summary(update_pattern, dtd);
  bool pruned;
  if (kind == UpdateOp::Kind::kInsert) {
    XMLUP_CHECK_STREAM(insert_content != nullptr)
        << "TypePruneStage: insert update without content tree";
    pruned = TypePrunesReadInsert(read_summary, update_summary,
                                  *insert_content, options.semantics);
  } else {
    pruned = TypePrunesReadDelete(read_summary, update_summary,
                                  options.semantics);
  }
  if (!pruned) return std::nullopt;
  return TypePrunedReport();
}

Result<ConflictReport> Detect(const Pattern& read, const UpdateOp& update,
                              const DetectorOptions& options) {
  const DetectorMetrics& metrics = DetectorMetrics::Get();
  metrics.calls.Increment();
  obs::ScopedTimer timer(&metrics.latency_us);
  obs::TraceSpan span("Detect");
  Result<ConflictReport> result = update.Visit(
      [&](const UpdateOp::InsertDesc& insert) -> Result<ConflictReport> {
        return DetectInsertImpl(read, insert.pattern, *insert.content,
                                options);
      },
      [&](const UpdateOp::DeleteDesc& del) -> Result<ConflictReport> {
        return DetectDeleteImpl(read, del.pattern, options);
      });
  CountOutcome(metrics, result);
  return result;
}

Result<ConflictReport> Detect(const PatternStore& store, PatternRef read,
                              const UpdateOp& update,
                              const DetectorOptions& options) {
  const DetectorMetrics& metrics = DetectorMetrics::Get();
  if (!read.valid() || read.id() >= store.size()) {
    // A counted error, not a crash: callers handing out refs (services,
    // the lint driver) get a diagnosable status and the accounting
    // invariant still holds.
    metrics.calls.Increment();
    metrics.errors.Increment();
    return Status::InvalidArgument(
        "PatternRef is invalid or does not belong to this store");
  }
  if (update.pattern_store() != &store || !update.pattern_ref().valid()) {
    // Update not bound to this store: no compiled form to fetch for it —
    // resolve the read and take the value path (which does its own call
    // accounting).
    return Detect(store.pattern(read), update, options);
  }
  metrics.calls.Increment();
  obs::ScopedTimer timer(&metrics.latency_us);
  obs::TraceSpan span("Detect");
  const PatternRef update_ref = update.pattern_ref();
  Result<ConflictReport> result = update.Visit(
      [&](const UpdateOp::InsertDesc& insert) -> Result<ConflictReport> {
        return DetectInsertCachedImpl(store, read, insert.pattern, update_ref,
                                      *insert.content, options);
      },
      [&](const UpdateOp::DeleteDesc& del) -> Result<ConflictReport> {
        return DetectDeleteCachedImpl(store, read, del.pattern, update_ref,
                                      options);
      });
  CountOutcome(metrics, result);
  return result;
}

}  // namespace xmlup
