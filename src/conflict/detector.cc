#include "conflict/detector.h"

#include "conflict/read_delete.h"
#include "conflict/read_insert.h"
#include "conflict/witness_build.h"
#include "pattern/pattern_ops.h"
#include "xml/tree_algos.h"

namespace xmlup {
namespace {

/// Heuristic fast path for branching reads: run the complete linear
/// algorithm on the read's mainline; if that conflicts, extend its witness
/// with models of the read's branch subtrees (so the predicates hold) and
/// check the result against the definitional checker. Sound — anything
/// accepted is a verified witness — but incomplete; failures fall through
/// to the bounded search.
template <typename VerifyFn>
std::optional<Tree> TryMainlineWitness(const Pattern& read,
                                       const LinearConflictReport& linear,
                                       const VerifyFn& is_witness) {
  if (!linear.conflict || !linear.witness.has_value()) return std::nullopt;
  Tree candidate = CopyTree(*linear.witness);
  GraftBranchModelsEverywhere(&candidate, read);
  if (is_witness(candidate)) return candidate;
  return std::nullopt;
}

ConflictReport FromLinear(LinearConflictReport linear) {
  ConflictReport report;
  report.verdict = linear.conflict ? ConflictVerdict::kConflict
                                   : ConflictVerdict::kNoConflict;
  report.witness = std::move(linear.witness);
  report.method = "linear-ptime";
  if (!linear.detail.empty()) report.method += " (" + linear.detail + ")";
  return report;
}

ConflictReport FromSearch(BruteForceResult search, size_t paper_bound,
                          size_t searched_bound) {
  ConflictReport report;
  report.method = "bounded-search";
  report.trees_checked = search.trees_checked;
  switch (search.outcome) {
    case SearchOutcome::kWitnessFound:
      report.verdict = ConflictVerdict::kConflict;
      report.witness = std::move(search.witness);
      break;
    case SearchOutcome::kExhaustedNoWitness:
      // Complete only if the searched size covers the paper's witness
      // bound (Lemma 11 / Theorem 5) AND the enumeration really covered
      // the whole space — a truncated search must stay kUnknown no matter
      // what its outcome field claims (defense in depth; RunSearch already
      // downgrades truncated searches to kBudgetExceeded).
      report.verdict = (searched_bound >= paper_bound && !search.truncated)
                           ? ConflictVerdict::kNoConflict
                           : ConflictVerdict::kUnknown;
      break;
    case SearchOutcome::kBudgetExceeded:
      report.verdict = ConflictVerdict::kUnknown;
      break;
  }
  return report;
}

}  // namespace

std::string_view ConflictVerdictName(ConflictVerdict verdict) {
  switch (verdict) {
    case ConflictVerdict::kConflict:
      return "conflict";
    case ConflictVerdict::kNoConflict:
      return "no-conflict";
    case ConflictVerdict::kUnknown:
      return "unknown";
  }
  return "?";
}

Result<ConflictReport> DetectReadInsert(const Pattern& read,
                                        const Pattern& insert_pattern,
                                        const Tree& inserted,
                                        const DetectorOptions& options) {
  if (read.IsLinear()) {
    XMLUP_ASSIGN_OR_RETURN(
        LinearConflictReport linear,
        DetectReadInsertConflictLinear(read, insert_pattern, inserted,
                                       options.semantics, options.matcher));
    return FromLinear(std::move(linear));
  }
  // Heuristic: conflict of the read's mainline often extends to the full
  // branching read once its predicates are satisfiable everywhere.
  Result<LinearConflictReport> mainline_report =
      DetectReadInsertConflictLinear(Mainline(read), insert_pattern, inserted,
                                     options.semantics, options.matcher);
  if (mainline_report.ok()) {
    std::optional<Tree> candidate = TryMainlineWitness(
        read, *mainline_report, [&](const Tree& t) {
          return IsReadInsertWitness(read, insert_pattern, inserted, t,
                                     options.semantics);
        });
    if (candidate.has_value()) {
      ConflictReport report;
      report.verdict = ConflictVerdict::kConflict;
      report.witness = std::move(candidate);
      report.method = "mainline-heuristic";
      return report;
    }
  }
  BruteForceResult search = BruteForceReadInsertSearch(
      read, insert_pattern, inserted, options.semantics, options.search);
  return FromSearch(std::move(search),
                    PaperWitnessBound(read, insert_pattern),
                    options.search.max_nodes);
}

Result<ConflictReport> DetectReadDelete(const Pattern& read,
                                        const Pattern& delete_pattern,
                                        const DetectorOptions& options) {
  if (delete_pattern.output() == delete_pattern.root()) {
    return Status::InvalidArgument("delete pattern must not select the root");
  }
  if (read.IsLinear()) {
    XMLUP_ASSIGN_OR_RETURN(
        LinearConflictReport linear,
        DetectReadDeleteConflictLinear(read, delete_pattern,
                                       options.semantics, options.matcher));
    return FromLinear(std::move(linear));
  }
  Result<LinearConflictReport> mainline_report =
      DetectReadDeleteConflictLinear(Mainline(read), delete_pattern,
                                     options.semantics, options.matcher);
  if (mainline_report.ok()) {
    std::optional<Tree> candidate = TryMainlineWitness(
        read, *mainline_report, [&](const Tree& t) {
          return IsReadDeleteWitness(read, delete_pattern, t,
                                     options.semantics);
        });
    if (candidate.has_value()) {
      ConflictReport report;
      report.verdict = ConflictVerdict::kConflict;
      report.witness = std::move(candidate);
      report.method = "mainline-heuristic";
      return report;
    }
  }
  BruteForceResult search = BruteForceReadDeleteSearch(
      read, delete_pattern, options.semantics, options.search);
  return FromSearch(std::move(search),
                    PaperWitnessBound(read, delete_pattern),
                    options.search.max_nodes);
}

}  // namespace xmlup
