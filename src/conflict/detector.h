#ifndef XMLUP_CONFLICT_DETECTOR_H_
#define XMLUP_CONFLICT_DETECTOR_H_

#include <optional>

#include "common/result.h"
#include "conflict/bounded_search.h"
#include "conflict/report.h"
#include "conflict/update_op.h"
#include "conflict/witness_check.h"
#include "match/matching.h"
#include "pattern/pattern.h"
#include "pattern/pattern_store.h"
#include "xml/tree.h"

namespace xmlup {

class Dtd;

struct DetectorOptions {
  ConflictSemantics semantics = ConflictSemantics::kNode;
  MatcherKind matcher = MatcherKind::kNfa;
  /// Budget for the NP path (branching reads).
  BoundedSearchOptions search;
  /// Construct (and re-verify) a witness tree on kConflict verdicts.
  /// Verdict-only callers (the batch matrix, lint) can turn this off: the
  /// witness construction mints fresh labels and re-runs the Lemma 1
  /// checker per conflict, which dominates the cached hot path. Verdict,
  /// method and detail are unaffected. The branching-read heuristic
  /// internally still builds the mainline witness it extends (its
  /// soundness proof needs the verified tree).
  bool build_witness = true;
  /// Schema for the Stage 0 type-pruning filter (dtd/type_summary.h).
  /// When set, detection is *conservative under the schema*: Stage 0 may
  /// answer kNoConflict (method kTypePruned) for pairs that cannot
  /// conflict on any DTD-conformant document, while Stages 1-2 keep the
  /// unrestricted-document semantics of the paper. Setting a schema can
  /// only refine kConflict/kUnknown answers into schema-sound kNoConflict
  /// ones — it never flips a no-conflict verdict. Must share the caller's
  /// SymbolTable and outlive every Detect call (the PatternStore caches
  /// summaries keyed by its address). Null disables Stage 0 entirely.
  const Dtd* dtd = nullptr;
  /// Ablation toggle for Stage 0; meaningful only with `dtd` set. With
  /// pruning off (or no schema) the pipeline is byte-identical to the
  /// pre-Stage-0 detector.
  bool enable_type_pruning = true;
  /// Multi-pair scans (conflict/transactions.h): record *every*
  /// uncertified pair in deterministic order instead of stopping at the
  /// first — what a scheduler needs to distinguish one bad pair from a
  /// dense conflict. The default keeps the cheap early exit. Single-pair
  /// Detect/Certify calls ignore this.
  bool exhaustive = false;
};

/// Stage 0 of the staged verdict pipeline, exposed for batch callers that
/// want to prune a pair *before* spending a memo-cache slot on it: when a
/// schema is configured and the pair's type footprints are disjoint,
/// returns the (fixed-field) kTypePruned / kNoConflict report; otherwise
/// nullopt, and the pair belongs in Stages 1-2 (a full Detect call).
/// Summaries are served from the store's per-entry cache
/// (PatternStore::type_summary). `insert_content` is required for insert
/// updates and ignored for deletes. Does not touch the detector.* counters
/// — Detect's own Stage 0 does its accounting inside the facade.
std::optional<ConflictReport> TypePruneStage(const PatternStore& store,
                                             PatternRef read,
                                             UpdateOp::Kind kind,
                                             PatternRef update_pattern,
                                             const Tree* insert_content,
                                             const DetectorOptions& options);

/// Unified read-update conflict detection — the one entry point of the
/// detector stack, a staged verdict pipeline where each stage either
/// returns a final report or hands the pair down:
///   - Stage 0 (only with options.dtd set): the schema-type disjointness
///     filter — method kTypePruned, always kNoConflict, no automata work;
///   - Stage 1: dispatch on the update's kind and the read's shape —
///     linear read: the complete polynomial algorithms (Theorems 1-2,
///     Corollaries 1-2), method kLinearPtime, definitive verdict;
///     branching read: the sound mainline heuristic (method
///     kMainlineHeuristic on success);
///   - Stage 2: bounded witness search (method kBoundedSearch), which may
///     answer kUnknown when the budget does not cover the paper's witness
///     bound.
///
/// Per-call verdict/method counters and a latency histogram are reported
/// into obs::MetricsRegistry::Default(); a "Detect" span is recorded when
/// obs::TraceRecorder::Default() is enabled.
Result<ConflictReport> Detect(const Pattern& read, const UpdateOp& update,
                              const DetectorOptions& options = {});

/// Ref-based entry point: the read is an interned pattern; the detector
/// fetches its pre-minimized form from `store` (O(1), no canonicalization)
/// and otherwise behaves exactly like the value overload. The verdict is
/// identical to Detect(store.pattern(read), ...) by construction, and to
/// detection on the original (un-minimized) pattern because minimization
/// is equivalence-preserving.
///
/// This is the hot path: when `update` is bound to `store` (the ref
/// factories or UpdateOp::Bind), detection runs on the store's compiled
/// automata (PatternStore::compiled) with product results memoized in
/// NfaProductCache::Default() — no per-call regex/NFA construction.
/// Reports are identical to the value overload's on the stored pattern,
/// field for field. An update not bound to this store falls back to the
/// value overload on the resolved read. An invalid ref (or one minted by
/// another store, when detectable) returns InvalidArgument and counts
/// under detector.errors.
Result<ConflictReport> Detect(const PatternStore& store, PatternRef read,
                              const UpdateOp& update,
                              const DetectorOptions& options = {});

}  // namespace xmlup

#endif  // XMLUP_CONFLICT_DETECTOR_H_
