#ifndef XMLUP_CONFLICT_DETECTOR_H_
#define XMLUP_CONFLICT_DETECTOR_H_

#include <optional>
#include <string>

#include "common/result.h"
#include "conflict/bounded_search.h"
#include "conflict/witness_check.h"
#include "match/matching.h"
#include "pattern/pattern.h"
#include "xml/tree.h"

namespace xmlup {

/// Verdict of the unified detector. The problem is NP-complete in general
/// (§5), so for branching reads the detector may legitimately answer
/// kUnknown when its search budget is exhausted before the paper's witness
/// bound is covered.
enum class ConflictVerdict {
  kConflict,
  kNoConflict,
  kUnknown,
};

std::string_view ConflictVerdictName(ConflictVerdict verdict);

struct ConflictReport {
  ConflictVerdict verdict = ConflictVerdict::kUnknown;
  /// Set when verdict == kConflict: a verified witness tree.
  std::optional<Tree> witness;
  /// Which strategy decided: "linear-ptime" (Theorems 1-2, complete) or
  /// "bounded-search" (§5 NP path).
  std::string method;
  /// Trees enumerated by the bounded search (0 for the linear path).
  uint64_t trees_checked = 0;
};

struct DetectorOptions {
  ConflictSemantics semantics = ConflictSemantics::kNode;
  MatcherKind matcher = MatcherKind::kNfa;
  /// Budget for the NP path (branching reads).
  BoundedSearchOptions search;
};

/// Unified read-insert conflict detection: dispatches to the polynomial
/// algorithm when the read pattern is linear (complete — Corollary 2), and
/// to bounded witness search otherwise.
Result<ConflictReport> DetectReadInsert(const Pattern& read,
                                        const Pattern& insert_pattern,
                                        const Tree& inserted,
                                        const DetectorOptions& options = {});

/// Unified read-delete conflict detection (Corollary 1 fast path).
Result<ConflictReport> DetectReadDelete(const Pattern& read,
                                        const Pattern& delete_pattern,
                                        const DetectorOptions& options = {});

}  // namespace xmlup

#endif  // XMLUP_CONFLICT_DETECTOR_H_
