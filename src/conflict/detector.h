#ifndef XMLUP_CONFLICT_DETECTOR_H_
#define XMLUP_CONFLICT_DETECTOR_H_

#include "common/result.h"
#include "conflict/bounded_search.h"
#include "conflict/report.h"
#include "conflict/update_op.h"
#include "conflict/witness_check.h"
#include "match/matching.h"
#include "pattern/pattern.h"
#include "pattern/pattern_store.h"
#include "xml/tree.h"

namespace xmlup {

struct DetectorOptions {
  ConflictSemantics semantics = ConflictSemantics::kNode;
  MatcherKind matcher = MatcherKind::kNfa;
  /// Budget for the NP path (branching reads).
  BoundedSearchOptions search;
  /// Construct (and re-verify) a witness tree on kConflict verdicts.
  /// Verdict-only callers (the batch matrix, lint) can turn this off: the
  /// witness construction mints fresh labels and re-runs the Lemma 1
  /// checker per conflict, which dominates the cached hot path. Verdict,
  /// method and detail are unaffected. The branching-read heuristic
  /// internally still builds the mainline witness it extends (its
  /// soundness proof needs the verified tree).
  bool build_witness = true;
};

/// Unified read-update conflict detection — the one entry point of the
/// detector stack. Dispatches on the update's kind and the read's shape:
///   - linear read: the complete polynomial algorithms (Theorems 1-2,
///     Corollaries 1-2) — method kLinearPtime, definitive verdict;
///   - branching read: the sound mainline heuristic first (method
///     kMainlineHeuristic on success), then bounded witness search
///     (method kBoundedSearch), which may answer kUnknown when the budget
///     does not cover the paper's witness bound.
///
/// Per-call verdict/method counters and a latency histogram are reported
/// into obs::MetricsRegistry::Default(); a "Detect" span is recorded when
/// obs::TraceRecorder::Default() is enabled.
Result<ConflictReport> Detect(const Pattern& read, const UpdateOp& update,
                              const DetectorOptions& options = {});

/// Ref-based entry point: the read is an interned pattern; the detector
/// fetches its pre-minimized form from `store` (O(1), no canonicalization)
/// and otherwise behaves exactly like the value overload. The verdict is
/// identical to Detect(store.pattern(read), ...) by construction, and to
/// detection on the original (un-minimized) pattern because minimization
/// is equivalence-preserving.
///
/// This is the hot path: when `update` is bound to `store` (the ref
/// factories or UpdateOp::Bind), detection runs on the store's compiled
/// automata (PatternStore::compiled) with product results memoized in
/// NfaProductCache::Default() — no per-call regex/NFA construction.
/// Reports are identical to the value overload's on the stored pattern,
/// field for field. An update not bound to this store falls back to the
/// value overload on the resolved read. An invalid ref (or one minted by
/// another store, when detectable) returns InvalidArgument and counts
/// under detector.errors.
Result<ConflictReport> Detect(const PatternStore& store, PatternRef read,
                              const UpdateOp& update,
                              const DetectorOptions& options = {});

}  // namespace xmlup

#endif  // XMLUP_CONFLICT_DETECTOR_H_
