#ifndef XMLUP_CONFLICT_DETECTOR_H_
#define XMLUP_CONFLICT_DETECTOR_H_

#include "common/result.h"
#include "conflict/bounded_search.h"
#include "conflict/report.h"
#include "conflict/update_op.h"
#include "conflict/witness_check.h"
#include "match/matching.h"
#include "pattern/pattern.h"
#include "xml/tree.h"

namespace xmlup {

struct DetectorOptions {
  ConflictSemantics semantics = ConflictSemantics::kNode;
  MatcherKind matcher = MatcherKind::kNfa;
  /// Budget for the NP path (branching reads).
  BoundedSearchOptions search;
};

/// Unified read-update conflict detection — the one entry point of the
/// detector stack. Dispatches on the update's kind and the read's shape:
///   - linear read: the complete polynomial algorithms (Theorems 1-2,
///     Corollaries 1-2) — method kLinearPtime, definitive verdict;
///   - branching read: the sound mainline heuristic first (method
///     kMainlineHeuristic on success), then bounded witness search
///     (method kBoundedSearch), which may answer kUnknown when the budget
///     does not cover the paper's witness bound.
///
/// Per-call verdict/method counters and a latency histogram are reported
/// into obs::MetricsRegistry::Default(); a "Detect" span is recorded when
/// obs::TraceRecorder::Default() is enabled.
Result<ConflictReport> Detect(const Pattern& read, const UpdateOp& update,
                              const DetectorOptions& options = {});

/// Deprecated pre-facade entry point: wraps the arguments in an insert
/// UpdateOp (copying `inserted` into shared content) and calls Detect().
/// New code should build an UpdateOp once and call Detect() directly.
[[deprecated("use Detect(read, UpdateOp::MakeInsert(...), options)")]]
Result<ConflictReport> DetectReadInsert(const Pattern& read,
                                        const Pattern& insert_pattern,
                                        const Tree& inserted,
                                        const DetectorOptions& options = {});

/// Deprecated pre-facade entry point: wraps the arguments in a delete
/// UpdateOp and calls Detect().
[[deprecated("use Detect(read, UpdateOp::MakeDelete(...), options)")]]
Result<ConflictReport> DetectReadDelete(const Pattern& read,
                                        const Pattern& delete_pattern,
                                        const DetectorOptions& options = {});

}  // namespace xmlup

#endif  // XMLUP_CONFLICT_DETECTOR_H_
