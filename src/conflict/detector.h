#ifndef XMLUP_CONFLICT_DETECTOR_H_
#define XMLUP_CONFLICT_DETECTOR_H_

#include "common/result.h"
#include "conflict/bounded_search.h"
#include "conflict/report.h"
#include "conflict/update_op.h"
#include "conflict/witness_check.h"
#include "match/matching.h"
#include "pattern/pattern.h"
#include "pattern/pattern_store.h"
#include "xml/tree.h"

namespace xmlup {

struct DetectorOptions {
  ConflictSemantics semantics = ConflictSemantics::kNode;
  MatcherKind matcher = MatcherKind::kNfa;
  /// Budget for the NP path (branching reads).
  BoundedSearchOptions search;
};

/// Unified read-update conflict detection — the one entry point of the
/// detector stack. Dispatches on the update's kind and the read's shape:
///   - linear read: the complete polynomial algorithms (Theorems 1-2,
///     Corollaries 1-2) — method kLinearPtime, definitive verdict;
///   - branching read: the sound mainline heuristic first (method
///     kMainlineHeuristic on success), then bounded witness search
///     (method kBoundedSearch), which may answer kUnknown when the budget
///     does not cover the paper's witness bound.
///
/// Per-call verdict/method counters and a latency histogram are reported
/// into obs::MetricsRegistry::Default(); a "Detect" span is recorded when
/// obs::TraceRecorder::Default() is enabled.
Result<ConflictReport> Detect(const Pattern& read, const UpdateOp& update,
                              const DetectorOptions& options = {});

/// Ref-based entry point: the read is an interned pattern; the detector
/// fetches its pre-minimized form from `store` (O(1), no canonicalization)
/// and otherwise behaves exactly like the value overload. The verdict is
/// identical to Detect(store.pattern(read), ...) by construction, and to
/// detection on the original (un-minimized) pattern because minimization
/// is equivalence-preserving.
Result<ConflictReport> Detect(const PatternStore& store, PatternRef read,
                              const UpdateOp& update,
                              const DetectorOptions& options = {});

}  // namespace xmlup

#endif  // XMLUP_CONFLICT_DETECTOR_H_
