#include "conflict/minimize.h"

#include <vector>

#include "common/check.h"

namespace xmlup {
namespace {

/// Label compatibility for homomorphisms (cf. containment.cc): wildcards
/// in `from` map anywhere; concrete labels need an equal concrete label.
bool HomLabelOk(const Pattern& from, PatternNodeId x, const Pattern& to,
                PatternNodeId y) {
  if (from.is_wildcard(x)) return true;
  if (to.is_wildcard(y)) return false;
  return from.LabelName(x) == to.LabelName(y);
}

}  // namespace

bool HasOutputPreservingHomomorphism(const Pattern& from, const Pattern& to) {
  const size_t stride = to.size();
  std::vector<bool> hsat(from.size() * stride, false);
  std::vector<bool> dsat(from.size() * stride, false);
  const std::vector<PatternNodeId> to_post = to.PostOrder();
  const std::vector<PatternNodeId> from_post = from.PostOrder();
  for (PatternNodeId y : to_post) {
    for (PatternNodeId x : from_post) {
      bool ok = HomLabelOk(from, x, to, y);
      // The output node must land on the output node.
      if (x == from.output() && y != to.output()) ok = false;
      for (PatternNodeId xc = from.first_child(x);
           ok && xc != kNullPatternNode; xc = from.next_sibling(xc)) {
        bool edge_ok = false;
        for (PatternNodeId yc = to.first_child(y); yc != kNullPatternNode;
             yc = to.next_sibling(yc)) {
          if (from.axis(xc) == Axis::kChild) {
            edge_ok |= to.axis(yc) == Axis::kChild && hsat[xc * stride + yc];
          } else {
            edge_ok |= hsat[xc * stride + yc] || dsat[xc * stride + yc];
          }
          if (edge_ok) break;
        }
        ok = edge_ok;
      }
      hsat[x * stride + y] = ok;
      bool below = false;
      for (PatternNodeId yc = to.first_child(y);
           !below && yc != kNullPatternNode; yc = to.next_sibling(yc)) {
        below = hsat[x * stride + yc] || dsat[x * stride + yc];
      }
      dsat[x * stride + y] = below;
    }
  }
  return hsat[from.root() * stride + to.root()];
}

Pattern RemoveLeaf(const Pattern& p, PatternNodeId node) {
  XMLUP_CHECK(node != p.root());
  XMLUP_CHECK(node != p.output());
  XMLUP_CHECK(p.first_child(node) == kNullPatternNode);
  Pattern reduced(p.symbols());
  std::vector<PatternNodeId> image(p.size(), kNullPatternNode);
  image[p.root()] = reduced.CreateRoot(p.label(p.root()));
  for (PatternNodeId n : p.PreOrder()) {
    if (n == p.root() || n == node) continue;
    image[n] = reduced.AddChild(image[p.parent(n)], p.label(n), p.axis(n));
  }
  reduced.SetOutput(image[p.output()]);
  return reduced;
}

Pattern MinimizePattern(const Pattern& p) {
  Pattern current = p;
  bool changed = true;
  while (changed && current.size() > 1) {
    changed = false;
    for (PatternNodeId n : current.PreOrder()) {
      if (n == current.root() || n == current.output()) continue;
      if (current.first_child(n) != kNullPatternNode) continue;
      Pattern reduced = RemoveLeaf(current, n);
      // The reduced pattern trivially contains the original (fewer
      // constraints, same output position); equality needs the converse,
      // certified by an output-preserving homomorphism original → reduced.
      if (HasOutputPreservingHomomorphism(current, reduced)) {
        current = std::move(reduced);
        changed = true;
        break;
      }
    }
  }
  return current;
}

}  // namespace xmlup
