#ifndef XMLUP_CONFLICT_MINIMIZE_H_
#define XMLUP_CONFLICT_MINIMIZE_H_

#include "pattern/pattern.h"

namespace xmlup {

/// Tree-pattern minimization in the spirit of Amer-Yahia, Cho, Lakshmanan
/// and Srivastava (the paper's reference [2]): remove predicate branches
/// that are implied by the rest of the pattern. Smaller patterns make
/// every downstream algorithm — evaluation, matching, conflict detection,
/// containment — cheaper.

/// Output-preserving pattern homomorphism `from` → `to`: root to root,
/// O(from) to O(to), labels compatible (wildcards in `from` map anywhere,
/// concrete labels only onto equal concrete labels), child edges onto
/// child edges, descendant edges onto downward paths. Its existence
/// implies [[to]](t) ⊆ [[from]](t) for every tree t.
bool HasOutputPreservingHomomorphism(const Pattern& from, const Pattern& to);

/// Removes redundant leaves: a non-output leaf x is deleted when the full
/// pattern maps homomorphically (output-preserving) into the pattern
/// without x — then both patterns return exactly the same result on every
/// tree. Iterates to a fixpoint. Sound for all of P^{//,[],*} (the result
/// is always equivalent); complete for homomorphism-characterizable
/// fragments.
Pattern MinimizePattern(const Pattern& p);

/// Removes `node` (which must be a leaf, not the root and not the output)
/// from `p`. Exposed for tests.
Pattern RemoveLeaf(const Pattern& p, PatternNodeId node);

}  // namespace xmlup

#endif  // XMLUP_CONFLICT_MINIMIZE_H_
