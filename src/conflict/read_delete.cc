#include "conflict/read_delete.h"

#include <string>

#include "conflict/update_op.h"
#include "conflict/witness_build.h"
#include "pattern/pattern_ops.h"
#include "pattern/pattern_writer.h"

namespace xmlup {
namespace {

/// Builds the Lemma 3 "(If)" witness for a node conflict found on the read
/// edge into `n_prime` and verifies it. `word` is the matching witness: the
/// label classes of the path from the tree root to the deletion point u.
Result<Tree> BuildNodeConflictWitness(const Pattern& read,
                                      const Pattern& delete_pattern,
                                      PatternNodeId n_prime,
                                      const ClassWord& word,
                                      ConflictSemantics semantics) {
  NodeId u = kNullNode;
  Tree witness = MatchWordToPath(word, read.symbols(), &u);
  const Label filler = read.symbols()->Fresh("mfill");

  if (read.axis(n_prime) == Axis::kDescendant) {
    // Descendant edge (n, n'): insert a model of SEQ_{n'}^{O(R)} as a child
    // of u; the read then selects a node inside the doomed subtree.
    const Pattern suffix = ExtractSeq(read, n_prime, read.output());
    GraftModel(&witness, u, suffix, suffix.root(), filler);
  } else {
    // Child edge: u is the image of n' itself. If n' is not the output,
    // extend below u with a model of the rest of the read.
    if (n_prime != read.output()) {
      const PatternNodeId n_next = read.first_child(n_prime);
      const Pattern suffix = ExtractSeq(read, n_next, read.output());
      GraftModel(&witness, u, suffix, suffix.root(), filler);
    }
  }
  GraftBranchModelsEverywhere(&witness, delete_pattern);
  if (IsReadDeleteWitness(read, delete_pattern, witness, semantics)) {
    return witness;
  }
  // A node-conflict witness need not witness a *value* conflict on the
  // same tree (the paper's Figure 3); the Lemma 2 construction uniquifies
  // the result subtrees with fresh-labeled children.
  const Label unique = read.symbols()->Fresh("uniq");
  for (NodeId n : witness.PreOrder()) witness.AddChild(n, unique);
  if (IsReadDeleteWitness(read, delete_pattern, witness, semantics)) {
    return witness;
  }
  return Status::Internal(
      "constructed read-delete witness failed verification");
}

/// Builds a witness for the "deletion strictly below a read result" case
/// (tree/value semantics) from a weak match of D' against the whole read.
Result<Tree> BuildSubtreeModificationWitness(const Pattern& read,
                                             const Pattern& delete_pattern,
                                             const ClassWord& word,
                                             ConflictSemantics semantics) {
  Tree witness = MatchWordToPath(word, read.symbols(), nullptr);
  GraftBranchModelsEverywhere(&witness, delete_pattern);
  if (IsReadDeleteWitness(read, delete_pattern, witness, semantics)) {
    return witness;
  }
  // Lemma 2 fallback for value semantics: uniquify the subtrees along the
  // trunk with fresh-labeled children so that a modified result subtree
  // cannot be isomorphic to an unmodified one.
  const Label unique = read.symbols()->Fresh("uniq");
  for (NodeId n : witness.PreOrder()) witness.AddChild(n, unique);
  if (IsReadDeleteWitness(read, delete_pattern, witness, semantics)) {
    return witness;
  }
  return Status::Internal(
      "constructed read-delete subtree witness failed verification");
}

}  // namespace

Result<ConflictReport> DetectLinearReadDeleteConflict(
    const Pattern& read, const Pattern& delete_pattern,
    ConflictSemantics semantics, MatcherKind matcher, bool build_witness) {
  if (!read.IsLinear()) {
    return Status::InvalidArgument(
        "read pattern must be linear (P^{//,*}) for polynomial detection");
  }
  XMLUP_RETURN_NOT_OK(ValidateDeletePattern(delete_pattern));

  // Corollary 1: only the delete's mainline matters.
  const Pattern mainline = Mainline(delete_pattern);

  ConflictReport report;
  report.verdict = ConflictVerdict::kNoConflict;
  report.method = DetectorMethod::kLinearPtime;

  // Lemma 3: scan the read's edges.
  for (PatternNodeId n_prime : read.PreOrder()) {
    if (n_prime == read.root()) continue;
    const PatternNodeId n = read.parent(n_prime);
    MatchResult match;
    if (read.axis(n_prime) == Axis::kDescendant) {
      match = MatchWeakly(mainline, ExtractSeq(read, read.root(), n), matcher);
    } else {
      match =
          MatchStrongly(mainline, ExtractSeq(read, read.root(), n_prime),
                        matcher);
    }
    if (!match.matches) continue;
    report.verdict = ConflictVerdict::kConflict;
    report.detail =
        std::string("node conflict via ") +
        (read.axis(n_prime) == Axis::kDescendant ? "descendant" : "child") +
        " edge into read node " + read.LabelName(n_prime);
    if (build_witness) {
      XMLUP_ASSIGN_OR_RETURN(
          Tree witness,
          BuildNodeConflictWitness(read, delete_pattern, n_prime,
                                   match.witness_word, semantics));
      report.witness = std::move(witness);
    }
    return report;
  }

  if (semantics == ConflictSemantics::kNode) return report;

  // Tree / value semantics (equivalent for linear patterns, Lemma 2): a
  // conflict also exists when the deletion point can fall at-or-below a
  // read result, modifying the returned subtree.
  MatchResult below = MatchWeakly(mainline, read, matcher);
  if (below.matches) {
    report.verdict = ConflictVerdict::kConflict;
    report.detail = "subtree-modification conflict (D weakly matches R)";
    if (build_witness) {
      XMLUP_ASSIGN_OR_RETURN(
          Tree witness,
          BuildSubtreeModificationWitness(read, delete_pattern,
                                          below.witness_word, semantics));
      report.witness = std::move(witness);
    }
  }
  return report;
}

Result<ConflictReport> DetectReadDeleteConflictCompiled(
    const CompiledPattern& read, const CompiledPattern& del,
    const Pattern& delete_pattern, ConflictSemantics semantics,
    MatcherKind matcher, bool build_witness) {
  XMLUP_RETURN_NOT_OK(ValidateDeletePattern(delete_pattern));

  // The compiled read *is* the mainline chain; for a linear read this is
  // the read itself (linear patterns are mainline fixpoints), so running
  // on it is the Lemma 3 edge scan verbatim. chain index k has prefix
  // SEQ_ROOT^chain[k] precompiled — the exact operand the value path
  // extracts per edge.
  const Pattern& r = read.mainline_pattern();

  ConflictReport report;
  report.verdict = ConflictVerdict::kNoConflict;
  report.method = DetectorMethod::kLinearPtime;

  const size_t length = read.chain_length();
  for (size_t k = 1; k < length; ++k) {
    const PatternNodeId n_prime = read.mainline_node(k);
    MatchResult match;
    if (r.axis(n_prime) == Axis::kDescendant) {
      // Weak match against SEQ_ROOT^n (the parent's prefix).
      match = MatchCompiled(del, read, k - 1, /*weak=*/true, matcher);
    } else {
      // Strong match against SEQ_ROOT^n'.
      match = MatchCompiled(del, read, k, /*weak=*/false, matcher);
    }
    if (!match.matches) continue;
    report.verdict = ConflictVerdict::kConflict;
    report.detail =
        std::string("node conflict via ") +
        (r.axis(n_prime) == Axis::kDescendant ? "descendant" : "child") +
        " edge into read node " + r.LabelName(n_prime);
    if (build_witness) {
      XMLUP_ASSIGN_OR_RETURN(
          Tree witness,
          BuildNodeConflictWitness(r, delete_pattern, n_prime,
                                   match.witness_word, semantics));
      report.witness = std::move(witness);
    }
    return report;
  }

  if (semantics == ConflictSemantics::kNode) return report;

  MatchResult below = MatchCompiled(del, read, length - 1, /*weak=*/true,
                                    matcher);
  if (below.matches) {
    report.verdict = ConflictVerdict::kConflict;
    report.detail = "subtree-modification conflict (D weakly matches R)";
    if (build_witness) {
      XMLUP_ASSIGN_OR_RETURN(
          Tree witness,
          BuildSubtreeModificationWitness(r, delete_pattern,
                                          below.witness_word, semantics));
      report.witness = std::move(witness);
    }
  }
  return report;
}

Result<ConflictReport> DetectLinearReadDeleteConflict(
    const PatternStore& store, PatternRef read, PatternRef delete_pattern,
    ConflictSemantics semantics, MatcherKind matcher, bool build_witness) {
  if (!store.linear(read)) {
    return Status::InvalidArgument(
        "read pattern must be linear (P^{//,*}) for polynomial detection");
  }
  return DetectReadDeleteConflictCompiled(
      store.compiled(read), store.compiled(delete_pattern),
      store.pattern(delete_pattern), semantics, matcher, build_witness);
}

}  // namespace xmlup
