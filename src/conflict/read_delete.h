#ifndef XMLUP_CONFLICT_READ_DELETE_H_
#define XMLUP_CONFLICT_READ_DELETE_H_

#include "common/result.h"
#include "conflict/report.h"
#include "conflict/witness_check.h"
#include "match/matching.h"
#include "pattern/compiled_pattern.h"
#include "pattern/pattern.h"
#include "pattern/pattern_store.h"

namespace xmlup {

/// Polynomial-time read-delete conflict detection (§4.1).
///
/// `read` must be linear (P^{//,*}); `delete_pattern` may be any pattern in
/// P^{//,[],*} with O(p) != ROOT(p) — by Lemma 4 / Corollary 1 only the
/// delete's mainline SEQ_ROOT(D)^O(D) matters.
///
/// Node semantics implements Lemma 3: a conflict exists iff some edge
/// (n, n') of the read pattern satisfies
///   - (n, n') ∈ EDGES_//:  D' and SEQ_ROOT(R)^n match weakly, or
///   - (n, n') ∈ EDGES_/:   D' and SEQ_ROOT(R)^n' match strongly.
///
/// Tree semantics adds the case where the deletion happens strictly below a
/// read result (D' weakly matched by the whole read); by Lemma 2, value
/// semantics coincides with tree semantics for linear patterns.
///
/// On conflict, a witness tree is constructed per the Lemma 3/4 proofs and
/// re-validated with the Lemma 1 checker; a verification failure (a library
/// bug) surfaces as an Internal error.
/// Returns a ConflictReport with method == kLinearPtime and a definitive
/// verdict (the linear algorithms are complete — never kUnknown).
Result<ConflictReport> DetectLinearReadDeleteConflict(
    const Pattern& read, const Pattern& delete_pattern,
    ConflictSemantics semantics = ConflictSemantics::kNode,
    MatcherKind matcher = MatcherKind::kNfa,
    bool build_witness = true);

/// Compiled-form core: the same algorithm and reports as the value
/// overload, running on pre-built automata (MatchCompiled + the product
/// cache) instead of per-call Thompson constructions. `read` is scanned
/// along its mainline chain — for a linear read that is the read itself;
/// the detector's branching heuristic passes a branching read's compiled
/// form to get the Mainline(read) answer. `delete_pattern` is the full
/// stored delete (the witness construction grafts its branch models);
/// `del` must be its compiled form. Verdict, method, detail and witness
/// words are identical to the value overload on the same operands.
Result<ConflictReport> DetectReadDeleteConflictCompiled(
    const CompiledPattern& read, const CompiledPattern& del,
    const Pattern& delete_pattern,
    ConflictSemantics semantics = ConflictSemantics::kNode,
    MatcherKind matcher = MatcherKind::kNfa,
    bool build_witness = true);

/// Ref-based entry point: both patterns are interned refs resolved
/// against `store`; compiled automata are fetched (and lazily built) via
/// PatternStore::compiled(). The read ref must denote a linear pattern and
/// the delete ref must not select the root — both violations return
/// InvalidArgument, exactly like the value overload.
Result<ConflictReport> DetectLinearReadDeleteConflict(
    const PatternStore& store, PatternRef read, PatternRef delete_pattern,
    ConflictSemantics semantics = ConflictSemantics::kNode,
    MatcherKind matcher = MatcherKind::kNfa,
    bool build_witness = true);

}  // namespace xmlup

#endif  // XMLUP_CONFLICT_READ_DELETE_H_
