#ifndef XMLUP_CONFLICT_READ_DELETE_H_
#define XMLUP_CONFLICT_READ_DELETE_H_

#include "common/result.h"
#include "conflict/report.h"
#include "conflict/witness_check.h"
#include "match/matching.h"
#include "pattern/pattern.h"

namespace xmlup {

/// Polynomial-time read-delete conflict detection (§4.1).
///
/// `read` must be linear (P^{//,*}); `delete_pattern` may be any pattern in
/// P^{//,[],*} with O(p) != ROOT(p) — by Lemma 4 / Corollary 1 only the
/// delete's mainline SEQ_ROOT(D)^O(D) matters.
///
/// Node semantics implements Lemma 3: a conflict exists iff some edge
/// (n, n') of the read pattern satisfies
///   - (n, n') ∈ EDGES_//:  D' and SEQ_ROOT(R)^n match weakly, or
///   - (n, n') ∈ EDGES_/:   D' and SEQ_ROOT(R)^n' match strongly.
///
/// Tree semantics adds the case where the deletion happens strictly below a
/// read result (D' weakly matched by the whole read); by Lemma 2, value
/// semantics coincides with tree semantics for linear patterns.
///
/// On conflict, a witness tree is constructed per the Lemma 3/4 proofs and
/// re-validated with the Lemma 1 checker; a verification failure (a library
/// bug) surfaces as an Internal error.
/// Returns a ConflictReport with method == kLinearPtime and a definitive
/// verdict (the linear algorithms are complete — never kUnknown).
Result<ConflictReport> DetectLinearReadDeleteConflict(
    const Pattern& read, const Pattern& delete_pattern,
    ConflictSemantics semantics = ConflictSemantics::kNode,
    MatcherKind matcher = MatcherKind::kNfa,
    bool build_witness = true);

}  // namespace xmlup

#endif  // XMLUP_CONFLICT_READ_DELETE_H_
