#include "conflict/read_insert.h"

#include <string>

#include "conflict/witness_build.h"
#include "eval/evaluator.h"
#include "pattern/pattern_ops.h"

namespace xmlup {
namespace {

Result<Tree> BuildCutEdgeWitness(const Pattern& read,
                                 const Pattern& insert_pattern,
                                 const Tree& inserted, const ClassWord& word,
                                 ConflictSemantics semantics) {
  // The word is the path from the root to the insertion point u; after the
  // insertion the read continues inside the grafted copy of X, so the path
  // alone is the witness (Lemma 6 "(If)").
  Tree witness = MatchWordToPath(word, read.symbols(), nullptr);
  GraftBranchModelsEverywhere(&witness, insert_pattern);
  if (IsReadInsertWitness(read, insert_pattern, inserted, witness,
                          semantics)) {
    return witness;
  }
  // Lemma 2: a node-conflict witness is upgraded to a value-conflict
  // witness by giving every original node a fresh-labeled child (the new
  // result inside X then has no isomorphic partner).
  const Label unique = read.symbols()->Fresh("uniq");
  for (NodeId n : witness.PreOrder()) witness.AddChild(n, unique);
  if (IsReadInsertWitness(read, insert_pattern, inserted, witness,
                          semantics)) {
    return witness;
  }
  return Status::Internal(
      "constructed read-insert witness failed verification");
}

Result<Tree> BuildSubtreeModificationWitness(const Pattern& read,
                                             const Pattern& insert_pattern,
                                             const Tree& inserted,
                                             const ClassWord& word,
                                             ConflictSemantics semantics) {
  Tree witness = MatchWordToPath(word, read.symbols(), nullptr);
  GraftBranchModelsEverywhere(&witness, insert_pattern);
  if (IsReadInsertWitness(read, insert_pattern, inserted, witness,
                          semantics)) {
    return witness;
  }
  // Lemma 2 fallback: uniquify subtrees with fresh-labeled children so a
  // modified result cannot be value-equal to an unmodified one.
  const Label unique = read.symbols()->Fresh("uniq");
  for (NodeId n : witness.PreOrder()) witness.AddChild(n, unique);
  if (IsReadInsertWitness(read, insert_pattern, inserted, witness,
                          semantics)) {
    return witness;
  }
  return Status::Internal(
      "constructed read-insert subtree witness failed verification");
}

}  // namespace

Result<ConflictReport> DetectLinearReadInsertConflict(
    const Pattern& read, const Pattern& insert_pattern, const Tree& inserted,
    ConflictSemantics semantics, MatcherKind matcher, bool build_witness) {
  if (!read.IsLinear()) {
    return Status::InvalidArgument(
        "read pattern must be linear (P^{//,*}) for polynomial detection");
  }
  if (!inserted.has_root()) {
    return Status::InvalidArgument("inserted tree X is empty");
  }

  // Corollary 2: only the insert's mainline matters.
  const Pattern mainline = Mainline(insert_pattern);

  ConflictReport report;
  report.verdict = ConflictVerdict::kNoConflict;
  report.method = DetectorMethod::kLinearPtime;

  // Lemmas 5-7: scan the read's edges for a cut edge.
  for (PatternNodeId n_prime : read.PreOrder()) {
    if (n_prime == read.root()) continue;
    const PatternNodeId n = read.parent(n_prime);
    const Pattern prefix = ExtractSeq(read, read.root(), n);
    const Pattern suffix = ExtractSeq(read, n_prime, read.output());
    MatchResult match;
    bool suffix_ok = false;
    if (read.axis(n_prime) == Axis::kChild) {
      match = MatchStrongly(mainline, prefix, matcher);
      if (match.matches) {
        suffix_ok = EmbedsAt(suffix, inserted, inserted.root());
      }
    } else {
      match = MatchWeakly(mainline, prefix, matcher);
      if (match.matches) {
        suffix_ok = EmbedsAnywhereIn(suffix, inserted, inserted.root());
      }
    }
    if (!match.matches || !suffix_ok) continue;
    report.verdict = ConflictVerdict::kConflict;
    report.detail =
        std::string("cut edge (") +
        (read.axis(n_prime) == Axis::kDescendant ? "descendant" : "child") +
        ") into read node " + read.LabelName(n_prime);
    if (build_witness) {
      XMLUP_ASSIGN_OR_RETURN(
          Tree witness, BuildCutEdgeWitness(read, insert_pattern, inserted,
                                            match.witness_word, semantics));
      report.witness = std::move(witness);
    }
    return report;
  }

  if (semantics == ConflictSemantics::kNode) return report;

  // Tree / value semantics: an insertion at-or-below a read result
  // modifies the returned subtree (paper REMARKS after Theorem 2).
  MatchResult below = MatchWeakly(mainline, read, matcher);
  if (below.matches) {
    report.verdict = ConflictVerdict::kConflict;
    report.detail = "subtree-modification conflict (I weakly matches R)";
    if (build_witness) {
      XMLUP_ASSIGN_OR_RETURN(
          Tree witness,
          BuildSubtreeModificationWitness(read, insert_pattern, inserted,
                                          below.witness_word, semantics));
      report.witness = std::move(witness);
    }
  }
  return report;
}

Result<ConflictReport> DetectReadInsertConflictCompiled(
    const CompiledPattern& read, const CompiledPattern& ins,
    const Pattern& insert_pattern, const Tree& inserted,
    ConflictSemantics semantics, MatcherKind matcher, bool build_witness) {
  if (!inserted.has_root()) {
    return Status::InvalidArgument("inserted tree X is empty");
  }

  // The compiled read *is* the mainline chain; for a linear read this is
  // the read itself. Chain index k carries both the prefix SEQ_ROOT^n
  // (k-1) and the suffix SEQ_{n'}^O (k) the Lemma 5-7 cut-edge test needs,
  // precompiled.
  const Pattern& r = read.mainline_pattern();

  ConflictReport report;
  report.verdict = ConflictVerdict::kNoConflict;
  report.method = DetectorMethod::kLinearPtime;

  const size_t length = read.chain_length();
  for (size_t k = 1; k < length; ++k) {
    const PatternNodeId n_prime = read.mainline_node(k);
    MatchResult match;
    bool suffix_ok = false;
    if (r.axis(n_prime) == Axis::kChild) {
      match = MatchCompiled(ins, read, k - 1, /*weak=*/false, matcher);
      if (match.matches) {
        suffix_ok =
            EmbedsAt(read.suffix_pattern(k), inserted, inserted.root());
      }
    } else {
      match = MatchCompiled(ins, read, k - 1, /*weak=*/true, matcher);
      if (match.matches) {
        suffix_ok = EmbedsAnywhereIn(read.suffix_pattern(k), inserted,
                                     inserted.root());
      }
    }
    if (!match.matches || !suffix_ok) continue;
    report.verdict = ConflictVerdict::kConflict;
    report.detail =
        std::string("cut edge (") +
        (r.axis(n_prime) == Axis::kDescendant ? "descendant" : "child") +
        ") into read node " + r.LabelName(n_prime);
    if (build_witness) {
      XMLUP_ASSIGN_OR_RETURN(
          Tree witness, BuildCutEdgeWitness(r, insert_pattern, inserted,
                                            match.witness_word, semantics));
      report.witness = std::move(witness);
    }
    return report;
  }

  if (semantics == ConflictSemantics::kNode) return report;

  MatchResult below = MatchCompiled(ins, read, length - 1, /*weak=*/true,
                                    matcher);
  if (below.matches) {
    report.verdict = ConflictVerdict::kConflict;
    report.detail = "subtree-modification conflict (I weakly matches R)";
    if (build_witness) {
      XMLUP_ASSIGN_OR_RETURN(
          Tree witness,
          BuildSubtreeModificationWitness(r, insert_pattern, inserted,
                                          below.witness_word, semantics));
      report.witness = std::move(witness);
    }
  }
  return report;
}

Result<ConflictReport> DetectLinearReadInsertConflict(
    const PatternStore& store, PatternRef read, PatternRef insert_pattern,
    const Tree& inserted, ConflictSemantics semantics, MatcherKind matcher,
    bool build_witness) {
  if (!store.linear(read)) {
    return Status::InvalidArgument(
        "read pattern must be linear (P^{//,*}) for polynomial detection");
  }
  return DetectReadInsertConflictCompiled(
      store.compiled(read), store.compiled(insert_pattern),
      store.pattern(insert_pattern), inserted, semantics, matcher,
      build_witness);
}

}  // namespace xmlup
