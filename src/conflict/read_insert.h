#ifndef XMLUP_CONFLICT_READ_INSERT_H_
#define XMLUP_CONFLICT_READ_INSERT_H_

#include "common/result.h"
#include "conflict/report.h"
#include "conflict/witness_check.h"
#include "match/matching.h"
#include "pattern/compiled_pattern.h"
#include "pattern/pattern.h"
#include "pattern/pattern_store.h"
#include "xml/tree.h"

namespace xmlup {

/// Polynomial-time read-insert conflict detection (§4.2).
///
/// `read` must be linear (P^{//,*}); `insert_pattern` may be any pattern in
/// P^{//,[],*} — by Lemma 8 / Corollary 2 only its mainline matters.
/// `inserted` is the tree X grafted at each insertion point.
///
/// Node semantics implements Lemmas 5-7: a conflict exists iff some read
/// edge (n, n') is a *cut edge*, i.e.
///   - child edge:      I' and SEQ_ROOT(R)^n match strongly, and
///                      SEQ_{n'}^{O(R)} embeds at the root of X;
///   - descendant edge: I' and SEQ_ROOT(R)^n match weakly, and
///                      SEQ_{n'}^{O(R)} embeds somewhere in X.
///
/// Tree semantics adds the case where an insertion lands at-or-below a read
/// result (I' weakly matched by the whole read); value semantics coincides
/// (Lemma 2). Witnesses are constructed per the proofs and re-validated
/// with the Lemma 1 checker.
/// Returns a ConflictReport with method == kLinearPtime and a definitive
/// verdict (the linear algorithms are complete — never kUnknown).
Result<ConflictReport> DetectLinearReadInsertConflict(
    const Pattern& read, const Pattern& insert_pattern, const Tree& inserted,
    ConflictSemantics semantics = ConflictSemantics::kNode,
    MatcherKind matcher = MatcherKind::kNfa,
    bool build_witness = true);

/// Compiled-form core: the same algorithm and reports as the value
/// overload, running on pre-built automata (MatchCompiled + the product
/// cache) and the precompiled prefix/suffix patterns instead of per-call
/// Thompson constructions and ExtractSeq copies. `read` is scanned along
/// its mainline chain — for a linear read that is the read itself; the
/// detector's branching heuristic passes a branching read's compiled form
/// to get the Mainline(read) answer. `insert_pattern` is the full stored
/// insert (the witness construction grafts its branch models); `ins` must
/// be its compiled form. Verdict, method, detail and witness words are
/// identical to the value overload on the same operands.
Result<ConflictReport> DetectReadInsertConflictCompiled(
    const CompiledPattern& read, const CompiledPattern& ins,
    const Pattern& insert_pattern, const Tree& inserted,
    ConflictSemantics semantics = ConflictSemantics::kNode,
    MatcherKind matcher = MatcherKind::kNfa,
    bool build_witness = true);

/// Ref-based entry point: both patterns are interned refs resolved
/// against `store`; compiled automata are fetched (and lazily built) via
/// PatternStore::compiled(). The read ref must denote a linear pattern
/// (InvalidArgument otherwise, exactly like the value overload).
Result<ConflictReport> DetectLinearReadInsertConflict(
    const PatternStore& store, PatternRef read, PatternRef insert_pattern,
    const Tree& inserted,
    ConflictSemantics semantics = ConflictSemantics::kNode,
    MatcherKind matcher = MatcherKind::kNfa,
    bool build_witness = true);

}  // namespace xmlup

#endif  // XMLUP_CONFLICT_READ_INSERT_H_
