#include "conflict/reductions.h"

#include "conflict/witness_check.h"
#include "pattern/pattern_ops.h"

namespace xmlup {
namespace {

/// Grafts a deep copy of `src` (whole tree) as a child of `parent`.
NodeId GraftTree(Tree* dst, NodeId parent, const Tree& src) {
  return dst->GraftCopy(parent, src, src.root());
}

}  // namespace

ReadInsertReduction ReduceNonContainmentToReadInsert(const Pattern& p,
                                                     const Pattern& p_prime) {
  const auto& symbols = p.symbols();
  const Label alpha = symbols->Fresh("alpha");
  const Label beta = symbols->Fresh("beta");
  const Label gamma = symbols->Fresh("gamma");

  // q_I = α[β[p][γ]]/β[p'], output at the trunk β.
  Pattern insert_pattern(symbols);
  const PatternNodeId qi_root = insert_pattern.CreateRoot(alpha);
  const PatternNodeId qi_beta1 =
      insert_pattern.AddChild(qi_root, beta, Axis::kChild);
  GraftPattern(&insert_pattern, qi_beta1, p, Axis::kChild);
  insert_pattern.AddChild(qi_beta1, gamma, Axis::kChild);
  const PatternNodeId qi_beta2 =
      insert_pattern.AddChild(qi_root, beta, Axis::kChild);
  GraftPattern(&insert_pattern, qi_beta2, p_prime, Axis::kChild);
  insert_pattern.SetOutput(qi_beta2);

  // X = <γ/>.
  Tree inserted(symbols);
  inserted.CreateRoot(gamma);

  // q_R = α[β[p'][γ]], output at the root.
  Pattern read(symbols);
  const PatternNodeId qr_root = read.CreateRoot(alpha);
  const PatternNodeId qr_beta = read.AddChild(qr_root, beta, Axis::kChild);
  GraftPattern(&read, qr_beta, p_prime, Axis::kChild);
  read.AddChild(qr_beta, gamma, Axis::kChild);
  read.SetOutput(qr_root);

  return {std::move(read), std::move(insert_pattern), std::move(inserted),
          alpha, beta, gamma};
}

Result<Tree> BuildReadInsertReductionWitness(const ReadInsertReduction& r,
                                             const Pattern& p_prime,
                                             const Tree& t_p) {
  const auto& symbols = r.read.symbols();
  // Figure 7d: α root with two β children — one holding t_p plus a γ leaf,
  // one holding a model of p' (and no γ).
  Tree witness(symbols);
  const NodeId root = witness.CreateRoot(r.alpha);
  const NodeId beta1 = witness.AddChild(root, r.beta);
  GraftTree(&witness, beta1, t_p);
  witness.AddChild(beta1, r.gamma);
  const NodeId beta2 = witness.AddChild(root, r.beta);
  const Tree p_prime_model = ModelTree(p_prime, symbols->Fresh("fill"));
  GraftTree(&witness, beta2, p_prime_model);

  if (!IsReadInsertWitness(r.read, r.insert_pattern, r.inserted, witness,
                           ConflictSemantics::kNode)) {
    return Status::Internal(
        "read-insert reduction witness failed verification (is t_p a true "
        "non-containment counterexample?)");
  }
  return witness;
}

ReadDeleteReduction ReduceNonContainmentToReadDelete(const Pattern& p,
                                                     const Pattern& p_prime) {
  const auto& symbols = p.symbols();
  const Label alpha = symbols->Fresh("alpha");
  const Label beta = symbols->Fresh("beta");
  const Label gamma = symbols->Fresh("gamma");

  // q_D = α[β[p]]/γ[p'], output at the γ node.
  Pattern delete_pattern(symbols);
  const PatternNodeId qd_root = delete_pattern.CreateRoot(alpha);
  const PatternNodeId qd_beta =
      delete_pattern.AddChild(qd_root, beta, Axis::kChild);
  GraftPattern(&delete_pattern, qd_beta, p, Axis::kChild);
  const PatternNodeId qd_gamma =
      delete_pattern.AddChild(qd_root, gamma, Axis::kChild);
  GraftPattern(&delete_pattern, qd_gamma, p_prime, Axis::kChild);
  delete_pattern.SetOutput(qd_gamma);

  // q_R = α[*[p']], output at the root.
  Pattern read(symbols);
  const PatternNodeId qr_root = read.CreateRoot(alpha);
  const PatternNodeId qr_star =
      read.AddChild(qr_root, kWildcardLabel, Axis::kChild);
  GraftPattern(&read, qr_star, p_prime, Axis::kChild);
  read.SetOutput(qr_root);

  return {std::move(read), std::move(delete_pattern), alpha, beta, gamma};
}

Result<Tree> BuildReadDeleteReductionWitness(const ReadDeleteReduction& r,
                                             const Pattern& p_prime,
                                             const Tree& t_p) {
  const auto& symbols = r.read.symbols();
  // Figure 8c: α root; β child holding t_p; γ child holding a model of p'.
  Tree witness(symbols);
  const NodeId root = witness.CreateRoot(r.alpha);
  const NodeId beta = witness.AddChild(root, r.beta);
  GraftTree(&witness, beta, t_p);
  const NodeId gamma = witness.AddChild(root, r.gamma);
  const Tree p_prime_model = ModelTree(p_prime, symbols->Fresh("fill"));
  GraftTree(&witness, gamma, p_prime_model);

  if (!IsReadDeleteWitness(r.read, r.delete_pattern, witness,
                           ConflictSemantics::kNode)) {
    return Status::Internal(
        "read-delete reduction witness failed verification (is t_p a true "
        "non-containment counterexample?)");
  }
  return witness;
}

Pattern WithDeltaOutput(const Pattern& read, Label* delta) {
  XMLUP_CHECK(delta != nullptr);
  *delta = read.symbols()->Fresh("delta");
  Pattern modified = read;
  const PatternNodeId delta_node =
      modified.AddChild(modified.root(), *delta, Axis::kChild);
  modified.SetOutput(delta_node);
  return modified;
}

}  // namespace xmlup
