#ifndef XMLUP_CONFLICT_REDUCTIONS_H_
#define XMLUP_CONFLICT_REDUCTIONS_H_

#include "common/result.h"
#include "pattern/pattern.h"
#include "xml/tree.h"

namespace xmlup {

/// The NP-hardness reductions of §5: XPath non-containment (p ⊄ p')
/// reduces to read-insert (Theorem 4, Figure 7) and read-delete
/// (Theorem 6, Figure 8) node-conflict detection. α, β, γ are fresh
/// symbols not used in p or p'.

/// Theorem 4 instance: R = READ over α[β[p'][γ]], I = INSERT over
/// q_I = α[β[p][γ]]/β[p'] with X = <γ/>. R and I conflict iff p ⊄ p'.
struct ReadInsertReduction {
  Pattern read;
  Pattern insert_pattern;
  Tree inserted;
  Label alpha;
  Label beta;
  Label gamma;
};

ReadInsertReduction ReduceNonContainmentToReadInsert(const Pattern& p,
                                                     const Pattern& p_prime);

/// Figure 7d: assembles the witness tree for a non-contained instance from
/// `t_p` (a tree into which p embeds at the root but p' does not — e.g.
/// the counterexample model from DecideContainment) and a model of p'.
/// The returned tree is verified with the Lemma 1 checker.
Result<Tree> BuildReadInsertReductionWitness(const ReadInsertReduction& r,
                                             const Pattern& p_prime,
                                             const Tree& t_p);

/// Theorem 6 instance: R = READ over α[*[p']], D = DELETE over
/// q_D = α[β[p]]/γ[p'] (output = the γ node). R and D conflict iff p ⊄ p'.
struct ReadDeleteReduction {
  Pattern read;
  Pattern delete_pattern;
  Label alpha;
  Label beta;
  Label gamma;
};

ReadDeleteReduction ReduceNonContainmentToReadDelete(const Pattern& p,
                                                     const Pattern& p_prime);

/// Figure 8c witness; verified with the Lemma 1 checker.
Result<Tree> BuildReadDeleteReductionWitness(const ReadDeleteReduction& r,
                                             const Pattern& p_prime,
                                             const Tree& t_p);

/// §5 REMARKS: adapts a reduction's read for *tree/value* semantics by
/// adding a fresh δ-labeled child of the root and making it the output.
/// The update never touches the subtree under a δ node, so the modified
/// read has a tree (or value) conflict iff it has a node conflict —
/// extending the NP-hardness proofs to all three semantics. `delta` is
/// minted fresh and returned through the out-parameter.
Pattern WithDeltaOutput(const Pattern& read, Label* delta);

}  // namespace xmlup

#endif  // XMLUP_CONFLICT_REDUCTIONS_H_
