#include "conflict/reparent.h"

#include <algorithm>
#include <set>
#include <vector>

#include "eval/embedding_enumerator.h"
#include "eval/evaluator.h"
#include "pattern/pattern_ops.h"
#include "xml/tree_algos.h"

namespace xmlup {
namespace {

/// Copies `src` into a fresh tree while (a) skipping the edge into `v` at
/// its original position and (b) grafting `v`'s subtree under `u` behind a
/// chain of k+1 alpha nodes.
struct ReparentCopier {
  const Tree& src;
  NodeId u;
  NodeId v;
  size_t k;
  Label alpha;
  Tree out;
  std::unordered_map<NodeId, NodeId> mapping;

  ReparentCopier(const Tree& src_in, NodeId u_in, NodeId v_in, size_t k_in,
                 Label alpha_in)
      : src(src_in), u(u_in), v(v_in), k(k_in), alpha(alpha_in),
        out(src_in.symbols()) {}

  void CopyChildren(NodeId src_node, NodeId dst_node) {
    for (NodeId c = src.first_child(src_node); c != kNullNode;
         c = src.next_sibling(c)) {
      if (c == v) continue;  // detached; re-attached under u
      const NodeId dst_child = out.AddChild(dst_node, src.label(c));
      mapping[c] = dst_child;
      CopyChildren(c, dst_child);
    }
    if (src_node == u) {
      // Attach the alpha chain and v's subtree.
      NodeId chain = dst_node;
      for (size_t i = 0; i < k + 1; ++i) chain = out.AddChild(chain, alpha);
      const NodeId dst_v = out.AddChild(chain, src.label(v));
      mapping[v] = dst_v;
      CopyChildren(v, dst_v);
    }
  }

  ReparentResult Run() {
    const NodeId root = out.CreateRoot(src.label(src.root()));
    mapping[src.root()] = root;
    CopyChildren(src.root(), root);
    return {std::move(out), std::move(mapping)};
  }
};

/// Number of nodes on the u..v path, inclusive.
size_t PathNodeCount(const Tree& t, NodeId u, NodeId v) {
  size_t count = 1;
  for (NodeId n = v; n != u; n = t.parent(n)) ++count;
  return count;
}

/// Nearest marked proper ancestor of `v` (kNullNode if none).
NodeId NearestMarkedAncestor(const Tree& t, const std::set<NodeId>& marks,
                             NodeId v) {
  for (NodeId n = t.parent(v); n != kNullNode; n = t.parent(n)) {
    if (marks.count(n) > 0) return n;
  }
  return kNullNode;
}

/// Iteratively reparents long unmarked stretches between marked nodes,
/// then prunes subtrees containing no marked node. Returns the shrunken
/// tree. `marks` must include the root.
Tree ShrinkMarked(Tree t, std::set<NodeId> marks, size_t k, Label alpha) {
  // --- Reparent until every marked node is within k+3 of its nearest
  // marked ancestor. ---
  for (;;) {
    NodeId found_v = kNullNode;
    NodeId found_u = kNullNode;
    for (NodeId v : marks) {
      if (v == t.root()) continue;
      const NodeId u = NearestMarkedAncestor(t, marks, v);
      XMLUP_DCHECK(u != kNullNode) << "root must be marked";
      if (PathNodeCount(t, u, v) > k + 3) {
        found_v = v;
        found_u = u;
        break;
      }
    }
    if (found_v == kNullNode) break;
    ReparentResult reparented = Reparent(t, found_u, found_v, k, alpha);
    std::set<NodeId> new_marks;
    for (NodeId m : marks) {
      auto it = reparented.mapping.find(m);
      if (it != reparented.mapping.end()) new_marks.insert(it->second);
    }
    t = std::move(reparented.tree);
    marks = std::move(new_marks);
  }

  // --- Prune: delete every maximal subtree without a marked node. The
  // alpha chains introduced by reparenting lie on paths between marked
  // nodes and survive (their subtrees contain marked nodes). ---
  // Compute keep = marked ∪ ancestors of marked.
  std::set<NodeId> keep;
  for (NodeId m : marks) {
    for (NodeId n = m; n != kNullNode; n = t.parent(n)) {
      if (!keep.insert(n).second) break;
    }
  }
  std::vector<NodeId> to_delete;
  for (NodeId n : t.PreOrder()) {
    if (keep.count(n) == 0 && keep.count(t.parent(n)) > 0) {
      to_delete.push_back(n);
    }
  }
  for (NodeId n : to_delete) {
    if (t.alive(n)) t.DeleteSubtree(n);
  }
  return t;
}

}  // namespace

ReparentResult Reparent(const Tree& t, NodeId u, NodeId v, size_t k,
                        Label alpha) {
  XMLUP_CHECK(t.IsProperAncestor(u, v));
  XMLUP_DCHECK(PathNodeCount(t, u, v) > k + 3)
      << "reparenting requires more than k+3 nodes on the u..v path";
  ReparentCopier copier(t, u, v, k, alpha);
  return copier.Run();
}

Result<Tree> ShrinkReadInsertWitness(const Pattern& read,
                                     const Pattern& insert_pattern,
                                     const Tree& inserted,
                                     const Tree& witness) {
  // Work on a copy; original node ids occupy [0, orig_capacity).
  Tree work = CopyTree(witness);
  const size_t orig_capacity = work.capacity();
  const std::vector<NodeId> before = Evaluate(read, work);
  const std::vector<NodeId> points = Evaluate(insert_pattern, work);
  for (NodeId p : points) work.GraftCopy(p, inserted, inserted.root());
  const std::vector<NodeId> after = Evaluate(read, work);

  // Definition 9, step 1: a node in R(I(W)) \ R(W).
  NodeId n_witness = kNullNode;
  for (NodeId n : after) {
    if (!std::binary_search(before.begin(), before.end(), n)) {
      n_witness = n;
      break;
    }
  }
  if (n_witness == kNullNode) {
    return Status::InvalidArgument(
        "tree is not a witness to a read-insert node conflict");
  }

  // Step 2: choose an embedding selecting it and mark.
  const Embedding e_r = FindEmbeddingSelecting(read, work, n_witness);
  XMLUP_CHECK(!e_r.empty());
  std::set<NodeId> marks;
  Tree original = CopyTree(witness);  // unmutated view for e_I embeddings
  for (NodeId image : e_r) {
    if (image < orig_capacity) {
      marks.insert(image);
      continue;
    }
    // Inserted node: mark the nearest original ancestor (the insertion
    // point) and the image of an embedding of I selecting it.
    NodeId anchor = work.parent(image);
    while (anchor >= orig_capacity) anchor = work.parent(anchor);
    marks.insert(anchor);
    const Embedding e_i =
        FindEmbeddingSelecting(insert_pattern, original, anchor);
    XMLUP_CHECK_STREAM(!e_i.empty())
        << "insertion point must be selected by the insert pattern";
    for (NodeId m : e_i) marks.insert(m);
  }
  marks.insert(witness.root());

  const Label alpha = read.symbols()->Fresh("alpha");
  Tree shrunk = ShrinkMarked(CopyTree(witness), std::move(marks),
                             StarLength(read), alpha);
  if (!IsReadInsertWitness(read, insert_pattern, inserted, shrunk,
                           ConflictSemantics::kNode)) {
    return Status::Internal("shrunken read-insert witness failed verification");
  }
  return shrunk;
}

Result<Tree> ShrinkReadDeleteWitness(const Pattern& read,
                                     const Pattern& delete_pattern,
                                     const Tree& witness) {
  Tree work = CopyTree(witness);
  const std::vector<NodeId> before = Evaluate(read, work);
  const std::vector<NodeId> points = Evaluate(delete_pattern, work);
  std::vector<NodeId> deleted_points;
  for (NodeId p : points) {
    if (work.alive(p)) {
      work.DeleteSubtree(p);
      deleted_points.push_back(p);
    }
  }
  const std::vector<NodeId> after = Evaluate(read, work);

  NodeId n_witness = kNullNode;
  for (NodeId n : before) {
    if (!std::binary_search(after.begin(), after.end(), n)) {
      n_witness = n;
      break;
    }
  }
  if (n_witness == kNullNode) {
    return Status::InvalidArgument(
        "tree is not a witness to a read-delete node conflict");
  }

  Tree original = CopyTree(witness);
  std::set<NodeId> marks;
  const Embedding e_r = FindEmbeddingSelecting(read, original, n_witness);
  XMLUP_CHECK(!e_r.empty());
  for (NodeId image : e_r) marks.insert(image);

  // The deletion point responsible: an ancestor-or-self of n_witness among
  // the evaluated points.
  NodeId u = kNullNode;
  for (NodeId p : points) {
    if (p == n_witness || original.IsProperAncestor(p, n_witness)) {
      u = p;
      break;
    }
  }
  XMLUP_CHECK(u != kNullNode);
  const Embedding e_d = FindEmbeddingSelecting(delete_pattern, original, u);
  XMLUP_CHECK(!e_d.empty());
  for (NodeId image : e_d) marks.insert(image);
  marks.insert(original.root());

  const Label alpha = read.symbols()->Fresh("alpha");
  Tree shrunk = ShrinkMarked(CopyTree(witness), std::move(marks),
                             StarLength(read), alpha);
  if (!IsReadDeleteWitness(read, delete_pattern, shrunk,
                           ConflictSemantics::kNode)) {
    return Status::Internal("shrunken read-delete witness failed verification");
  }
  return shrunk;
}

}  // namespace xmlup
