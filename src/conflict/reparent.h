#ifndef XMLUP_CONFLICT_REPARENT_H_
#define XMLUP_CONFLICT_REPARENT_H_

#include <unordered_map>

#include "common/result.h"
#include "conflict/witness_check.h"
#include "pattern/pattern.h"
#include "xml/tree.h"

namespace xmlup {

/// Definition 10: the reparenting of `v` with respect to `u` and a pattern
/// with STAR-LENGTH k. Produces a new tree in which the edge (parent(v), v)
/// is replaced by a chain u → a_1 → … → a_{k+1} → v of fresh nodes labeled
/// `alpha` (a symbol that must not occur in the pattern). Requires u to be
/// a proper ancestor of v with more than k+3 nodes on the u..v path.
struct ReparentResult {
  Tree tree;
  /// old NodeId → new NodeId for every surviving original node.
  std::unordered_map<NodeId, NodeId> mapping;
};

ReparentResult Reparent(const Tree& t, NodeId u, NodeId v, size_t k,
                        Label alpha);

/// §5.1.1 witness shrinking (Definition 9 marking + iterated reparenting +
/// pruning, Lemmas 10-11): given any witness to a node conflict, produces a
/// witness of size ≤ |R|·|I|·(k+3)-ish whose conflict is re-verified with
/// the Lemma 1 checker. Fails with Internal if the input is not actually a
/// witness or verification of the shrunken tree fails (a library bug).
Result<Tree> ShrinkReadInsertWitness(const Pattern& read,
                                     const Pattern& insert_pattern,
                                     const Tree& inserted,
                                     const Tree& witness);

Result<Tree> ShrinkReadDeleteWitness(const Pattern& read,
                                     const Pattern& delete_pattern,
                                     const Tree& witness);

}  // namespace xmlup

#endif  // XMLUP_CONFLICT_REPARENT_H_
