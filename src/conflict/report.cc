#include "conflict/report.h"

namespace xmlup {

std::string_view ConflictVerdictName(ConflictVerdict verdict) {
  switch (verdict) {
    case ConflictVerdict::kConflict:
      return "conflict";
    case ConflictVerdict::kNoConflict:
      return "no-conflict";
    case ConflictVerdict::kUnknown:
      return "unknown";
  }
  return "?";
}

std::string_view DetectorMethodName(DetectorMethod method) {
  switch (method) {
    case DetectorMethod::kLinearPtime:
      return "linear-ptime";
    case DetectorMethod::kMainlineHeuristic:
      return "mainline-heuristic";
    case DetectorMethod::kBoundedSearch:
      return "bounded-search";
    case DetectorMethod::kTypePruned:
      return "type-pruned";
  }
  return "?";
}

}  // namespace xmlup
