#ifndef XMLUP_CONFLICT_REPORT_H_
#define XMLUP_CONFLICT_REPORT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "xml/tree.h"

namespace xmlup {

/// Verdict of the unified detector. The problem is NP-complete in general
/// (§5), so for branching reads the detector may legitimately answer
/// kUnknown when its search budget is exhausted before the paper's witness
/// bound is covered.
enum class ConflictVerdict {
  kConflict,
  kNoConflict,
  kUnknown,
};

std::string_view ConflictVerdictName(ConflictVerdict verdict);

/// Which strategy decided a report.
enum class DetectorMethod {
  /// The complete polynomial algorithms (Theorems 1-2; linear reads).
  kLinearPtime,
  /// Sound-but-incomplete shortcut for branching reads: the linear
  /// algorithm on the read's mainline plus grafted branch models, verified
  /// against the definitional checker.
  kMainlineHeuristic,
  /// Exhaustive bounded witness search (§5 NP path).
  kBoundedSearch,
  /// Stage 0 of the staged pipeline: the schema-type disjointness filter
  /// (dtd/type_summary.h) proved the pair independent over DTD-conformant
  /// documents before any automata work. Always kNoConflict.
  kTypePruned,
};

std::string_view DetectorMethodName(DetectorMethod method);

/// Outcome of conflict detection — one type for the linear and NP paths
/// (the former LinearConflictReport is folded in: a linear report is a
/// ConflictReport with method == kLinearPtime and a definitive verdict).
struct ConflictReport {
  ConflictVerdict verdict = ConflictVerdict::kUnknown;
  /// Set when verdict == kConflict: a constructed tree re-validated with
  /// the Lemma 1 checker — applying the update to it changes the read's
  /// result under the requested semantics.
  std::optional<Tree> witness;
  DetectorMethod method = DetectorMethod::kLinearPtime;
  /// Human-readable specifics, e.g. the read edge and matching mode that
  /// produced a linear-path conflict. May be empty.
  std::string detail;
  /// Trees enumerated by the bounded search (0 for the other methods).
  uint64_t trees_checked = 0;

  bool conflict() const { return verdict == ConflictVerdict::kConflict; }
};

}  // namespace xmlup

#endif  // XMLUP_CONFLICT_REPORT_H_
