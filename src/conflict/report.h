#ifndef XMLUP_CONFLICT_REPORT_H_
#define XMLUP_CONFLICT_REPORT_H_

#include <optional>
#include <string>

#include "xml/tree.h"

namespace xmlup {

/// Outcome of a (complete) linear-pattern conflict detection. When
/// `conflict` is true, `witness` holds a constructed tree that has been
/// re-validated with the Lemma 1 checker: applying the update to it changes
/// the read's result under the requested semantics. `detail` names the
/// read edge and matching mode that produced the conflict.
struct LinearConflictReport {
  bool conflict = false;
  std::optional<Tree> witness;
  std::string detail;
};

}  // namespace xmlup

#endif  // XMLUP_CONFLICT_REPORT_H_
