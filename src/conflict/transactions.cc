#include "conflict/transactions.h"

namespace xmlup {

Result<TransactionReport> CertifyTransactionsCommute(
    const std::vector<UpdateOp>& t1, const std::vector<UpdateOp>& t2,
    const DetectorOptions& options) {
  TransactionReport report;
  for (size_t i = 0; i < t1.size(); ++i) {
    for (size_t j = 0; j < t2.size(); ++j) {
      ++report.pairs_checked;
      XMLUP_ASSIGN_OR_RETURN(IndependenceReport pair,
                             CertifyUpdatesCommute(t1[i], t2[j], options));
      if (pair.certificate != CommutativityCertificate::kCertified) {
        report.certified = false;
        report.t1_index = i;
        report.t2_index = j;
        report.detail = std::move(pair.detail);
        return report;
      }
    }
  }
  report.certified = true;
  report.detail = "all cross pairs certified";
  return report;
}

}  // namespace xmlup
