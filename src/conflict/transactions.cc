#include "conflict/transactions.h"

#include <memory>
#include <utility>

#include "pattern/pattern_store.h"

namespace xmlup {

Result<TransactionReport> CertifyTransactionsCommute(
    const std::vector<UpdateOp>& t1, const std::vector<UpdateOp>& t2,
    const DetectorOptions& options) {
  TransactionReport report;
  // Bind every op to a transaction-local store up front: each pattern is
  // minimized and canonicalized once here, and the |T1|·|T2| cross-pair
  // loop below runs on interned refs.
  auto store = std::make_shared<PatternStore>();
  std::vector<UpdateOp> b1;
  b1.reserve(t1.size());
  for (const UpdateOp& op : t1) b1.push_back(op.Bind(store));
  std::vector<UpdateOp> b2;
  b2.reserve(t2.size());
  for (const UpdateOp& op : t2) b2.push_back(op.Bind(store));
  for (size_t i = 0; i < b1.size(); ++i) {
    for (size_t j = 0; j < b2.size(); ++j) {
      ++report.pairs_checked;
      XMLUP_ASSIGN_OR_RETURN(IndependenceReport pair,
                             CertifyUpdatesCommute(b1[i], b2[j], options));
      if (pair.certificate == CommutativityCertificate::kCertified) continue;
      if (report.uncertified.empty()) {
        report.t1_index = i;
        report.t2_index = j;
        report.detail = std::move(pair.detail);
      }
      report.uncertified.emplace_back(i, j);
      if (!options.exhaustive) return report;
    }
  }
  report.certified = report.uncertified.empty();
  if (report.certified) report.detail = "all cross pairs certified";
  return report;
}

}  // namespace xmlup
