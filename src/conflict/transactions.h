#ifndef XMLUP_CONFLICT_TRANSACTIONS_H_
#define XMLUP_CONFLICT_TRANSACTIONS_H_

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "conflict/update_independence.h"

namespace xmlup {

/// Transaction-level application of the §6 machinery: two *sequences* of
/// updates commute as wholes when every cross pair carries a
/// commutativity certificate — then any interleaving of the two
/// transactions produces isomorphic final documents, so a concurrency
/// layer may run them without ordering. (Pairwise certificates compose:
/// any interleaving is reachable from T1;T2 by adjacent transpositions of
/// certified cross pairs, each preserving the result up to isomorphism.)
struct TransactionReport {
  /// Certified: all |T1|·|T2| cross pairs commute.
  bool certified = false;
  /// The first uncertified cross pair (indices into T1/T2), for
  /// diagnostics; only meaningful when !certified.
  size_t t1_index = 0;
  size_t t2_index = 0;
  std::string detail;
  /// Every uncertified cross pair found, as (T1 index, T2 index) in
  /// deterministic lexicographic order. With DetectorOptions::exhaustive
  /// this is the complete set — the input a scheduler needs to tell "one
  /// bad pair" from "dense conflict". With the early-exit default it
  /// holds at most the first pair.
  std::vector<std::pair<size_t, size_t>> uncertified;
  /// Cross pairs actually examined. |T1|·|T2| when the scan ran to
  /// completion (certified, or options.exhaustive); with the early-exit
  /// default, the count up to and including the first uncertified pair.
  size_t pairs_checked = 0;
};

/// Attempts to certify that transactions `t1` and `t2` commute on every
/// document. Sound, incomplete (inherits the certificate's incompleteness).
/// With `options.exhaustive` the scan continues past the first uncertified
/// pair and records all of them; otherwise it stops at the first.
Result<TransactionReport> CertifyTransactionsCommute(
    const std::vector<UpdateOp>& t1, const std::vector<UpdateOp>& t2,
    const DetectorOptions& options = {});

}  // namespace xmlup

#endif  // XMLUP_CONFLICT_TRANSACTIONS_H_
