#include "conflict/update_independence.h"

namespace xmlup {
namespace {

/// Treats `update`'s own pattern evaluation as a read and asks whether the
/// other update can ever change it (node semantics).
Result<ConflictReport> PatternVsUpdate(const Pattern& read,
                                       const UpdateOp& update,
                                       DetectorOptions options) {
  options.semantics = ConflictSemantics::kNode;
  return Detect(read, update, options);
}

}  // namespace

Result<IndependenceReport> CertifyUpdatesCommute(
    const UpdateOp& o1, const UpdateOp& o2, const DetectorOptions& options) {
  IndependenceReport report;

  // Soundness argument (see header): if neither update can change the
  // other's selected point set — on *any* tree — then in either order both
  // updates fire on identical points, points never sit inside subtrees the
  // other order deletes, and fresh inserted copies are never selected; the
  // two results are isomorphic.
  XMLUP_ASSIGN_OR_RETURN(ConflictReport o1_affects_o2,
                         PatternVsUpdate(o2.pattern(), o1, options));
  if (o1_affects_o2.verdict != ConflictVerdict::kNoConflict) {
    report.certificate = CommutativityCertificate::kUnknown;
    report.detail =
        std::string("o1 may change o2's selection (") +
        std::string(ConflictVerdictName(o1_affects_o2.verdict)) + ")";
    return report;
  }
  XMLUP_ASSIGN_OR_RETURN(ConflictReport o2_affects_o1,
                         PatternVsUpdate(o1.pattern(), o2, options));
  if (o2_affects_o1.verdict != ConflictVerdict::kNoConflict) {
    report.certificate = CommutativityCertificate::kUnknown;
    report.detail =
        std::string("o2 may change o1's selection (") +
        std::string(ConflictVerdictName(o2_affects_o1.verdict)) + ")";
    return report;
  }
  report.certificate = CommutativityCertificate::kCertified;
  report.detail = "selection sets provably stable in both directions";
  return report;
}

}  // namespace xmlup
