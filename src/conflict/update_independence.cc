#include "conflict/update_independence.h"

namespace xmlup {
namespace {

/// Treats `read_op`'s own pattern evaluation as a read and asks whether
/// the other update can ever change it (node semantics). Ops bound to a
/// PatternStore go through the ref facade, so transaction-level callers
/// that Bind their ops once pay no per-pair canonicalization here.
Result<ConflictReport> PatternVsUpdate(const UpdateOp& read_op,
                                       const UpdateOp& update,
                                       DetectorOptions options) {
  options.semantics = ConflictSemantics::kNode;
  if (read_op.pattern_store() != nullptr && read_op.pattern_ref().valid()) {
    return Detect(*read_op.pattern_store(), read_op.pattern_ref(), update,
                  options);
  }
  return Detect(read_op.pattern(), update, options);
}

}  // namespace

Result<IndependenceReport> CertifyUpdatesCommute(
    const UpdateOp& o1, const UpdateOp& o2, const DetectorOptions& options) {
  IndependenceReport report;

  // Soundness argument (see header): if neither update can change the
  // other's selected point set — on *any* tree — then in either order both
  // updates fire on identical points, points never sit inside subtrees the
  // other order deletes, and fresh inserted copies are never selected; the
  // two results are isomorphic.
  XMLUP_ASSIGN_OR_RETURN(ConflictReport o1_affects_o2,
                         PatternVsUpdate(o2, o1, options));
  if (o1_affects_o2.verdict != ConflictVerdict::kNoConflict) {
    report.certificate = CommutativityCertificate::kUnknown;
    report.detail =
        std::string("o1 may change o2's selection (") +
        std::string(ConflictVerdictName(o1_affects_o2.verdict)) + ")";
    return report;
  }
  XMLUP_ASSIGN_OR_RETURN(ConflictReport o2_affects_o1,
                         PatternVsUpdate(o1, o2, options));
  if (o2_affects_o1.verdict != ConflictVerdict::kNoConflict) {
    report.certificate = CommutativityCertificate::kUnknown;
    report.detail =
        std::string("o2 may change o1's selection (") +
        std::string(ConflictVerdictName(o2_affects_o1.verdict)) + ")";
    return report;
  }
  report.certificate = CommutativityCertificate::kCertified;
  report.detail = "selection sets provably stable in both directions";
  return report;
}

}  // namespace xmlup
