#ifndef XMLUP_CONFLICT_UPDATE_INDEPENDENCE_H_
#define XMLUP_CONFLICT_UPDATE_INDEPENDENCE_H_

#include <string>

#include "common/result.h"
#include "conflict/commutativity.h"
#include "conflict/detector.h"

namespace xmlup {

/// Sound *certificates* of update-update commutativity (§6 "Complex
/// Updates"). The general problem is NP-hard (the paper sketches
/// reductions), but a useful sufficient condition falls out of the
/// read-update machinery of §4:
///
///   If applying o1 never changes the evaluation of o2's pattern (no
///   read-update node conflict with o2's pattern as the read), and vice
///   versa, then o1 and o2 select the same points in either order, so
///   o1(o2(t)) ≅ o2(o1(t)) for every t.
///
/// For deletions the condition must also rule out one update deleting the
/// other's selected nodes or inserted content; treating the other
/// operation's pattern as a read under *tree* semantics covers this (a
/// deletion below a selected point is a tree conflict).
///
/// The check is complete-as-a-certificate: kCertified answers are always
/// correct; kUnknown means the certificate does not apply (the updates may
/// or may not commute — fall back to FindCommutativityViolation).
enum class CommutativityCertificate {
  kCertified,
  kUnknown,
};

struct IndependenceReport {
  CommutativityCertificate certificate = CommutativityCertificate::kUnknown;
  /// Which sub-check failed, for diagnostics.
  std::string detail;
};

/// Attempts to certify that o1 and o2 commute on every tree (value
/// semantics). Uses the linear-pattern PTIME detectors where applicable;
/// non-linear patterns fall back to the bounded search inside `options`
/// (whose Unknowns propagate).
Result<IndependenceReport> CertifyUpdatesCommute(
    const UpdateOp& o1, const UpdateOp& o2,
    const DetectorOptions& options = {});

}  // namespace xmlup

#endif  // XMLUP_CONFLICT_UPDATE_INDEPENDENCE_H_
