#include "conflict/update_op.h"

#include "common/check.h"
#include "eval/evaluator.h"

namespace xmlup {

UpdateOp::UpdateOp(std::variant<InsertDesc, DeleteDesc> op)
    : op_(std::move(op)) {}

UpdateOp UpdateOp::MakeInsert(Pattern pattern,
                              std::shared_ptr<const Tree> content) {
  XMLUP_CHECK(content != nullptr && content->has_root());
  return UpdateOp(InsertDesc{std::move(pattern), std::move(content)});
}

Result<UpdateOp> UpdateOp::MakeDelete(Pattern pattern) {
  if (pattern.output() == pattern.root()) {
    return Status::InvalidArgument("delete pattern must not select the root");
  }
  return UpdateOp(DeleteDesc{std::move(pattern)});
}

const Pattern& UpdateOp::pattern() const {
  return Visit([](const InsertDesc& i) -> const Pattern& { return i.pattern; },
               [](const DeleteDesc& d) -> const Pattern& { return d.pattern; });
}

const Tree& UpdateOp::content() const { return *shared_content(); }

const std::shared_ptr<const Tree>& UpdateOp::shared_content() const {
  const InsertDesc* insert = std::get_if<InsertDesc>(&op_);
  XMLUP_CHECK(insert != nullptr);  // content() is insert-only
  return insert->content;
}

void UpdateOp::ApplyInPlace(Tree* t) const {
  Visit(
      [t](const InsertDesc& insert) {
        const std::vector<NodeId> points = Evaluate(insert.pattern, *t);
        for (NodeId p : points) {
          t->GraftCopy(p, *insert.content, insert.content->root());
        }
      },
      [t](const DeleteDesc& del) {
        const std::vector<NodeId> points = Evaluate(del.pattern, *t);
        for (NodeId p : points) {
          if (t->alive(p)) t->DeleteSubtree(p);
        }
      });
}

}  // namespace xmlup
