#include "conflict/update_op.h"

#include "common/check.h"
#include "eval/evaluator.h"

namespace xmlup {

Status ValidateDeletePattern(const Pattern& pattern) {
  if (pattern.output() == pattern.root()) {
    return Status::InvalidArgument("delete pattern must not select the root");
  }
  return Status::OK();
}

UpdateOp::UpdateOp(std::variant<InsertDesc, DeleteDesc> op)
    : op_(std::move(op)) {}

UpdateOp UpdateOp::MakeInsert(Pattern pattern,
                              std::shared_ptr<const Tree> content) {
  XMLUP_CHECK(content != nullptr && content->has_root());
  return UpdateOp(InsertDesc{std::move(pattern), std::move(content)});
}

Result<UpdateOp> UpdateOp::MakeDelete(Pattern pattern) {
  XMLUP_RETURN_NOT_OK(ValidateDeletePattern(pattern));
  return UpdateOp(DeleteDesc{std::move(pattern)});
}

UpdateOp UpdateOp::MakeInsert(std::shared_ptr<const PatternStore> store,
                              PatternRef pattern,
                              std::shared_ptr<const Tree> content) {
  XMLUP_CHECK(store != nullptr && pattern.valid());
  UpdateOp op = MakeInsert(store->pattern(pattern), std::move(content));
  op.store_ = std::move(store);
  op.pattern_ref_ = pattern;
  return op;
}

Result<UpdateOp> UpdateOp::MakeDelete(std::shared_ptr<const PatternStore> store,
                                      PatternRef pattern) {
  XMLUP_CHECK(store != nullptr && pattern.valid());
  XMLUP_ASSIGN_OR_RETURN(UpdateOp op, MakeDelete(store->pattern(pattern)));
  op.store_ = std::move(store);
  op.pattern_ref_ = pattern;
  return op;
}

UpdateOp UpdateOp::Bind(const std::shared_ptr<PatternStore>& store) const {
  XMLUP_CHECK(store != nullptr);
  const PatternRef ref = store->Intern(pattern());
  return Visit(
      [&](const InsertDesc& insert) {
        return MakeInsert(store, ref, insert.content);
      },
      [&](const DeleteDesc&) {
        // The original op passed the root check and minimization never
        // reroots the output, so re-construction cannot fail.
        Result<UpdateOp> bound = MakeDelete(store, ref);
        XMLUP_CHECK(bound.ok());
        return *std::move(bound);
      });
}

const Pattern& UpdateOp::pattern() const {
  return Visit([](const InsertDesc& i) -> const Pattern& { return i.pattern; },
               [](const DeleteDesc& d) -> const Pattern& { return d.pattern; });
}

const Tree& UpdateOp::content() const { return *shared_content(); }

const std::shared_ptr<const Tree>& UpdateOp::shared_content() const {
  const InsertDesc* insert = std::get_if<InsertDesc>(&op_);
  XMLUP_CHECK(insert != nullptr);  // content() is insert-only
  return insert->content;
}

void UpdateOp::ApplyInPlace(Tree* t) const {
  Visit(
      [t](const InsertDesc& insert) {
        const std::vector<NodeId> points = Evaluate(insert.pattern, *t);
        for (NodeId p : points) {
          t->GraftCopy(p, *insert.content, insert.content->root());
        }
      },
      [t](const DeleteDesc& del) {
        const std::vector<NodeId> points = Evaluate(del.pattern, *t);
        for (NodeId p : points) {
          if (t->alive(p)) t->DeleteSubtree(p);
        }
      });
}

}  // namespace xmlup
