#ifndef XMLUP_CONFLICT_UPDATE_OP_H_
#define XMLUP_CONFLICT_UPDATE_OP_H_

#include <memory>
#include <variant>

#include "common/result.h"
#include "pattern/pattern.h"
#include "xml/tree.h"

namespace xmlup {

/// A single update operation — the paper's INSERT_{p,X} or DELETE_p — as a
/// value type shared by the unified detector facade (conflict/detector.h),
/// the batch engine, commutativity analysis and the dependence analyzer.
///
/// Internally a std::variant over the two descriptions, so adding an
/// update kind extends one alternative (and the compiler flags every
/// switch that must learn about it) instead of widening a Kind/nullable-
/// field bundle. Inserted content is a shared_ptr so UpdateOp stays
/// cheaply copyable.
class UpdateOp {
 public:
  enum class Kind { kInsert, kDelete };

  /// INSERT_{p,X}: grafts a fresh copy of `content` under every node
  /// selected by `pattern`.
  struct InsertDesc {
    Pattern pattern;
    std::shared_ptr<const Tree> content;
  };

  /// DELETE_p: removes the subtree rooted at every selected node. The
  /// pattern must not select the root (O(p) != ROOT(p)).
  struct DeleteDesc {
    Pattern pattern;
  };

  static UpdateOp MakeInsert(Pattern pattern,
                             std::shared_ptr<const Tree> content);
  /// Fails if the delete pattern selects the root.
  static Result<UpdateOp> MakeDelete(Pattern pattern);

  Kind kind() const {
    return std::holds_alternative<InsertDesc>(op_) ? Kind::kInsert
                                                   : Kind::kDelete;
  }

  const Pattern& pattern() const;
  /// Insert-only; checks.
  const Tree& content() const;
  const std::shared_ptr<const Tree>& shared_content() const;

  /// Visitor access to the underlying variant, e.g.
  ///   op.Visit([](const UpdateOp::InsertDesc& i) {...},
  ///            [](const UpdateOp::DeleteDesc& d) {...});
  template <typename... Fns>
  decltype(auto) Visit(Fns&&... fns) const {
    struct Overloaded : std::decay_t<Fns>... {
      using std::decay_t<Fns>::operator()...;
    };
    return std::visit(Overloaded{std::forward<Fns>(fns)...}, op_);
  }

  /// Applies this update in place (reference semantics: evaluate first,
  /// then mutate).
  void ApplyInPlace(Tree* t) const;

 private:
  explicit UpdateOp(std::variant<InsertDesc, DeleteDesc> op);

  std::variant<InsertDesc, DeleteDesc> op_;
};

}  // namespace xmlup

#endif  // XMLUP_CONFLICT_UPDATE_OP_H_
