#ifndef XMLUP_CONFLICT_UPDATE_OP_H_
#define XMLUP_CONFLICT_UPDATE_OP_H_

#include <memory>
#include <variant>

#include "common/result.h"
#include "pattern/pattern.h"
#include "pattern/pattern_store.h"
#include "xml/tree.h"

namespace xmlup {

/// The one root-delete guard (paper §2.2: DELETE_p requires
/// O(p) != ROOT(p) — deleting the root leaves no tree). Every layer that
/// accepts a delete pattern validates through this — the MakeDelete
/// factories, the linear detectors (value and compiled), and the Detect()
/// facade — so no call path can smuggle a root-selecting delete past the
/// check. The check is stable under minimization: a minimized root output
/// is still the root.
Status ValidateDeletePattern(const Pattern& pattern);

/// A single update operation — the paper's INSERT_{p,X} or DELETE_p — as a
/// value type shared by the unified detector facade (conflict/detector.h),
/// the batch engine, commutativity analysis and the dependence analyzer.
///
/// Internally a std::variant over the two descriptions, so adding an
/// update kind extends one alternative (and the compiler flags every
/// switch that must learn about it) instead of widening a Kind/nullable-
/// field bundle. Inserted content is a shared_ptr so UpdateOp stays
/// cheaply copyable.
class UpdateOp {
 public:
  enum class Kind { kInsert, kDelete };

  /// INSERT_{p,X}: grafts a fresh copy of `content` under every node
  /// selected by `pattern`.
  struct InsertDesc {
    Pattern pattern;
    std::shared_ptr<const Tree> content;
  };

  /// DELETE_p: removes the subtree rooted at every selected node. The
  /// pattern must not select the root (O(p) != ROOT(p)).
  struct DeleteDesc {
    Pattern pattern;
  };

  static UpdateOp MakeInsert(Pattern pattern,
                             std::shared_ptr<const Tree> content);
  /// Fails if the delete pattern selects the root.
  static Result<UpdateOp> MakeDelete(Pattern pattern);

  /// Ref-based factories: the op's pattern is `store->pattern(pattern)`
  /// (the interned canonical form) and the op carries the ref, so layers
  /// that memoize on pattern identity (batch engine, pair loops) use the
  /// integer id instead of re-canonicalizing. `store` must be non-null and
  /// `pattern` minted by it.
  static UpdateOp MakeInsert(std::shared_ptr<const PatternStore> store,
                             PatternRef pattern,
                             std::shared_ptr<const Tree> content);
  static Result<UpdateOp> MakeDelete(std::shared_ptr<const PatternStore> store,
                                     PatternRef pattern);

  /// A copy of this op bound to `store`: its pattern interned (minimized)
  /// and the ref recorded. Amortizes canonicalization across pair loops
  /// (update_independence, transactions, batch). Equivalence-preserving:
  /// the bound op selects the same nodes on every tree.
  UpdateOp Bind(const std::shared_ptr<PatternStore>& store) const;

  /// The interning ref, or an invalid ref for ops built from raw Patterns.
  PatternRef pattern_ref() const { return pattern_ref_; }
  /// The store `pattern_ref()` belongs to; null for ops built from raw
  /// Patterns.
  const PatternStore* pattern_store() const { return store_.get(); }

  Kind kind() const {
    return std::holds_alternative<InsertDesc>(op_) ? Kind::kInsert
                                                   : Kind::kDelete;
  }

  const Pattern& pattern() const;
  /// Insert-only; checks.
  const Tree& content() const;
  const std::shared_ptr<const Tree>& shared_content() const;

  /// Visitor access to the underlying variant, e.g.
  ///   op.Visit([](const UpdateOp::InsertDesc& i) {...},
  ///            [](const UpdateOp::DeleteDesc& d) {...});
  template <typename... Fns>
  decltype(auto) Visit(Fns&&... fns) const {
    struct Overloaded : std::decay_t<Fns>... {
      using std::decay_t<Fns>::operator()...;
    };
    return std::visit(Overloaded{std::forward<Fns>(fns)...}, op_);
  }

  /// Applies this update in place (reference semantics: evaluate first,
  /// then mutate).
  void ApplyInPlace(Tree* t) const;

 private:
  explicit UpdateOp(std::variant<InsertDesc, DeleteDesc> op);

  std::variant<InsertDesc, DeleteDesc> op_;
  /// Set only by the ref-based factories / Bind(); keeps the op cheaply
  /// copyable (shared_ptr + 32-bit id).
  std::shared_ptr<const PatternStore> store_;
  PatternRef pattern_ref_;
};

}  // namespace xmlup

#endif  // XMLUP_CONFLICT_UPDATE_OP_H_
