#include "conflict/witness_build.h"

#include "pattern/pattern_ops.h"

namespace xmlup {

Tree MatchWordToPath(const ClassWord& word,
                     const std::shared_ptr<SymbolTable>& symbols,
                     NodeId* deepest) {
  XMLUP_CHECK(!word.empty());
  const Label filler = symbols->Fresh("wfill");
  Tree tree = WordToPathTree(word, symbols, filler);
  if (deepest != nullptr) {
    NodeId n = tree.root();
    while (tree.first_child(n) != kNullNode) n = tree.first_child(n);
    *deepest = n;
  }
  return tree;
}

void GraftBranchModelsEverywhere(Tree* tree, const Pattern& update) {
  // Branch children: children of mainline nodes that are not themselves on
  // the mainline.
  std::vector<PatternNodeId> branches;
  for (PatternNodeId n : PathBetween(update, update.root(), update.output())) {
    for (PatternNodeId c = update.first_child(n); c != kNullPatternNode;
         c = update.next_sibling(c)) {
      if (!update.IsAncestorOrSelf(c, update.output())) branches.push_back(c);
    }
  }
  if (branches.empty()) return;
  const Label filler = tree->symbols()->Fresh("bfill");
  // Snapshot the node set first: models are grafted onto the original
  // nodes only (the Lemma 4 proof adds M_c to each node of W).
  const std::vector<NodeId> nodes = tree->PreOrder();
  for (NodeId n : nodes) {
    for (PatternNodeId c : branches) {
      GraftModel(tree, n, update, c, filler);
    }
  }
}

}  // namespace xmlup
