#ifndef XMLUP_CONFLICT_WITNESS_BUILD_H_
#define XMLUP_CONFLICT_WITNESS_BUILD_H_

#include "match/matching.h"
#include "pattern/pattern.h"
#include "xml/tree.h"

namespace xmlup {

/// Helpers shared by the witness constructions of the linear read-delete
/// and read-insert detectors (proofs of Lemmas 3, 4, 6 and 8).

/// Materializes a match witness word as a path tree whose Any classes are
/// resolved to a fresh symbol (one not occurring in any pattern).
/// Returns the tree; `deepest` (optional) receives the last node of the
/// path — the image of O(l1) in the match.
Tree MatchWordToPath(const ClassWord& word,
                     const std::shared_ptr<SymbolTable>& symbols,
                     NodeId* deepest = nullptr);

/// Lemma 4 / Lemma 8 extension step: for every branch subpattern of
/// `update` (a child subtree hanging off the root→output mainline), grafts
/// a model of that subpattern onto every pre-existing node of `tree`, so
/// any embedding of the mainline extends to an embedding of the full
/// pattern. Wildcards in the models are filled with a fresh symbol.
void GraftBranchModelsEverywhere(Tree* tree, const Pattern& update);

}  // namespace xmlup

#endif  // XMLUP_CONFLICT_WITNESS_BUILD_H_
