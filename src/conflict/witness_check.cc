#include "conflict/witness_check.h"

#include <algorithm>
#include <set>

#include "eval/evaluator.h"
#include "xml/isomorphism.h"
#include "xml/tree_algos.h"

namespace xmlup {
namespace {

/// Captures everything about R(t) needed by all three semantics, applies
/// `mutate`, then compares. NodeIds are stable across mutation, so
/// reference-based comparison is direct id comparison.
template <typename MutateFn>
bool CheckWitness(const Pattern& read, const Tree& original,
                  ConflictSemantics semantics, MutateFn mutate) {
  Tree t = CopyTree(original);
  const std::vector<NodeId> before = Evaluate(read, t);

  std::vector<SubtreeSnapshot> snapshots;
  std::set<std::string> codes_before;
  if (semantics == ConflictSemantics::kTree) {
    snapshots.reserve(before.size());
    for (NodeId n : before) snapshots.push_back(SnapshotSubtree(t, n));
  } else if (semantics == ConflictSemantics::kValue) {
    for (NodeId n : before) codes_before.insert(CanonicalCode(t, n));
  }

  mutate(&t);
  const std::vector<NodeId> after = Evaluate(read, t);

  switch (semantics) {
    case ConflictSemantics::kNode:
      return before != after;  // both sorted
    case ConflictSemantics::kTree: {
      if (before != after) return true;
      for (const SubtreeSnapshot& snapshot : snapshots) {
        if (!SnapshotUnchanged(t, snapshot)) return true;
      }
      return false;
    }
    case ConflictSemantics::kValue: {
      std::set<std::string> codes_after;
      for (NodeId n : after) codes_after.insert(CanonicalCode(t, n));
      return codes_before != codes_after;
    }
  }
  return false;
}

}  // namespace

std::string_view ConflictSemanticsName(ConflictSemantics semantics) {
  switch (semantics) {
    case ConflictSemantics::kNode:
      return "node";
    case ConflictSemantics::kTree:
      return "tree";
    case ConflictSemantics::kValue:
      return "value";
  }
  return "?";
}

bool IsReadInsertWitness(const Pattern& read, const Pattern& insert_pattern,
                         const Tree& inserted, const Tree& t,
                         ConflictSemantics semantics) {
  return CheckWitness(read, t, semantics, [&](Tree* tree) {
    const std::vector<NodeId> points = Evaluate(insert_pattern, *tree);
    for (NodeId point : points) {
      tree->GraftCopy(point, inserted, inserted.root());
    }
  });
}

bool IsReadDeleteWitness(const Pattern& read, const Pattern& delete_pattern,
                         const Tree& t, ConflictSemantics semantics) {
  XMLUP_CHECK(delete_pattern.output() != delete_pattern.root());
  return CheckWitness(read, t, semantics, [&](Tree* tree) {
    for (NodeId point : Evaluate(delete_pattern, *tree)) {
      if (tree->alive(point)) tree->DeleteSubtree(point);
    }
  });
}

}  // namespace xmlup
