#ifndef XMLUP_CONFLICT_WITNESS_CHECK_H_
#define XMLUP_CONFLICT_WITNESS_CHECK_H_

#include <string>

#include "ops/operations.h"
#include "pattern/pattern.h"
#include "xml/tree.h"

namespace xmlup {

/// The three conflict semantics of §3.
///  - kNode:  reference-based, node identity of [[p]] results
///            (Definitions 3 and 4).
///  - kTree:  reference-based, additionally requires the result *subtrees*
///            to be untouched.
///  - kValue: value-based, compares [[p]]_T results up to isomorphism
///            (Definitions 5 and 6).
enum class ConflictSemantics {
  kNode,
  kTree,
  kValue,
};

std::string_view ConflictSemanticsName(ConflictSemantics semantics);

/// Lemma 1: deciding whether a *given* tree t witnesses a conflict is
/// polynomial for all three semantics. These checkers never mutate the
/// caller's tree (they work on a copy).
///
/// Read-insert: true iff R(I(t)) differs from R(t) under `semantics`.
bool IsReadInsertWitness(const Pattern& read, const Pattern& insert_pattern,
                         const Tree& inserted, const Tree& t,
                         ConflictSemantics semantics);

/// Read-delete: true iff R(D(t)) differs from R(t) under `semantics`.
/// `delete_pattern` must have O(p) != ROOT(p).
bool IsReadDeleteWitness(const Pattern& read, const Pattern& delete_pattern,
                         const Tree& t, ConflictSemantics semantics);

}  // namespace xmlup

#endif  // XMLUP_CONFLICT_WITNESS_CHECK_H_
