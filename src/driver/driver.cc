#include "driver/driver.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <optional>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/random.h"
#include "conflict/conflict_matrix.h"
#include "conflict/report.h"
#include "merge/merge_executor.h"
#include "workload/pattern_generator.h"
#include "workload/tree_generator.h"
#include "xml/tree.h"
#include "xml/tree_algos.h"

namespace xmlup {
namespace driver {
namespace {

using Clock = std::chrono::steady_clock;

uint64_t ElapsedMicros(Clock::time_point from, Clock::time_point to) {
  if (to <= from) return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(to - from)
          .count());
}

/// Per-worker accumulation: plain (non-atomic) counters merged after the
/// join. Latency rides the same power-of-two bucketing as obs::Histogram
/// so the merged result is an obs::HistogramData and percentile extraction
/// is HistogramData::Quantile — but the buckets here are worker-local, so
/// they work identically under -DXMLUP_OBS_DISABLED and never mix phases.
struct WorkerTally {
  VerdictTally verdicts;
  MergeTally merge;
  std::array<uint64_t, obs::Histogram::kNumBuckets> latency_buckets{};
  uint64_t latency_count = 0;
  uint64_t latency_sum = 0;
  uint64_t latency_max = 0;
  uint64_t ops = 0;

  void RecordLatency(uint64_t us) {
    ++latency_buckets[obs::Histogram::BucketIndex(us)];
    ++latency_count;
    latency_sum += us;
    if (us > latency_max) latency_max = us;
  }

  void RecordVerdict(const Result<ConflictReport>& result) {
    if (!result.ok()) {
      ++verdicts.errors;
      return;
    }
    switch (result->verdict) {
      case ConflictVerdict::kNoConflict:
        ++verdicts.no_conflict;
        break;
      case ConflictVerdict::kConflict:
        ++verdicts.conflict;
        break;
      case ConflictVerdict::kUnknown:
        ++verdicts.unknown;
        break;
    }
  }

  void RecordSlice(const std::vector<SharedConflictResult>& slice) {
    for (const SharedConflictResult& cell : slice) RecordVerdict(*cell);
  }
};

/// Shared per-phase execution state; workers claim plan units through
/// `next_unit` (a detect op is one unit, a whole session edit stream is
/// one unit, so streams stay single-writer).
struct PhaseRun {
  const PhasePlan& plan;
  const PhaseSpec& spec;
  std::vector<std::unique_ptr<Engine::Session>>& sessions;
  Clock::time_point start;
  /// Absolute deadline; Clock::time_point::max() when uncapped.
  Clock::time_point deadline;
  std::atomic<size_t> next_unit{0};
  std::atomic<bool> truncated{false};

  PhaseRun(const PhasePlan& plan_in, const PhaseSpec& spec_in,
           std::vector<std::unique_ptr<Engine::Session>>& sessions_in)
      : plan(plan_in), spec(spec_in), sessions(sessions_in) {}

  /// The scheduled arrival of op `op_index`: phase start for closed-loop
  /// phases (no pacing), start + i/rate for open-loop ones.
  Clock::time_point Arrival(size_t op_index) const {
    if (spec.mode != PhaseMode::kOpen) return start;
    const double offset_us = 1e6 * static_cast<double>(op_index) /
                             spec.arrival_rate;
    return start + std::chrono::microseconds(
                       static_cast<int64_t>(offset_us));
  }

  /// Waits for the op's scheduled arrival (open loop), then checks the
  /// deadline. Returns the op's latency anchor — the scheduled arrival in
  /// open phases, issue time in closed ones — or nullopt when the phase is
  /// out of time (the caller stops issuing and the phase reports
  /// truncated).
  ///
  /// Overload audit: arrivals stay anchored to the fixed schedule
  /// (start + i/rate) no matter how far behind a worker falls — Arrival()
  /// never reads a completion time, so a slow op cannot drift later
  /// arrivals, and the sleep is guarded (skipped entirely for past
  /// arrivals) so there is no negative-wait accumulation. Latency measured
  /// from the returned anchor therefore charges queueing delay under
  /// overload to the ops that suffered it — the coordinated-omission-safe
  /// measurement. driver_test's OpenLoopOverloadStaysAnchored pins this.
  std::optional<Clock::time_point> PaceAndCheck(size_t op_index) {
    if (spec.mode == PhaseMode::kOpen) {
      const Clock::time_point arrival = Arrival(op_index);
      if (Clock::now() < arrival) std::this_thread::sleep_until(arrival);
    }
    if (Clock::now() > deadline) {
      // ordering: relaxed — a monotone sticky flag, only read after the
      // worker joins (the join supplies the happens-before edge).
      truncated.store(true, std::memory_order_relaxed);
      return std::nullopt;
    }
    return spec.mode == PhaseMode::kOpen ? Arrival(op_index) : Clock::now();
  }
};

void RunDetectUnit(const Engine& engine, PhaseRun& run, size_t unit,
                   WorkerTally& tally) {
  const size_t op_index = run.plan.detect_op_indices[unit];
  // Latency is measured from the anchor PaceAndCheck returns: the
  // scheduled arrival in open phases (so queueing behind a saturated
  // engine is charged, not omitted), issue time in closed ones.
  const std::optional<Clock::time_point> anchor = run.PaceAndCheck(op_index);
  if (!anchor.has_value()) return;
  const DetectUnit& detect = run.plan.detects[unit];
  const Clock::time_point from = *anchor;
  Result<ConflictReport> result = engine.Detect(detect.read, detect.update);
  tally.RecordVerdict(result);
  tally.RecordLatency(ElapsedMicros(from, Clock::now()));
  ++tally.ops;
}

void RunSessionStream(PhaseRun& run, size_t session_index,
                      WorkerTally& tally) {
  const SessionScript& script = run.plan.sessions[session_index];
  MaintainedConflictMatrix& matrix =
      run.sessions[session_index]->matrix();
  for (size_t k = 0; k < script.edits.size(); ++k) {
    const size_t op_index = script.op_indices[k];
    const std::optional<Clock::time_point> anchor = run.PaceAndCheck(op_index);
    if (!anchor.has_value()) return;
    const EditOp& edit = script.edits[k];
    const Clock::time_point from = *anchor;
    switch (edit.kind) {
      case EditOp::Kind::kAddRead:
        tally.RecordSlice(matrix.row(matrix.AddRead(*edit.pattern)));
        break;
      case EditOp::Kind::kAddUpdate:
        tally.RecordSlice(matrix.column(matrix.AddUpdate(*edit.update)));
        break;
      case EditOp::Kind::kReplaceRead:
        matrix.ReplaceRead(edit.index, *edit.pattern);
        tally.RecordSlice(matrix.row(edit.index));
        break;
      case EditOp::Kind::kReplaceUpdate:
        matrix.ReplaceUpdate(edit.index, *edit.update);
        tally.RecordSlice(matrix.column(edit.index));
        break;
      case EditOp::Kind::kRemoveRead:
        matrix.RemoveRead(edit.index);
        break;
      case EditOp::Kind::kRemoveUpdate:
        matrix.RemoveUpdate(edit.index);
        break;
    }
    tally.RecordLatency(ElapsedMicros(from, Clock::now()));
    ++tally.ops;
  }
}

void RunMergeUnit(Engine* engine, PhaseRun& run, size_t unit_index,
                  WorkerTally& tally) {
  const size_t op_index = run.plan.merge_op_indices[unit_index];
  const std::optional<Clock::time_point> anchor = run.PaceAndCheck(op_index);
  if (!anchor.has_value()) return;
  const MergeUnit& unit = run.plan.merges[unit_index];
  MergeOptions options;
  options.num_threads = run.spec.merge.threads;
  options.policy = run.spec.merge.reject ? ConflictPolicy::kReject
                                         : ConflictPolicy::kSerialize;
  const MergeExecutor executor(engine, options);
  // The plan stays immutable (re-runnable): each execution merges into a
  // private copy of the unit's seed tree.
  Tree working = CopyTree(unit.seed);
  const Result<MergeReport> report = executor.Merge(&working, unit.streams);
  if (!report.ok()) {
    ++tally.merge.errors;
  } else {
    ++tally.merge.merges;
    tally.merge.ops_total += report->ops_total;
    tally.merge.accepted += report->accepted;
    tally.merge.serialized += report->serialized;
    tally.merge.rejected += report->rejected;
  }
  tally.RecordLatency(ElapsedMicros(*anchor, Clock::now()));
  ++tally.ops;
}

LatencySummary SummarizeLatency(const std::vector<WorkerTally>& tallies) {
  obs::HistogramData data;
  std::array<uint64_t, obs::Histogram::kNumBuckets> merged{};
  LatencySummary summary;
  for (const WorkerTally& tally : tallies) {
    data.count += tally.latency_count;
    data.sum += tally.latency_sum;
    if (tally.latency_max > summary.max_us) summary.max_us = tally.latency_max;
    for (size_t i = 0; i < merged.size(); ++i) {
      merged[i] += tally.latency_buckets[i];
    }
  }
  for (size_t i = 0; i < merged.size(); ++i) {
    if (merged[i] > 0) {
      data.buckets.emplace_back(obs::Histogram::BucketUpperBound(i),
                                merged[i]);
    }
  }
  summary.count = data.count;
  summary.mean_us = data.Mean();
  // Interpolation can overshoot inside the top occupied bucket (the
  // bucket bound exceeds the largest observation); the exact max is a
  // tighter ceiling, so clamp the percentiles to it.
  const double max = static_cast<double>(summary.max_us);
  summary.p50_us = std::min(data.Quantile(0.50), max);
  summary.p95_us = std::min(data.Quantile(0.95), max);
  summary.p99_us = std::min(data.Quantile(0.99), max);
  return summary;
}

/// --- Plan generation ---

/// Draws one update op: INSERT_{p,X} with a generated content tree, or
/// DELETE_p on a non-root-output pattern, weighted by the phase mix (equal
/// odds when the mix is edit-only).
UpdateOp DrawUpdate(const PhaseMix& mix, const RandomPatternGenerator& patterns,
                    const RandomTreeGenerator& trees, Rng* rng) {
  const double insert_weight = mix.insert + mix.delete_ > 0 ? mix.insert : 0.5;
  const double delete_weight =
      mix.insert + mix.delete_ > 0 ? mix.delete_ : 0.5;
  if (rng->NextWeighted({insert_weight, delete_weight}) == 0) {
    return UpdateOp::MakeInsert(
        patterns.GenerateBranching(rng),
        std::make_shared<const Tree>(trees.Generate(rng)));
  }
  Result<UpdateOp> del =
      UpdateOp::MakeDelete(patterns.GenerateBranchingNonRootOutput(rng));
  XMLUP_CHECK(del.ok());  // non-root output by construction
  return *std::move(del);
}

/// Scripts one edit against a session whose matrix currently has
/// `reads_n` x `updates_n` cells, keeping the planned dimensions in sync.
EditOp DrawEdit(const PhaseMix& mix, const RandomPatternGenerator& patterns,
                const RandomTreeGenerator& trees, Rng* rng, size_t* reads_n,
                size_t* updates_n) {
  // Kind weights: replaces dominate (they model statement editing, the
  // interesting incremental path), adds and removes keep dimensions
  // drifting. Removes are disabled below 2 rows/columns so the matrix
  // never empties; replaces need at least one.
  enum : size_t {
    kAddRead,
    kAddUpdate,
    kReplaceRead,
    kReplaceUpdate,
    kRemoveRead,
    kRemoveUpdate
  };
  std::vector<double> weights = {1, 1, 2, 2, 1, 1};
  if (*reads_n == 0) weights[kReplaceRead] = 0;
  if (*updates_n == 0) weights[kReplaceUpdate] = 0;
  if (*reads_n < 2) weights[kRemoveRead] = 0;
  if (*updates_n < 2) weights[kRemoveUpdate] = 0;
  EditOp edit;
  switch (rng->NextWeighted(weights)) {
    case kAddRead:
      edit.kind = EditOp::Kind::kAddRead;
      edit.pattern = patterns.GenerateBranching(rng);
      ++*reads_n;
      break;
    case kAddUpdate:
      edit.kind = EditOp::Kind::kAddUpdate;
      edit.update = DrawUpdate(mix, patterns, trees, rng);
      ++*updates_n;
      break;
    case kReplaceRead:
      edit.kind = EditOp::Kind::kReplaceRead;
      edit.index = rng->NextBounded(*reads_n);
      edit.pattern = patterns.GenerateBranching(rng);
      break;
    case kReplaceUpdate:
      edit.kind = EditOp::Kind::kReplaceUpdate;
      edit.index = rng->NextBounded(*updates_n);
      edit.update = DrawUpdate(mix, patterns, trees, rng);
      break;
    case kRemoveRead:
      edit.kind = EditOp::Kind::kRemoveRead;
      edit.index = rng->NextBounded(*reads_n);
      --*reads_n;
      break;
    case kRemoveUpdate:
      edit.kind = EditOp::Kind::kRemoveUpdate;
      edit.index = rng->NextBounded(*updates_n);
      --*updates_n;
      break;
  }
  return edit;
}

}  // namespace

Result<EngineOptions> EngineOptionsForSpec(
    const WorkloadSpec& spec, const std::shared_ptr<SymbolTable>& symbols,
    EngineOptions base) {
  if (!spec.dtd.enabled()) return base;
  // The declaration syntax is line-oriented, so the JSON array of
  // declaration strings is just the schema file split into lines.
  std::string text;
  for (const std::string& line : spec.dtd.declarations) {
    text += line;
    text += '\n';
  }
  Result<Dtd> dtd = Dtd::Parse(text, symbols);
  if (!dtd.ok()) {
    return Status::InvalidArgument("workload spec \"dtd\" block: " +
                                   std::string(dtd.status().message()));
  }
  base.dtd = std::make_shared<const Dtd>(*std::move(dtd));
  base.batch.detector.enable_type_pruning = spec.dtd.pruning;
  return base;
}

VerdictTally& VerdictTally::operator+=(const VerdictTally& other) {
  no_conflict += other.no_conflict;
  conflict += other.conflict;
  unknown += other.unknown;
  errors += other.errors;
  return *this;
}

MergeTally& MergeTally::operator+=(const MergeTally& other) {
  merges += other.merges;
  ops_total += other.ops_total;
  accepted += other.accepted;
  serialized += other.serialized;
  rejected += other.rejected;
  errors += other.errors;
  return *this;
}

JsonValue MergeTally::ToJson() const {
  JsonValue json = JsonValue::MakeObject();
  json.Set("merges", merges);
  json.Set("ops_total", ops_total);
  json.Set("accepted", accepted);
  json.Set("serialized", serialized);
  json.Set("rejected", rejected);
  json.Set("errors", errors);
  return json;
}

JsonValue VerdictTally::ToJson() const {
  JsonValue json = JsonValue::MakeObject();
  json.Set("no_conflict", no_conflict);
  json.Set("conflict", conflict);
  json.Set("unknown", unknown);
  json.Set("errors", errors);
  return json;
}

JsonValue LatencySummary::ToJson() const {
  JsonValue json = JsonValue::MakeObject();
  json.Set("count", count);
  json.Set("p50_us", p50_us);
  json.Set("p95_us", p95_us);
  json.Set("p99_us", p99_us);
  json.Set("mean_us", mean_us);
  json.Set("max_us", max_us);
  return json;
}

JsonValue PhaseReport::ToJson() const {
  JsonValue json = JsonValue::MakeObject();
  json.Set("name", name);
  json.Set("mode", PhaseModeName(mode));
  json.Set("workers", workers);
  json.Set("ops_planned", ops_planned);
  json.Set("ops_completed", ops_completed);
  json.Set("truncated", truncated);
  json.Set("wall_seconds", wall_seconds);
  json.Set("throughput_ops_per_s", throughput_ops_per_s);
  json.Set("latency", latency.ToJson());
  json.Set("verdicts", verdicts.ToJson());
  if (merge.merges > 0 || merge.errors > 0) {
    json.Set("merge", merge.ToJson());
  }
  JsonValue counters = JsonValue::MakeObject();
  for (const auto& [counter_name, value] : metrics_delta.counters) {
    if (value > 0) counters.Set(counter_name, value);
  }
  json.Set("engine_counters", std::move(counters));
  return json;
}

JsonValue DriverReport::ToJson() const {
  JsonValue json = JsonValue::MakeObject();
  json.Set("workload", workload);
  json.Set("seed", seed);
  JsonValue phase_array = JsonValue::MakeArray();
  for (const PhaseReport& phase : phases) phase_array.Append(phase.ToJson());
  json.Set("phases", std::move(phase_array));
  json.Set("total_verdicts", total_verdicts.ToJson());
  return json;
}

Driver::Driver(Engine* engine, WorkloadSpec spec)
    : engine_(engine), spec_(std::move(spec)) {
  XMLUP_CHECK(engine_ != nullptr);
}

Result<WorkloadPlan> Driver::BuildPlan(const WorkloadSpec& spec,
                                       Engine* engine) {
  XMLUP_CHECK(engine != nullptr);
  Rng rng(spec.seed);
  const RandomPatternGenerator patterns(
      engine->symbols(), spec.generator.BindPattern(engine->symbols()));
  const RandomTreeGenerator trees(engine->symbols(),
                                  spec.generator.BindTree(engine->symbols()));

  WorkloadPlan plan;
  plan.phases.reserve(spec.phases.size());
  for (const PhaseSpec& phase : spec.phases) {
    PhasePlan phase_plan;
    if (phase.kind == PhaseKind::kMerge) {
      // Each op slot is one whole merge unit: a private seed tree plus
      // per-session update streams. Ops are bound here so the executors
      // certify on interned refs (and the store is production-warm).
      for (size_t i = 0; i < phase.ops; ++i) {
        MergeUnit unit{trees.Generate(&rng), {}};
        unit.streams.resize(phase.merge.sessions);
        for (auto& stream : unit.streams) {
          stream.reserve(phase.merge.ops_per_session);
          for (size_t k = 0; k < phase.merge.ops_per_session; ++k) {
            stream.push_back(
                engine->Bind(DrawUpdate(phase.mix, patterns, trees, &rng)));
          }
        }
        phase_plan.merges.push_back(std::move(unit));
        phase_plan.merge_op_indices.push_back(i);
      }
      plan.phases.push_back(std::move(phase_plan));
      continue;
    }
    const bool has_edits = phase.mix.edit > 0 && spec.sessions.count > 0;
    const size_t session_count = has_edits ? spec.sessions.count : 0;
    phase_plan.sessions.resize(session_count);
    std::vector<size_t> session_reads(session_count, 0);
    std::vector<size_t> session_updates(session_count, 0);
    // Session baselines first (untimed Assign before the phase clock).
    for (size_t s = 0; s < session_count; ++s) {
      SessionScript& script = phase_plan.sessions[s];
      for (size_t i = 0; i < spec.sessions.initial_reads; ++i) {
        script.initial_reads.push_back(patterns.GenerateBranching(&rng));
      }
      for (size_t i = 0; i < spec.sessions.initial_updates; ++i) {
        script.initial_updates.push_back(
            DrawUpdate(phase.mix, patterns, trees, &rng));
      }
      session_reads[s] = spec.sessions.initial_reads;
      session_updates[s] = spec.sessions.initial_updates;
    }
    // Then the op sequence. Op index i is also the arrival-schedule slot.
    size_t next_session = 0;
    const std::vector<double> kind_weights = {
        phase.mix.insert, phase.mix.delete_, has_edits ? phase.mix.edit : 0.0};
    if (kind_weights[0] + kind_weights[1] + kind_weights[2] <= 0) {
      return Status::InvalidArgument(
          "phase \"" + phase.name +
          "\": no executable operation kind (edit-only mix with zero "
          "sessions?)");
    }
    for (size_t i = 0; i < phase.ops; ++i) {
      const size_t kind = rng.NextWeighted(kind_weights);
      if (kind == 2) {
        const size_t s = next_session;
        next_session = (next_session + 1) % session_count;
        SessionScript& script = phase_plan.sessions[s];
        script.edits.push_back(DrawEdit(phase.mix, patterns, trees, &rng,
                                        &session_reads[s],
                                        &session_updates[s]));
        script.op_indices.push_back(i);
        continue;
      }
      const PatternRef read = engine->Intern(patterns.GenerateBranching(&rng));
      std::optional<UpdateOp> update;
      if (kind == 0) {
        update = UpdateOp::MakeInsert(
            patterns.GenerateBranching(&rng),
            std::make_shared<const Tree>(trees.Generate(&rng)));
      } else {
        Result<UpdateOp> del = UpdateOp::MakeDelete(
            patterns.GenerateBranchingNonRootOutput(&rng));
        XMLUP_CHECK(del.ok());
        update = *std::move(del);
      }
      phase_plan.detects.push_back(
          DetectUnit{read, engine->Bind(*std::move(update))});
      phase_plan.detect_op_indices.push_back(i);
    }
    plan.phases.push_back(std::move(phase_plan));
  }
  return plan;
}

Result<DriverReport> Driver::Run() {
  Result<WorkloadPlan> plan = BuildPlan(spec_, engine_);
  if (!plan.ok()) return plan.status();

  DriverReport report;
  report.workload = spec_.name;
  report.seed = spec_.seed;
  for (size_t p = 0; p < spec_.phases.size(); ++p) {
    const PhaseSpec& phase = spec_.phases[p];
    const PhasePlan& phase_plan = plan->phases[p];

    // Untimed setup: fresh sessions with their baseline matrices.
    std::vector<std::unique_ptr<Engine::Session>> sessions;
    sessions.reserve(phase_plan.sessions.size());
    for (const SessionScript& script : phase_plan.sessions) {
      sessions.push_back(engine_->MakeSession());
      sessions.back()->matrix().Assign(script.initial_reads,
                                       script.initial_updates);
    }

    const obs::MetricsSnapshot before = engine_->MetricsSnapshot();
    PhaseRun run(phase_plan, phase, sessions);
    run.start = Clock::now();
    run.deadline =
        phase.max_duration_s > 0
            ? run.start + std::chrono::microseconds(static_cast<int64_t>(
                              phase.max_duration_s * 1e6))
            : Clock::time_point::max();

    const size_t num_units = phase_plan.detects.size() +
                             phase_plan.sessions.size() +
                             phase_plan.merges.size();
    std::vector<WorkerTally> tallies(phase.workers);
    {
      std::vector<std::thread> workers;
      workers.reserve(phase.workers);
      for (size_t w = 0; w < phase.workers; ++w) {
        workers.emplace_back([this, &run, &tallies, num_units, w] {
          WorkerTally& tally = tallies[w];
          for (;;) {
            // ordering: relaxed — pure index claiming: each worker only
            // needs a distinct unit, and all results are published through
            // per-worker tallies read after join().
            const size_t unit =
                run.next_unit.fetch_add(1, std::memory_order_relaxed);
            if (unit >= num_units) break;
            const size_t sessions_end =
                run.plan.detects.size() + run.plan.sessions.size();
            if (unit < run.plan.detects.size()) {
              RunDetectUnit(*engine_, run, unit, tally);
            } else if (unit < sessions_end) {
              RunSessionStream(run, unit - run.plan.detects.size(), tally);
            } else {
              RunMergeUnit(engine_, run, unit - sessions_end, tally);
            }
          }
        });
      }
      for (std::thread& worker : workers) worker.join();
    }
    const Clock::time_point end = Clock::now();

    PhaseReport phase_report;
    phase_report.name = phase.name;
    phase_report.mode = phase.mode;
    phase_report.workers = phase.workers;
    phase_report.ops_planned = phase.ops;
    // ordering: relaxed — the worker joins above are the synchronization.
    phase_report.truncated = run.truncated.load(std::memory_order_relaxed);
    for (const WorkerTally& tally : tallies) {
      phase_report.ops_completed += tally.ops;
      phase_report.verdicts += tally.verdicts;
      phase_report.merge += tally.merge;
    }
    phase_report.wall_seconds =
        static_cast<double>(ElapsedMicros(run.start, end)) / 1e6;
    if (phase_report.wall_seconds > 0) {
      phase_report.throughput_ops_per_s =
          static_cast<double>(phase_report.ops_completed) /
          phase_report.wall_seconds;
    }
    phase_report.latency = SummarizeLatency(tallies);
    phase_report.metrics_delta = engine_->MetricsSnapshot().DiffSince(before);
    report.total_verdicts += phase_report.verdicts;
    report.phases.push_back(std::move(phase_report));
  }
  return report;
}

}  // namespace driver
}  // namespace xmlup
