#ifndef XMLUP_DRIVER_DRIVER_H_
#define XMLUP_DRIVER_DRIVER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "conflict/update_op.h"
#include "driver/workload_spec.h"
#include "engine/engine.h"
#include "obs/metrics.h"
#include "pattern/pattern.h"
#include "pattern/pattern_store.h"

namespace xmlup {
namespace driver {

/// Verdict counts accumulated over a run. Deterministic for a fixed spec +
/// seed at any worker count: the plan is generated single-threaded, every
/// operation's verdict is a pure function of its inputs (the engine's
/// determinism guarantee), and tallies are commutative sums.
struct VerdictTally {
  uint64_t no_conflict = 0;
  uint64_t conflict = 0;
  uint64_t unknown = 0;
  uint64_t errors = 0;

  uint64_t total() const { return no_conflict + conflict + unknown + errors; }
  VerdictTally& operator+=(const VerdictTally& other);
  friend bool operator==(const VerdictTally& a, const VerdictTally& b) {
    return a.no_conflict == b.no_conflict && a.conflict == b.conflict &&
           a.unknown == b.unknown && a.errors == b.errors;
  }
  JsonValue ToJson() const;
};

/// Merge-unit accounting of a kMerge phase, summed over workers (like
/// VerdictTally, deterministic for a fixed spec + seed at any worker
/// count). `accepted + serialized + rejected == ops_total` whenever
/// `errors == 0`.
struct MergeTally {
  uint64_t merges = 0;
  uint64_t ops_total = 0;
  uint64_t accepted = 0;
  uint64_t serialized = 0;
  uint64_t rejected = 0;
  /// Merge units that failed outright (no per-op accounting).
  uint64_t errors = 0;

  MergeTally& operator+=(const MergeTally& other);
  friend bool operator==(const MergeTally& a, const MergeTally& b) {
    return a.merges == b.merges && a.ops_total == b.ops_total &&
           a.accepted == b.accepted && a.serialized == b.serialized &&
           a.rejected == b.rejected && a.errors == b.errors;
  }
  JsonValue ToJson() const;
};

/// Interpolated percentiles over the driver's power-of-two latency buckets
/// plus the exact observed maximum (buckets only bound it).
struct LatencySummary {
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;
  double mean_us = 0;
  uint64_t max_us = 0;
  uint64_t count = 0;

  JsonValue ToJson() const;
};

struct PhaseReport {
  std::string name;
  PhaseMode mode = PhaseMode::kClosed;
  size_t workers = 0;
  size_t ops_planned = 0;
  /// Operations executed (== planned unless the phase was truncated by
  /// max_duration_s).
  size_t ops_completed = 0;
  bool truncated = false;
  double wall_seconds = 0;
  /// ops_completed / wall_seconds: sustained throughput for closed phases,
  /// achieved (≤ offered arrival_rate) for open phases.
  double throughput_ops_per_s = 0;
  LatencySummary latency;
  VerdictTally verdicts;
  /// Merge-unit accounting; all-zero for kOps phases (its JSON object is
  /// emitted only when the phase ran merges or merge errors).
  MergeTally merge;
  /// Engine activity attributed to this phase: the process-wide metrics
  /// registry snapshotted before and after, diffed (obs::MetricsSnapshot::
  /// DiffSince).
  obs::MetricsSnapshot metrics_delta;

  JsonValue ToJson() const;
};

struct DriverReport {
  std::string workload;
  uint64_t seed = 0;
  std::vector<PhaseReport> phases;
  VerdictTally total_verdicts;

  JsonValue ToJson() const;
};

/// --- The pre-generated operation plan ---
///
/// The driver never consults an Rng while the clock runs: every operation
/// of every phase is materialized up front, single-threaded, from the
/// spec's seed. Workers then merely *claim and execute* plan units, so op
/// sequences (and hence verdict tallies) are identical at any worker
/// count. Exposed publicly so tests can replay the exact detect pairs
/// through the batch engine as an independent oracle.

/// One singleton conflict-detection op: an interned read against a bound
/// update, executed on the engine's thread-safe Detect hot path.
struct DetectUnit {
  PatternRef read;
  UpdateOp update;
};

/// One edit against a session's maintained matrix. Indices are valid by
/// construction: the planner tracks each session's matrix dimensions as it
/// scripts the stream.
struct EditOp {
  enum class Kind {
    kAddRead,
    kAddUpdate,
    kReplaceRead,
    kReplaceUpdate,
    kRemoveRead,
    kRemoveUpdate
  };
  Kind kind = Kind::kAddRead;
  /// Row/column index for replace/remove; unused for adds.
  size_t index = 0;
  /// The new read pattern (engaged for kAddRead/kReplaceRead) ...
  std::optional<Pattern> pattern;
  /// ... or the new update (engaged for kAddUpdate/kReplaceUpdate).
  std::optional<UpdateOp> update;
};

/// The ordered edit stream of one session within one phase. A stream is a
/// single work unit: exactly one worker claims it and applies the edits in
/// order (sessions are single-writer), tallying the verdicts of each
/// edit's recomputed row/column slice.
struct SessionScript {
  /// Matrix contents Assign()ed before the phase clock starts (untimed
  /// setup — the phase measures churn, not initial construction).
  std::vector<Pattern> initial_reads;
  std::vector<UpdateOp> initial_updates;
  std::vector<EditOp> edits;
  /// Global op index (into the phase's arrival schedule) of each edit;
  /// parallel to `edits`. Open-loop phases pace each edit to its slot.
  std::vector<size_t> op_indices;
};

/// One concurrent-edit merge of a kMerge phase: a private seed tree plus
/// per-session update streams, executed through a MergeExecutor. Trees are
/// move-only, so a plan holding merge units is too.
struct MergeUnit {
  Tree seed;
  std::vector<std::vector<UpdateOp>> streams;
};

struct PhasePlan {
  /// Singleton detect units, each also carrying its arrival-schedule slot.
  std::vector<DetectUnit> detects;
  std::vector<size_t> detect_op_indices;
  /// One script per spec session (scripts may have empty edit lists when
  /// the phase's edit weight is 0).
  std::vector<SessionScript> sessions;
  /// Merge units of a kMerge phase (empty otherwise), with their
  /// arrival-schedule slots.
  std::vector<MergeUnit> merges;
  std::vector<size_t> merge_op_indices;
};

struct WorkloadPlan {
  std::vector<PhasePlan> phases;
};

/// Engine configuration implied by a spec's "dtd" block: parses the
/// block's declarations against `symbols` (the table the Engine will be
/// built over — labels must match the generator's a0..aN-1 names), sets
/// `base.dtd` to the parsed schema (kept alive by the returned options /
/// the Engine that consumes them) and `base.batch.detector.
/// enable_type_pruning` to the block's `pruning` toggle. A spec without a
/// "dtd" block returns `base` unchanged, so callers can pass every spec
/// through unconditionally:
///
///   auto symbols = std::make_shared<SymbolTable>();
///   XMLUP_ASSIGN_OR_RETURN(EngineOptions options,
///                          EngineOptionsForSpec(spec, symbols));
///   Engine engine(symbols, std::move(options));
///
/// Fails with the offending declaration's parse error on a malformed
/// schema.
Result<EngineOptions> EngineOptionsForSpec(
    const WorkloadSpec& spec, const std::shared_ptr<SymbolTable>& symbols,
    EngineOptions base = {});

/// Drives an Engine through a WorkloadSpec and reports per-phase sustained
/// throughput, latency percentiles, and verdict tallies.
///
/// Determinism contract: for a fixed spec (hence seed), the plan, the
/// per-phase op counts, and the per-phase verdict tallies are identical
/// across runs and worker counts — only wall-clock figures vary. Phases
/// truncated by max_duration_s forfeit this (they executed a prefix).
class Driver {
 public:
  /// `engine` must outlive the driver. The engine's store accumulates the
  /// plan's interned patterns (that is the point: a warm store is the
  /// production-shaped steady state).
  Driver(Engine* engine, WorkloadSpec spec);

  /// Generates the plan for `spec` against `engine` (interning reads,
  /// binding updates). Deterministic: same spec + same engine-interning
  /// state ⇒ same plan. Fails on specs whose generator blocks are
  /// degenerate (e.g. a delete-only mix with patterns that cannot avoid
  /// selecting the root).
  static Result<WorkloadPlan> BuildPlan(const WorkloadSpec& spec,
                                        Engine* engine);

  /// Runs every phase in order. Blocking; spawns phase.workers threads per
  /// phase internally.
  Result<DriverReport> Run();

 private:
  Engine* engine_;
  WorkloadSpec spec_;
};

}  // namespace driver
}  // namespace xmlup

#endif  // XMLUP_DRIVER_DRIVER_H_
