#include "driver/workload_spec.h"

#include <utility>

#include "common/status.h"

namespace xmlup {
namespace driver {
namespace {

JsonValue MixJson(const PhaseMix& mix) {
  JsonValue json = JsonValue::MakeObject();
  json.Set("insert", mix.insert);
  json.Set("delete", mix.delete_);
  json.Set("edit", mix.edit);
  return json;
}

JsonValue MergeJson(const MergePhaseSpec& merge) {
  JsonValue json = JsonValue::MakeObject();
  json.Set("sessions", merge.sessions);
  json.Set("ops_per_session", merge.ops_per_session);
  json.Set("threads", merge.threads);
  json.Set("reject", merge.reject);
  return json;
}

JsonValue PhaseJson(const PhaseSpec& phase) {
  JsonValue json = JsonValue::MakeObject();
  json.Set("name", phase.name);
  json.Set("mode", PhaseModeName(phase.mode));
  if (phase.kind != PhaseKind::kOps) {
    json.Set("kind", PhaseKindName(phase.kind));
  }
  json.Set("workers", phase.workers);
  json.Set("ops", phase.ops);
  if (phase.arrival_rate > 0) json.Set("arrival_rate", phase.arrival_rate);
  if (phase.max_duration_s > 0) json.Set("max_duration_s", phase.max_duration_s);
  if (phase.kind == PhaseKind::kMerge) {
    json.Set("merge", MergeJson(phase.merge));
  } else {
    json.Set("mix", MixJson(phase.mix));
  }
  return json;
}

JsonValue SessionsJson(const SessionSetup& sessions) {
  JsonValue json = JsonValue::MakeObject();
  json.Set("count", sessions.count);
  json.Set("initial_reads", sessions.initial_reads);
  json.Set("initial_updates", sessions.initial_updates);
  return json;
}

Status ReadMix(const JsonValue& json, const std::string& context,
               PhaseMix* mix) {
  JsonObjectReader reader(json, context);
  reader.NonNegative("insert", &mix->insert);
  reader.NonNegative("delete", &mix->delete_);
  reader.NonNegative("edit", &mix->edit);
  if (Status s = reader.Finish(); !s.ok()) return s;
  if (mix->insert + mix->delete_ + mix->edit <= 0) {
    return Status::InvalidArgument(context +
                                   ": mix weights must have a positive sum");
  }
  return Status();
}

Status ReadMerge(const JsonValue& json, const std::string& context,
                 MergePhaseSpec* merge) {
  JsonObjectReader reader(json, context);
  reader.Size("sessions", &merge->sessions);
  reader.Size("ops_per_session", &merge->ops_per_session);
  reader.Size("threads", &merge->threads);
  reader.Bool("reject", &merge->reject);
  if (Status s = reader.Finish(); !s.ok()) return s;
  if (merge->sessions == 0) {
    return Status::InvalidArgument(context + ": sessions must be >= 1");
  }
  if (merge->ops_per_session == 0) {
    return Status::InvalidArgument(context + ": ops_per_session must be >= 1");
  }
  return Status();
}

Status ReadPhase(const JsonValue& json, const std::string& context,
                 PhaseSpec* phase) {
  JsonObjectReader reader(json, context);
  reader.String("name", &phase->name);
  std::string mode = std::string(PhaseModeName(phase->mode));
  reader.String("mode", &mode);
  std::string kind = std::string(PhaseKindName(phase->kind));
  reader.String("kind", &kind);
  reader.Size("workers", &phase->workers);
  reader.Size("ops", &phase->ops);
  reader.NonNegative("arrival_rate", &phase->arrival_rate);
  reader.NonNegative("max_duration_s", &phase->max_duration_s);
  if (kind == "ops") {
    phase->kind = PhaseKind::kOps;
  } else if (kind == "merge") {
    phase->kind = PhaseKind::kMerge;
  } else {
    reader.RecordError("unknown kind \"" + kind +
                       "\" (expected \"ops\" or \"merge\")");
  }
  const JsonValue* mix = reader.Child("mix");
  if (mix != nullptr) {
    if (phase->kind == PhaseKind::kMerge) {
      reader.RecordError(
          "merge phases do not draw from a mix; remove the \"mix\" block");
    } else if (Status s = ReadMix(*mix, context + ".mix", &phase->mix);
               !s.ok()) {
      reader.RecordError(s.message());
    }
  }
  if (const JsonValue* merge = reader.Child("merge"); merge != nullptr) {
    if (phase->kind != PhaseKind::kMerge) {
      reader.RecordError(
          "the \"merge\" block is only valid on phases with kind \"merge\"");
    } else if (Status s = ReadMerge(*merge, context + ".merge", &phase->merge);
               !s.ok()) {
      reader.RecordError(s.message());
    }
  }
  if (mode == "closed") {
    phase->mode = PhaseMode::kClosed;
  } else if (mode == "open") {
    phase->mode = PhaseMode::kOpen;
  } else {
    reader.RecordError("unknown mode \"" + mode +
                       "\" (expected \"closed\" or \"open\")");
  }
  if (phase->workers == 0) reader.RecordError("workers must be >= 1");
  if (phase->ops == 0) reader.RecordError("ops must be >= 1");
  if (phase->mode == PhaseMode::kOpen && phase->arrival_rate <= 0) {
    reader.RecordError("open phases require arrival_rate > 0");
  }
  if (phase->mode == PhaseMode::kClosed && phase->arrival_rate > 0) {
    reader.RecordError("closed phases must not set arrival_rate");
  }
  return reader.Finish();
}

JsonValue DtdJson(const DtdSpec& dtd) {
  JsonValue json = JsonValue::MakeObject();
  JsonValue declarations = JsonValue::MakeArray();
  for (const std::string& line : dtd.declarations) declarations.Append(line);
  json.Set("declarations", std::move(declarations));
  json.Set("pruning", dtd.pruning);
  return json;
}

Status ReadDtd(const JsonValue& json, DtdSpec* dtd) {
  JsonObjectReader reader(json, "dtd");
  reader.Bool("pruning", &dtd->pruning);
  const JsonValue* declarations = reader.Child("declarations");
  if (declarations == nullptr) {
    reader.RecordError("missing required key \"declarations\"");
  } else if (!declarations->is_array()) {
    reader.RecordError("\"declarations\" must be an array of strings");
  } else if (declarations->AsArray().empty()) {
    reader.RecordError(
        "\"declarations\" must be non-empty (omit the \"dtd\" block to run "
        "without a schema)");
  } else {
    for (size_t i = 0; i < declarations->AsArray().size(); ++i) {
      const JsonValue& line = declarations->AsArray()[i];
      if (!line.is_string()) {
        reader.RecordError("declarations[" + std::to_string(i) +
                           "] must be a string");
        continue;
      }
      dtd->declarations.push_back(line.AsString());
    }
  }
  return reader.Finish();
}

Status ReadSessions(const JsonValue& json, SessionSetup* sessions) {
  JsonObjectReader reader(json, "sessions");
  reader.Size("count", &sessions->count);
  reader.Size("initial_reads", &sessions->initial_reads);
  reader.Size("initial_updates", &sessions->initial_updates);
  return reader.Finish();
}

}  // namespace

std::string_view PhaseModeName(PhaseMode mode) {
  return mode == PhaseMode::kClosed ? "closed" : "open";
}

std::string_view PhaseKindName(PhaseKind kind) {
  return kind == PhaseKind::kOps ? "ops" : "merge";
}

Result<WorkloadSpec> WorkloadSpec::FromJson(const JsonValue& json) {
  WorkloadSpec spec;
  JsonObjectReader reader(json, "");
  reader.String("name", &spec.name);
  reader.U64("seed", &spec.seed);
  if (const JsonValue* generator = reader.Child("generator");
      generator != nullptr) {
    Result<workload::GeneratorSpec> parsed =
        workload::GeneratorSpec::FromJson(*generator);
    if (!parsed.ok()) return parsed.status();
    spec.generator = *std::move(parsed);
  }
  if (const JsonValue* dtd = reader.Child("dtd"); dtd != nullptr) {
    if (Status s = ReadDtd(*dtd, &spec.dtd); !s.ok()) return s;
  }
  if (const JsonValue* sessions = reader.Child("sessions");
      sessions != nullptr) {
    if (Status s = ReadSessions(*sessions, &spec.sessions); !s.ok()) return s;
  }
  const JsonValue* phases = reader.Child("phases");
  if (phases == nullptr) {
    reader.RecordError("missing required key \"phases\"");
  } else if (!phases->is_array()) {
    reader.RecordError("\"phases\" must be an array");
  } else if (phases->AsArray().empty()) {
    reader.RecordError("\"phases\" must be non-empty");
  } else {
    bool any_edits = false;
    for (size_t i = 0; i < phases->AsArray().size(); ++i) {
      PhaseSpec phase;
      const std::string context = "phases[" + std::to_string(i) + "]";
      phase.name = "phase" + std::to_string(i);
      if (Status s = ReadPhase(phases->AsArray()[i], context, &phase);
          !s.ok()) {
        return s;
      }
      any_edits = any_edits ||
                  (phase.kind == PhaseKind::kOps && phase.mix.edit > 0);
      spec.phases.push_back(std::move(phase));
    }
    if (any_edits && spec.sessions.count == 0) {
      reader.RecordError(
          "a phase mixes in edits but sessions.count is 0 — edit operations "
          "need at least one session");
    }
  }
  if (Status s = reader.Finish(); !s.ok()) return s;
  return spec;
}

Result<WorkloadSpec> WorkloadSpec::Parse(std::string_view json_text) {
  Result<JsonValue> json = ParseJson(json_text);
  if (!json.ok()) return json.status();
  return FromJson(*json);
}

JsonValue WorkloadSpec::ToJson() const {
  JsonValue json = JsonValue::MakeObject();
  json.Set("name", name);
  json.Set("seed", seed);
  json.Set("generator", generator.ToJson());
  if (dtd.enabled()) json.Set("dtd", DtdJson(dtd));
  json.Set("sessions", SessionsJson(sessions));
  JsonValue phase_array = JsonValue::MakeArray();
  for (const PhaseSpec& phase : phases) phase_array.Append(PhaseJson(phase));
  json.Set("phases", std::move(phase_array));
  return json;
}

bool operator==(const WorkloadSpec& a, const WorkloadSpec& b) {
  auto phase_eq = [](const PhaseSpec& x, const PhaseSpec& y) {
    return x.name == y.name && x.mode == y.mode && x.kind == y.kind &&
           x.workers == y.workers &&
           x.ops == y.ops && x.arrival_rate == y.arrival_rate &&
           x.max_duration_s == y.max_duration_s &&
           x.mix.insert == y.mix.insert && x.mix.delete_ == y.mix.delete_ &&
           x.mix.edit == y.mix.edit &&
           x.merge.sessions == y.merge.sessions &&
           x.merge.ops_per_session == y.merge.ops_per_session &&
           x.merge.threads == y.merge.threads &&
           x.merge.reject == y.merge.reject;
  };
  if (!(a.name == b.name && a.seed == b.seed && a.generator == b.generator &&
        a.dtd.declarations == b.dtd.declarations &&
        a.dtd.pruning == b.dtd.pruning &&
        a.sessions.count == b.sessions.count &&
        a.sessions.initial_reads == b.sessions.initial_reads &&
        a.sessions.initial_updates == b.sessions.initial_updates &&
        a.phases.size() == b.phases.size())) {
    return false;
  }
  for (size_t i = 0; i < a.phases.size(); ++i) {
    if (!phase_eq(a.phases[i], b.phases[i])) return false;
  }
  return true;
}

}  // namespace driver
}  // namespace xmlup
