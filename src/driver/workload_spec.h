#ifndef XMLUP_DRIVER_WORKLOAD_SPEC_H_
#define XMLUP_DRIVER_WORKLOAD_SPEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "workload/generator_spec.h"

namespace xmlup {
namespace driver {

/// How a phase's workers issue operations.
enum class PhaseMode {
  /// Each worker issues its next operation as soon as the previous one
  /// completes; latency is pure service time. Scaling `workers` across
  /// phases gives a closed-loop ramp.
  kClosed,
  /// Operations arrive on a fixed schedule (operation i at i/arrival_rate
  /// seconds into the phase) regardless of completion; latency is measured
  /// from the *scheduled* arrival, so queueing delay when the engine falls
  /// behind the offered rate is charged to the operations that suffered it
  /// (no coordinated omission).
  kOpen
};

std::string_view PhaseModeName(PhaseMode mode);

/// What one operation of a phase is.
enum class PhaseKind {
  /// The default: each op is one detect/edit drawn from the phase mix.
  kOps,
  /// Each op is one whole concurrent-edit merge (merge/merge_executor.h):
  /// a generated seed tree plus per-session update streams, scheduled by
  /// commutativity certificates and executed conflict-aware.
  kMerge
};

std::string_view PhaseKindName(PhaseKind kind);

/// Shape of the merge units a kMerge phase executes. The generated update
/// streams draw from the generator block's pattern/tree settings, so
/// conflict density is steered the same way as everywhere else (alphabet
/// size, wildcard probability, ...).
struct MergePhaseSpec {
  /// Concurrent edit sessions per merge unit.
  size_t sessions = 4;
  /// Updates each session submits.
  size_t ops_per_session = 4;
  /// MergeOptions::num_threads of each unit's executor. The default (1)
  /// evaluates inline — right when phase workers already provide the
  /// parallelism; reports are identical either way.
  size_t threads = 1;
  /// ConflictPolicy::kReject (first committer wins) instead of the
  /// serializing default.
  bool reject = false;
};

/// Relative weights of the operation kinds a phase draws from. Weights
/// need not sum to 1 (they are normalized); at least one must be positive.
struct PhaseMix {
  /// Singleton Detect of a generated read pattern against INSERT_{p,X}.
  double insert = 0.45;
  /// Singleton Detect of a generated read pattern against DELETE_p.
  double delete_ = 0.45;
  /// One edit against a maintained session matrix (add/replace/remove of
  /// a read or update), tallying the verdicts of the recomputed slice.
  double edit = 0.1;
};

struct PhaseSpec {
  std::string name;
  PhaseMode mode = PhaseMode::kClosed;
  /// JSON "kind": "ops" (default) or "merge". Merge phases must not set
  /// "mix" (they have no per-op draw) and configure the "merge" block
  /// instead; `ops` then counts merge units and the arrival schedule paces
  /// whole merges.
  PhaseKind kind = PhaseKind::kOps;
  MergePhaseSpec merge;
  /// Worker threads driving this phase. Verdict tallies and op counts are
  /// independent of this (the determinism contract); only timing changes.
  size_t workers = 1;
  /// Operations this phase issues. Phases are bounded by *count*, not
  /// duration, so the same spec + seed replays the identical operation
  /// sequence at any worker count.
  size_t ops = 100;
  /// Target offered load in ops/second; required (> 0) for kOpen phases,
  /// must be absent or 0 for kClosed phases.
  double arrival_rate = 0.0;
  /// Safety cap: a phase that exceeds this wall time stops issuing new
  /// operations and reports truncated=true (0 = no cap). A truncated
  /// phase forfeits the determinism contract — size caps so reference
  /// runs never hit them.
  double max_duration_s = 0.0;
  PhaseMix mix;
};

/// Shape of the maintained-matrix sessions the edit stream churns.
struct SessionSetup {
  /// Concurrent sessions per phase. Each session's edits execute in spec
  /// order on one worker; distinct sessions may land on distinct workers.
  size_t count = 2;
  /// Matrix dimensions established (untimed) before the phase clock runs.
  size_t initial_reads = 4;
  size_t initial_updates = 4;
};

/// Optional schema block of a workload: DTD declarations (the dtd/dtd.h
/// text syntax, one declaration per array element) parsed against the
/// run's SymbolTable, plus the Stage 0 ablation toggle. When present the
/// driver's Engine is built with EngineOptions::dtd, so every detection
/// the run issues goes through the staged pipeline's type filter (unless
/// `pruning` is false — the spec-level ablation switch). Note the
/// generator names labels a0..aN-1; declarations must use those names.
struct DtdSpec {
  std::vector<std::string> declarations;
  bool pruning = true;

  bool enabled() const { return !declarations.empty(); }
};

/// The declarative description of a whole driver run: which generators
/// feed it, how many phases, and each phase's load shape. JSON shape
/// (top-level keys "name", "seed", "generator", "dtd", "sessions",
/// "phases"):
///
///   {"name": "reference",
///    "seed": 42,
///    "generator": { ... workload::GeneratorSpec ... },
///    "dtd": {"declarations": ["root a0", "allow a0 : a1 a2"],
///            "pruning": true},
///    "sessions": {"count": 2, "initial_reads": 4, "initial_updates": 4},
///    "phases": [
///      {"name": "warmup", "mode": "closed", "workers": 1, "ops": 200,
///       "mix": {"insert": 0.45, "delete": 0.45, "edit": 0.1}},
///      {"name": "steady", "mode": "open", "workers": 8, "ops": 4000,
///       "arrival_rate": 2000, "max_duration_s": 30}]}
///
/// Unknown keys anywhere are errors, "phases" must be non-empty, and
/// FromJson(ToJson(spec)) == spec for every valid spec. The "dtd" block is
/// optional (omitted from ToJson when empty); its "declarations" must be a
/// non-empty array of strings. Declarations are *not* parsed here — the
/// spec layer has no SymbolTable; EngineOptionsForSpec (driver.h) parses
/// and reports errors with source context.
struct WorkloadSpec {
  std::string name = "workload";
  uint64_t seed = 1;
  workload::GeneratorSpec generator;
  DtdSpec dtd;
  SessionSetup sessions;
  std::vector<PhaseSpec> phases;

  static Result<WorkloadSpec> FromJson(const JsonValue& json);
  /// Parse + FromJson in one step (what the CLI does with a spec file).
  static Result<WorkloadSpec> Parse(std::string_view json_text);
  JsonValue ToJson() const;

  friend bool operator==(const WorkloadSpec& a, const WorkloadSpec& b);
  friend bool operator!=(const WorkloadSpec& a, const WorkloadSpec& b) {
    return !(a == b);
  }
};

}  // namespace driver
}  // namespace xmlup

#endif  // XMLUP_DRIVER_WORKLOAD_SPEC_H_
