#include "dtd/dtd.h"

#include <vector>

#include "common/string_util.h"

namespace xmlup {

Dtd::Dtd(std::shared_ptr<SymbolTable> symbols)
    : symbols_(std::move(symbols)) {
  XMLUP_CHECK(symbols_ != nullptr);
}

Result<Dtd> Dtd::Parse(std::string_view text,
                       std::shared_ptr<SymbolTable> symbols) {
  Dtd dtd(symbols);
  size_t line_number = 0;
  for (std::string_view raw_line : Split(text, '\n')) {
    ++line_number;
    const std::string_view line = StripWhitespace(raw_line);
    if (line.empty() || line[0] == '#') continue;
    auto error = [&](const std::string& message) {
      return Status::ParseError("DTD line " + std::to_string(line_number) +
                                ": " + message);
    };
    // Tokenize on whitespace; ':' is a cosmetic separator.
    std::vector<std::string> tokens;
    for (std::string_view piece : Split(line, ' ')) {
      const std::string_view token = StripWhitespace(piece);
      if (!token.empty() && token != ":") tokens.emplace_back(token);
    }
    if (tokens.empty()) continue;  // line held only separators
    const std::string& directive = tokens[0];
    if (directive == "root") {
      if (tokens.size() != 2) return error("root expects one label");
      dtd.SetRootLabel(symbols->Intern(tokens[1]));
    } else if (directive == "seal") {
      if (tokens.size() != 2) return error("seal expects one label");
      dtd.Seal(symbols->Intern(tokens[1]));
    } else if (directive == "allow" || directive == "require") {
      if (tokens.size() < 3) {
        return error(directive + " expects a parent and child labels");
      }
      const Label parent = symbols->Intern(tokens[1]);
      for (size_t i = 2; i < tokens.size(); ++i) {
        const Label child = symbols->Intern(tokens[i]);
        if (directive == "allow") {
          dtd.Allow(parent, child);
        } else {
          dtd.Require(parent, child);
        }
      }
    } else {
      return error("unknown directive '" + directive + "'");
    }
  }
  XMLUP_RETURN_NOT_OK(dtd.Validate());
  return dtd;
}

Status Dtd::Validate() const {
  for (const auto& [parent, children] : required_) {
    if (sealed_.count(parent) == 0) continue;
    auto it = allowed_.find(parent);
    for (Label must : children) {
      if (it == allowed_.end() || it->second.count(must) == 0) {
        return Status::InvalidArgument(
            "DTD is self-contradictory: label '" + symbols_->Name(parent) +
            "' requires child '" + symbols_->Name(must) +
            "' which its allow-list forbids — no node of this label can "
            "conform");
      }
    }
  }
  return Status();
}

void Dtd::Seal(Label parent) { sealed_.insert(parent); }

void Dtd::Allow(Label parent, Label child) {
  sealed_.insert(parent);
  allowed_[parent].insert(child);
}

void Dtd::Require(Label parent, Label child) {
  required_[parent].insert(child);
}

std::set<Label> Dtd::MentionedLabels() const {
  std::set<Label> labels;
  if (root_label_.has_value()) labels.insert(*root_label_);
  for (Label l : sealed_) labels.insert(l);
  for (const auto& [parent, children] : allowed_) {
    labels.insert(parent);
    labels.insert(children.begin(), children.end());
  }
  for (const auto& [parent, children] : required_) {
    labels.insert(parent);
    labels.insert(children.begin(), children.end());
  }
  return labels;
}

bool Dtd::ChildAllowed(Label parent, Label child) const {
  if (sealed_.count(parent) == 0) return true;
  auto it = allowed_.find(parent);
  return it != allowed_.end() && it->second.count(child) > 0;
}

const std::set<Label>& Dtd::RequiredChildren(Label parent) const {
  static const std::set<Label>* const empty = new std::set<Label>();
  auto it = required_.find(parent);
  return it != required_.end() ? it->second : *empty;
}

const std::set<Label>& Dtd::AllowedChildren(Label parent) const {
  static const std::set<Label>* const empty = new std::set<Label>();
  auto it = allowed_.find(parent);
  return it != allowed_.end() ? it->second : *empty;
}

bool Dtd::Conforms(const Tree& tree, std::string* why) const {
  if (!tree.has_root()) {
    if (why != nullptr) *why = "empty tree";
    return false;
  }
  if (root_label_.has_value() && tree.label(tree.root()) != *root_label_) {
    if (why != nullptr) {
      *why = "root labeled " + tree.LabelName(tree.root()) + ", expected " +
             symbols_->Name(*root_label_);
    }
    return false;
  }
  for (NodeId n : tree.PreOrder()) {
    const Label parent_label = tree.label(n);
    const bool sealed = sealed_.count(parent_label) > 0;
    std::set<Label> seen;
    for (NodeId c = tree.first_child(n); c != kNullNode;
         c = tree.next_sibling(c)) {
      seen.insert(tree.label(c));
      if (sealed) {
        auto it = allowed_.find(parent_label);
        if (it == allowed_.end() || it->second.count(tree.label(c)) == 0) {
          if (why != nullptr) {
            *why = "label " + tree.LabelName(c) + " not allowed under " +
                   tree.LabelName(n);
          }
          return false;
        }
      }
    }
    auto req = required_.find(parent_label);
    if (req != required_.end()) {
      for (Label must : req->second) {
        if (seen.count(must) == 0) {
          if (why != nullptr) {
            *why = "node " + tree.LabelName(n) + " missing required child " +
                   symbols_->Name(must);
          }
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace xmlup
