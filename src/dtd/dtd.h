#ifndef XMLUP_DTD_DTD_H_
#define XMLUP_DTD_DTD_H_

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>

#include "common/result.h"
#include "xml/tree.h"

namespace xmlup {

/// A simple schema abstraction in the spirit of §6 "Schema Information".
/// Because the paper's data model is unordered, content models degenerate
/// to child-label constraints: per parent label, an optional closed set of
/// allowed child labels and a set of required child labels. (Order-aware
/// DTD content models have no meaning over unordered trees.)
class Dtd {
 public:
  explicit Dtd(std::shared_ptr<SymbolTable> symbols);

  /// Parses a schema from a simple line-oriented declaration syntax
  /// (order-free counterpart of DTD element declarations):
  ///
  ///   # comment
  ///   root catalog
  ///   allow  book : title author publisher stock
  ///   require book : title
  ///   seal   title
  ///
  /// `allow` seals the parent and whitelists the listed children;
  /// `require` demands at least one child with each listed label; `seal`
  /// alone makes a label a leaf.
  static Result<Dtd> Parse(std::string_view text,
                           std::shared_ptr<SymbolTable> symbols);

  /// Restricts `parent`'s children to an explicit allow-list; Allow() adds
  /// to it. A label never Seal()-ed accepts any children.
  void Seal(Label parent);
  void Allow(Label parent, Label child);

  /// Requires every `parent`-labeled node to have at least one `child`-
  /// labeled child.
  void Require(Label parent, Label child);

  /// Restricts the document root's label.
  void SetRootLabel(Label label) { root_label_ = label; }

  /// Rejects self-contradictory schemas: a sealed label whose
  /// RequiredChildren are not all ChildAllowed can never have a conforming
  /// node, so every type footprint computed under it silently collapses to
  /// empty. Parse() validates automatically; programmatic builders (Seal /
  /// Allow / Require) call this once construction is done.
  Status Validate() const;

  /// True if `tree` conforms; when false and `why` is non-null, a
  /// human-readable reason is stored.
  bool Conforms(const Tree& tree, std::string* why = nullptr) const;

  /// Per-edge query used by static analysis (lint's dtd-violation pass):
  /// true unless `parent` is sealed and `child` is outside its allow-list.
  bool ChildAllowed(Label parent, Label child) const;

  /// Child labels every `parent`-labeled node must have (empty set when
  /// unconstrained).
  const std::set<Label>& RequiredChildren(Label parent) const;

  /// True if `parent` has a closed child allow-list (Seal/Allow called).
  /// Unsealed labels accept any children — the type-summary layer widens
  /// their child footprint to ⊤.
  bool IsSealed(Label parent) const { return sealed_.count(parent) > 0; }

  /// The allow-list of a sealed parent (empty set for a sealed leaf or an
  /// unsealed label — check IsSealed to distinguish).
  const std::set<Label>& AllowedChildren(Label parent) const;

  /// The root-label restriction, when one was declared.
  const std::optional<Label>& root_label() const { return root_label_; }

  const std::shared_ptr<SymbolTable>& symbols() const { return symbols_; }

  /// Every label mentioned by the schema (root, parents, allowed and
  /// required children); used to build search alphabets for DTD-restricted
  /// witness searches.
  std::set<Label> MentionedLabels() const;

 private:
  std::shared_ptr<SymbolTable> symbols_;
  std::optional<Label> root_label_;
  std::set<Label> sealed_;
  std::map<Label, std::set<Label>> allowed_;
  std::map<Label, std::set<Label>> required_;
};

}  // namespace xmlup

#endif  // XMLUP_DTD_DTD_H_
