#include "dtd/dtd_conflict.h"

#include <set>

#include "xml/tree_algos.h"

namespace xmlup {
namespace {

std::vector<Label> DtdSearchAlphabet(const Pattern& read,
                                     const Pattern& update, const Dtd& dtd,
                                     size_t extra_labels) {
  std::set<Label> labels = dtd.MentionedLabels();
  for (Label l : read.DistinctLabels()) labels.insert(l);
  for (Label l : update.DistinctLabels()) labels.insert(l);
  std::vector<Label> alphabet(labels.begin(), labels.end());
  for (size_t i = 0; i < extra_labels; ++i) {
    alphabet.push_back(read.symbols()->Fresh("alpha"));
  }
  if (alphabet.empty()) alphabet.push_back(read.symbols()->Fresh("alpha"));
  return alphabet;
}

BruteForceResult SearchConforming(
    const Pattern& read, const Pattern& update, const Dtd& dtd,
    const BoundedSearchOptions& options,
    const std::function<bool(const Tree&)>& is_witness) {
  BruteForceResult result;
  TreeEnumerator enumerator(
      read.symbols(), DtdSearchAlphabet(read, update, dtd,
                                        options.extra_labels),
      options.max_nodes, options.max_trees);
  const bool completed = enumerator.Enumerate([&](const Tree& candidate) {
    ++result.trees_checked;
    if (!dtd.Conforms(candidate)) return true;
    if (is_witness(candidate)) {
      result.outcome = SearchOutcome::kWitnessFound;
      result.witness = CopyTree(candidate);
      return false;
    }
    return true;
  });
  result.truncated = enumerator.truncated();
  if (result.outcome == SearchOutcome::kWitnessFound) return result;
  result.outcome = (completed && !enumerator.truncated())
                       ? SearchOutcome::kExhaustedNoWitness
                       : SearchOutcome::kBudgetExceeded;
  return result;
}

}  // namespace

BruteForceResult FindReadInsertConflictUnderDtd(
    const Pattern& read, const Pattern& insert_pattern, const Tree& inserted,
    const Dtd& dtd, ConflictSemantics semantics,
    const BoundedSearchOptions& options) {
  return SearchConforming(read, insert_pattern, dtd, options,
                          [&](const Tree& candidate) {
                            return IsReadInsertWitness(read, insert_pattern,
                                                       inserted, candidate,
                                                       semantics);
                          });
}

BruteForceResult FindReadDeleteConflictUnderDtd(
    const Pattern& read, const Pattern& delete_pattern, const Dtd& dtd,
    ConflictSemantics semantics, const BoundedSearchOptions& options) {
  return SearchConforming(read, delete_pattern, dtd, options,
                          [&](const Tree& candidate) {
                            return IsReadDeleteWitness(read, delete_pattern,
                                                       candidate, semantics);
                          });
}

}  // namespace xmlup
