#ifndef XMLUP_DTD_DTD_CONFLICT_H_
#define XMLUP_DTD_DTD_CONFLICT_H_

#include "conflict/bounded_search.h"
#include "dtd/dtd.h"
#include "pattern/pattern.h"

namespace xmlup {

/// §6 leaves the complexity of schema-aware conflict detection open; this
/// module provides the natural semi-decision procedure: exhaustive search
/// for a *DTD-conforming* witness. Two operations that conflict in general
/// may be conflict-free under a schema (the witness shapes may be
/// forbidden), which is exactly what these searches surface.
BruteForceResult FindReadInsertConflictUnderDtd(
    const Pattern& read, const Pattern& insert_pattern, const Tree& inserted,
    const Dtd& dtd, ConflictSemantics semantics,
    const BoundedSearchOptions& options);

BruteForceResult FindReadDeleteConflictUnderDtd(
    const Pattern& read, const Pattern& delete_pattern, const Dtd& dtd,
    ConflictSemantics semantics, const BoundedSearchOptions& options);

}  // namespace xmlup

#endif  // XMLUP_DTD_DTD_CONFLICT_H_
