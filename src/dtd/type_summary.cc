#include "dtd/type_summary.h"

#include <vector>

#include "common/check.h"

namespace xmlup {
namespace {

/// γ(n): the label class of one pattern node — ⊤ for wildcards.
TypeSet Gamma(const Pattern& pattern, PatternNodeId n) {
  return pattern.is_wildcard(n) ? TypeSet::Top()
                                : TypeSet::Of(pattern.label(n));
}

}  // namespace

TypeSet ChildTypes(const Dtd& dtd, const TypeSet& from) {
  if (from.top()) return TypeSet::Top();
  TypeSet out;
  for (Label l : from.labels()) {
    if (!dtd.IsSealed(l)) return TypeSet::Top();
    for (Label child : dtd.AllowedChildren(l)) out.Insert(child);
  }
  return out;
}

TypeSet ReachPlus(const Dtd& dtd, const TypeSet& from) {
  TypeSet out = ChildTypes(dtd, from);
  while (!out.top()) {
    TypeSet next = ChildTypes(dtd, out);
    if (next.top()) return next;
    const size_t before = out.labels().size();
    out.UnionWith(next);
    if (out.labels().size() == before) break;  // fixpoint
  }
  return out;
}

TypeSet ReachStar(const Dtd& dtd, const TypeSet& from) {
  TypeSet out = from;
  out.UnionWith(ReachPlus(dtd, from));
  return out;
}

TypeSummary ComputeTypeSummary(const Pattern& pattern, const Dtd& dtd) {
  XMLUP_CHECK(pattern.has_root());
  TypeSummary summary;
  // possible[n]: over-approximation of the types a conformant-document
  // image of node n can take. Embeddings are root-preserving, so the
  // pattern root is pinned to the schema's root label (when declared);
  // child edges step through the allow-graph, descendant edges through its
  // transitive closure. Ignoring `require` constraints only widens the
  // sets — sound.
  std::vector<TypeSet> possible(pattern.size());
  const std::vector<PatternNodeId> order = pattern.PreOrder();
  for (PatternNodeId n : order) {
    TypeSet base;
    if (n == pattern.root()) {
      base = dtd.root_label().has_value() ? TypeSet::Of(*dtd.root_label())
                                          : TypeSet::Top();
    } else {
      const TypeSet& parent = possible[pattern.parent(n)];
      base = pattern.axis(n) == Axis::kChild ? ChildTypes(dtd, parent)
                                             : ReachPlus(dtd, parent);
    }
    possible[n] = TypeSet::Intersect(base, Gamma(pattern, n));
    if (possible[n].empty()) summary.dead = true;
  }
  // touched: every node image plus, per descendant edge, the types of the
  // gap path between the endpoints (anything reachable from the parent's
  // types can sit on it).
  for (PatternNodeId n : order) {
    summary.touched.UnionWith(possible[n]);
    if (n != pattern.root() && pattern.axis(n) == Axis::kDescendant &&
        !possible[n].empty()) {
      summary.touched.UnionWith(ReachPlus(dtd, possible[pattern.parent(n)]));
    }
  }
  summary.output_types = possible[pattern.output()];
  summary.subtree = ReachStar(dtd, summary.output_types);
  // insert_sensitive is DTD-free by design (see type_summary.h): γ(output)
  // plus γ of every node outside the output's ancestor chain.
  summary.insert_sensitive = Gamma(pattern, pattern.output());
  for (PatternNodeId n : order) {
    if (!pattern.IsAncestorOrSelf(n, pattern.output())) {
      summary.insert_sensitive.UnionWith(Gamma(pattern, n));
    }
  }
  return summary;
}

TypeSet ContentLabels(const Tree& content) {
  TypeSet out;
  for (NodeId n : content.PreOrder()) out.Insert(content.label(n));
  return out;
}

bool TypePrunesReadDelete(const TypeSummary& read, const TypeSummary& update,
                          ConflictSemantics semantics) {
  // A schema-dead delete never fires on a conformant tree; a schema-dead
  // read has no matches before the delete and — matching being monotone
  // under node removal — none after.
  if (update.dead || read.dead) return true;
  // A delete conflicts only by removing or truncating something a match
  // touches: the deleted subtrees' types are ReachStar of the delete's
  // output types (== update.subtree), the read's exposed region its
  // touched types plus, under subtree-sensitive semantics, its result
  // subtrees. Deletes never create matches, so disjoint regions prove
  // independence.
  if (TypeSet::Intersects(read.touched, update.subtree)) return false;
  if (semantics != ConflictSemantics::kNode &&
      TypeSet::Intersects(read.subtree, update.subtree)) {
    return false;
  }
  return true;
}

bool TypePrunesReadInsert(const TypeSummary& read, const TypeSummary& update,
                          const Tree& content, ConflictSemantics semantics) {
  // A schema-dead insert pattern selects nothing on a conformant tree.
  if (update.dead) return true;
  // NOTE: read.dead must NOT prune inserts — the post-insert tree can
  // escape the schema and give a schema-dead read its first match.
  //
  // Inserts never destroy matches (old structure is untouched), so a
  // conflict needs either a brand-new match — which must map some pattern
  // node to an inserted node, hence supply a label from the DTD-free
  // insert-sensitivity set — or, under subtree-sensitive semantics, a
  // graft at or below an existing result node. The content walk tests
  // labels directly (== Intersects(ContentLabels(content), ...)) — this
  // runs per pair on the Stage 0 hot path, so it must not allocate.
  for (NodeId n : content.PreOrder()) {
    if (read.insert_sensitive.Contains(content.label(n))) return false;
  }
  if (semantics != ConflictSemantics::kNode &&
      TypeSet::Intersects(update.output_types, read.subtree)) {
    return false;
  }
  return true;
}

ConflictReport TypePrunedReport() {
  ConflictReport report;
  report.verdict = ConflictVerdict::kNoConflict;
  report.method = DetectorMethod::kTypePruned;
  // Short enough for the small-string optimization: this report is minted
  // once per pruned pair on the hot path.
  report.detail = "schema-disjoint";
  return report;
}

}  // namespace xmlup
