#ifndef XMLUP_DTD_TYPE_SUMMARY_H_
#define XMLUP_DTD_TYPE_SUMMARY_H_

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <vector>

#include "conflict/report.h"
#include "conflict/witness_check.h"
#include "dtd/dtd.h"
#include "pattern/pattern.h"
#include "xml/tree.h"

namespace xmlup {

/// Stage 0 of the staged verdict pipeline: schema-type disjointness, in
/// the spirit of the type-based query-update independence test ("Type-Based
/// Detection of XML Query-Update Independence", PAPERS.md). Per pattern we
/// compute, from the Dtd, an over-approximation of the schema types its
/// matches can touch; per update, the types its effect can create or
/// remove. Disjoint footprints prove independence *over DTD-conformant
/// documents* in O(footprint size), before any NFA or product work.
///
/// Soundness contract (proven against the conformant-tree oracles in
/// dtd/dtd_conflict.h): when TypePrunesReadDelete / TypePrunesReadInsert
/// answers true, no DTD-conformant tree witnesses a conflict for the pair
/// under the given semantics. The converse does not hold — the summaries
/// are over-approximations (`require` constraints are ignored, unsealed
/// labels widen child sets to ⊤), so a false answer just means "cannot
/// prune", and the pair falls through to the complete Stage 1/2 machinery.
///
/// Two deliberate asymmetries keep the rules sound:
///  - DELETE pruning reasons over the schema on both sides: matches of a
///    dead read never exist, deletes never create matches (matching is
///    monotone under node removal), and a surviving match changes only if
///    the deleted subtree reaches into the read's touched/subtree region.
///  - INSERT pruning must NOT use the read's schema reachability: the
///    post-insert tree can escape the schema (insert `<c/>` under `a` when
///    the DTD forbids `c` there), so a schema-dead read can still gain a
///    match. Insert pruning therefore uses the DTD-free insert-sensitivity
///    set: a new embedding must map some pattern node to an inserted node,
///    and inserted nodes only ever sit strictly below old nodes, so only
///    the output's label class and the classes of non-ancestor nodes
///    matter.

/// A set of schema types (labels) with a distinguished ⊤ ("every label")
/// element, the lattice the footprints live in. ⊤ absorbs unions and is
/// the identity of intersections; it arises from wildcards and from
/// unsealed labels (whose children are unconstrained). Backed by a sorted
/// vector: footprints are tiny and queried per pair on the Stage 0 hot
/// path, where contiguous two-pointer intersection beats node-based sets.
class TypeSet {
 public:
  static TypeSet Empty() { return TypeSet(); }
  static TypeSet Top() {
    TypeSet s;
    s.top_ = true;
    return s;
  }
  static TypeSet Of(Label label) {
    TypeSet s;
    s.labels_.push_back(label);
    return s;
  }

  bool top() const { return top_; }
  bool empty() const { return !top_ && labels_.empty(); }
  bool Contains(Label label) const {
    return top_ || std::binary_search(labels_.begin(), labels_.end(), label);
  }
  /// Sorted, duplicate-free; meaningful only when !top().
  const std::vector<Label>& labels() const { return labels_; }

  void Insert(Label label) {
    if (top_) return;
    auto it = std::lower_bound(labels_.begin(), labels_.end(), label);
    if (it == labels_.end() || *it != label) labels_.insert(it, label);
  }
  void UnionWith(const TypeSet& other) {
    if (top_) return;
    if (other.top_) {
      top_ = true;
      labels_.clear();
      return;
    }
    std::vector<Label> merged;
    merged.reserve(labels_.size() + other.labels_.size());
    std::set_union(labels_.begin(), labels_.end(), other.labels_.begin(),
                   other.labels_.end(), std::back_inserter(merged));
    labels_ = std::move(merged);
  }

  static bool Intersects(const TypeSet& a, const TypeSet& b) {
    if (a.empty() || b.empty()) return false;
    if (a.top_ || b.top_) return true;
    auto i = a.labels_.begin();
    auto j = b.labels_.begin();
    while (i != a.labels_.end() && j != b.labels_.end()) {
      if (*i == *j) return true;
      if (*i < *j) {
        ++i;
      } else {
        ++j;
      }
    }
    return false;
  }
  static TypeSet Intersect(const TypeSet& a, const TypeSet& b) {
    if (a.top_) return b;
    if (b.top_) return a;
    TypeSet out;
    std::set_intersection(a.labels_.begin(), a.labels_.end(),
                          b.labels_.begin(), b.labels_.end(),
                          std::back_inserter(out.labels_));
    return out;
  }

  friend bool operator==(const TypeSet& a, const TypeSet& b) {
    return a.top_ == b.top_ && a.labels_ == b.labels_;
  }

  /// Retained-storage estimate (the store.types.bytes leg).
  uint64_t bytes() const {
    return sizeof(TypeSet) + labels_.capacity() * sizeof(Label);
  }

 private:
  bool top_ = false;
  std::vector<Label> labels_;
};

/// Child types reachable from `from` in one step of the DTD's allow-graph:
/// the union of the sealed members' allow-lists, widening to ⊤ as soon as
/// any member is unsealed (unsealed labels accept any children).
TypeSet ChildTypes(const Dtd& dtd, const TypeSet& from);

/// Transitive closure of ChildTypes: types reachable in >= 1 steps.
TypeSet ReachPlus(const Dtd& dtd, const TypeSet& from);

/// `from` plus ReachPlus: types at or below a node typed in `from`.
TypeSet ReachStar(const Dtd& dtd, const TypeSet& from);

/// The schema-type footprints of one pattern under one Dtd. Cached per
/// interned pattern in PatternStore (store.types.* counters); cheap to
/// compute directly for un-interned value-path patterns.
struct TypeSummary {
  /// True when no DTD-conformant document has any match: some pattern node
  /// has an empty possible-type set. (A dead read cannot be affected by
  /// deletes; a dead update pattern never fires at all.)
  bool dead = false;
  /// Types a match embedding can touch: images of every pattern node plus
  /// the gap-path types of descendant edges.
  TypeSet touched;
  /// Types the output node's image can take.
  TypeSet output_types;
  /// ReachStar(output_types): types at or below an output match — the
  /// result-subtree region kValue/kTree semantics additionally protect.
  TypeSet subtree;
  /// DTD-free insert sensitivity: the output's label class united with the
  /// label classes of every node that is not an ancestor-of-or-self of the
  /// output. An insert creates a new match only if its content supplies one
  /// of these labels (inserted subtrees are fresh copies grafted below old
  /// nodes, so ancestor positions of an old output stay old). Deliberately
  /// independent of the Dtd — see the header comment.
  TypeSet insert_sensitive;

  /// Retained-storage estimate for the store.types.bytes counter.
  uint64_t bytes() const {
    return sizeof(TypeSummary) + touched.bytes() + output_types.bytes() +
           subtree.bytes() + insert_sensitive.bytes();
  }
};

/// Computes the summary of `pattern` under `dtd`. Pure and deterministic;
/// O(|pattern| * |schema labels|^2) worst case, microseconds in practice.
TypeSummary ComputeTypeSummary(const Pattern& pattern, const Dtd& dtd);

/// The labels an insert's content tree supplies (exact, no ⊤).
TypeSet ContentLabels(const Tree& content);

/// True iff DELETE_{update} cannot conflict with `read` on any conformant
/// document under `semantics`. `update` must summarize the delete pattern.
bool TypePrunesReadDelete(const TypeSummary& read, const TypeSummary& update,
                          ConflictSemantics semantics);

/// True iff INSERT_{update, content} cannot conflict with `read` on any
/// conformant document under `semantics`. Walks `content` directly (no
/// label-set materialization — this runs per pair on the Stage 0 hot
/// path); equivalent to testing ContentLabels(content) for intersection.
bool TypePrunesReadInsert(const TypeSummary& read, const TypeSummary& update,
                          const Tree& content, ConflictSemantics semantics);

/// The one report every pruned pair receives — fixed fields, so the batch
/// engine can share a single result object across all pruned pairs and the
/// facade's Stage 0 emits byte-identical reports.
ConflictReport TypePrunedReport();

}  // namespace xmlup

#endif  // XMLUP_DTD_TYPE_SUMMARY_H_
