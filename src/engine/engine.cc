#include "engine/engine.h"

#include <utility>

#include "common/check.h"
#include "common/thread_pool.h"
#include "pattern/xpath_parser.h"

namespace xmlup {
namespace {

std::shared_ptr<SymbolTable> OrFresh(std::shared_ptr<SymbolTable> symbols) {
  return symbols != nullptr ? std::move(symbols)
                            : std::make_shared<SymbolTable>();
}

}  // namespace

Engine::Engine(EngineOptions options)
    : Engine(std::make_shared<SymbolTable>(), std::move(options)) {}

Engine::Engine(std::shared_ptr<SymbolTable> symbols, EngineOptions options)
    : options_(std::move(options)), symbols_(OrFresh(std::move(symbols))) {
  PatternStoreOptions store_options;
  store_options.minimize = options_.batch.minimize_patterns;
  store_ = std::make_shared<PatternStore>(symbols_, store_options);
  options_.batch.store = store_;
  if (options_.dtd != nullptr) {
    XMLUP_CHECK_STREAM(SameSymbolTable(symbols_, options_.dtd->symbols()))
        << "EngineOptions::dtd was parsed against a different SymbolTable "
           "than this engine's. Labels are only comparable within one "
           "table; parse the DTD with the engine's table.";
    // The engine owns the shared_ptr, so the raw pointer every layer below
    // holds stays valid for the engine's lifetime (the store caches type
    // summaries keyed by this address).
    options_.batch.detector.dtd = options_.dtd.get();
  }
  batch_ = std::make_shared<BatchConflictDetector>(options_.batch);
}

PatternRef Engine::Intern(const Pattern& pattern) {
  return store_->Intern(pattern);
}

Result<PatternRef> Engine::InternXPath(std::string_view xpath) {
  Result<Pattern> pattern = ParseXPath(xpath, symbols_);
  if (!pattern.ok()) return pattern.status();
  return store_->Intern(*pattern);
}

const Pattern& Engine::pattern(PatternRef ref) const {
  return store_->pattern(ref);
}

UpdateOp Engine::Bind(const UpdateOp& op) const { return op.Bind(store_); }

Result<ConflictReport> Engine::Detect(PatternRef read,
                                      const UpdateOp& update) const {
  // Ops not bound to this store fall back to the value path inside the
  // facade below; pre-binding (Engine::Bind) keeps this integer-keyed.
  return xmlup::Detect(*store_, read, update, options_.batch.detector);
}

Result<ConflictReport> Engine::Detect(const Pattern& read,
                                      const UpdateOp& update) const {
  return xmlup::Detect(*store_, store_->Intern(read), update,
                       options_.batch.detector);
}

Result<IndependenceReport> Engine::CertifyCommute(const UpdateOp& a,
                                                  const UpdateOp& b) const {
  return CertifyUpdatesCommute(a, b, options_.batch.detector);
}

void Engine::CheckNotOnPoolWorker(const char* entry_point) const {
  XMLUP_CHECK_STREAM(!ThreadPool::OnWorkerThread())
      << "Engine::" << entry_point
      << " called from inside a ThreadPool worker. The serialized entry "
         "points block on the engine's pool; re-entering them from a pool "
         "task deadlocks the pool. Issue them from a non-worker thread "
         "(the hot-path calls — Detect, CertifyCommute, Intern, Bind — "
         "remain safe anywhere).";
}

std::vector<SharedConflictResult> Engine::DetectMatrix(
    const std::vector<Pattern>& reads, const std::vector<UpdateOp>& updates) {
  CheckNotOnPoolWorker("DetectMatrix");
  MutexLock lock(batch_mu_);
  return batch_->DetectMatrix(reads, updates);
}

std::vector<SharedConflictResult> Engine::DetectMatrix(
    const std::vector<PatternRef>& reads,
    const std::vector<UpdateOp>& updates) {
  CheckNotOnPoolWorker("DetectMatrix");
  MutexLock lock(batch_mu_);
  return batch_->DetectMatrix(reads, updates);
}

std::vector<SharedConflictResult> Engine::DetectPairs(
    const std::vector<PatternRef>& reads, const std::vector<UpdateOp>& updates,
    const std::vector<ReadUpdatePair>& pairs) {
  CheckNotOnPoolWorker("DetectPairs");
  MutexLock lock(batch_mu_);
  return batch_->DetectPairs(reads, updates, pairs);
}

std::unique_ptr<Engine::Session> Engine::MakeSession(
    SessionOptions options) const {
  BatchDetectorOptions session_options = options_.batch;
  session_options.store = store_;
  session_options.num_threads = options.num_threads;
  session_options.max_cache_entries = options.max_cache_entries;
  auto engine = std::make_shared<BatchConflictDetector>(session_options);
  return std::unique_ptr<Session>(new Session(std::move(engine)));
}

LintResult Engine::Lint(const Program& program, const LintRunOptions& run) {
  LintOptions lint_options;
  lint_options.batch = options_.batch;
  lint_options.batch.store = store_;
  // Per-call schema wins; otherwise the engine's configured schema drives
  // the lint dtd-violation pass too (one engine = one schema).
  lint_options.dtd = run.dtd != nullptr ? run.dtd : options_.dtd.get();
  lint_options.partition = run.partition;
  CheckNotOnPoolWorker("Lint");
  MutexLock lock(batch_mu_);
  // A fresh Linter per call: its memo cache is cold, but the shared store
  // keeps interned patterns and compiled automata warm — the distinct-pair
  // solves, the expensive part, are amortized process-wide.
  const Linter linter(lint_options);
  return linter.Lint(program);
}

DependenceAnalysisResult Engine::AnalyzeDependences(const Program& program) {
  CheckNotOnPoolWorker("AnalyzeDependences");
  MutexLock lock(batch_mu_);
  if (dependence_ == nullptr) {
    BatchDetectorOptions dependence_options = options_.batch;
    dependence_options.store = store_;
    dependence_ = std::make_unique<DependenceAnalyzer>(dependence_options);
  }
  return dependence_->Analyze(program);
}

obs::MetricsSnapshot Engine::MetricsSnapshot() const {
  return obs::MetricsRegistry::Default().Snapshot();
}

BatchStats Engine::batch_stats() const { return batch_->stats(); }

}  // namespace xmlup
