#ifndef XMLUP_ENGINE_ENGINE_H_
#define XMLUP_ENGINE_ENGINE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/dependence.h"
#include "analysis/lint.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "conflict/batch_detector.h"
#include "conflict/conflict_matrix.h"
#include "conflict/detector.h"
#include "conflict/update_independence.h"
#include "dtd/dtd.h"
#include "obs/metrics.h"
#include "pattern/pattern_store.h"
#include "xml/symbol_table.h"

namespace xmlup {

/// Configuration of an Engine. One engine = one configuration: the
/// detector options are fixed at construction because every cache in the
/// stack below (the batch memo cache, the compiled-automata store, the
/// product cache) assumes the verdict of a pattern pair is a function of
/// the pair alone. Callers that need a second semantics build a second
/// Engine (they can share a SymbolTable).
struct EngineOptions {
  /// Detector semantics/budget, worker threads, memoization and cache
  /// bound for the matrix engine. `batch.store` is ignored — the Engine
  /// owns the store wiring. `batch.detector.dtd` is overridden by `dtd`
  /// below when that is set.
  BatchDetectorOptions batch;
  /// Schema for the Stage 0 type-pruning filter. When set, the engine
  /// keeps it alive and wires it into every layer it owns — single-pair
  /// Detect, the matrix engine, sessions, dependence analysis, and Lint's
  /// dtd-violation pass (unless a LintRunOptions::dtd overrides per call).
  /// Must share the engine's SymbolTable (CHECK-failed at construction).
  /// Detection then becomes conservative under the schema: pairs with
  /// disjoint type footprints resolve to kNoConflict (method kTypePruned)
  /// before any automata work — see DetectorOptions::dtd.
  std::shared_ptr<const Dtd> dtd;
};

/// The front door of the library: one object owning the shared state every
/// layer below needs — the SymbolTable, the PatternStore (interned
/// canonical patterns + compiled automata), the batch conflict-matrix
/// engine and its memo cache — and exposing the library's operations as
/// methods: Detect, DetectMatrix, MakeSession, Lint, AnalyzeDependences,
/// CertifyCommute.
///
/// Before this facade each binary wired those pieces by hand (make a
/// table, make a store over it, make a batch engine over the store, keep
/// all three alive in the right order); the workload driver, the lint CLI
/// and all examples now construct exactly one Engine. The layer APIs
/// underneath (free Detect, BatchConflictDetector, Linter, ...) remain
/// public and supported — the facade is wiring, not a wall.
///
/// Thread safety (the annotated contract; a Clang -Wthread-safety build
/// enforces the field accesses, and the lock-discipline rules are spelled
/// out in DESIGN "Concurrency model"):
///   - Detect / CertifyCommute / Intern / Bind / InternXPath are safe to
///     call from any number of threads concurrently (they ride the store's
///     internal locks and the lock-free compiled caches). This is the
///     driver's hot path; it never touches batch_mu_.
///   - DetectMatrix / DetectPairs / Lint / AnalyzeDependences serialize on
///     batch_mu_ (one matrix engine, one memo cache); each call still
///     parallelizes internally on the engine's pool. Because they block on
///     that pool, they must NOT be invoked from inside any ThreadPool
///     worker — doing so can deadlock the pool, so these entry points
///     CHECK-fail on re-entrant use from a worker thread.
///   - A Session is single-writer (as MaintainedConflictMatrix is), but
///     distinct sessions may be driven from distinct threads concurrently:
///     each session owns a private inline matrix engine over the shared
///     store, so sessions share interned patterns and compiled automata
///     without sharing a mutable memo cache.
class Engine {
 public:
  explicit Engine(EngineOptions options = {});
  /// Shares an existing SymbolTable (e.g. with another Engine or with
  /// trees parsed before the engine existed). `symbols` may be null.
  explicit Engine(std::shared_ptr<SymbolTable> symbols,
                  EngineOptions options = {});

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const std::shared_ptr<SymbolTable>& symbols() const { return symbols_; }
  const std::shared_ptr<PatternStore>& store() const { return store_; }
  const DetectorOptions& detector_options() const {
    return options_.batch.detector;
  }

  /// --- Interning ---

  /// Interns a pattern into the engine's store (minimize + canonical code
  /// once per distinct pattern). Thread-safe.
  PatternRef Intern(const Pattern& pattern);
  /// Parses the paper's XPath fragment against the engine's SymbolTable
  /// and interns the result.
  Result<PatternRef> InternXPath(std::string_view xpath);
  /// The stored canonical form backing a ref.
  const Pattern& pattern(PatternRef ref) const;

  /// A copy of `op` bound to the engine's store (pattern interned, ref
  /// recorded) — pre-bind updates once, then Detect against refs on the
  /// integer-keyed hot path.
  UpdateOp Bind(const UpdateOp& op) const;

  /// --- Single-pair detection (thread-safe hot path) ---

  /// Unified read/update conflict detection under the engine's options.
  /// The ref overload runs on the store's compiled automata with product
  /// memoization — no per-call canonicalization or NFA construction.
  Result<ConflictReport> Detect(PatternRef read, const UpdateOp& update) const;
  Result<ConflictReport> Detect(const Pattern& read,
                                const UpdateOp& update) const;

  /// Update/update commutativity certificate (§6).
  Result<IndependenceReport> CertifyCommute(const UpdateOp& a,
                                            const UpdateOp& b) const;

  /// --- Batched detection (serialized on the shared matrix engine) ---

  /// Full N×M matrix / sparse pair set, with memoization across calls.
  /// Layout and determinism guarantees are BatchConflictDetector's.
  std::vector<SharedConflictResult> DetectMatrix(
      const std::vector<Pattern>& reads, const std::vector<UpdateOp>& updates)
      XMLUP_EXCLUDES(batch_mu_);
  std::vector<SharedConflictResult> DetectMatrix(
      const std::vector<PatternRef>& reads,
      const std::vector<UpdateOp>& updates) XMLUP_EXCLUDES(batch_mu_);
  std::vector<SharedConflictResult> DetectPairs(
      const std::vector<PatternRef>& reads,
      const std::vector<UpdateOp>& updates,
      const std::vector<ReadUpdatePair>& pairs) XMLUP_EXCLUDES(batch_mu_);

  /// --- Sessions ---

  struct SessionOptions {
    /// Worker threads of the session's private engine. The default (1)
    /// runs solves inline on the session's calling thread — the right
    /// setting when many sessions run on driver/service worker threads.
    size_t num_threads = 1;
    /// LRU bound on the session engine's memo cache (0 = unbounded).
    size_t max_cache_entries = 0;
  };

  /// A client session: an editable conflict matrix (the per-session state
  /// of a program being edited statement by statement) over the engine's
  /// shared PatternStore. Session edits are single-writer; distinct
  /// sessions are concurrency-safe against each other and against the
  /// engine's own Detect/DetectMatrix calls.
  class Session {
   public:
    MaintainedConflictMatrix& matrix() { return matrix_; }
    const MaintainedConflictMatrix& matrix() const { return matrix_; }

   private:
    friend class Engine;
    explicit Session(std::shared_ptr<BatchConflictDetector> engine)
        : matrix_(std::move(engine)) {}
    MaintainedConflictMatrix matrix_;
  };

  /// Creates a session whose matrix engine shares the Engine's store (and
  /// detector options) but owns a private memo cache and runs inline.
  std::unique_ptr<Session> MakeSession(SessionOptions options) const;
  std::unique_ptr<Session> MakeSession() const {
    return MakeSession(SessionOptions());
  }

  /// --- Program analysis ---

  struct LintRunOptions {
    /// Enables the dtd-violation pass; must share the engine's
    /// SymbolTable and outlive the call. Null defaults to the engine's
    /// configured EngineOptions::dtd (if any).
    const Dtd* dtd = nullptr;
    /// Run the parallel-safety partitioner.
    bool partition = true;
  };

  /// Lints a straight-line update program with the engine's detector
  /// configuration. Serialized on the engine mutex; the shared store keeps
  /// compiled automata warm across calls.
  LintResult Lint(const Program& program, const LintRunOptions& run)
      XMLUP_EXCLUDES(batch_mu_);
  LintResult Lint(const Program& program) {
    return Lint(program, LintRunOptions());
  }

  /// Pairwise data-dependence analysis over a program (the §1 compiler
  /// scenario). Serialized on the engine mutex; the analyzer's memo cache
  /// warms across calls.
  DependenceAnalysisResult AnalyzeDependences(const Program& program)
      XMLUP_EXCLUDES(batch_mu_);

  /// --- Observability / escape hatches ---

  /// Snapshot of the process-wide metrics registry the stack reports into.
  obs::MetricsSnapshot MetricsSnapshot() const;
  /// Cumulative pair/cache counters of the shared matrix engine.
  BatchStats batch_stats() const;
  /// The shared matrix engine. Callers taking this accept its
  /// single-caller-at-a-time contract (the facade's DetectMatrix/Lint
  /// serialization no longer protects them).
  BatchConflictDetector& batch() { return *batch_; }
  const std::shared_ptr<BatchConflictDetector>& shared_batch() const {
    return batch_;
  }

 private:
  /// CHECK-fails when called from a ThreadPool worker: every serialized
  /// entry point blocks on the engine's pool, and blocking a worker on
  /// work only workers can drain deadlocks the pool.
  void CheckNotOnPoolWorker(const char* entry_point) const;

  /// All four members below are set in the constructor and const
  /// thereafter (the shared_ptrs are never re-seated); the *pointees*
  /// carry their own locks. batch_'s single-caller contract is what
  /// batch_mu_ exists for.
  EngineOptions options_;
  std::shared_ptr<SymbolTable> symbols_;
  std::shared_ptr<PatternStore> store_;
  std::shared_ptr<BatchConflictDetector> batch_;
  /// Serializes DetectMatrix/DetectPairs/Lint/AnalyzeDependences over the
  /// shared single-caller components. Lock-ordering rule: batch_mu_ is
  /// acquired before any lock below it (the store mutex, shard mutexes,
  /// the pool mutex) and never the other way around — no code path that
  /// holds a lower-layer lock calls back into the Engine.
  Mutex batch_mu_;
  /// Lazily built on first AnalyzeDependences.
  std::unique_ptr<DependenceAnalyzer> dependence_ XMLUP_GUARDED_BY(batch_mu_);
};

}  // namespace xmlup

#endif  // XMLUP_ENGINE_ENGINE_H_
