#include "eval/embedding_enumerator.h"

namespace xmlup {
namespace {

bool LabelOk(const Pattern& p, PatternNodeId q, const Tree& t, NodeId n) {
  return p.is_wildcard(q) || p.label(q) == t.label(n);
}

/// Backtracking enumeration over pattern nodes in preorder.
class Enumerator {
 public:
  Enumerator(const Pattern& p, const Tree& t, size_t limit, NodeId must_select)
      : p_(p),
        t_(t),
        limit_(limit),
        must_select_(must_select),
        order_(p.PreOrder()),
        assignment_(p.size(), kNullNode) {}

  std::vector<Embedding> Run(bool* truncated) {
    truncated_ = false;
    if (t_.has_root() && LabelOk(p_, p_.root(), t_, t_.root())) {
      assignment_[p_.root()] = t_.root();
      Recurse(1);
    }
    if (truncated != nullptr) *truncated = truncated_;
    return std::move(results_);
  }

 private:
  void Recurse(size_t index) {
    if (results_.size() >= limit_) {
      truncated_ = true;
      return;
    }
    if (index == order_.size()) {
      if (must_select_ == kNullNode ||
          assignment_[p_.output()] == must_select_) {
        results_.push_back(assignment_);
      }
      return;
    }
    const PatternNodeId q = order_[index];
    const NodeId parent_image = assignment_[p_.parent(q)];
    if (p_.axis(q) == Axis::kChild) {
      for (NodeId m = t_.first_child(parent_image); m != kNullNode;
           m = t_.next_sibling(m)) {
        if (!LabelOk(p_, q, t_, m)) continue;
        assignment_[q] = m;
        Recurse(index + 1);
        if (results_.size() >= limit_) {
          truncated_ = true;
          return;
        }
      }
    } else {
      for (NodeId m : t_.SubtreeNodes(parent_image)) {
        if (m == parent_image || !LabelOk(p_, q, t_, m)) continue;
        assignment_[q] = m;
        Recurse(index + 1);
        if (results_.size() >= limit_) {
          truncated_ = true;
          return;
        }
      }
    }
    assignment_[q] = kNullNode;
  }

  const Pattern& p_;
  const Tree& t_;
  size_t limit_;
  NodeId must_select_;
  std::vector<PatternNodeId> order_;
  Embedding assignment_;
  std::vector<Embedding> results_;
  bool truncated_ = false;
};

}  // namespace

std::vector<Embedding> EnumerateEmbeddings(const Pattern& p, const Tree& t,
                                           size_t limit, bool* truncated) {
  XMLUP_CHECK(p.has_root());
  Enumerator enumerator(p, t, limit, kNullNode);
  return enumerator.Run(truncated);
}

Embedding FindEmbeddingSelecting(const Pattern& p, const Tree& t,
                                 NodeId target) {
  XMLUP_CHECK(p.has_root());
  Enumerator enumerator(p, t, 1, target);
  std::vector<Embedding> found = enumerator.Run(nullptr);
  return found.empty() ? Embedding{} : std::move(found[0]);
}

bool IsValidEmbedding(const Pattern& p, const Tree& t, const Embedding& e) {
  if (e.size() != p.size()) return false;
  if (!t.has_root() || e[p.root()] != t.root()) return false;  // ROOT
  for (PatternNodeId q = 0; q < p.size(); ++q) {
    const NodeId n = e[q];
    if (n == kNullNode || !t.alive(n)) return false;
    if (!LabelOk(p, q, t, n)) return false;  // LABEL
    if (q != p.root()) {
      const NodeId parent_image = e[p.parent(q)];
      if (p.axis(q) == Axis::kChild) {
        if (t.parent(n) != parent_image) return false;  // EDGES_/
      } else {
        if (!t.IsProperAncestor(parent_image, n)) return false;  // EDGES_//
      }
    }
  }
  return true;
}

}  // namespace xmlup
