#ifndef XMLUP_EVAL_EMBEDDING_ENUMERATOR_H_
#define XMLUP_EVAL_EMBEDDING_ENUMERATOR_H_

#include <vector>

#include "pattern/pattern.h"
#include "xml/tree.h"

namespace xmlup {

/// One embedding E: NODES_p → NODES_t, stored as tree node per pattern
/// node id.
using Embedding = std::vector<NodeId>;

/// Explicitly enumerates embeddings of `p` into `t` (root-preserving), up
/// to `limit` of them. Exponential in the worst case — this is the
/// reference implementation used to validate the polynomial Evaluator and
/// to extract concrete embeddings for witness constructions (e.g. the
/// marking step of §5.1.1).
///
/// Returns at most `limit` embeddings; `truncated` (optional) reports
/// whether the limit was hit.
std::vector<Embedding> EnumerateEmbeddings(const Pattern& p, const Tree& t,
                                           size_t limit,
                                           bool* truncated = nullptr);

/// Finds one embedding of `p` into `t` that maps O(p) to `target`, if any.
/// Returns an empty vector when none exists.
Embedding FindEmbeddingSelecting(const Pattern& p, const Tree& t,
                                 NodeId target);

/// Checks that `e` is a valid embedding of `p` into `t` (all four
/// conditions of §2.3). Used by tests.
bool IsValidEmbedding(const Pattern& p, const Tree& t, const Embedding& e);

}  // namespace xmlup

#endif  // XMLUP_EVAL_EMBEDDING_ENUMERATOR_H_
