#include "eval/evaluator.h"

#include <algorithm>

namespace xmlup {
namespace {

/// Dense boolean table indexed by [pattern node][tree node slot].
class BoolTable {
 public:
  BoolTable(size_t pattern_size, size_t tree_capacity)
      : stride_(tree_capacity), bits_(pattern_size * tree_capacity, false) {}

  bool get(PatternNodeId q, NodeId n) const { return bits_[q * stride_ + n]; }
  void set(PatternNodeId q, NodeId n, bool v) { bits_[q * stride_ + n] = v; }

 private:
  size_t stride_;
  std::vector<bool> bits_;
};

bool LabelOk(const Pattern& p, PatternNodeId q, const Tree& t, NodeId n) {
  return p.is_wildcard(q) || p.label(q) == t.label(n);
}

/// Computes sat[q][n] = "the subpattern rooted at q embeds with q ↦ n" and
/// dsat[q][n] = "sat[q][m] for some proper descendant m of n".
void ComputeSat(const Pattern& p, const Tree& t, BoolTable* sat,
                BoolTable* dsat) {
  const std::vector<NodeId> tree_post = t.PostOrder();
  const std::vector<PatternNodeId> pat_post = p.PostOrder();
  for (NodeId n : tree_post) {
    for (PatternNodeId q : pat_post) {
      bool ok = LabelOk(p, q, t, n);
      for (PatternNodeId c = p.first_child(q); ok && c != kNullPatternNode;
           c = p.next_sibling(c)) {
        bool edge_ok = false;
        if (p.axis(c) == Axis::kChild) {
          for (NodeId m = t.first_child(n); m != kNullNode;
               m = t.next_sibling(m)) {
            if (sat->get(c, m)) {
              edge_ok = true;
              break;
            }
          }
        } else {
          // Descendant: sat in some child's subtree (child itself or below).
          for (NodeId m = t.first_child(n); m != kNullNode;
               m = t.next_sibling(m)) {
            if (sat->get(c, m) || dsat->get(c, m)) {
              edge_ok = true;
              break;
            }
          }
        }
        ok = edge_ok;
      }
      sat->set(q, n, ok);
      bool below = false;
      for (NodeId m = t.first_child(n); !below && m != kNullNode;
           m = t.next_sibling(m)) {
        below = sat->get(q, m) || dsat->get(q, m);
      }
      dsat->set(q, n, below);
    }
  }
}

/// Computes cand[q][n] = "some full (root-preserving) embedding maps q ↦ n"
/// given sat. Anchored at (p.root() ↦ anchor).
void ComputeCand(const Pattern& p, const Tree& t, NodeId anchor,
                 const BoolTable& sat, BoolTable* cand) {
  if (!sat.get(p.root(), anchor)) return;
  cand->set(p.root(), anchor, true);
  // Pattern nodes in preorder; parents processed before children.
  for (PatternNodeId c : p.PreOrder()) {
    if (c == p.root()) continue;
    const PatternNodeId q = p.parent(c);
    if (p.axis(c) == Axis::kChild) {
      // cand[c][m] = sat[c][m] and cand[q][parent(m)].
      for (NodeId m : t.SubtreeNodes(anchor)) {
        if (m == anchor) continue;
        if (sat.get(c, m) && cand->get(q, t.parent(m))) {
          cand->set(c, m, true);
        }
      }
    } else {
      // cand[c][m] = sat[c][m] and some proper ancestor a (within the
      // anchor's subtree) has cand[q][a]. One preorder sweep with an
      // ancestor flag.
      std::vector<std::pair<NodeId, bool>> stack = {{anchor, false}};
      while (!stack.empty()) {
        auto [n, anc_flag] = stack.back();
        stack.pop_back();
        if (n != anchor && anc_flag && sat.get(c, n)) cand->set(c, n, true);
        const bool flag_for_children = anc_flag || cand->get(q, n);
        for (NodeId m = t.first_child(n); m != kNullNode;
             m = t.next_sibling(m)) {
          stack.emplace_back(m, flag_for_children);
        }
      }
    }
  }
}

uint64_t SatAdd(uint64_t a, uint64_t b) {
  return a > UINT64_MAX - b ? UINT64_MAX : a + b;
}

uint64_t SatMul(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) return 0;
  return a > UINT64_MAX / b ? UINT64_MAX : a * b;
}

}  // namespace

uint64_t CountEmbeddings(const Pattern& p, const Tree& t) {
  XMLUP_CHECK(p.has_root());
  if (!t.has_root() || t.size() == 0) return 0;
  // cnt[q][n]: embeddings of the subpattern rooted at q with q ↦ n.
  // dcnt[q][n]: sum of cnt[q][m] over proper descendants m of n.
  const size_t stride = t.capacity();
  std::vector<uint64_t> cnt(p.size() * stride, 0);
  std::vector<uint64_t> dcnt(p.size() * stride, 0);
  const std::vector<NodeId> tree_post = t.PostOrder();
  const std::vector<PatternNodeId> pat_post = p.PostOrder();
  for (NodeId n : tree_post) {
    for (PatternNodeId q : pat_post) {
      uint64_t total = LabelOk(p, q, t, n) ? 1 : 0;
      for (PatternNodeId c = p.first_child(q);
           total != 0 && c != kNullPatternNode; c = p.next_sibling(c)) {
        uint64_t ways = 0;
        for (NodeId m = t.first_child(n); m != kNullNode;
             m = t.next_sibling(m)) {
          ways = SatAdd(ways, cnt[c * stride + m]);
          if (p.axis(c) == Axis::kDescendant) {
            ways = SatAdd(ways, dcnt[c * stride + m]);
          }
        }
        total = SatMul(total, ways);
      }
      cnt[q * stride + n] = total;
      uint64_t below = 0;
      for (NodeId m = t.first_child(n); m != kNullNode;
           m = t.next_sibling(m)) {
        below = SatAdd(below, SatAdd(cnt[q * stride + m],
                                     dcnt[q * stride + m]));
      }
      dcnt[q * stride + n] = below;
    }
  }
  return cnt[p.root() * stride + t.root()];
}

std::vector<NodeId> Evaluate(const Pattern& p, const Tree& t) {
  XMLUP_CHECK(p.has_root());
  if (!t.has_root() || t.size() == 0) return {};
  BoolTable sat(p.size(), t.capacity());
  BoolTable dsat(p.size(), t.capacity());
  ComputeSat(p, t, &sat, &dsat);
  BoolTable cand(p.size(), t.capacity());
  ComputeCand(p, t, t.root(), sat, &cand);
  std::vector<NodeId> result;
  for (NodeId n : t.PreOrder()) {
    if (cand.get(p.output(), n)) result.push_back(n);
  }
  std::sort(result.begin(), result.end());
  return result;
}

bool HasEmbedding(const Pattern& p, const Tree& t) {
  XMLUP_CHECK(p.has_root());
  if (!t.has_root() || t.size() == 0) return false;
  BoolTable sat(p.size(), t.capacity());
  BoolTable dsat(p.size(), t.capacity());
  ComputeSat(p, t, &sat, &dsat);
  return sat.get(p.root(), t.root());
}

bool EmbedsAt(const Pattern& p, const Tree& t, NodeId at) {
  XMLUP_CHECK(p.has_root());
  XMLUP_DCHECK(t.alive(at));
  BoolTable sat(p.size(), t.capacity());
  BoolTable dsat(p.size(), t.capacity());
  ComputeSat(p, t, &sat, &dsat);
  return sat.get(p.root(), at);
}

bool EmbedsAnywhereIn(const Pattern& p, const Tree& t, NodeId scope) {
  XMLUP_CHECK(p.has_root());
  XMLUP_DCHECK(t.alive(scope));
  BoolTable sat(p.size(), t.capacity());
  BoolTable dsat(p.size(), t.capacity());
  ComputeSat(p, t, &sat, &dsat);
  for (NodeId n : t.SubtreeNodes(scope)) {
    if (sat.get(p.root(), n)) return true;
  }
  return false;
}

}  // namespace xmlup
