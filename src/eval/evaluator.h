#ifndef XMLUP_EVAL_EVALUATOR_H_
#define XMLUP_EVAL_EVALUATOR_H_

#include <vector>

#include "pattern/pattern.h"
#include "xml/tree.h"

namespace xmlup {

/// Evaluates [[p]](t) (paper §2.3): the set of tree nodes v such that some
/// embedding of p into t maps O(p) to v. Embeddings are root-preserving,
/// label-preserving (wildcards match anything), need not be injective, and
/// must satisfy the child/descendant edge constraints.
///
/// Runs in O(|p|·|t|) via a bottom-up satisfaction pass followed by a
/// top-down reachability pass — the Core-XPath-style evaluation the paper
/// cites ([7]) for the polynomial cost of its operations.
/// The result is sorted and duplicate-free.
std::vector<NodeId> Evaluate(const Pattern& p, const Tree& t);

/// True iff [[p]](t) is non-empty, i.e. some embedding of p into t exists.
bool HasEmbedding(const Pattern& p, const Tree& t);

/// True iff there is an embedding of `p` into the subtree of `t` rooted at
/// `at` that maps ROOT(p) to `at` (anchored, not root-preserving w.r.t. t).
/// Used for "there is an embedding from SEQ into X" (Lemma 6) and by the
/// containment checker.
bool EmbedsAt(const Pattern& p, const Tree& t, NodeId at);

/// True iff EmbedsAt(p, t, n) holds for some node n in the subtree rooted
/// at `scope` ("an embedding into X or some subtree of X", Lemma 6).
bool EmbedsAnywhereIn(const Pattern& p, const Tree& t, NodeId scope);

/// Number of distinct embeddings of `p` into `t` (root-preserving), in
/// O(|p|·|t|) by dynamic programming — the polynomial counterpart of
/// EnumerateEmbeddings. Saturates at UINT64_MAX.
uint64_t CountEmbeddings(const Pattern& p, const Tree& t);

/// [[p]]_T(t): the roots of the result subtrees. Identical node set to
/// Evaluate; provided for symmetry with the paper's tree-valued semantics
/// (use CopySubtree / CanonicalCode to materialize or compare the trees).
inline std::vector<NodeId> EvaluateTreeRoots(const Pattern& p,
                                             const Tree& t) {
  return Evaluate(p, t);
}

}  // namespace xmlup

#endif  // XMLUP_EVAL_EVALUATOR_H_
