#include "eval/fast_evaluator.h"

#include <algorithm>

#include "eval/evaluator.h"

namespace xmlup {
namespace {

struct FlatPattern {
  // Per pattern node: label (kWildcardLabel for *), parent index, axis.
  std::vector<Label> labels;
  std::vector<uint32_t> parents;
  std::vector<Axis> axes;
  // Children grouped per node for the bottom-up conjunction.
  std::vector<std::vector<uint32_t>> children;
  uint32_t output = 0;

  explicit FlatPattern(const Pattern& p)
      : labels(p.size()),
        parents(p.size()),
        axes(p.size()),
        children(p.size()) {
    for (PatternNodeId n : p.PreOrder()) {
      labels[n] = p.label(n);
      parents[n] = p.parent(n) == kNullPatternNode ? n : p.parent(n);
      axes[n] = n == p.root() ? Axis::kChild : p.axis(n);
      if (n != p.root()) children[p.parent(n)].push_back(n);
    }
    output = p.output();
  }
};

inline bool LabelOk(Label pattern_label, Label tree_label) {
  return pattern_label == kWildcardLabel || pattern_label == tree_label;
}

}  // namespace

std::vector<NodeId> EvaluateFast(const Pattern& p, const Tree& t) {
  if (p.size() > 64) return Evaluate(p, t);  // fall back
  if (!t.has_root() || t.size() == 0) return {};

  const FlatPattern flat(p);
  const size_t m = p.size();
  const std::vector<NodeId> post = t.PostOrder();

  // sat(n) bit q: subpattern q embeds with q ↦ n.
  // below(n) bit q: sat bit q somewhere strictly below n.
  std::vector<uint64_t> sat(t.capacity(), 0);
  std::vector<uint64_t> below(t.capacity(), 0);
  for (NodeId n : post) {
    uint64_t child_sat_or = 0;
    uint64_t child_below_or = 0;
    for (NodeId c = t.first_child(n); c != kNullNode; c = t.next_sibling(c)) {
      child_sat_or |= sat[c];
      child_below_or |= sat[c] | below[c];
    }
    const Label tree_label = t.label(n);
    uint64_t s = 0;
    for (size_t q_index = m; q_index-- > 0;) {  // children before parents
      const uint32_t q = static_cast<uint32_t>(q_index);
      if (!LabelOk(flat.labels[q], tree_label)) continue;
      bool ok = true;
      for (uint32_t c : flat.children[q]) {
        const uint64_t source = flat.axes[c] == Axis::kChild
                                    ? child_sat_or
                                    : child_below_or;
        if ((source & (uint64_t{1} << c)) == 0) {
          ok = false;
          break;
        }
      }
      if (ok) s |= uint64_t{1} << q;
    }
    sat[n] = s;
    below[n] = child_below_or;
  }

  // Top-down candidate pass: cand(n) bit q = some full embedding maps
  // q ↦ n; anc(n) = union of cand over proper ancestors.
  if ((sat[t.root()] & 1) == 0) return {};
  std::vector<NodeId> result;
  std::vector<std::pair<NodeId, std::pair<uint64_t, uint64_t>>> stack;
  const uint64_t root_cand = 1;  // pattern root (id 0) at the tree root
  if (flat.output == 0) result.push_back(t.root());
  stack.push_back({t.root(), {root_cand, 0}});
  const uint64_t output_bit = uint64_t{1} << flat.output;
  while (!stack.empty()) {
    auto [n, masks] = stack.back();
    stack.pop_back();
    const auto [parent_cand, parent_anc] = masks;
    const uint64_t reach_any = parent_cand | parent_anc;
    for (NodeId c = t.first_child(n); c != kNullNode; c = t.next_sibling(c)) {
      uint64_t cand = 0;
      uint64_t s = sat[c];
      while (s != 0) {
        const uint32_t q = static_cast<uint32_t>(__builtin_ctzll(s));
        s &= s - 1;
        if (q == 0) continue;  // the pattern root stays at the tree root
        const uint64_t parent_bit = uint64_t{1} << flat.parents[q];
        const uint64_t source =
            flat.axes[q] == Axis::kChild ? parent_cand : reach_any;
        if ((source & parent_bit) != 0) cand |= uint64_t{1} << q;
      }
      if ((cand & output_bit) != 0) result.push_back(c);
      stack.push_back({c, {cand, reach_any}});
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace xmlup
