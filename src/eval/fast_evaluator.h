#ifndef XMLUP_EVAL_FAST_EVALUATOR_H_
#define XMLUP_EVAL_FAST_EVALUATOR_H_

#include <vector>

#include "pattern/pattern.h"
#include "xml/tree.h"

namespace xmlup {

/// Bit-parallel variant of Evaluate(): identical semantics and the same
/// O(|p|·|t|) algorithm, but satisfaction/candidate sets are stored as one
/// 64-bit word per tree node (bit q = pattern node q), giving a compact,
/// cache-friendly layout instead of |p| boolean vectors of length |t|.
///
/// Patterns with more than 64 nodes transparently fall back to the
/// baseline evaluator. Benchmarked as an ablation in bench_eval; verified
/// equivalent to Evaluate() by the evaluator property sweep.
std::vector<NodeId> EvaluateFast(const Pattern& p, const Tree& t);

}  // namespace xmlup

#endif  // XMLUP_EVAL_FAST_EVALUATOR_H_
