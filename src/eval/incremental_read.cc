#include "eval/incremental_read.h"

#include <algorithm>

namespace xmlup {

Result<IncrementalRead> IncrementalRead::Make(Pattern linear,
                                              const Tree* tree) {
  if (!linear.IsLinear()) {
    return Status::InvalidArgument(
        "incremental reads require a linear pattern");
  }
  if (linear.size() > 63) {
    return Status::InvalidArgument(
        "incremental reads support patterns up to 63 nodes");
  }
  XMLUP_CHECK(tree != nullptr);
  IncrementalRead read(std::move(linear), tree);
  read.Rebuild();
  return read;
}

IncrementalRead::IncrementalRead(Pattern pattern, const Tree* tree)
    : pattern_(std::move(pattern)), tree_(tree) {
  m_ = pattern_.size();
  for (PatternNodeId n = pattern_.root(); n != kNullPatternNode;
       n = pattern_.first_child(n)) {
    flat_.push_back(n);
  }
  XMLUP_CHECK(flat_.size() == m_);
}

bool IncrementalRead::LabelOk(PatternNodeId q, NodeId n) const {
  return pattern_.is_wildcard(q) || pattern_.label(q) == tree_->label(n);
}

void IncrementalRead::EnsureCapacity() {
  if (s_mask_.size() < tree_->capacity()) {
    s_mask_.resize(tree_->capacity(), 0);
    g_mask_.resize(tree_->capacity(), 0);
  }
}

void IncrementalRead::VisitNode(NodeId node, uint64_t parent_s,
                                uint64_t parent_g) {
  // Bit i of a mask = "a prefix of i pattern nodes is matched".
  uint64_t s = 0;
  if (node == tree_->root()) {
    if (LabelOk(flat_[0], node)) s |= uint64_t{1} << 1;
  } else {
    // Try to match pattern node i (consuming prefix i -> i+1) at `node`.
    for (size_t i = 1; i < m_; ++i) {
      const uint64_t bit = uint64_t{1} << i;
      const bool reachable = pattern_.axis(flat_[i]) == Axis::kChild
                                 ? (parent_s & bit) != 0
                                 : (parent_g & bit) != 0;
      if (reachable && LabelOk(flat_[i], node)) {
        s |= uint64_t{1} << (i + 1);
      }
    }
  }
  s_mask_[node] = s;
  g_mask_[node] = s | (node == tree_->root() ? 0 : parent_g);
  if ((s & (uint64_t{1} << m_)) != 0) results_.push_back(node);
}

void IncrementalRead::VisitSubtree(NodeId root, uint64_t parent_s,
                                   uint64_t parent_g) {
  EnsureCapacity();
  std::vector<NodeId> stack = {root};
  VisitNode(root, parent_s, parent_g);
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    for (NodeId c = tree_->first_child(n); c != kNullNode;
         c = tree_->next_sibling(c)) {
      VisitNode(c, s_mask_[n], g_mask_[n]);
      stack.push_back(c);
    }
  }
}

void IncrementalRead::Rebuild() {
  results_.clear();
  s_mask_.assign(tree_->capacity(), 0);
  g_mask_.assign(tree_->capacity(), 0);
  if (tree_->has_root() && tree_->size() > 0) {
    VisitSubtree(tree_->root(), 0, 0);
  }
  std::sort(results_.begin(), results_.end());
  needs_prune_ = false;
}

const std::vector<NodeId>& IncrementalRead::Results() {
  if (needs_prune_) {
    results_.erase(std::remove_if(results_.begin(), results_.end(),
                                  [&](NodeId n) { return !tree_->alive(n); }),
                   results_.end());
    needs_prune_ = false;
  }
  return results_;
}

void IncrementalRead::OnInsert(const InsertOp::Applied& applied) {
  EnsureCapacity();
  for (size_t i = 0; i < applied.copy_roots.size(); ++i) {
    const NodeId point = applied.insertion_points[i];
    const NodeId copy = applied.copy_roots[i];
    if (!tree_->alive(copy)) continue;
    // Existing nodes' root paths are unchanged by insertion (linear
    // patterns have no predicates), so only the fresh copy needs states.
    VisitSubtree(copy, s_mask_[point], g_mask_[point]);
  }
  std::sort(results_.begin(), results_.end());
}

void IncrementalRead::OnDelete() { needs_prune_ = true; }

}  // namespace xmlup
