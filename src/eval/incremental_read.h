#ifndef XMLUP_EVAL_INCREMENTAL_READ_H_
#define XMLUP_EVAL_INCREMENTAL_READ_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "ops/operations.h"
#include "pattern/pattern.h"
#include "xml/tree.h"

namespace xmlup {

/// Incrementally maintained result set of a *linear* read over a mutating
/// tree — the caching a conflict-aware compiler performs (§1): instead of
/// re-evaluating `read $x//A` after every update, maintain it and repair
/// only what the update touched.
///
/// Why linearity makes this easy: for patterns without predicates, whether
/// a node is selected depends only on the labels along its root path.
/// Insertions never change existing paths, so a fresh copy of X only
/// *adds* results (computable locally from the state at the insertion
/// point); deletions only *remove* results (the ones inside deleted
/// subtrees — detectable via tombstones). With predicates this locality
/// breaks (an insertion can toggle ancestors' predicate satisfaction far
/// away), which is the same structural fact that makes branching conflict
/// detection NP-complete.
///
/// Implementation: per node two bitmasks over pattern prefix lengths
/// 0..m —
///   S(n): prefix lengths i with an embedding of p[0..i-1] whose last node
///         maps to n exactly;
///   G(n): union of S over n and its ancestors (prefixes that can resume
///         at or below n via a descendant edge).
/// A node is a result iff m ∈ S(n). Patterns up to 63 nodes are
/// supported (one word per mask).
class IncrementalRead {
 public:
  /// Builds the initial result set. The pattern must be linear with at
  /// most 63 nodes; `tree` must outlive this object and every mutation
  /// must be reported via OnInsert/OnDeleteApplied.
  static Result<IncrementalRead> Make(Pattern linear, const Tree* tree);

  /// Current results, sorted. O(1) when clean; prunes lazily after
  /// deletions.
  const std::vector<NodeId>& Results();

  /// Repairs the result set after `InsertOp::ApplyInPlace` returned
  /// `applied` on the watched tree: walks only the fresh copies.
  void OnInsert(const InsertOp::Applied& applied);

  /// Repairs after a deletion (any number of DeleteSubtree calls): results
  /// inside deleted subtrees are tombstoned and pruned.
  void OnDelete();

  /// Full recomputation (used by tests to cross-check the incremental
  /// path, and by callers as an escape hatch).
  void Rebuild();

  const Pattern& pattern() const { return pattern_; }

 private:
  IncrementalRead(Pattern pattern, const Tree* tree);

  bool LabelOk(PatternNodeId q, NodeId n) const;
  /// Computes S/G for `node` from its parent's masks and records results.
  void VisitNode(NodeId node, uint64_t parent_s, uint64_t parent_g);
  /// DFS over the subtree rooted at `root` given its parent's masks.
  void VisitSubtree(NodeId root, uint64_t parent_s, uint64_t parent_g);
  void EnsureCapacity();

  Pattern pattern_;
  const Tree* tree_;
  size_t m_ = 0;  // pattern length
  /// Flattened pattern: label per position, axis of the edge *into* each
  /// position (position 0 = root).
  std::vector<PatternNodeId> flat_;
  std::vector<uint64_t> s_mask_;
  std::vector<uint64_t> g_mask_;
  std::vector<NodeId> results_;
  bool needs_prune_ = false;
};

}  // namespace xmlup

#endif  // XMLUP_EVAL_INCREMENTAL_READ_H_
