#include "match/dp_matcher.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace xmlup {
namespace {

/// Flattened view of a linear pattern: per-node symbol classes and the
/// axis of the edge *into* each node (index 0 = root, no incoming edge).
struct Flat {
  std::vector<LabelClass> classes;
  std::vector<Axis> axes;

  explicit Flat(const Pattern& l) {
    for (PatternNodeId n = l.root(); n != kNullPatternNode;
         n = l.first_child(n)) {
      classes.push_back(l.is_wildcard(n) ? LabelClass::Any()
                                         : LabelClass::Of(l.label(n)));
      axes.push_back(n == l.root() ? Axis::kChild : l.axis(n));
    }
  }

  size_t size() const { return classes.size(); }
};

struct Parent {
  size_t prev = SIZE_MAX;
  LabelClass on;
  bool visited = false;
};

/// Per-thread scratch: the DP grid and the BFS queue are reused across
/// calls (assign() keeps capacity), so a steady-state match allocates
/// nothing. The queue is a vector with a head cursor — same FIFO order as
/// std::queue with retained storage.
struct DpScratch {
  std::vector<Parent> table;
  std::vector<std::pair<size_t, size_t>> queue;

  static DpScratch& Get() {
    thread_local DpScratch scratch;
    return scratch;
  }
};

}  // namespace

MatchResult MatchDp(const Pattern& l1, const Pattern& l2, bool weak) {
  XMLUP_CHECK(l1.IsLinear());
  XMLUP_CHECK(l2.IsLinear());
  const Flat f1(l1);
  const Flat f2(l2);
  const size_t m1 = f1.size();
  const size_t m2 = f2.size();

  // State (i, j): i nodes of l1 and j nodes of l2 matched onto the prefix
  // of a common root-to-leaf path. Both patterns consume the same word;
  // each word symbol is consumed by each side, either by *advancing* (the
  // symbol is the side's next pattern node) or by *gapping* (the symbol is
  // an intermediate node under a pending descendant edge — or, in weak
  // mode, below l2's already-matched output).
  const size_t width = m2 + 1;
  auto encode = [width](size_t i, size_t j) { return i * width + j; };
  DpScratch& scratch = DpScratch::Get();
  std::vector<Parent>& table = scratch.table;
  table.assign((m1 + 1) * (m2 + 1), Parent{});

  auto gap1_ok = [&](size_t i) {
    return i >= 1 && i < m1 && f1.axes[i] == Axis::kDescendant;
  };
  auto gap2_ok = [&](size_t j) {
    if (j >= 1 && j < m2 && f2.axes[j] == Axis::kDescendant) return true;
    return weak && j == m2;
  };

  std::vector<std::pair<size_t, size_t>>& queue = scratch.queue;
  queue.clear();
  size_t queue_head = 0;
  auto visit = [&](size_t i, size_t j, size_t from, const LabelClass& on) {
    Parent& cell = table[encode(i, j)];
    if (cell.visited) return;
    cell = {from, on, true};
    queue.emplace_back(i, j);
  };

  visit(0, 0, SIZE_MAX, LabelClass::Any());
  while (queue_head < queue.size()) {
    auto [i, j] = queue[queue_head++];
    if (i == m1 && j == m2) {
      MatchResult result;
      result.matches = true;
      size_t cur = encode(i, j);
      while (table[cur].prev != SIZE_MAX) {
        result.witness_word.push_back(table[cur].on);
        cur = table[cur].prev;
      }
      std::reverse(result.witness_word.begin(), result.witness_word.end());
      return result;
    }
    const size_t id = encode(i, j);
    // Both sides advance.
    if (i < m1 && j < m2) {
      LabelClass common;
      if (IntersectClasses(f1.classes[i], f2.classes[j], &common)) {
        visit(i + 1, j + 1, id, common);
      }
    }
    // l1 advances, l2 gaps.
    if (i < m1 && gap2_ok(j)) visit(i + 1, j, id, f1.classes[i]);
    // l2 advances, l1 gaps.
    if (j < m2 && gap1_ok(i)) visit(i, j + 1, id, f2.classes[j]);
  }
  return MatchResult{};
}

}  // namespace xmlup
