#ifndef XMLUP_MATCH_DP_MATCHER_H_
#define XMLUP_MATCH_DP_MATCHER_H_

#include "match/matching.h"
#include "pattern/pattern.h"

namespace xmlup {

/// Direct dynamic-programming implementation of weak/strong matching,
/// realizing the REMARK in §4.1 ("one can use an algorithm based on
/// dynamic programming"). Conceptually it is reachability over the grid of
/// positions (i, j) — i nodes of l1 and j nodes of l2 matched onto a common
/// path — with gap moves wherever the next edge is a descendant edge.
/// O(|l1|·|l2|) states; avoids building Thompson NFAs.
///
/// `weak` allows l1's output to lie strictly below l2's output.
MatchResult MatchDp(const Pattern& l1, const Pattern& l2, bool weak);

}  // namespace xmlup

#endif  // XMLUP_MATCH_DP_MATCHER_H_
