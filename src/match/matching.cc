#include "match/matching.h"

#include "match/dp_matcher.h"
#include "xml/tree_algos.h"

namespace xmlup {
namespace {

Regex NodeSymbol(const Pattern& p, PatternNodeId n) {
  return p.is_wildcard(n) ? Regex::Dot() : Regex::Symbol(p.label(n));
}

MatchResult MatchViaNfa(const Pattern& l1, const Pattern& l2, bool weak) {
  Regex r1 = LinearPatternToRegex(l1);
  Regex r2 = LinearPatternToRegex(l2);
  if (weak) {
    r2 = Regex::Concat(std::move(r2), Regex::Star(Regex::Dot()));
  }
  const Nfa a = Nfa::FromRegex(r1);
  const Nfa b = Nfa::FromRegex(r2);
  std::optional<ClassWord> word = IntersectionWitness(a, b);
  MatchResult result;
  result.matches = word.has_value();
  if (word.has_value()) result.witness_word = std::move(*word);
  return result;
}

}  // namespace

Regex LinearPatternToRegex(const Pattern& linear) {
  XMLUP_CHECK_STREAM(linear.IsLinear()) << "pattern is not linear";
  Regex r = NodeSymbol(linear, linear.root());
  for (PatternNodeId n = linear.first_child(linear.root());
       n != kNullPatternNode; n = linear.first_child(n)) {
    if (linear.axis(n) == Axis::kDescendant) {
      r = Regex::Concat(std::move(r), Regex::Star(Regex::Dot()));
    }
    r = Regex::Concat(std::move(r), NodeSymbol(linear, n));
  }
  return r;
}

MatchResult MatchStrongly(const Pattern& l1, const Pattern& l2,
                          MatcherKind kind) {
  XMLUP_CHECK(l1.IsLinear());
  XMLUP_CHECK(l2.IsLinear());
  if (kind == MatcherKind::kDp) return MatchDp(l1, l2, /*weak=*/false);
  return MatchViaNfa(l1, l2, /*weak=*/false);
}

MatchResult MatchWeakly(const Pattern& l1, const Pattern& l2,
                        MatcherKind kind) {
  XMLUP_CHECK(l1.IsLinear());
  XMLUP_CHECK(l2.IsLinear());
  if (kind == MatcherKind::kDp) return MatchDp(l1, l2, /*weak=*/true);
  return MatchViaNfa(l1, l2, /*weak=*/true);
}

MatchResult MatchCompiled(const CompiledPattern& l1, const CompiledPattern& l2,
                          size_t l2_prefix, bool weak, MatcherKind kind) {
  if (kind == MatcherKind::kDp) {
    return MatchDp(l1.mainline_pattern(), l2.prefix_pattern(l2_prefix), weak);
  }
  NfaProductCache& cache = NfaProductCache::Default();
  std::optional<ClassWord> word =
      weak ? cache.Intersect(l1.mainline_nfa(), l1.mainline_uid(),
                             l2.prefix_weak_nfa(l2_prefix),
                             l2.prefix_weak_uid(l2_prefix))
           : cache.Intersect(l1.mainline_nfa(), l1.mainline_uid(),
                             l2.prefix_nfa(l2_prefix),
                             l2.prefix_uid(l2_prefix));
  MatchResult result;
  result.matches = word.has_value();
  if (word.has_value()) result.witness_word = std::move(*word);
  return result;
}

MatchResult MatchStrongly(const PatternStore& store, PatternRef l1,
                          PatternRef l2, MatcherKind kind) {
  XMLUP_CHECK_STREAM(store.linear(l1) && store.linear(l2))
      << "ref matching requires linear patterns";
  const CompiledPattern& c1 = store.compiled(l1);
  const CompiledPattern& c2 = store.compiled(l2);
  return MatchCompiled(c1, c2, c2.chain_length() - 1, /*weak=*/false, kind);
}

MatchResult MatchWeakly(const PatternStore& store, PatternRef l1,
                        PatternRef l2, MatcherKind kind) {
  XMLUP_CHECK_STREAM(store.linear(l1) && store.linear(l2))
      << "ref matching requires linear patterns";
  const CompiledPattern& c1 = store.compiled(l1);
  const CompiledPattern& c2 = store.compiled(l2);
  return MatchCompiled(c1, c2, c2.chain_length() - 1, /*weak=*/true, kind);
}

Tree WordToPathTree(const ClassWord& word,
                    const std::shared_ptr<SymbolTable>& symbols,
                    Label filler) {
  XMLUP_CHECK(!word.empty());
  std::vector<Label> labels;
  labels.reserve(word.size());
  for (const LabelClass& c : word) {
    labels.push_back(c.any ? filler : c.label);
  }
  return BuildPathTree(symbols, labels);
}

}  // namespace xmlup
