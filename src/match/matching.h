#ifndef XMLUP_MATCH_MATCHING_H_
#define XMLUP_MATCH_MATCHING_H_

#include <optional>

#include "automata/nfa_ops.h"
#include "automata/regex.h"
#include "pattern/compiled_pattern.h"
#include "pattern/pattern.h"
#include "pattern/pattern_store.h"
#include "xml/tree.h"

namespace xmlup {

/// Which implementation of weak/strong matching to use. Both are
/// polynomial; kNfa is the paper's construction (regular expressions +
/// language intersection, §4.1), kDp is the dynamic-programming algorithm
/// the paper's REMARKS suggest. They are equivalence-tested against each
/// other.
enum class MatcherKind {
  kNfa,
  kDp,
};

/// Result of a weak/strong matching query. When `matches` is true,
/// `witness_word` holds the labels (symbol classes) of a root-to-deepest
/// path of a tree witnessing the match; Any classes may be resolved to an
/// arbitrary (e.g. fresh) label.
struct MatchResult {
  bool matches = false;
  ClassWord witness_word;
};

/// The paper's R(n) construction (§4.1): the regular expression derived
/// from a linear pattern — root symbol, `·sym` per child edge,
/// `·(.)*·sym` per descendant edge.
Regex LinearPatternToRegex(const Pattern& linear);

/// Definition 7. `l1` and `l2` must be linear patterns.
///
/// Strong: some tree embeds both with E1(O(l1)) = E2(O(l2))
///         — L(r1) ∩ L(r2) ≠ ∅.
/// Weak:   additionally allows E1(O(l1)) to be a *descendant* of E2(O(l2))
///         — L(r1) ∩ L(r2·(.)*) ≠ ∅. (Note the asymmetry: l1's output is
///         the deeper one.)
MatchResult MatchStrongly(const Pattern& l1, const Pattern& l2,
                          MatcherKind kind = MatcherKind::kNfa);
MatchResult MatchWeakly(const Pattern& l1, const Pattern& l2,
                        MatcherKind kind = MatcherKind::kNfa);

/// Ref-based entry points: both patterns are interned refs resolved
/// against `store` (O(1) lookup of the pre-minimized forms). Matching is
/// invariant under minimization (it is equivalence-preserving), so these
/// agree with the value overloads on the original patterns. Both refs must
/// denote linear patterns (PatternStore::linear()).
///
/// These run on the store's compiled automata (PatternStore::compiled) and
/// memoize product results in NfaProductCache::Default() — the answers are
/// identical to the value overloads' (same regex construction, same BFS),
/// just without the per-call rebuild.
MatchResult MatchStrongly(const PatternStore& store, PatternRef l1,
                          PatternRef l2, MatcherKind kind = MatcherKind::kNfa);
MatchResult MatchWeakly(const PatternStore& store, PatternRef l1,
                        PatternRef l2, MatcherKind kind = MatcherKind::kNfa);

/// Compiled-form matching: `l1` contributes its full mainline automaton,
/// `l2` the prefix at chain index `l2_prefix` — in the strong form
/// R(prefix), or the weak form R(prefix)·(.)* when `weak` is set (the
/// asymmetry of Definition 7: l1's output is the deeper one). With
/// l2_prefix == l2.chain_length() - 1 this is exactly
/// MatchStrongly/MatchWeakly(l1.mainline, l2.mainline).
///
/// kNfa consults NfaProductCache::Default() under the compiled uids, so
/// repeated pairs skip the product BFS entirely; kDp runs the (pooled)
/// dynamic-programming matcher on the compiled patterns. Witness words are
/// byte-identical to the value matchers' for the same operands.
MatchResult MatchCompiled(const CompiledPattern& l1, const CompiledPattern& l2,
                          size_t l2_prefix, bool weak,
                          MatcherKind kind = MatcherKind::kNfa);

/// Materializes a witness word as a path tree, resolving Any classes to
/// `filler`. The word must be non-empty.
Tree WordToPathTree(const ClassWord& word,
                    const std::shared_ptr<SymbolTable>& symbols,
                    Label filler);

}  // namespace xmlup

#endif  // XMLUP_MATCH_MATCHING_H_
