#include "merge/merge_executor.h"

#include <algorithm>
#include <atomic>
#include <string>
#include <utility>

#include "common/check.h"
#include "eval/evaluator.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "xml/symbol_table.h"

namespace xmlup {

namespace {

/// One flattened op in serial order.
struct Slot {
  size_t session = 0;
  size_t index = 0;
  UpdateOp op;
};

std::string PartnerDetail(const Slot& partner, const std::string& why) {
  std::string detail = "uncertified against session " +
                       std::to_string(partner.session) + " op " +
                       std::to_string(partner.index);
  if (!why.empty()) detail += ": " + why;
  return detail;
}

void ApplyOp(Tree* tree, const UpdateOp& op, const std::vector<NodeId>& points) {
  op.Visit(
      [&](const UpdateOp::InsertDesc& insert) {
        for (NodeId p : points) {
          tree->GraftCopy(p, *insert.content, insert.content->root());
        }
      },
      [&](const UpdateOp::DeleteDesc&) {
        for (NodeId p : points) {
          // Same guard as UpdateOp::ApplyInPlace: an earlier delete in the
          // level may have removed a selected subtree containing p.
          if (tree->alive(p)) tree->DeleteSubtree(p);
        }
      });
}

}  // namespace

std::string_view MergeOutcomeName(MergeOutcome outcome) {
  switch (outcome) {
    case MergeOutcome::kAccepted:
      return "accepted";
    case MergeOutcome::kSerialized:
      return "serialized";
    case MergeOutcome::kRejected:
      return "rejected";
  }
  return "unknown";
}

JsonValue MergeReport::ToJson() const {
  JsonValue json = JsonValue::MakeObject();
  json.Set("ops_total", static_cast<uint64_t>(ops_total));
  json.Set("accepted", static_cast<uint64_t>(accepted));
  json.Set("serialized", static_cast<uint64_t>(serialized));
  json.Set("rejected", static_cast<uint64_t>(rejected));
  json.Set("levels", static_cast<uint64_t>(levels));
  json.Set("width", static_cast<uint64_t>(width));
  json.Set("pairs_checked", static_cast<uint64_t>(pairs_checked));
  json.Set("pairs_certified", static_cast<uint64_t>(pairs_certified));
  json.Set("cert_errors", static_cast<uint64_t>(cert_errors));
  JsonValue op_list = JsonValue::MakeArray();
  for (const MergeOpReport& op : ops) {
    JsonValue entry = JsonValue::MakeObject();
    entry.Set("session", static_cast<uint64_t>(op.session));
    entry.Set("index", static_cast<uint64_t>(op.index));
    entry.Set("outcome", MergeOutcomeName(op.outcome));
    entry.Set("level", static_cast<uint64_t>(op.level));
    if (!op.detail.empty()) entry.Set("detail", op.detail);
    op_list.Append(std::move(entry));
  }
  json.Set("ops", std::move(op_list));
  return json;
}

MergeExecutor::MergeExecutor(Engine* engine, MergeOptions options)
    : engine_(engine), options_(options) {
  XMLUP_CHECK(engine_ != nullptr);
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
}

Result<MergeReport> MergeExecutor::Merge(
    Tree* tree, const std::vector<std::vector<UpdateOp>>& sessions) const {
  XMLUP_CHECK(tree != nullptr);
  // Single-caller tripwire (see active_calls_ in the header). RAII so the
  // count unwinds on early returns.
  struct CallScope {
    explicit CallScope(std::atomic<int>& count) : count_(count) {
      // ordering: relaxed — diagnostic counter only, not synchronization;
      // overlap it happens to miss is still caught by TSan on the tree.
      XMLUP_DCHECK(count_.fetch_add(1, std::memory_order_relaxed) == 0)
          << "MergeExecutor::Merge is single-caller per executor: use one "
             "executor per thread (they may share the Engine).";
    }
    // ordering: relaxed — see above.
    ~CallScope() { count_.fetch_sub(1, std::memory_order_relaxed); }
    std::atomic<int>& count_;
  } call_scope(active_calls_);
  if (!SameSymbolTable(tree->symbols(), engine_->symbols())) {
    return Status::InvalidArgument(
        "merge tree must share the engine's SymbolTable");
  }
  obs::TraceSpan span("Merge");
  auto& registry = obs::MetricsRegistry::Default();

  // Flatten the streams in the serial order (session id, stream index) —
  // the total order every tie-break below falls back to.
  std::vector<Slot> slots;
  for (size_t s = 0; s < sessions.size(); ++s) {
    for (size_t k = 0; k < sessions[s].size(); ++k) {
      slots.push_back(Slot{s, k, engine_->Bind(sessions[s][k])});
    }
  }
  const size_t n = slots.size();

  MergeReport report;
  report.ops_total = n;
  report.ops.reserve(n);
  for (const Slot& slot : slots) {
    MergeOpReport op;
    op.session = slot.session;
    op.index = slot.index;
    report.ops.push_back(std::move(op));
  }

  // --- Certify all pairs; uncertified pairs become forward edges --------
  // Edges are built in (i, j) lexicographic order with i < j, so every
  // edge into a node precedes every edge out of it — the one property the
  // single forward sweeps below (admission, levels) rely on.
  std::vector<std::pair<size_t, size_t>> edges;
  {
    obs::TraceSpan certify_span("Merge.certify");
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        ++report.pairs_checked;
        const Result<IndependenceReport> cert =
            engine_->CertifyCommute(slots[i].op, slots[j].op);
        std::string why;
        if (!cert.ok()) {
          // Soundness: a failed certificate call is never an independence
          // claim — the pair is ordered like any uncertified one.
          ++report.cert_errors;
          why = cert.status().ToString();
        } else if (cert->certificate == CommutativityCertificate::kCertified) {
          ++report.pairs_certified;
          continue;
        } else {
          why = cert->detail;
        }
        edges.emplace_back(i, j);
        if (slots[i].session != slots[j].session) {
          if (report.ops[i].detail.empty()) {
            report.ops[i].detail = PartnerDetail(slots[j], why);
          }
          if (report.ops[j].detail.empty()) {
            report.ops[j].detail = PartnerDetail(slots[i], why);
          }
        }
      }
    }
  }

  // --- Admission (kReject): first committer wins -------------------------
  // Greedy scan in serial order: an op with an uncertified cross-session
  // pair against an earlier *admitted* op is dropped. Processing edges in
  // their (i, j) order is exactly that scan — rejected[i] is final before
  // any edge out of i is seen.
  std::vector<char> rejected(n, 0);
  if (options_.policy == ConflictPolicy::kReject) {
    for (const auto& [i, j] : edges) {
      if (slots[i].session == slots[j].session) continue;
      if (!rejected[i]) rejected[j] = 1;
    }
  }

  // --- Wavefront levels (the lint partitioner's construction) ------------
  // Forward edges in index order settle all longest paths in one sweep;
  // ops sharing a level have no edge between them, i.e. every pair in a
  // level is certified to commute.
  std::vector<size_t> level(n, 0);
  for (const auto& [i, j] : edges) {
    if (rejected[i] || rejected[j]) continue;
    level[j] = std::max(level[j], level[i] + 1);
  }
  size_t num_levels = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!rejected[i]) num_levels = std::max(num_levels, level[i] + 1);
  }
  std::vector<std::vector<size_t>> batches(num_levels);
  for (size_t i = 0; i < n; ++i) {
    if (!rejected[i]) batches[level[i]].push_back(i);
  }

  // --- Outcomes ----------------------------------------------------------
  // Serialized = an uncertified cross-session pair between two *executed*
  // ops (under kReject such a pair cannot survive admission, so every
  // executed op there is accepted).
  std::vector<char> serialized(n, 0);
  for (const auto& [i, j] : edges) {
    if (slots[i].session == slots[j].session) continue;
    if (rejected[i] || rejected[j]) continue;
    serialized[i] = serialized[j] = 1;
  }
  for (size_t i = 0; i < n; ++i) {
    MergeOpReport& op = report.ops[i];
    if (rejected[i]) {
      op.outcome = MergeOutcome::kRejected;
      ++report.rejected;
      continue;
    }
    op.level = level[i];
    if (serialized[i]) {
      op.outcome = MergeOutcome::kSerialized;
      ++report.serialized;
    } else {
      op.outcome = MergeOutcome::kAccepted;
      op.detail.clear();  // a detail recorded against a rejected partner
      ++report.accepted;
    }
  }
  report.levels = num_levels;
  for (const auto& batch : batches) {
    report.width = std::max(report.width, batch.size());
  }

  // --- Execute ------------------------------------------------------------
  // Split-phase per level: evaluations of the level's patterns run in
  // parallel against the pre-level tree (read-only), then mutations apply
  // serially in serial order. Within a level every pair is certified, so
  // no mutation in the level changes another member's selected set — the
  // precomputed points equal the points each op would see at its serial
  // position. The path is the same for every num_threads, which is what
  // makes reports and trees bit-identical at 1 vs 8 threads.
  {
    obs::TraceSpan execute_span("Merge.execute");
    std::vector<std::vector<NodeId>> points(n);
    for (const auto& batch : batches) {
      obs::TraceSpan level_span("Merge.level");
      ParallelFor(pool_.get(), batch.size(), [&](size_t k) {
        const Slot& slot = slots[batch[k]];
        points[batch[k]] = Evaluate(slot.op.pattern(), *tree);
      });
      for (size_t idx : batch) {
        ApplyOp(tree, slots[idx].op, points[idx]);
      }
    }
  }

  registry.GetCounter("merge.merges").Increment();
  registry.GetCounter("merge.ops").Increment(report.ops_total);
  registry.GetCounter("merge.accepted").Increment(report.accepted);
  registry.GetCounter("merge.serialized").Increment(report.serialized);
  registry.GetCounter("merge.rejected").Increment(report.rejected);
  registry.GetCounter("merge.levels").Increment(report.levels);
  registry.GetCounter("merge.pairs_checked").Increment(report.pairs_checked);
  registry.GetCounter("merge.pairs_certified")
      .Increment(report.pairs_certified);
  registry.GetCounter("merge.cert_errors").Increment(report.cert_errors);
  registry.GetHistogram("merge.width").Observe(report.width);
  return report;
}

void ApplySerialReference(Tree* tree,
                          const std::vector<std::vector<UpdateOp>>& sessions,
                          const MergeReport& report) {
  XMLUP_CHECK(tree != nullptr);
  for (const MergeOpReport& op : report.ops) {
    if (op.outcome == MergeOutcome::kRejected) continue;
    XMLUP_CHECK(op.session < sessions.size() &&
                op.index < sessions[op.session].size());
    sessions[op.session][op.index].ApplyInPlace(tree);
  }
}

}  // namespace xmlup
