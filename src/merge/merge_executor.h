#ifndef XMLUP_MERGE_MERGE_EXECUTOR_H_
#define XMLUP_MERGE_MERGE_EXECUTOR_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "conflict/update_op.h"
#include "engine/engine.h"
#include "xml/tree.h"

namespace xmlup {

/// What the executor does with updates caught in an uncertified pair.
enum class ConflictPolicy {
  /// Keep every op; uncertified pairs execute in the deterministic serial
  /// order (session id, stream index) via the dependence DAG.
  kSerialize,
  /// First-committer-wins admission: an op with an uncertified
  /// cross-session pair against an earlier admitted op is dropped.
  kReject,
};

/// Per-op merge outcome.
///   kAccepted   — no uncertified cross-session pair; the op ran with full
///                 scheduling freedom.
///   kSerialized — at least one uncertified cross-session pair with
///                 another executed op; the DAG pinned it to the serial
///                 order (kSerialize policy only).
///   kRejected   — dropped by the kReject admission scan; not executed.
enum class MergeOutcome { kAccepted, kSerialized, kRejected };

std::string_view MergeOutcomeName(MergeOutcome outcome);

struct MergeOptions {
  /// Worker threads for the per-level evaluation phase. 0 or 1 runs
  /// inline on the calling thread. The schedule, the mutation order, the
  /// merged tree and the report are identical for every setting — threads
  /// only spread the read-only pattern evaluations.
  size_t num_threads = 1;
  ConflictPolicy policy = ConflictPolicy::kSerialize;
};

struct MergeOpReport {
  size_t session = 0;
  /// Position in the session's stream.
  size_t index = 0;
  MergeOutcome outcome = MergeOutcome::kAccepted;
  /// Wavefront level the op executed in (0 for rejected ops, which never
  /// enter the DAG).
  size_t level = 0;
  /// For serialized/rejected ops: the first conflicting partner in serial
  /// order and the certificate's diagnostic. Empty for accepted ops.
  std::string detail;
};

/// The full accounting of one merge. `ops` is ordered by (session, index)
/// — the deterministic serial order — and always satisfies
/// accepted + serialized + rejected == ops_total.
struct MergeReport {
  std::vector<MergeOpReport> ops;
  size_t ops_total = 0;
  size_t accepted = 0;
  size_t serialized = 0;
  size_t rejected = 0;
  /// Wavefront levels executed and the widest level's op count.
  size_t levels = 0;
  size_t width = 0;
  /// Commutativity-certificate accounting over all op pairs (same-session
  /// pairs included: program order is only enforced where the certificate
  /// cannot clear the pair).
  size_t pairs_checked = 0;
  size_t pairs_certified = 0;
  /// Certificate calls that failed outright; counted as conflicts
  /// (soundness: an error is never an independence claim).
  size_t cert_errors = 0;

  JsonValue ToJson() const;
};

/// Conflict-aware merge of N concurrent edit sessions onto one tree — the
/// consumer the certificate machinery existed for: instead of answering
/// "do these conflict?", it uses the answers to actually run the
/// non-conflicting updates in parallel.
///
/// Pipeline (all scheduling work is single-threaded and deterministic):
///   1. Bind every op through the engine's PatternStore (intern once,
///      certify on refs).
///   2. Certify all op pairs with Engine::CertifyCommute (§6). Every pair
///      the certificate cannot clear — kUnknown or an error — becomes a
///      dependence edge oriented by the serial order (session, index).
///   3. Under kReject, a greedy scan in serial order drops ops with an
///      uncertified cross-session pair against an earlier admitted op.
///   4. Wavefront levels of the DAG (the lint partitioner's construction):
///      ops sharing a level are pairwise certified-commuting.
///   5. Each level executes split-phase: pattern evaluations run in
///      parallel on the pool against the pre-level tree (read-only), then
///      mutations apply serially in serial order. Certified commutation
///      means the pre-level evaluation equals the evaluation at each op's
///      serial position (applying a certified partner never changes the
///      other's selected set), so the result is value-equal to the serial
///      reference — and bit-identical across thread counts, because the
///      execution path does not depend on them.
///
/// Reports merge.* counters into obs::MetricsRegistry::Default() and a
/// "Merge" span with per-level "Merge.level" children when tracing is on.
class MergeExecutor {
 public:
  /// `engine` must outlive the executor. The seed tree and all inserted
  /// content must share the engine's SymbolTable.
  explicit MergeExecutor(Engine* engine, MergeOptions options = {});

  /// Merges the session streams into `tree` (mutated in place) and
  /// returns the per-op accounting. Single caller at a time per executor
  /// (the evaluation pool is not re-entrant); distinct executors may merge
  /// concurrently over one shared engine.
  Result<MergeReport> Merge(
      Tree* tree, const std::vector<std::vector<UpdateOp>>& sessions) const;

 private:
  Engine* engine_;
  MergeOptions options_;
  /// Null in inline mode (num_threads <= 1).
  std::unique_ptr<ThreadPool> pool_;
  /// Debug tripwire for Merge()'s single-caller contract: held up for the
  /// duration of each Merge call and DCHECK-failed on overlap, so a
  /// cross-thread misuse crashes with a message instead of corrupting the
  /// tree under mutation. Mutable because Merge is const (the executor's
  /// configuration really is read-only; the tripwire is bookkeeping).
  mutable std::atomic<int> active_calls_{0};
};

/// The sequential reference the merge is checked against: applies every op
/// whose outcome in `report` is not kRejected, in (session, index) order,
/// via UpdateOp::ApplyInPlace. A correct merge yields a tree with the same
/// canonical code (xml/isomorphism.h) as this execution.
void ApplySerialReference(Tree* tree,
                          const std::vector<std::vector<UpdateOp>>& sessions,
                          const MergeReport& report);

}  // namespace xmlup

#endif  // XMLUP_MERGE_MERGE_EXECUTOR_H_
