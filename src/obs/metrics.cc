#include "obs/metrics.h"

#include <cstdio>
#include <limits>

namespace xmlup {
namespace obs {
namespace {

/// Minimal JSON string escaping (metric names are plain identifiers, but a
/// serializer that cannot corrupt its output is cheap insurance).
void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

uint64_t Histogram::BucketUpperBound(size_t index) {
  if (index == 0) return 0;
  if (index >= kNumBuckets - 1) return std::numeric_limits<uint64_t>::max();
  return (uint64_t{1} << index) - 1;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    out.push_back(':');
    out += std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    out.push_back(':');
    out += std::to_string(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, data] : histograms) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    out += ":{\"count\":";
    out += std::to_string(data.count);
    out += ",\"sum\":";
    out += std::to_string(data.sum);
    out += ",\"buckets\":[";
    bool first_bucket = true;
    for (const auto& [le, n] : data.buckets) {
      if (!first_bucket) out.push_back(',');
      first_bucket = false;
      out.push_back('[');
      // The tail bucket's bound is UINT64_MAX; emit -1 so consumers do not
      // have to parse a value JSON numbers cannot represent exactly.
      out += le == std::numeric_limits<uint64_t>::max() ? "-1"
                                                        : std::to_string(le);
      out.push_back(',');
      out += std::to_string(n);
      out.push_back(']');
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.count = histogram->count();
    data.sum = histogram->sum();
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      const uint64_t n = histogram->bucket(i);
      if (n != 0) data.buckets.emplace_back(Histogram::BucketUpperBound(i), n);
    }
    snapshot.histograms.emplace(name, std::move(data));
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;
}

}  // namespace obs
}  // namespace xmlup
