#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <limits>

namespace xmlup {
namespace obs {
namespace {

/// Minimal JSON string escaping (metric names are plain identifiers, but a
/// serializer that cannot corrupt its output is cheap insurance).
void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

double HistogramData::Quantile(double q) const {
  // Defined answers for every input: an empty histogram (or one whose
  // sparse bucket list is empty — a racy snapshot diff can produce
  // count > 0 with no buckets) is 0, and q clamps into [0, 1]. The NaN
  // comparison is written negatively so NaN clamps to 0 instead of
  // falling through every bucket to the tail bound.
  if (count == 0 || buckets.empty()) return 0.0;
  if (!(q >= 0.0)) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  uint64_t previous_bound = 0;
  for (const auto& [le, n] : buckets) {
    if (rank <= static_cast<double>(cumulative + n)) {
      if (le == 0) return 0.0;
      // Bucket i holds values in (previous bound, le]; interpolate from
      // the previous bucket's inclusive bound across this bucket's width.
      const double lower = static_cast<double>(previous_bound);
      if (le == std::numeric_limits<uint64_t>::max()) {
        return lower;  // unbounded tail: report its lower edge
      }
      const double fraction =
          (rank - static_cast<double>(cumulative)) / static_cast<double>(n);
      return lower + fraction * (static_cast<double>(le) - lower);
    }
    cumulative += n;
    previous_bound = le;
  }
  // rank == count can fall past the loop on floating rounding; clamp to
  // the top bucket's bound.
  return static_cast<double>(previous_bound);
}

uint64_t HistogramData::MaxBound() const {
  return buckets.empty() ? 0 : buckets.back().first;
}

HistogramData HistogramData::DiffSince(const HistogramData& before) const {
  HistogramData diff;
  diff.count = count - std::min(before.count, count);
  diff.sum = sum - std::min(before.sum, sum);
  size_t b = 0;
  for (const auto& [le, n] : buckets) {
    uint64_t prior = 0;
    while (b < before.buckets.size() && before.buckets[b].first < le) ++b;
    if (b < before.buckets.size() && before.buckets[b].first == le) {
      prior = before.buckets[b].second;
    }
    if (n > prior) diff.buckets.emplace_back(le, n - prior);
  }
  return diff;
}

uint64_t Histogram::BucketUpperBound(size_t index) {
  if (index == 0) return 0;
  if (index >= kNumBuckets - 1) return std::numeric_limits<uint64_t>::max();
  return (uint64_t{1} << index) - 1;
}

HistogramData Histogram::Data() const {
  HistogramData data;
  data.count = count();
  data.sum = sum();
  for (size_t i = 0; i < kNumBuckets; ++i) {
    const uint64_t n = bucket(i);
    if (n != 0) data.buckets.emplace_back(BucketUpperBound(i), n);
  }
  return data;
}

void Histogram::Reset() {
  // ordering: relaxed — statistics only (see Counter's class comment);
  // resetting concurrently with Observe is allowed to split the triple.
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

MetricsSnapshot MetricsSnapshot::DiffSince(const MetricsSnapshot& before) const {
  MetricsSnapshot diff;
  for (const auto& [name, value] : counters) {
    auto it = before.counters.find(name);
    const uint64_t prior = it == before.counters.end() ? 0 : it->second;
    diff.counters[name] = value - std::min(prior, value);
  }
  // Gauges are levels, not cumulative totals — carry the current value.
  diff.gauges = gauges;
  for (const auto& [name, data] : histograms) {
    auto it = before.histograms.find(name);
    diff.histograms[name] =
        it == before.histograms.end() ? data : data.DiffSince(it->second);
  }
  return diff;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    out.push_back(':');
    out += std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    out.push_back(':');
    out += std::to_string(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, data] : histograms) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    out += ":{\"count\":";
    out += std::to_string(data.count);
    out += ",\"sum\":";
    out += std::to_string(data.sum);
    out += ",\"buckets\":[";
    bool first_bucket = true;
    for (const auto& [le, n] : data.buckets) {
      if (!first_bucket) out.push_back(',');
      first_bucket = false;
      out.push_back('[');
      // The tail bucket's bound is UINT64_MAX; emit -1 so consumers do not
      // have to parse a value JSON numbers cannot represent exactly.
      out += le == std::numeric_limits<uint64_t>::max() ? "-1"
                                                        : std::to_string(le);
      out.push_back(',');
      out += std::to_string(n);
      out.push_back(']');
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  MutexLock lock(mu_);
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.emplace(name, histogram->Data());
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  MutexLock lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;
}

}  // namespace obs
}  // namespace xmlup
