#ifndef XMLUP_OBS_METRICS_H_
#define XMLUP_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace xmlup {
namespace obs {

/// Dependency-free metrics for the detector stack. Hot-path updates are
/// single relaxed atomic operations (lock-free, no allocation); reads go
/// through snapshot-on-read so a scrape never blocks an increment.
///
/// Compile with -DXMLUP_OBS_DISABLED to turn every update into a no-op the
/// optimizer deletes; the API (and all call sites) stay unchanged.
///
/// Metric objects are owned by a MetricsRegistry and live for the life of
/// the registry — call sites may cache `Counter&` references in function-
/// local statics, which makes the steady-state cost of a named counter one
/// atomic add.

/// All counter/gauge/histogram updates and reads below are
/// memory_order_relaxed by design: metrics are monotone statistics, not
/// synchronization. Nothing is published *through* a metric — readers
/// (Snapshot, the accounting-invariant tests) tolerate seeing a value a
/// few increments behind, and any cross-metric identity (calls == hits +
/// misses) is only asserted after the threads that wrote it were joined,
/// which supplies the happens-before edge the relaxed accesses omit.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
#ifndef XMLUP_OBS_DISABLED
    // ordering: relaxed — statistics only; see class comment.
    value_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  uint64_t value() const {
    // ordering: relaxed — statistics only; see class comment.
    return value_.load(std::memory_order_relaxed);
  }

  // ordering: relaxed — statistics only; see class comment.
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(int64_t v) {
#ifndef XMLUP_OBS_DISABLED
    // ordering: relaxed — statistics only; see Counter's class comment.
    value_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }

  void Add(int64_t delta) {
#ifndef XMLUP_OBS_DISABLED
    // ordering: relaxed — statistics only; see Counter's class comment.
    value_.fetch_add(delta, std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }

  int64_t value() const {
    // ordering: relaxed — statistics only; see Counter's class comment.
    return value_.load(std::memory_order_relaxed);
  }

  // ordering: relaxed — statistics only; see Counter's class comment.
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time copy of one histogram, safe to serialize and diff. Also
/// the quantile-extraction surface: the workload driver snapshots a phase's
/// latency histogram and reads p50/p95/p99 off the copy.
struct HistogramData {
  uint64_t count = 0;
  uint64_t sum = 0;
  /// Sparse: only non-empty buckets, as (inclusive upper bound, count).
  std::vector<std::pair<uint64_t, uint64_t>> buckets;

  /// Interpolated quantile for q in [0, 1]: the bucket holding rank
  /// q*count is located and the value linearly interpolated between the
  /// bucket's bounds (observations are assumed uniform within a bucket).
  /// For data uniform over [1, N] this is exact to within rounding; see
  /// obs_test for the pinned values. Returns 0 for an empty histogram and
  /// the tail bucket's lower bound when the rank lands in the unbounded
  /// tail. Total on every input: q outside [0, 1] (NaN included) clamps
  /// into the range, and data with no buckets — even with a nonzero
  /// count, as a racy DiffSince can produce — answers 0 rather than
  /// reading past the bucket list.
  double Quantile(double q) const;

  double Mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / count;
  }

  /// Upper bound of the highest non-empty bucket (an upper estimate of the
  /// maximum observation; exact for bucket 0). 0 when empty.
  uint64_t MaxBound() const;

  /// The observations recorded in this snapshot but not in `before` (an
  /// earlier snapshot of the *same* histogram): counts subtract
  /// bucket-wise. The basis of per-phase snapshot diffing.
  HistogramData DiffSince(const HistogramData& before) const;
};

/// Exponential (power-of-two) histogram: bucket i counts observations v
/// with std::bit_width(v) == i, i.e. bucket 0 holds v == 0 and bucket
/// i >= 1 holds v in [2^(i-1), 2^i - 1]; the last bucket absorbs the tail.
/// 40 buckets cover ~12 days at microsecond resolution, plenty for latency
/// and size distributions alike.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 40;

  static size_t BucketIndex(uint64_t value) {
    const size_t width = static_cast<size_t>(std::bit_width(value));
    return width < kNumBuckets ? width : kNumBuckets - 1;
  }

  /// Inclusive upper bound of bucket i (UINT64_MAX for the tail bucket).
  static uint64_t BucketUpperBound(size_t index);

  void Observe(uint64_t value) {
#ifndef XMLUP_OBS_DISABLED
    // ordering: relaxed — statistics only (see Counter's class comment);
    // the three adds are not a consistent triple and Data() documents
    // that its copy is per-bucket atomic, not a cross-bucket cut.
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
#else
    (void)value;
#endif
  }

  // ordering: relaxed — statistics only; see Counter's class comment.
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  // ordering: relaxed — statistics only; see Counter's class comment.
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t index) const {
    // ordering: relaxed — statistics only; see Counter's class comment.
    return buckets_[index].load(std::memory_order_relaxed);
  }

  /// Plain-data copy of the current state (sparse buckets), the input to
  /// Quantile/DiffSince. Safe under concurrent Observe calls; the copy is
  /// per-bucket atomic, not a cross-bucket consistent cut.
  HistogramData Data() const;

  void Reset();

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// Point-in-time copy of every registered metric. Plain data — safe to
/// serialize, diff, or ship across threads.
struct MetricsSnapshot {
  /// Alias kept from when this type was nested here; new code names
  /// obs::HistogramData directly.
  using HistogramData = obs::HistogramData;

  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramData> histograms;

  /// The activity between `before` (an earlier snapshot of the same
  /// registry) and this snapshot: counters and histogram buckets subtract;
  /// gauges are level values, not cumulative, so the diff carries this
  /// snapshot's value unchanged. Metrics registered after `before` diff
  /// against zero. This is what gives a workload phase its own counter
  /// deltas out of the process-wide registry.
  MetricsSnapshot DiffSince(const MetricsSnapshot& before) const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {name:
  /// {"count":..,"sum":..,"buckets":[[le,n],...]}}}
  std::string ToJson() const;
};

/// Named metric registry. Registration (first Get* for a name) takes a
/// mutex; subsequent updates through the returned reference are lock-free.
/// Returned references stay valid for the registry's lifetime — Reset()
/// zeroes values but never invalidates them.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every metric (registrations and cached references survive).
  void Reset();

  /// The process-wide registry the detector stack reports into. Never
  /// destroyed (intentionally leaked), so references are safe in atexit
  /// paths and detached threads.
  static MetricsRegistry& Default();

 private:
  /// Guards the name→metric maps (registration and snapshot); the metric
  /// values themselves are atomics updated without it. Leaf lock.
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      XMLUP_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      XMLUP_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      XMLUP_GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace xmlup

#endif  // XMLUP_OBS_METRICS_H_
