#ifndef XMLUP_OBS_SCOPED_TIMER_H_
#define XMLUP_OBS_SCOPED_TIMER_H_

#include <chrono>

#include "obs/metrics.h"

namespace xmlup {
namespace obs {

/// RAII latency probe: records the scope's wall time, in microseconds,
/// into a Histogram on destruction.
///
///   static obs::Histogram& lat =
///       obs::MetricsRegistry::Default().GetHistogram("detector.latency_us");
///   obs::ScopedTimer timer(&lat);
///
/// Under XMLUP_OBS_DISABLED the clock is never read and the whole object
/// compiles away.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram)
#ifndef XMLUP_OBS_DISABLED
      : histogram_(histogram),
        start_(std::chrono::steady_clock::now())
#endif
  {
#ifdef XMLUP_OBS_DISABLED
    (void)histogram;
#endif
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
#ifndef XMLUP_OBS_DISABLED
    histogram_->Observe(ElapsedMicros());
#endif
  }

  uint64_t ElapsedMicros() const {
#ifndef XMLUP_OBS_DISABLED
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
#else
    return 0;
#endif
  }

 private:
#ifndef XMLUP_OBS_DISABLED
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
#endif
};

}  // namespace obs
}  // namespace xmlup

#endif  // XMLUP_OBS_SCOPED_TIMER_H_
