#include "obs/trace.h"

#include <algorithm>
#include <map>

namespace xmlup {
namespace obs {
namespace {

std::atomic<uint32_t> next_thread_id{0};  // concurrency-ok: atomic id mint

/// Per-thread span nesting depth; TraceSpan maintains it even while the
/// recorder is enabled mid-stack so depths stay consistent.
thread_local uint32_t tls_span_depth = 0;

void AppendEscaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out->push_back('\\');
    out->push_back(*s);
  }
}

}  // namespace

uint32_t CurrentThreadId() {
  // ordering: relaxed — the fetch_add only needs to mint unique ids;
  // nothing else is published through the counter.
  thread_local const uint32_t id =
      next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

TraceRecorder::TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

uint64_t TraceRecorder::NowMicros() const {
  // Race fix (found in the concurrency-layer audit): test_clock_ used to
  // be read here without the lock while SetClockForTest wrote it under
  // it — a genuine data race on the std::function if a test installed a
  // clock while another thread held an open span. NowMicros is only
  // reached when the recorder is enabled (TraceSpan checks first), so the
  // lock is off the disabled fast path entirely.
  {
    MutexLock lock(mu_);
    if (test_clock_) return test_clock_();
  }
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void TraceRecorder::Record(const TraceEvent& event) {
  if (!enabled()) return;
  MutexLock lock(mu_);
  events_.push_back(event);
}

void TraceRecorder::MergeThreadEvents(std::vector<TraceEvent> events) {
  if (!enabled() || events.empty()) return;
  MutexLock lock(mu_);
  events_.insert(events_.end(), events.begin(), events.end());
  // ordering: relaxed — statistics only; see merge_count().
  merge_count_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  MutexLock lock(mu_);
  return events_;
}

void TraceRecorder::Clear() {
  MutexLock lock(mu_);
  events_.clear();
  // ordering: relaxed — statistics only; see merge_count().
  merge_count_.store(0, std::memory_order_relaxed);
}

std::string TraceRecorder::ToChromeTraceJson() const {
  std::vector<TraceEvent> events = Snapshot();
  // Stable presentation: viewers sort internally, but a deterministic file
  // is diffable and golden-testable.
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     if (a.start_us != b.start_us) return a.start_us < b.start_us;
                     return a.depth < b.depth;
                   });
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":\"";
    AppendEscaped(&out, e.name);
    out += "\",\"cat\":\"xmlup\",\"ph\":\"X\",\"ts\":";
    out += std::to_string(e.start_us);
    out += ",\"dur\":";
    out += std::to_string(e.dur_us);
    out += ",\"pid\":1,\"tid\":";
    out += std::to_string(e.tid);
    out += ",\"args\":{\"depth\":";
    out += std::to_string(e.depth);
    out += "}}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

std::string TraceRecorder::ToStatsJson() const {
  struct Agg {
    uint64_t count = 0;
    uint64_t total_us = 0;
    uint64_t max_us = 0;
  };
  std::map<std::string, Agg> by_name;
  for (const TraceEvent& e : Snapshot()) {
    Agg& agg = by_name[e.name];
    ++agg.count;
    agg.total_us += e.dur_us;
    agg.max_us = std::max(agg.max_us, e.dur_us);
  }
  std::string out = "{\"spans\":{";
  bool first = true;
  for (const auto& [name, agg] : by_name) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    AppendEscaped(&out, name.c_str());
    out += "\":{\"count\":";
    out += std::to_string(agg.count);
    out += ",\"total_us\":";
    out += std::to_string(agg.total_us);
    out += ",\"max_us\":";
    out += std::to_string(agg.max_us);
    out += "}";
  }
  out += "}}";
  return out;
}

TraceRecorder& TraceRecorder::Default() {
  static TraceRecorder* const recorder = new TraceRecorder();
  return *recorder;
}

void TraceRecorder::SetClockForTest(std::function<uint64_t()> now_us) {
  MutexLock lock(mu_);
  test_clock_ = std::move(now_us);
}

TraceSpan::TraceSpan(TraceRecorder& recorder, const char* name)
    : name_(name) {
#ifndef XMLUP_OBS_DISABLED
  if (recorder.enabled()) {
    recorder_ = &recorder;
    start_us_ = recorder.NowMicros();
    depth_ = tls_span_depth;
  }
  ++tls_span_depth;
#else
  (void)name;
#endif
}

TraceSpan::TraceSpan(const char* name)
    : TraceSpan(TraceRecorder::Default(), name) {}

TraceSpan::~TraceSpan() {
#ifndef XMLUP_OBS_DISABLED
  --tls_span_depth;
  if (recorder_ == nullptr) return;
  TraceEvent event;
  event.name = name_;
  event.start_us = start_us_;
  event.dur_us = recorder_->NowMicros() - start_us_;
  event.tid = CurrentThreadId();
  event.depth = depth_;
  recorder_->Record(event);
#endif
}

}  // namespace obs
}  // namespace xmlup
