#ifndef XMLUP_OBS_TRACE_H_
#define XMLUP_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace xmlup {
namespace obs {

/// One completed span. Timestamps are microseconds since the recorder's
/// epoch (its construction, unless a test clock is installed).
struct TraceEvent {
  const char* name = "";  // must be a string literal / static storage
  uint64_t start_us = 0;
  uint64_t dur_us = 0;
  uint32_t tid = 0;   // small stable per-thread id, assigned on first use
  uint32_t depth = 0;  // span nesting depth on that thread at open time
};

/// Stable small integer id for the calling thread (0 for the first thread
/// that asks, 1 for the second, ...). Used instead of std::thread::id so
/// trace exports are compact and goldens are deterministic for
/// single-threaded recordings.
uint32_t CurrentThreadId();

/// Captures nested spans from many threads and exports them as Chrome
/// trace_event JSON (load in chrome://tracing or https://ui.perfetto.dev)
/// plus a flat per-span-name stats JSON.
///
/// The recorder is *runtime-disabled by default*: until set_enabled(true),
/// opening a span reads one relaxed atomic and does nothing else, so
/// instrumented code pays ~nothing in production. When enabled, Record()
/// appends under a mutex — instrumentation is expected at operation
/// granularity (a detector call, a search, a batch phase), not inside
/// per-node loops.
///
/// Workers that want to keep the hot path contention-free can buffer
/// TraceEvents locally and publish them in one MergeThreadEvents() call;
/// merge_count() exposes how often that happened (the batch engine skips
/// the merge entirely when it runs inline on the calling thread).
class TraceRecorder {
 public:
  TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  bool enabled() const {
    // ordering: relaxed — an independent on/off flag; a span racing the
    // toggle is either recorded or skipped, both acceptable outcomes.
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool enabled) {
    // ordering: relaxed — see enabled().
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Microseconds since the recorder epoch (or the test clock's value).
  uint64_t NowMicros() const;

  /// Appends one completed span (thread-safe). No-op when disabled.
  void Record(const TraceEvent& event);

  /// Bulk-appends spans buffered by a worker thread and bumps
  /// merge_count(). No-op (and not counted) when disabled or empty.
  void MergeThreadEvents(std::vector<TraceEvent> events);

  /// Number of MergeThreadEvents() calls that appended something.
  uint64_t merge_count() const {
    // ordering: relaxed — statistics only, asserted after joins (which
    // supply the happens-before edge) in tests.
    return merge_count_.load(std::memory_order_relaxed);
  }

  std::vector<TraceEvent> Snapshot() const;

  /// Drops recorded events and zeroes merge_count (enabled flag and clock
  /// are kept).
  void Clear();

  /// Chrome trace_event format: {"traceEvents":[{"name":...,"ph":"X",
  /// "ts":...,"dur":...,"pid":1,"tid":...},...]}.
  std::string ToChromeTraceJson() const;

  /// Flat per-name aggregation: {"spans":{name:{"count":..,
  /// "total_us":..,"max_us":..}}}.
  std::string ToStatsJson() const;

  /// Process-wide recorder, disabled until someone turns it on (benches
  /// and the CLI do; library code only ever writes through it).
  static TraceRecorder& Default();

  /// Replaces the wall clock with a deterministic one (golden tests).
  /// Pass nullptr to restore the real clock.
  void SetClockForTest(std::function<uint64_t()> now_us);

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> merge_count_{0};
  /// Set once in the constructor, const thereafter — lock-free to read.
  std::chrono::steady_clock::time_point epoch_;
  /// Guards the event buffer and the test clock. Leaf lock: Record /
  /// Snapshot / NowMicros never call out while holding it.
  mutable Mutex mu_;
  std::function<uint64_t()> test_clock_ XMLUP_GUARDED_BY(mu_);
  std::vector<TraceEvent> events_ XMLUP_GUARDED_BY(mu_);
};

/// RAII span: opens on construction, records on destruction. Does nothing
/// when the recorder is disabled (one relaxed load). `name` must have
/// static storage duration (string literals).
class TraceSpan {
 public:
  TraceSpan(TraceRecorder& recorder, const char* name);
  /// Records into TraceRecorder::Default().
  explicit TraceSpan(const char* name);
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan();

 private:
  TraceRecorder* recorder_ = nullptr;  // null when disabled at open
  const char* name_;
  uint64_t start_us_ = 0;
  uint32_t depth_ = 0;
};

}  // namespace obs
}  // namespace xmlup

#endif  // XMLUP_OBS_TRACE_H_
