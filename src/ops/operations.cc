#include "ops/operations.h"

#include "eval/evaluator.h"
#include "xml/tree_algos.h"

namespace xmlup {

ReadOp::ReadOp(Pattern pattern) : pattern_(std::move(pattern)) {
  XMLUP_CHECK(pattern_.has_root());
}

std::vector<NodeId> ReadOp::Apply(const Tree& t) const {
  return Evaluate(pattern_, t);
}

InsertOp::InsertOp(Pattern pattern, std::shared_ptr<const Tree> content)
    : pattern_(std::move(pattern)), content_(std::move(content)) {
  XMLUP_CHECK(pattern_.has_root());
  XMLUP_CHECK(content_ != nullptr && content_->has_root());
}

InsertOp::Applied InsertOp::ApplyInPlace(Tree* t) const {
  Applied applied;
  applied.insertion_points = Evaluate(pattern_, *t);
  applied.copy_roots.reserve(applied.insertion_points.size());
  for (NodeId point : applied.insertion_points) {
    applied.copy_roots.push_back(
        t->GraftCopy(point, *content_, content_->root()));
  }
  return applied;
}

Tree InsertOp::ApplyFunctional(const Tree& t) const {
  Tree copy = CopyTree(t);
  ApplyInPlace(&copy);
  return copy;
}

Result<DeleteOp> DeleteOp::Make(Pattern pattern) {
  if (!pattern.has_root()) {
    return Status::InvalidArgument("delete pattern has no root");
  }
  if (pattern.output() == pattern.root()) {
    return Status::InvalidArgument(
        "delete pattern must not select the root (O(p) != ROOT(p))");
  }
  return DeleteOp(std::move(pattern));
}

DeleteOp::DeleteOp(Pattern pattern) : pattern_(std::move(pattern)) {}

DeleteOp::Applied DeleteOp::ApplyInPlace(Tree* t) const {
  Applied applied;
  // Evaluate once, before mutation (the paper's semantics); then delete
  // each still-live point. A point inside an already-deleted subtree is
  // subsumed: its subtree is gone.
  for (NodeId point : Evaluate(pattern_, *t)) {
    if (!t->alive(point)) continue;
    t->DeleteSubtree(point);
    applied.deletion_points.push_back(point);
  }
  return applied;
}

Tree DeleteOp::ApplyFunctional(const Tree& t) const {
  Tree copy = CopyTree(t);
  ApplyInPlace(&copy);
  return copy;
}

}  // namespace xmlup
