#ifndef XMLUP_OPS_OPERATIONS_H_
#define XMLUP_OPS_OPERATIONS_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "pattern/pattern.h"
#include "xml/tree.h"

namespace xmlup {

/// READ_p(t) (paper §3): projects [[p]](t), a set of node references.
class ReadOp {
 public:
  explicit ReadOp(Pattern pattern);

  const Pattern& pattern() const { return pattern_; }

  /// Evaluates the read; returns sorted node ids.
  std::vector<NodeId> Apply(const Tree& t) const;

 private:
  Pattern pattern_;
};

/// INSERT_{p,X}(t) (paper §3): evaluates p on t and inserts a fresh copy of
/// X as a child of every selected node (the insertion points). With
/// reference (mutating) semantics the tree is updated in place; the
/// functional variant copies first.
class InsertOp {
 public:
  /// `content` is the tree X; shared so InsertOp is cheaply copyable.
  InsertOp(Pattern pattern, std::shared_ptr<const Tree> content);

  const Pattern& pattern() const { return pattern_; }
  const Tree& content() const { return *content_; }
  const std::shared_ptr<const Tree>& shared_content() const {
    return content_;
  }

  /// Result of one application.
  struct Applied {
    std::vector<NodeId> insertion_points;
    /// Root node of the fresh copy grafted at each insertion point
    /// (parallel to insertion_points).
    std::vector<NodeId> copy_roots;
  };

  /// Mutating (reference-based) semantics. The pattern is evaluated once,
  /// before any mutation, as the paper's definition requires.
  Applied ApplyInPlace(Tree* t) const;

  /// Value semantics: returns a modified copy, leaving `t` untouched.
  Tree ApplyFunctional(const Tree& t) const;

 private:
  Pattern pattern_;
  std::shared_ptr<const Tree> content_;
};

/// DELETE_p(t) (paper §3): evaluates p on t and removes the subtree rooted
/// at every selected node. Requires O(p) != ROOT(p) so the result stays a
/// tree.
class DeleteOp {
 public:
  /// Fails with InvalidArgument if the pattern's output node is its root.
  static Result<DeleteOp> Make(Pattern pattern);

  const Pattern& pattern() const { return pattern_; }

  struct Applied {
    /// The deletion points that were actually removed. Points nested under
    /// other points are subsumed (their subtree is already gone); the net
    /// tree is identical either way.
    std::vector<NodeId> deletion_points;
  };

  Applied ApplyInPlace(Tree* t) const;
  Tree ApplyFunctional(const Tree& t) const;

 private:
  explicit DeleteOp(Pattern pattern);

  Pattern pattern_;
};

}  // namespace xmlup

#endif  // XMLUP_OPS_OPERATIONS_H_
