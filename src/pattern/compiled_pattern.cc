#include "pattern/compiled_pattern.h"

#include <atomic>

// The compiler reuses the matcher's own regex construction so compiled
// automata are structurally identical to the ones the value path builds
// per call (same include direction as pattern_store.cc → conflict/minimize).
#include "match/matching.h"
#include "pattern/pattern_ops.h"

namespace xmlup {
namespace {

/// Process-wide compiled-NFA uid allocator. Starts at 1 so every uid is
/// nonzero (NfaProductCache treats 0 as "not a compiled automaton").
std::atomic<uint64_t> g_next_uid{1};

size_t NfaBytes(const Nfa& nfa) {
  size_t total = sizeof(Nfa);
  total += nfa.transitions().size() * sizeof(Nfa::Transition);
  total += nfa.epsilon_transitions().size() * sizeof(Nfa::EpsilonTransition);
  // Per-state adjacency + precomputed closures (indices are 4 bytes each;
  // closures hold at least the state itself).
  for (StateId s = 0; s < nfa.num_states(); ++s) {
    total += 3 * sizeof(std::vector<StateId>);
    total += nfa.TransitionsFrom(s).size() * sizeof(uint32_t);
    total += nfa.EpsilonFrom(s).size() * sizeof(StateId);
    total += nfa.ClosureFrom(s).size() * sizeof(StateId);
  }
  return total;
}

size_t PatternBytes(const Pattern& p) {
  return sizeof(Pattern) + p.size() * 24 /* Pattern::Node */;
}

}  // namespace

CompiledPattern::CompiledPattern(const Pattern& stored)
    : mainline_(Mainline(stored)) {
  // The mainline is linear: walk its single chain root→output.
  for (PatternNodeId n = mainline_.root(); n != kNullPatternNode;
       n = mainline_.first_child(n)) {
    chain_.push_back(n);
  }

  const size_t length = chain_.size();
  // ordering: relaxed — pure id minting: all that matters is that each
  // claim returns a distinct range, which fetch_add's atomicity alone
  // guarantees. The uids only reach other threads inside this object,
  // whose publication (the store's entry latch) carries the ordering.
  uid_base_ = g_next_uid.fetch_add(2 * length, std::memory_order_relaxed);

  prefixes_.reserve(length);
  suffixes_.reserve(length);
  prefix_nfas_.reserve(length);
  prefix_weak_nfas_.reserve(length);
  for (size_t k = 0; k < length; ++k) {
    prefixes_.push_back(ExtractSeq(mainline_, mainline_.root(), chain_[k]));
    suffixes_.push_back(ExtractSeq(mainline_, chain_[k], mainline_.output()));
    // Exactly MatchViaNfa's l2-side construction: R(prefix) for strong
    // matches, R(prefix)·(.)* for weak ones.
    Regex strong = LinearPatternToRegex(prefixes_[k]);
    Regex weak = Regex::Concat(LinearPatternToRegex(prefixes_[k]),
                               Regex::Star(Regex::Dot()));
    prefix_nfas_.push_back(Nfa::FromRegex(strong));
    prefix_weak_nfas_.push_back(Nfa::FromRegex(weak));

    bytes_ += PatternBytes(prefixes_[k]) + PatternBytes(suffixes_[k]);
    bytes_ += NfaBytes(prefix_nfas_[k]) + NfaBytes(prefix_weak_nfas_[k]);
  }
  bytes_ += PatternBytes(mainline_) + chain_.size() * sizeof(PatternNodeId);
}

}  // namespace xmlup
