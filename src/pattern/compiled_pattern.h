#ifndef XMLUP_PATTERN_COMPILED_PATTERN_H_
#define XMLUP_PATTERN_COMPILED_PATTERN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "automata/nfa.h"
#include "pattern/pattern.h"

namespace xmlup {

/// The compile-once artifacts of one interned pattern: its mainline
/// (SEQ_ROOT^O(p)) and, for every node on that chain, the prefix pattern
/// SEQ_ROOT^chain[k] together with its Thompson NFA in both the strong
/// form (R(prefix)) and the weak form (R(prefix)·(.)* — the l2 side of
/// MatchWeakly). These are exactly the automata the linear conflict
/// algorithms rebuild per Detect() call today; a PatternStore entry builds
/// them once and every later ref-based call reuses them.
///
/// NFAs are constructed through the same LinearPatternToRegex + FromRegex
/// pipeline the value matchers use, on patterns built by the same
/// ExtractSeq — so a compiled automaton is structurally identical to the
/// throwaway one and every downstream BFS is bit-for-bit the same search.
///
/// Each automaton carries a process-unique 64-bit uid (minted from a
/// global monotone counter, never reused, never zero). The uid pair keys
/// NfaProductCache: since the automata behind a uid are immutable, a
/// cached product result is valid forever.
///
/// Immutable after construction; safe to share across threads.
class CompiledPattern {
 public:
  /// Compiles `stored` (any pattern; only its mainline chain is compiled).
  /// For a linear pattern the mainline is the pattern itself.
  explicit CompiledPattern(const Pattern& stored);

  CompiledPattern(const CompiledPattern&) = delete;
  CompiledPattern& operator=(const CompiledPattern&) = delete;

  /// Mainline(stored): the linear pattern along the root→output path.
  const Pattern& mainline_pattern() const { return mainline_; }

  /// Number of nodes on the mainline chain (>= 1).
  size_t chain_length() const { return chain_.size(); }

  /// Node id of chain position `k` *within mainline_pattern()* (k = 0 is
  /// the root, k = chain_length()-1 the output).
  PatternNodeId mainline_node(size_t k) const { return chain_[k]; }

  /// SEQ_ROOT^chain[k] of the mainline.
  const Pattern& prefix_pattern(size_t k) const { return prefixes_[k]; }

  /// SEQ_chain[k]^O of the mainline (suffix starting at chain[k]).
  const Pattern& suffix_pattern(size_t k) const { return suffixes_[k]; }

  /// NFA of R(prefix_pattern(k)).
  const Nfa& prefix_nfa(size_t k) const { return prefix_nfas_[k]; }
  uint64_t prefix_uid(size_t k) const { return uid_base_ + 2 * k; }

  /// NFA of R(prefix_pattern(k))·(.)* — the weak-match l2 form.
  const Nfa& prefix_weak_nfa(size_t k) const { return prefix_weak_nfas_[k]; }
  uint64_t prefix_weak_uid(size_t k) const { return uid_base_ + 2 * k + 1; }

  /// The full mainline's automata (== prefix at chain_length()-1); this is
  /// the l1 side of every match the linear detectors issue.
  const Nfa& mainline_nfa() const { return prefix_nfa(chain_.size() - 1); }
  uint64_t mainline_uid() const { return prefix_uid(chain_.size() - 1); }
  const Nfa& mainline_weak_nfa() const {
    return prefix_weak_nfa(chain_.size() - 1);
  }
  uint64_t mainline_weak_uid() const {
    return prefix_weak_uid(chain_.size() - 1);
  }

  /// Retained-storage estimate (patterns + automata), for the
  /// store.nfa.bytes counter.
  size_t bytes() const { return bytes_; }

 private:
  Pattern mainline_;
  std::vector<PatternNodeId> chain_;
  std::vector<Pattern> prefixes_;
  std::vector<Pattern> suffixes_;
  std::vector<Nfa> prefix_nfas_;
  std::vector<Nfa> prefix_weak_nfas_;
  uint64_t uid_base_ = 0;
  size_t bytes_ = 0;
};

}  // namespace xmlup

#endif  // XMLUP_PATTERN_COMPILED_PATTERN_H_
