#include "pattern/pattern.h"

#include <algorithm>
#include <set>

namespace xmlup {

Pattern::Pattern(std::shared_ptr<SymbolTable> symbols)
    : symbols_(std::move(symbols)) {
  XMLUP_CHECK(symbols_ != nullptr);
}

PatternNodeId Pattern::CreateRoot(Label label) {
  XMLUP_CHECK(nodes_.empty());
  Node n;
  n.label = label;
  nodes_.push_back(n);
  output_ = 0;
  return 0;
}

PatternNodeId Pattern::AddChild(PatternNodeId parent, Label label, Axis axis) {
  XMLUP_DCHECK(parent < nodes_.size());
  Node n;
  n.label = label;
  n.axis = axis;
  n.parent = parent;
  nodes_.push_back(n);
  const PatternNodeId id = static_cast<PatternNodeId>(nodes_.size() - 1);
  Node& p = node(parent);
  if (p.last_child != kNullPatternNode) {
    node(p.last_child).next_sibling = id;
  } else {
    p.first_child = id;
  }
  p.last_child = id;
  return id;
}

void Pattern::SetOutput(PatternNodeId n) {
  XMLUP_DCHECK(n < nodes_.size());
  output_ = n;
}

std::vector<PatternNodeId> Pattern::Children(PatternNodeId n) const {
  std::vector<PatternNodeId> out;
  for (PatternNodeId c = first_child(n); c != kNullPatternNode;
       c = next_sibling(c)) {
    out.push_back(c);
  }
  return out;
}

size_t Pattern::ChildCount(PatternNodeId n) const {
  size_t count = 0;
  for (PatternNodeId c = first_child(n); c != kNullPatternNode;
       c = next_sibling(c)) {
    ++count;
  }
  return count;
}

std::vector<PatternNodeId> Pattern::PreOrder() const {
  if (!has_root()) return {};
  std::vector<PatternNodeId> out;
  std::vector<PatternNodeId> stack = {root()};
  while (!stack.empty()) {
    const PatternNodeId n = stack.back();
    stack.pop_back();
    out.push_back(n);
    // Push children in reverse so preorder visits them in stored order.
    std::vector<PatternNodeId> children = Children(n);
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return out;
}

std::vector<PatternNodeId> Pattern::PostOrder() const {
  std::vector<PatternNodeId> out = PreOrder();
  std::reverse(out.begin(), out.end());
  return out;
}

std::string Pattern::LabelName(PatternNodeId n) const {
  if (is_wildcard(n)) return "*";
  return symbols_->Name(label(n));
}

bool Pattern::IsLinear() const {
  if (!has_root()) return false;
  for (PatternNodeId n = 0; n < nodes_.size(); ++n) {
    if (ChildCount(n) > 1) return false;
  }
  // With at most one child per node the pattern is a single path, whose
  // unique leaf is the only childless node; linearity additionally requires
  // the output to be that leaf.
  return first_child(output_) == kNullPatternNode;
}

size_t Pattern::Depth(PatternNodeId n) const {
  size_t depth = 0;
  for (PatternNodeId p = parent(n); p != kNullPatternNode; p = parent(p)) {
    ++depth;
  }
  return depth;
}

bool Pattern::IsAncestorOrSelf(PatternNodeId a, PatternNodeId b) const {
  for (PatternNodeId n = b; n != kNullPatternNode; n = parent(n)) {
    if (n == a) return true;
  }
  return false;
}

std::vector<Label> Pattern::DistinctLabels() const {
  std::set<Label> labels;
  for (PatternNodeId n = 0; n < nodes_.size(); ++n) {
    if (!is_wildcard(n)) labels.insert(label(n));
  }
  return std::vector<Label>(labels.begin(), labels.end());
}

Status Pattern::Validate() const {
  if (!has_root()) return Status::Internal("pattern has no root");
  if (output_ >= nodes_.size()) {
    return Status::Internal("output node out of range");
  }
  if (node(0).parent != kNullPatternNode) {
    return Status::Internal("root has a parent");
  }
  size_t reachable = 0;
  std::vector<PatternNodeId> stack = {root()};
  std::vector<bool> visited(nodes_.size(), false);
  while (!stack.empty()) {
    const PatternNodeId n = stack.back();
    stack.pop_back();
    if (visited[n]) return Status::Internal("cycle in pattern");
    visited[n] = true;
    ++reachable;
    for (PatternNodeId c = first_child(n); c != kNullPatternNode;
         c = next_sibling(c)) {
      if (parent(c) != n) return Status::Internal("child/parent mismatch");
      stack.push_back(c);
    }
  }
  if (reachable != nodes_.size()) {
    return Status::Internal("unreachable pattern nodes");
  }
  return Status::OK();
}

}  // namespace xmlup
