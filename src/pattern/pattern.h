#ifndef XMLUP_PATTERN_PATTERN_H_
#define XMLUP_PATTERN_PATTERN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "xml/symbol_table.h"

namespace xmlup {

/// Identifies a node within one Pattern.
using PatternNodeId = uint32_t;

inline constexpr PatternNodeId kNullPatternNode = 0xFFFFFFFFu;

/// The wildcard label `*` (paper §2.2: * ∉ Σ matches any label).
inline constexpr Label kWildcardLabel = 0xFFFFFFFEu;

/// Edge kinds of a tree pattern: EDGES_/(p) (child constraints) and
/// EDGES_//(p) (descendant constraints).
enum class Axis : uint8_t {
  kChild = 0,
  kDescendant = 1,
};

/// A tree pattern p over Σ ∪ {*} (paper §2.2): a tree whose edges are
/// partitioned into child and descendant constraints, with one
/// distinguished output node O(p).
///
/// Patterns in P^{//,[],*} are arbitrary such trees; *linear* patterns
/// (P^{//,*}) have exactly one outgoing edge per node and the output node is
/// the leaf. Patterns are value types (copyable); they are immutable once
/// built except through the construction API.
class Pattern {
 public:
  explicit Pattern(std::shared_ptr<SymbolTable> symbols);

  Pattern(const Pattern&) = default;
  Pattern& operator=(const Pattern&) = default;
  Pattern(Pattern&&) = default;
  Pattern& operator=(Pattern&&) = default;

  const std::shared_ptr<SymbolTable>& symbols() const { return symbols_; }

  /// --- Construction ---
  /// Creates the pattern root. `label` may be kWildcardLabel. The root
  /// starts out as the output node.
  PatternNodeId CreateRoot(Label label);

  /// Adds a node connected to `parent` by an edge of kind `axis`.
  PatternNodeId AddChild(PatternNodeId parent, Label label, Axis axis);

  /// Marks `node` as the output node O(p).
  void SetOutput(PatternNodeId node);

  /// --- Accessors ---
  bool has_root() const { return !nodes_.empty(); }
  PatternNodeId root() const {
    XMLUP_DCHECK(has_root());
    return 0;
  }
  PatternNodeId output() const { return output_; }

  /// |p|: number of pattern nodes.
  size_t size() const { return nodes_.size(); }

  Label label(PatternNodeId n) const { return node(n).label; }
  bool is_wildcard(PatternNodeId n) const {
    return node(n).label == kWildcardLabel;
  }
  /// Edge kind of the edge from parent(n) to n. Meaningless for the root.
  Axis axis(PatternNodeId n) const { return node(n).axis; }
  PatternNodeId parent(PatternNodeId n) const { return node(n).parent; }
  PatternNodeId first_child(PatternNodeId n) const {
    return node(n).first_child;
  }
  PatternNodeId next_sibling(PatternNodeId n) const {
    return node(n).next_sibling;
  }

  std::vector<PatternNodeId> Children(PatternNodeId n) const;
  size_t ChildCount(PatternNodeId n) const;

  /// All nodes in preorder (root first). Node ids are dense; preorder is
  /// simply by construction order of this implementation, but callers
  /// should not rely on that.
  std::vector<PatternNodeId> PreOrder() const;
  std::vector<PatternNodeId> PostOrder() const;

  /// Label name for diagnostics ("*" for wildcards).
  std::string LabelName(PatternNodeId n) const;

  /// True if every node has at most one child and the output node is the
  /// unique leaf (the paper's P^{//,*}).
  bool IsLinear() const;

  /// True if `a` equals `b` or `a` is an ancestor of `b`.
  bool IsAncestorOrSelf(PatternNodeId a, PatternNodeId b) const;

  /// Depth of `n` (root has depth 0).
  size_t Depth(PatternNodeId n) const;

  /// The labels (≠ *) used in this pattern — Σ_p.
  std::vector<Label> DistinctLabels() const;

  /// Structural invariants; used by tests.
  Status Validate() const;

 private:
  struct Node {
    Label label = kInvalidLabel;
    Axis axis = Axis::kChild;  // edge kind from parent
    PatternNodeId parent = kNullPatternNode;
    PatternNodeId first_child = kNullPatternNode;
    PatternNodeId last_child = kNullPatternNode;
    PatternNodeId next_sibling = kNullPatternNode;
  };

  const Node& node(PatternNodeId n) const {
    XMLUP_DCHECK(n < nodes_.size());
    return nodes_[n];
  }
  Node& node(PatternNodeId n) {
    XMLUP_DCHECK(n < nodes_.size());
    return nodes_[n];
  }

  std::shared_ptr<SymbolTable> symbols_;
  std::vector<Node> nodes_;
  PatternNodeId output_ = kNullPatternNode;
};

}  // namespace xmlup

#endif  // XMLUP_PATTERN_PATTERN_H_
