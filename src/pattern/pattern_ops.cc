#include "pattern/pattern_ops.h"

#include <algorithm>

namespace xmlup {

std::vector<PatternNodeId> PathBetween(const Pattern& p, PatternNodeId from,
                                       PatternNodeId to) {
  XMLUP_CHECK(p.IsAncestorOrSelf(from, to));
  std::vector<PatternNodeId> path;
  for (PatternNodeId n = to;; n = p.parent(n)) {
    path.push_back(n);
    if (n == from) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

Pattern ExtractSeq(const Pattern& p, PatternNodeId from, PatternNodeId to) {
  const std::vector<PatternNodeId> path = PathBetween(p, from, to);
  Pattern seq(p.symbols());
  PatternNodeId current = seq.CreateRoot(p.label(path[0]));
  for (size_t i = 1; i < path.size(); ++i) {
    current = seq.AddChild(current, p.label(path[i]), p.axis(path[i]));
  }
  seq.SetOutput(current);
  return seq;
}

Pattern Mainline(const Pattern& p) {
  return ExtractSeq(p, p.root(), p.output());
}

Pattern SubpatternAt(const Pattern& p, PatternNodeId n) {
  Pattern sub(p.symbols());
  const PatternNodeId sub_root = sub.CreateRoot(p.label(n));
  std::vector<std::pair<PatternNodeId, PatternNodeId>> stack = {{n, sub_root}};
  while (!stack.empty()) {
    auto [src, dst] = stack.back();
    stack.pop_back();
    for (PatternNodeId c = p.first_child(src); c != kNullPatternNode;
         c = p.next_sibling(c)) {
      const PatternNodeId dst_child = sub.AddChild(dst, p.label(c), p.axis(c));
      stack.emplace_back(c, dst_child);
    }
  }
  sub.SetOutput(sub_root);
  return sub;
}

size_t StarLength(const Pattern& p) {
  if (!p.has_root()) return 0;
  // chain_len[n]: length of the longest all-wildcard chain of child edges
  // ending at n. Parents precede children in PreOrder (ids are assigned
  // top-down), so a preorder sweep sees parents first.
  std::vector<size_t> chain_len(p.size(), 0);
  size_t best = 0;
  for (PatternNodeId n : p.PreOrder()) {
    if (!p.is_wildcard(n)) continue;
    size_t len = 1;
    const PatternNodeId parent = p.parent(n);
    if (parent != kNullPatternNode && p.axis(n) == Axis::kChild &&
        p.is_wildcard(parent)) {
      len = chain_len[parent] + 1;
    }
    chain_len[n] = len;
    best = std::max(best, len);
  }
  return best;
}

Tree ModelTree(const Pattern& p, Label star_fill,
               std::vector<NodeId>* mapping) {
  XMLUP_CHECK(p.has_root());
  Tree tree(p.symbols());
  if (mapping != nullptr) mapping->assign(p.size(), kNullNode);
  auto fill = [&](PatternNodeId n) {
    return p.is_wildcard(n) ? star_fill : p.label(n);
  };
  const NodeId root = tree.CreateRoot(fill(p.root()));
  if (mapping != nullptr) (*mapping)[p.root()] = root;
  std::vector<std::pair<PatternNodeId, NodeId>> stack = {{p.root(), root}};
  while (!stack.empty()) {
    auto [pn, tn] = stack.back();
    stack.pop_back();
    for (PatternNodeId c = p.first_child(pn); c != kNullPatternNode;
         c = p.next_sibling(c)) {
      const NodeId tc = tree.AddChild(tn, fill(c));
      if (mapping != nullptr) (*mapping)[c] = tc;
      stack.emplace_back(c, tc);
    }
  }
  return tree;
}

NodeId GraftModel(Tree* tree, NodeId parent, const Pattern& p,
                  PatternNodeId subpattern_root, Label star_fill) {
  auto fill = [&](PatternNodeId n) {
    return p.is_wildcard(n) ? star_fill : p.label(n);
  };
  const NodeId model_root = tree->AddChild(parent, fill(subpattern_root));
  std::vector<std::pair<PatternNodeId, NodeId>> stack = {
      {subpattern_root, model_root}};
  while (!stack.empty()) {
    auto [pn, tn] = stack.back();
    stack.pop_back();
    for (PatternNodeId c = p.first_child(pn); c != kNullPatternNode;
         c = p.next_sibling(c)) {
      const NodeId tc = tree->AddChild(tn, fill(c));
      stack.emplace_back(c, tc);
    }
  }
  return model_root;
}

PatternNodeId GraftPattern(Pattern* dst, PatternNodeId parent,
                           const Pattern& src, Axis axis) {
  const PatternNodeId copy_root = dst->AddChild(parent, src.label(src.root()),
                                                axis);
  std::vector<std::pair<PatternNodeId, PatternNodeId>> stack = {
      {src.root(), copy_root}};
  while (!stack.empty()) {
    auto [s, d] = stack.back();
    stack.pop_back();
    for (PatternNodeId c = src.first_child(s); c != kNullPatternNode;
         c = src.next_sibling(c)) {
      const PatternNodeId dc = dst->AddChild(d, src.label(c), src.axis(c));
      stack.emplace_back(c, dc);
    }
  }
  return copy_root;
}

bool PatternsIdentical(const Pattern& p, const Pattern& q) {
  if (p.size() != q.size()) return false;
  if (!p.has_root() || !q.has_root()) return p.has_root() == q.has_root();
  // Compare by parallel traversal in stored child order; also require label
  // names to match (patterns may use different symbol tables).
  std::vector<std::pair<PatternNodeId, PatternNodeId>> stack = {
      {p.root(), q.root()}};
  bool output_matched = false;
  while (!stack.empty()) {
    auto [a, b] = stack.back();
    stack.pop_back();
    if (p.is_wildcard(a) != q.is_wildcard(b)) return false;
    if (!p.is_wildcard(a) && p.LabelName(a) != q.LabelName(b)) return false;
    if (a != p.root() && p.axis(a) != q.axis(b)) return false;
    if ((a == p.output()) != (b == q.output())) return false;
    if (a == p.output()) output_matched = true;
    PatternNodeId ca = p.first_child(a);
    PatternNodeId cb = q.first_child(b);
    while (ca != kNullPatternNode && cb != kNullPatternNode) {
      stack.emplace_back(ca, cb);
      ca = p.next_sibling(ca);
      cb = q.next_sibling(cb);
    }
    if (ca != kNullPatternNode || cb != kNullPatternNode) return false;
  }
  return output_matched;
}

namespace {

void AppendCanonicalCode(const Pattern& p, PatternNodeId n,
                         std::string* out) {
  out->push_back('(');
  if (n != p.root()) {
    out->push_back(p.axis(n) == Axis::kChild ? '/' : '~');
  }
  if (p.is_wildcard(n)) {
    out->push_back('*');
  } else {
    // Length-prefix the name so arbitrary label strings cannot collide
    // with the code's structural characters.
    const std::string name = p.LabelName(n);
    out->append(std::to_string(name.size()));
    out->push_back(':');
    out->append(name);
  }
  if (n == p.output()) out->push_back('!');
  std::vector<std::string> child_codes;
  for (PatternNodeId c : p.Children(n)) {
    std::string code;
    AppendCanonicalCode(p, c, &code);
    child_codes.push_back(std::move(code));
  }
  std::sort(child_codes.begin(), child_codes.end());
  for (const std::string& code : child_codes) out->append(code);
  out->push_back(')');
}

}  // namespace

std::string CanonicalPatternCode(const Pattern& p) {
  std::string code;
  if (p.has_root()) AppendCanonicalCode(p, p.root(), &code);
  return code;
}

}  // namespace xmlup
