#ifndef XMLUP_PATTERN_PATTERN_OPS_H_
#define XMLUP_PATTERN_PATTERN_OPS_H_

#include <vector>

#include "pattern/pattern.h"
#include "xml/tree.h"

namespace xmlup {

/// Nodes on the path from `from` down to `to` in `p`, inclusive. Requires
/// `from` to be an ancestor-or-self of `to`.
std::vector<PatternNodeId> PathBetween(const Pattern& p, PatternNodeId from,
                                       PatternNodeId to);

/// SEQ_from^to (paper §2.2): the linear pattern consisting of the nodes on
/// the path from `from` to `to`, with the edges used on that path. The
/// extracted pattern's output node is its leaf (the image of `to`).
/// Requires `from` ancestor-or-self of `to`.
Pattern ExtractSeq(const Pattern& p, PatternNodeId from, PatternNodeId to);

/// SEQ_ROOT(p)^O(p): the "mainline" of a pattern — the linear pattern along
/// the path from the root to the output node. For a linear pattern this is
/// the pattern itself. This is the D' / I' of Lemmas 4 and 8.
Pattern Mainline(const Pattern& p);

/// SUBPATTERN_n(p): the subtree of `p` rooted at `n` as a standalone
/// pattern (its root's incoming axis is dropped); the output node is set to
/// the new root (the paper allows an arbitrary choice).
Pattern SubpatternAt(const Pattern& p, PatternNodeId n);

/// STAR-LENGTH(p): the number of nodes in the longest chain (consecutive
/// child edges) consisting solely of wildcard-labeled nodes.
size_t StarLength(const Pattern& p);

/// A model M_p of `p` (paper §2.3): a tree with the same shape where every
/// descendant edge becomes a child edge and every wildcard is relabeled
/// `star_fill`. There is always an embedding of p into M_p.
/// If `mapping` is non-null it receives pattern-node → tree-node.
Tree ModelTree(const Pattern& p, Label star_fill,
               std::vector<NodeId>* mapping = nullptr);

/// Grafts a model of SUBPATTERN_n(p) under `parent` in `tree` (used by the
/// witness constructions of Lemmas 3, 4, 6 and 8). Returns the root of the
/// grafted model.
NodeId GraftModel(Tree* tree, NodeId parent, const Pattern& p,
                  PatternNodeId subpattern_root, Label star_fill);

/// True if p and q are structurally identical patterns (same shape, labels,
/// axes and output node). Used for CSE in the analysis module.
bool PatternsIdentical(const Pattern& p, const Pattern& q);

/// Canonical string code of a pattern: label names plus incoming axes with
/// the children of every node in sorted code order, and the output node
/// marked. Two patterns have equal codes iff they are identical up to
/// sibling reordering (the pattern analogue of xml/isomorphism.h's
/// CanonicalCode). The code uses label *names*, so it is stable across
/// symbol tables — the batch conflict engine uses it as a memoization key.
std::string CanonicalPatternCode(const Pattern& p);

/// Copies `src` (whole pattern) into `dst` as a new subtree under `parent`,
/// attaching src's root by `axis`. Output-node markings of `src` are
/// ignored. Returns the copy of src's root. Used by the §5 reductions to
/// assemble composite patterns such as α[β[p][γ]]/β[p'].
PatternNodeId GraftPattern(Pattern* dst, PatternNodeId parent,
                           const Pattern& src, Axis axis);

}  // namespace xmlup

#endif  // XMLUP_PATTERN_PATTERN_OPS_H_
