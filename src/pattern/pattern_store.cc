#include "pattern/pattern_store.h"

#include <utility>

#include "common/check.h"
// The interner canonicalizes through the conflict layer's minimizer; this is
// the one place the pattern module reaches upward, so every layer above gets
// pre-minimized forms for free.
#include "conflict/minimize.h"
#include "obs/metrics.h"
#include "pattern/pattern_ops.h"
#include "xml/isomorphism.h"

namespace xmlup {
namespace {

/// Store observability, aggregated across every store in the process (the
/// same convention as the batch.* counters).
struct StoreMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& bytes;

  static const StoreMetrics& Get() {
    static const StoreMetrics* const metrics = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
      return new StoreMetrics{
          reg.GetCounter("pattern_store.hits"),
          reg.GetCounter("pattern_store.misses"),
          reg.GetCounter("pattern_store.bytes"),
      };
    }();
    return *metrics;
  }
};

/// Compiled-automata cache observability, aggregated across stores like
/// StoreMetrics. misses counts entries compiled (at most one per ref —
/// the once-per-entry latch); hits counts requests served by an already
/// compiled entry. Invariant: misses <= distinct refs ever compiled.
struct NfaMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& bytes;

  static const NfaMetrics& Get() {
    static const NfaMetrics* const metrics = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
      return new NfaMetrics{
          reg.GetCounter("store.nfa.hits"),
          reg.GetCounter("store.nfa.misses"),
          reg.GetCounter("store.nfa.bytes"),
      };
    }();
    return *metrics;
  }
};

/// Retained-storage estimate for the bytes counter: the pattern's node
/// array plus the canonical code and map-key strings.
uint64_t EntryBytes(const Pattern& stored, const std::string& code) {
  return stored.size() * 24  /* Pattern::Node */ + 2 * code.size() +
         sizeof(std::string);
}

}  // namespace

PatternStore::PatternStore(std::shared_ptr<SymbolTable> symbols,
                           PatternStoreOptions options)
    : options_(options), symbols_(std::move(symbols)) {}

PatternRef PatternStore::Intern(const Pattern& p) {
  XMLUP_CHECK_STREAM(p.has_root()) << "PatternStore::Intern: empty pattern";
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (symbols_ == nullptr) {
      symbols_ = p.symbols();
    } else {
      XMLUP_CHECK_STREAM(SameSymbolTable(symbols_, p.symbols()))
          << "PatternStore::Intern: pattern was built against a different "
             "SymbolTable than this store's. Labels are only comparable "
             "within one table; all patterns sharing a store (or a batch "
             "engine) must share one SymbolTable.";
    }
  }
  const StoreMetrics& metrics = StoreMetrics::Get();
  std::string code = CanonicalPatternCode(p);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = by_code_.find(code);
    if (it != by_code_.end()) {
      metrics.hits.Increment();
      return PatternRef(it->second);
    }
  }
  // Miss: canonicalize outside the lock so distinct patterns minimize in
  // parallel, then re-check (another thread may have won the race).
  Pattern stored = options_.minimize ? MinimizePattern(p) : p;
  std::string stored_code =
      options_.minimize ? CanonicalPatternCode(stored) : code;
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = by_code_.find(code); it != by_code_.end()) {
    metrics.hits.Increment();
    return PatternRef(it->second);
  }
  metrics.misses.Increment();
  uint32_t id;
  if (auto it = by_code_.find(stored_code); it != by_code_.end()) {
    // A different spelling of an already-stored canonical form.
    id = it->second;
  } else {
    id = static_cast<uint32_t>(entries_.size());
    const bool is_linear = stored.IsLinear();
    metrics.bytes.Increment(EntryBytes(stored, stored_code));
    entries_.push_back(Entry{std::move(stored), stored_code, is_linear,
                             std::make_unique<CompiledSlot>()});
    by_code_.emplace(std::move(stored_code), id);
  }
  if (code != entries_[id].code) by_code_.emplace(std::move(code), id);
  return PatternRef(id);
}

const PatternStore::Entry& PatternStore::entry(PatternRef ref) const {
  std::lock_guard<std::mutex> lock(mu_);
  XMLUP_CHECK_STREAM(ref.valid() && ref.id() < entries_.size())
      << "PatternRef does not belong to this store";
  return entries_[ref.id()];
}

const Pattern& PatternStore::pattern(PatternRef ref) const {
  return entry(ref).stored;
}

const std::string& PatternStore::canonical_code(PatternRef ref) const {
  return entry(ref).code;
}

bool PatternStore::linear(PatternRef ref) const {
  return entry(ref).is_linear;
}

const CompiledPattern& PatternStore::compiled(PatternRef ref) const {
  // entry() bounds-checks under the store mutex and returns a deque slot
  // that never moves; compilation itself runs outside that mutex, so
  // distinct entries compile in parallel and an expensive build never
  // blocks Intern.
  const Entry& e = entry(ref);
  CompiledSlot& slot = *e.compiled_slot;
  const NfaMetrics& metrics = NfaMetrics::Get();
  bool built = false;
  std::call_once(slot.once, [&] {
    slot.value = std::make_unique<const CompiledPattern>(e.stored);
    metrics.bytes.Increment(slot.value->bytes());
    built = true;
  });
  (built ? metrics.misses : metrics.hits).Increment();
  return *slot.value;
}

uint32_t PatternStore::InternContentCode(const Tree& content) {
  const StoreMetrics& metrics = StoreMetrics::Get();
  std::string code = CanonicalCode(content);
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] =
      content_ids_.emplace(std::move(code),
                           static_cast<uint32_t>(content_ids_.size()));
  if (inserted) {
    metrics.misses.Increment();
    metrics.bytes.Increment(it->first.size() + sizeof(std::string));
  } else {
    metrics.hits.Increment();
  }
  return it->second;
}

size_t PatternStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::shared_ptr<SymbolTable> PatternStore::symbols() const {
  std::lock_guard<std::mutex> lock(mu_);
  return symbols_;
}

PatternStore& PatternStore::Default() {
  // Intentionally leaked: refs may be resolved from atexit paths.
  static PatternStore* const store = new PatternStore();
  return *store;
}

}  // namespace xmlup
