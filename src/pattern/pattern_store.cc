#include "pattern/pattern_store.h"

#include <bit>
#include <new>
#include <utility>

#include "common/check.h"
// The interner canonicalizes through the conflict layer's minimizer; this is
// the one place the pattern module reaches upward, so every layer above gets
// pre-minimized forms for free.
#include "conflict/minimize.h"
// Type summaries (the Stage 0 footprints) are cached per entry the same way
// compiled automata are; like the minimizer include above, this is the
// pattern module reaching upward so every consumer of the store shares one
// summary per (pattern, schema).
#include "dtd/type_summary.h"
#include "obs/metrics.h"
#include "pattern/pattern_ops.h"
#include "xml/isomorphism.h"

namespace xmlup {
namespace {

/// Store observability, aggregated across every store in the process (the
/// same convention as the batch.* counters).
struct StoreMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& bytes;

  static const StoreMetrics& Get() {
    static const StoreMetrics* const metrics = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
      return new StoreMetrics{
          reg.GetCounter("pattern_store.hits"),
          reg.GetCounter("pattern_store.misses"),
          reg.GetCounter("pattern_store.bytes"),
      };
    }();
    return *metrics;
  }
};

/// Compiled-automata cache observability, aggregated across stores like
/// StoreMetrics. misses counts entries compiled (at most one per ref —
/// the once-per-entry latch); hits counts requests served by an already
/// compiled entry. Invariant: misses <= distinct refs ever compiled.
struct NfaMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& bytes;

  static const NfaMetrics& Get() {
    static const NfaMetrics* const metrics = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
      return new NfaMetrics{
          reg.GetCounter("store.nfa.hits"),
          reg.GetCounter("store.nfa.misses"),
          reg.GetCounter("store.nfa.bytes"),
      };
    }();
    return *metrics;
  }
};

/// Type-summary cache observability (the Stage 0 footprints), aggregated
/// across stores like NfaMetrics. misses counts summaries built (at most
/// one per (entry, dtd)); hits counts requests served by a retained
/// summary.
struct TypesMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& bytes;

  static const TypesMetrics& Get() {
    static const TypesMetrics* const metrics = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
      return new TypesMetrics{
          reg.GetCounter("store.types.hits"),
          reg.GetCounter("store.types.misses"),
          reg.GetCounter("store.types.bytes"),
      };
    }();
    return *metrics;
  }
};

/// Retained-storage estimate for the bytes counter: the pattern's node
/// array plus the canonical code and map-key strings.
uint64_t EntryBytes(const Pattern& stored, const std::string& code) {
  return stored.size() * 24  /* Pattern::Node */ + 2 * code.size() +
         sizeof(std::string);
}

}  // namespace

/// Latch + lazily-built type summary, CompiledSlot's sibling. The entry
/// latches the first Dtd it is asked about (the one-engine-one-schema
/// steady state); other Dtds go to the store-level secondary map.
struct PatternStore::TypesSlot {
  std::once_flag once;
  const Dtd* dtd = nullptr;
  std::unique_ptr<const TypeSummary> value;
};

/// Chunk index for the geometric layout: chunk c starts at entry id
/// kFirstChunkSize * (2^c - 1), so id + kFirstChunkSize lands in
/// [kFirstChunkSize << c, kFirstChunkSize << (c + 1)).
static constexpr size_t ChunkOf(size_t adjusted, size_t first_chunk_size) {
  return static_cast<size_t>(std::bit_width(adjusted)) -
         static_cast<size_t>(std::bit_width(first_chunk_size));
}

PatternStore::EntryTable::~EntryTable() {
  // ordering: relaxed — destruction is single-threaded by contract (no
  // reader or writer may overlap the store's destructor).
  const size_t n = size_.load(std::memory_order_relaxed);
  for (size_t id = 0; id < n; ++id) at(id).~Entry();
  for (std::atomic<Entry*>& slot : chunks_) {
    // ordering: relaxed — same single-threaded destructor context.
    Entry* chunk = slot.load(std::memory_order_relaxed);
    if (chunk != nullptr) ::operator delete(static_cast<void*>(chunk));
  }
}

PatternStore::Entry& PatternStore::EntryTable::at(size_t id) const {
  const size_t adjusted = id + kFirstChunkSize;
  const size_t c = ChunkOf(adjusted, kFirstChunkSize);
  // ordering: relaxed — the publication edge is size_, not the chunk
  // pointer. The caller observed a size() covering `id`; that acquire
  // synchronizes with the writer's release store of size_, which is
  // sequenced after both the chunk-pointer store and the entry's
  // placement-construction (writers are serialized by the store mutex, so
  // the edge holds across writer threads too). This load therefore cannot
  // observe a null or stale chunk for a published id. Audited for the
  // concurrency layer — see DESIGN "Concurrency model".
  Entry* chunk = chunks_[c].load(std::memory_order_relaxed);
  return chunk[adjusted - (kFirstChunkSize << c)];
}

PatternStore::Entry& PatternStore::EntryTable::Append(Entry entry) {
  // ordering: relaxed — writers are serialized by the store mutex, so the
  // previous Append's size_ store happens-before this load via the mutex.
  const size_t id = size_.load(std::memory_order_relaxed);
  const size_t adjusted = id + kFirstChunkSize;
  const size_t c = ChunkOf(adjusted, kFirstChunkSize);
  XMLUP_CHECK_STREAM(c < kNumChunks) << "PatternStore entry table is full";
  // ordering: relaxed — same mutex-serialized writer context as above.
  Entry* chunk = chunks_[c].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = static_cast<Entry*>(
        ::operator new((kFirstChunkSize << c) * sizeof(Entry)));
    // Release is redundant with the release on size_ below (the real
    // publication edge) but kept so the chunk pointer is independently
    // safe to audit.
    chunks_[c].store(chunk, std::memory_order_release);
  }
  Entry* slot =
      new (&chunk[adjusted - (kFirstChunkSize << c)]) Entry(std::move(entry));
  // The publication point: release makes the chunk pointer and the fully
  // constructed entry visible to every reader that acquire-loads a size
  // covering `id` (EntryTable::size()).
  size_.store(id + 1, std::memory_order_release);
  return *slot;
}

PatternStore::PatternStore(std::shared_ptr<SymbolTable> symbols,
                           PatternStoreOptions options)
    : options_(options), symbols_(std::move(symbols)) {}

PatternStore::~PatternStore() = default;

PatternRef PatternStore::Intern(const Pattern& p) {
  XMLUP_CHECK_STREAM(p.has_root()) << "PatternStore::Intern: empty pattern";
  {
    MutexLock lock(mu_);
    if (symbols_ == nullptr) {
      symbols_ = p.symbols();
    } else {
      XMLUP_CHECK_STREAM(SameSymbolTable(symbols_, p.symbols()))
          << "PatternStore::Intern: pattern was built against a different "
             "SymbolTable than this store's. Labels are only comparable "
             "within one table; all patterns sharing a store (or a batch "
             "engine) must share one SymbolTable.";
    }
  }
  const StoreMetrics& metrics = StoreMetrics::Get();
  std::string code = CanonicalPatternCode(p);
  {
    MutexLock lock(mu_);
    auto it = by_code_.find(code);
    if (it != by_code_.end()) {
      metrics.hits.Increment();
      return PatternRef(it->second);
    }
  }
  // Miss: canonicalize outside the lock so distinct patterns minimize in
  // parallel, then re-check (another thread may have won the race).
  Pattern stored = options_.minimize ? MinimizePattern(p) : p;
  std::string stored_code =
      options_.minimize ? CanonicalPatternCode(stored) : code;
  MutexLock lock(mu_);
  if (auto it = by_code_.find(code); it != by_code_.end()) {
    metrics.hits.Increment();
    return PatternRef(it->second);
  }
  metrics.misses.Increment();
  uint32_t id;
  if (auto it = by_code_.find(stored_code); it != by_code_.end()) {
    // A different spelling of an already-stored canonical form.
    id = it->second;
  } else {
    id = static_cast<uint32_t>(entries_.size());
    const bool is_linear = stored.IsLinear();
    metrics.bytes.Increment(EntryBytes(stored, stored_code));
    entries_.Append(Entry{std::move(stored), stored_code, is_linear,
                          std::make_unique<CompiledSlot>(),
                          std::make_unique<TypesSlot>()});
    by_code_.emplace(std::move(stored_code), id);
  }
  if (code != entries_.at(id).code) by_code_.emplace(std::move(code), id);
  return PatternRef(id);
}

const PatternStore::Entry& PatternStore::entry(PatternRef ref) const {
  // Lock-free: the table's acquire-published size covers every resolvable
  // ref, and entry addresses never move.
  XMLUP_CHECK_STREAM(ref.valid() && ref.id() < entries_.size())
      << "PatternRef does not belong to this store";
  return entries_.at(ref.id());
}

const Pattern& PatternStore::pattern(PatternRef ref) const {
  return entry(ref).stored;
}

const std::string& PatternStore::canonical_code(PatternRef ref) const {
  return entry(ref).code;
}

bool PatternStore::linear(PatternRef ref) const {
  return entry(ref).is_linear;
}

const CompiledPattern& PatternStore::compiled(PatternRef ref) const {
  // entry() bounds-checks under the store mutex and returns a deque slot
  // that never moves; compilation itself runs outside that mutex, so
  // distinct entries compile in parallel and an expensive build never
  // blocks Intern.
  const Entry& e = entry(ref);
  CompiledSlot& slot = *e.compiled_slot;
  const NfaMetrics& metrics = NfaMetrics::Get();
  bool built = false;
  std::call_once(slot.once, [&] {
    slot.value = std::make_unique<const CompiledPattern>(e.stored);
    metrics.bytes.Increment(slot.value->bytes());
    built = true;
  });
  (built ? metrics.misses : metrics.hits).Increment();
  return *slot.value;
}

const TypeSummary& PatternStore::type_summary(PatternRef ref,
                                              const Dtd& dtd) const {
  const Entry& e = entry(ref);
  TypesSlot& slot = *e.types_slot;
  const TypesMetrics& metrics = TypesMetrics::Get();
  bool built = false;
  std::call_once(slot.once, [&] {
    // Latch the first schema this entry is summarized under; construction
    // runs outside the store mutex, so distinct entries summarize in
    // parallel (same discipline as compiled()).
    slot.dtd = &dtd;
    slot.value =
        std::make_unique<const TypeSummary>(ComputeTypeSummary(e.stored, dtd));
    metrics.bytes.Increment(slot.value->bytes());
    built = true;
  });
  // call_once synchronizes-with the winning build, so slot.dtd is safe to
  // read here even when another thread latched it.
  if (slot.dtd == &dtd) {
    (built ? metrics.misses : metrics.hits).Increment();
    return *slot.value;
  }
  // A schema other than the latched one (several Dtds over one store —
  // rare): serve from the mutex-guarded secondary map. Building under mu_
  // is acceptable off the designed one-schema path.
  MutexLock lock(mu_);
  const auto key = std::make_pair(ref.id(), &dtd);
  auto it = extra_type_summaries_.find(key);
  if (it == extra_type_summaries_.end()) {
    auto summary =
        std::make_unique<const TypeSummary>(ComputeTypeSummary(e.stored, dtd));
    metrics.misses.Increment();
    metrics.bytes.Increment(summary->bytes());
    it = extra_type_summaries_.emplace(key, std::move(summary)).first;
  } else {
    metrics.hits.Increment();
  }
  return *it->second;
}

uint32_t PatternStore::InternContentCode(const Tree& content) {
  const StoreMetrics& metrics = StoreMetrics::Get();
  std::string code = CanonicalCode(content);
  MutexLock lock(mu_);
  auto [it, inserted] =
      content_ids_.emplace(std::move(code),
                           static_cast<uint32_t>(content_ids_.size()));
  if (inserted) {
    metrics.misses.Increment();
    metrics.bytes.Increment(it->first.size() + sizeof(std::string));
  } else {
    metrics.hits.Increment();
  }
  return it->second;
}

size_t PatternStore::size() const { return entries_.size(); }

std::shared_ptr<SymbolTable> PatternStore::symbols() const {
  MutexLock lock(mu_);
  return symbols_;
}

PatternStore& PatternStore::Default() {
  // Intentionally leaked: refs may be resolved from atexit paths.
  static PatternStore* const store = new PatternStore();
  return *store;
}

}  // namespace xmlup
