#ifndef XMLUP_PATTERN_PATTERN_STORE_H_
#define XMLUP_PATTERN_PATTERN_STORE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>  // concurrency-ok: std::once_flag latches only; locking goes through common/mutex.h
#include <string>
#include <unordered_map>
#include <utility>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "pattern/compiled_pattern.h"
#include "pattern/pattern.h"

namespace xmlup {

class Tree;
class Dtd;
struct TypeSummary;

/// A handle to a pattern interned in a PatternStore: a trivially-copyable
/// 32-bit id. Two refs from the same store are equal iff the interned
/// patterns are canonically equal (equal up to sibling reordering, and —
/// for minimizing stores, the default — up to equivalence-preserving
/// minimization, so `a[b][b]` and `a[b]` intern to the same ref). Equality
/// and hashing are therefore integer operations; the string-keyed
/// comparisons happen once, at intern time.
///
/// A ref is only meaningful relative to the store that minted it; resolving
/// it through another store is a bug (caught by a bounds DCHECK at best).
class PatternRef {
 public:
  /// Default-constructed refs are invalid (no pattern).
  constexpr PatternRef() = default;

  constexpr bool valid() const { return id_ != kInvalidId; }
  constexpr uint32_t id() const { return id_; }

  friend constexpr bool operator==(PatternRef a, PatternRef b) {
    return a.id_ == b.id_;
  }
  friend constexpr bool operator!=(PatternRef a, PatternRef b) {
    return a.id_ != b.id_;
  }
  friend constexpr bool operator<(PatternRef a, PatternRef b) {
    return a.id_ < b.id_;
  }

 private:
  friend class PatternStore;
  static constexpr uint32_t kInvalidId = 0xFFFFFFFFu;
  explicit constexpr PatternRef(uint32_t id) : id_(id) {}

  uint32_t id_ = kInvalidId;
};

inline constexpr PatternRef kInvalidPatternRef{};

struct PatternRefHash {
  size_t operator()(PatternRef ref) const {
    return std::hash<uint32_t>()(ref.id());
  }
};

struct PatternStoreOptions {
  /// Canonicalize through MinimizePattern before storing, so equivalent
  /// patterns share one ref. Sound (minimization is equivalence-
  /// preserving); costs one minimization per distinct input pattern.
  bool minimize = true;
};

/// Interns patterns into immutable, address-stable storage and hands out
/// integer PatternRefs. Interning computes the canonical string code (and,
/// by default, the minimized form) exactly once per distinct input pattern;
/// every later lookup of the same pattern is one code build plus one hash
/// probe, and everything downstream of the ref — batch memo keys, pair
/// loops, equality tests — is integer-only.
///
/// All patterns in one store must share one SymbolTable: labels are only
/// comparable within a table, and the stored minimized forms are handed to
/// detectors that compare label ids directly. The table is bound at
/// construction (or by the first Intern) and Intern CHECK-fails on a
/// pattern from a different table.
///
/// Thread safety: all methods are safe to call concurrently (the batch
/// engine interns phase-1 inputs on its pool). Minimization of distinct
/// patterns proceeds in parallel; a race interning the *same* pattern twice
/// resolves to one entry. References returned by pattern() /
/// canonical_code() stay valid for the store's lifetime (entries live in
/// chunked, address-stable storage and are never erased). Resolving a ref
/// — pattern(), linear(), compiled(), type_summary(), size() — never takes
/// the store mutex: entries are published with release/acquire ordering,
/// so the per-pair detection hot path stays lock-free.
///
/// Observability: every store reports `pattern_store.hits`,
/// `pattern_store.misses` (== distinct patterns interned) and
/// `pattern_store.bytes` (retained storage estimate) into
/// obs::MetricsRegistry::Default().
class PatternStore {
 public:
  /// `symbols` may be null: the table then binds on the first Intern.
  explicit PatternStore(std::shared_ptr<SymbolTable> symbols = nullptr,
                        PatternStoreOptions options = {});
  /// Out-of-line: Entry holds a unique_ptr to the header-incomplete
  /// TypesSlot.
  ~PatternStore();

  PatternStore(const PatternStore&) = delete;
  PatternStore& operator=(const PatternStore&) = delete;

  /// Interns `p`, returning the ref of its canonical form. CHECK-fails if
  /// `p` was built against a different SymbolTable than this store's.
  PatternRef Intern(const Pattern& p);

  /// The stored (canonical, pre-minimized) pattern. The reference stays
  /// valid for the store's lifetime.
  const Pattern& pattern(PatternRef ref) const;

  /// CanonicalPatternCode of the stored pattern. Refs are equal iff these
  /// strings are equal; the strings exist for diagnostics and persistence,
  /// not for comparison.
  const std::string& canonical_code(PatternRef ref) const;

  /// Cached Pattern::IsLinear() of the stored pattern (the detector
  /// dispatch bit, precomputed at intern time).
  bool linear(PatternRef ref) const;

  /// The compiled automata of the stored pattern (mainline chain, prefix
  /// patterns, Thompson NFAs — see pattern/compiled_pattern.h), built
  /// lazily on first request and retained for the store's lifetime. The
  /// reference stays valid for the store's lifetime.
  ///
  /// Thread-safe: a once-per-entry latch guarantees exactly one build per
  /// entry even under concurrent callers; construction runs outside the
  /// store mutex so distinct entries compile in parallel. Reports
  /// `store.nfa.hits` (compiled form already present), `store.nfa.misses`
  /// (== entries compiled, at most one per ref) and `store.nfa.bytes`
  /// (retained automata estimate) into obs::MetricsRegistry::Default().
  const CompiledPattern& compiled(PatternRef ref) const;

  /// The schema-type summary of the stored pattern under `dtd` (the Stage 0
  /// footprints — see dtd/type_summary.h), built lazily on first request
  /// and retained for the store's lifetime, with the same once-per-entry
  /// latch discipline as compiled(): the first (entry, dtd) build runs
  /// outside the store mutex, so distinct entries summarize in parallel.
  /// Reports `store.types.hits` / `store.types.misses` (== summaries built)
  /// / `store.types.bytes` into obs::MetricsRegistry::Default().
  ///
  /// Summaries are keyed by the Dtd's address: `dtd` must outlive the store
  /// (or at least every type_summary call), and callers running several
  /// schemas must keep each alive — entries latch the first Dtd they see
  /// and serve other schemas from a mutex-guarded secondary map (correct,
  /// just not latch-free; one engine = one schema is the designed shape).
  const TypeSummary& type_summary(PatternRef ref, const Dtd& dtd) const;

  /// Interns the canonical code of a content tree (insert payloads),
  /// returning a dense integer id with the same exact-equality guarantee —
  /// the content leg of the batch engine's integer memo key. Ids share the
  /// hits/misses counters with pattern interning.
  uint32_t InternContentCode(const Tree& content);

  /// Number of distinct patterns stored.
  size_t size() const;

  /// The bound symbol table; null until the first Intern if none was given
  /// at construction.
  std::shared_ptr<SymbolTable> symbols() const;

  const PatternStoreOptions& options() const { return options_; }

  /// Process-wide store for single-table applications (examples, benches,
  /// CLIs that run everything over one SymbolTable). Library layers take a
  /// store explicitly instead of reaching for this; never destroyed.
  static PatternStore& Default();

 private:
  /// Latch + lazily-built compiled form. Held behind a unique_ptr so Entry
  /// stays movable (std::once_flag is not) and so call_once's non-const
  /// access works through the const Entry& that entry() hands out.
  struct CompiledSlot {
    std::once_flag once;
    std::unique_ptr<const CompiledPattern> value;
  };

  /// Latch + lazily-built type summary for the first Dtd this entry saw
  /// (defined in the .cc — TypeSummary is incomplete here to keep the
  /// pattern layer's headers from including the dtd layer's).
  struct TypesSlot;

  struct Entry {
    Pattern stored;
    std::string code;
    bool is_linear = false;
    std::unique_ptr<CompiledSlot> compiled_slot;
    std::unique_ptr<TypesSlot> types_slot;
  };

  /// Append-only entry storage readable without locks: a fixed top-level
  /// array of atomically-published chunks of geometrically doubling size,
  /// so entry addresses never move. Writers (serialized by the store
  /// mutex) placement-construct the next entry and release-publish the new
  /// count; readers acquire-load the count and reach any published entry
  /// with pure arithmetic — this keeps entry resolution off the mutex on
  /// the per-pair detection hot path (Stage 0 summary probes, compiled-
  /// automata fetches).
  class EntryTable {
   public:
    /// Power of two; chunk c holds (kFirstChunkSize << c) entries, so 26
    /// chunks cover ~8.6e9 entries — effectively unbounded.
    static constexpr size_t kFirstChunkSize = 256;
    static constexpr size_t kNumChunks = 26;

    EntryTable() = default;
    ~EntryTable();
    EntryTable(const EntryTable&) = delete;
    EntryTable& operator=(const EntryTable&) = delete;

    /// Published entry count. Acquire: every entry below the returned
    /// count is fully constructed and visible to this thread.
    size_t size() const { return size_.load(std::memory_order_acquire); }

    /// `id` must be below a size() this thread has observed.
    Entry& at(size_t id) const;

    /// Writer side; callers serialize through the store mutex.
    Entry& Append(Entry entry);

   private:
    std::atomic<size_t> size_{0};
    std::array<std::atomic<Entry*>, kNumChunks> chunks_{};
  };

  const Entry& entry(PatternRef ref) const;

  const PatternStoreOptions options_;
  /// The store's one writer-side lock: guards the intern index maps and
  /// the symbol-table binding. Deliberately NOT held on the resolution
  /// hot path — entries_ publishes lock-free (see EntryTable) and the
  /// per-entry latches are std::once_flag. Leaf lock: nothing in this
  /// class takes another lock while holding it (minimization and summary
  /// construction run outside it by design).
  mutable Mutex mu_;
  std::shared_ptr<SymbolTable> symbols_ XMLUP_GUARDED_BY(mu_);
  /// Not GUARDED_BY(mu_): readers resolve entries lock-free through the
  /// table's acquire-published size; only Append (serialized by mu_)
  /// writes.
  EntryTable entries_;
  /// Canonical input code → entry id. Contains every *input* code seen
  /// (aliases) plus every stored code, so equivalent inputs that minimize
  /// to one entry each pay minimization only once.
  std::unordered_map<std::string, uint32_t> by_code_ XMLUP_GUARDED_BY(mu_);
  std::unordered_map<std::string, uint32_t> content_ids_ XMLUP_GUARDED_BY(mu_);
  /// Overflow path of type_summary(): summaries for Dtds other than the
  /// one an entry latched first. Rare by design.
  mutable std::map<std::pair<uint32_t, const Dtd*>,
                   std::unique_ptr<const TypeSummary>>
      extra_type_summaries_ XMLUP_GUARDED_BY(mu_);
};

}  // namespace xmlup

template <>
struct std::hash<xmlup::PatternRef> {
  size_t operator()(xmlup::PatternRef ref) const {
    return std::hash<uint32_t>()(ref.id());
  }
};

#endif  // XMLUP_PATTERN_PATTERN_STORE_H_
