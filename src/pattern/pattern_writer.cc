#include "pattern/pattern_writer.h"

#include <vector>

namespace xmlup {
namespace {

/// True if `node` lies on the root→output path.
bool OnTrunk(const Pattern& p, PatternNodeId node) {
  return p.IsAncestorOrSelf(node, p.output());
}

void WritePredicate(const Pattern& p, PatternNodeId node, std::string* out);

/// Writes the subtree rooted at `node` in relative-path form, following the
/// chain of descendants. Each node writes its non-path children as
/// predicates. `trunk_child` selects which child continues the current
/// path (kNullPatternNode if none).
void WriteNodeAndPredicates(const Pattern& p, PatternNodeId node,
                            PatternNodeId trunk_child, std::string* out) {
  out->append(p.LabelName(node));
  for (PatternNodeId c = p.first_child(node); c != kNullPatternNode;
       c = p.next_sibling(c)) {
    if (c == trunk_child) continue;
    out->push_back('[');
    WritePredicate(p, c, out);
    out->push_back(']');
  }
}

/// Writes the predicate path starting at `node` (relative to its parent).
void WritePredicate(const Pattern& p, PatternNodeId node, std::string* out) {
  if (p.axis(node) == Axis::kDescendant) out->append(".//");
  // Follow the unique "spine" of this predicate. The parser appends the
  // spine continuation *after* the predicates of a step, so picking the
  // last child keeps rendering a fixpoint of parse∘render.
  PatternNodeId current = node;
  for (;;) {
    const std::vector<PatternNodeId> children = p.Children(current);
    const PatternNodeId spine =
        children.empty() ? kNullPatternNode : children.back();
    WriteNodeAndPredicates(p, current, spine, out);
    if (spine == kNullPatternNode) return;
    out->append(p.axis(spine) == Axis::kDescendant ? "//" : "/");
    current = spine;
  }
}

}  // namespace

std::string ToXPathString(const Pattern& pattern) {
  if (!pattern.has_root()) return "";
  std::string out;
  PatternNodeId current = pattern.root();
  for (;;) {
    // Find the trunk child (the child on the path to the output), if any.
    PatternNodeId trunk_child = kNullPatternNode;
    if (current != pattern.output()) {
      for (PatternNodeId c = pattern.first_child(current);
           c != kNullPatternNode; c = pattern.next_sibling(c)) {
        if (OnTrunk(pattern, c)) {
          trunk_child = c;
          break;
        }
      }
    }
    WriteNodeAndPredicates(pattern, current, trunk_child, &out);
    if (trunk_child == kNullPatternNode) break;
    out.append(pattern.axis(trunk_child) == Axis::kDescendant ? "//" : "/");
    current = trunk_child;
  }
  return out;
}

std::string DebugString(const Pattern& pattern) {
  std::string out;
  struct Frame {
    PatternNodeId node;
    int depth;
  };
  if (!pattern.has_root()) return "(empty pattern)\n";
  std::vector<Frame> stack = {{pattern.root(), 0}};
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    out.append(static_cast<size_t>(frame.depth) * 2, ' ');
    if (frame.node != pattern.root()) {
      out.append(pattern.axis(frame.node) == Axis::kDescendant ? "//" : "/");
    }
    out.append(pattern.LabelName(frame.node));
    if (frame.node == pattern.output()) out.append("  <== output");
    out.push_back('\n');
    std::vector<PatternNodeId> children = pattern.Children(frame.node);
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      stack.push_back({*it, frame.depth + 1});
    }
  }
  return out;
}

}  // namespace xmlup
