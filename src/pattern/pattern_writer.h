#ifndef XMLUP_PATTERN_PATTERN_WRITER_H_
#define XMLUP_PATTERN_PATTERN_WRITER_H_

#include <string>

#include "pattern/pattern.h"

namespace xmlup {

/// Renders a pattern back to the XPath fragment syntax accepted by
/// ParseXPath. The trunk is the root→output path; all other subtrees are
/// emitted as predicates (`[...]` with a `.//` prefix for descendant
/// edges). Round-trips with ParseXPath up to predicate ordering.
std::string ToXPathString(const Pattern& pattern);

/// Multi-line debug rendering showing the node tree, edge kinds and the
/// output node marker.
std::string DebugString(const Pattern& pattern);

}  // namespace xmlup

#endif  // XMLUP_PATTERN_PATTERN_WRITER_H_
