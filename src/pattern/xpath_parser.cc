#include "pattern/xpath_parser.h"

#include <string>

namespace xmlup {
namespace {

bool IsNameStartChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || (c >= '0' && c <= '9') || c == '-' || c == '.';
}

class XPathParser {
 public:
  XPathParser(std::string_view input, std::shared_ptr<SymbolTable> symbols)
      : input_(input), pattern_(std::move(symbols)) {}

  Result<Pattern> Parse() {
    SkipWhitespace();
    if (AtEnd()) return Error("empty XPath expression");

    Axis axis = Axis::kChild;
    if (PeekIs("//")) {
      // Implicit wildcard root with a descendant edge to the first step.
      pos_ += 2;
      pattern_.CreateRoot(kWildcardLabel);
      axis = Axis::kDescendant;
    } else if (Peek() == '/') {
      ++pos_;
    }

    PatternNodeId current = kNullPatternNode;
    if (pattern_.has_root()) current = pattern_.root();

    for (;;) {
      XMLUP_ASSIGN_OR_RETURN(current, ParseStep(current, axis));
      SkipWhitespace();
      if (AtEnd()) break;
      if (PeekIs("//")) {
        pos_ += 2;
        axis = Axis::kDescendant;
      } else if (Peek() == '/') {
        ++pos_;
        axis = Axis::kChild;
      } else {
        return Error(std::string("unexpected character '") + Peek() + "'");
      }
    }
    pattern_.SetOutput(current);
    XMLUP_RETURN_NOT_OK(pattern_.Validate());
    return std::move(pattern_);
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  bool PeekIs(std::string_view s) const {
    return input_.substr(pos_, s.size()) == s;
  }

  void SkipWhitespace() {
    while (!AtEnd() && (Peek() == ' ' || Peek() == '\t')) ++pos_;
  }

  Status Error(std::string message) const {
    return Status::ParseError("XPath position " + std::to_string(pos_) +
                              ": " + std::move(message));
  }

  Result<Label> ParseNodeTest() {
    SkipWhitespace();
    if (AtEnd()) return Error("expected a name or '*'");
    if (Peek() == '*') {
      ++pos_;
      return kWildcardLabel;
    }
    if (!IsNameStartChar(Peek())) return Error("expected a name or '*'");
    const size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    return pattern_.symbols()->Intern(input_.substr(start, pos_ - start));
  }

  /// Parses one step (node test plus predicates), attached to `parent` by
  /// `axis`; a null parent creates the root. Returns the step's node.
  Result<PatternNodeId> ParseStep(PatternNodeId parent, Axis axis) {
    XMLUP_ASSIGN_OR_RETURN(Label label, ParseNodeTest());
    const PatternNodeId node = parent == kNullPatternNode
                                   ? pattern_.CreateRoot(label)
                                   : pattern_.AddChild(parent, label, axis);
    SkipWhitespace();
    while (!AtEnd() && Peek() == '[') {
      ++pos_;
      XMLUP_RETURN_NOT_OK(ParsePredicateBody(node));
      SkipWhitespace();
      if (AtEnd() || Peek() != ']') return Error("expected ']'");
      ++pos_;
      SkipWhitespace();
    }
    return node;
  }

  /// Parses the relative path inside a predicate, attached under `anchor`.
  /// Predicate nesting recurses (predicate → step → predicate), so depth
  /// is capped: unbounded nesting in adversarial input would otherwise
  /// overflow the stack instead of returning a Status.
  Status ParsePredicateBody(PatternNodeId anchor) {
    if (depth_ >= kMaxNestingDepth) {
      return Error("predicate nesting deeper than " +
                   std::to_string(kMaxNestingDepth));
    }
    ++depth_;
    Status status = ParsePredicatePath(anchor);
    --depth_;
    return status;
  }

  Status ParsePredicatePath(PatternNodeId anchor) {
    SkipWhitespace();
    Axis axis = Axis::kChild;
    if (PeekIs(".//")) {
      pos_ += 3;
      axis = Axis::kDescendant;
    } else if (PeekIs("./")) {
      pos_ += 2;
    }
    PatternNodeId current = anchor;
    for (;;) {
      XMLUP_ASSIGN_OR_RETURN(current, ParseStep(current, axis));
      SkipWhitespace();
      if (AtEnd() || Peek() == ']') return Status::OK();
      if (PeekIs("//")) {
        pos_ += 2;
        axis = Axis::kDescendant;
      } else if (Peek() == '/') {
        ++pos_;
        axis = Axis::kChild;
      } else {
        return Error(std::string("unexpected character '") + Peek() +
                     "' in predicate");
      }
    }
  }

  static constexpr size_t kMaxNestingDepth = 128;

  std::string_view input_;
  Pattern pattern_;
  size_t pos_ = 0;
  size_t depth_ = 0;
};

}  // namespace

Result<Pattern> ParseXPath(std::string_view input,
                           std::shared_ptr<SymbolTable> symbols) {
  XPathParser parser(input, std::move(symbols));
  return parser.Parse();
}

Pattern MustParseXPath(std::string_view input,
                       std::shared_ptr<SymbolTable> symbols) {
  Result<Pattern> result = ParseXPath(input, std::move(symbols));
  XMLUP_CHECK_STREAM(result.ok())
      << "MustParseXPath(\"" << input << "\"): " << result.status();
  return std::move(result).value();
}

}  // namespace xmlup
