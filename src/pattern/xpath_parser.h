#ifndef XMLUP_PATTERN_XPATH_PARSER_H_
#define XMLUP_PATTERN_XPATH_PARSER_H_

#include <memory>
#include <string_view>

#include "common/result.h"
#include "pattern/pattern.h"

namespace xmlup {

/// Parses the paper's XPath fragment (§2.2) into a tree pattern:
///
///   e → e/e | e//e | e[e] | e[.//e] | σ | *
///
/// Concrete syntax accepted:
///   pattern    := ['/' | '//'] step (('/' | '//') step)*
///   step       := (name | '*') predicate*
///   predicate  := '[' ['.//' | './'] step (('/' | '//') step)* ']'
///
/// Semantics and conventions:
///  - The pattern root maps to the tree root (ROOT-PRESERVING embeddings),
///    so `a/b` and `/a/b` both denote a pattern whose root is labeled `a`.
///  - A leading `//` introduces an implicit wildcard root with a descendant
///    edge: `//b` is the pattern * with a // edge to b. (The paper's model
///    has no document node above the root; this keeps `//b` meaningful.)
///  - Predicates nest arbitrarily (`a[b[c]//d]` is accepted), matching the
///    recursive grammar.
///  - Inside a predicate, `.//` attaches the first step by a descendant
///    edge; `./` or nothing attaches it by a child edge.
///  - The output node O(p) is the last step of the trunk (outside any
///    predicate) — the standard XPath result node.
///
/// Examples: `a[.//c]/b[d][*//f]` (Figure 2), `book[.//quantity]` (§1).
Result<Pattern> ParseXPath(std::string_view input,
                           std::shared_ptr<SymbolTable> symbols);

/// Convenience for tests/examples: parses or aborts.
Pattern MustParseXPath(std::string_view input,
                       std::shared_ptr<SymbolTable> symbols);

}  // namespace xmlup

#endif  // XMLUP_PATTERN_XPATH_PARSER_H_
