#include "workload/catalog_generator.h"

namespace xmlup {

Tree GenerateCatalog(const std::shared_ptr<SymbolTable>& symbols,
                     const CatalogOptions& options, Rng* rng) {
  const Label catalog = symbols->Intern("catalog");
  const Label book = symbols->Intern("book");
  const Label title = symbols->Intern("title");
  const Label author = symbols->Intern("author");
  const Label publisher = symbols->Intern("publisher");
  const Label stock = symbols->Intern("stock");
  const Label quantity = symbols->Intern("quantity");
  const Label low = symbols->Intern("low");
  const Label high = symbols->Intern("high");

  Tree tree(symbols);
  const NodeId root = tree.CreateRoot(catalog);
  for (size_t i = 0; i < options.num_books; ++i) {
    const NodeId b = tree.AddChild(root, book);
    tree.AddChild(b, title);
    const size_t authors = 1 + rng->NextBounded(options.max_authors);
    for (size_t a = 0; a < authors; ++a) tree.AddChild(b, author);
    tree.AddChild(b, publisher);
    const NodeId s = tree.AddChild(b, stock);
    const NodeId q = tree.AddChild(s, quantity);
    tree.AddChild(q, rng->NextBool(options.low_fraction) ? low : high);
  }
  return tree;
}

}  // namespace xmlup
