#ifndef XMLUP_WORKLOAD_CATALOG_GENERATOR_H_
#define XMLUP_WORKLOAD_CATALOG_GENERATOR_H_

#include <memory>

#include "common/random.h"
#include "xml/tree.h"

namespace xmlup {

/// Generates book-catalog documents in the shape of the paper's Figure 1:
///
///   <catalog>
///     <book>
///       <title/> <author/>... <publisher/>
///       <stock><quantity><low/|high/></quantity></stock>
///     </book>...
///   </catalog>
///
/// The paper's data model has no text values, so the Figure-1 predicate
/// "quantity < 10" is encoded structurally: a quantity holds a <low/> or
/// <high/> marker, making `//book[.//low]` the analogue of
/// `//book[.//quantity < 10]`, and `<restock/>` insertion meaningful.
struct CatalogOptions {
  size_t num_books = 50;
  /// Fraction of books whose quantity is low (restock candidates).
  double low_fraction = 0.3;
  size_t max_authors = 3;
};

Tree GenerateCatalog(const std::shared_ptr<SymbolTable>& symbols,
                     const CatalogOptions& options, Rng* rng);

}  // namespace xmlup

#endif  // XMLUP_WORKLOAD_CATALOG_GENERATOR_H_
