#include "workload/generator_spec.h"

namespace xmlup {
namespace workload {
namespace {

JsonValue TreeJson(const TreeGenOptions& tree) {
  JsonValue json = JsonValue::MakeObject();
  json.Set("target_size", tree.target_size);
  json.Set("max_children", tree.max_children);
  json.Set("max_depth", tree.max_depth);
  return json;
}

JsonValue CatalogJson(const CatalogOptions& catalog) {
  JsonValue json = JsonValue::MakeObject();
  json.Set("num_books", catalog.num_books);
  json.Set("low_fraction", catalog.low_fraction);
  json.Set("max_authors", catalog.max_authors);
  return json;
}

JsonValue PatternJson(const PatternGenOptions& pattern) {
  JsonValue json = JsonValue::MakeObject();
  json.Set("size", pattern.size);
  json.Set("wildcard_prob", pattern.wildcard_prob);
  json.Set("descendant_prob", pattern.descendant_prob);
  json.Set("branch_prob", pattern.branch_prob);
  return json;
}

JsonValue ProgramJson(const ProgramGenOptions& program) {
  JsonValue json = JsonValue::MakeObject();
  json.Set("num_statements", program.num_statements);
  json.Set("num_variables", program.num_variables);
  json.Set("read_fraction", program.read_fraction);
  json.Set("insert_fraction", program.insert_fraction);
  json.Set("repeat_read_prob", program.repeat_read_prob);
  return json;
}

Status ReadTree(const JsonValue& json, TreeGenOptions* tree) {
  JsonObjectReader reader(json, "tree");
  reader.Size("target_size", &tree->target_size);
  reader.Size("max_children", &tree->max_children);
  reader.Size("max_depth", &tree->max_depth);
  if (tree->target_size == 0) reader.RecordError("target_size must be >= 1");
  if (tree->max_children == 0) reader.RecordError("max_children must be >= 1");
  if (tree->max_depth == 0) reader.RecordError("max_depth must be >= 1");
  return reader.Finish();
}

Status ReadCatalog(const JsonValue& json, CatalogOptions* catalog) {
  JsonObjectReader reader(json, "catalog");
  reader.Size("num_books", &catalog->num_books);
  reader.Fraction("low_fraction", &catalog->low_fraction);
  reader.Size("max_authors", &catalog->max_authors);
  return reader.Finish();
}

Status ReadPattern(const JsonValue& json, PatternGenOptions* pattern) {
  JsonObjectReader reader(json, "pattern");
  reader.Size("size", &pattern->size);
  reader.Fraction("wildcard_prob", &pattern->wildcard_prob);
  reader.Fraction("descendant_prob", &pattern->descendant_prob);
  reader.Fraction("branch_prob", &pattern->branch_prob);
  if (pattern->size == 0) reader.RecordError("size must be >= 1");
  return reader.Finish();
}

Status ReadProgram(const JsonValue& json, ProgramGenOptions* program) {
  JsonObjectReader reader(json, "program");
  reader.Size("num_statements", &program->num_statements);
  reader.Size("num_variables", &program->num_variables);
  reader.Fraction("read_fraction", &program->read_fraction);
  reader.Fraction("insert_fraction", &program->insert_fraction);
  reader.Fraction("repeat_read_prob", &program->repeat_read_prob);
  if (program->num_variables == 0) {
    reader.RecordError("num_variables must be >= 1");
  }
  if (program->read_fraction + program->insert_fraction > 1.0) {
    reader.RecordError("read_fraction + insert_fraction must be <= 1");
  }
  return reader.Finish();
}

}  // namespace

Result<GeneratorSpec> GeneratorSpec::FromJson(const JsonValue& json) {
  GeneratorSpec spec;
  JsonObjectReader reader(json, "generator");
  reader.Size("alphabet_size", &spec.alphabet_size);
  const JsonValue* tree = reader.Child("tree");
  const JsonValue* catalog = reader.Child("catalog");
  const JsonValue* pattern = reader.Child("pattern");
  const JsonValue* program = reader.Child("program");
  if (spec.alphabet_size == 0) reader.RecordError("alphabet_size must be >= 1");
  if (Status s = reader.Finish(); !s.ok()) return s;
  if (tree != nullptr) {
    if (Status s = ReadTree(*tree, &spec.tree); !s.ok()) return s;
  }
  if (catalog != nullptr) {
    if (Status s = ReadCatalog(*catalog, &spec.catalog); !s.ok()) return s;
  }
  if (pattern != nullptr) {
    if (Status s = ReadPattern(*pattern, &spec.pattern); !s.ok()) return s;
  }
  if (program != nullptr) {
    if (Status s = ReadProgram(*program, &spec.program); !s.ok()) return s;
  }
  // One pattern shape drives both generators (see header); keep the copy
  // coherent from the moment of parsing.
  spec.program.pattern = spec.pattern;
  return spec;
}

JsonValue GeneratorSpec::ToJson() const {
  JsonValue json = JsonValue::MakeObject();
  json.Set("alphabet_size", alphabet_size);
  json.Set("tree", TreeJson(tree));
  json.Set("catalog", CatalogJson(catalog));
  json.Set("pattern", PatternJson(pattern));
  json.Set("program", ProgramJson(program));
  return json;
}

std::vector<Label> GeneratorSpec::MakeAlphabet(
    const std::shared_ptr<SymbolTable>& symbols) const {
  return RandomTreeGenerator::MakeAlphabet(symbols.get(), alphabet_size);
}

TreeGenOptions GeneratorSpec::BindTree(
    const std::shared_ptr<SymbolTable>& symbols) const {
  TreeGenOptions bound = tree;
  bound.alphabet = MakeAlphabet(symbols);
  return bound;
}

PatternGenOptions GeneratorSpec::BindPattern(
    const std::shared_ptr<SymbolTable>& symbols) const {
  PatternGenOptions bound = pattern;
  bound.alphabet = MakeAlphabet(symbols);
  return bound;
}

ProgramGenOptions GeneratorSpec::BindProgram(
    const std::shared_ptr<SymbolTable>& symbols) const {
  ProgramGenOptions bound = program;
  bound.pattern = BindPattern(symbols);
  return bound;
}

bool operator==(const GeneratorSpec& a, const GeneratorSpec& b) {
  return a.alphabet_size == b.alphabet_size &&
         a.tree.target_size == b.tree.target_size &&
         a.tree.max_children == b.tree.max_children &&
         a.tree.max_depth == b.tree.max_depth &&
         a.catalog.num_books == b.catalog.num_books &&
         a.catalog.low_fraction == b.catalog.low_fraction &&
         a.catalog.max_authors == b.catalog.max_authors &&
         a.pattern.size == b.pattern.size &&
         a.pattern.wildcard_prob == b.pattern.wildcard_prob &&
         a.pattern.descendant_prob == b.pattern.descendant_prob &&
         a.pattern.branch_prob == b.pattern.branch_prob &&
         a.program.num_statements == b.program.num_statements &&
         a.program.num_variables == b.program.num_variables &&
         a.program.read_fraction == b.program.read_fraction &&
         a.program.insert_fraction == b.program.insert_fraction &&
         a.program.repeat_read_prob == b.program.repeat_read_prob;
}

}  // namespace workload
}  // namespace xmlup
