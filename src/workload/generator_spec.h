#ifndef XMLUP_WORKLOAD_GENERATOR_SPEC_H_
#define XMLUP_WORKLOAD_GENERATOR_SPEC_H_

#include <memory>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "workload/catalog_generator.h"
#include "workload/pattern_generator.h"
#include "workload/program_generator.h"
#include "workload/tree_generator.h"
#include "xml/symbol_table.h"

namespace xmlup {
namespace workload {

/// The one JSON-serializable description of every workload generator —
/// TreeGenOptions, CatalogOptions, PatternGenOptions and ProgramGenOptions
/// unified under a single spec, so a workload file configures all of them
/// in one "generator" block instead of each harness hand-rolling its own
/// knobs.
///
/// Alphabets are the one field the option structs cannot serialize: Labels
/// are dense ids minted by a SymbolTable, meaningless across processes.
/// The spec therefore carries `alphabet_size` (labels named a0..aN-1, the
/// RandomTreeGenerator::MakeAlphabet convention) and the Bind* methods
/// materialize the option structs against a concrete table. The embedded
/// alphabet vectors stay empty until then; ToJson never emits them.
///
/// JSON shape (all keys optional; absent keys keep the struct defaults):
///
///   {"alphabet_size": 3,
///    "tree":    {"target_size": 32, "max_children": 4, "max_depth": 12},
///    "catalog": {"num_books": 50, "low_fraction": 0.3, "max_authors": 3},
///    "pattern": {"size": 5, "wildcard_prob": 0.25,
///                "descendant_prob": 0.4, "branch_prob": 0.35},
///    "program": {"num_statements": 12, "num_variables": 2,
///                "read_fraction": 0.5, "insert_fraction": 0.3,
///                "repeat_read_prob": 0.3}}
///
/// Unknown keys are errors (a typo must not silently fall back to a
/// default), and FromJson(ToJson(spec)) == spec for every valid spec (the
/// round-trip test pins this).
struct GeneratorSpec {
  /// Labels a0..a{alphabet_size-1}; small alphabets make generated
  /// patterns overlap often, which is what exercises the detectors.
  size_t alphabet_size = 3;

  TreeGenOptions tree;
  CatalogOptions catalog;
  PatternGenOptions pattern;
  /// `program.pattern` is not independently configurable: BindProgram
  /// copies the spec's `pattern` block into it, so one pattern shape
  /// drives both standalone pattern generation and program generation.
  ProgramGenOptions program;

  static Result<GeneratorSpec> FromJson(const JsonValue& json);
  JsonValue ToJson() const;

  /// Interns the a0..aN-1 alphabet into `symbols`.
  std::vector<Label> MakeAlphabet(
      const std::shared_ptr<SymbolTable>& symbols) const;

  /// Materialized option structs with the alphabet filled in.
  TreeGenOptions BindTree(const std::shared_ptr<SymbolTable>& symbols) const;
  PatternGenOptions BindPattern(
      const std::shared_ptr<SymbolTable>& symbols) const;
  ProgramGenOptions BindProgram(
      const std::shared_ptr<SymbolTable>& symbols) const;

  friend bool operator==(const GeneratorSpec& a, const GeneratorSpec& b);
  friend bool operator!=(const GeneratorSpec& a, const GeneratorSpec& b) {
    return !(a == b);
  }
};

}  // namespace workload
}  // namespace xmlup

#endif  // XMLUP_WORKLOAD_GENERATOR_SPEC_H_
