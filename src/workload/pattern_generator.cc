#include "workload/pattern_generator.h"

namespace xmlup {

RandomPatternGenerator::RandomPatternGenerator(
    std::shared_ptr<SymbolTable> symbols, PatternGenOptions options)
    : symbols_(std::move(symbols)), options_(std::move(options)) {
  XMLUP_CHECK(!options_.alphabet.empty());
  XMLUP_CHECK(options_.size >= 1);
}

Label RandomPatternGenerator::RandomLabel(Rng* rng) const {
  if (rng->NextBool(options_.wildcard_prob)) return kWildcardLabel;
  return options_.alphabet[rng->NextBounded(options_.alphabet.size())];
}

Axis RandomPatternGenerator::RandomAxis(Rng* rng) const {
  return rng->NextBool(options_.descendant_prob) ? Axis::kDescendant
                                                 : Axis::kChild;
}

Pattern RandomPatternGenerator::GenerateLinear(Rng* rng) const {
  Pattern p(symbols_);
  PatternNodeId current = p.CreateRoot(RandomLabel(rng));
  for (size_t i = 1; i < options_.size; ++i) {
    current = p.AddChild(current, RandomLabel(rng), RandomAxis(rng));
  }
  p.SetOutput(current);
  return p;
}

Pattern RandomPatternGenerator::GenerateBranching(Rng* rng) const {
  Pattern p(symbols_);
  // Grow a trunk first, then sprinkle branches on random existing nodes.
  const size_t trunk_len =
      1 + static_cast<size_t>(rng->NextBounded(options_.size));
  std::vector<PatternNodeId> trunk;
  trunk.push_back(p.CreateRoot(RandomLabel(rng)));
  for (size_t i = 1; i < trunk_len; ++i) {
    trunk.push_back(p.AddChild(trunk.back(), RandomLabel(rng),
                               RandomAxis(rng)));
  }
  while (p.size() < options_.size) {
    if (!rng->NextBool(options_.branch_prob)) {
      // Extend a random node with a chain node anyway, to reach the size.
      const PatternNodeId at =
          static_cast<PatternNodeId>(rng->NextBounded(p.size()));
      p.AddChild(at, RandomLabel(rng), RandomAxis(rng));
      continue;
    }
    const PatternNodeId at =
        static_cast<PatternNodeId>(rng->NextBounded(p.size()));
    p.AddChild(at, RandomLabel(rng), RandomAxis(rng));
  }
  p.SetOutput(trunk[rng->NextBounded(trunk.size())]);
  return p;
}

Pattern RandomPatternGenerator::GenerateBranchingNonRootOutput(
    Rng* rng) const {
  for (;;) {
    Pattern p = GenerateBranching(rng);
    if (p.output() != p.root()) return p;
    if (p.size() == 1) continue;  // single-node pattern: output is the root
    // Move the output to a random non-root node.
    const PatternNodeId out =
        1 + static_cast<PatternNodeId>(rng->NextBounded(p.size() - 1));
    p.SetOutput(out);
    return p;
  }
}

}  // namespace xmlup
