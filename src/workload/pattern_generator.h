#ifndef XMLUP_WORKLOAD_PATTERN_GENERATOR_H_
#define XMLUP_WORKLOAD_PATTERN_GENERATOR_H_

#include <memory>
#include <vector>

#include "common/random.h"
#include "pattern/pattern.h"

namespace xmlup {

/// Random tree patterns over a small alphabet (small alphabets make
/// pattern pairs overlap often, which is what exercises the conflict
/// detectors).
struct PatternGenOptions {
  /// Number of nodes for linear patterns; approximate size for branching.
  size_t size = 5;
  /// Probability a node is labeled '*'.
  double wildcard_prob = 0.25;
  /// Probability an edge is a descendant (//) edge.
  double descendant_prob = 0.4;
  /// For branching patterns: probability a node spawns an extra branch.
  double branch_prob = 0.35;
  std::vector<Label> alphabet;
};

class RandomPatternGenerator {
 public:
  RandomPatternGenerator(std::shared_ptr<SymbolTable> symbols,
                         PatternGenOptions options);

  /// A random linear pattern (P^{//,*}) with exactly options.size nodes;
  /// output = leaf.
  Pattern GenerateLinear(Rng* rng) const;

  /// A random branching pattern (P^{//,[],*}) with ~options.size nodes;
  /// the output node is a random trunk node (never guaranteed non-root —
  /// use GenerateBranchingNonRootOutput for delete patterns).
  Pattern GenerateBranching(Rng* rng) const;

  /// As GenerateBranching but with O(p) != ROOT(p), suitable for DELETE.
  Pattern GenerateBranchingNonRootOutput(Rng* rng) const;

 private:
  Label RandomLabel(Rng* rng) const;
  Axis RandomAxis(Rng* rng) const;

  std::shared_ptr<SymbolTable> symbols_;
  PatternGenOptions options_;
};

}  // namespace xmlup

#endif  // XMLUP_WORKLOAD_PATTERN_GENERATOR_H_
