#include "workload/program_generator.h"

#include "xml/tree_algos.h"

namespace xmlup {

RandomProgramGenerator::RandomProgramGenerator(
    std::shared_ptr<SymbolTable> symbols, ProgramGenOptions options)
    : symbols_(symbols),
      options_(options),
      patterns_(symbols, options.pattern) {}

std::vector<std::string> RandomProgramGenerator::VariableNames() const {
  std::vector<std::string> names;
  for (size_t i = 0; i < options_.num_variables; ++i) {
    names.push_back("v" + std::to_string(i));
  }
  return names;
}

Program RandomProgramGenerator::Generate(Rng* rng) const {
  Program program;
  const std::vector<std::string> vars = VariableNames();
  std::vector<Pattern> read_pool;
  size_t read_counter = 0;

  for (size_t i = 0; i < options_.num_statements; ++i) {
    const std::string& var = vars[rng->NextBounded(vars.size())];
    const double roll = rng->NextDouble();
    if (roll < options_.read_fraction) {
      Pattern pattern =
          (!read_pool.empty() && rng->NextBool(options_.repeat_read_prob))
              ? read_pool[rng->NextBounded(read_pool.size())]
              : patterns_.GenerateLinear(rng);
      read_pool.push_back(pattern);
      program.AddRead("r" + std::to_string(read_counter++), var,
                      std::move(pattern));
    } else if (roll < options_.read_fraction + options_.insert_fraction) {
      // Inserted content: a tiny tree over the same alphabet.
      Tree content(symbols_);
      const Label label =
          options_.pattern
              .alphabet[rng->NextBounded(options_.pattern.alphabet.size())];
      const NodeId root = content.CreateRoot(label);
      if (rng->NextBool(0.5)) {
        content.AddChild(
            root,
            options_.pattern
                .alphabet[rng->NextBounded(options_.pattern.alphabet.size())]);
      }
      program.AddInsert(var, patterns_.GenerateLinear(rng),
                        std::make_shared<const Tree>(std::move(content)));
    } else {
      // Delete patterns must not select the root: use linear patterns of
      // length >= 2 (output is the leaf).
      Pattern pattern = patterns_.GenerateLinear(rng);
      if (pattern.size() < 2) {
        Pattern extended(symbols_);
        PatternNodeId root = extended.CreateRoot(pattern.label(pattern.root()));
        PatternNodeId leaf =
            extended.AddChild(root, kWildcardLabel, Axis::kDescendant);
        extended.SetOutput(leaf);
        pattern = std::move(extended);
      }
      program.AddDelete(var, std::move(pattern));
    }
  }
  return program;
}

}  // namespace xmlup
