#ifndef XMLUP_WORKLOAD_PROGRAM_GENERATOR_H_
#define XMLUP_WORKLOAD_PROGRAM_GENERATOR_H_

#include <memory>
#include <vector>

#include "analysis/program.h"
#include "common/random.h"
#include "workload/pattern_generator.h"

namespace xmlup {

/// Random straight-line update programs for the analysis benchmarks and
/// the optimizer's semantics-preservation property tests.
struct ProgramGenOptions {
  size_t num_statements = 12;
  size_t num_variables = 2;
  double read_fraction = 0.5;
  double insert_fraction = 0.3;  // remainder are deletes
  /// Probability a read re-uses a previously generated pattern verbatim
  /// (creates CSE opportunities).
  double repeat_read_prob = 0.3;
  PatternGenOptions pattern;
};

class RandomProgramGenerator {
 public:
  RandomProgramGenerator(std::shared_ptr<SymbolTable> symbols,
                         ProgramGenOptions options);

  Program Generate(Rng* rng) const;

  /// Names of the tree variables the generated programs use (v0..vK-1).
  std::vector<std::string> VariableNames() const;

 private:
  std::shared_ptr<SymbolTable> symbols_;
  ProgramGenOptions options_;
  RandomPatternGenerator patterns_;
};

}  // namespace xmlup

#endif  // XMLUP_WORKLOAD_PROGRAM_GENERATOR_H_
