#include "workload/tree_generator.h"

#include <string>

namespace xmlup {

RandomTreeGenerator::RandomTreeGenerator(std::shared_ptr<SymbolTable> symbols,
                                         TreeGenOptions options)
    : symbols_(std::move(symbols)), options_(std::move(options)) {
  XMLUP_CHECK(!options_.alphabet.empty());
}

Tree RandomTreeGenerator::Generate(Rng* rng) const {
  Tree tree(symbols_);
  auto random_label = [&] {
    return options_.alphabet[rng->NextBounded(options_.alphabet.size())];
  };
  const NodeId root = tree.CreateRoot(random_label());
  // Frontier-based growth: repeatedly pick a random expandable node and
  // give it a child, until the size target is met. Produces a good mix of
  // shallow-wide and deep-narrow shapes.
  struct Slot {
    NodeId node;
    size_t depth;
    size_t children;
  };
  std::vector<Slot> frontier = {{root, 0, 0}};
  while (tree.size() < options_.target_size && !frontier.empty()) {
    const size_t pick = rng->NextBounded(frontier.size());
    Slot& slot = frontier[pick];
    const NodeId child = tree.AddChild(slot.node, random_label());
    ++slot.children;
    const size_t child_depth = slot.depth + 1;
    if (slot.children >= options_.max_children) {
      frontier[pick] = frontier.back();
      frontier.pop_back();
    }
    if (child_depth < options_.max_depth) {
      frontier.push_back({child, child_depth, 0});
    }
  }
  return tree;
}

std::vector<Label> RandomTreeGenerator::MakeAlphabet(SymbolTable* symbols,
                                                     size_t count) {
  std::vector<Label> alphabet;
  alphabet.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    alphabet.push_back(symbols->Intern("a" + std::to_string(i)));
  }
  return alphabet;
}

}  // namespace xmlup
