#ifndef XMLUP_WORKLOAD_TREE_GENERATOR_H_
#define XMLUP_WORKLOAD_TREE_GENERATOR_H_

#include <memory>
#include <vector>

#include "common/random.h"
#include "xml/tree.h"

namespace xmlup {

/// Random unordered labeled trees for tests and benchmarks. Deterministic
/// given the Rng seed.
struct TreeGenOptions {
  /// Approximate target node count; generation stops adding children once
  /// reached.
  size_t target_size = 32;
  /// Maximum children per node.
  size_t max_children = 4;
  /// Maximum depth.
  size_t max_depth = 12;
  /// Labels are drawn uniformly from this alphabet.
  std::vector<Label> alphabet;
};

class RandomTreeGenerator {
 public:
  RandomTreeGenerator(std::shared_ptr<SymbolTable> symbols,
                      TreeGenOptions options);

  /// Generates one random tree. The alphabet must be non-empty.
  Tree Generate(Rng* rng) const;

  /// Convenience: an alphabet of `count` labels named a0..a{count-1}.
  static std::vector<Label> MakeAlphabet(SymbolTable* symbols, size_t count);

 private:
  std::shared_ptr<SymbolTable> symbols_;
  TreeGenOptions options_;
};

}  // namespace xmlup

#endif  // XMLUP_WORKLOAD_TREE_GENERATOR_H_
