#include "xml/isomorphism.h"

#include <algorithm>
#include <map>
#include <set>

namespace xmlup {
namespace {

/// Computes codes bottom-up without recursion (inputs may be deep chains).
/// Codes use label *names* so that trees over different SymbolTables
/// compare correctly.
std::string CodeOf(const Tree& tree, NodeId root) {
  // Postorder over the subtree.
  std::vector<NodeId> order;
  std::vector<NodeId> stack = {root};
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    order.push_back(n);
    for (NodeId c = tree.first_child(n); c != kNullNode;
         c = tree.next_sibling(c)) {
      stack.push_back(c);
    }
  }
  std::reverse(order.begin(), order.end());  // children before parents

  std::map<NodeId, std::string> codes;
  for (NodeId n : order) {
    std::vector<std::string> child_codes;
    for (NodeId c = tree.first_child(n); c != kNullNode;
         c = tree.next_sibling(c)) {
      child_codes.push_back(std::move(codes[c]));
      codes.erase(c);
    }
    std::sort(child_codes.begin(), child_codes.end());
    std::string code = "(";
    code += tree.LabelName(n);
    for (const std::string& cc : child_codes) code += cc;
    code += ")";
    codes[n] = std::move(code);
  }
  return codes[root];
}

}  // namespace

std::string CanonicalCode(const Tree& tree, NodeId node) {
  XMLUP_DCHECK(tree.alive(node));
  return CodeOf(tree, node);
}

std::string CanonicalCode(const Tree& tree) {
  if (!tree.has_root()) return "";
  return CanonicalCode(tree, tree.root());
}

bool Isomorphic(const Tree& t1, NodeId n1, const Tree& t2, NodeId n2) {
  return CanonicalCode(t1, n1) == CanonicalCode(t2, n2);
}

bool SetsIsomorphic(const Tree& t1, const std::vector<NodeId>& roots1,
                    const Tree& t2, const std::vector<NodeId>& roots2) {
  std::set<std::string> codes1;
  std::set<std::string> codes2;
  for (NodeId n : roots1) codes1.insert(CanonicalCode(t1, n));
  for (NodeId n : roots2) codes2.insert(CanonicalCode(t2, n));
  return codes1 == codes2;
}

bool MultisetsIsomorphic(const Tree& t1, const std::vector<NodeId>& roots1,
                         const Tree& t2, const std::vector<NodeId>& roots2) {
  std::vector<std::string> codes1;
  std::vector<std::string> codes2;
  for (NodeId n : roots1) codes1.push_back(CanonicalCode(t1, n));
  for (NodeId n : roots2) codes2.push_back(CanonicalCode(t2, n));
  std::sort(codes1.begin(), codes1.end());
  std::sort(codes2.begin(), codes2.end());
  return codes1 == codes2;
}

}  // namespace xmlup
