#ifndef XMLUP_XML_ISOMORPHISM_H_
#define XMLUP_XML_ISOMORPHISM_H_

#include <string>
#include <vector>

#include "xml/tree.h"

namespace xmlup {

/// Canonical code of the subtree rooted at `node`: label name plus the
/// sorted canonical codes of the children. Two subtrees are isomorphic in
/// the sense of the paper's Definition 1 iff their canonical codes are
/// equal. This is the labeled-tree variant of the Aho-Hopcroft-Ullman
/// canonization the paper cites for Lemma 1.
std::string CanonicalCode(const Tree& tree, NodeId node);

/// Canonical code of the whole tree.
std::string CanonicalCode(const Tree& tree);

/// Definition 1: t ≅ t' on the given subtree roots.
bool Isomorphic(const Tree& t1, NodeId n1, const Tree& t2, NodeId n2);

/// Definition 1, lifted to *sets* of trees exactly as the paper does: T ≅ T'
/// iff every tree of T is isomorphic to some tree of T' and vice versa
/// (set semantics — duplicates collapse).
bool SetsIsomorphic(const Tree& t1, const std::vector<NodeId>& roots1,
                    const Tree& t2, const std::vector<NodeId>& roots2);

/// Stricter multiset variant: the two collections contain the same
/// canonical codes with the same multiplicities. Useful for detecting
/// changes the set semantics hides (e.g. a deletion that removes one of two
/// isomorphic results).
bool MultisetsIsomorphic(const Tree& t1, const std::vector<NodeId>& roots1,
                         const Tree& t2, const std::vector<NodeId>& roots2);

}  // namespace xmlup

#endif  // XMLUP_XML_ISOMORPHISM_H_
