#include "xml/symbol_table.h"

#include "common/check.h"

namespace xmlup {

Label SymbolTable::Intern(std::string_view name) {
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  const Label label = static_cast<Label>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), label);
  return label;
}

Label SymbolTable::Lookup(std::string_view name) const {
  auto it = index_.find(std::string(name));
  return it == index_.end() ? kInvalidLabel : it->second;
}

const std::string& SymbolTable::Name(Label label) const {
  XMLUP_DCHECK(label < names_.size()) << "label " << label << " out of range";
  return names_[label];
}

Label SymbolTable::Fresh(std::string_view prefix) {
  for (;;) {
    std::string candidate(prefix);
    candidate += '$';
    candidate += std::to_string(fresh_counter_++);
    if (index_.find(candidate) == index_.end()) {
      return Intern(candidate);
    }
  }
}

const std::shared_ptr<SymbolTable>& SymbolTable::Shared() {
  static const std::shared_ptr<SymbolTable>& table =
      *new std::shared_ptr<SymbolTable>(new SymbolTable());
  return table;
}

}  // namespace xmlup
