#include "xml/symbol_table.h"

#include "common/check.h"

namespace xmlup {

Label SymbolTable::Intern(std::string_view name) {
  MutexLock lock(mu_);
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  const Label label = static_cast<Label>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), label);
  return label;
}

Label SymbolTable::Lookup(std::string_view name) const {
  MutexLock lock(mu_);
  auto it = index_.find(std::string(name));
  return it == index_.end() ? kInvalidLabel : it->second;
}

const std::string& SymbolTable::Name(Label label) const {
  MutexLock lock(mu_);
  XMLUP_DCHECK(label < names_.size()) << "label " << label << " out of range";
  return names_[label];
}

Label SymbolTable::Fresh(std::string_view prefix) {
  MutexLock lock(mu_);
  for (;;) {
    std::string candidate(prefix);
    candidate += '$';
    candidate += std::to_string(fresh_counter_++);
    if (index_.find(candidate) == index_.end()) {
      const Label label = static_cast<Label>(names_.size());
      names_.push_back(std::move(candidate));
      index_.emplace(names_.back(), label);
      return label;
    }
  }
}

size_t SymbolTable::size() const {
  MutexLock lock(mu_);
  return names_.size();
}

const std::shared_ptr<SymbolTable>& SymbolTable::Shared() {
  static const std::shared_ptr<SymbolTable>& table =
      *new std::shared_ptr<SymbolTable>(new SymbolTable());
  return table;
}

}  // namespace xmlup
