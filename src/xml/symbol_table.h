#ifndef XMLUP_XML_SYMBOL_TABLE_H_
#define XMLUP_XML_SYMBOL_TABLE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace xmlup {

/// An interned element label. The paper's alphabet Σ is infinite; labels are
/// minted on demand from a SymbolTable. Label values are dense indices and
/// only meaningful relative to the table that produced them.
using Label = uint32_t;

inline constexpr Label kInvalidLabel = 0xFFFFFFFFu;

/// Interns label strings to dense Label ids. Trees and patterns that are
/// compared or combined must share a SymbolTable (enforced with DCHECKs at
/// the comparison sites).
///
/// The table also supports minting *fresh* symbols — symbols guaranteed not
/// to have been interned before — which the paper's constructions rely on
/// ("a label α not used in R, I or X", Definition 10; the α/β/γ/δ labels of
/// the reductions in Section 5).
///
/// Thread safety: all methods are safe to call concurrently. The batch
/// conflict engine runs detectors (which mint fresh symbols) on a thread
/// pool over patterns sharing one table. References returned by Name()
/// stay valid for the table's lifetime (names are stored in a deque).
class SymbolTable {
 public:
  SymbolTable() = default;

  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// Returns the Label for `name`, interning it if new.
  Label Intern(std::string_view name);

  /// Returns the Label for `name`, or kInvalidLabel if never interned.
  Label Lookup(std::string_view name) const;

  /// Returns the string for a label minted by this table.
  const std::string& Name(Label label) const;

  /// Mints a label whose name (`<prefix>$<n>`) has never been interned.
  Label Fresh(std::string_view prefix);

  /// Number of distinct labels interned so far.
  size_t size() const;

  /// Convenience: a process-local table for examples and tests that do not
  /// need isolation.
  static const std::shared_ptr<SymbolTable>& Shared();

 private:
  /// Guards every field; all methods are lock-then-touch. Leaf lock:
  /// nothing is called out to while it is held.
  mutable Mutex mu_;
  std::unordered_map<std::string, Label> index_ XMLUP_GUARDED_BY(mu_);
  /// Deque, not vector: growth never relocates stored strings, so Name()
  /// references stay valid after the lock is dropped.
  std::deque<std::string> names_ XMLUP_GUARDED_BY(mu_);
  uint64_t fresh_counter_ XMLUP_GUARDED_BY(mu_) = 0;
};

/// True iff `a` and `b` are the same table, i.e. their Labels are mutually
/// comparable. Labels have no cross-table meaning, so this is deliberately
/// an identity check, not a structural one — two tables that happened to
/// intern the same names in the same order are still different tables.
/// Used by the comparison/interning sites (PatternStore::Intern rejects
/// patterns whose table is not the store's with this predicate).
inline bool SameSymbolTable(const SymbolTable* a, const SymbolTable* b) {
  return a == b;
}
inline bool SameSymbolTable(const std::shared_ptr<SymbolTable>& a,
                            const std::shared_ptr<SymbolTable>& b) {
  return a.get() == b.get();
}

}  // namespace xmlup

#endif  // XMLUP_XML_SYMBOL_TABLE_H_
