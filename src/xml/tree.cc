#include "xml/tree.h"

#include <functional>

namespace xmlup {

Tree::Tree(std::shared_ptr<SymbolTable> symbols)
    : symbols_(std::move(symbols)) {
  XMLUP_CHECK(symbols_ != nullptr);
}

NodeId Tree::CreateRoot(Label label) {
  XMLUP_CHECK(root_ == kNullNode);
  root_ = AllocNode(label, kNullNode);
  ++version_;
  return root_;
}

NodeId Tree::AllocNode(Label label, NodeId parent) {
  Node n;
  n.label = label;
  n.parent = parent;
  n.alive = true;
  nodes_.push_back(n);
  ++live_count_;
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Tree::LinkChild(NodeId parent, NodeId child) {
  // Append at the tail of the child list: O(1) and keeps document order.
  Node& p = node(parent);
  Node& c = node(child);
  c.prev_sibling = p.last_child;
  c.next_sibling = kNullNode;
  if (p.last_child != kNullNode) {
    node(p.last_child).next_sibling = child;
  } else {
    p.first_child = child;
  }
  p.last_child = child;
  c.parent = parent;
}

NodeId Tree::AddChild(NodeId parent, Label label) {
  XMLUP_DCHECK(alive(parent)) << "AddChild on dead node";
  const NodeId child = AllocNode(label, parent);
  LinkChild(parent, child);
  ++version_;
  return child;
}

NodeId Tree::GraftCopy(NodeId parent, const Tree& source, NodeId source_node) {
  XMLUP_DCHECK(alive(parent));
  XMLUP_DCHECK(source.alive(source_node));
  // Iterative preorder copy; recursion depth is unbounded for adversarial
  // inputs so an explicit stack is used.
  const NodeId copy_root = AddChild(parent, source.label(source_node));
  std::vector<std::pair<NodeId, NodeId>> stack;  // (source node, dest node)
  stack.emplace_back(source_node, copy_root);
  while (!stack.empty()) {
    auto [src, dst] = stack.back();
    stack.pop_back();
    for (NodeId c = source.first_child(src); c != kNullNode;
         c = source.next_sibling(c)) {
      const NodeId dst_child = AddChild(dst, source.label(c));
      stack.emplace_back(c, dst_child);
    }
  }
  ++version_;
  return copy_root;
}

void Tree::DeleteSubtree(NodeId target) {
  XMLUP_DCHECK(alive(target)) << "DeleteSubtree on dead node";
  XMLUP_CHECK(target != root_);
  // Unlink from the sibling list.
  Node& t = node(target);
  if (t.prev_sibling != kNullNode) {
    node(t.prev_sibling).next_sibling = t.next_sibling;
  } else {
    node(t.parent).first_child = t.next_sibling;
  }
  if (t.next_sibling != kNullNode) {
    node(t.next_sibling).prev_sibling = t.prev_sibling;
  } else {
    node(t.parent).last_child = t.prev_sibling;
  }
  t.next_sibling = kNullNode;
  t.prev_sibling = kNullNode;
  // Tombstone the whole subtree.
  std::vector<NodeId> stack = {target};
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    for (NodeId c = first_child(n); c != kNullNode; c = next_sibling(c)) {
      stack.push_back(c);
    }
    node(n).alive = false;
    --live_count_;
  }
  ++version_;
}

std::vector<NodeId> Tree::Children(NodeId n) const {
  std::vector<NodeId> out;
  for (NodeId c = first_child(n); c != kNullNode; c = next_sibling(c)) {
    out.push_back(c);
  }
  return out;
}

size_t Tree::ChildCount(NodeId n) const {
  size_t count = 0;
  for (NodeId c = first_child(n); c != kNullNode; c = next_sibling(c)) {
    ++count;
  }
  return count;
}

bool Tree::IsProperAncestor(NodeId a, NodeId b) const {
  for (NodeId n = parent(b); n != kNullNode; n = parent(n)) {
    if (n == a) return true;
  }
  return false;
}

size_t Tree::Depth(NodeId n) const {
  size_t depth = 0;
  for (NodeId p = parent(n); p != kNullNode; p = parent(p)) ++depth;
  return depth;
}

std::vector<NodeId> Tree::SubtreeNodes(NodeId n) const {
  XMLUP_DCHECK(alive(n));
  std::vector<NodeId> out;
  std::vector<NodeId> stack = {n};
  while (!stack.empty()) {
    const NodeId cur = stack.back();
    stack.pop_back();
    out.push_back(cur);
    for (NodeId c = first_child(cur); c != kNullNode; c = next_sibling(c)) {
      stack.push_back(c);
    }
  }
  return out;
}

std::vector<NodeId> Tree::PreOrder() const {
  if (root_ == kNullNode) return {};
  return SubtreeNodes(root_);
}

std::vector<NodeId> Tree::PostOrder() const {
  if (root_ == kNullNode) return {};
  // Two-stack postorder.
  std::vector<NodeId> stack = {root_};
  std::vector<NodeId> out;
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    out.push_back(n);
    for (NodeId c = first_child(n); c != kNullNode; c = next_sibling(c)) {
      stack.push_back(c);
    }
  }
  std::reverse(out.begin(), out.end());
  return out;
}

Status Tree::Validate() const {
  if (root_ == kNullNode) {
    return live_count_ == 0
               ? Status::OK()
               : Status::Internal("live nodes without a root");
  }
  if (!alive(root_)) return Status::Internal("root is dead");
  if (parent(root_) != kNullNode) return Status::Internal("root has parent");
  size_t seen = 0;
  std::vector<NodeId> stack = {root_};
  std::vector<bool> visited(nodes_.size(), false);
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    if (visited[n]) return Status::Internal("cycle or shared node detected");
    visited[n] = true;
    if (!alive(n)) return Status::Internal("dead node reachable from root");
    ++seen;
    NodeId prev = kNullNode;
    for (NodeId c = first_child(n); c != kNullNode; c = next_sibling(c)) {
      if (parent(c) != n) return Status::Internal("child/parent mismatch");
      if (node(c).prev_sibling != prev) {
        return Status::Internal("sibling links inconsistent");
      }
      prev = c;
      stack.push_back(c);
    }
    if (node(n).last_child != prev) {
      return Status::Internal("last_child link inconsistent");
    }
  }
  if (seen != live_count_) {
    return Status::Internal("live_count does not match reachable nodes");
  }
  for (NodeId n = 0; n < nodes_.size(); ++n) {
    if (nodes_[n].alive && !visited[n]) {
      return Status::Internal("live node unreachable from root");
    }
  }
  return Status::OK();
}

}  // namespace xmlup
