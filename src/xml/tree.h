#ifndef XMLUP_XML_TREE_H_
#define XMLUP_XML_TREE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "xml/symbol_table.h"

namespace xmlup {

/// Identifies a node within one Tree. NodeIds are stable for the lifetime of
/// the tree: mutation never renumbers live nodes, which is what makes the
/// paper's reference-based (node identity) conflict semantics directly
/// expressible — "the same node" before and after an update is the same
/// NodeId.
using NodeId = uint32_t;

inline constexpr NodeId kNullNode = 0xFFFFFFFFu;

/// An unordered, unranked labeled tree over Σ (paper §2.1), stored as an
/// arena of nodes with first-child / next-sibling links.
///
/// Mutation model:
///  - AddChild / GraftCopy create nodes in fresh slots (insertion).
///  - DeleteSubtree unlinks a subtree and tombstones its slots (deletion).
///    Tombstoned ids are never reused, so a NodeId observed before a
///    mutation still denotes the same (possibly dead) node afterwards.
///
/// Although the data model is unordered, child lists have a deterministic
/// stored order so that traversals, serialization and tests are
/// reproducible. No algorithm in the library depends on that order.
class Tree {
 public:
  explicit Tree(std::shared_ptr<SymbolTable> symbols);

  /// Trees are heavyweight, identity-carrying objects: move-only.
  /// Use CopyTree() in tree_algos.h for explicit deep copies.
  Tree(const Tree&) = delete;
  Tree& operator=(const Tree&) = delete;
  Tree(Tree&&) = default;
  Tree& operator=(Tree&&) = default;

  const std::shared_ptr<SymbolTable>& symbols() const { return symbols_; }

  /// Creates the root node. Must be called exactly once, before any other
  /// mutation.
  NodeId CreateRoot(Label label);

  /// True once CreateRoot has been called.
  bool has_root() const { return root_ != kNullNode; }

  NodeId root() const {
    XMLUP_DCHECK(root_ != kNullNode);
    return root_;
  }

  /// Appends a new node labeled `label` as a child of `parent`.
  NodeId AddChild(NodeId parent, Label label);

  /// Inserts a deep copy of the subtree of `source` rooted at `source_node`
  /// as a new child of `parent`. Returns the id of the copy's root. The
  /// fresh copy's nodes are disjoint from all existing nodes, matching the
  /// paper's INSERT semantics ("a fresh copy of X").
  NodeId GraftCopy(NodeId parent, const Tree& source, NodeId source_node);

  /// Unlinks the subtree rooted at `node` and tombstones all its nodes.
  /// `node` must not be the root (the paper requires deletion results to be
  /// trees; DELETE patterns enforce O(p) != ROOT(p)).
  void DeleteSubtree(NodeId node);

  /// --- Node accessors (valid for live and tombstoned ids) ---
  Label label(NodeId n) const { return node(n).label; }
  bool alive(NodeId n) const { return node(n).alive; }

  /// --- Structure accessors (meaningful for live nodes) ---
  NodeId parent(NodeId n) const { return node(n).parent; }
  NodeId first_child(NodeId n) const { return node(n).first_child; }
  NodeId next_sibling(NodeId n) const { return node(n).next_sibling; }

  /// Number of live nodes (|t| in the paper).
  size_t size() const { return live_count_; }

  /// Total slots ever allocated (live + tombstoned); NodeIds are < capacity.
  size_t capacity() const { return nodes_.size(); }

  /// Monotonic counter bumped by every mutation; used by snapshots to
  /// detect staleness.
  uint64_t version() const { return version_; }

  /// Children of `n`, in stored order.
  std::vector<NodeId> Children(NodeId n) const;

  /// Number of children of `n`.
  size_t ChildCount(NodeId n) const;

  /// True if `a` is a proper ancestor of `b` (CHILD+ in the paper's DESC).
  bool IsProperAncestor(NodeId a, NodeId b) const;

  /// Depth of `n` (root has depth 0).
  size_t Depth(NodeId n) const;

  /// Live nodes of the subtree rooted at `n` (SUBTREE_n in the paper),
  /// in preorder.
  std::vector<NodeId> SubtreeNodes(NodeId n) const;

  /// All live nodes in preorder / postorder from the root.
  std::vector<NodeId> PreOrder() const;
  std::vector<NodeId> PostOrder() const;

  /// Label name lookup convenience.
  const std::string& LabelName(NodeId n) const {
    return symbols_->Name(label(n));
  }

  /// Verifies structural invariants (link symmetry, acyclicity, live
  /// counts). Used by tests and after complex mutations in debug builds.
  Status Validate() const;

 private:
  struct Node {
    Label label = kInvalidLabel;
    NodeId parent = kNullNode;
    NodeId first_child = kNullNode;
    NodeId last_child = kNullNode;
    NodeId next_sibling = kNullNode;
    NodeId prev_sibling = kNullNode;
    bool alive = false;
  };

  const Node& node(NodeId n) const {
    XMLUP_DCHECK(n < nodes_.size()) << "node id out of range";
    return nodes_[n];
  }
  Node& node(NodeId n) {
    XMLUP_DCHECK(n < nodes_.size()) << "node id out of range";
    return nodes_[n];
  }

  NodeId AllocNode(Label label, NodeId parent);
  void LinkChild(NodeId parent, NodeId child);

  std::shared_ptr<SymbolTable> symbols_;
  std::vector<Node> nodes_;
  NodeId root_ = kNullNode;
  size_t live_count_ = 0;
  uint64_t version_ = 0;
};

}  // namespace xmlup

#endif  // XMLUP_XML_TREE_H_
