#include "xml/tree_algos.h"

#include <algorithm>

namespace xmlup {

namespace {

/// Copies the subtree of `source` at `src_root` into `dest` (which must be
/// empty), filling `mapping` if provided.
void CopyInto(const Tree& source, NodeId src_root, Tree* dest,
              std::unordered_map<NodeId, NodeId>* mapping) {
  const NodeId dst_root = dest->CreateRoot(source.label(src_root));
  if (mapping != nullptr) (*mapping)[src_root] = dst_root;
  std::vector<std::pair<NodeId, NodeId>> stack = {{src_root, dst_root}};
  while (!stack.empty()) {
    auto [src, dst] = stack.back();
    stack.pop_back();
    for (NodeId c = source.first_child(src); c != kNullNode;
         c = source.next_sibling(c)) {
      const NodeId dst_child = dest->AddChild(dst, source.label(c));
      if (mapping != nullptr) (*mapping)[c] = dst_child;
      stack.emplace_back(c, dst_child);
    }
  }
}

}  // namespace

Tree CopyTree(const Tree& source, std::unordered_map<NodeId, NodeId>* mapping) {
  Tree dest(source.symbols());
  if (source.has_root()) CopyInto(source, source.root(), &dest, mapping);
  return dest;
}

Tree CopySubtree(const Tree& source, NodeId subtree_root,
                 std::unordered_map<NodeId, NodeId>* mapping) {
  XMLUP_DCHECK(source.alive(subtree_root));
  Tree dest(source.symbols());
  CopyInto(source, subtree_root, &dest, mapping);
  return dest;
}

Tree BuildPathTree(const std::shared_ptr<SymbolTable>& symbols,
                   const std::vector<Label>& labels) {
  XMLUP_CHECK(!labels.empty());
  Tree tree(symbols);
  NodeId current = tree.CreateRoot(labels[0]);
  for (size_t i = 1; i < labels.size(); ++i) {
    current = tree.AddChild(current, labels[i]);
  }
  return tree;
}

bool OrderedEqual(const Tree& t1, const Tree& t2) {
  if (t1.has_root() != t2.has_root()) return false;
  if (!t1.has_root()) return true;
  std::vector<std::pair<NodeId, NodeId>> stack = {{t1.root(), t2.root()}};
  while (!stack.empty()) {
    auto [a, b] = stack.back();
    stack.pop_back();
    if (t1.LabelName(a) != t2.LabelName(b)) return false;
    NodeId ca = t1.first_child(a);
    NodeId cb = t2.first_child(b);
    while (ca != kNullNode && cb != kNullNode) {
      stack.emplace_back(ca, cb);
      ca = t1.next_sibling(ca);
      cb = t2.next_sibling(cb);
    }
    if (ca != kNullNode || cb != kNullNode) return false;
  }
  return true;
}

SubtreeSnapshot SnapshotSubtree(const Tree& tree, NodeId root) {
  SubtreeSnapshot snapshot;
  snapshot.root = root;
  for (NodeId n : tree.SubtreeNodes(root)) {
    snapshot.edges.emplace_back(n, n == root ? kNullNode : tree.parent(n));
  }
  std::sort(snapshot.edges.begin(), snapshot.edges.end());
  return snapshot;
}

bool SnapshotUnchanged(const Tree& tree, const SubtreeSnapshot& snapshot) {
  if (!tree.alive(snapshot.root)) return false;
  SubtreeSnapshot now = SnapshotSubtree(tree, snapshot.root);
  return now.edges == snapshot.edges;
}

}  // namespace xmlup
