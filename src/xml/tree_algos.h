#ifndef XMLUP_XML_TREE_ALGOS_H_
#define XMLUP_XML_TREE_ALGOS_H_

#include <unordered_map>
#include <vector>

#include "xml/tree.h"

namespace xmlup {

/// Deep copy of `source`. If `mapping` is non-null, it receives
/// source-NodeId → copy-NodeId for every live node.
Tree CopyTree(const Tree& source,
              std::unordered_map<NodeId, NodeId>* mapping = nullptr);

/// Deep copy of the subtree of `source` rooted at `subtree_root`, as a new
/// standalone tree.
Tree CopySubtree(const Tree& source, NodeId subtree_root,
                 std::unordered_map<NodeId, NodeId>* mapping = nullptr);

/// Builds a path tree: labels[0] is the root, labels[i+1] a child of
/// labels[i]. Requires a non-empty label list.
Tree BuildPathTree(const std::shared_ptr<SymbolTable>& symbols,
                   const std::vector<Label>& labels);

/// Structural equality *including stored child order*. The data model is
/// unordered — use Isomorphic() for model-level equality — but ordered
/// equality is handy for serialization round-trip tests.
bool OrderedEqual(const Tree& t1, const Tree& t2);

/// Snapshot of the (node, parent) structure of one subtree, used by the
/// tree-conflict checker to detect whether a subtree was modified in place.
struct SubtreeSnapshot {
  NodeId root = kNullNode;
  /// Pairs (node, parent-within-subtree or kNullNode for the root), sorted.
  std::vector<std::pair<NodeId, NodeId>> edges;
};

SubtreeSnapshot SnapshotSubtree(const Tree& tree, NodeId root);

/// True if the snapshot still exactly describes the live subtree at
/// `snapshot.root` (same node set, same parent links, all alive).
bool SnapshotUnchanged(const Tree& tree, const SubtreeSnapshot& snapshot);

}  // namespace xmlup

#endif  // XMLUP_XML_TREE_ALGOS_H_
