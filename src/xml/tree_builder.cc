#include "xml/tree_builder.h"

namespace xmlup {

TreeBuilder::TreeBuilder(std::shared_ptr<SymbolTable> symbols)
    : tree_(std::move(symbols)) {}

TreeBuilder& TreeBuilder::Begin(std::string_view name) {
  if (error_) return *this;
  const Label label = tree_.symbols()->Intern(name);
  if (!tree_.has_root()) {
    open_.push_back(tree_.CreateRoot(label));
    return *this;
  }
  if (open_.empty()) {
    error_ = true;
    error_message_ = "Begin() after the root element was closed";
    return *this;
  }
  open_.push_back(tree_.AddChild(open_.back(), label));
  return *this;
}

TreeBuilder& TreeBuilder::Leaf(std::string_view name) {
  return Begin(name).End();
}

TreeBuilder& TreeBuilder::End() {
  if (error_) return *this;
  if (open_.empty()) {
    error_ = true;
    error_message_ = "End() without a matching Begin()";
    return *this;
  }
  open_.pop_back();
  return *this;
}

Result<Tree> TreeBuilder::Build() && {
  if (error_) return Status::InvalidArgument(error_message_);
  if (!tree_.has_root()) {
    return Status::InvalidArgument("Build() without any elements");
  }
  return std::move(tree_);
}

}  // namespace xmlup
