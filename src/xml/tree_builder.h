#ifndef XMLUP_XML_TREE_BUILDER_H_
#define XMLUP_XML_TREE_BUILDER_H_

#include <memory>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "xml/tree.h"

namespace xmlup {

/// Fluent construction of trees, mainly for tests and examples:
///
///   TreeBuilder b(symbols);
///   b.Begin("site").Begin("book").Leaf("quantity").End().End();
///   Tree t = std::move(b).Build().value();
///
/// Begin(name) opens an element (the first Begin creates the root), End()
/// closes the innermost open element, Leaf(name) is Begin+End.
class TreeBuilder {
 public:
  explicit TreeBuilder(std::shared_ptr<SymbolTable> symbols);

  TreeBuilder& Begin(std::string_view name);
  TreeBuilder& Leaf(std::string_view name);
  TreeBuilder& End();

  /// Returns the finished tree. Fails if no root was created or elements
  /// remain open (other than the root, which Build closes implicitly).
  Result<Tree> Build() &&;

 private:
  Tree tree_;
  std::vector<NodeId> open_;
  bool error_ = false;
  std::string error_message_;
};

}  // namespace xmlup

#endif  // XMLUP_XML_TREE_BUILDER_H_
