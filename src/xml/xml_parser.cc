#include "xml/xml_parser.h"

#include <string>
#include <vector>

#include "common/string_util.h"

namespace xmlup {
namespace {

bool IsNameStartChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || (c >= '0' && c <= '9') || c == '-' || c == '.';
}

bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

/// Recursive-descent parser over a single input buffer. Tracks line/column
/// for error messages. Elements become tree nodes; attributes, text,
/// comments, PIs and CDATA are validated syntactically and discarded.
class Parser {
 public:
  Parser(std::string_view input, std::shared_ptr<SymbolTable> symbols,
         const XmlParseOptions& options)
      : input_(input), options_(options), tree_(std::move(symbols)) {}

  Result<Tree> Parse() {
    SkipProlog();
    XMLUP_RETURN_NOT_OK(ParseElement(kNullNode));
    SkipMisc();
    if (!AtEnd()) {
      return Error("trailing content after the document element");
    }
    return std::move(tree_);
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  bool PeekIs(std::string_view s) const {
    return input_.substr(pos_, s.size()) == s;
  }

  void Advance() {
    if (input_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  void AdvanceBy(size_t n) {
    for (size_t i = 0; i < n && !AtEnd(); ++i) Advance();
  }

  Status Error(std::string message) const {
    return Status::ParseError("line " + std::to_string(line_) + ", column " +
                              std::to_string(column_) + ": " +
                              std::move(message));
  }

  void SkipWhitespace() {
    while (!AtEnd() && IsSpace(Peek())) Advance();
  }

  /// Skips comments, PIs, DOCTYPE and whitespace.
  void SkipMisc() {
    for (;;) {
      SkipWhitespace();
      if (PeekIs("<!--")) {
        SkipUntil("-->");
      } else if (PeekIs("<?")) {
        SkipUntil("?>");
      } else if (PeekIs("<!DOCTYPE")) {
        // DOCTYPE without an internal subset; skip to the closing '>'.
        while (!AtEnd() && Peek() != '>') Advance();
        if (!AtEnd()) Advance();
      } else {
        return;
      }
    }
  }

  void SkipProlog() { SkipMisc(); }

  void SkipUntil(std::string_view terminator) {
    while (!AtEnd() && !PeekIs(terminator)) Advance();
    AdvanceBy(terminator.size());
  }

  Result<std::string> ParseName() {
    if (AtEnd() || !IsNameStartChar(Peek())) {
      return Error("expected a name");
    }
    const size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) Advance();
    return std::string(input_.substr(start, pos_ - start));
  }

  Status ParseAttributes() {
    for (;;) {
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated start tag");
      if (Peek() == '>' || Peek() == '/') return Status::OK();
      if (!options_.ignore_attributes) {
        return Error("attributes are not allowed by the parse options");
      }
      XMLUP_ASSIGN_OR_RETURN(std::string name, ParseName());
      (void)name;
      SkipWhitespace();
      if (AtEnd() || Peek() != '=') return Error("expected '=' in attribute");
      Advance();
      SkipWhitespace();
      if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
        return Error("expected quoted attribute value");
      }
      const char quote = Peek();
      Advance();
      while (!AtEnd() && Peek() != quote) Advance();
      if (AtEnd()) return Error("unterminated attribute value");
      Advance();
    }
  }

  Status ParseElement(NodeId parent) {
    if (AtEnd() || Peek() != '<') return Error("expected '<'");
    Advance();
    XMLUP_ASSIGN_OR_RETURN(std::string name, ParseName());
    const Label label = tree_.symbols()->Intern(name);
    const NodeId node = parent == kNullNode
                            ? tree_.CreateRoot(label)
                            : tree_.AddChild(parent, label);
    XMLUP_RETURN_NOT_OK(ParseAttributes());
    if (Peek() == '/') {
      Advance();
      if (AtEnd() || Peek() != '>') return Error("expected '>' after '/'");
      Advance();
      return Status::OK();
    }
    Advance();  // consume '>'
    return ParseContent(node, name);
  }

  Status ParseContent(NodeId node, const std::string& name) {
    for (;;) {
      if (AtEnd()) return Error("unexpected end of input in <" + name + ">");
      if (Peek() == '<') {
        if (PeekIs("</")) {
          AdvanceBy(2);
          XMLUP_ASSIGN_OR_RETURN(std::string close, ParseName());
          if (close != name) {
            return Error("mismatched end tag </" + close + ">, expected </" +
                         name + ">");
          }
          SkipWhitespace();
          if (AtEnd() || Peek() != '>') return Error("expected '>'");
          Advance();
          return Status::OK();
        }
        if (PeekIs("<!--")) {
          SkipUntil("-->");
          continue;
        }
        if (PeekIs("<![CDATA[")) {
          if (!options_.ignore_text) {
            return Error("text content is not allowed by the parse options");
          }
          SkipUntil("]]>");
          continue;
        }
        if (PeekIs("<?")) {
          SkipUntil("?>");
          continue;
        }
        XMLUP_RETURN_NOT_OK(ParseElement(node));
        continue;
      }
      // Text content.
      const size_t start = pos_;
      while (!AtEnd() && Peek() != '<') Advance();
      if (!options_.ignore_text) {
        const std::string_view text =
            StripWhitespace(input_.substr(start, pos_ - start));
        if (!text.empty()) {
          return Error("text content is not allowed by the parse options");
        }
      }
    }
  }

  std::string_view input_;
  XmlParseOptions options_;
  Tree tree_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t column_ = 1;
};

}  // namespace

Result<Tree> ParseXml(std::string_view input,
                      std::shared_ptr<SymbolTable> symbols,
                      const XmlParseOptions& options) {
  Parser parser(input, std::move(symbols), options);
  return parser.Parse();
}

}  // namespace xmlup
