#ifndef XMLUP_XML_XML_PARSER_H_
#define XMLUP_XML_XML_PARSER_H_

#include <memory>
#include <string_view>

#include "common/result.h"
#include "xml/tree.h"

namespace xmlup {

/// Options for the XML subset parser.
struct XmlParseOptions {
  /// The paper's data model has element labels only. By default attributes
  /// and text content are accepted and discarded; set to false to reject
  /// documents that contain them.
  bool ignore_attributes = true;
  bool ignore_text = true;
};

/// Parses an XML document (subset: elements, attributes, text, comments,
/// CDATA, XML declaration — everything except elements is discarded per the
/// paper's model) into a Tree using `symbols` for label interning.
///
/// This is a self-contained recursive-descent parser: the reproduction
/// builds its substrate from scratch rather than depending on libxml2.
Result<Tree> ParseXml(std::string_view input,
                      std::shared_ptr<SymbolTable> symbols,
                      const XmlParseOptions& options = {});

}  // namespace xmlup

#endif  // XMLUP_XML_XML_PARSER_H_
