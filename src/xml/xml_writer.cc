#include "xml/xml_writer.h"

#include <string>

namespace xmlup {
namespace {

void WriteNode(const Tree& tree, NodeId node, const XmlWriteOptions& options,
               int depth, std::string* out) {
  const std::string& name = tree.LabelName(node);
  if (options.indent > 0) {
    out->append(static_cast<size_t>(depth * options.indent), ' ');
  }
  out->push_back('<');
  out->append(name);
  if (tree.first_child(node) == kNullNode) {
    out->append("/>");
    if (options.indent > 0) out->push_back('\n');
    return;
  }
  out->push_back('>');
  if (options.indent > 0) out->push_back('\n');
  for (NodeId c = tree.first_child(node); c != kNullNode;
       c = tree.next_sibling(c)) {
    WriteNode(tree, c, options, depth + 1, out);
  }
  if (options.indent > 0) {
    out->append(static_cast<size_t>(depth * options.indent), ' ');
  }
  out->append("</");
  out->append(name);
  out->push_back('>');
  if (options.indent > 0) out->push_back('\n');
}

}  // namespace

std::string WriteXml(const Tree& tree, NodeId node,
                     const XmlWriteOptions& options) {
  std::string out;
  WriteNode(tree, node, options, 0, &out);
  return out;
}

std::string WriteXml(const Tree& tree, const XmlWriteOptions& options) {
  if (!tree.has_root()) return "";
  return WriteXml(tree, tree.root(), options);
}

}  // namespace xmlup
