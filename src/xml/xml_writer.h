#ifndef XMLUP_XML_XML_WRITER_H_
#define XMLUP_XML_XML_WRITER_H_

#include <string>

#include "xml/tree.h"

namespace xmlup {

struct XmlWriteOptions {
  /// Pretty-print with this many spaces per depth level; 0 emits a single
  /// line.
  int indent = 0;
};

/// Serializes the subtree rooted at `node` as XML. Children appear in
/// stored order (the data model is unordered; serialization order is an
/// implementation detail chosen for reproducibility).
std::string WriteXml(const Tree& tree, NodeId node,
                     const XmlWriteOptions& options = {});

/// Serializes the whole tree.
std::string WriteXml(const Tree& tree, const XmlWriteOptions& options = {});

}  // namespace xmlup

#endif  // XMLUP_XML_XML_WRITER_H_
