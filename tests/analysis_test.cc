#include "analysis/optimizer.h"

#include "analysis/interpreter.h"
#include "common/random.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "workload/program_generator.h"
#include "workload/tree_generator.h"
#include "xml/isomorphism.h"
#include "xml/tree_algos.h"

namespace xmlup {
namespace {

using testing_util::NewSymbols;
using testing_util::Xml;
using testing_util::Xp;

class AnalysisTest : public ::testing::Test {
 protected:
  std::shared_ptr<SymbolTable> symbols_ = NewSymbols();

  std::shared_ptr<const Tree> Content(const char* xml) {
    return std::make_shared<const Tree>(Xml(xml, symbols_));
  }
};

TEST_F(AnalysisTest, InterpreterRunsPaperProgram) {
  // §1:  y = read $x//A ; insert $x/B, <C/> ; z = read $x//C
  Program program;
  program.AddRead("y", "x", Xp("x//A", symbols_));
  program.AddInsert("x", Xp("x/B", symbols_), Content("<C/>"));
  program.AddRead("z", "x", Xp("x//C", symbols_));

  TreeStore store(symbols_);
  store.Put("x", Xml("<x><A/><B/></x>", symbols_));
  Result<ExecutionTrace> trace = Execute(program, &store);
  ASSERT_TRUE(trace.ok()) << trace.status();
  ASSERT_EQ(trace->reads.size(), 2u);
  EXPECT_EQ(trace->reads[0].nodes.size(), 1u);  // one A
  EXPECT_EQ(trace->reads[1].nodes.size(), 1u);  // the inserted C
  EXPECT_EQ(store.Get("x").size(), 4u);
}

TEST_F(AnalysisTest, TreeStoreBasics) {
  TreeStore store(symbols_);
  EXPECT_FALSE(store.Has("x"));
  store.Put("x", Xml("<a><b/></a>", symbols_));
  ASSERT_TRUE(store.Has("x"));
  EXPECT_EQ(store.Get("x").size(), 2u);
  // Put replaces.
  store.Put("x", Xml("<a/>", symbols_));
  EXPECT_EQ(store.Get("x").size(), 1u);
  // Clones are deep and independent.
  TreeStore clone = store.Clone();
  clone.GetMutable("x")->AddChild(clone.Get("x").root(),
                                  symbols_->Intern("new"));
  EXPECT_EQ(store.Get("x").size(), 1u);
  EXPECT_EQ(clone.Get("x").size(), 2u);
}

TEST_F(AnalysisTest, InterpreterReportsUnknownVariable) {
  Program program;
  program.AddRead("y", "ghost", Xp("a", symbols_));
  TreeStore store(symbols_);
  EXPECT_FALSE(Execute(program, &store).ok());
}

TEST_F(AnalysisTest, InterpreterRejectsRootDelete) {
  Program program;
  program.AddDelete("x", Xp("x", symbols_));
  TreeStore store(symbols_);
  store.Put("x", Xml("<x/>", symbols_));
  EXPECT_FALSE(Execute(program, &store).ok());
}

TEST_F(AnalysisTest, DependenceDifferentVariablesIndependent) {
  Program program;
  program.AddRead("y", "x1", Xp("a//b", symbols_));
  program.AddInsert("x2", Xp("a//b", symbols_), Content("<b/>"));
  DependenceAnalyzer analyzer;
  const DependenceAnalysisResult result = analyzer.Analyze(program);
  EXPECT_TRUE(result.dependences.empty());
  EXPECT_EQ(result.pairs_independent, 1u);
}

TEST_F(AnalysisTest, DependenceReadsIndependent) {
  Program program;
  program.AddRead("y", "x", Xp("a//b", symbols_));
  program.AddRead("z", "x", Xp("a//b", symbols_));
  DependenceAnalyzer analyzer;
  EXPECT_TRUE(analyzer.Analyze(program).dependences.empty());
}

TEST_F(AnalysisTest, DependenceDetectsReadInsertConflict) {
  // The paper's §1 example: read //C depends on insert of <C/>; read //D
  // does not.
  Program program;
  program.AddInsert("x", Xp("x/B", symbols_), Content("<C/>"));
  program.AddRead("z", "x", Xp("x//C", symbols_));
  program.AddRead("w", "x", Xp("x//D", symbols_));
  DependenceAnalyzer analyzer;
  const DependenceAnalysisResult result = analyzer.Analyze(program);
  ASSERT_EQ(result.dependences.size(), 1u);
  EXPECT_EQ(result.dependences[0].from, 0u);
  EXPECT_EQ(result.dependences[0].to, 1u);
}

TEST_F(AnalysisTest, UpdateUpdateCertifiedIndependent) {
  // Disjoint updates earn a commutativity certificate (§6 extension) and
  // need no ordering edge.
  Program program;
  program.AddInsert("x", Xp("a/b", symbols_), Content("<c/>"));
  program.AddDelete("x", Xp("a/zzz", symbols_));
  DependenceAnalyzer analyzer;
  EXPECT_TRUE(analyzer.Analyze(program).dependences.empty());
}

TEST_F(AnalysisTest, UpdateUpdateStaysOrderedWithoutCertificate) {
  // The first insert creates b nodes the second insert fires on: no
  // certificate, so the pair keeps its order.
  Program program;
  program.AddInsert("x", Xp("a", symbols_), Content("<b/>"));
  program.AddInsert("x", Xp("a/b", symbols_), Content("<c/>"));
  DependenceAnalyzer analyzer;
  EXPECT_EQ(analyzer.Analyze(program).dependences.size(), 1u);
}

TEST_F(AnalysisTest, CseAliasesRepeatedRead) {
  // The paper's functional example: the second read of the same pattern
  // can reuse the first result because the insert between them does not
  // conflict.
  Program program;
  program.AddRead("y", "x", Xp("x/*/A", symbols_));
  program.AddInsert("x", Xp("x/B", symbols_), Content("<C/>"));
  program.AddRead("u", "x", Xp("x/*/A", symbols_));
  Optimizer optimizer;
  const OptimizeResult result = optimizer.EliminateCommonReads(program);
  EXPECT_EQ(result.reads_aliased, 1u);
  ASSERT_TRUE(result.program.statements()[2].alias_of.has_value());
  EXPECT_EQ(*result.program.statements()[2].alias_of, 0u);
}

TEST_F(AnalysisTest, CseBlockedByConflictingUpdate) {
  Program program;
  program.AddRead("y", "x", Xp("x//C", symbols_));
  program.AddInsert("x", Xp("x/B", symbols_), Content("<C/>"));
  program.AddRead("u", "x", Xp("x//C", symbols_));
  Optimizer optimizer;
  const OptimizeResult result = optimizer.EliminateCommonReads(program);
  EXPECT_EQ(result.reads_aliased, 0u);
}

TEST_F(AnalysisTest, CsePreservesExecutionResults) {
  Program program;
  program.AddRead("y", "x", Xp("x/*/A", symbols_));
  program.AddInsert("x", Xp("x/B", symbols_), Content("<C/>"));
  program.AddRead("u", "x", Xp("x/*/A", symbols_));
  Optimizer optimizer;
  const OptimizeResult optimized = optimizer.EliminateCommonReads(program);
  ASSERT_EQ(optimized.reads_aliased, 1u);

  // Clone a common prototype twice so node ids line up across both runs
  // (cloning renumbers nodes relative to the parsed original).
  TreeStore prototype(symbols_);
  prototype.Put("x", Xml("<x><B><A/></B><D><A/></D></x>", symbols_));
  TreeStore store1 = prototype.Clone();
  TreeStore store2 = prototype.Clone();
  Result<ExecutionTrace> t1 = Execute(program, &store1);
  Result<ExecutionTrace> t2 = Execute(optimized.program, &store2);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  ASSERT_EQ(t1->reads.size(), t2->reads.size());
  for (size_t i = 0; i < t1->reads.size(); ++i) {
    EXPECT_EQ(t1->reads[i].nodes, t2->reads[i].nodes);
  }
}

TEST_F(AnalysisTest, HoistScheduleRespectsDependences) {
  Program program;
  program.AddInsert("x", Xp("x/B", symbols_), Content("<C/>"));
  program.AddRead("z", "x", Xp("x//C", symbols_));  // depends on 0
  program.AddRead("w", "x", Xp("x//D", symbols_));  // independent
  Optimizer optimizer;
  const std::vector<size_t> schedule = optimizer.HoistReadsSchedule(program);
  ASSERT_EQ(schedule.size(), 3u);
  // The independent read w is hoisted before the insert; z stays after.
  size_t pos_insert = 0;
  size_t pos_z = 0;
  size_t pos_w = 0;
  for (size_t i = 0; i < schedule.size(); ++i) {
    if (schedule[i] == 0) pos_insert = i;
    if (schedule[i] == 1) pos_z = i;
    if (schedule[i] == 2) pos_w = i;
  }
  EXPECT_LT(pos_w, pos_insert);
  EXPECT_LT(pos_insert, pos_z);
}

TEST_F(AnalysisTest, ProgramToStringListsStatements) {
  Program program;
  program.AddRead("y", "x", Xp("a//b", symbols_));
  program.AddInsert("x", Xp("a", symbols_), Content("<c/>"));
  program.AddDelete("x", Xp("a/b", symbols_));
  const std::string listing = program.ToString();
  EXPECT_NE(listing.find("read $x/a//b"), std::string::npos);
  EXPECT_NE(listing.find("insert $x/a, <c/>"), std::string::npos);
  EXPECT_NE(listing.find("delete $x/a/b"), std::string::npos);
}

/// Property: reordering by the hoist schedule and CSE both preserve the
/// observable value semantics of random programs on random stores.
class OptimizerPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(OptimizerPropertyTest, TransformationsPreserveValueSemantics) {
  auto symbols = NewSymbols();
  Rng rng(30000 + GetParam());

  ProgramGenOptions options;
  options.num_statements = 8;
  options.num_variables = 2;
  options.pattern.size = 3;
  options.pattern.alphabet = {symbols->Intern("a"), symbols->Intern("b"),
                              symbols->Intern("c")};
  RandomProgramGenerator programs(symbols, options);

  TreeGenOptions tree_options;
  tree_options.target_size = 12;
  tree_options.alphabet = options.pattern.alphabet;
  RandomTreeGenerator trees(symbols, tree_options);

  // Tree-conflict semantics makes reordering safe for *value*-level
  // observations: a read hoisted past an update must keep not only its
  // node set (node semantics) but the subtree values it returns.
  DetectorOptions detector_options;
  detector_options.semantics = ConflictSemantics::kTree;
  Optimizer optimizer(detector_options);
  for (int iter = 0; iter < 5; ++iter) {
    const Program program = programs.Generate(&rng);
    TreeStore store(symbols);
    for (const std::string& var : programs.VariableNames()) {
      store.Put(var, trees.Generate(&rng));
    }

    // Baseline run.
    TreeStore baseline_store = store.Clone();
    Result<ExecutionTrace> baseline = Execute(program, &baseline_store);
    ASSERT_TRUE(baseline.ok()) << baseline.status();

    // CSE run: node ids must match exactly (no reordering happened).
    const OptimizeResult cse = optimizer.EliminateCommonReads(program);
    TreeStore cse_store = store.Clone();
    Result<ExecutionTrace> cse_trace = Execute(cse.program, &cse_store);
    ASSERT_TRUE(cse_trace.ok());
    ASSERT_EQ(baseline->reads.size(), cse_trace->reads.size());
    for (size_t i = 0; i < baseline->reads.size(); ++i) {
      EXPECT_EQ(baseline->reads[i].nodes, cse_trace->reads[i].nodes)
          << "CSE changed read " << i << "; seed=" << GetParam()
          << "\n" << program.ToString();
    }

    // Reorder run: compare value-level results (ids of freshly inserted
    // nodes may differ across schedules).
    const std::vector<size_t> schedule = optimizer.HoistReadsSchedule(program);
    const Program reordered = Optimizer::Reorder(program, schedule);
    TreeStore reorder_store = store.Clone();
    Result<ExecutionTrace> reorder_trace = Execute(reordered, &reorder_store);
    ASSERT_TRUE(reorder_trace.ok());
    // Match reads by result variable.
    for (const auto& base_read : baseline->reads) {
      bool found = false;
      for (const auto& re_read : reorder_trace->reads) {
        if (re_read.result_var != base_read.result_var) continue;
        found = true;
        EXPECT_EQ(base_read.codes, re_read.codes)
            << "reordering changed the value of " << base_read.result_var
            << "; seed=" << GetParam() << "\n" << program.ToString();
      }
      EXPECT_TRUE(found);
    }
    // Final stores are isomorphic variable by variable.
    for (const std::string& var : programs.VariableNames()) {
      EXPECT_EQ(CanonicalCode(baseline_store.Get(var)),
                CanonicalCode(reorder_store.Get(var)))
          << "final tree for " << var << " differs; seed=" << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, OptimizerPropertyTest,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace xmlup
