// Differential test of the two update-application semantics (paper §3):
// for randomized (tree, op) pairs, ApplyInPlace on a copy and
// ApplyFunctional on the original must produce ordered-equal documents,
// and — because CopyTree is a deterministic preorder copy, so two copies
// of one tree assign identical NodeIds — the Applied sets (insertion /
// deletion points, copy roots) must match node-for-node across copies.
// ApplyFunctional must leave its input untouched, and UpdateOp's
// ApplyInPlace must agree with the underlying InsertOp/DeleteOp.
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "conflict/update_op.h"
#include "gtest/gtest.h"
#include "ops/operations.h"
#include "tests/test_util.h"
#include "workload/pattern_generator.h"
#include "workload/tree_generator.h"
#include "xml/isomorphism.h"
#include "xml/tree_algos.h"

namespace xmlup {
namespace {

using testing_util::NewSymbols;

class ApplyDifferentialTest : public ::testing::Test {
 protected:
  std::shared_ptr<SymbolTable> symbols_ = NewSymbols();
};

TEST_F(ApplyDifferentialTest, InsertInPlaceMatchesFunctional) {
  const std::vector<Label> alphabet =
      RandomTreeGenerator::MakeAlphabet(symbols_.get(), 4);
  TreeGenOptions tree_options;
  tree_options.target_size = 12;
  tree_options.alphabet = alphabet;
  TreeGenOptions content_options;
  content_options.target_size = 4;
  content_options.alphabet = alphabet;
  PatternGenOptions pattern_options;
  pattern_options.size = 3;
  pattern_options.wildcard_prob = 0.2;
  pattern_options.descendant_prob = 0.3;
  pattern_options.alphabet = alphabet;
  const RandomTreeGenerator trees(symbols_, tree_options);
  const RandomTreeGenerator content(symbols_, content_options);
  const RandomPatternGenerator patterns(symbols_, pattern_options);

  Rng rng(7001);
  for (int trial = 0; trial < 150; ++trial) {
    SCOPED_TRACE("trial=" + std::to_string(trial));
    const Tree base = trees.Generate(&rng);
    const InsertOp op(patterns.GenerateBranching(&rng),
                      std::make_shared<const Tree>(content.Generate(&rng)));

    // Two deterministic copies share NodeIds, so the Applied sets of an
    // in-place run on either copy are directly comparable.
    Tree mutated = CopyTree(base);
    const InsertOp::Applied applied = op.ApplyInPlace(&mutated);

    const std::string before = CanonicalCode(base);
    const Tree functional = op.ApplyFunctional(base);
    EXPECT_EQ(CanonicalCode(base), before);  // input untouched

    EXPECT_TRUE(OrderedEqual(mutated, functional));

    Tree again = CopyTree(base);
    const InsertOp::Applied replay = op.ApplyInPlace(&again);
    EXPECT_EQ(applied.insertion_points, replay.insertion_points);
    EXPECT_EQ(applied.copy_roots, replay.copy_roots);
    ASSERT_EQ(applied.insertion_points.size(), applied.copy_roots.size());
  }
}

TEST_F(ApplyDifferentialTest, DeleteInPlaceMatchesFunctional) {
  const std::vector<Label> alphabet =
      RandomTreeGenerator::MakeAlphabet(symbols_.get(), 3);
  TreeGenOptions tree_options;
  tree_options.target_size = 12;
  tree_options.alphabet = alphabet;
  PatternGenOptions pattern_options;
  pattern_options.size = 3;
  pattern_options.wildcard_prob = 0.3;
  pattern_options.descendant_prob = 0.4;
  pattern_options.alphabet = alphabet;
  const RandomTreeGenerator trees(symbols_, tree_options);
  const RandomPatternGenerator patterns(symbols_, pattern_options);

  Rng rng(7002);
  for (int trial = 0; trial < 150; ++trial) {
    SCOPED_TRACE("trial=" + std::to_string(trial));
    const Tree base = trees.Generate(&rng);
    Result<DeleteOp> op =
        DeleteOp::Make(patterns.GenerateBranchingNonRootOutput(&rng));
    ASSERT_TRUE(op.ok()) << op.status();

    Tree mutated = CopyTree(base);
    const DeleteOp::Applied applied = op->ApplyInPlace(&mutated);

    const std::string before = CanonicalCode(base);
    const Tree functional = op->ApplyFunctional(base);
    EXPECT_EQ(CanonicalCode(base), before);

    EXPECT_TRUE(OrderedEqual(mutated, functional));

    Tree again = CopyTree(base);
    const DeleteOp::Applied replay = op->ApplyInPlace(&again);
    EXPECT_EQ(applied.deletion_points, replay.deletion_points);
  }
}

TEST_F(ApplyDifferentialTest, UpdateOpAgreesWithUnderlyingOps) {
  // UpdateOp::ApplyInPlace is the merge executor's serial-oracle primitive;
  // it must match the ops-layer semantics exactly.
  const std::vector<Label> alphabet =
      RandomTreeGenerator::MakeAlphabet(symbols_.get(), 4);
  TreeGenOptions tree_options;
  tree_options.target_size = 10;
  tree_options.alphabet = alphabet;
  TreeGenOptions content_options;
  content_options.target_size = 3;
  content_options.alphabet = alphabet;
  PatternGenOptions pattern_options;
  pattern_options.size = 3;
  pattern_options.wildcard_prob = 0.2;
  pattern_options.descendant_prob = 0.3;
  pattern_options.alphabet = alphabet;
  const RandomTreeGenerator trees(symbols_, tree_options);
  const RandomTreeGenerator content(symbols_, content_options);
  const RandomPatternGenerator patterns(symbols_, pattern_options);

  Rng rng(7003);
  for (int trial = 0; trial < 100; ++trial) {
    SCOPED_TRACE("trial=" + std::to_string(trial));
    const Tree base = trees.Generate(&rng);
    Tree via_update = CopyTree(base);
    Tree via_ops = CopyTree(base);
    if (rng.NextBool(0.5)) {
      const Pattern pattern = patterns.GenerateBranching(&rng);
      const auto x = std::make_shared<const Tree>(content.Generate(&rng));
      UpdateOp::MakeInsert(pattern, x).ApplyInPlace(&via_update);
      InsertOp(pattern, x).ApplyInPlace(&via_ops);
    } else {
      const Pattern pattern = patterns.GenerateBranchingNonRootOutput(&rng);
      Result<UpdateOp> update = UpdateOp::MakeDelete(pattern);
      Result<DeleteOp> op = DeleteOp::Make(pattern);
      ASSERT_TRUE(update.ok() && op.ok());
      update->ApplyInPlace(&via_update);
      op->ApplyInPlace(&via_ops);
    }
    EXPECT_TRUE(OrderedEqual(via_update, via_ops));
  }
}

}  // namespace
}  // namespace xmlup
