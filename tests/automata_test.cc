#include "automata/nfa_ops.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace xmlup {
namespace {

using testing_util::NewSymbols;

class AutomataTest : public ::testing::Test {
 protected:
  std::shared_ptr<SymbolTable> symbols_ = NewSymbols();
  Label L(const char* name) { return symbols_->Intern(name); }
};

TEST_F(AutomataTest, ClassIntersection) {
  LabelClass out;
  EXPECT_TRUE(IntersectClasses(LabelClass::Any(), LabelClass::Any(), &out));
  EXPECT_TRUE(out.any);
  EXPECT_TRUE(IntersectClasses(LabelClass::Any(), LabelClass::Of(3), &out));
  EXPECT_FALSE(out.any);
  EXPECT_EQ(out.label, 3u);
  EXPECT_TRUE(IntersectClasses(LabelClass::Of(3), LabelClass::Of(3), &out));
  EXPECT_EQ(out.label, 3u);
  EXPECT_FALSE(IntersectClasses(LabelClass::Of(3), LabelClass::Of(4), &out));
}

TEST_F(AutomataTest, SymbolIntersection) {
  const Nfa a = Nfa::FromRegex(Regex::Symbol(L("x")));
  const Nfa b = Nfa::FromRegex(Regex::Symbol(L("x")));
  const Nfa c = Nfa::FromRegex(Regex::Symbol(L("y")));
  EXPECT_TRUE(IntersectionNonEmpty(a, b));
  EXPECT_FALSE(IntersectionNonEmpty(a, c));
}

TEST_F(AutomataTest, DotMatchesAnything) {
  const Nfa dot = Nfa::FromRegex(Regex::Dot());
  const Nfa x = Nfa::FromRegex(Regex::Symbol(L("x")));
  EXPECT_TRUE(IntersectionNonEmpty(dot, x));
  const std::optional<ClassWord> word = IntersectionWitness(dot, x);
  ASSERT_TRUE(word.has_value());
  ASSERT_EQ(word->size(), 1u);
  EXPECT_EQ((*word)[0].label, L("x"));
}

TEST_F(AutomataTest, ConcatOrdersSymbols) {
  const Regex ab = Regex::Concat(Regex::Symbol(L("a")), Regex::Symbol(L("b")));
  const Regex ba = Regex::Concat(Regex::Symbol(L("b")), Regex::Symbol(L("a")));
  const Nfa n_ab = Nfa::FromRegex(ab);
  EXPECT_TRUE(IntersectionNonEmpty(n_ab, Nfa::FromRegex(ab)));
  EXPECT_FALSE(IntersectionNonEmpty(n_ab, Nfa::FromRegex(ba)));
}

TEST_F(AutomataTest, StarAllowsRepetition) {
  // a(.)*b  ∩  a c b  — the dot-star absorbs the middle symbol.
  const Regex a_dotstar_b = Regex::Concat(
      Regex::Concat(Regex::Symbol(L("a")), Regex::Star(Regex::Dot())),
      Regex::Symbol(L("b")));
  const Regex acb = Regex::Concat(
      Regex::Concat(Regex::Symbol(L("a")), Regex::Symbol(L("c"))),
      Regex::Symbol(L("b")));
  EXPECT_TRUE(IntersectionNonEmpty(Nfa::FromRegex(a_dotstar_b),
                                   Nfa::FromRegex(acb)));
  // Zero repetitions also work: a b.
  const Regex ab = Regex::Concat(Regex::Symbol(L("a")), Regex::Symbol(L("b")));
  EXPECT_TRUE(IntersectionNonEmpty(Nfa::FromRegex(a_dotstar_b),
                                   Nfa::FromRegex(ab)));
}

TEST_F(AutomataTest, WitnessIsShortest) {
  // a(.)*b against itself: the shortest common word is "ab".
  const Regex r = Regex::Concat(
      Regex::Concat(Regex::Symbol(L("a")), Regex::Star(Regex::Dot())),
      Regex::Symbol(L("b")));
  const std::optional<ClassWord> word =
      IntersectionWitness(Nfa::FromRegex(r), Nfa::FromRegex(r));
  ASSERT_TRUE(word.has_value());
  EXPECT_EQ(word->size(), 2u);
}

TEST_F(AutomataTest, EpsilonRegex) {
  const Nfa eps = Nfa::FromRegex(Regex::Epsilon());
  const Nfa x = Nfa::FromRegex(Regex::Symbol(L("x")));
  EXPECT_TRUE(IntersectionNonEmpty(eps, eps));
  EXPECT_FALSE(IntersectionNonEmpty(eps, x));
  const std::optional<ClassWord> word = IntersectionWitness(eps, eps);
  ASSERT_TRUE(word.has_value());
  EXPECT_TRUE(word->empty());
}

TEST_F(AutomataTest, NestedStars) {
  // ((a)*)* accepts the empty word and any run of a's.
  const Regex r = Regex::Star(Regex::Star(Regex::Symbol(L("a"))));
  const Regex aa = Regex::Concat(Regex::Symbol(L("a")), Regex::Symbol(L("a")));
  EXPECT_TRUE(IntersectionNonEmpty(Nfa::FromRegex(r), Nfa::FromRegex(aa)));
  EXPECT_TRUE(
      IntersectionNonEmpty(Nfa::FromRegex(r), Nfa::FromRegex(Regex::Epsilon())));
}

TEST_F(AutomataTest, RegexToString) {
  const Regex r = Regex::Concat(
      Regex::Concat(Regex::Symbol(L("a")), Regex::Star(Regex::Dot())),
      Regex::Symbol(L("b")));
  EXPECT_EQ(r.ToString(*symbols_), "a.((.))*.b");
}

TEST_F(AutomataTest, EpsilonClosure) {
  const Nfa star = Nfa::FromRegex(Regex::Star(Regex::Symbol(L("a"))));
  const std::vector<StateId> closure = star.EpsilonClosure({star.start()});
  // The closure of a star's entry reaches its accept state (empty word).
  bool has_accept = false;
  for (StateId s : closure) has_accept |= (s == star.accept());
  EXPECT_TRUE(has_accept);
}

}  // namespace
}  // namespace xmlup
