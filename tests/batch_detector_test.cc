#include "conflict/batch_detector.h"

#include <memory>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tests/test_util.h"

namespace xmlup {
namespace {

using testing_util::NewSymbols;
using testing_util::Xml;
using testing_util::Xp;

class BatchDetectorTest : public ::testing::Test {
 protected:
  std::shared_ptr<SymbolTable> symbols_ = NewSymbols();

  std::shared_ptr<const Tree> Content(const char* xml) {
    return std::make_shared<const Tree>(Xml(xml, symbols_));
  }

  UpdateOp Insert(const char* xpath, const char* xml) {
    return UpdateOp::MakeInsert(Xp(xpath, symbols_), Content(xml));
  }

  UpdateOp Delete(const char* xpath) {
    Result<UpdateOp> del = UpdateOp::MakeDelete(Xp(xpath, symbols_));
    EXPECT_TRUE(del.ok()) << del.status();
    return std::move(del).value();
  }

  /// A workload mixing linear and branching reads, with repeats — the
  /// shape program generators produce.
  std::vector<Pattern> Reads() {
    std::vector<Pattern> reads;
    for (const char* x : {"a//b", "a/b/c", "a[b]/c", "x//y", "a//b", "a/*/c",
                          "a[b][c]", "a//b", "b/c", "a[.//d]/b"}) {
      reads.push_back(Xp(x, symbols_));
    }
    return reads;
  }

  std::vector<UpdateOp> Updates() {
    std::vector<UpdateOp> updates;
    updates.push_back(Insert("a/b", "<c/>"));
    updates.push_back(Delete("a//c"));
    updates.push_back(Insert("a/b", "<c/>"));  // repeat of [0]
    updates.push_back(Delete("x/y"));
    updates.push_back(Insert("a", "<b><c/></b>"));
    updates.push_back(Delete("a//c"));  // repeat of [1]
    updates.push_back(Insert("b", "<d/>"));
    updates.push_back(Delete("*/d"));
    return updates;
  }

  static BatchDetectorOptions Options(size_t threads, bool cache = true,
                                      bool minimize = true) {
    BatchDetectorOptions options;
    options.detector.search.max_nodes = 4;
    options.num_threads = threads;
    options.enable_cache = cache;
    options.minimize_patterns = minimize;
    return options;
  }

  /// The deterministic fingerprint of a matrix: verdict, method and
  /// trees_checked per cell (witness label ids may differ across runs —
  /// fresh "alpha" symbols are interned in scheduling order).
  static std::vector<std::tuple<int, std::string, uint64_t>> Fingerprint(
      const std::vector<SharedConflictResult>& matrix) {
    std::vector<std::tuple<int, std::string, uint64_t>> out;
    for (const SharedConflictResult& cell : matrix) {
      EXPECT_NE(cell, nullptr);
      if (!cell->ok()) {
        out.emplace_back(-1, cell->status().ToString(), 0);
        continue;
      }
      const ConflictReport& report = **cell;
      out.emplace_back(static_cast<int>(report.verdict),
                       std::string(DetectorMethodName(report.method)),
                       report.trees_checked);
    }
    return out;
  }
};

TEST_F(BatchDetectorTest, MatrixHasRowMajorLayout) {
  const std::vector<Pattern> reads = Reads();
  const std::vector<UpdateOp> updates = Updates();
  BatchConflictDetector engine(Options(1));
  const auto matrix = engine.DetectMatrix(reads, updates);
  ASSERT_EQ(matrix.size(), reads.size() * updates.size());
  for (const SharedConflictResult& cell : matrix) {
    ASSERT_NE(cell, nullptr);
    EXPECT_TRUE(cell->ok()) << cell->status();
  }
  EXPECT_EQ(engine.stats().pairs_total, reads.size() * updates.size());
}

TEST_F(BatchDetectorTest, OneThreadAndEightThreadsProduceIdenticalMatrices) {
  // The acceptance-criterion determinism check: same workload, 1 vs 8
  // worker threads, verdict matrices must be identical cell for cell.
  const std::vector<Pattern> reads = Reads();
  const std::vector<UpdateOp> updates = Updates();
  BatchConflictDetector one(Options(1));
  BatchConflictDetector eight(Options(8));
  const auto fp1 = Fingerprint(one.DetectMatrix(reads, updates));
  const auto fp8 = Fingerprint(eight.DetectMatrix(reads, updates));
  ASSERT_EQ(fp1.size(), fp8.size());
  for (size_t k = 0; k < fp1.size(); ++k) {
    EXPECT_EQ(fp1[k], fp8[k]) << "cell " << k;
  }
}

TEST_F(BatchDetectorTest, CacheOnAndOffProduceIdenticalVerdicts) {
  const std::vector<Pattern> reads = Reads();
  const std::vector<UpdateOp> updates = Updates();
  BatchConflictDetector cached(Options(2, /*cache=*/true));
  BatchConflictDetector uncached(Options(2, /*cache=*/false));
  EXPECT_EQ(Fingerprint(cached.DetectMatrix(reads, updates)),
            Fingerprint(uncached.DetectMatrix(reads, updates)));
}

TEST_F(BatchDetectorTest, CachedResultsMatchFreshSinglePairCalls) {
  // Cross-check every cell (cache hits included) against a fresh
  // single-pair Detect() call. minimize=false so the batch engine solves
  // the very same patterns as the fresh calls.
  const std::vector<Pattern> reads = Reads();
  const std::vector<UpdateOp> updates = Updates();
  const BatchDetectorOptions options = Options(4, true, /*minimize=*/false);
  BatchConflictDetector engine(options);
  const auto matrix = engine.DetectMatrix(reads, updates);
  ASSERT_GT(engine.stats().cache_hits, 0u);  // workload repeats patterns
  for (size_t i = 0; i < reads.size(); ++i) {
    for (size_t j = 0; j < updates.size(); ++j) {
      Result<ConflictReport> fresh =
          Detect(reads[i], updates[j], options.detector);
      const SharedConflictResult& cell = matrix[i * updates.size() + j];
      ASSERT_TRUE(fresh.ok() && cell->ok());
      EXPECT_EQ((*cell)->verdict, fresh->verdict) << "cell " << i << "," << j;
      EXPECT_EQ((*cell)->method, fresh->method) << "cell " << i << "," << j;
      EXPECT_EQ((*cell)->trees_checked, fresh->trees_checked);
    }
  }
}

TEST_F(BatchDetectorTest, CacheAccountingAddsUp) {
  const std::vector<Pattern> reads = Reads();
  const std::vector<UpdateOp> updates = Updates();
  BatchConflictDetector engine(Options(2));
  engine.DetectMatrix(reads, updates);
  const BatchStats& stats = engine.stats();
  EXPECT_EQ(stats.pairs_total, reads.size() * updates.size());
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.pairs_total);
  EXPECT_EQ(stats.cache_misses, stats.unique_pairs_solved);
  // Repeated reads ("a//b" three times) and updates guarantee real reuse.
  EXPECT_LT(stats.unique_pairs_solved, stats.pairs_total);

  // A second identical batch is answered entirely from the cache.
  const uint64_t solved_before = stats.unique_pairs_solved;
  engine.DetectMatrix(reads, updates);
  EXPECT_EQ(engine.stats().unique_pairs_solved, solved_before);
  EXPECT_EQ(engine.stats().cache_hits + engine.stats().cache_misses,
            engine.stats().pairs_total);

  engine.ClearCache();
  engine.DetectMatrix(reads, updates);
  EXPECT_EQ(engine.stats().unique_pairs_solved, 2 * solved_before);
  EXPECT_EQ(engine.stats().cache_hits + engine.stats().cache_misses,
            engine.stats().pairs_total);
}

TEST_F(BatchDetectorTest, CacheDisabledSolvesEveryPair) {
  const std::vector<Pattern> reads = Reads();
  const std::vector<UpdateOp> updates = Updates();
  BatchConflictDetector engine(Options(2, /*cache=*/false));
  engine.DetectMatrix(reads, updates);
  EXPECT_EQ(engine.stats().cache_hits, 0u);
  EXPECT_EQ(engine.stats().cache_misses, reads.size() * updates.size());
  EXPECT_EQ(engine.stats().unique_pairs_solved,
            reads.size() * updates.size());
}

TEST_F(BatchDetectorTest, InlineModeSkipsSpanMergingPooledModeMerges) {
  // With tracing on, a pooled engine publishes worker-buffered spans via
  // one MergeThreadEvents call per batch; an inline engine (num_threads
  // == 1) records directly and must not bump merge_count.
  obs::TraceRecorder& recorder = obs::TraceRecorder::Default();
  recorder.Clear();
  recorder.set_enabled(true);
  const std::vector<Pattern> reads = Reads();
  const std::vector<UpdateOp> updates = Updates();

  BatchConflictDetector inline_engine(Options(1));
  inline_engine.DetectMatrix(reads, updates);
  EXPECT_EQ(recorder.merge_count(), 0u);
  // Inline solves still produced per-pair spans, just without merging.
  size_t inline_solve_spans = 0;
  for (const obs::TraceEvent& e : recorder.Snapshot()) {
    if (std::string_view(e.name) == "batch.solve_pair") ++inline_solve_spans;
  }
  EXPECT_EQ(inline_solve_spans, inline_engine.stats().unique_pairs_solved);

  BatchConflictDetector pooled(Options(4));
  pooled.DetectMatrix(reads, updates);
  EXPECT_EQ(recorder.merge_count(), 1u);

  recorder.set_enabled(false);
  recorder.Clear();
}

TEST_F(BatchDetectorTest, MinimizationFoldsEquivalentPatternsOntoOneKey) {
  // a[b][b] minimizes to a[b]: the duplicate predicate is implied.
  const UpdateOp update = Insert("a/b", "<c/>");
  BatchConflictDetector engine(Options(1, true, /*minimize=*/true));
  EXPECT_EQ(engine.CacheKey(Xp("a[b][b]", symbols_), update),
            engine.CacheKey(Xp("a[b]", symbols_), update));
  BatchConflictDetector literal(Options(1, true, /*minimize=*/false));
  EXPECT_NE(literal.CacheKey(Xp("a[b][b]", symbols_), update),
            literal.CacheKey(Xp("a[b]", symbols_), update));

  // Sibling order never matters: the key is canonical.
  EXPECT_EQ(engine.CacheKey(Xp("a[b][c]", symbols_), update),
            engine.CacheKey(Xp("a[c][b]", symbols_), update));
}

TEST_F(BatchDetectorTest, SparsePairsAlignWithRequest) {
  const std::vector<Pattern> reads = Reads();
  const std::vector<UpdateOp> updates = Updates();
  const std::vector<ReadUpdatePair> pairs = {
      {0, 1}, {3, 3}, {0, 1}, {9, 4}};
  BatchConflictDetector engine(Options(2));
  const auto sparse = engine.DetectPairs(reads, updates, pairs);
  ASSERT_EQ(sparse.size(), pairs.size());
  // Duplicate request resolves to the shared cached object.
  EXPECT_EQ(sparse[0], sparse[2]);
  const auto full = engine.DetectMatrix(reads, updates);
  for (size_t k = 0; k < pairs.size(); ++k) {
    const auto& cell =
        full[pairs[k].read_index * updates.size() + pairs[k].update_index];
    ASSERT_TRUE(sparse[k]->ok() && cell->ok());
    EXPECT_EQ((*sparse[k])->verdict, (*cell)->verdict) << "pair " << k;
  }
}

TEST_F(BatchDetectorTest, InterningIsPerPatternNotPerPair) {
  // The PR's acceptance signal: canonicalization cost scales with the
  // number of *distinct patterns*, never with the number of pairs. The
  // store counts one miss per distinct pattern/content and the second
  // identical matrix re-interns everything as hits.
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  obs::Counter& misses = reg.GetCounter("pattern_store.misses");
  const std::vector<Pattern> reads = Reads();
  const std::vector<UpdateOp> updates = Updates();
  const size_t pairs = reads.size() * updates.size();
  // Distinct inputs: 8 read patterns, 6 update patterns, 3 insert contents
  // (minimization can only merge further).
  const size_t distinct_inputs = 8 + 6 + 3;

  BatchConflictDetector engine(Options(2));
  const uint64_t before = misses.value();
  engine.DetectMatrix(reads, updates);
  const uint64_t first_call = misses.value() - before;
  EXPECT_GT(first_call, 0u);
  EXPECT_LE(first_call, distinct_inputs);
  EXPECT_LT(first_call, pairs);
  EXPECT_GE(first_call, engine.pattern_store()->size());

  // Warm store: zero misses no matter how many pairs the call asks for.
  engine.DetectMatrix(reads, updates);
  EXPECT_EQ(misses.value() - before, first_call);
}

TEST_F(BatchDetectorTest, InjectedStoreIsSharedAndRefOverloadsAgree) {
  auto store = std::make_shared<PatternStore>(symbols_);
  BatchDetectorOptions options = Options(2);
  options.store = store;
  BatchConflictDetector engine(options);
  ASSERT_EQ(engine.pattern_store(), store);

  const std::vector<Pattern> reads = Reads();
  std::vector<UpdateOp> updates;
  for (const UpdateOp& op : Updates()) updates.push_back(op.Bind(store));
  std::vector<PatternRef> read_refs;
  for (const Pattern& read : reads) read_refs.push_back(store->Intern(read));

  const auto by_value = engine.DetectMatrix(reads, Updates());
  const auto by_ref = engine.DetectMatrix(read_refs, updates);
  EXPECT_EQ(Fingerprint(by_value), Fingerprint(by_ref));
  // Identical canonical pairs resolve to the very same shared result.
  for (size_t k = 0; k < by_value.size(); ++k) {
    EXPECT_EQ(by_value[k], by_ref[k]) << "cell " << k;
  }

  // A second engine over the same store reuses the interned patterns (no
  // new misses) while keeping its own result cache.
  obs::Counter& misses =
      obs::MetricsRegistry::Default().GetCounter("pattern_store.misses");
  const uint64_t before = misses.value();
  BatchConflictDetector sibling(options);
  const auto sibling_matrix = sibling.DetectMatrix(read_refs, updates);
  EXPECT_EQ(misses.value(), before);
  EXPECT_EQ(Fingerprint(sibling_matrix), Fingerprint(by_ref));
}

TEST_F(BatchDetectorTest, BoundedCacheEvictsButNeverChangesVerdicts) {
  const std::vector<Pattern> reads = Reads();
  const std::vector<UpdateOp> updates = Updates();
  BatchDetectorOptions options = Options(2);
  options.max_cache_entries = 4;
  BatchConflictDetector bounded(options);
  BatchConflictDetector unbounded(Options(2));
  EXPECT_EQ(Fingerprint(bounded.DetectMatrix(reads, updates)),
            Fingerprint(unbounded.DetectMatrix(reads, updates)));
  const BatchStats& stats = bounded.stats();
  EXPECT_LE(bounded.cache_size(), 4u);
  EXPECT_GT(stats.cache_evictions, 0u);
  EXPECT_EQ(stats.cache_evictions,
            stats.unique_pairs_solved - bounded.cache_size());
  // Eviction does not disturb the accounting invariant.
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.pairs_total);

  // A repeat call re-solves what was evicted — and only that.
  const uint64_t solved_before = stats.unique_pairs_solved;
  bounded.DetectMatrix(reads, updates);
  EXPECT_GT(bounded.stats().unique_pairs_solved, solved_before);
  EXPECT_EQ(bounded.stats().cache_hits + bounded.stats().cache_misses,
            bounded.stats().pairs_total);
  EXPECT_LE(bounded.cache_size(), 4u);
}

TEST_F(BatchDetectorTest, EvictionIsLeastRecentlyUsedByGeneration) {
  // num_threads == 1: the intern order (hence key identity) is sequential
  // and the LRU decisions below are exact.
  BatchDetectorOptions options = Options(1);
  options.max_cache_entries = 2;
  BatchConflictDetector engine(options);
  const std::vector<Pattern> reads = {Xp("a//b", symbols_),
                                      Xp("b/c", symbols_),
                                      Xp("x//y", symbols_)};
  std::vector<UpdateOp> updates;
  updates.push_back(Insert("a/b", "<c/>"));
  auto pairs_for = [&](std::vector<size_t> read_idx) {
    std::vector<ReadUpdatePair> pairs;
    for (size_t i : read_idx) pairs.push_back({i, 0});
    return pairs;
  };

  // Gen 1 caches {r0, r1}; gen 2 refreshes r0's stamp; gen 3 brings in r2,
  // which must evict r1 (oldest stamp), not r0.
  engine.DetectPairs(reads, updates, pairs_for({0, 1}));
  engine.DetectPairs(reads, updates, pairs_for({0}));
  engine.DetectPairs(reads, updates, pairs_for({2}));
  EXPECT_EQ(engine.stats().cache_evictions, 1u);
  EXPECT_EQ(engine.cache_size(), 2u);

  const uint64_t hits_before = engine.stats().cache_hits;
  const uint64_t solved_before = engine.stats().unique_pairs_solved;
  engine.DetectPairs(reads, updates, pairs_for({0}));  // survived: hit
  EXPECT_EQ(engine.stats().cache_hits, hits_before + 1);
  EXPECT_EQ(engine.stats().unique_pairs_solved, solved_before);
  engine.DetectPairs(reads, updates, pairs_for({1}));  // evicted: re-solved
  EXPECT_EQ(engine.stats().unique_pairs_solved, solved_before + 1);
}

TEST_F(BatchDetectorTest, SameGenerationEvictionTieBreaksOnKeyOrder) {
  // All three entries share one generation: the policy must still be
  // deterministic, dropping the lowest-id keys first (interned first ==
  // listed first at num_threads == 1).
  BatchDetectorOptions options = Options(1);
  options.max_cache_entries = 1;
  BatchConflictDetector engine(options);
  const std::vector<Pattern> reads = {Xp("a//b", symbols_),
                                      Xp("b/c", symbols_),
                                      Xp("x//y", symbols_)};
  std::vector<UpdateOp> updates;
  updates.push_back(Delete("a//c"));
  engine.DetectPairs(reads, updates, {{0, 0}, {1, 0}, {2, 0}});
  EXPECT_EQ(engine.stats().cache_evictions, 2u);
  EXPECT_EQ(engine.cache_size(), 1u);
  // The highest-id key (the last read) is the survivor.
  const uint64_t solved_before = engine.stats().unique_pairs_solved;
  engine.DetectPairs(reads, updates, {{2, 0}});
  EXPECT_EQ(engine.stats().unique_pairs_solved, solved_before);
  engine.DetectPairs(reads, updates, {{0, 0}});
  EXPECT_EQ(engine.stats().unique_pairs_solved, solved_before + 1);
}

TEST_F(BatchDetectorTest, KnownVerdictsSurviveTheBatchPath) {
  // a//b vs insert <b/> under a: conflict (linear PTIME path).
  // x//y vs delete a//c: different labels, no conflict.
  std::vector<Pattern> reads = {Xp("a//b", symbols_), Xp("x//y", symbols_)};
  std::vector<UpdateOp> updates;
  updates.push_back(Insert("a", "<b/>"));
  BatchConflictDetector engine(Options(2));
  const auto matrix = engine.DetectMatrix(reads, updates);
  ASSERT_TRUE(matrix[0]->ok());
  EXPECT_EQ((*matrix[0])->verdict, ConflictVerdict::kConflict);
  EXPECT_TRUE((*matrix[0])->witness.has_value());
  ASSERT_TRUE(matrix[1]->ok());
  EXPECT_EQ((*matrix[1])->verdict, ConflictVerdict::kNoConflict);
}

}  // namespace
}  // namespace xmlup
