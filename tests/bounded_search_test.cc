#include "conflict/bounded_search.h"

#include <set>

#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "xml/isomorphism.h"

namespace xmlup {
namespace {

using testing_util::NewSymbols;
using testing_util::Xml;
using testing_util::Xp;

class TreeEnumeratorTest : public ::testing::Test {
 protected:
  std::shared_ptr<SymbolTable> symbols_ = NewSymbols();

  std::vector<Label> Alphabet(size_t n) {
    std::vector<Label> a;
    for (size_t i = 0; i < n; ++i) {
      a.push_back(symbols_->Intern(std::string(1, 'a' + i)));
    }
    return a;
  }
};

TEST_F(TreeEnumeratorTest, CountsUnlabeledTrees) {
  // With a single label, tree counts are the numbers of unordered rooted
  // trees: 1, 1, 2, 4, 9, 20, 48 (OEIS A000081 partial sums below).
  const uint64_t expected_cumulative[] = {1, 2, 4, 8, 17, 37, 85};
  for (size_t n = 1; n <= 7; ++n) {
    TreeEnumerator e(symbols_, Alphabet(1), n);
    EXPECT_FALSE(e.truncated());
    EXPECT_EQ(e.count(), expected_cumulative[n - 1]) << "max_nodes=" << n;
  }
}

TEST_F(TreeEnumeratorTest, CountsLabeledTrees) {
  // Two labels: t(1)=2, t(2)=4, t(3)=14 → cumulative 2, 6, 20.
  TreeEnumerator e1(symbols_, Alphabet(2), 1);
  EXPECT_EQ(e1.count(), 2u);
  TreeEnumerator e2(symbols_, Alphabet(2), 2);
  EXPECT_EQ(e2.count(), 6u);
  TreeEnumerator e3(symbols_, Alphabet(2), 3);
  EXPECT_EQ(e3.count(), 20u);
}

TEST_F(TreeEnumeratorTest, NoIsomorphicDuplicates) {
  TreeEnumerator e(symbols_, Alphabet(2), 4);
  std::set<std::string> codes;
  size_t visited = 0;
  e.Enumerate([&](const Tree& t) {
    ++visited;
    EXPECT_TRUE(t.Validate().ok());
    EXPECT_LE(t.size(), 4u);
    const std::string code = CanonicalCode(t);
    EXPECT_TRUE(codes.insert(code).second) << "duplicate: " << code;
    return true;
  });
  EXPECT_EQ(visited, e.count());
}

TEST_F(TreeEnumeratorTest, EarlyStop) {
  TreeEnumerator e(symbols_, Alphabet(2), 4);
  size_t visited = 0;
  const bool completed = e.Enumerate([&](const Tree&) {
    return ++visited < 5;
  });
  EXPECT_FALSE(completed);
  EXPECT_EQ(visited, 5u);
}

TEST_F(TreeEnumeratorTest, CapTruncatesGeneration) {
  TreeEnumerator e(symbols_, Alphabet(2), 6, /*max_shapes=*/10);
  EXPECT_TRUE(e.truncated());
  EXPECT_LE(e.count(), 10u);
}

class BruteForceTest : public ::testing::Test {
 protected:
  std::shared_ptr<SymbolTable> symbols_ = NewSymbols();
};

TEST_F(BruteForceTest, FindsKnownInsertConflict) {
  BoundedSearchOptions options;
  options.max_nodes = 3;
  Tree x = Xml("<C/>", symbols_);
  const BruteForceResult r = BruteForceReadInsertSearch(
      Xp("x//C", symbols_), Xp("x/B", symbols_), x,
      ConflictSemantics::kNode, options);
  ASSERT_EQ(r.outcome, SearchOutcome::kWitnessFound);
  ASSERT_TRUE(r.witness.has_value());
  EXPECT_TRUE(IsReadInsertWitness(Xp("x//C", symbols_), Xp("x/B", symbols_),
                                  x, *r.witness, ConflictSemantics::kNode));
  EXPECT_GT(r.trees_checked, 0u);
}

TEST_F(BruteForceTest, ExhaustsWithoutWitnessWhenNoConflict) {
  BoundedSearchOptions options;
  options.max_nodes = 4;
  Tree x = Xml("<C/>", symbols_);
  const BruteForceResult r = BruteForceReadInsertSearch(
      Xp("x//D", symbols_), Xp("x/B", symbols_), x,
      ConflictSemantics::kNode, options);
  EXPECT_EQ(r.outcome, SearchOutcome::kExhaustedNoWitness);
  EXPECT_FALSE(r.witness.has_value());
}

TEST_F(BruteForceTest, FindsKnownDeleteConflict) {
  BoundedSearchOptions options;
  options.max_nodes = 3;
  const BruteForceResult r = BruteForceReadDeleteSearch(
      Xp("a//b", symbols_), Xp("a//c", symbols_), ConflictSemantics::kNode,
      options);
  ASSERT_EQ(r.outcome, SearchOutcome::kWitnessFound);
  EXPECT_TRUE(IsReadDeleteWitness(Xp("a//b", symbols_), Xp("a//c", symbols_),
                                  *r.witness, ConflictSemantics::kNode));
}

TEST_F(BruteForceTest, BudgetExceededIsReported) {
  BoundedSearchOptions options;
  options.max_nodes = 8;
  options.max_trees = 50;  // far too small to exhaust
  const BruteForceResult r = BruteForceReadDeleteSearch(
      Xp("a/q", symbols_), Xp("a/z", symbols_), ConflictSemantics::kNode,
      options);
  EXPECT_EQ(r.outcome, SearchOutcome::kBudgetExceeded);
}

TEST_F(BruteForceTest, TruncationSetsFlagAndBudgetExceeded) {
  // Regression (soundness audit): a truncated enumeration must surface as
  // kBudgetExceeded with truncated == true, never as exhaustion.
  BoundedSearchOptions options;
  options.max_nodes = 8;
  options.max_trees = 5;  // forces TreeEnumerator::truncated()
  const BruteForceResult r = BruteForceReadDeleteSearch(
      Xp("a/q", symbols_), Xp("a/z", symbols_), ConflictSemantics::kNode,
      options);
  EXPECT_EQ(r.outcome, SearchOutcome::kBudgetExceeded);
  EXPECT_TRUE(r.truncated);
  EXPECT_FALSE(r.witness.has_value());
}

TEST_F(BruteForceTest, CompletedSearchIsNotTruncated) {
  BoundedSearchOptions options;
  options.max_nodes = 4;
  const BruteForceResult r = BruteForceReadInsertSearch(
      Xp("x//D", symbols_), Xp("x/B", symbols_), Xml("<C/>", symbols_),
      ConflictSemantics::kNode, options);
  EXPECT_EQ(r.outcome, SearchOutcome::kExhaustedNoWitness);
  EXPECT_FALSE(r.truncated);
}

TEST_F(BruteForceTest, PaperWitnessBound) {
  const Pattern read = Xp("a/*/*/b", symbols_);  // |R|=4, star length 2
  const Pattern ins = Xp("c//d", symbols_);      // |I|=2
  EXPECT_EQ(PaperWitnessBound(read, ins), 4u * 2u * 3u);
}

TEST_F(BruteForceTest, BranchingPatternsSupported) {
  // The NP-side search handles branching reads the PTIME detectors reject.
  BoundedSearchOptions options;
  options.max_nodes = 4;
  Tree x = Xml("<g/>", symbols_);
  const BruteForceResult r = BruteForceReadInsertSearch(
      Xp("a[b][g]", symbols_), Xp("a[b]/b", symbols_), x,
      ConflictSemantics::kNode, options);
  // Inserting g under b gives the root both a b child and ... g is at
  // depth 2, not a child of a: no node conflict from this insert.
  // (The point of this test: the search exhausts without crashing.)
  EXPECT_NE(r.outcome, SearchOutcome::kBudgetExceeded);
}

TEST_F(BruteForceTest, BranchingReadConflictFound) {
  // read a[c] (root with c child) vs insert X=<c/> under a: inserting a c
  // child makes the read return the root where it previously did not.
  BoundedSearchOptions options;
  options.max_nodes = 3;
  Tree x = Xml("<c/>", symbols_);
  Pattern read(symbols_);
  const PatternNodeId root = read.CreateRoot(symbols_->Intern("a"));
  read.AddChild(root, symbols_->Intern("c"), Axis::kChild);
  read.SetOutput(root);
  Pattern ins = Xp("a", symbols_);
  const BruteForceResult r = BruteForceReadInsertSearch(
      read, ins, x, ConflictSemantics::kNode, options);
  ASSERT_EQ(r.outcome, SearchOutcome::kWitnessFound);
  EXPECT_TRUE(IsReadInsertWitness(read, ins, x, *r.witness,
                                  ConflictSemantics::kNode));
}

}  // namespace
}  // namespace xmlup
