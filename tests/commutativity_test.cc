#include "conflict/commutativity.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace xmlup {
namespace {

using testing_util::NewSymbols;
using testing_util::Xml;
using testing_util::Xp;

class CommutativityTest : public ::testing::Test {
 protected:
  std::shared_ptr<SymbolTable> symbols_ = NewSymbols();

  UpdateOp Ins(const char* pattern, const char* x) {
    return UpdateOp::MakeInsert(
        Xp(pattern, symbols_),
        std::make_shared<const Tree>(Xml(x, symbols_)));
  }
  UpdateOp Del(const char* pattern) {
    Result<UpdateOp> op = UpdateOp::MakeDelete(Xp(pattern, symbols_));
    EXPECT_TRUE(op.ok());
    return std::move(op).value();
  }
};

TEST_F(CommutativityTest, DeleteRejectsRootPattern) {
  EXPECT_FALSE(UpdateOp::MakeDelete(Xp("a", symbols_)).ok());
}

TEST_F(CommutativityTest, IdenticalInsertsCommute) {
  // §6: identical insertions ought not to conflict under value semantics.
  const UpdateOp i1 = Ins("a/b", "<c/>");
  const UpdateOp i2 = Ins("a/b", "<c/>");
  Tree t = Xml("<a><b/></a>", symbols_);
  EXPECT_TRUE(UpdatesCommuteOn(t, i1, i2));
  BoundedSearchOptions options;
  options.max_nodes = 4;
  const BruteForceResult r = FindCommutativityViolation(i1, i2, options);
  EXPECT_EQ(r.outcome, SearchOutcome::kExhaustedNoWitness);
}

TEST_F(CommutativityTest, InsertEnablingInsertDoesNotCommute) {
  // i1 inserts <b/> under a; i2 inserts <c/> under b. Running i1 first
  // creates more b's for i2 to fire on.
  const UpdateOp i1 = Ins("a", "<b/>");
  const UpdateOp i2 = Ins("a/b", "<c/>");
  Tree t = Xml("<a/>", symbols_);
  EXPECT_FALSE(UpdatesCommuteOn(t, i1, i2));
  BoundedSearchOptions options;
  options.max_nodes = 3;
  const BruteForceResult r = FindCommutativityViolation(i1, i2, options);
  ASSERT_EQ(r.outcome, SearchOutcome::kWitnessFound);
  EXPECT_FALSE(UpdatesCommuteOn(*r.witness, i1, i2));
}

TEST_F(CommutativityTest, DeleteDeleteOverlapping) {
  // d1 deletes b subtrees; d2 deletes c nodes under b. Order matters only
  // for which points exist, but the final tree is the same: b is gone
  // either way. These commute.
  const UpdateOp d1 = Del("a/b");
  const UpdateOp d2 = Del("a/b/c");
  BoundedSearchOptions options;
  options.max_nodes = 4;
  const BruteForceResult r = FindCommutativityViolation(d1, d2, options);
  EXPECT_EQ(r.outcome, SearchOutcome::kExhaustedNoWitness);
}

TEST_F(CommutativityTest, DeleteGuardedByPredicateDoesNotCommute) {
  // d1 deletes b[c] nodes; d2 deletes c nodes. Running d2 first disarms
  // d1's predicate, so the b survives.
  const UpdateOp d1 = Del("a/b[c]");
  const UpdateOp d2 = Del("a/b/c");
  Tree t = Xml("<a><b><c/></b></a>", symbols_);
  EXPECT_FALSE(UpdatesCommuteOn(t, d1, d2));
  BoundedSearchOptions options;
  options.max_nodes = 3;
  const BruteForceResult r = FindCommutativityViolation(d1, d2, options);
  ASSERT_EQ(r.outcome, SearchOutcome::kWitnessFound);
}

TEST_F(CommutativityTest, InsertDeleteInterference) {
  // Insert adds a c under b; delete removes b[c]. Insert-then-delete kills
  // every b; delete-then-insert keeps previously c-free b's (with a new c).
  const UpdateOp ins = Ins("a/b", "<c/>");
  const UpdateOp del = Del("a/b[c]");
  Tree t = Xml("<a><b/></a>", symbols_);
  EXPECT_FALSE(UpdatesCommuteOn(t, ins, del));
}

TEST_F(CommutativityTest, DisjointUpdatesCommute) {
  const UpdateOp ins = Ins("a/x", "<m/>");
  const UpdateOp del = Del("a/y");
  BoundedSearchOptions options;
  options.max_nodes = 4;
  const BruteForceResult r = FindCommutativityViolation(ins, del, options);
  EXPECT_EQ(r.outcome, SearchOutcome::kExhaustedNoWitness);
}

TEST_F(CommutativityTest, ApplyInPlaceSemantics) {
  Tree t = Xml("<a><b/><b/></a>", symbols_);
  Ins("a/b", "<c/>").ApplyInPlace(&t);
  EXPECT_EQ(t.size(), 5u);
  Del("a/b").ApplyInPlace(&t);
  EXPECT_EQ(t.size(), 1u);
}

}  // namespace
}  // namespace xmlup
