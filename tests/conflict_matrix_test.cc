#include "conflict/conflict_matrix.h"

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/random.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace xmlup {
namespace {

using testing_util::NewSymbols;
using testing_util::Xml;
using testing_util::Xp;

class ConflictMatrixTest : public ::testing::Test {
 protected:
  std::shared_ptr<SymbolTable> symbols_ = NewSymbols();

  std::shared_ptr<const Tree> Content(const char* xml) {
    return std::make_shared<const Tree>(Xml(xml, symbols_));
  }

  UpdateOp Insert(const char* xpath, const char* xml) {
    return UpdateOp::MakeInsert(Xp(xpath, symbols_), Content(xml));
  }

  UpdateOp Delete(const char* xpath) {
    Result<UpdateOp> del = UpdateOp::MakeDelete(Xp(xpath, symbols_));
    EXPECT_TRUE(del.ok()) << del.status();
    return std::move(del).value();
  }

  /// Distinct pools the randomized tests draw from — the 12-read/8-update
  /// repertoire of the E12 batch workload.
  std::vector<Pattern> ReadPool() {
    std::vector<Pattern> reads;
    for (const char* x :
         {"a//b", "a/b/c", "a[b]/c", "x//y", "a/*/c", "a[b][c]", "b/c",
          "a[.//d]/b", "a//c", "x/y", "a/b", "*/d"}) {
      reads.push_back(Xp(x, symbols_));
    }
    return reads;
  }

  std::vector<UpdateOp> UpdatePool() {
    std::vector<UpdateOp> updates;
    updates.push_back(Insert("a/b", "<c/>"));
    updates.push_back(Delete("a//c"));
    updates.push_back(Delete("x/y"));
    updates.push_back(Insert("a", "<b><c/></b>"));
    updates.push_back(Insert("b", "<d/>"));
    updates.push_back(Delete("*/d"));
    updates.push_back(Insert("x", "<y/>"));
    updates.push_back(Delete("a/b/c"));
    return updates;
  }

  static BatchDetectorOptions Options(size_t threads,
                                      size_t max_cache_entries = 0) {
    BatchDetectorOptions options;
    options.detector.search.max_nodes = 4;
    options.num_threads = threads;
    options.max_cache_entries = max_cache_entries;
    return options;
  }

  /// Scheduling-independent cell fingerprint (same fields the batch
  /// detector tests compare: verdict, method, trees_checked).
  static std::vector<std::tuple<int, std::string, uint64_t>> Fingerprint(
      const std::vector<SharedConflictResult>& matrix) {
    std::vector<std::tuple<int, std::string, uint64_t>> out;
    for (const SharedConflictResult& cell : matrix) {
      EXPECT_NE(cell, nullptr);
      if (!cell->ok()) {
        out.emplace_back(-1, cell->status().ToString(), 0);
        continue;
      }
      const ConflictReport& report = **cell;
      out.emplace_back(static_cast<int>(report.verdict),
                       std::string(DetectorMethodName(report.method)),
                       report.trees_checked);
    }
    return out;
  }

  /// The oracle: the maintained matrix must be cell-for-cell equal to a
  /// from-scratch DetectMatrix over its current contents, on a cold engine.
  void ExpectMatchesFromScratch(const MaintainedConflictMatrix& matrix,
                                const std::vector<Pattern>& reads,
                                const std::vector<UpdateOp>& updates) {
    ASSERT_EQ(matrix.num_reads(), reads.size());
    ASSERT_EQ(matrix.num_updates(), updates.size());
    BatchConflictDetector scratch(Options(1));
    EXPECT_EQ(Fingerprint(matrix.RowMajor()),
              Fingerprint(scratch.DetectMatrix(reads, updates)));
  }

  /// K random edits applied in lockstep to a MaintainedConflictMatrix and
  /// to plain read/update vectors, oracle-checked after every edit.
  void RunRandomEditOracle(const BatchDetectorOptions& options, uint64_t seed,
                           int edits) {
    const std::vector<Pattern> read_pool = ReadPool();
    const std::vector<UpdateOp> update_pool = UpdatePool();
    Rng rng(seed);

    MaintainedConflictMatrix matrix(options);
    std::vector<Pattern> reads(read_pool.begin(), read_pool.begin() + 4);
    std::vector<UpdateOp> updates(update_pool.begin(), update_pool.begin() + 3);
    matrix.Assign(reads, updates);
    ExpectMatchesFromScratch(matrix, reads, updates);

    for (int e = 0; e < edits; ++e) {
      // Keep both dimensions non-empty so every edit kind stays available.
      const uint64_t kind = rng.NextBounded(6);
      switch (kind) {
        case 0: {
          const Pattern& read = read_pool[rng.NextBounded(read_pool.size())];
          EXPECT_EQ(matrix.AddRead(read), reads.size());
          reads.push_back(read);
          break;
        }
        case 1: {
          const UpdateOp& update =
              update_pool[rng.NextBounded(update_pool.size())];
          EXPECT_EQ(matrix.AddUpdate(update), updates.size());
          updates.push_back(update);
          break;
        }
        case 2: {
          if (reads.size() <= 1) continue;
          const size_t i = rng.NextBounded(reads.size());
          matrix.RemoveRead(i);
          reads.erase(reads.begin() + static_cast<ptrdiff_t>(i));
          break;
        }
        case 3: {
          if (updates.size() <= 1) continue;
          const size_t j = rng.NextBounded(updates.size());
          matrix.RemoveUpdate(j);
          updates.erase(updates.begin() + static_cast<ptrdiff_t>(j));
          break;
        }
        case 4: {
          const size_t i = rng.NextBounded(reads.size());
          const Pattern& read = read_pool[rng.NextBounded(read_pool.size())];
          matrix.ReplaceRead(i, read);
          reads[i] = read;
          break;
        }
        default: {
          const size_t j = rng.NextBounded(updates.size());
          const UpdateOp& update =
              update_pool[rng.NextBounded(update_pool.size())];
          matrix.ReplaceUpdate(j, update);
          updates[j] = update;
          break;
        }
      }
      ExpectMatchesFromScratch(matrix, reads, updates);
      const BatchStats& stats = matrix.engine().stats();
      EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.pairs_total);
    }
  }
};

TEST_F(ConflictMatrixTest, AssignMatchesDetectMatrix) {
  const std::vector<Pattern> reads = ReadPool();
  const std::vector<UpdateOp> updates = UpdatePool();
  MaintainedConflictMatrix matrix(Options(2));
  matrix.Assign(reads, updates);
  ExpectMatchesFromScratch(matrix, reads, updates);
  // cell() and RowMajor() agree on layout.
  const auto flat = matrix.RowMajor();
  for (size_t i = 0; i < reads.size(); ++i) {
    for (size_t j = 0; j < updates.size(); ++j) {
      EXPECT_EQ(matrix.cell(i, j), flat[i * updates.size() + j]);
    }
  }
}

TEST_F(ConflictMatrixTest, RandomEditsMatchFromScratchOneThread) {
  RunRandomEditOracle(Options(1), /*seed=*/7, /*edits=*/24);
}

TEST_F(ConflictMatrixTest, RandomEditsMatchFromScratchEightThreads) {
  RunRandomEditOracle(Options(8), /*seed=*/7, /*edits=*/24);
}

TEST_F(ConflictMatrixTest, RandomEditsMatchFromScratchUnderEviction) {
  // A cache bound small enough that the edit stream keeps evicting: the
  // maintained matrix must still equal from-scratch on every step, and the
  // engine's accounting invariant must survive eviction.
  BatchDetectorOptions options = Options(1, /*max_cache_entries=*/6);
  RunRandomEditOracle(options, /*seed=*/11, /*edits=*/24);
  // Build one more matrix under the same bound and confirm evictions
  // actually happened for this pool size (12×8 distinct pairs >> 6).
  MaintainedConflictMatrix matrix(options);
  matrix.Assign(ReadPool(), UpdatePool());
  const BatchStats& stats = matrix.engine().stats();
  EXPECT_GT(stats.cache_evictions, 0u);
  EXPECT_LE(matrix.engine().cache_size(), 6u);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.pairs_total);
}

TEST_F(ConflictMatrixTest, DeltaStatsAccountForEveryEdit) {
  MaintainedConflictMatrix matrix(Options(1));
  std::vector<Pattern> reads = {Xp("a//b", symbols_), Xp("b/c", symbols_)};
  std::vector<UpdateOp> updates = {Insert("a/b", "<c/>"), Delete("a//c"),
                                   Delete("x/y")};
  matrix.Assign(reads, updates);  // 2×3
  EXPECT_EQ(matrix.delta_stats().edits, 1u);
  EXPECT_EQ(matrix.delta_stats().cells_recomputed, 6u);
  EXPECT_EQ(matrix.delta_stats().cells_reused, 0u);
  EXPECT_EQ(matrix.delta_stats().cells_dropped, 0u);

  matrix.AddRead(Xp("x//y", symbols_));  // now 3×3: +3 recomputed, 6 reused
  EXPECT_EQ(matrix.delta_stats().edits, 2u);
  EXPECT_EQ(matrix.delta_stats().cells_recomputed, 9u);
  EXPECT_EQ(matrix.delta_stats().cells_reused, 6u);

  matrix.AddUpdate(Insert("b", "<d/>"));  // 3×4: +3 recomputed, 9 reused
  EXPECT_EQ(matrix.delta_stats().cells_recomputed, 12u);
  EXPECT_EQ(matrix.delta_stats().cells_reused, 15u);

  matrix.ReplaceUpdate(1, Delete("*/d"));  // 3 recomputed, 9 reused, 3 dropped
  EXPECT_EQ(matrix.delta_stats().cells_recomputed, 15u);
  EXPECT_EQ(matrix.delta_stats().cells_reused, 24u);
  EXPECT_EQ(matrix.delta_stats().cells_dropped, 3u);

  matrix.RemoveRead(0);  // 2×4 remain: 8 reused, 4 dropped, 0 recomputed
  EXPECT_EQ(matrix.delta_stats().edits, 5u);
  EXPECT_EQ(matrix.delta_stats().cells_recomputed, 15u);
  EXPECT_EQ(matrix.delta_stats().cells_reused, 32u);
  EXPECT_EQ(matrix.delta_stats().cells_dropped, 7u);

  matrix.RemoveUpdate(3);  // 2×3 remain: 6 reused, 2 dropped
  EXPECT_EQ(matrix.delta_stats().cells_reused, 38u);
  EXPECT_EQ(matrix.delta_stats().cells_dropped, 9u);
  ExpectMatchesFromScratch(
      matrix, {Xp("b/c", symbols_), Xp("x//y", symbols_)},
      {Insert("a/b", "<c/>"), Delete("*/d"), Delete("x/y")});
}

TEST_F(ConflictMatrixTest, SingleEditOfLargeMatrixCostsAtMostOneRowOrColumn) {
  // The PR's acceptance criterion: after a single-statement edit of a
  // 64×64 matrix, the engine sees at most max(N, M) = 64 new pair
  // requests (and the recompute delta is exactly one row / column).
  const std::vector<Pattern> read_pool = ReadPool();
  const std::vector<UpdateOp> update_pool = UpdatePool();
  std::vector<Pattern> reads;
  std::vector<UpdateOp> updates;
  for (size_t i = 0; i < 64; ++i) {
    reads.push_back(read_pool[i % read_pool.size()]);
    updates.push_back(update_pool[i % update_pool.size()]);
  }
  MaintainedConflictMatrix matrix(Options(2));
  matrix.Assign(reads, updates);
  ASSERT_EQ(matrix.engine().stats().pairs_total, 64u * 64u);

  const auto edit_cost = [&](auto&& edit) {
    const BatchStats before = matrix.engine().stats();
    const DeltaStats delta_before = matrix.delta_stats();
    edit();
    const BatchStats& after = matrix.engine().stats();
    EXPECT_LE(after.pairs_total - before.pairs_total, 64u);
    // The pools repeat, so most requests are memo hits — solves stay far
    // below the request bound too.
    EXPECT_LE(after.unique_pairs_solved - before.unique_pairs_solved, 64u);
    return matrix.delta_stats().cells_recomputed -
           delta_before.cells_recomputed;
  };

  EXPECT_EQ(edit_cost([&] { matrix.ReplaceRead(17, Xp("q//r", symbols_)); }),
            64u);
  EXPECT_EQ(edit_cost([&] { matrix.ReplaceUpdate(40, Insert("q", "<r/>")); }),
            64u);
  EXPECT_EQ(edit_cost([&] { matrix.RemoveRead(5); }), 0u);
  EXPECT_EQ(edit_cost([&] { matrix.AddUpdate(Delete("q//r")); }), 63u);
}

TEST_F(ConflictMatrixTest, SharedEngineReusesStoreAndCache) {
  auto engine = std::make_shared<BatchConflictDetector>(Options(1));
  MaintainedConflictMatrix first(engine);
  first.Assign(ReadPool(), UpdatePool());
  const uint64_t solved = engine->stats().unique_pairs_solved;
  ASSERT_GT(solved, 0u);
  // A second matrix over the same engine answers everything from cache.
  MaintainedConflictMatrix second(engine);
  second.Assign(ReadPool(), UpdatePool());
  EXPECT_EQ(engine->stats().unique_pairs_solved, solved);
  EXPECT_EQ(first.shared_engine(), second.shared_engine());
  EXPECT_EQ(Fingerprint(first.RowMajor()), Fingerprint(second.RowMajor()));
}

}  // namespace
}  // namespace xmlup
