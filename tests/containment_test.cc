#include "conflict/containment.h"

#include "common/random.h"
#include "conflict/bounded_search.h"
#include "eval/evaluator.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "workload/pattern_generator.h"

namespace xmlup {
namespace {

using testing_util::NewSymbols;
using testing_util::Xp;

class ContainmentTest : public ::testing::Test {
 protected:
  std::shared_ptr<SymbolTable> symbols_ = NewSymbols();

  bool Contained(const char* p, const char* q) {
    const ContainmentDecision d =
        DecideContainment(Xp(p, symbols_), Xp(q, symbols_));
    if (!d.contained) {
      // Sanity: the counterexample must separate the patterns.
      EXPECT_TRUE(d.counterexample.has_value());
      EXPECT_TRUE(HasEmbedding(Xp(p, symbols_), *d.counterexample));
      EXPECT_FALSE(HasEmbedding(Xp(q, symbols_), *d.counterexample));
    }
    return d.contained;
  }
};

TEST_F(ContainmentTest, ReflexiveAndBasic) {
  EXPECT_TRUE(Contained("a/b", "a/b"));
  EXPECT_TRUE(Contained("a/b", "a//b"));
  EXPECT_FALSE(Contained("a//b", "a/b"));
  EXPECT_TRUE(Contained("a/b", "a/*"));
  EXPECT_FALSE(Contained("a/*", "a/b"));
  EXPECT_TRUE(Contained("a/b", "a"));
  EXPECT_FALSE(Contained("a", "a/b"));
}

TEST_F(ContainmentTest, BranchingCases) {
  EXPECT_TRUE(Contained("a[b][c]", "a[b]"));
  EXPECT_FALSE(Contained("a[b]", "a[b][c]"));
  EXPECT_TRUE(Contained("a[b/c]", "a[b]"));
  EXPECT_TRUE(Contained("a[b/c]", "a[.//c]"));
  EXPECT_FALSE(Contained("a[.//c]", "a[b/c]"));
}

TEST_F(ContainmentTest, MiklauSuciuStarChainExample) {
  // The classic subtlety: a//b ⊆ a/*...? No — but a//*//b vs a//b shows
  // why canonical models need z-chains longer than the star length.
  EXPECT_TRUE(Contained("a//*//b", "a//b"));
  EXPECT_FALSE(Contained("a//b", "a//*//b"));
  EXPECT_TRUE(Contained("a/*/b", "a//b"));
  EXPECT_FALSE(Contained("a//b", "a/*/b"));
}

TEST_F(ContainmentTest, WildcardInContaineeNotContainer) {
  // p with a wildcard is "bigger": a/* ⊄ a/b but a/b ⊆ a/*.
  EXPECT_TRUE(Contained("x[a][b]", "x[*]"));
  EXPECT_FALSE(Contained("x[*]", "x[a]"));
}

TEST_F(ContainmentTest, HomomorphismIsSound) {
  // Whenever the PTIME homomorphism exists, the exact decision agrees.
  const char* cases[][2] = {
      {"a/b", "a//b"},   {"a[b][c]", "a[b]"}, {"a/b/c", "a//c"},
      {"a[b/c]", "a[.//c]"}, {"a/b", "a/*"},  {"x//y//z", "x//z"},
  };
  for (const auto& c : cases) {
    const Pattern p = Xp(c[0], symbols_);
    const Pattern q = Xp(c[1], symbols_);
    EXPECT_TRUE(HasContainmentHomomorphism(p, q)) << c[0] << " vs " << c[1];
    EXPECT_TRUE(DecideContainment(p, q).contained) << c[0] << " vs " << c[1];
  }
}

TEST_F(ContainmentTest, HomomorphismAbsentOnNonContainment) {
  // Soundness contrapositive: not contained ⇒ no homomorphism.
  const char* cases[][2] = {
      {"a//b", "a/b"}, {"a[b]", "a[c]"}, {"a/*", "a/b"},
  };
  for (const auto& c : cases) {
    EXPECT_FALSE(
        HasContainmentHomomorphism(Xp(c[0], symbols_), Xp(c[1], symbols_)))
        << c[0] << " vs " << c[1];
  }
}

TEST_F(ContainmentTest, ModelCountGrowsWithDescendantEdges) {
  const Pattern q = Xp("a/b", symbols_);  // star length 0 → w = 1
  EXPECT_EQ(CanonicalModelCount(Xp("a/b", symbols_), q), 1u);
  EXPECT_EQ(CanonicalModelCount(Xp("a//b", symbols_), q), 2u);
  EXPECT_EQ(CanonicalModelCount(Xp("a//b//c", symbols_), q), 4u);
}

TEST_F(ContainmentTest, ModelsCheckedMatchesCount) {
  const Pattern p = Xp("a//b//c", symbols_);
  const Pattern q = Xp("a//b//c", symbols_);
  const ContainmentDecision d = DecideContainment(p, q);
  EXPECT_TRUE(d.contained);
  EXPECT_EQ(d.models_checked, CanonicalModelCount(p, q));
}

/// The decisive sweep: the exact canonical-model algorithm is validated
/// against exhaustive small-tree search. p ⊆ q iff no tree (up to the
/// budget) embeds p but not q.
class ContainmentPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ContainmentPropertyTest, AgreesWithExhaustiveSearch) {
  auto symbols = NewSymbols();
  Rng rng(15000 + GetParam());
  PatternGenOptions options;
  options.size = 3;
  options.alphabet = {symbols->Intern("a"), symbols->Intern("b")};
  RandomPatternGenerator gen(symbols, options);

  for (int iter = 0; iter < 10; ++iter) {
    const Pattern p = rng.NextBool(0.5) ? gen.GenerateLinear(&rng)
                                        : gen.GenerateBranching(&rng);
    const Pattern q = rng.NextBool(0.5) ? gen.GenerateLinear(&rng)
                                        : gen.GenerateBranching(&rng);
    const ContainmentDecision exact = DecideContainment(p, q);

    // Exhaustive check over all trees with <= 5 nodes over the pattern
    // alphabet plus one fresh label.
    std::vector<Label> alphabet = options.alphabet;
    alphabet.push_back(symbols->Fresh("z"));
    TreeEnumerator enumerator(symbols, alphabet, 5);
    bool found_separator = false;
    enumerator.Enumerate([&](const Tree& t) {
      if (HasEmbedding(p, t) && !HasEmbedding(q, t)) {
        found_separator = true;
        return false;
      }
      return true;
    });
    if (exact.contained) {
      EXPECT_FALSE(found_separator)
          << "exact says contained but a small separating tree exists; "
          << "seed=" << GetParam() << " iter=" << iter;
    } else {
      // Verify the counterexample (trees may be larger than 5 nodes, so
      // found_separator may be false even when not contained).
      ASSERT_TRUE(exact.counterexample.has_value());
      EXPECT_TRUE(HasEmbedding(p, *exact.counterexample));
      EXPECT_FALSE(HasEmbedding(q, *exact.counterexample));
    }
    // Homomorphism soundness on the same pair.
    if (HasContainmentHomomorphism(p, q)) {
      EXPECT_TRUE(exact.contained) << "hom test unsound; seed=" << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ContainmentPropertyTest,
                         ::testing::Range(0, 14));

}  // namespace
}  // namespace xmlup
