// The compiled-automata hot path must be invisible except for speed: the
// ref-based Detect (compiled NFAs from PatternStore::compiled + the
// NfaProductCache) and the value Detect on the stored pattern must agree
// on every deterministic report field, over an exhaustive small-pattern
// sweep, randomized programs, and under 8-way concurrency on one shared
// store. Also covers this PR's error-path fixes: the detector accounting
// invariant (calls == conflict + no_conflict + unknown + errors), the
// store.nfa.* / detector.product_cache.* counter contracts, and the
// centralized root-delete guard on every entry point (factories, value
// and compiled detectors, batch engine).

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "automata/nfa_ops.h"
#include "common/random.h"
#include "conflict/batch_detector.h"
#include "conflict/detector.h"
#include "conflict/read_delete.h"
#include "conflict/read_insert.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "pattern/compiled_pattern.h"
#include "pattern/pattern_store.h"
#include "tests/test_util.h"
#include "workload/pattern_generator.h"
#include "xml/tree_algos.h"

namespace xmlup {
namespace {

using testing_util::NewSymbols;
using testing_util::Xml;
using testing_util::Xp;

/// Field-by-field agreement on everything deterministic across calls.
/// Witness *trees* are excluded: their construction mints fresh labels
/// ("mfill$n"/"uniq$n"), so trees differ textually between any two runs —
/// both sides' witnesses are already re-verified by the Lemma 1 checkers
/// inside the detectors, so presence is the right comparison here.
void ExpectSameReport(const Result<ConflictReport>& by_value,
                      const Result<ConflictReport>& by_ref,
                      const std::string& label) {
  ASSERT_EQ(by_value.ok(), by_ref.ok()) << label;
  if (!by_value.ok()) {
    EXPECT_EQ(by_value.status().code(), by_ref.status().code()) << label;
    return;
  }
  EXPECT_EQ(by_value->verdict, by_ref->verdict) << label;
  EXPECT_EQ(by_value->method, by_ref->method) << label;
  EXPECT_EQ(by_value->trees_checked, by_ref->trees_checked) << label;
  EXPECT_EQ(by_value->detail, by_ref->detail) << label;
  EXPECT_EQ(by_value->witness.has_value(), by_ref->witness.has_value())
      << label;
}

/// Every linear pattern with 1..max_nodes nodes over `labels` (a chain per
/// shape: all axis assignments × labelings; output = the unique leaf).
std::vector<Pattern> EnumerateLinearPatterns(
    const std::shared_ptr<SymbolTable>& symbols,
    const std::vector<Label>& labels, size_t max_nodes) {
  std::vector<Pattern> out;
  for (size_t n = 1; n <= max_nodes; ++n) {
    const size_t edges = n - 1;
    for (size_t axes = 0; axes < (size_t{1} << edges); ++axes) {
      std::vector<size_t> labeling(n, 0);
      while (true) {
        Pattern p(symbols);
        PatternNodeId node = p.CreateRoot(labels[labeling[0]]);
        for (size_t i = 1; i < n; ++i) {
          const Axis axis =
              (axes >> (i - 1)) & 1 ? Axis::kDescendant : Axis::kChild;
          node = p.AddChild(node, labels[labeling[i]], axis);
        }
        p.SetOutput(node);
        out.push_back(std::move(p));
        size_t i = 0;
        while (i < n && labeling[i] == labels.size() - 1) labeling[i++] = 0;
        if (i == n) break;
        ++labeling[i];
      }
    }
  }
  return out;
}

/// A fixed mixed update workload bound to `store`: inserts and deletes
/// whose patterns/content overlap the {a, b} read alphabet so the sweep
/// hits conflicts, no-conflicts and the wildcard classes.
std::vector<UpdateOp> BoundUpdates(
    const std::shared_ptr<PatternStore>& store,
    const std::shared_ptr<SymbolTable>& symbols) {
  auto content_ab = std::make_shared<const Tree>(Xml("<a><b/></a>", symbols));
  auto content_b = std::make_shared<const Tree>(Xml("<b/>", symbols));
  std::vector<UpdateOp> updates;
  updates.push_back(UpdateOp::MakeInsert(store, store->Intern(Xp("a/b", symbols)),
                                         content_ab));
  updates.push_back(UpdateOp::MakeInsert(
      store, store->Intern(Xp("a//b", symbols)), content_b));
  updates.push_back(UpdateOp::MakeInsert(store, store->Intern(Xp("b", symbols)),
                                         content_ab));
  for (const char* del : {"a/b", "a//*", "b//a"}) {
    Result<UpdateOp> op =
        UpdateOp::MakeDelete(store, store->Intern(Xp(del, symbols)));
    EXPECT_TRUE(op.ok()) << del;
    updates.push_back(*std::move(op));
  }
  return updates;
}

TEST(DetectHotCacheTest, ExhaustiveLinearSweepCachedEqualsUncached) {
  auto symbols = NewSymbols();
  auto store = std::make_shared<PatternStore>(symbols);
  const std::vector<Label> labels = {symbols->Intern("a"),
                                     symbols->Intern("b"), kWildcardLabel};
  // 3 + 18 + 108 + 648 linear chains over {a, b, *} with <= 4 nodes.
  const std::vector<Pattern> reads =
      EnumerateLinearPatterns(symbols, labels, 4);
  ASSERT_EQ(reads.size(), 777u);
  const std::vector<UpdateOp> updates = BoundUpdates(store, symbols);

  DetectorOptions options;
  options.semantics = ConflictSemantics::kValue;
  for (size_t i = 0; i < reads.size(); ++i) {
    const PatternRef ref = store->Intern(reads[i]);
    for (size_t j = 0; j < updates.size(); ++j) {
      Result<ConflictReport> by_value =
          Detect(store->pattern(ref), updates[j], options);
      Result<ConflictReport> by_ref = Detect(*store, ref, updates[j], options);
      ExpectSameReport(by_value, by_ref,
                       "read " + std::to_string(i) + " update " +
                           std::to_string(j));
    }
  }
}

TEST(DetectHotCacheTest, RandomizedProgramsCachedEqualsUncached) {
  auto symbols = NewSymbols();
  auto store = std::make_shared<PatternStore>(symbols);
  Rng rng(20260807);
  PatternGenOptions gen_options;
  gen_options.size = 4;
  gen_options.branch_prob = 0.4;
  gen_options.alphabet = {symbols->Intern("a"), symbols->Intern("b"),
                          symbols->Intern("c")};
  RandomPatternGenerator gen(symbols, gen_options);
  DetectorOptions options;
  options.search.max_nodes = 4;

  for (int iter = 0; iter < 80; ++iter) {
    const bool linear_read = iter % 2 == 0;
    const Pattern read =
        linear_read ? gen.GenerateLinear(&rng) : gen.GenerateBranching(&rng);
    const PatternRef read_ref = store->Intern(read);
    const Pattern update = iter % 4 < 2 ? gen.GenerateLinear(&rng)
                                        : gen.GenerateBranching(&rng);
    UpdateOp op = [&]() -> UpdateOp {
      if (iter % 3 == 0) {
        Result<UpdateOp> del =
            UpdateOp::MakeDelete(store, store->Intern(update));
        if (del.ok()) return *std::move(del);
        // Root-selecting delete generated: fall through to an insert.
      }
      Tree x(symbols);
      x.CreateRoot(gen_options.alphabet[rng.NextBounded(3)]);
      return UpdateOp::MakeInsert(store, store->Intern(update),
                                  std::make_shared<const Tree>(CopyTree(x)));
    }();
    // Both sides run on the *stored* (minimized) read, so full field
    // equality is expected even for branching reads — the minimization
    // asymmetry of the facade tests does not arise here.
    Result<ConflictReport> by_value =
        Detect(store->pattern(read_ref), op, options);
    Result<ConflictReport> by_ref = Detect(*store, read_ref, op, options);
    ExpectSameReport(by_value, by_ref, "iter " + std::to_string(iter));
  }
}

TEST(DetectHotCacheTest, ConcurrentSharedStoreDeterminism) {
  auto symbols = NewSymbols();
  // Expected reports from the value path (no shared caches involved).
  auto reference_store = std::make_shared<PatternStore>(symbols);
  const std::vector<const char*> read_specs = {
      "a//b",       "a/b",     "a//*/b", "b//a",    "a[b]//c",
      "a[q]/b//c",  "*//b",    "a/a/b",  "a//b//*", "c/b/a",
  };
  DetectorOptions options;
  options.search.max_nodes = 4;

  // A fresh store shared by all threads: every thread races the compiled()
  // latches and the product cache on the same refs.
  auto shared_store = std::make_shared<PatternStore>(symbols);
  const std::vector<UpdateOp> updates = BoundUpdates(shared_store, symbols);
  std::vector<PatternRef> read_refs;
  std::vector<ConflictReport> expected;  // value-path reports, in pair order
  std::vector<Pattern> reads;
  for (const char* spec : read_specs) reads.push_back(Xp(spec, symbols));
  for (const Pattern& read : reads) {
    const PatternRef ref = shared_store->Intern(read);
    read_refs.push_back(ref);
    for (const UpdateOp& update : updates) {
      Result<ConflictReport> r =
          Detect(shared_store->pattern(ref), update, options);
      ASSERT_TRUE(r.ok());
      expected.push_back(std::move(r).value());
    }
  }

  for (const size_t num_threads : {size_t{1}, size_t{8}}) {
    // A fresh shared store per thread count, so the 8-thread leg compiles
    // every entry under contention rather than reusing the 1-thread run's.
    auto store = std::make_shared<PatternStore>(symbols);
    const std::vector<UpdateOp> bound = BoundUpdates(store, symbols);
    std::vector<PatternRef> refs;
    for (const Pattern& read : reads) refs.push_back(store->Intern(read));

    std::vector<int> mismatches(num_threads, 0);
    std::vector<std::thread> threads;
    for (size_t t = 0; t < num_threads; ++t) {
      threads.emplace_back([&, t] {
        for (size_t i = 0; i < refs.size(); ++i) {
          for (size_t j = 0; j < bound.size(); ++j) {
            Result<ConflictReport> r =
                Detect(*store, refs[i], bound[j], options);
            const ConflictReport& want = expected[i * bound.size() + j];
            if (!r.ok() || r->verdict != want.verdict ||
                r->method != want.method || r->detail != want.detail ||
                r->trees_checked != want.trees_checked ||
                r->witness.has_value() != want.witness.has_value()) {
              ++mismatches[t];
            }
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    for (size_t t = 0; t < num_threads; ++t) {
      EXPECT_EQ(mismatches[t], 0)
          << num_threads << " threads, thread " << t;
    }
  }
}

TEST(DetectHotCacheTest, StoreNfaCountersCountOneBuildPerEntry) {
  auto symbols = NewSymbols();
  PatternStore store(symbols);
  std::vector<PatternRef> refs;
  for (const char* spec : {"a//b", "a/b/c", "x//*/y", "a", "q[r]//s"}) {
    refs.push_back(store.Intern(Xp(spec, symbols)));
  }

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  const uint64_t hits_before = reg.GetCounter("store.nfa.hits").value();
  const uint64_t misses_before = reg.GetCounter("store.nfa.misses").value();
  const uint64_t bytes_before = reg.GetCounter("store.nfa.bytes").value();

  constexpr size_t kThreads = 8;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (const PatternRef ref : refs) {
        const CompiledPattern& c = store.compiled(ref);
        EXPECT_GE(c.chain_length(), 1u);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // The once-per-entry latch admits exactly one build per ref, no matter
  // how many threads raced; every other request is a hit.
  EXPECT_EQ(reg.GetCounter("store.nfa.misses").value() - misses_before,
            refs.size());
  EXPECT_EQ(reg.GetCounter("store.nfa.hits").value() - hits_before,
            (kThreads - 1) * refs.size());
  EXPECT_GT(reg.GetCounter("store.nfa.bytes").value(), bytes_before);

  // Compiled forms are stable (same object on re-request) and their uids
  // are distinct across entries.
  const CompiledPattern& again = store.compiled(refs[0]);
  EXPECT_EQ(&again, &store.compiled(refs[0]));
  EXPECT_NE(store.compiled(refs[0]).mainline_uid(),
            store.compiled(refs[1]).mainline_uid());
}

TEST(DetectHotCacheTest, ProductCacheAccountingAndWarmHits) {
  auto symbols = NewSymbols();
  auto store = std::make_shared<PatternStore>(symbols);
  const std::vector<UpdateOp> updates = BoundUpdates(store, symbols);
  std::vector<PatternRef> refs;
  for (const char* spec : {"a//b", "a/b/c", "b//*", "a/a"}) {
    refs.push_back(store->Intern(Xp(spec, symbols)));
  }

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  auto lookups = [&] {
    return reg.GetCounter("detector.product_cache.lookups").value();
  };
  auto hits = [&] {
    return reg.GetCounter("detector.product_cache.hits").value();
  };
  auto misses = [&] {
    return reg.GetCounter("detector.product_cache.misses").value();
  };

  const uint64_t l0 = lookups(), h0 = hits(), m0 = misses();
  for (const PatternRef ref : refs) {
    for (const UpdateOp& update : updates) {
      ASSERT_TRUE(Detect(*store, ref, update).ok());
    }
  }
  const uint64_t l1 = lookups(), h1 = hits(), m1 = misses();
  EXPECT_EQ(l1 - l0, (h1 - h0) + (m1 - m0));
  EXPECT_GT(m1 - m0, 0u);

  // Second identical pass: every product was memoized — zero new misses.
  for (const PatternRef ref : refs) {
    for (const UpdateOp& update : updates) {
      ASSERT_TRUE(Detect(*store, ref, update).ok());
    }
  }
  const uint64_t l2 = lookups(), h2 = hits(), m2 = misses();
  EXPECT_EQ(l2 - l1, h2 - h1);
  EXPECT_EQ(m2 - m1, 0u);
  EXPECT_EQ(l2 - l0, (h2 - h0) + (m2 - m0));
}

TEST(DetectHotCacheTest, DetectorAccountingInvariantIncludesErrors) {
  auto symbols = NewSymbols();
  auto store = std::make_shared<PatternStore>(symbols);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  auto counter = [&](const char* name) {
    return reg.GetCounter(name).value();
  };
  const uint64_t calls0 = counter("detector.calls");
  const uint64_t conflict0 = counter("detector.verdict.conflict");
  const uint64_t no_conflict0 = counter("detector.verdict.no_conflict");
  const uint64_t unknown0 = counter("detector.verdict.unknown");
  const uint64_t errors0 = counter("detector.errors");

  auto content = std::make_shared<const Tree>(Xml("<b/>", symbols));
  DetectorOptions options;
  options.search.max_nodes = 1;  // starve the NP path toward kUnknown

  // Value path: a conflict and a no-conflict.
  ASSERT_TRUE(Detect(Xp("a//b", symbols),
                     UpdateOp::MakeInsert(Xp("a", symbols), content))
                  .ok());
  ASSERT_TRUE(Detect(Xp("x/y", symbols),
                     UpdateOp::MakeInsert(Xp("q", symbols), content))
                  .ok());
  // Ref path: cached detection.
  UpdateOp bound = UpdateOp::MakeInsert(
      store, store->Intern(Xp("a", symbols)), content);
  ASSERT_TRUE(
      Detect(*store, store->Intern(Xp("a//b", symbols)), bound, options).ok());
  // Branching read on a starved budget (may be unknown — any verdict keeps
  // the invariant; the point is it lands in exactly one bucket).
  ASSERT_TRUE(
      Detect(*store, store->Intern(Xp("a[q][r]//b", symbols)), bound, options)
          .ok());
  // Error path: an invalid ref is counted (one call, one error), not
  // dropped from the books — this is the bug this PR fixes. The second
  // call carries an unbound op: the invalid-ref check fires before the
  // unbound-op fallback, so it too lands in detector.errors.
  Result<ConflictReport> invalid = Detect(*store, PatternRef(), bound);
  ASSERT_FALSE(invalid.ok());
  EXPECT_EQ(invalid.status().code(), StatusCode::kInvalidArgument);
  Result<ConflictReport> invalid2 =
      Detect(*store, PatternRef(), UpdateOp::MakeInsert(Xp("a", symbols),
                                                        content));
  ASSERT_FALSE(invalid2.ok());

  const uint64_t calls = counter("detector.calls") - calls0;
  const uint64_t outcomes = (counter("detector.verdict.conflict") - conflict0) +
                            (counter("detector.verdict.no_conflict") -
                             no_conflict0) +
                            (counter("detector.verdict.unknown") - unknown0) +
                            (counter("detector.errors") - errors0);
  EXPECT_EQ(calls, outcomes);
  EXPECT_EQ(counter("detector.errors") - errors0, 2u);
  EXPECT_EQ(calls, 6u);
}

TEST(DetectHotCacheTest, RootDeleteGuardIsCentralized) {
  auto symbols = NewSymbols();
  auto store = std::make_shared<PatternStore>(symbols);
  const Pattern root_only = Xp("a", symbols);       // O(p) == ROOT(p)
  const Pattern read = Xp("a//b", symbols);
  const PatternRef root_ref = store->Intern(root_only);
  const PatternRef read_ref = store->Intern(read);

  // The shared validator itself.
  EXPECT_FALSE(ValidateDeletePattern(root_only).ok());
  EXPECT_TRUE(ValidateDeletePattern(Xp("a/b", symbols)).ok());

  // Both factories.
  EXPECT_FALSE(UpdateOp::MakeDelete(root_only).ok());
  EXPECT_FALSE(UpdateOp::MakeDelete(store, root_ref).ok());

  // Direct calls into the linear detectors — the batch/lint bypass route.
  Result<ConflictReport> by_value =
      DetectLinearReadDeleteConflict(read, root_only);
  ASSERT_FALSE(by_value.ok());
  EXPECT_EQ(by_value.status().code(), StatusCode::kInvalidArgument);
  Result<ConflictReport> by_ref =
      DetectLinearReadDeleteConflict(*store, read_ref, root_ref);
  ASSERT_FALSE(by_ref.ok());
  EXPECT_EQ(by_ref.status().code(), StatusCode::kInvalidArgument);

  // The compiled core (what the batch engine's rewired SolvePair runs).
  const CompiledPattern read_compiled(read);
  const CompiledPattern del_compiled(root_only);
  Result<ConflictReport> compiled_core = DetectReadDeleteConflictCompiled(
      read_compiled, del_compiled, root_only);
  ASSERT_FALSE(compiled_core.ok());
  EXPECT_EQ(compiled_core.status().code(), StatusCode::kInvalidArgument);
}

TEST(DetectHotCacheTest, BatchEngineMatchesValueDetect) {
  auto symbols = NewSymbols();
  // The batch engine now routes SolvePair through the ref facade and the
  // compiled caches; cell-by-cell its verdicts must still equal the plain
  // value Detect on the canonicalized pair.
  BatchDetectorOptions batch_options;
  batch_options.num_threads = 4;
  BatchConflictDetector engine(batch_options);
  const std::shared_ptr<PatternStore>& store = engine.pattern_store();

  std::vector<Pattern> reads;
  for (const char* spec :
       {"a//b", "a/b", "a[b]//c", "b//a", "a//*/b", "a/a/b"}) {
    reads.push_back(Xp(spec, symbols));
  }
  const std::vector<UpdateOp> updates = [&] {
    auto content = std::make_shared<const Tree>(Xml("<a><b/></a>", symbols));
    std::vector<UpdateOp> out;
    out.push_back(UpdateOp::MakeInsert(Xp("a/b", symbols), content));
    out.push_back(UpdateOp::MakeInsert(Xp("b", symbols), content));
    Result<UpdateOp> del = UpdateOp::MakeDelete(Xp("a//b", symbols));
    EXPECT_TRUE(del.ok());
    out.push_back(*std::move(del));
    return out;
  }();

  const std::vector<SharedConflictResult> cells =
      engine.DetectMatrix(reads, updates);
  ASSERT_EQ(cells.size(), reads.size() * updates.size());
  for (size_t i = 0; i < reads.size(); ++i) {
    for (size_t j = 0; j < updates.size(); ++j) {
      const PatternRef read_ref = store->Intern(reads[i]);
      Result<ConflictReport> expected =
          Detect(store->pattern(read_ref), updates[j].Bind(store));
      ExpectSameReport(expected, *cells[i * updates.size() + j],
                       "cell " + std::to_string(i) + "," + std::to_string(j));
    }
  }
}

TEST(DetectHotCacheTest, BuildWitnessOffPreservesVerdicts) {
  auto symbols = NewSymbols();
  auto store = std::make_shared<PatternStore>(symbols);
  const std::vector<UpdateOp> updates = BoundUpdates(store, symbols);
  DetectorOptions with_witness;
  DetectorOptions without_witness;
  without_witness.build_witness = false;
  for (const char* spec : {"a//b", "a/b/c", "b//*", "a/a", "a[b]//c"}) {
    const PatternRef ref = store->Intern(Xp(spec, symbols));
    for (const UpdateOp& update : updates) {
      Result<ConflictReport> full = Detect(*store, ref, update, with_witness);
      Result<ConflictReport> lean =
          Detect(*store, ref, update, without_witness);
      ASSERT_EQ(full.ok(), lean.ok());
      if (!full.ok()) continue;
      EXPECT_EQ(full->verdict, lean->verdict) << spec;
      EXPECT_EQ(full->method, lean->method) << spec;
      EXPECT_EQ(full->detail, lean->detail) << spec;
      // Linear-path conflicts drop only the witness when disabled.
      if (lean->conflict() &&
          lean->method == DetectorMethod::kLinearPtime) {
        EXPECT_FALSE(lean->witness.has_value()) << spec;
        EXPECT_TRUE(full->witness.has_value()) << spec;
      }
    }
  }
}

}  // namespace
}  // namespace xmlup
