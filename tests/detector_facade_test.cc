// Satellite of the Detect() facade redesign: the deprecated
// DetectReadInsert / DetectReadDelete shims must agree with the facade on
// every field that is deterministic across calls (verdict, method,
// trees_checked, detail — witnesses may differ only in fresh-label ids).
// Also covers metric side effects: a Detect call bumps the dispatch and
// verdict counters in the default registry.

#include <string>
#include <vector>

#include "common/random.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "tests/test_util.h"
#include "workload/pattern_generator.h"
#include "xml/tree_algos.h"

// The whole point of this file is to call the deprecated shims.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#include "conflict/detector.h"

namespace xmlup {
namespace {

using testing_util::NewSymbols;
using testing_util::Xml;
using testing_util::Xp;

void ExpectSameReport(const Result<ConflictReport>& facade,
                      const Result<ConflictReport>& shim,
                      const std::string& label) {
  ASSERT_EQ(facade.ok(), shim.ok()) << label;
  if (!facade.ok()) {
    EXPECT_EQ(facade.status().code(), shim.status().code()) << label;
    return;
  }
  EXPECT_EQ(facade->verdict, shim->verdict) << label;
  EXPECT_EQ(facade->method, shim->method) << label;
  EXPECT_EQ(facade->trees_checked, shim->trees_checked) << label;
  EXPECT_EQ(facade->detail, shim->detail) << label;
  EXPECT_EQ(facade->witness.has_value(), shim->witness.has_value()) << label;
}

TEST(DetectorFacadeTest, InsertShimMatchesFacade) {
  auto symbols = NewSymbols();
  const Tree x = Xml("<C/>", symbols);
  struct Case {
    const char* read;
    const char* insert;
  };
  for (const Case& c : {Case{"x//C", "x/B"}, Case{"x//D", "x/B"},
                        Case{"a[q]//C", "a/B"}, Case{"a/*/C", "a/B"}}) {
    const Pattern read = Xp(c.read, symbols);
    const Pattern ins = Xp(c.insert, symbols);
    Result<ConflictReport> facade = Detect(
        read,
        UpdateOp::MakeInsert(ins, std::make_shared<const Tree>(CopyTree(x))));
    Result<ConflictReport> shim = DetectReadInsert(read, ins, x);
    ExpectSameReport(facade, shim,
                     std::string(c.read) + " vs insert " + c.insert);
  }
}

TEST(DetectorFacadeTest, DeleteShimMatchesFacade) {
  auto symbols = NewSymbols();
  struct Case {
    const char* read;
    const char* del;
  };
  for (const Case& c : {Case{"a//b", "a//c"}, Case{"a/b", "a/c"},
                        Case{"a[q]//b", "a//c"}, Case{"a/b", "a"}}) {
    const Pattern read = Xp(c.read, symbols);
    const Pattern del = Xp(c.del, symbols);
    Result<UpdateOp> op = UpdateOp::MakeDelete(del);
    Result<ConflictReport> shim = DetectReadDelete(read, del);
    if (!op.ok()) {
      // Root-selecting delete: both entry points must reject it.
      EXPECT_FALSE(shim.ok()) << c.del;
      continue;
    }
    Result<ConflictReport> facade = Detect(read, *op);
    ExpectSameReport(facade, shim,
                     std::string(c.read) + " vs delete " + c.del);
  }
}

TEST(DetectorFacadeTest, RandomizedSweepAgrees) {
  auto symbols = NewSymbols();
  Rng rng(424242);
  PatternGenOptions options;
  options.size = 3;
  options.branch_prob = 0.4;
  options.alphabet = {symbols->Intern("a"), symbols->Intern("b"),
                      symbols->Intern("c")};
  RandomPatternGenerator gen(symbols, options);
  DetectorOptions detector_options;
  detector_options.search.max_nodes = 4;

  for (int iter = 0; iter < 30; ++iter) {
    const Pattern read =
        iter % 2 == 0 ? gen.GenerateLinear(&rng) : gen.GenerateBranching(&rng);
    const Pattern update = gen.GenerateLinear(&rng);
    Tree x(symbols);
    x.CreateRoot(options.alphabet[rng.NextBounded(3)]);
    Result<ConflictReport> facade = Detect(
        read,
        UpdateOp::MakeInsert(update,
                             std::make_shared<const Tree>(CopyTree(x))),
        detector_options);
    Result<ConflictReport> shim =
        DetectReadInsert(read, update, x, detector_options);
    ExpectSameReport(facade, shim, "iter " + std::to_string(iter));
  }
}

TEST(DetectorFacadeTest, DetectReportsVerdictAndMethodCounters) {
  auto symbols = NewSymbols();
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  const uint64_t calls_before = reg.GetCounter("detector.calls").value();
  const uint64_t linear_before =
      reg.GetCounter("detector.dispatch.linear").value();
  const uint64_t conflict_before =
      reg.GetCounter("detector.verdict.conflict").value();
  const uint64_t latency_before =
      reg.GetHistogram("detector.latency_us").count();

  Result<ConflictReport> r = Detect(
      Xp("x//C", symbols),
      UpdateOp::MakeInsert(Xp("x/B", symbols),
                           std::make_shared<const Tree>(Xml("<C/>", symbols))));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->verdict, ConflictVerdict::kConflict);

  EXPECT_EQ(reg.GetCounter("detector.calls").value(), calls_before + 1);
  EXPECT_EQ(reg.GetCounter("detector.dispatch.linear").value(),
            linear_before + 1);
  EXPECT_EQ(reg.GetCounter("detector.verdict.conflict").value(),
            conflict_before + 1);
  EXPECT_EQ(reg.GetHistogram("detector.latency_us").count(),
            latency_before + 1);
}

}  // namespace
}  // namespace xmlup
